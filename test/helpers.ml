(* Shared helpers for the test suites. *)

open Kernel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let config ~n ~t = Config.make ~n ~t

let quiet_es = Sim.Schedule.make ~model:Sim.Model.Es ~gst:Round.first []

let run ?record ?sink ?max_rounds algo cfg schedule =
  Sim.Runner.run ?record ?sink ?max_rounds algo cfg
    ~proposals:(Sim.Runner.distinct_proposals cfg)
    schedule

let run_binary ?max_rounds algo cfg ~ones schedule =
  Sim.Runner.run ?max_rounds algo cfg
    ~proposals:(Sim.Runner.binary_proposals cfg ~ones:(Pid.Set.of_ints ones))
    schedule

let global_round trace =
  match Sim.Trace.global_decision_round trace with
  | Some r -> Round.to_int r
  | None -> Alcotest.fail "no global decision"

let decided_value trace =
  match Sim.Trace.decided_values trace with
  | v :: _ -> Value.to_int v
  | [] -> Alcotest.fail "nobody decided"

let assert_consensus trace =
  match Sim.Props.check trace with
  | [] -> ()
  | vs ->
      Alcotest.fail
        (Format.asprintf "%a"
           (Format.pp_print_list Sim.Props.pp_violation)
           vs)

let assert_valid cfg schedule =
  match Sim.Schedule.validate cfg schedule with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("schedule should be valid: " ^ e)

let assert_invalid cfg schedule =
  match Sim.Schedule.validate cfg schedule with
  | Ok () -> Alcotest.fail "schedule should be invalid"
  | Error _ -> ()

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1))
  in
  nn = 0 || scan 0

let qtest ?(count = 100) name arbitrary prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arbitrary prop)

(* Packed algorithms used across suites. *)
let floodset = Sim.Algorithm.Packed (module Baselines.Floodset)
let floodset_ws = Sim.Algorithm.Packed (module Baselines.Floodset_ws)
let ct = Sim.Algorithm.Packed (module Baselines.Ct_diamond_s)
let ct_naive = Sim.Algorithm.Packed (module Baselines.Ct_naive)
let hr = Sim.Algorithm.Packed (module Baselines.Hurfin_raynal)
let amr = Sim.Algorithm.Packed (module Baselines.Amr)
let at2 = Sim.Algorithm.Packed (module Indulgent.At_plus_2.Standard)
let at2_opt = Sim.Algorithm.Packed (module Indulgent.At_plus_2.Optimized)
let at2_slow = Sim.Algorithm.Packed (module Indulgent.At_plus_2.Slow_fallback)
let a_ds = Sim.Algorithm.Packed (module Indulgent.A_diamond_s)
let af2 = Sim.Algorithm.Packed (module Indulgent.Af_plus_2)
let dls = Sim.Algorithm.Packed (module Baselines.Dls)
let early_fs = Sim.Algorithm.Packed (module Baselines.Early_floodset)
let floodmin = Sim.Algorithm.Packed (module Baselines.Floodmin.Std)
