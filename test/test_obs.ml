(* The observability layer: event streams out of the engine, JSONL/Chrome
   export, metrics counting, and the replay path behind `ipi trace`. *)

open Kernel
open Helpers

let plan ?(crashes = []) ?(lost = []) ?(delayed = []) () =
  {
    Sim.Schedule.crashes = List.map Pid.of_int crashes;
    lost = List.map (fun (a, b) -> (Pid.of_int a, Pid.of_int b)) lost;
    delayed =
      List.map
        (fun (a, b, r) -> (Pid.of_int a, Pid.of_int b, Round.of_int r))
        delayed;
  }

let es ~gst plans =
  Sim.Schedule.make ~model:Sim.Model.Es ~gst:(Round.of_int gst) plans

let traced_run ?record algo cfg schedule =
  let sink, drain = Obs.Sink.memory () in
  let trace = run ?record ~sink algo cfg schedule in
  (trace, drain ())

(* ------------------------------------------------------------------ *)
(* Sink basics                                                         *)

let test_sink_noop () =
  check_bool "noop disabled" false (Obs.Sink.enabled Obs.Sink.noop);
  check_bool "tee of noops is disabled" false
    (Obs.Sink.enabled (Obs.Sink.tee Obs.Sink.noop Obs.Sink.noop));
  let sink, drain = Obs.Sink.memory () in
  check_bool "memory enabled" true (Obs.Sink.enabled sink);
  check_bool "tee with noop keeps side" true
    (Obs.Sink.enabled (Obs.Sink.tee Obs.Sink.noop sink));
  Obs.Sink.emit sink (Obs.Event.Round_start { round = Round.first });
  check_int "one event" 1 (List.length (drain ()))

let test_run_without_sink_unchanged () =
  (* The default path must behave exactly as before the obs layer existed:
     same trace, no sink required anywhere. *)
  let cfg = config ~n:3 ~t:1 in
  let plain = run at2 cfg quiet_es in
  let traced, events = traced_run at2 cfg quiet_es in
  check_int "same rounds" plain.Sim.Trace.rounds_executed
    traced.Sim.Trace.rounds_executed;
  check_bool "same decisions" true
    (Sim.Trace.decided_values plain = Sim.Trace.decided_values traced);
  check_bool "events nonempty when traced" true (events <> [])

(* ------------------------------------------------------------------ *)
(* Event stream shape                                                  *)

let chain_events cfg =
  let schedule = Workload.Cascade.chain cfg in
  traced_run at2 cfg schedule

let test_event_stream_shape () =
  let cfg = config ~n:5 ~t:2 in
  let trace, events = chain_events cfg in
  (match events with
  | Obs.Event.Run_start { algorithm; n; t; proposals } :: _ ->
      check_bool "algorithm named" true (algorithm <> "");
      check_int "n" 5 n;
      check_int "t" 2 t;
      check_int "all proposals" 5 (List.length proposals)
  | _ -> Alcotest.fail "first event must be Run_start");
  (match List.rev events with
  | Obs.Event.Run_end { rounds; decided; all_halted } :: _ ->
      check_int "rounds" trace.Sim.Trace.rounds_executed rounds;
      check_int "decided" (List.length trace.Sim.Trace.decisions) decided;
      check_bool "halted" trace.Sim.Trace.all_halted all_halted
  | _ -> Alcotest.fail "last event must be Run_end");
  let round_starts =
    List.length
      (List.filter
         (function Obs.Event.Round_start _ -> true | _ -> false)
         events)
  in
  check_int "one Round_start per executed round"
    trace.Sim.Trace.rounds_executed round_starts;
  let decide_events =
    List.filter_map
      (function
        | Obs.Event.Decide { pid; round; value } -> Some (pid, round, value)
        | _ -> None)
      events
  in
  check_bool "Decide events mirror trace decisions" true
    (decide_events
    = List.map
        (fun (d : Sim.Trace.decision) -> (d.pid, d.round, d.value))
        trace.Sim.Trace.decisions)

(* ------------------------------------------------------------------ *)
(* Metrics: counters match the schedule's fates                        *)

let test_metrics_match_schedule_fates () =
  let cfg = config ~n:3 ~t:1 in
  (* Hand-built adversary: p2 crashes in round 1 losing its copies to p1 and
     p3; additionally p1's round-1 copy to p3 arrives only in round 2. *)
  let schedule =
    es ~gst:3
      [ plan ~crashes:[ 2 ] ~lost:[ (2, 1); (2, 3) ] ~delayed:[ (1, 3, 2) ] () ]
  in
  let registry = Obs.Metrics.create () in
  let trace =
    Sim.Runner.run ~record:true
      ~sink:(Obs.Metrics.counting_sink registry)
      floodset cfg
      ~proposals:(Sim.Runner.distinct_proposals cfg)
      schedule
  in
  let counter name =
    match Obs.Metrics.find_counter registry name with
    | Some v -> v
    | None -> Alcotest.fail ("missing counter " ^ name)
  in
  (* Drop / Delay counts are exactly the schedule's per-copy fates. *)
  check_int "drops = lost copies" 2 (counter "sim.messages_dropped");
  check_int "delays = delayed copies" 1 (counter "sim.messages_delayed");
  check_int "crashes" 1 (counter "sim.crashes");
  (* Send accounting agrees with the record-based Stats.Summary path. *)
  check_int "messages_sent = messages_of_trace"
    (Option.get (Stats.Summary.messages_of_trace trace))
    (counter "sim.messages_sent");
  check_int "bytes_sent = bytes_of_trace"
    (Option.get (Stats.Summary.bytes_of_trace trace))
    (counter "sim.bytes_sent");
  check_int "metrics helpers agree"
    (Option.get (Stats.Summary.messages_of_metrics registry))
    (counter "sim.messages_sent");
  (* Deliver events agree with the per-round delivery records. *)
  let recorded_deliveries =
    List.fold_left
      (fun acc (r : Sim.Trace.round_record) -> acc + List.length r.delivered)
      0 trace.Sim.Trace.records
  in
  check_int "delivered = recorded deliveries" recorded_deliveries
    (counter "sim.messages_delivered");
  check_int "decisions" (List.length trace.Sim.Trace.decisions)
    (counter "sim.decisions");
  match Obs.Metrics.find_gauge registry "sim.global_decision_round" with
  | Some r -> check_int "global decision gauge" (global_round trace) r
  | None -> Alcotest.fail "global decision gauge unset"

(* ------------------------------------------------------------------ *)
(* JSONL: determinism and round-trip                                   *)

let test_jsonl_determinism () =
  let cfg = config ~n:5 ~t:2 in
  let log () =
    let _, events = chain_events cfg in
    Obs.Jsonl.to_string events
  in
  let a = log () and b = log () in
  check_bool "byte-identical logs" true (String.equal a b);
  check_bool "log nonempty" true (String.length a > 0)

(* One generator per Event constructor, so the codec property covers the
   whole wire vocabulary — not just what a particular run happens to
   emit. *)
let event_gen =
  let open QCheck.Gen in
  let pid = map Pid.of_int (int_range 1 9) in
  let round = map Round.of_int (int_range 1 30) in
  let value = map Value.of_int (int_range 0 7) in
  let name =
    string_size
      ~gen:(oneofl [ 'a'; 'k'; 'z'; 'A'; '0'; '('; '+'; ')'; ' ' ])
      (int_range 1 10)
  in
  oneof
    [
      ( let* n = int_range 1 6 in
        let* t = int_range 0 3 in
        let* algorithm = name in
        let+ values = list_size (return n) value in
        Obs.Event.Run_start
          {
            algorithm;
            n;
            t;
            proposals = List.mapi (fun i v -> (Pid.of_int (i + 1), v)) values;
          } );
      map (fun round -> Obs.Event.Round_start { round }) round;
      ( let* src = pid in
        let* round = round in
        let* copies = int_range 0 9 in
        let+ bytes = int_range 0 4096 in
        Obs.Event.Send { src; round; copies; bytes } );
      ( let* src = pid in
        let* dst = pid in
        let* sent = round in
        let+ extra = int_range 0 3 in
        Obs.Event.Deliver
          { src; dst; sent; round = Round.of_int (Round.to_int sent + extra) }
      );
      ( let* src = pid in
        let* dst = pid in
        let+ round = round in
        Obs.Event.Drop { src; dst; round } );
      ( let* src = pid in
        let* dst = pid in
        let* round = round in
        let+ extra = int_range 1 4 in
        Obs.Event.Delay
          { src; dst; round; until = Round.of_int (Round.to_int round + extra) }
      );
      ( let* pid = pid in
        let+ round = round in
        Obs.Event.Crash { pid; round } );
      ( let* pid = pid in
        let* round = round in
        let+ value = value in
        Obs.Event.Decide { pid; round; value } );
      ( let* pid = pid in
        let+ round = round in
        Obs.Event.Halt { pid; round } );
      ( let* suspected = list_size (int_range 0 4) pid in
        let* pid = pid in
        let+ round = round in
        Obs.Event.Fd_output { pid; round; suspected } );
      ( let* rounds = int_range 0 30 in
        let* decided = int_range 0 9 in
        let+ all_halted = bool in
        Obs.Event.Run_end { rounds; decided; all_halted } );
    ]

let events_arbitrary =
  QCheck.make
    ~print:
      (Format.asprintf "%a"
         (Format.pp_print_list ~pp_sep:Format.pp_print_newline Obs.Event.pp))
    QCheck.Gen.(list_size (int_range 0 20) event_gen)

let jsonl_roundtrip_prop events =
  match Obs.Jsonl.parse (Obs.Jsonl.to_string events) with
  | Error e -> QCheck.Test.fail_report e
  | Ok parsed ->
      List.length events = List.length parsed
      && List.for_all2 Obs.Event.equal events parsed

let test_jsonl_skips_comments () =
  match Obs.Jsonl.parse "# comment\n\n{\"ev\":\"round_start\",\"round\":3}\n" with
  | Ok [ Obs.Event.Round_start { round } ] ->
      check_int "round" 3 (Round.to_int round)
  | Ok _ -> Alcotest.fail "expected exactly one event"
  | Error e -> Alcotest.fail e

let test_jsonl_reports_bad_line () =
  match Obs.Jsonl.parse "{\"ev\":\"round_start\",\"round\":1}\nnot json\n" with
  | Error e -> check_bool "names line 2" true (contains e "line 2")
  | Ok _ -> Alcotest.fail "expected a parse error"

(* ------------------------------------------------------------------ *)
(* Replay: the `ipi trace` path                                        *)

let test_replay_matches_live_diagram () =
  let cfg = config ~n:5 ~t:2 in
  let schedule = Workload.Cascade.chain cfg in
  let sink, drain = Obs.Sink.memory () in
  let trace = run ~record:true ~sink at2 cfg schedule in
  let events = drain () in
  (* Round-trip through the serialized form, as `ipi trace` does. *)
  let parsed =
    match Obs.Jsonl.parse (Obs.Jsonl.to_string events) with
    | Ok evs -> evs
    | Error e -> Alcotest.fail e
  in
  match Obs.Replay.of_events parsed with
  | Error e -> Alcotest.fail e
  | Ok replay ->
      let live = Format.asprintf "%a" Sim.Trace.pp_diagram trace in
      let replayed = Format.asprintf "%a" Obs.Replay.pp_diagram replay in
      check_string "replayed diagram equals live diagram" live replayed

let test_replay_summary () =
  let cfg = config ~n:3 ~t:1 in
  let _, events = traced_run floodset cfg quiet_es in
  match Obs.Replay.of_events events with
  | Error e -> Alcotest.fail e
  | Ok replay ->
      let s = Format.asprintf "%a" Obs.Replay.pp_summary replay in
      check_bool "names algorithm" true (contains s "FloodSet");
      check_bool "counts decisions" true (contains s "3 decision(s)")

(* ------------------------------------------------------------------ *)
(* Chrome export                                                       *)

let test_chrome_export_is_valid_json () =
  let cfg = config ~n:3 ~t:1 in
  let _, events = traced_run floodset cfg quiet_es in
  match Obs.Json.of_string (Obs.Chrome.to_string events) with
  | Error e -> Alcotest.fail e
  | Ok json -> (
      match Option.bind (Obs.Json.member "traceEvents" json) Obs.Json.to_list_opt with
      | Some entries -> check_bool "has trace events" true (entries <> [])
      | None -> Alcotest.fail "missing traceEvents")

(* ------------------------------------------------------------------ *)
(* Diagram on record-free traces                                       *)

let test_diagram_without_records_is_honest () =
  let cfg = config ~n:3 ~t:1 in
  let trace = run floodset cfg quiet_es in
  let diagram = Format.asprintf "%a" Sim.Trace.pp_diagram trace in
  check_bool "notes missing records" true (contains diagram "no per-round records");
  check_bool "unknown cells are '?'" true (contains diagram "?");
  check_bool "decisions still shown" true (contains diagram "D=")

let test_summary_costs_are_optional () =
  let cfg = config ~n:3 ~t:1 in
  let bare = run floodset cfg quiet_es in
  check_bool "no records -> None" true
    (Stats.Summary.messages_of_trace bare = None
    && Stats.Summary.bytes_of_trace bare = None);
  let recorded = run ~record:true floodset cfg quiet_es in
  check_bool "records -> Some" true
    (Stats.Summary.messages_of_trace recorded <> None
    && Stats.Summary.bytes_of_trace recorded <> None)

(* ------------------------------------------------------------------ *)
(* Fd_output and progress metrics                                      *)

let test_fd_history_emits_events () =
  let cfg = config ~n:3 ~t:1 in
  let schedule = es ~gst:1 [ plan ~crashes:[ 2 ] ~lost:[ (2, 1); (2, 3) ] () ] in
  let sink, drain = Obs.Sink.memory () in
  let history = Fd.Simulate.history ~sink cfg schedule ~rounds:3 in
  let events = drain () in
  check_int "one event per history entry" (List.length history)
    (List.length events);
  check_bool "all are Fd_output" true
    (List.for_all
       (function Obs.Event.Fd_output _ -> true | _ -> false)
       events)

let test_search_reports_metrics () =
  let cfg = config ~n:3 ~t:1 in
  let registry = Obs.Metrics.create () in
  let outcome =
    Workload.Search.random_synchronous ~samples:20 ~metrics:registry ~seed:1
      ~algo:at2 ~config:cfg
      ~proposals:(Sim.Runner.distinct_proposals cfg)
      ()
  in
  check_int "search.runs" outcome.Workload.Search.runs
    (Option.get (Obs.Metrics.find_counter registry "search.runs"))

let test_exhaustive_reports_metrics () =
  let cfg = config ~n:3 ~t:1 in
  let registry = Obs.Metrics.create () in
  let result =
    Mc.Exhaustive.sweep ~metrics:registry ~algo:at2 ~config:cfg
      ~proposals:(Sim.Runner.distinct_proposals cfg)
      ()
  in
  check_int "mc.runs" result.Mc.Exhaustive.runs
    (Option.get (Obs.Metrics.find_counter registry "mc.runs"));
  check_int "mc.violations" 0
    (Option.get (Obs.Metrics.find_counter registry "mc.violations"))

(* ------------------------------------------------------------------ *)
(* Profiling spans                                                     *)

let test_span_disabled_is_inert () =
  let t = Obs.Span.disabled in
  check_bool "disabled" false (Obs.Span.enabled t);
  Obs.Span.enter t "x";
  Obs.Span.exit t;
  check_bool "no records" true (Obs.Span.records t = []);
  check_int "with_ passes the value through" 7
    (Obs.Span.with_ t "y" (fun () -> 7))

let test_span_nesting () =
  let t = Obs.Span.recorder ~track:3 () in
  check_bool "recorder enabled" true (Obs.Span.enabled t);
  Obs.Span.enter t "outer";
  Obs.Span.enter t "inner";
  Obs.Span.exit t;
  Obs.Span.exit t;
  match Obs.Span.records t with
  | [ inner; outer ] ->
      (* Completion order: the inner span closes first. *)
      check_string "inner label" "inner" inner.Obs.Span.label;
      check_int "inner depth" 1 inner.Obs.Span.depth;
      check_string "outer label" "outer" outer.Obs.Span.label;
      check_int "outer depth" 0 outer.Obs.Span.depth;
      check_int "track" 3 inner.Obs.Span.track;
      check_bool "outer starts no later than inner" true
        (outer.Obs.Span.start_us <= inner.Obs.Span.start_us);
      check_bool "outer lasts at least as long" true
        (outer.Obs.Span.dur_us >= inner.Obs.Span.dur_us)
  | rs -> Alcotest.fail (Printf.sprintf "expected 2 records, got %d" (List.length rs))

let test_span_exception_safety () =
  let t = Obs.Span.recorder () in
  (try Obs.Span.with_ t "boom" (fun () -> failwith "boom")
   with Failure _ -> ());
  match Obs.Span.records t with
  | [ r ] -> check_string "span closed on raise" "boom" r.Obs.Span.label
  | rs -> Alcotest.fail (Printf.sprintf "expected 1 record, got %d" (List.length rs))

let test_span_exit_without_enter () =
  let t = Obs.Span.recorder () in
  match Obs.Span.exit t with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_span_absorb_ordering () =
  let parent = Obs.Span.recorder () in
  Obs.Span.with_ parent "p1" (fun () -> ());
  let child = Obs.Span.child parent ~track:2 in
  Obs.Span.with_ child "c1" (fun () -> ());
  Obs.Span.with_ child "c2" (fun () -> ());
  Obs.Span.absorb parent child;
  Obs.Span.with_ parent "p2" (fun () -> ());
  check_bool "child drained" true (Obs.Span.records child = []);
  let field f = List.map f (Obs.Span.records parent) in
  check_bool "absorb preserves completion order" true
    (field (fun r -> r.Obs.Span.label) = [ "p1"; "c1"; "c2"; "p2" ]);
  check_bool "absorbed spans keep the child's track" true
    (field (fun r -> r.Obs.Span.track) = [ 0; 2; 2; 0 ])

let test_span_record_json () =
  let t = Obs.Span.recorder () in
  Obs.Span.with_ t "work" (fun () ->
      ignore (Sys.opaque_identity (List.init 100 float_of_int)));
  match Obs.Span.records t with
  | [ r ] ->
      let json = Obs.Span.record_to_json r in
      let str name = Option.bind (Obs.Json.member name json) Obs.Json.to_string_opt in
      let num name = Option.bind (Obs.Json.member name json) Obs.Json.to_float_opt in
      check_bool "label" true (str "label" = Some "work");
      check_bool "dur_us numeric" true (num "dur_us" <> None);
      check_bool "minor_words numeric" true (num "minor_words" <> None);
      check_bool "major_collections numeric" true (num "major_collections" <> None)
  | rs -> Alcotest.fail (Printf.sprintf "expected 1 record, got %d" (List.length rs))

(* ------------------------------------------------------------------ *)
(* Allocation probes                                                   *)

let test_prof_measure_counts_and_alloc () =
  let a = Obs.Prof.acc () in
  for _ = 1 to 3 do
    Obs.Prof.measure a (fun () ->
        ignore (Sys.opaque_identity (List.init 1000 float_of_int)))
  done;
  check_int "three intervals" 3 (Obs.Prof.intervals a);
  let metrics = Obs.Metrics.create () in
  Obs.Prof.flush a ~metrics ~prefix:"test" ~per:"step";
  match Obs.Metrics.find_histogram metrics "test.minor_words_per_step" with
  | None -> Alcotest.fail "histogram missing after flush"
  | Some s ->
      check_int "count = intervals" 3 s.Obs.Metrics.count;
      (* A boxed-float list of 1000 allocates thousands of minor words;
         sub-collection intervals must not read as zero. *)
      check_bool "allocating work reads positive minor words" true
        (s.Obs.Metrics.mean > 0.)

let test_prof_records_on_exception () =
  let a = Obs.Prof.acc () in
  (try Obs.Prof.measure a (fun () -> failwith "boom") with Failure _ -> ());
  check_int "raised interval recorded" 1 (Obs.Prof.intervals a)

let test_prof_merge_and_empty_flush () =
  let a = Obs.Prof.acc () and b = Obs.Prof.acc () in
  Obs.Prof.measure a (fun () -> ());
  Obs.Prof.measure b (fun () -> ());
  Obs.Prof.measure b (fun () -> ());
  Obs.Prof.merge ~into:a b;
  check_int "merged intervals" 3 (Obs.Prof.intervals a);
  let metrics = Obs.Metrics.create () in
  Obs.Prof.flush (Obs.Prof.acc ()) ~metrics ~prefix:"empty" ~per:"step";
  check_bool "empty acc flushes nothing" true
    (Obs.Metrics.find_histogram metrics "empty.minor_words_per_step" = None)

let test_find_histogram_matches_summary () =
  let m = Obs.Metrics.create () in
  check_bool "absent name" true (Obs.Metrics.find_histogram m "nope" = None);
  let h = Obs.Metrics.histogram m "x" in
  check_bool "created but unobserved" true
    (Obs.Metrics.find_histogram m "x" = None);
  Obs.Metrics.observe h 1.;
  Obs.Metrics.observe h 3.;
  check_bool "parity with summary" true
    (Obs.Metrics.find_histogram m "x" = Obs.Metrics.summary h)

(* ------------------------------------------------------------------ *)
(* Progress meters                                                     *)

let test_progress_disabled () =
  let p = Obs.Progress.disabled in
  check_bool "disabled" false (Obs.Progress.enabled p);
  (* All operations must be no-ops, not failures. *)
  Obs.Progress.set_total p 10;
  Obs.Progress.step p ~items:1 ~runs:1 ~hits:0 ~lookups:0;
  Obs.Progress.finish p

let test_progress_deterministic_emission () =
  let seen = ref [] in
  let p =
    Obs.Progress.create ~every:2 ~total:10 ~label:"sweep"
      ~emit:(fun s -> seen := s :: !seen)
      ()
  in
  for _ = 1 to 5 do
    Obs.Progress.step p ~items:1 ~runs:7 ~hits:3 ~lookups:4
  done;
  Obs.Progress.finish p;
  let snaps = List.rev !seen in
  (* Emission points are keyed on the item count alone, so this sequence
     is deterministic whatever the wall clock does. *)
  check_bool "emits at items 2 and 4, then the final 5" true
    (List.map (fun s -> (s.Obs.Progress.items, s.Obs.Progress.final)) snaps
    = [ (2, false); (4, false); (5, true) ]);
  let final = List.nth snaps 2 in
  check_bool "total carried" true (final.Obs.Progress.total = Some 10);
  check_int "runs accumulated" 35 final.Obs.Progress.runs;
  check_bool "hit rate = 15/20" true (final.Obs.Progress.hit_rate = Some 0.75)

let test_progress_set_total_render_json () =
  let seen = ref [] in
  let p =
    Obs.Progress.create ~label:"fuzz" ~emit:(fun s -> seen := s :: !seen) ()
  in
  Obs.Progress.set_total p 4;
  Obs.Progress.step p ~items:1 ~runs:0 ~hits:0 ~lookups:0;
  match !seen with
  | [ s ] ->
      check_bool "set_total lands in snapshots" true
        (s.Obs.Progress.total = Some 4);
      let line = Obs.Progress.render s in
      check_bool "render names the label" true (contains line "fuzz");
      check_bool "render shows items/total" true (contains line "1/4");
      let json = Obs.Progress.snapshot_to_json s in
      check_bool "json has items" true
        (Option.bind (Obs.Json.member "items" json) Obs.Json.to_int_opt = Some 1);
      check_bool "json has label" true
        (Option.bind (Obs.Json.member "label" json) Obs.Json.to_string_opt
        = Some "fuzz")
  | l -> Alcotest.fail (Printf.sprintf "expected 1 snapshot, got %d" (List.length l))

(* ------------------------------------------------------------------ *)
(* Chrome span export                                                  *)

let test_chrome_of_spans_shape () =
  let t = Obs.Span.recorder () in
  Obs.Span.with_ t "sweep" (fun () -> Obs.Span.with_ t "run" (fun () -> ()));
  let shard = Obs.Span.child t ~track:1 in
  Obs.Span.with_ shard "shard 0" (fun () -> ());
  Obs.Span.absorb t shard;
  let json = Obs.Chrome.of_spans (Obs.Span.records t) in
  match
    Option.bind (Obs.Json.member "traceEvents" json) Obs.Json.to_list_opt
  with
  | None -> Alcotest.fail "missing traceEvents"
  | Some entries ->
      let str name e = Option.bind (Obs.Json.member name e) Obs.Json.to_string_opt in
      let int name e = Option.bind (Obs.Json.member name e) Obs.Json.to_int_opt in
      let slices = List.filter (fun e -> str "ph" e = Some "X") entries in
      check_int "one X slice per record" 3 (List.length slices);
      check_bool "slices on the span pid" true
        (List.for_all (fun e -> int "pid" e = Some 1) slices);
      check_bool "zero-length slices widened to 1us" true
        (List.for_all
           (fun e -> match int "dur" e with Some d -> d >= 1 | None -> false)
           slices);
      let track_names =
        List.filter_map
          (fun e ->
            if str "ph" e = Some "M" && str "name" e = Some "thread_name" then
              Option.bind (Obs.Json.member "args" e) (fun a ->
                  Option.bind (Obs.Json.member "name" a) Obs.Json.to_string_opt)
            else None)
          entries
      in
      check_bool "main track named" true (List.mem "main" track_names);
      check_bool "shard track named" true (List.mem "shard 0" track_names)

(* ------------------------------------------------------------------ *)
(* Instrumentation must never change results                           *)

let test_instrumented_sweep_results_unchanged () =
  let cfg = config ~n:3 ~t:1 in
  let plain = Mc.Dedup.sweep_binary ~algo:at2 ~config:cfg () in
  let instruments () =
    ( Obs.Prof.acc (),
      Obs.Span.recorder (),
      Obs.Progress.create ~label:"t" ~emit:ignore () )
  in
  let prof, spans, progress = instruments () in
  let serial =
    Mc.Dedup.sweep_binary ~prof ~spans ~progress ~algo:at2 ~config:cfg ()
  in
  check_bool "serial dedup: instruments leave result and stats alone" true
    (plain = serial);
  check_bool "prof saw the distinct work" true (Obs.Prof.intervals prof > 0);
  check_bool "spans recorded" true (Obs.Span.records spans <> []);
  let prof, spans, progress = instruments () in
  let par =
    Mc.Parallel.sweep_binary_dedup ~prof ~spans ~progress ~jobs:2 ~algo:at2
      ~config:cfg ()
  in
  check_bool "parallel dedup agrees with serial on every field" true
    (plain = par)

let test_par_report () =
  let got = ref None in
  let tasks = Array.init 7 (fun i () -> i * i) in
  let results =
    Par.map_tasks ~report:(fun s -> got := Some s) ~jobs:4 tasks
  in
  check_bool "results in task order" true
    (results = Array.init 7 (fun i -> i * i));
  match !got with
  | None -> Alcotest.fail "report callback not invoked"
  | Some stats ->
      check_int "every task accounted to some worker" 7
        (Array.fold_left
           (fun acc (s : Par.worker_stat) -> acc + s.tasks)
           0 stats)

(* ------------------------------------------------------------------ *)
(* Wire: length-prefixed JSON framing for the worker pipe protocol      *)

let with_temp_file f =
  let path = Filename.temp_file "ipi-test-obs" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let with_temp_dir f =
  let dir = Filename.temp_file "ipi-test-obs" ".dir" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun name ->
          try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let wire_frames =
  [
    Obs.Json.Obj [ ("task", Obs.Json.Int 3) ];
    Obs.Json.String "newlines\nare\npayload,\nnot framing";
    Obs.Json.List [ Obs.Json.Null; Obs.Json.Bool true; Obs.Json.Float 0.5 ];
  ]

let test_wire_blocking_roundtrip () =
  with_temp_file @@ fun path ->
  Out_channel.with_open_bin path (fun oc ->
      List.iter (Obs.Wire.write oc) wire_frames);
  In_channel.with_open_bin path @@ fun ic ->
  let rec drain acc =
    match Obs.Wire.read ic with
    | Ok j -> drain (j :: acc)
    | Error e -> (List.rev acc, e)
  in
  let decoded, stop = drain [] in
  check_bool "stream ends in a clean Eof at a frame boundary" true
    (stop = Obs.Wire.Eof);
  check_int "all frames decoded" (List.length wire_frames)
    (List.length decoded);
  List.iter2
    (fun a b ->
      check_string "frame round-trips" (Obs.Json.to_string a)
        (Obs.Json.to_string b))
    wire_frames decoded

let test_wire_truncated_stream () =
  with_temp_file @@ fun path ->
  (* A murdered writer: one whole frame, then a header promising more
     bytes than the stream holds. *)
  Out_channel.with_open_bin path (fun oc ->
      Obs.Wire.write oc (Obs.Json.Int 1);
      output_string oc "50\n{\"cut");
  In_channel.with_open_bin path @@ fun ic ->
  (match Obs.Wire.read ic with
  | Ok j -> check_string "frame before the cut is intact" "1" (Obs.Json.to_string j)
  | Error e -> Alcotest.fail (Format.asprintf "%a" Obs.Wire.pp_error e));
  check_bool "half-written frame reads as Truncated, never a value" true
    (Obs.Wire.read ic = Error Obs.Wire.Truncated)

let test_wire_decoder_chunked () =
  (* The supervisor's discipline: feed whatever bytes arrived — here the
     worst case, one at a time — and drain complete frames. *)
  with_temp_file @@ fun path ->
  Out_channel.with_open_bin path (fun oc ->
      List.iter (Obs.Wire.write oc) wire_frames);
  let stream = In_channel.with_open_bin path In_channel.input_all in
  let d = Obs.Wire.decoder () in
  let got = ref [] in
  String.iter
    (fun c ->
      Obs.Wire.feed d (Bytes.make 1 c) 1;
      match Obs.Wire.next d with
      | Ok (Some j) -> got := j :: !got
      | Ok None -> ()
      | Error e -> Alcotest.fail (Format.asprintf "%a" Obs.Wire.pp_error e))
    stream;
  let got = List.rev !got in
  check_int "every frame surfaced from 1-byte feeds" (List.length wire_frames)
    (List.length got);
  check_int "no bytes left buffered" 0 (Obs.Wire.pending d);
  List.iter2
    (fun a b ->
      check_string "chunked frame round-trips" (Obs.Json.to_string a)
        (Obs.Json.to_string b))
    wire_frames got

let test_wire_decoder_bad_header_sticky () =
  let d = Obs.Wire.decoder () in
  let junk = Bytes.of_string "notalength\n{}" in
  Obs.Wire.feed d junk (Bytes.length junk);
  let malformed = function
    | Error (Obs.Wire.Malformed _) -> true
    | _ -> false
  in
  check_bool "unframeable header is Malformed" true (malformed (Obs.Wire.next d));
  (* The stream can never be re-framed after a bad header: the error must
     stick rather than let the decoder resynchronise on garbage. *)
  check_bool "header error is sticky" true (malformed (Obs.Wire.next d))

let test_wire_decoder_too_large () =
  let d = Obs.Wire.decoder () in
  let header = Printf.sprintf "%d\n" (Obs.Wire.max_frame + 1) in
  Obs.Wire.feed d (Bytes.of_string header) (String.length header);
  check_bool "oversized declared length is refused before allocation" true
    (Obs.Wire.next d = Error (Obs.Wire.Too_large (Obs.Wire.max_frame + 1)))

(* ------------------------------------------------------------------ *)
(* Artifact: atomic tmp+rename writes                                   *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_artifact_write_and_overwrite () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "out.json" in
  Obs.Artifact.write_string path "first";
  check_string "content lands at the published path" "first" (read_file path);
  Obs.Artifact.write path (fun oc -> output_string oc "second");
  check_string "overwrite replaces the whole content" "second" (read_file path);
  check_bool "no staging files left behind" true
    (Sys.readdir dir = [| "out.json" |])

let test_artifact_failed_write_leaves_target () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "out.json" in
  Obs.Artifact.write_string path "intact";
  (match
     Obs.Artifact.write path (fun oc ->
         output_string oc "partial garbage";
         failwith "boom")
   with
  | exception Failure msg -> check_string "writer exception re-raised" "boom" msg
  | () -> Alcotest.fail "write should have re-raised the writer's exception");
  check_string "published path untouched by the failed write" "intact"
    (read_file path);
  check_bool "staging file removed on failure" true
    (Sys.readdir dir = [| "out.json" |])

(* ------------------------------------------------------------------ *)
(* Heartbeat: snapshot codec and the staleness probe                    *)

let snap ?(seq = 1) ?(items = 0) ?total ?(runs = 0) ?(distinct = 0)
    ?(elapsed_s = 0.) ?per_s ?eta_s ?hit_rate ?(final = false) () =
  {
    Obs.Progress.seq;
    label = "test";
    items;
    total;
    runs;
    distinct;
    elapsed_s;
    per_s;
    eta_s;
    hit_rate;
    final;
  }

let test_snapshot_json_roundtrip () =
  let cases =
    [
      snap ();
      snap ~seq:3 ~items:12 ~total:84 ~runs:900 ~elapsed_s:1.5 ~per_s:600.
        ~eta_s:0.125 ~hit_rate:0.5 ~final:true ();
    ]
  in
  List.iter
    (fun s ->
      let json = Obs.Progress.snapshot_to_json s in
      match Obs.Progress.snapshot_of_json json with
      | Error msg -> Alcotest.fail msg
      | Ok s' ->
          check_bool "snapshot decodes to the original" true (s' = s);
          (* Fixpoint on the canonical JSON: what a heartbeat file holds. *)
          check_string "canonical JSON is a fixpoint"
            (Obs.Json.to_string json)
            (Obs.Json.to_string (Obs.Progress.snapshot_to_json s')))
    cases;
  match Obs.Progress.snapshot_of_json (Obs.Json.Obj [ ("seq", Obs.Json.Int 1) ]) with
  | Ok _ -> Alcotest.fail "snapshot with missing fields must not decode"
  | Error msg -> check_bool "decode error names a field" true (msg <> "")

let test_heartbeat_check_verdicts () =
  let check_hb name expected result =
    match (expected, result) with
    | `Ok, Ok () -> ()
    | `Err needle, Error msg ->
        check_bool
          (Printf.sprintf "%s: %S mentions %S" name msg needle)
          true (contains msg needle)
    | `Ok, Error msg -> Alcotest.fail (name ^ ": unexpectedly stale: " ^ msg)
    | `Err _, Ok () -> Alcotest.fail (name ^ ": unexpectedly healthy")
  in
  let now = 1000. in
  check_hb "empty stream" (`Err "no snapshots")
    (Obs.Progress.check_heartbeat ~now ~mtime:now ~max_age_items:5 []);
  check_hb "non-monotonic seq" (`Err "non-monotonic")
    (Obs.Progress.check_heartbeat ~now ~mtime:now ~max_age_items:5
       [ snap ~seq:2 (); snap ~seq:2 () ]);
  check_hb "final snapshot is healthy however old the file" `Ok
    (Obs.Progress.check_heartbeat ~now ~mtime:0. ~max_age_items:1
       [ snap ~seq:1 (); snap ~seq:9 ~final:true () ]);
  (* 100 items/s and a 5-item budget = 0.05s; a 10s-old file is stale. *)
  let running =
    [ snap ~seq:1 ~items:50 ~per_s:100. (); snap ~seq:2 ~items:100 ~per_s:100. () ]
  in
  check_hb "old file vs observed rate" (`Err "stale")
    (Obs.Progress.check_heartbeat ~now ~mtime:(now -. 10.) ~max_age_items:5
       running);
  check_hb "freshly-written file" `Ok
    (Obs.Progress.check_heartbeat ~now ~mtime:now ~max_age_items:5 running);
  check_hb "rate from items/elapsed when per_s is missing" (`Err "stale")
    (Obs.Progress.check_heartbeat ~now ~mtime:(now -. 10.) ~max_age_items:5
       [ snap ~seq:1 ~items:100 ~elapsed_s:1. () ]);
  check_hb "too young to have a rate gets the benefit of the doubt" `Ok
    (Obs.Progress.check_heartbeat ~now ~mtime:0. ~max_age_items:1
       [ snap ~seq:1 ~items:0 () ])

let test_heartbeat_accepts_live_meter_stream () =
  let seen = ref [] in
  let p =
    Obs.Progress.create ~every:1 ~total:4 ~label:"hb"
      ~emit:(fun s -> seen := s :: !seen)
      ()
  in
  for _ = 1 to 4 do
    Obs.Progress.step p ~items:1 ~runs:2 ~hits:1 ~lookups:2
  done;
  Obs.Progress.finish p;
  let snaps = List.rev !seen in
  let rec strictly_increasing = function
    | (a : Obs.Progress.snapshot) :: (b :: _ as rest) ->
        a.seq < b.seq && strictly_increasing rest
    | _ -> true
  in
  check_bool "meter emits strictly increasing sequence numbers" true
    (strictly_increasing snaps);
  check_bool "a finished stream is healthy whatever the file age" true
    (Obs.Progress.check_heartbeat ~now:1e9 ~mtime:0. ~max_age_items:1 snaps
    = Ok ())

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "sink",
        [
          Alcotest.test_case "noop" `Quick test_sink_noop;
          Alcotest.test_case "default path unchanged" `Quick
            test_run_without_sink_unchanged;
        ] );
      ( "events",
        [
          Alcotest.test_case "stream shape" `Quick test_event_stream_shape;
          Alcotest.test_case "fd history" `Quick test_fd_history_emits_events;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "schedule fates" `Quick
            test_metrics_match_schedule_fates;
          Alcotest.test_case "search progress" `Quick
            test_search_reports_metrics;
          Alcotest.test_case "mc progress" `Quick
            test_exhaustive_reports_metrics;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "determinism" `Quick test_jsonl_determinism;
          qtest "round-trip all constructors" events_arbitrary
            jsonl_roundtrip_prop;
          Alcotest.test_case "comments" `Quick test_jsonl_skips_comments;
          Alcotest.test_case "bad line" `Quick test_jsonl_reports_bad_line;
        ] );
      ( "replay",
        [
          Alcotest.test_case "diagram" `Quick test_replay_matches_live_diagram;
          Alcotest.test_case "summary" `Quick test_replay_summary;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "chrome json" `Quick
            test_chrome_export_is_valid_json;
          Alcotest.test_case "chrome spans" `Quick test_chrome_of_spans_shape;
        ] );
      ( "span",
        [
          Alcotest.test_case "disabled" `Quick test_span_disabled_is_inert;
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safety;
          Alcotest.test_case "exit without enter" `Quick
            test_span_exit_without_enter;
          Alcotest.test_case "absorb ordering" `Quick
            test_span_absorb_ordering;
          Alcotest.test_case "record json" `Quick test_span_record_json;
        ] );
      ( "prof",
        [
          Alcotest.test_case "measure and flush" `Quick
            test_prof_measure_counts_and_alloc;
          Alcotest.test_case "exception interval" `Quick
            test_prof_records_on_exception;
          Alcotest.test_case "merge / empty flush" `Quick
            test_prof_merge_and_empty_flush;
          Alcotest.test_case "find_histogram" `Quick
            test_find_histogram_matches_summary;
        ] );
      ( "progress",
        [
          Alcotest.test_case "disabled" `Quick test_progress_disabled;
          Alcotest.test_case "deterministic emission" `Quick
            test_progress_deterministic_emission;
          Alcotest.test_case "total / render / json" `Quick
            test_progress_set_total_render_json;
        ] );
      ( "instrumented sweeps",
        [
          Alcotest.test_case "results unchanged" `Quick
            test_instrumented_sweep_results_unchanged;
          Alcotest.test_case "par report" `Quick test_par_report;
        ] );
      ( "trace",
        [
          Alcotest.test_case "record-free diagram" `Quick
            test_diagram_without_records_is_honest;
          Alcotest.test_case "optional costs" `Quick
            test_summary_costs_are_optional;
        ] );
      ( "wire",
        [
          Alcotest.test_case "blocking round-trip" `Quick
            test_wire_blocking_roundtrip;
          Alcotest.test_case "truncated stream" `Quick
            test_wire_truncated_stream;
          Alcotest.test_case "decoder 1-byte feeds" `Quick
            test_wire_decoder_chunked;
          Alcotest.test_case "bad header is sticky" `Quick
            test_wire_decoder_bad_header_sticky;
          Alcotest.test_case "oversized frame refused" `Quick
            test_wire_decoder_too_large;
        ] );
      ( "artifact",
        [
          Alcotest.test_case "write and overwrite" `Quick
            test_artifact_write_and_overwrite;
          Alcotest.test_case "failed write leaves target" `Quick
            test_artifact_failed_write_leaves_target;
        ] );
      ( "heartbeat",
        [
          Alcotest.test_case "snapshot json round-trip" `Quick
            test_snapshot_json_roundtrip;
          Alcotest.test_case "staleness verdicts" `Quick
            test_heartbeat_check_verdicts;
          Alcotest.test_case "live meter stream" `Quick
            test_heartbeat_accepts_live_meter_stream;
        ] );
    ]
