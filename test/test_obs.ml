(* The observability layer: event streams out of the engine, JSONL/Chrome
   export, metrics counting, and the replay path behind `ipi trace`. *)

open Kernel
open Helpers

let plan ?(crashes = []) ?(lost = []) ?(delayed = []) () =
  {
    Sim.Schedule.crashes = List.map Pid.of_int crashes;
    lost = List.map (fun (a, b) -> (Pid.of_int a, Pid.of_int b)) lost;
    delayed =
      List.map
        (fun (a, b, r) -> (Pid.of_int a, Pid.of_int b, Round.of_int r))
        delayed;
  }

let es ~gst plans =
  Sim.Schedule.make ~model:Sim.Model.Es ~gst:(Round.of_int gst) plans

let traced_run ?record algo cfg schedule =
  let sink, drain = Obs.Sink.memory () in
  let trace = run ?record ~sink algo cfg schedule in
  (trace, drain ())

(* ------------------------------------------------------------------ *)
(* Sink basics                                                         *)

let test_sink_noop () =
  check_bool "noop disabled" false (Obs.Sink.enabled Obs.Sink.noop);
  check_bool "tee of noops is disabled" false
    (Obs.Sink.enabled (Obs.Sink.tee Obs.Sink.noop Obs.Sink.noop));
  let sink, drain = Obs.Sink.memory () in
  check_bool "memory enabled" true (Obs.Sink.enabled sink);
  check_bool "tee with noop keeps side" true
    (Obs.Sink.enabled (Obs.Sink.tee Obs.Sink.noop sink));
  Obs.Sink.emit sink (Obs.Event.Round_start { round = Round.first });
  check_int "one event" 1 (List.length (drain ()))

let test_run_without_sink_unchanged () =
  (* The default path must behave exactly as before the obs layer existed:
     same trace, no sink required anywhere. *)
  let cfg = config ~n:3 ~t:1 in
  let plain = run at2 cfg quiet_es in
  let traced, events = traced_run at2 cfg quiet_es in
  check_int "same rounds" plain.Sim.Trace.rounds_executed
    traced.Sim.Trace.rounds_executed;
  check_bool "same decisions" true
    (Sim.Trace.decided_values plain = Sim.Trace.decided_values traced);
  check_bool "events nonempty when traced" true (events <> [])

(* ------------------------------------------------------------------ *)
(* Event stream shape                                                  *)

let chain_events cfg =
  let schedule = Workload.Cascade.chain cfg in
  traced_run at2 cfg schedule

let test_event_stream_shape () =
  let cfg = config ~n:5 ~t:2 in
  let trace, events = chain_events cfg in
  (match events with
  | Obs.Event.Run_start { algorithm; n; t; proposals } :: _ ->
      check_bool "algorithm named" true (algorithm <> "");
      check_int "n" 5 n;
      check_int "t" 2 t;
      check_int "all proposals" 5 (List.length proposals)
  | _ -> Alcotest.fail "first event must be Run_start");
  (match List.rev events with
  | Obs.Event.Run_end { rounds; decided; all_halted } :: _ ->
      check_int "rounds" trace.Sim.Trace.rounds_executed rounds;
      check_int "decided" (List.length trace.Sim.Trace.decisions) decided;
      check_bool "halted" trace.Sim.Trace.all_halted all_halted
  | _ -> Alcotest.fail "last event must be Run_end");
  let round_starts =
    List.length
      (List.filter
         (function Obs.Event.Round_start _ -> true | _ -> false)
         events)
  in
  check_int "one Round_start per executed round"
    trace.Sim.Trace.rounds_executed round_starts;
  let decide_events =
    List.filter_map
      (function
        | Obs.Event.Decide { pid; round; value } -> Some (pid, round, value)
        | _ -> None)
      events
  in
  check_bool "Decide events mirror trace decisions" true
    (decide_events
    = List.map
        (fun (d : Sim.Trace.decision) -> (d.pid, d.round, d.value))
        trace.Sim.Trace.decisions)

(* ------------------------------------------------------------------ *)
(* Metrics: counters match the schedule's fates                        *)

let test_metrics_match_schedule_fates () =
  let cfg = config ~n:3 ~t:1 in
  (* Hand-built adversary: p2 crashes in round 1 losing its copies to p1 and
     p3; additionally p1's round-1 copy to p3 arrives only in round 2. *)
  let schedule =
    es ~gst:3
      [ plan ~crashes:[ 2 ] ~lost:[ (2, 1); (2, 3) ] ~delayed:[ (1, 3, 2) ] () ]
  in
  let registry = Obs.Metrics.create () in
  let trace =
    Sim.Runner.run ~record:true
      ~sink:(Obs.Metrics.counting_sink registry)
      floodset cfg
      ~proposals:(Sim.Runner.distinct_proposals cfg)
      schedule
  in
  let counter name =
    match Obs.Metrics.find_counter registry name with
    | Some v -> v
    | None -> Alcotest.fail ("missing counter " ^ name)
  in
  (* Drop / Delay counts are exactly the schedule's per-copy fates. *)
  check_int "drops = lost copies" 2 (counter "sim.messages_dropped");
  check_int "delays = delayed copies" 1 (counter "sim.messages_delayed");
  check_int "crashes" 1 (counter "sim.crashes");
  (* Send accounting agrees with the record-based Stats.Summary path. *)
  check_int "messages_sent = messages_of_trace"
    (Option.get (Stats.Summary.messages_of_trace trace))
    (counter "sim.messages_sent");
  check_int "bytes_sent = bytes_of_trace"
    (Option.get (Stats.Summary.bytes_of_trace trace))
    (counter "sim.bytes_sent");
  check_int "metrics helpers agree"
    (Option.get (Stats.Summary.messages_of_metrics registry))
    (counter "sim.messages_sent");
  (* Deliver events agree with the per-round delivery records. *)
  let recorded_deliveries =
    List.fold_left
      (fun acc (r : Sim.Trace.round_record) -> acc + List.length r.delivered)
      0 trace.Sim.Trace.records
  in
  check_int "delivered = recorded deliveries" recorded_deliveries
    (counter "sim.messages_delivered");
  check_int "decisions" (List.length trace.Sim.Trace.decisions)
    (counter "sim.decisions");
  match Obs.Metrics.find_gauge registry "sim.global_decision_round" with
  | Some r -> check_int "global decision gauge" (global_round trace) r
  | None -> Alcotest.fail "global decision gauge unset"

(* ------------------------------------------------------------------ *)
(* JSONL: determinism and round-trip                                   *)

let test_jsonl_determinism () =
  let cfg = config ~n:5 ~t:2 in
  let log () =
    let _, events = chain_events cfg in
    Obs.Jsonl.to_string events
  in
  let a = log () and b = log () in
  check_bool "byte-identical logs" true (String.equal a b);
  check_bool "log nonempty" true (String.length a > 0)

let test_jsonl_roundtrip () =
  let cfg = config ~n:5 ~t:2 in
  let _, events = chain_events cfg in
  (* Include an Fd_output so every constructor that reaches logs is
     exercised. *)
  let events =
    events
    @ [
        Obs.Event.Fd_output
          {
            pid = Pid.of_int 1;
            round = Round.of_int 2;
            suspected = [ Pid.of_int 2; Pid.of_int 3 ];
          };
      ]
  in
  match Obs.Jsonl.parse (Obs.Jsonl.to_string events) with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
      check_int "same length" (List.length events) (List.length parsed);
      check_bool "same events" true
        (List.for_all2 Obs.Event.equal events parsed)

let test_jsonl_skips_comments () =
  match Obs.Jsonl.parse "# comment\n\n{\"ev\":\"round_start\",\"round\":3}\n" with
  | Ok [ Obs.Event.Round_start { round } ] ->
      check_int "round" 3 (Round.to_int round)
  | Ok _ -> Alcotest.fail "expected exactly one event"
  | Error e -> Alcotest.fail e

let test_jsonl_reports_bad_line () =
  match Obs.Jsonl.parse "{\"ev\":\"round_start\",\"round\":1}\nnot json\n" with
  | Error e -> check_bool "names line 2" true (contains e "line 2")
  | Ok _ -> Alcotest.fail "expected a parse error"

(* ------------------------------------------------------------------ *)
(* Replay: the `ipi trace` path                                        *)

let test_replay_matches_live_diagram () =
  let cfg = config ~n:5 ~t:2 in
  let schedule = Workload.Cascade.chain cfg in
  let sink, drain = Obs.Sink.memory () in
  let trace = run ~record:true ~sink at2 cfg schedule in
  let events = drain () in
  (* Round-trip through the serialized form, as `ipi trace` does. *)
  let parsed =
    match Obs.Jsonl.parse (Obs.Jsonl.to_string events) with
    | Ok evs -> evs
    | Error e -> Alcotest.fail e
  in
  match Obs.Replay.of_events parsed with
  | Error e -> Alcotest.fail e
  | Ok replay ->
      let live = Format.asprintf "%a" Sim.Trace.pp_diagram trace in
      let replayed = Format.asprintf "%a" Obs.Replay.pp_diagram replay in
      check_string "replayed diagram equals live diagram" live replayed

let test_replay_summary () =
  let cfg = config ~n:3 ~t:1 in
  let _, events = traced_run floodset cfg quiet_es in
  match Obs.Replay.of_events events with
  | Error e -> Alcotest.fail e
  | Ok replay ->
      let s = Format.asprintf "%a" Obs.Replay.pp_summary replay in
      check_bool "names algorithm" true (contains s "FloodSet");
      check_bool "counts decisions" true (contains s "3 decision(s)")

(* ------------------------------------------------------------------ *)
(* Chrome export                                                       *)

let test_chrome_export_is_valid_json () =
  let cfg = config ~n:3 ~t:1 in
  let _, events = traced_run floodset cfg quiet_es in
  match Obs.Json.of_string (Obs.Chrome.to_string events) with
  | Error e -> Alcotest.fail e
  | Ok json -> (
      match Option.bind (Obs.Json.member "traceEvents" json) Obs.Json.to_list_opt with
      | Some entries -> check_bool "has trace events" true (entries <> [])
      | None -> Alcotest.fail "missing traceEvents")

(* ------------------------------------------------------------------ *)
(* Diagram on record-free traces                                       *)

let test_diagram_without_records_is_honest () =
  let cfg = config ~n:3 ~t:1 in
  let trace = run floodset cfg quiet_es in
  let diagram = Format.asprintf "%a" Sim.Trace.pp_diagram trace in
  check_bool "notes missing records" true (contains diagram "no per-round records");
  check_bool "unknown cells are '?'" true (contains diagram "?");
  check_bool "decisions still shown" true (contains diagram "D=")

let test_summary_costs_are_optional () =
  let cfg = config ~n:3 ~t:1 in
  let bare = run floodset cfg quiet_es in
  check_bool "no records -> None" true
    (Stats.Summary.messages_of_trace bare = None
    && Stats.Summary.bytes_of_trace bare = None);
  let recorded = run ~record:true floodset cfg quiet_es in
  check_bool "records -> Some" true
    (Stats.Summary.messages_of_trace recorded <> None
    && Stats.Summary.bytes_of_trace recorded <> None)

(* ------------------------------------------------------------------ *)
(* Fd_output and progress metrics                                      *)

let test_fd_history_emits_events () =
  let cfg = config ~n:3 ~t:1 in
  let schedule = es ~gst:1 [ plan ~crashes:[ 2 ] ~lost:[ (2, 1); (2, 3) ] () ] in
  let sink, drain = Obs.Sink.memory () in
  let history = Fd.Simulate.history ~sink cfg schedule ~rounds:3 in
  let events = drain () in
  check_int "one event per history entry" (List.length history)
    (List.length events);
  check_bool "all are Fd_output" true
    (List.for_all
       (function Obs.Event.Fd_output _ -> true | _ -> false)
       events)

let test_search_reports_metrics () =
  let cfg = config ~n:3 ~t:1 in
  let registry = Obs.Metrics.create () in
  let outcome =
    Workload.Search.random_synchronous ~samples:20 ~metrics:registry ~seed:1
      ~algo:at2 ~config:cfg
      ~proposals:(Sim.Runner.distinct_proposals cfg)
      ()
  in
  check_int "search.runs" outcome.Workload.Search.runs
    (Option.get (Obs.Metrics.find_counter registry "search.runs"))

let test_exhaustive_reports_metrics () =
  let cfg = config ~n:3 ~t:1 in
  let registry = Obs.Metrics.create () in
  let result =
    Mc.Exhaustive.sweep ~metrics:registry ~algo:at2 ~config:cfg
      ~proposals:(Sim.Runner.distinct_proposals cfg)
      ()
  in
  check_int "mc.runs" result.Mc.Exhaustive.runs
    (Option.get (Obs.Metrics.find_counter registry "mc.runs"));
  check_int "mc.violations" 0
    (Option.get (Obs.Metrics.find_counter registry "mc.violations"))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "sink",
        [
          Alcotest.test_case "noop" `Quick test_sink_noop;
          Alcotest.test_case "default path unchanged" `Quick
            test_run_without_sink_unchanged;
        ] );
      ( "events",
        [
          Alcotest.test_case "stream shape" `Quick test_event_stream_shape;
          Alcotest.test_case "fd history" `Quick test_fd_history_emits_events;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "schedule fates" `Quick
            test_metrics_match_schedule_fates;
          Alcotest.test_case "search progress" `Quick
            test_search_reports_metrics;
          Alcotest.test_case "mc progress" `Quick
            test_exhaustive_reports_metrics;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "determinism" `Quick test_jsonl_determinism;
          Alcotest.test_case "round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "comments" `Quick test_jsonl_skips_comments;
          Alcotest.test_case "bad line" `Quick test_jsonl_reports_bad_line;
        ] );
      ( "replay",
        [
          Alcotest.test_case "diagram" `Quick test_replay_matches_live_diagram;
          Alcotest.test_case "summary" `Quick test_replay_summary;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "chrome json" `Quick
            test_chrome_export_is_valid_json;
        ] );
      ( "trace",
        [
          Alcotest.test_case "record-free diagram" `Quick
            test_diagram_without_records_is_honest;
          Alcotest.test_case "optional costs" `Quick
            test_summary_costs_are_optional;
        ] );
    ]
