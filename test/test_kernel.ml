open Kernel
open Helpers

(* ------------------------------------------------------------------ *)
(* Pid                                                                 *)

let test_pid_of_int () =
  check_int "roundtrip" 3 (Pid.to_int (Pid.of_int 3));
  Alcotest.check_raises "ids are 1-based"
    (Invalid_argument "Pid.of_int: process ids are 1-based") (fun () ->
      ignore (Pid.of_int 0))

let test_pid_order () =
  check_bool "p1 < p2" true (Pid.compare (Pid.of_int 1) (Pid.of_int 2) < 0);
  check_bool "equal" true (Pid.equal (Pid.of_int 4) (Pid.of_int 4));
  check_string "pp" "p3" (Pid.to_string (Pid.of_int 3))

let test_pid_all () =
  check_int "all length" 5 (List.length (Pid.all ~n:5));
  check_int "others length" 4 (List.length (Pid.others ~n:5 (Pid.of_int 2)));
  check_bool "others excludes self" true
    (not (List.exists (Pid.equal (Pid.of_int 2)) (Pid.others ~n:5 (Pid.of_int 2))))

let test_pid_set () =
  let s = Pid.Set.of_ints [ 1; 3 ] in
  check_int "cardinal" 2 (Pid.Set.cardinal s);
  check_bool "mem" true (Pid.Set.mem (Pid.of_int 3) s);
  check_int "universe" 4 (Pid.Set.cardinal (Pid.Set.universe ~n:4));
  check_string "pp" "{p1, p3}" (Format.asprintf "%a" Pid.Set.pp s)

(* ------------------------------------------------------------------ *)
(* Value                                                               *)

let test_value_basics () =
  check_int "zero" 0 (Value.to_int Value.zero);
  check_int "one" 1 (Value.to_int Value.one);
  check_int "min" 2 (Value.to_int (Value.min (Value.of_int 2) (Value.of_int 7)));
  check_int "minimum" 1
    (Value.to_int (Value.minimum (List.map Value.of_int [ 4; 1; 9 ])));
  Alcotest.check_raises "minimum of empty"
    (Invalid_argument "Value.minimum: empty list") (fun () ->
      ignore (Value.minimum []))

let test_value_tag =
  qtest "tag/untag roundtrip"
    QCheck.(pair (int_range 1 20) (pair (int_range 1 20) (int_range 0 1000)))
    (fun (n, (i, raw)) ->
      let i = ((i - 1) mod n) + 1 in
      let proposer = Pid.of_int i in
      let raw', proposer' = Value.untag ~n (Value.tag ~proposer ~n raw) in
      raw' = raw && Pid.equal proposer' proposer)

let test_value_tag_order =
  qtest "tag preserves raw order"
    QCheck.(pair (int_range 2 10) (pair (int_range 0 50) (int_range 0 50)))
    (fun (n, (a, b)) ->
      let ta = Value.tag ~proposer:(Pid.of_int 2) ~n a in
      let tb = Value.tag ~proposer:(Pid.of_int 1) ~n b in
      if a < b then Value.compare ta tb < 0
      else if a > b then Value.compare ta tb > 0
      else (* same raw: proposer id breaks the tie *) Value.compare ta tb > 0)

(* ------------------------------------------------------------------ *)
(* Round                                                               *)

let test_round_basics () =
  check_int "first" 1 (Round.to_int Round.first);
  check_int "succ" 4 (Round.to_int (Round.succ (Round.of_int 3)));
  check_bool "pred of 1" true (Round.pred Round.first = None);
  check_int "pred" 2
    (Round.to_int (Option.get (Round.pred (Round.of_int 3))));
  check_int "add" 7 (Round.to_int (Round.add (Round.of_int 3) 4));
  check_int "diff" 2 (Round.diff (Round.of_int 5) (Round.of_int 3));
  Alcotest.check_raises "of_int 0"
    (Invalid_argument "Round.of_int: rounds are numbered from 1") (fun () ->
      ignore (Round.of_int 0))

let test_round_iter () =
  let visited = ref [] in
  Round.iter_up_to (Round.of_int 4) ~f:(fun r ->
      visited := Round.to_int r :: !visited);
  Alcotest.(check (list int)) "in order" [ 1; 2; 3; 4 ] (List.rev !visited)

(* ------------------------------------------------------------------ *)
(* Config                                                              *)

let test_config_make () =
  let c = Config.make ~n:5 ~t:2 in
  check_int "n" 5 (Config.n c);
  check_int "t" 2 (Config.t c);
  check_int "quorum" 3 (Config.quorum c);
  check_int "majority" 3 (Config.majority c);
  check_bool "indulgent regime" true (Config.has_majority_resilience c);
  check_bool "not third" false (Config.has_third_resilience c)

let test_config_invalid () =
  List.iter
    (fun (n, t) ->
      match Config.make ~n ~t with
      | (_ : Config.t) -> Alcotest.fail "should reject"
      | exception Invalid_argument _ -> ())
    [ (0, 0); (3, 3); (3, 4); (2, -1) ]

let test_config_regimes =
  qtest "regime predicates match arithmetic"
    QCheck.(pair (int_range 1 30) (int_range 0 29))
    (fun (n, t) ->
      QCheck.assume (t < n);
      let c = Config.make ~n ~t in
      Config.has_majority_resilience c = (0 < t && 2 * t < n)
      && Config.has_third_resilience c = (3 * t < n)
      && Config.quorum c = n - t
      && Config.majority c > n / 2
      && Config.majority c <= (n / 2) + 1)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)

let test_rng_determinism () =
  let a = Rng.create ~seed:99 and b = Rng.create ~seed:99 in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys

let test_rng_bounds =
  qtest "int within bounds"
    QCheck.(pair int (int_range 1 10000))
    (fun (seed, bound) ->
      let g = Rng.create ~seed in
      let x = Rng.int g bound in
      0 <= x && x < bound)

let test_rng_int_in =
  qtest "int_in within range"
    QCheck.(triple int (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, span) ->
      let g = Rng.create ~seed in
      let x = Rng.int_in g lo (lo + span) in
      lo <= x && x <= lo + span)

let test_rng_shuffle =
  qtest "shuffle is a permutation"
    QCheck.(pair int (list small_int))
    (fun (seed, xs) ->
      let g = Rng.create ~seed in
      List.sort compare (Rng.shuffle g xs) = List.sort compare xs)

let test_rng_sample =
  qtest "sample size and membership"
    QCheck.(triple int (int_range 0 20) (list small_int))
    (fun (seed, k, xs) ->
      let g = Rng.create ~seed in
      let s = Rng.sample g k xs in
      List.length s = min k (List.length xs)
      && List.for_all (fun x -> List.mem x xs) s)

let test_rng_copy_and_split () =
  let g = Rng.create ~seed:5 in
  let g' = Rng.copy g in
  check_int "copy continues identically" (Rng.int g 1000) (Rng.int g' 1000);
  let h = Rng.split g in
  (* The split stream differs from the parent's continuation (with
     overwhelming probability over 10 draws). *)
  let xs = List.init 10 (fun _ -> Rng.int g 1000000) in
  let ys = List.init 10 (fun _ -> Rng.int h 1000000) in
  check_bool "split diverges" true (xs <> ys)

let test_rng_float =
  qtest "float within bound"
    QCheck.(pair int (int_range 1 1000))
    (fun (seed, bound) ->
      let g = Rng.create ~seed in
      let x = Rng.float g (float_of_int bound) in
      0.0 <= x && x < float_of_int bound)

let test_rng_subset =
  qtest "subset is a sublist"
    QCheck.(pair int (list small_int))
    (fun (seed, xs) ->
      let g = Rng.create ~seed in
      List.for_all (fun x -> List.mem x xs) (Rng.subset g xs))

let test_rng_pick () =
  let g = Rng.create ~seed:1 in
  check_bool "pick member" true (List.mem (Rng.pick g [ 1; 2; 3 ]) [ 1; 2; 3 ]);
  check_bool "pick_opt empty" true (Rng.pick_opt g ([] : int list) = None)

(* ------------------------------------------------------------------ *)
(* Listx                                                               *)

let test_listx_count () =
  check_int "count" 2 (Listx.count (fun x -> x > 1) [ 0; 2; 3 ])

let test_listx_occurrences () =
  Alcotest.(check (list (pair int int)))
    "multiset" [ (1, 2); (2, 1) ]
    (Listx.occurrences ~compare [ 1; 2; 1 ])

let test_listx_most_frequent () =
  check_bool "most frequent" true
    (Listx.most_frequent ~compare [ 3; 1; 3; 2 ] = Some (3, 2));
  check_bool "empty" true (Listx.most_frequent ~compare ([] : int list) = None)

let test_listx_all_equal () =
  check_bool "equal" true (Listx.all_equal ~equal:Int.equal [ 2; 2; 2 ]);
  check_bool "not equal" false (Listx.all_equal ~equal:Int.equal [ 2; 3 ]);
  check_bool "empty" true (Listx.all_equal ~equal:Int.equal [])

let test_listx_take_drop () =
  Alcotest.(check (list int)) "take" [ 1; 2 ] (Listx.take 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "take over" [ 1 ] (Listx.take 5 [ 1 ]);
  Alcotest.(check (list int)) "drop" [ 3 ] (Listx.drop 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "range" [ 2; 3; 4 ] (Listx.range 2 4);
  Alcotest.(check (list int)) "empty range" [] (Listx.range 3 2)

let test_listx_subsets =
  qtest "subsets count is 2^n" QCheck.(int_range 0 10) (fun n ->
      let xs = List.init n Fun.id in
      List.length (Listx.subsets xs) = 1 lsl n)

let test_listx_prefixes () =
  Alcotest.(check (list (list int)))
    "prefixes"
    [ []; [ 1 ]; [ 1; 2 ] ]
    (Listx.prefixes [ 1; 2 ])

let test_listx_cartesian () =
  check_int "cartesian size" 6
    (List.length (Listx.cartesian [ 1; 2 ] [ 'a'; 'b'; 'c' ]))

let test_listx_max_by () =
  check_bool "max_by" true
    (Listx.max_by ~compare ~f:String.length [ "ab"; "a"; "abc" ] = Some "abc");
  check_bool "empty" true
    (Listx.max_by ~compare ~f:Fun.id ([] : int list) = None)

(* ------------------------------------------------------------------ *)
(* Bitset                                                              *)

let test_bitset_basics () =
  let open Bitset in
  check_bool "empty" true (is_empty empty);
  let s = add 5 (add 1 (singleton 3)) in
  check_int "cardinal" 3 (cardinal s);
  check_bool "mem 3" true (mem 3 s);
  check_bool "mem 2" false (mem 2 s);
  check_bool "remove" false (mem 3 (remove 3 s));
  check_int "remove absent is id" (cardinal s) (cardinal (remove 7 s));
  check_bool "ascending fold" true
    (List.rev (fold (fun i acc -> i :: acc) s []) = [ 1; 3; 5 ]);
  check_bool "to_list" true (to_list s = [ 1; 3; 5 ]);
  check_bool "of_list round-trip" true (equal s (of_list [ 5; 3; 1 ]))

let test_bitset_algebra () =
  let open Bitset in
  let a = of_list [ 1; 2; 3 ] and b = of_list [ 2; 3; 4 ] in
  check_bool "union" true (to_list (union a b) = [ 1; 2; 3; 4 ]);
  check_bool "inter" true (to_list (inter a b) = [ 2; 3 ]);
  check_bool "diff" true (to_list (diff a b) = [ 1 ]);
  check_bool "subset" true (subset (inter a b) a);
  check_bool "not subset" false (subset a b);
  check_int "full n=6" 6 (cardinal (full ~n:6));
  check_bool "full mem bounds" true
    (mem 1 (full ~n:6) && mem 6 (full ~n:6) && not (mem 7 (full ~n:6)))

let test_bitset_pid_set_round_trip () =
  let s = Pid.Set.of_ints [ 2; 4; 5 ] in
  check_bool "round-trip" true
    (Pid.Set.equal s (Bitset.to_pid_set (Bitset.of_pid_set s)));
  check_int "cardinal agrees" (Pid.Set.cardinal s)
    (Bitset.cardinal (Bitset.of_pid_set s))

let test_bitset_bounds () =
  let raises f = try f () |> ignore; false with Invalid_argument _ -> true in
  check_bool "0 rejected" true (raises (fun () -> Bitset.singleton 0));
  check_bool "max_pid ok" true
    (Bitset.mem Bitset.max_pid (Bitset.singleton Bitset.max_pid));
  check_bool "max_pid+1 rejected" true
    (raises (fun () -> Bitset.singleton (Bitset.max_pid + 1)))

(* ------------------------------------------------------------------ *)
(* Bits: popcount / ctz against naive loops                            *)

let naive_popcount x =
  let rec go acc i =
    if i = Sys.int_size then acc
    else go (acc + ((x lsr i) land 1)) (i + 1)
  in
  go 0 0

let naive_ctz x =
  if x = 0 then Sys.int_size
  else
    let rec go i = if (x lsr i) land 1 = 1 then i else go (i + 1) in
    go 0

let test_bits_units () =
  check_int "popcount 0" 0 (Bits.popcount 0);
  check_int "popcount 1" 1 (Bits.popcount 1);
  check_int "popcount -1 is every bit" Sys.int_size (Bits.popcount (-1));
  check_int "popcount max_int" (Sys.int_size - 1) (Bits.popcount max_int);
  check_int "ctz 0 is word size" Sys.int_size (Bits.ctz 0);
  check_int "ctz 1" 0 (Bits.ctz 1);
  check_int "ctz min_int" (Sys.int_size - 1) (Bits.ctz min_int)

let test_bits_popcount =
  qtest "popcount matches the naive loop" QCheck.int (fun x ->
      Bits.popcount x = naive_popcount x)

let test_bits_ctz =
  qtest "ctz matches the naive loop" QCheck.int (fun x ->
      Bits.ctz x = naive_ctz x)

(* ------------------------------------------------------------------ *)
(* Bitset.Big: equivalence with the int variant on n <= max_pid, and   *)
(* behaviour beyond it                                                 *)

let small_pids = QCheck.(list_of_size Gen.(0 -- 12) (int_range 1 Bitset.max_pid))

(* Big.of_small lifts the int variant's raw bits: the canonical bridge
   the two representations are pinned to agree across. *)
let big_of s = Bitset.Big.of_small (Bitset.to_int s)

let test_big_equiv_ops =
  qtest "Big agrees with the int variant on every operation"
    QCheck.(pair small_pids small_pids)
    (fun (xs, ys) ->
      let a = Bitset.of_list xs and b = Bitset.of_list ys in
      let ba = Bitset.Big.of_list xs and bb = Bitset.Big.of_list ys in
      Bitset.Big.equal ba (big_of a)
      && Bitset.to_list (Bitset.union a b) = Bitset.Big.to_list (Bitset.Big.union ba bb)
      && Bitset.to_list (Bitset.inter a b) = Bitset.Big.to_list (Bitset.Big.inter ba bb)
      && Bitset.to_list (Bitset.diff a b) = Bitset.Big.to_list (Bitset.Big.diff ba bb)
      && Bitset.subset a b = Bitset.Big.subset ba bb
      && Bitset.cardinal a = Bitset.Big.cardinal ba
      && Bitset.is_empty a = Bitset.Big.is_empty ba
      && List.for_all
           (fun p -> Bitset.mem p a = Bitset.Big.mem p ba)
           (List.init 16 (fun i -> i + 1))
      && Bitset.fold (fun p acc -> p :: acc) a []
         = Bitset.Big.fold (fun p acc -> p :: acc) ba []
      && compare (Bitset.compare a b) 0 = compare (Bitset.Big.compare ba bb) 0)

let test_big_equiv_full =
  qtest "Big.full matches full on small n"
    QCheck.(int_range 0 Bitset.max_pid)
    (fun n -> Bitset.Big.equal (Bitset.Big.full ~n) (big_of (Bitset.full ~n)))

let test_big_large_n () =
  List.iter
    (fun n ->
      let open Bitset.Big in
      let f = full ~n in
      check_int (Printf.sprintf "full cardinal n=%d" n) n (cardinal f);
      check_bool "low mem" true (mem 1 f);
      check_bool "high mem" true (mem n f);
      check_bool "n+1 not mem" false (mem (n + 1) f);
      check_bool "remove high" false (mem n (remove n f));
      check_int "remove high cardinal" (n - 1) (cardinal (remove n f));
      (* removing the top pid must re-canonicalise (trim), so structural
         equality keeps working *)
      check_bool "canonical after remove" true
        (equal (remove n f) (diff f (singleton n)));
      check_bool "add back round-trips" true
        (equal f (add n (remove n f)));
      check_bool "to_list ascending" true
        (to_list f = List.init n (fun i -> i + 1));
      check_bool "fold agrees with to_list" true
        (List.rev (fold (fun p acc -> p :: acc) f []) = to_list f);
      check_bool "singleton beyond word 0" true (mem n (singleton n));
      check_bool "union across words" true
        (equal f (union (of_list (List.init (n / 2) (fun i -> i + 1)))
                    (of_list (List.init (n - (n / 2)) (fun i -> (n / 2) + i + 1))))))
    [ 63; 64; 100; 1_000 ]

let test_big_canonical () =
  let open Bitset.Big in
  (* empty must be the unique representation of the empty set, whatever
     operations produced it — Dedup keys rely on structural equality. *)
  check_bool "remove to empty" true (equal empty (remove 100 (singleton 100)));
  check_bool "inter disjoint" true
    (equal empty (inter (singleton 100) (singleton 999)));
  check_bool "diff self" true
    (equal empty (diff (full ~n:200) (full ~n:200)));
  check_bool "of_small zero" true (equal empty (of_small 0));
  check_bool "compare sign" true (compare (singleton 100) (singleton 99) > 0)

let () =
  Alcotest.run "kernel"
    [
      ( "pid",
        [
          Alcotest.test_case "of_int" `Quick test_pid_of_int;
          Alcotest.test_case "order" `Quick test_pid_order;
          Alcotest.test_case "all/others" `Quick test_pid_all;
          Alcotest.test_case "sets" `Quick test_pid_set;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basics" `Quick test_bitset_basics;
          Alcotest.test_case "algebra" `Quick test_bitset_algebra;
          Alcotest.test_case "pid-set round-trip" `Quick
            test_bitset_pid_set_round_trip;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
        ] );
      ( "bits",
        [
          Alcotest.test_case "units" `Quick test_bits_units;
          test_bits_popcount;
          test_bits_ctz;
        ] );
      ( "bitset-big",
        [
          test_big_equiv_ops;
          test_big_equiv_full;
          Alcotest.test_case "large n" `Quick test_big_large_n;
          Alcotest.test_case "canonical" `Quick test_big_canonical;
        ] );
      ( "value",
        [
          Alcotest.test_case "basics" `Quick test_value_basics;
          test_value_tag;
          test_value_tag_order;
        ] );
      ( "round",
        [
          Alcotest.test_case "basics" `Quick test_round_basics;
          Alcotest.test_case "iter" `Quick test_round_iter;
        ] );
      ( "config",
        [
          Alcotest.test_case "make" `Quick test_config_make;
          Alcotest.test_case "invalid" `Quick test_config_invalid;
          test_config_regimes;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "copy/split" `Quick test_rng_copy_and_split;
          Alcotest.test_case "pick" `Quick test_rng_pick;
          test_rng_bounds;
          test_rng_int_in;
          test_rng_float;
          test_rng_subset;
          test_rng_shuffle;
          test_rng_sample;
        ] );
      ( "listx",
        [
          Alcotest.test_case "count" `Quick test_listx_count;
          Alcotest.test_case "occurrences" `Quick test_listx_occurrences;
          Alcotest.test_case "most_frequent" `Quick test_listx_most_frequent;
          Alcotest.test_case "all_equal" `Quick test_listx_all_equal;
          Alcotest.test_case "take/drop/range" `Quick test_listx_take_drop;
          Alcotest.test_case "prefixes" `Quick test_listx_prefixes;
          Alcotest.test_case "cartesian" `Quick test_listx_cartesian;
          Alcotest.test_case "max_by" `Quick test_listx_max_by;
          test_listx_subsets;
        ] );
    ]
