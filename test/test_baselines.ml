open Kernel
open Helpers

let c52 = config ~n:5 ~t:2

(* ------------------------------------------------------------------ *)
(* Ws_flood compute(), driven by hand                                  *)

let payload est halt =
  { Baselines.Ws_flood.p_est = Value.of_int est; p_halt = Bitset.of_list halt }

let env src p =
  Sim.Envelope.make ~src:(Pid.of_int src) ~sent:Round.first p

let test_ws_flood_min () =
  let t = Baselines.Ws_flood.init (Value.of_int 5) in
  let t =
    Baselines.Ws_flood.compute ~n:3 ~me:(Pid.of_int 1) t
      [ env 1 (payload 5 []); env 2 (payload 3 []); env 3 (payload 9 []) ]
  in
  check_int "est is the minimum" 3 (Value.to_int t.Baselines.Ws_flood.est);
  check_bool "no suspicions" true (Bitset.is_empty t.Baselines.Ws_flood.halt)

let test_ws_flood_suspicion () =
  let t = Baselines.Ws_flood.init (Value.of_int 5) in
  (* p3's message is missing: suspect it; its estimate is not considered. *)
  let t =
    Baselines.Ws_flood.compute ~n:3 ~me:(Pid.of_int 1) t
      [ env 1 (payload 5 []); env 2 (payload 7 []) ]
  in
  check_bool "p3 suspected" true
    (Bitset.mem 3 t.Baselines.Ws_flood.halt);
  check_int "est" 5 (Value.to_int t.Baselines.Ws_flood.est)

let test_ws_flood_accusation () =
  let t = Baselines.Ws_flood.init (Value.of_int 5) in
  (* p2 reports having suspected p1 (me): p2 joins Halt and its smaller
     estimate is excluded. *)
  let t =
    Baselines.Ws_flood.compute ~n:3 ~me:(Pid.of_int 1) t
      [
        env 1 (payload 5 []);
        env 2 (payload 1 [ 1 ]);
        env 3 (payload 9 []);
      ]
  in
  check_bool "accuser halted" true
    (Bitset.mem 2 t.Baselines.Ws_flood.halt);
  check_int "accuser's estimate excluded" 5
    (Value.to_int t.Baselines.Ws_flood.est)

let test_ws_flood_halt_is_sticky () =
  let t = Baselines.Ws_flood.init (Value.of_int 5) in
  let t =
    Baselines.Ws_flood.compute ~n:3 ~me:(Pid.of_int 1) t
      [ env 1 (payload 5 []); env 2 (payload 7 []) ]
  in
  (* p3 reappears with a tiny estimate: still excluded. *)
  let t =
    Baselines.Ws_flood.compute ~n:3 ~me:(Pid.of_int 1) t
      [ env 1 (payload 5 []); env 2 (payload 7 []); env 3 (payload 0 []) ]
  in
  check_bool "p3 still halted" true
    (Bitset.mem 3 t.Baselines.Ws_flood.halt);
  check_int "est unchanged" 5 (Value.to_int t.Baselines.Ws_flood.est)

let test_ws_flood_false_detection () =
  let t = Baselines.Ws_flood.init (Value.of_int 5) in
  let t =
    Baselines.Ws_flood.compute ~n:5 ~me:(Pid.of_int 1) t
      [ env 1 (payload 5 []); env 2 (payload 7 []); env 3 (payload 7 []) ]
  in
  (* two suspicions with t = 1: |Halt| > t *)
  check_bool "detects false suspicion" true
    (Baselines.Ws_flood.detects_false_suspicion t ~config:(config ~n:5 ~t:1));
  check_bool "not with t = 2" false
    (Baselines.Ws_flood.detects_false_suspicion t ~config:c52)

(* ------------------------------------------------------------------ *)
(* FloodSet                                                            *)

let test_floodset_quiet () =
  let trace = run floodset c52 quiet_es in
  assert_consensus trace;
  check_int "decides at t+1" 3 (global_round trace);
  check_int "decides the minimum" 1 (decided_value trace)

let test_floodset_chain () =
  let trace = run floodset c52 (Workload.Cascade.chain c52) in
  assert_consensus trace;
  check_int "still t+1" 3 (global_round trace);
  (* p1's value 1 survives along the chain p1 -> p2 -> p3. *)
  check_int "chained minimum" 1 (decided_value trace)

let test_floodset_silent_crash () =
  let s =
    Workload.Cascade.silent_crashes c52 ~rounds:[ Round.first ]
  in
  let trace = run floodset c52 s in
  assert_consensus trace;
  (* p1 died before sending: its value disappears. *)
  check_int "minimum without p1" 2 (decided_value trace)

let test_floodset_es_violation () =
  let trace =
    Sim.Runner.run floodset c52
      ~proposals:(Sim.Runner.distinct_proposals c52)
      (Mc.Attack.solo_split_schedule c52)
  in
  check_bool "agreement broken in ES" true
    (Sim.Props.check_agreement trace <> [])

(* ------------------------------------------------------------------ *)
(* FloodSetWS                                                          *)

let test_floodset_ws_quiet () =
  let trace = run floodset_ws c52 quiet_es in
  assert_consensus trace;
  check_int "decides at t+1" 3 (global_round trace);
  check_int "minimum" 1 (decided_value trace)

let test_floodset_ws_sync_safety =
  qtest ~count:80 "safe on random synchronous runs" QCheck.int (fun seed ->
      let rng = Rng.create ~seed in
      let s = Workload.Random_runs.synchronous_with_delays rng c52 () in
      let trace = run floodset_ws c52 s in
      Sim.Props.check trace = []
      && global_round trace <= 3 (* t+1 *))

(* ------------------------------------------------------------------ *)
(* CT-<>S                                                              *)

let test_ct_quiet () =
  let trace = run ct c52 quiet_es in
  assert_consensus trace;
  check_int "phase 0 decides at round 4" 4 (global_round trace);
  check_int "coordinator's minimum" 1 (decided_value trace)

let test_ct_coordinator_crash () =
  let trace =
    run ct c52 (Workload.Cascade.coordinator_killer c52 ~phase_rounds:4)
  in
  assert_consensus trace;
  check_int "t wasted phases" 12 (global_round trace)

let test_ct_es_safety =
  qtest ~count:50 "safe and live on random ES runs" QCheck.int (fun seed ->
      let rng = Rng.create ~seed in
      let s = Workload.Random_runs.eventually_synchronous rng c52 ~gst:4 () in
      Sim.Props.check (run ct c52 s) = [])

let test_ct_rejects_bad_resilience () =
  match run ct (config ~n:4 ~t:2) quiet_es with
  | (_ : Sim.Trace.t) -> Alcotest.fail "t >= n/2 must be rejected"
  | exception Invalid_argument _ -> ()

(* CT-naive splits under a partition with t >= n/2. *)
let test_ct_naive_partition () =
  let cfg = config ~n:4 ~t:2 in
  let trace =
    run ct_naive cfg (Workload.Partition.split cfg ~until:16)
  in
  check_bool "agreement broken" true (Sim.Props.check_agreement trace <> [])

(* ------------------------------------------------------------------ *)
(* Hurfin-Raynal                                                       *)

let test_hr_quiet () =
  let trace = run hr c52 quiet_es in
  assert_consensus trace;
  check_int "failure-free is 2 rounds" 2 (global_round trace);
  check_int "coordinator value" 1 (decided_value trace)

let test_hr_worst_case () =
  let trace =
    run hr c52 (Workload.Cascade.coordinator_killer c52 ~phase_rounds:2)
  in
  assert_consensus trace;
  check_int "2t+2" 6 (global_round trace)

let test_hr_sync_and_es_safety =
  qtest ~count:60 "safe on random sync and ES runs"
    QCheck.(pair int bool)
    (fun (seed, sync) ->
      let rng = Rng.create ~seed in
      let s =
        if sync then Workload.Random_runs.synchronous_with_delays rng c52 ()
        else Workload.Random_runs.eventually_synchronous rng c52 ~gst:3 ()
      in
      Sim.Props.check (run hr c52 s) = [])

(* ------------------------------------------------------------------ *)
(* AMR                                                                 *)

let c72 = config ~n:7 ~t:2

let test_amr_quiet () =
  let trace = run amr c72 quiet_es in
  assert_consensus trace;
  check_int "one phase" 2 (global_round trace);
  check_int "leader minimum" 1 (decided_value trace)

let test_amr_regime () =
  match run amr c52 quiet_es with
  | (_ : Sim.Trace.t) -> Alcotest.fail "t >= n/3 must be rejected"
  | exception Invalid_argument _ -> ()

let test_amr_safety =
  qtest ~count:60 "safe on random sync and ES runs"
    QCheck.(pair int bool)
    (fun (seed, sync) ->
      let rng = Rng.create ~seed in
      let s =
        if sync then Workload.Random_runs.synchronous_with_delays rng c72 ()
        else Workload.Random_runs.eventually_synchronous rng c72 ~gst:3 ()
      in
      Sim.Props.check (run amr c72 s) = [])

(* ------------------------------------------------------------------ *)
(* EarlyFS — early-deciding uniform consensus in SCS                   *)

let test_early_fs_failure_free () =
  let trace = run early_fs c52 quiet_es in
  assert_consensus trace;
  check_int "f=0 decides at round 2" 2 (global_round trace);
  check_int "minimum" 1 (decided_value trace)

let test_early_fs_tracks_failures () =
  (* A crash silent from round 1 is invisible afterwards: round 1 and 2
     sender sets already agree, so the decision lands at round 2. *)
  let s1 = Workload.Cascade.silent_crashes c52 ~rounds:[ Round.first ] in
  let trace1 = run early_fs c52 s1 in
  assert_consensus trace1;
  check_int "round-1 crash: still 2" 2 (global_round trace1);
  (* A crash in round 2 breaks the first comparison: decision at f+2 = 3. *)
  let s2 = Workload.Cascade.silent_crashes c52 ~rounds:[ Round.of_int 2 ] in
  let trace2 = run early_fs c52 s2 in
  assert_consensus trace2;
  check_int "round-2 crash: f+2 = 3" 3 (global_round trace2)

let test_early_fs_exhaustive () =
  (* Uniform agreement over EVERY serial run with every receiver subset:
     the rule "decide at the first repeat of the sender set, from round 2
     on" survives the adversary that kills all early deciders. *)
  List.iter
    (fun (n, t) ->
      let config = config ~n ~t in
      let r =
        Mc.Exhaustive.sweep_binary ~policy:Mc.Serial.All_subsets
          ~horizon:(t + 2) ~algo:early_fs ~config ()
      in
      check_bool
        (Printf.sprintf "no violations at (%d,%d)" n t)
        true
        (r.Mc.Exhaustive.violations = []);
      check_bool "bounded by t+1" true
        (r.Mc.Exhaustive.max_decision <= t + 1))
    [ (3, 1); (4, 1); (4, 2) ]

(* Proposition 1 applies to the early decider too: it reaches t+1 in every
   synchronous run, so some ES run must break it — the crash-free solo split
   does. *)
let test_early_fs_broken_in_es () =
  let r = Mc.Attack.run_solo_split early_fs c52 in
  check_bool "agreement broken in ES" true (r.Mc.Attack.violations <> [])

let test_early_fs_random =
  qtest ~count:120 "min(f+2, t+1) over random synchronous runs" QCheck.int
    (fun seed ->
      let rng = Rng.create ~seed in
      let s = Workload.Random_runs.synchronous rng c52 () in
      let trace = run early_fs c52 s in
      Sim.Props.check trace = []
      && global_round trace
         <= min (Sim.Schedule.crash_count s + 2) (Config.t c52 + 1))

(* ------------------------------------------------------------------ *)
(* DLS (fail-stop basic round model, Section 1.4)                      *)

let test_dls_quiet () =
  let trace = run dls c52 quiet_es in
  assert_consensus trace;
  check_int "phase 0 decides at round 4" 4 (global_round trace);
  check_int "leader's minimum" 1 (decided_value trace)

let test_dls_leader_crashes () =
  let trace =
    run dls c52 (Workload.Cascade.coordinator_killer c52 ~phase_rounds:4)
  in
  assert_consensus trace;
  check_int "t wasted phases" 12 (global_round trace)

let test_dls_regime () =
  match run dls (config ~n:4 ~t:2) quiet_es with
  | (_ : Sim.Trace.t) -> Alcotest.fail "needs n >= 2t+1"
  | exception Invalid_argument _ -> ()

let test_dls_survives_solo_split_dls () =
  let r = Mc.Attack.run_solo_split_dls dls c52 in
  check_bool "safe" true (r.Mc.Attack.violations = []);
  assert_consensus r.Mc.Attack.trace

(* Regression: this exact schedule once stranded p2 — p4/p5 crash, p1/p3
   decide early, and with one-shot DECIDE relays (all lost pre-gst) the lone
   survivor could never gather a report quorum again. Deciders must
   broadcast DECIDE forever in this model. *)
let test_dls_relay_regression () =
  let rng = Rng.create ~seed:88 in
  let s = Workload.Random_runs.dls_basic rng c52 ~gst:8 () in
  assert_valid c52 s;
  let trace = run dls c52 s in
  assert_consensus trace

let test_dls_basic_model_safety =
  qtest ~count:60 "safe and live on random DLS-basic schedules"
    QCheck.(pair int (int_range 1 8))
    (fun (seed, gst) ->
      let rng = Rng.create ~seed in
      let s = Workload.Random_runs.dls_basic rng c52 ~gst () in
      match Sim.Schedule.validate c52 s with
      | Error _ -> false
      | Ok () -> Sim.Props.check (run dls c52 s) = [])

let test_dls_on_es_runs =
  qtest ~count:50 "also safe and live on ES schedules"
    QCheck.(pair int (int_range 2 5))
    (fun (seed, gst) ->
      let rng = Rng.create ~seed in
      let s = Workload.Random_runs.eventually_synchronous rng c52 ~gst () in
      Sim.Props.check (run dls c52 s) = [])

(* ------------------------------------------------------------------ *)
(* FloodMin — the scalar flooding baseline and scaling witness         *)

let test_floodmin_quiet () =
  let trace = run floodmin c52 quiet_es in
  assert_consensus trace;
  check_int "decides at t+1" 3 (global_round trace);
  check_int "minimum" 1 (decided_value trace);
  check_bool "everyone halts" true trace.Sim.Trace.all_halted

module Floodmin_plus_4 = Baselines.Floodmin.Make (struct
  let extra_rounds = 4
end)

let test_floodmin_extra_rounds () =
  let algo = Sim.Algorithm.Packed (module Floodmin_plus_4) in
  let trace = run algo c52 quiet_es in
  assert_consensus trace;
  check_int "decision shifted by the extra rounds" 7 (global_round trace);
  check_int "still the minimum" 1 (decided_value trace)

let test_floodmin_exhaustive () =
  List.iter
    (fun (n, t) ->
      let config = config ~n ~t in
      let r = Mc.Exhaustive.sweep_binary ~algo:floodmin ~config () in
      check_bool
        (Printf.sprintf "no violations at (%d,%d)" n t)
        true
        (r.Mc.Exhaustive.violations = []);
      check_int "always decides at t+1" (t + 1) r.Mc.Exhaustive.max_decision)
    [ (3, 1); (4, 1); (4, 2) ]

(* n beyond max_pid: these runs only work end to end if the schedule and
   engine paths that index processes use the word-array bitsets. *)
let test_floodmin_large_n () =
  List.iter
    (fun (n, t) ->
      let cfg = config ~n ~t in
      let trace = run floodmin cfg quiet_es in
      assert_consensus trace;
      check_int
        (Printf.sprintf "n=%d decides at t+1" n)
        (t + 1) (global_round trace);
      check_int "minimum survives the flood" 1 (decided_value trace);
      check_int "everyone decides" n
        (List.length (Sim.Trace.decided_values trace)))
    [ (63, 2); (64, 2); (100, 3); (1_000, 2) ]

let test_floodmin_large_n_with_crash () =
  let n = 100 in
  let cfg = config ~n ~t:2 in
  (* p1 (the minimum's owner) crashes in round 1 and its last broadcast
     reaches nobody, so the flood settles on the runner-up. *)
  let s =
    Sim.Schedule.make ~model:Sim.Model.Scs ~gst:Round.first
      [
        {
          Sim.Schedule.crashes = [ Pid.of_int 1 ];
          lost =
            List.init (n - 1) (fun i -> (Pid.of_int 1, Pid.of_int (i + 2)));
          delayed = [];
        };
      ]
  in
  assert_valid cfg s;
  let trace = run floodmin cfg s in
  assert_consensus trace;
  check_int "second-smallest value wins" 2 (decided_value trace)

(* ------------------------------------------------------------------ *)
(* Padding                                                             *)

module Padded_hr =
  Baselines.Padding.Make
    (Baselines.Hurfin_raynal)
    (struct
      let rounds = 5
    end)

let test_padding () =
  let trace =
    run (Sim.Algorithm.Packed (module Padded_hr)) c52 quiet_es
  in
  assert_consensus trace;
  check_int "shifted by the pad" 7 (global_round trace);
  check_string "name carries the pad" "HR-<>S+pad5" Padded_hr.name

let () =
  Alcotest.run "baselines"
    [
      ( "ws_flood",
        [
          Alcotest.test_case "minimum" `Quick test_ws_flood_min;
          Alcotest.test_case "suspicion" `Quick test_ws_flood_suspicion;
          Alcotest.test_case "accusation" `Quick test_ws_flood_accusation;
          Alcotest.test_case "halt sticky" `Quick test_ws_flood_halt_is_sticky;
          Alcotest.test_case "false detection" `Quick test_ws_flood_false_detection;
        ] );
      ( "floodset",
        [
          Alcotest.test_case "quiet" `Quick test_floodset_quiet;
          Alcotest.test_case "chain" `Quick test_floodset_chain;
          Alcotest.test_case "silent crash" `Quick test_floodset_silent_crash;
          Alcotest.test_case "ES violation" `Quick test_floodset_es_violation;
        ] );
      ( "floodset_ws",
        [
          Alcotest.test_case "quiet" `Quick test_floodset_ws_quiet;
          test_floodset_ws_sync_safety;
        ] );
      ( "ct",
        [
          Alcotest.test_case "quiet" `Quick test_ct_quiet;
          Alcotest.test_case "coordinator crashes" `Quick test_ct_coordinator_crash;
          Alcotest.test_case "regime guard" `Quick test_ct_rejects_bad_resilience;
          Alcotest.test_case "naive partition" `Quick test_ct_naive_partition;
          test_ct_es_safety;
        ] );
      ( "hurfin_raynal",
        [
          Alcotest.test_case "quiet" `Quick test_hr_quiet;
          Alcotest.test_case "worst case 2t+2" `Quick test_hr_worst_case;
          test_hr_sync_and_es_safety;
        ] );
      ( "amr",
        [
          Alcotest.test_case "quiet" `Quick test_amr_quiet;
          Alcotest.test_case "regime guard" `Quick test_amr_regime;
          test_amr_safety;
        ] );
      ( "early_fs",
        [
          Alcotest.test_case "failure-free round 2" `Quick
            test_early_fs_failure_free;
          Alcotest.test_case "tracks failures" `Quick
            test_early_fs_tracks_failures;
          Alcotest.test_case "exhaustive uniform agreement" `Slow
            test_early_fs_exhaustive;
          Alcotest.test_case "broken in ES (Proposition 1)" `Quick
            test_early_fs_broken_in_es;
          test_early_fs_random;
        ] );
      ( "floodmin",
        [
          Alcotest.test_case "quiet" `Quick test_floodmin_quiet;
          Alcotest.test_case "extra rounds" `Quick test_floodmin_extra_rounds;
          Alcotest.test_case "exhaustive" `Quick test_floodmin_exhaustive;
          Alcotest.test_case "large n" `Quick test_floodmin_large_n;
          Alcotest.test_case "large n with crash" `Quick
            test_floodmin_large_n_with_crash;
        ] );
      ( "dls",
        [
          Alcotest.test_case "quiet" `Quick test_dls_quiet;
          Alcotest.test_case "leader crashes" `Quick test_dls_leader_crashes;
          Alcotest.test_case "regime guard" `Quick test_dls_regime;
          Alcotest.test_case "solo split in DLS model" `Quick
            test_dls_survives_solo_split_dls;
          Alcotest.test_case "stranded-survivor regression" `Quick
            test_dls_relay_regression;
          test_dls_basic_model_safety;
          test_dls_on_es_runs;
        ] );
      ("padding", [ Alcotest.test_case "pad shifts rounds" `Quick test_padding ]);
    ]
