open Kernel
open Helpers

let c31 = config ~n:3 ~t:1
let c41 = config ~n:4 ~t:1
let c52 = config ~n:5 ~t:2

(* ------------------------------------------------------------------ *)
(* Serial                                                              *)

let test_serial_choices () =
  let alive = Pid.Set.universe ~n:3 in
  let all =
    Mc.Serial.choices ~policy:Mc.Serial.All_subsets ~alive ~crashes_left:1 ()
  in
  (* no-crash + 3 victims x 2^2 subsets *)
  check_int "all-subsets branching" 13 (List.length all);
  let pre =
    Mc.Serial.choices ~policy:Mc.Serial.Prefixes ~alive ~crashes_left:1 ()
  in
  (* no-crash + 3 victims x 3 prefixes *)
  check_int "prefix branching" 10 (List.length pre);
  let none =
    Mc.Serial.choices ~policy:Mc.Serial.Prefixes ~alive ~crashes_left:0 ()
  in
  check_int "no budget" 1 (List.length none)

let test_serial_enumerate_count () =
  (* depth 1: exactly the branching factor *)
  check_int "depth 1" 13
    (Mc.Serial.count ~policy:Mc.Serial.All_subsets c31 ~horizon:1);
  (* depth 2 with budget 1: crash in round 1 leaves only No_crash after *)
  check_int "depth 2" (12 + 13)
    (Mc.Serial.count ~policy:Mc.Serial.All_subsets c31 ~horizon:2)

(* Closed-form count of serial choice sequences: with [a] alive processes
   and [b] crashes left, a round offers 1 no-crash choice plus (for each of
   the [a] victims) one receiver set per policy —

     C(a, b, 0) = 1
     C(a, b, h) = C(a, b, h-1) + branch(a) * C(a-1, b-1, h-1)   if b > 0
     C(a, 0, h) = 1

   where branch(a) = a * a for Prefixes (a victims x a survivor prefixes,
   empty included) and a * 2^(a-1) for All_subsets. *)
let rec closed_form ~branch a b h =
  if h = 0 then 1
  else
    closed_form ~branch a b (h - 1)
    + (if b > 0 then branch a * closed_form ~branch (a - 1) (b - 1) (h - 1)
       else 0)

let test_serial_count_closed_form () =
  List.iter
    (fun (policy, pol_name, branch) ->
      List.iter
        (fun (n, t, h) ->
          check_int
            (Printf.sprintf "%s n=%d t=%d h=%d" pol_name n t h)
            (closed_form ~branch n t h)
            (Mc.Serial.count ~policy (config ~n ~t) ~horizon:h))
        [ (3, 1, 1); (3, 1, 3); (4, 1, 3); (4, 2, 3); (5, 1, 2); (5, 2, 4) ])
    [
      (Mc.Serial.Prefixes, "prefixes", fun a -> a * a);
      (Mc.Serial.All_subsets, "all-subsets", fun a -> a * (1 lsl (a - 1)));
    ]

let test_serial_to_schedule () =
  let choices =
    [
      Mc.Serial.Crash
        { victim = Pid.of_int 1; receivers = Pid.Set.of_ints [ 2 ] };
      Mc.Serial.No_crash;
    ]
  in
  let s = Mc.Serial.to_schedule c31 choices in
  assert_valid c31 s;
  check_bool "synchronous" true (Sim.Schedule.synchronous s);
  check_bool "loses to p3" true
    (Sim.Schedule.fate s ~src:(Pid.of_int 1) ~dst:(Pid.of_int 3)
       ~round:Round.first
    = Sim.Schedule.Lost);
  check_bool "keeps p2" true
    (Sim.Schedule.fate s ~src:(Pid.of_int 1) ~dst:(Pid.of_int 2)
       ~round:Round.first
    = Sim.Schedule.Same_round)

let prop_serial_schedules_valid =
  qtest ~count:1 "every enumerated serial schedule validates" QCheck.unit
    (fun () ->
      let ok = ref true in
      Mc.Serial.enumerate ~policy:Mc.Serial.All_subsets c31 ~horizon:3
        ~f:(fun choices ->
          match
            Sim.Schedule.validate c31 (Mc.Serial.to_schedule c31 choices)
          with
          | Ok () -> ()
          | Error _ -> ok := false);
      !ok)

(* ------------------------------------------------------------------ *)
(* Exhaustive                                                          *)

let test_exhaustive_floodset () =
  let r =
    Mc.Exhaustive.sweep ~policy:Mc.Serial.All_subsets ~algo:floodset
      ~config:c31
      ~proposals:(Sim.Runner.distinct_proposals c31)
      ()
  in
  check_int "min = t+1" 2 r.Mc.Exhaustive.min_decision;
  check_int "max = t+1" 2 r.Mc.Exhaustive.max_decision;
  check_bool "no violations" true (r.Mc.Exhaustive.violations = []);
  check_int "no undecided" 0 r.Mc.Exhaustive.undecided_runs

let test_exhaustive_at2 () =
  let r = Mc.Exhaustive.sweep_binary ~algo:at2 ~config:c41 () in
  check_int "min = t+2" 3 r.Mc.Exhaustive.min_decision;
  check_int "max = t+2" 3 r.Mc.Exhaustive.max_decision;
  check_bool "no violations" true (r.Mc.Exhaustive.violations = []);
  check_bool "many runs" true (r.Mc.Exhaustive.runs > 500)

(* ------------------------------------------------------------------ *)
(* Determinism: incremental and parallel sweeps == the serial sweep     *)

(* Field-by-field equality, violation order included — "bit-identical" is
   the correctness anchor of the prefix-sharing and parallel drivers. *)
let result_equal (a : Mc.Exhaustive.result) (b : Mc.Exhaustive.result) =
  a.Mc.Exhaustive.runs = b.Mc.Exhaustive.runs
  && a.Mc.Exhaustive.max_decision = b.Mc.Exhaustive.max_decision
  && a.Mc.Exhaustive.min_decision = b.Mc.Exhaustive.min_decision
  && a.Mc.Exhaustive.max_witness = b.Mc.Exhaustive.max_witness
  && a.Mc.Exhaustive.undecided_runs = b.Mc.Exhaustive.undecided_runs
  && a.Mc.Exhaustive.violations = b.Mc.Exhaustive.violations
  && a.Mc.Exhaustive.crashed = b.Mc.Exhaustive.crashed
  && a.Mc.Exhaustive.shard_failures = b.Mc.Exhaustive.shard_failures
  && a.Mc.Exhaustive.expired = b.Mc.Exhaustive.expired

let test_sweep_determinism () =
  (* n=4 with t in {1,2} where the algorithm's resilience admits it:
     A(t+2) needs 2t < n and AF+2 needs 3t < n, so their t=2 rows move to
     the nearest feasible config (n=5 for A(t+2)); FloodSet covers both
     n=4 resiliences. *)
  List.iter
    (fun (algo, name, n, t) ->
      let config = config ~n ~t in
      let proposals = Sim.Runner.distinct_proposals config in
      let horizon = t + 2 in
      let s = Mc.Exhaustive.sweep ~algo ~config ~proposals ~horizon () in
      let i =
        Mc.Exhaustive.sweep_incremental ~algo ~config ~proposals ~horizon ()
      in
      let p =
        Mc.Parallel.sweep ~jobs:4 ~algo ~config ~proposals ~horizon ()
      in
      check_bool (name ^ ": incremental == serial") true (result_equal s i);
      check_bool (name ^ ": parallel == serial") true (result_equal s p))
    [
      (floodset, "floodset n=4 t=1", 4, 1);
      (floodset, "floodset n=4 t=2", 4, 2);
      (at2, "at2 n=4 t=1", 4, 1);
      (at2, "at2 n=5 t=2", 5, 2);
      (af2, "af2 n=4 t=1", 4, 1);
    ]

let test_sweep_binary_determinism () =
  let s = Mc.Exhaustive.sweep_binary ~algo:at2 ~config:c41 () in
  let i = Mc.Exhaustive.sweep_binary_incremental ~algo:at2 ~config:c41 () in
  let p = Mc.Parallel.sweep_binary ~jobs:4 ~algo:at2 ~config:c41 () in
  check_bool "binary incremental == serial" true (result_equal s i);
  check_bool "binary parallel == serial" true (result_equal s p)

(* ------------------------------------------------------------------ *)
(* State-space reduction: transposition table and symmetry              *)

(* Healthy algorithms plus the violating and the crashing fixture: the
   reductions must reproduce violations and contained errors too, not just
   clean sweeps. *)
let reduction_fixtures =
  [
    (floodset, "floodset", 4, 1);
    (floodset, "floodset", 4, 2);
    (at2, "at2", 4, 1);
    (af2, "af2", 4, 1);
    (Fuzz.Faulty.eager_floodset, "eager", 4, 1);
    (Fuzz.Faulty.raising ~at:2, "raising@2", 4, 1);
    (floodmin, "floodmin", 4, 2);
  ]

let both_policies = [ (Mc.Serial.Prefixes, "pfx"); (Mc.Serial.All_subsets, "all") ]

(* Dedup is bit-identical to the unreduced incremental sweep on every
   observable field (result_equal covers them all); only [distinct_runs]
   may shrink, and a reduction that explores nothing it didn't have to
   never explores more than the enumeration. *)
let test_dedup_equivalence () =
  List.iter
    (fun (policy, ptag) ->
      List.iter
        (fun (algo, name, n, t) ->
          let tag = Printf.sprintf "%s n=%d t=%d %s" name n t ptag in
          let config = config ~n ~t in
          let proposals = Sim.Runner.distinct_proposals config in
          let u =
            Mc.Exhaustive.sweep_incremental ~policy ~algo ~config ~proposals ()
          in
          let r, _ = Mc.Dedup.sweep ~policy ~algo ~config ~proposals () in
          check_bool (tag ^ ": dedup == unreduced") true (result_equal u r);
          check_bool (tag ^ ": explored <= runs") true
            (r.Mc.Exhaustive.distinct_runs <= r.Mc.Exhaustive.runs))
        reduction_fixtures)
    both_policies

(* The same equivalence as a property over random binary proposal
   assignments (the deterministic test above pins distinct proposals). *)
let prop_dedup_equivalent_on_random_proposals =
  qtest ~count:40 "dedup == unreduced on random binary assignments"
    QCheck.(triple (int_range 0 15) (int_range 0 6) bool)
    (fun (ones_mask, fixture, all_subsets) ->
      let algo, _, n, t = List.nth reduction_fixtures fixture in
      let policy =
        if all_subsets then Mc.Serial.All_subsets else Mc.Serial.Prefixes
      in
      let config = config ~n ~t in
      let ones =
        Pid.Set.of_ints
          (List.filter
             (fun i -> ones_mask land (1 lsl (i - 1)) <> 0)
             (List.init n (fun i -> i + 1)))
      in
      let proposals = Sim.Runner.binary_proposals config ~ones in
      let u =
        Mc.Exhaustive.sweep_incremental ~policy ~algo ~config ~proposals ()
      in
      let r, _ = Mc.Dedup.sweep ~policy ~algo ~config ~proposals () in
      result_equal u r)

(* Symmetry: exact aggregates, and the orbit weighting accounts for every
   unreduced violation and contained crash — sum over orbits of
   multiplicity x (representative's list length) equals the unreduced list
   length. *)
let test_symmetry_equivalence () =
  List.iter
    (fun (policy, ptag) ->
      List.iter
        (fun (algo, name, n, t) ->
          let tag = Printf.sprintf "%s n=%d t=%d %s" name n t ptag in
          let config = config ~n ~t in
          let u =
            Mc.Exhaustive.sweep_binary_incremental ~policy ~algo ~config ()
          in
          let r, _ = Mc.Symmetry.sweep_binary ~policy ~algo ~config () in
          check_int (tag ^ ": runs") u.Mc.Exhaustive.runs r.Mc.Exhaustive.runs;
          check_int (tag ^ ": max") u.Mc.Exhaustive.max_decision
            r.Mc.Exhaustive.max_decision;
          check_int (tag ^ ": min") u.Mc.Exhaustive.min_decision
            r.Mc.Exhaustive.min_decision;
          check_int (tag ^ ": undecided") u.Mc.Exhaustive.undecided_runs
            r.Mc.Exhaustive.undecided_runs;
          let per = Mc.Symmetry.sweep_orbits ~policy ~algo ~config () in
          let weighted f =
            List.fold_left
              (fun acc (o, r, _) ->
                acc + (o.Mc.Symmetry.multiplicity * List.length (f r)))
              0 per
          in
          check_int
            (tag ^ ": orbit-weighted violations")
            (List.length u.Mc.Exhaustive.violations)
            (weighted (fun r -> r.Mc.Exhaustive.violations));
          check_int
            (tag ^ ": orbit-weighted crashed")
            (List.length u.Mc.Exhaustive.crashed)
            (weighted (fun r -> r.Mc.Exhaustive.crashed)))
        [
          (floodset, "floodset", 4, 2);
          (floodmin, "floodmin", 4, 2);
          (Fuzz.Faulty.eager_floodset, "eager", 4, 1);
          (Fuzz.Faulty.eager_floodset, "eager", 4, 2);
          (Fuzz.Faulty.raising ~at:2, "raising@2", 4, 1);
        ])
    both_policies

let test_symmetry_orbits () =
  let config = c41 in
  let orbits = Mc.Symmetry.orbits config in
  check_int "n+1 orbits" 5 (List.length orbits);
  check_int "multiplicities cover 2^n" 16
    (List.fold_left (fun acc o -> acc + o.Mc.Symmetry.multiplicity) 0 orbits);
  check_int "C(4,2)" 6 (Mc.Symmetry.choose 4 2)

(* A(t+2).Standard is not symmetric (its Ct_diamond_s fallback elects
   coordinators by pid), so asking for symmetry must fall back to plain
   dedup — bit-identically. *)
let test_symmetry_asymmetric_fallback () =
  check_bool "at2 not symmetric" false (Sim.Algorithm.symmetric at2);
  let d, ds = Mc.Dedup.sweep_binary ~algo:at2 ~config:c41 () in
  let s, ss = Mc.Symmetry.sweep_binary ~algo:at2 ~config:c41 () in
  check_bool "falls back to dedup" true (d = s && ds = ss);
  let u = Mc.Exhaustive.sweep_binary_incremental ~algo:at2 ~config:c41 () in
  check_bool "still == unreduced" true (result_equal u s)

(* Reduced sweeps are deterministic across --jobs: the parallel reduced
   drivers equal the serial reduced ones on every field, stats included. *)
let test_reduced_jobs_determinism () =
  let config = c41 in
  let proposals = Sim.Runner.distinct_proposals config in
  let sd = Mc.Dedup.sweep ~algo:floodset ~config ~proposals () in
  let sbd = Mc.Dedup.sweep_binary ~algo:floodset ~config () in
  let sbs = Mc.Symmetry.sweep_binary ~algo:floodset ~config () in
  List.iter
    (fun jobs ->
      let tag = Printf.sprintf "jobs=%d" jobs in
      check_bool (tag ^ ": dedup") true
        (Mc.Parallel.sweep_dedup ~jobs ~algo:floodset ~config ~proposals ()
        = sd);
      check_bool (tag ^ ": binary dedup") true
        (Mc.Parallel.sweep_binary_dedup ~jobs ~algo:floodset ~config () = sbd);
      check_bool (tag ^ ": binary dedup+sym") true
        (Mc.Parallel.sweep_binary_sym ~jobs ~algo:floodset ~config () = sbs))
    [ 1; 2; 4 ]

(* The paper's headline sweep, with every reduction on: A(t+2) still
   decides at exactly t+2 with no violation in any of the runs the
   reduced sweeps account for. *)
let test_at2_reduced_t_plus_2 () =
  let r, _ = Mc.Dedup.sweep_binary ~algo:at2 ~config:c41 () in
  check_int "dedup min = t+2" 3 r.Mc.Exhaustive.min_decision;
  check_int "dedup max = t+2" 3 r.Mc.Exhaustive.max_decision;
  check_bool "dedup no violations" true (r.Mc.Exhaustive.violations = []);
  check_bool "dedup many runs" true (r.Mc.Exhaustive.runs > 500);
  let s, _ = Mc.Symmetry.sweep_binary ~algo:at2 ~config:c41 () in
  check_int "sym min = t+2" 3 s.Mc.Exhaustive.min_decision;
  check_int "sym max = t+2" 3 s.Mc.Exhaustive.max_decision;
  check_bool "sym no violations" true (s.Mc.Exhaustive.violations = [])

(* ------------------------------------------------------------------ *)
(* Omission-fault adversary (DESIGN §13)                               *)

(* One-round branching under each menu, against the closed forms: with
   [a] alive processes an omission act offers a culprits x (non-empty
   target subsets of the other a-1), crashes keep their usual branching,
   and a declared culprit is the only one left once the budget is spent. *)
let test_serial_omission_choices () =
  let alive = Pid.Set.universe ~n:3 in
  let count ?faults ?send_omitters ?omit_left ~crashes_left () =
    List.length
      (Mc.Serial.choices ?faults ?send_omitters ?omit_left
         ~policy:Mc.Serial.All_subsets ~alive ~crashes_left ())
  in
  (* 1 no-act + 3 culprits x (2^2 - 1) non-empty target sets *)
  check_int "send-omit branching" 10
    (count ~faults:Sim.Model.Send_omit_only ~omit_left:1 ~crashes_left:0 ());
  check_int "recv-omit branching" 10
    (count ~faults:Sim.Model.Recv_omit_only ~omit_left:1 ~crashes_left:0 ());
  (* mixed adds the crash-only branching (3 victims x 2^2 receiver sets)
     and both omission classes *)
  check_int "mixed branching" 31
    (count ~faults:Sim.Model.Mixed ~omit_left:1 ~crashes_left:1 ());
  (* budget spent: only the declared culprit may re-offend (for free) *)
  check_int "declared culprit re-offends" 4
    (count ~faults:Sim.Model.Send_omit_only
       ~send_omitters:(Pid.Set.of_ints [ 1 ])
       ~omit_left:0 ~crashes_left:0 ());
  (* Crash_only ignores any omission budget *)
  check_int "crash-only unchanged" 13
    (count ~faults:Sim.Model.Crash_only ~omit_left:1 ~crashes_left:1 ())

(* The e13 anchor numbers: FloodSet n=4 t=1 breaks under send-omissions
   (its crash-free-round argument fails without a crash being spent)
   while A(t+2) stays safe with its decision interval stretched past t+2
   — and every driver reports the same result bit-identically. *)
let test_omission_sweep_determinism () =
  List.iter
    (fun (algo, name, expect_viol, expect_min, expect_max) ->
      let config = c41 in
      let proposals = Sim.Runner.distinct_proposals config in
      let faults = Sim.Model.Send_omit_only in
      let s = Mc.Exhaustive.sweep ~faults ~algo ~config ~proposals () in
      let i =
        Mc.Exhaustive.sweep_incremental ~faults ~algo ~config ~proposals ()
      in
      let p1 =
        Mc.Parallel.sweep ~jobs:1 ~faults ~algo ~config ~proposals ()
      in
      let p4 =
        Mc.Parallel.sweep ~jobs:4 ~faults ~algo ~config ~proposals ()
      in
      let d, _ = Mc.Dedup.sweep ~faults ~algo ~config ~proposals () in
      check_bool (name ^ ": incremental == serial") true (result_equal s i);
      check_bool (name ^ ": jobs=1 == serial") true (result_equal s p1);
      check_bool (name ^ ": jobs=4 == serial") true (result_equal s p4);
      check_bool (name ^ ": dedup == unreduced") true (result_equal i d);
      check_int (name ^ ": runs") 253 s.Mc.Exhaustive.runs;
      check_int (name ^ ": violations") expect_viol
        (List.length s.Mc.Exhaustive.violations);
      check_int (name ^ ": min decision") expect_min
        s.Mc.Exhaustive.min_decision;
      check_int (name ^ ": max decision") expect_max
        s.Mc.Exhaustive.max_decision)
    [
      (floodset, "floodset send-omit", 8, 2, 2);
      (at2, "at2 send-omit", 0, 3, 7);
    ]

(* Every schedule an omission sweep enumerates validates, carries the
   sweep's explicit budget, and a violation witness replays to the same
   violation outside the sweep. *)
let test_omission_sweep_witnesses_replay () =
  let faults = Sim.Model.Mixed in
  let proposals = Sim.Runner.distinct_proposals c41 in
  let r =
    Mc.Exhaustive.sweep_incremental ~faults ~algo:floodset ~config:c41
      ~proposals ()
  in
  check_bool "mixed menu finds violations" true
    (r.Mc.Exhaustive.violations <> []);
  let budget = Mc.Serial.budget_of ~faults c41 in
  List.iter
    (fun (choices, violations) ->
      let s = Mc.Serial.to_schedule ?budget c41 choices in
      assert_valid c41 s;
      check_bool "witness carries the budget" true
        (Sim.Schedule.budget s = budget);
      let replayed =
        Sim.Props.check (Sim.Runner.run floodset c41 ~proposals s)
      in
      check_bool "witness replays its violations" true (violations = replayed))
    r.Mc.Exhaustive.violations

(* Crash-only sweeps are bit-compatible with the pre-omission enumerator:
   passing the menu explicitly changes nothing, and no budget is attached
   to the schedules. *)
let test_crash_only_bit_compat () =
  let proposals = Sim.Runner.distinct_proposals c41 in
  let default_ =
    Mc.Exhaustive.sweep_incremental ~algo:floodset ~config:c41 ~proposals ()
  in
  let explicit =
    Mc.Exhaustive.sweep_incremental ~faults:Sim.Model.Crash_only ~omit_budget:3
      ~algo:floodset ~config:c41 ~proposals ()
  in
  check_bool "explicit Crash_only == default" true
    (result_equal default_ explicit);
  check_bool "crash-only carries no budget" true
    (Mc.Serial.budget_of ~faults:Sim.Model.Crash_only c41 = None)

(* Wall-clock deadlines: a deadline already in the past yields a partial
   result flagged [expired]; a generous one changes nothing. *)
let test_sweep_deadline_expiry () =
  let proposals = Sim.Runner.distinct_proposals c41 in
  let past =
    Mc.Exhaustive.sweep_incremental
      ~deadline:(Unix.gettimeofday () -. 1.0)
      ~algo:floodset ~config:c41 ~proposals ()
  in
  check_bool "past deadline expires" true past.Mc.Exhaustive.expired;
  check_bool "partial accounting only" true
    (past.Mc.Exhaustive.runs < 253);
  let plain =
    Mc.Exhaustive.sweep_incremental ~algo:floodset ~config:c41 ~proposals ()
  in
  let future =
    Mc.Exhaustive.sweep_incremental
      ~deadline:(Unix.gettimeofday () +. 3600.0)
      ~algo:floodset ~config:c41 ~proposals ()
  in
  check_bool "future deadline does not expire" false
    future.Mc.Exhaustive.expired;
  check_bool "future deadline == no deadline" true (result_equal plain future);
  (* the reduced and parallel drivers share the expiry flag *)
  let d, _ =
    Mc.Dedup.sweep
      ~deadline:(Unix.gettimeofday () -. 1.0)
      ~algo:floodset ~config:c41 ~proposals ()
  in
  check_bool "dedup expires too" true d.Mc.Exhaustive.expired;
  let p =
    Mc.Parallel.sweep ~jobs:2
      ~deadline:(Unix.gettimeofday () -. 1.0)
      ~algo:floodset ~config:c41 ~proposals ()
  in
  check_bool "parallel expires too" true p.Mc.Exhaustive.expired

(* ------------------------------------------------------------------ *)
(* Fault containment                                                   *)

(* A raising on_receive is contained as a per-run crashed record — in all
   three sweep drivers, bit-identically, with full pid/round context. *)
let test_sweep_contains_step_errors () =
  let algo = Fuzz.Faulty.raising ~at:2 in
  let proposals = Sim.Runner.distinct_proposals c31 in
  let s = Mc.Exhaustive.sweep ~algo ~config:c31 ~proposals ~horizon:2 () in
  check_bool "every run crashed" true
    (List.length s.Mc.Exhaustive.crashed = s.Mc.Exhaustive.runs);
  check_bool "some runs" true (s.Mc.Exhaustive.runs > 0);
  (match s.Mc.Exhaustive.crashed with
  | { Mc.Exhaustive.error; _ } :: _ ->
      check_int "faulting round" 2 (Round.to_int error.Sim.Engine.round);
      check_bool "algorithm name" true (error.Sim.Engine.algorithm = "Raising@2");
      check_bool "reason mentions the fault" true
        (contains error.Sim.Engine.reason "injected fault")
  | [] -> Alcotest.fail "expected crashed runs");
  let i =
    Mc.Exhaustive.sweep_incremental ~algo ~config:c31 ~proposals ~horizon:2 ()
  in
  let p =
    Mc.Parallel.sweep ~jobs:4 ~algo ~config:c31 ~proposals ~horizon:2 ()
  in
  check_bool "incremental == serial (crashed included)" true (result_equal s i);
  check_bool "parallel == serial (crashed included)" true (result_equal s p)

(* An exception outside the engine's containment (raising init) must
   surface as per-shard failures with shard context — the Par pool joins
   and the merged result still arrives. *)
let test_parallel_shard_failures () =
  let algo = Fuzz.Faulty.raising_init in
  let proposals = Sim.Runner.distinct_proposals c31 in
  let r = Mc.Parallel.sweep ~jobs:4 ~algo ~config:c31 ~proposals ~horizon:2 () in
  check_int "no run completed" 0 r.Mc.Exhaustive.runs;
  check_bool "every shard failed" true
    (List.length r.Mc.Exhaustive.shard_failures > 0);
  List.iteri
    (fun i (f : Mc.Exhaustive.shard_failure) ->
      check_int "shards reported in order" i f.Mc.Exhaustive.shard;
      check_bool "context describes the subproblem" true
        (f.Mc.Exhaustive.context <> "");
      check_bool "message kept" true
        (contains f.Mc.Exhaustive.message "injected init fault"))
    r.Mc.Exhaustive.shard_failures;
  (* A healthy sweep reports no shard failures. *)
  let ok = Mc.Parallel.sweep ~jobs:4 ~algo:floodset ~config:c31 ~proposals () in
  check_bool "healthy sweep has none" true
    (ok.Mc.Exhaustive.shard_failures = [])

(* ------------------------------------------------------------------ *)
(* Valency                                                             *)

let ones_proposals cfg =
  Sim.Runner.binary_proposals cfg
    ~ones:(Pid.Set.of_ints (Listx.range 2 (Config.n cfg)))

let test_valency_univalent_uniform () =
  (* All-zero proposals: validity forces 0-valence. *)
  let proposals =
    Sim.Runner.binary_proposals c31 ~ones:Pid.Set.empty
  in
  check_bool "0-valent" true
    (Mc.Valency.equal Mc.Valency.Zero
       (Mc.Valency.of_partial ~algo:floodset_ws ~config:c31 ~proposals []))

let test_valency_bivalent_initial () =
  match Mc.Valency.bivalent_initial ~algo:floodset_ws ~config:c31 () with
  | None -> Alcotest.fail "Lemma 3: a bivalent initial configuration exists"
  | Some proposals ->
      check_bool "it is bivalent" true
        (Mc.Valency.equal Mc.Valency.Bivalent
           (Mc.Valency.of_partial ~algo:floodset_ws ~config:c31 ~proposals []))

let test_valency_frontier_floodset_ws () =
  (* Lemma 4 gives a bivalent (t-1)-round run; the t-round partials of a
     t+1-decider are univalent. *)
  let k, _ =
    Mc.Valency.frontier ~algo:floodset_ws ~config:c31
      ~proposals:(ones_proposals c31) ()
  in
  check_int "frontier = t-1" 0 k

let test_valency_frontier_at2 () =
  let k, _ =
    Mc.Valency.frontier ~algo:at2 ~config:c31 ~proposals:(ones_proposals c31)
      ()
  in
  check_int "frontier = t-1" 0 k

let test_valency_crash_changes_value () =
  (* (0,1,1): p1 crashing silently at round 1 forces decision 1; quiet runs
     decide 0 -> the empty prefix is bivalent, the one-round prefix where p1
     dies silently is 1-valent. *)
  let proposals = ones_proposals c31 in
  let silent =
    Mc.Serial.Crash { victim = Pid.of_int 1; receivers = Pid.Set.empty }
  in
  check_bool "empty prefix bivalent" true
    (Mc.Valency.equal Mc.Valency.Bivalent
       (Mc.Valency.of_partial ~algo:floodset_ws ~config:c31 ~proposals []));
  check_bool "silent-crash prefix 1-valent" true
    (Mc.Valency.equal Mc.Valency.One
       (Mc.Valency.of_partial ~algo:floodset_ws ~config:c31 ~proposals
          [ silent ]));
  check_bool "no-crash prefix 0-valent" true
    (Mc.Valency.equal Mc.Valency.Zero
       (Mc.Valency.of_partial ~algo:floodset_ws ~config:c31 ~proposals
          [ Mc.Serial.No_crash ]))

(* ------------------------------------------------------------------ *)
(* Attack                                                              *)

let test_witness_breaks_floodset_ws () =
  List.iter
    (fun (n, t) ->
      let cfg = config ~n ~t in
      let r = Mc.Attack.floodset_ws_witness cfg in
      check_bool
        (Printf.sprintf "violation at n=%d t=%d" n t)
        true
        (List.exists
           (function Sim.Props.Agreement _ -> true | _ -> false)
           r.Mc.Attack.violations))
    [ (3, 1); (4, 1); (5, 2); (7, 3); (9, 4) ]

let test_witness_schedule_shape () =
  let s = Mc.Attack.witness_schedule c52 in
  assert_valid c52 s;
  check_bool "asynchronous" false (Sim.Schedule.synchronous s);
  (* t-1 chain crashes plus the final crash *)
  check_int "crashes" 2 (Sim.Schedule.crash_count s);
  check_bool "p_t stays correct" true
    (Sim.Schedule.crash_round s (Pid.of_int 2) = None)

let test_solo_split_breaks_floodset () =
  let r = Mc.Attack.run_solo_split floodset c52 in
  check_bool "violated" true (r.Mc.Attack.violations <> [])

(* Section 1.4: the attack transfers to the DLS basic round model with the
   isolating messages lost instead of delayed. *)
let test_solo_split_dls () =
  let s = Mc.Attack.solo_split_dls c52 in
  assert_valid c52 s;
  check_bool "DLS model" true
    (Sim.Model.equal (Sim.Schedule.model s) Sim.Model.Dls_basic);
  check_bool "no delayed messages at all" true
    (List.for_all
       (fun (p : Sim.Schedule.plan) -> p.Sim.Schedule.delayed = [])
       (Sim.Schedule.plans s));
  let r = Mc.Attack.run_solo_split_dls floodset_ws c52 in
  check_bool "FloodSetWS violated in DLS" true (r.Mc.Attack.violations <> []);
  let r2 = Mc.Attack.run_solo_split_dls floodset c52 in
  check_bool "FloodSet violated in DLS" true (r2.Mc.Attack.violations <> [])

let test_dls_model_rules () =
  (* Delays are never legal in the DLS basic model; arbitrary pre-gst losses
     are. *)
  let dls ~gst plans =
    Sim.Schedule.make ~model:Sim.Model.Dls_basic ~gst:(Round.of_int gst) plans
  in
  let lost_plan =
    {
      Sim.Schedule.crashes = [];
      lost = [ (Pid.of_int 1, Pid.of_int 2) ];
      delayed = [];
    }
  in
  let delayed_plan =
    {
      Sim.Schedule.crashes = [];
      lost = [];
      delayed = [ (Pid.of_int 1, Pid.of_int 2, Round.of_int 3) ];
    }
  in
  assert_valid c52 (dls ~gst:2 [ lost_plan ]);
  assert_invalid c52 (dls ~gst:1 [ lost_plan ]);
  assert_invalid c52 (dls ~gst:4 [ delayed_plan ])

let test_survivors () =
  List.iter
    (fun algo ->
      let r1 = Mc.Attack.run_witness algo c52 in
      let r2 = Mc.Attack.run_solo_split algo c52 in
      check_bool "witness survived" true (r1.Mc.Attack.violations = []);
      check_bool "solo split survived" true (r2.Mc.Attack.violations = []))
    [ at2; at2_opt; a_ds; hr; ct ]

let test_search_finds_floodset_violation () =
  let proposals = ones_proposals c52 in
  match
    Mc.Attack.search ~samples:300 ~seed:5 ~algo:floodset ~config:c52
      ~proposals ()
  with
  | Some r -> check_bool "violations recorded" true (r.Mc.Attack.violations <> [])
  | None -> Alcotest.fail "random search should break FloodSet in ES"

(* The five-run construction of Claim 5.1 (Fig. 1): every proof obligation
   holds against the canonical t+1-round algorithm, at every resilience. *)
let test_figure1_against_floodset_ws () =
  List.iter
    (fun (n, t) ->
      let o = Mc.Figure1.against_floodset_ws (config ~n ~t) in
      List.iter
        (fun (r : Mc.Figure1.relation) ->
          check_bool
            (Printf.sprintf "(n=%d,t=%d) %s" n t r.description)
            true r.holds)
        o.Mc.Figure1.relations;
      check_bool "agreement violated" true o.Mc.Figure1.agreement_violated;
      check_bool "all_hold" true (Mc.Figure1.all_hold o))
    [ (3, 1); (4, 1); (5, 2); (7, 3); (9, 4) ]

(* Against the indulgent algorithm the same five runs produce no violation:
   A(t+2) does not decide at t+1, so the contradiction never materialises. *)
let test_figure1_against_at2 () =
  let module F = Mc.Figure1.Make (Indulgent.At_plus_2.Standard) in
  let o = F.run (config ~n:5 ~t:2) in
  check_bool "no agreement violation" false o.Mc.Figure1.agreement_violated;
  check_bool "Q does not decide both values" true
    (not
       (o.Mc.Figure1.q_decision_a1 = Some Kernel.Value.one
       && o.Mc.Figure1.q_decision_a0 = Some Kernel.Value.zero))

let test_search_clean_for_at2 () =
  let proposals = ones_proposals c31 in
  check_bool "no violation found" true
    (Mc.Attack.search ~samples:120 ~seed:5 ~algo:at2 ~config:c31 ~proposals ()
    = None)

let () =
  Alcotest.run "mc"
    [
      ( "serial",
        [
          Alcotest.test_case "choices" `Quick test_serial_choices;
          Alcotest.test_case "enumerate count" `Quick test_serial_enumerate_count;
          Alcotest.test_case "count closed form" `Quick
            test_serial_count_closed_form;
          Alcotest.test_case "to_schedule" `Quick test_serial_to_schedule;
          prop_serial_schedules_valid;
        ] );
      ( "exhaustive",
        [
          Alcotest.test_case "floodset t+1" `Quick test_exhaustive_floodset;
          Alcotest.test_case "at2 exactly t+2" `Slow test_exhaustive_at2;
          Alcotest.test_case "sweep determinism" `Quick test_sweep_determinism;
          Alcotest.test_case "binary sweep determinism" `Quick
            test_sweep_binary_determinism;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "dedup == unreduced (all fixtures, both \
                              policies)" `Quick test_dedup_equivalence;
          prop_dedup_equivalent_on_random_proposals;
          Alcotest.test_case "symmetry aggregates == unreduced" `Slow
            test_symmetry_equivalence;
          Alcotest.test_case "orbit arithmetic" `Quick test_symmetry_orbits;
          Alcotest.test_case "asymmetric algorithms fall back to dedup" `Quick
            test_symmetry_asymmetric_fallback;
          Alcotest.test_case "reduced sweeps deterministic across jobs" `Quick
            test_reduced_jobs_determinism;
          Alcotest.test_case "serial omission choices" `Quick
            test_serial_omission_choices;
          Alcotest.test_case "omission sweep determinism" `Quick
            test_omission_sweep_determinism;
          Alcotest.test_case "omission witnesses replay" `Quick
            test_omission_sweep_witnesses_replay;
          Alcotest.test_case "crash-only bit compatibility" `Quick
            test_crash_only_bit_compat;
          Alcotest.test_case "sweep deadline expiry" `Quick
            test_sweep_deadline_expiry;
          Alcotest.test_case "A(t+2) = t+2 under reduction" `Quick
            test_at2_reduced_t_plus_2;
        ] );
      ( "containment",
        [
          Alcotest.test_case "step errors contained in all drivers" `Quick
            test_sweep_contains_step_errors;
          Alcotest.test_case "shard failures surface, pool survives" `Quick
            test_parallel_shard_failures;
        ] );
      ( "valency",
        [
          Alcotest.test_case "uniform is univalent" `Quick test_valency_univalent_uniform;
          Alcotest.test_case "Lemma 3" `Quick test_valency_bivalent_initial;
          Alcotest.test_case "frontier FloodSetWS" `Quick test_valency_frontier_floodset_ws;
          Alcotest.test_case "frontier A(t+2)" `Quick test_valency_frontier_at2;
          Alcotest.test_case "crash flips valency" `Quick test_valency_crash_changes_value;
        ] );
      ( "attack",
        [
          Alcotest.test_case "witness breaks FloodSetWS" `Quick test_witness_breaks_floodset_ws;
          Alcotest.test_case "witness shape" `Quick test_witness_schedule_shape;
          Alcotest.test_case "solo split breaks FloodSet" `Quick test_solo_split_breaks_floodset;
          Alcotest.test_case "solo split in DLS (Section 1.4)" `Quick test_solo_split_dls;
          Alcotest.test_case "DLS model rules" `Quick test_dls_model_rules;
          Alcotest.test_case "indulgent algorithms survive" `Quick test_survivors;
          Alcotest.test_case "search finds FloodSet violation" `Quick test_search_finds_floodset_violation;
          Alcotest.test_case "search clean for A(t+2)" `Quick test_search_clean_for_at2;
        ] );
      ( "figure1",
        [
          Alcotest.test_case "five runs vs FloodSetWS" `Quick
            test_figure1_against_floodset_ws;
          Alcotest.test_case "five runs vs A(t+2)" `Quick
            test_figure1_against_at2;
        ] );
    ]
