open Kernel
open Helpers

let c31 = config ~n:3 ~t:1
let c41 = config ~n:4 ~t:1
let c52 = config ~n:5 ~t:2

(* ------------------------------------------------------------------ *)
(* Serial                                                              *)

let test_serial_choices () =
  let alive = Pid.Set.universe ~n:3 in
  let all =
    Mc.Serial.choices ~policy:Mc.Serial.All_subsets ~alive ~crashes_left:1 ()
  in
  (* no-crash + 3 victims x 2^2 subsets *)
  check_int "all-subsets branching" 13 (List.length all);
  let pre =
    Mc.Serial.choices ~policy:Mc.Serial.Prefixes ~alive ~crashes_left:1 ()
  in
  (* no-crash + 3 victims x 3 prefixes *)
  check_int "prefix branching" 10 (List.length pre);
  let none =
    Mc.Serial.choices ~policy:Mc.Serial.Prefixes ~alive ~crashes_left:0 ()
  in
  check_int "no budget" 1 (List.length none)

let test_serial_enumerate_count () =
  (* depth 1: exactly the branching factor *)
  check_int "depth 1" 13
    (Mc.Serial.count ~policy:Mc.Serial.All_subsets c31 ~horizon:1);
  (* depth 2 with budget 1: crash in round 1 leaves only No_crash after *)
  check_int "depth 2" (12 + 13)
    (Mc.Serial.count ~policy:Mc.Serial.All_subsets c31 ~horizon:2)

(* Closed-form count of serial choice sequences: with [a] alive processes
   and [b] crashes left, a round offers 1 no-crash choice plus (for each of
   the [a] victims) one receiver set per policy —

     C(a, b, 0) = 1
     C(a, b, h) = C(a, b, h-1) + branch(a) * C(a-1, b-1, h-1)   if b > 0
     C(a, 0, h) = 1

   where branch(a) = a * a for Prefixes (a victims x a survivor prefixes,
   empty included) and a * 2^(a-1) for All_subsets. *)
let rec closed_form ~branch a b h =
  if h = 0 then 1
  else
    closed_form ~branch a b (h - 1)
    + (if b > 0 then branch a * closed_form ~branch (a - 1) (b - 1) (h - 1)
       else 0)

let test_serial_count_closed_form () =
  List.iter
    (fun (policy, pol_name, branch) ->
      List.iter
        (fun (n, t, h) ->
          check_int
            (Printf.sprintf "%s n=%d t=%d h=%d" pol_name n t h)
            (closed_form ~branch n t h)
            (Mc.Serial.count ~policy (config ~n ~t) ~horizon:h))
        [ (3, 1, 1); (3, 1, 3); (4, 1, 3); (4, 2, 3); (5, 1, 2); (5, 2, 4) ])
    [
      (Mc.Serial.Prefixes, "prefixes", fun a -> a * a);
      (Mc.Serial.All_subsets, "all-subsets", fun a -> a * (1 lsl (a - 1)));
    ]

let test_serial_to_schedule () =
  let choices =
    [
      Mc.Serial.Crash
        { victim = Pid.of_int 1; receivers = Pid.Set.of_ints [ 2 ] };
      Mc.Serial.No_crash;
    ]
  in
  let s = Mc.Serial.to_schedule c31 choices in
  assert_valid c31 s;
  check_bool "synchronous" true (Sim.Schedule.synchronous s);
  check_bool "loses to p3" true
    (Sim.Schedule.fate s ~src:(Pid.of_int 1) ~dst:(Pid.of_int 3)
       ~round:Round.first
    = Sim.Schedule.Lost);
  check_bool "keeps p2" true
    (Sim.Schedule.fate s ~src:(Pid.of_int 1) ~dst:(Pid.of_int 2)
       ~round:Round.first
    = Sim.Schedule.Same_round)

let prop_serial_schedules_valid =
  qtest ~count:1 "every enumerated serial schedule validates" QCheck.unit
    (fun () ->
      let ok = ref true in
      Mc.Serial.enumerate ~policy:Mc.Serial.All_subsets c31 ~horizon:3
        ~f:(fun choices ->
          match
            Sim.Schedule.validate c31 (Mc.Serial.to_schedule c31 choices)
          with
          | Ok () -> ()
          | Error _ -> ok := false);
      !ok)

(* ------------------------------------------------------------------ *)
(* Exhaustive                                                          *)

let test_exhaustive_floodset () =
  let r =
    Mc.Exhaustive.sweep ~policy:Mc.Serial.All_subsets ~algo:floodset
      ~config:c31
      ~proposals:(Sim.Runner.distinct_proposals c31)
      ()
  in
  check_int "min = t+1" 2 r.Mc.Exhaustive.min_decision;
  check_int "max = t+1" 2 r.Mc.Exhaustive.max_decision;
  check_bool "no violations" true (r.Mc.Exhaustive.violations = []);
  check_int "no undecided" 0 r.Mc.Exhaustive.undecided_runs

let test_exhaustive_at2 () =
  let r = Mc.Exhaustive.sweep_binary ~algo:at2 ~config:c41 () in
  check_int "min = t+2" 3 r.Mc.Exhaustive.min_decision;
  check_int "max = t+2" 3 r.Mc.Exhaustive.max_decision;
  check_bool "no violations" true (r.Mc.Exhaustive.violations = []);
  check_bool "many runs" true (r.Mc.Exhaustive.runs > 500)

(* ------------------------------------------------------------------ *)
(* Determinism: incremental and parallel sweeps == the serial sweep     *)

(* Field-by-field equality, violation order included — "bit-identical" is
   the correctness anchor of the prefix-sharing and parallel drivers. *)
let result_equal (a : Mc.Exhaustive.result) (b : Mc.Exhaustive.result) =
  a.Mc.Exhaustive.runs = b.Mc.Exhaustive.runs
  && a.Mc.Exhaustive.max_decision = b.Mc.Exhaustive.max_decision
  && a.Mc.Exhaustive.min_decision = b.Mc.Exhaustive.min_decision
  && a.Mc.Exhaustive.max_witness = b.Mc.Exhaustive.max_witness
  && a.Mc.Exhaustive.undecided_runs = b.Mc.Exhaustive.undecided_runs
  && a.Mc.Exhaustive.violations = b.Mc.Exhaustive.violations
  && a.Mc.Exhaustive.crashed = b.Mc.Exhaustive.crashed
  && a.Mc.Exhaustive.shard_failures = b.Mc.Exhaustive.shard_failures
  && a.Mc.Exhaustive.expired = b.Mc.Exhaustive.expired

let test_sweep_determinism () =
  (* n=4 with t in {1,2} where the algorithm's resilience admits it:
     A(t+2) needs 2t < n and AF+2 needs 3t < n, so their t=2 rows move to
     the nearest feasible config (n=5 for A(t+2)); FloodSet covers both
     n=4 resiliences. *)
  List.iter
    (fun (algo, name, n, t) ->
      let config = config ~n ~t in
      let proposals = Sim.Runner.distinct_proposals config in
      let horizon = t + 2 in
      let s = Mc.Exhaustive.sweep ~algo ~config ~proposals ~horizon () in
      let i =
        Mc.Exhaustive.sweep_incremental ~algo ~config ~proposals ~horizon ()
      in
      let p =
        Mc.Parallel.sweep ~jobs:4 ~algo ~config ~proposals ~horizon ()
      in
      check_bool (name ^ ": incremental == serial") true (result_equal s i);
      check_bool (name ^ ": parallel == serial") true (result_equal s p))
    [
      (floodset, "floodset n=4 t=1", 4, 1);
      (floodset, "floodset n=4 t=2", 4, 2);
      (at2, "at2 n=4 t=1", 4, 1);
      (at2, "at2 n=5 t=2", 5, 2);
      (af2, "af2 n=4 t=1", 4, 1);
    ]

let test_sweep_binary_determinism () =
  let s = Mc.Exhaustive.sweep_binary ~algo:at2 ~config:c41 () in
  let i = Mc.Exhaustive.sweep_binary_incremental ~algo:at2 ~config:c41 () in
  let p = Mc.Parallel.sweep_binary ~jobs:4 ~algo:at2 ~config:c41 () in
  check_bool "binary incremental == serial" true (result_equal s i);
  check_bool "binary parallel == serial" true (result_equal s p)

(* ------------------------------------------------------------------ *)
(* State-space reduction: transposition table and symmetry              *)

(* Healthy algorithms plus the violating and the crashing fixture: the
   reductions must reproduce violations and contained errors too, not just
   clean sweeps. *)
let reduction_fixtures =
  [
    (floodset, "floodset", 4, 1);
    (floodset, "floodset", 4, 2);
    (at2, "at2", 4, 1);
    (af2, "af2", 4, 1);
    (Fuzz.Faulty.eager_floodset, "eager", 4, 1);
    (Fuzz.Faulty.raising ~at:2, "raising@2", 4, 1);
    (floodmin, "floodmin", 4, 2);
  ]

let both_policies = [ (Mc.Serial.Prefixes, "pfx"); (Mc.Serial.All_subsets, "all") ]

(* Dedup is bit-identical to the unreduced incremental sweep on every
   observable field (result_equal covers them all); only [distinct_runs]
   may shrink, and a reduction that explores nothing it didn't have to
   never explores more than the enumeration. *)
let test_dedup_equivalence () =
  List.iter
    (fun (policy, ptag) ->
      List.iter
        (fun (algo, name, n, t) ->
          let tag = Printf.sprintf "%s n=%d t=%d %s" name n t ptag in
          let config = config ~n ~t in
          let proposals = Sim.Runner.distinct_proposals config in
          let u =
            Mc.Exhaustive.sweep_incremental ~policy ~algo ~config ~proposals ()
          in
          let r, _ = Mc.Dedup.sweep ~policy ~algo ~config ~proposals () in
          check_bool (tag ^ ": dedup == unreduced") true (result_equal u r);
          check_bool (tag ^ ": explored <= runs") true
            (r.Mc.Exhaustive.distinct_runs <= r.Mc.Exhaustive.runs))
        reduction_fixtures)
    both_policies

(* The same equivalence as a property over random binary proposal
   assignments (the deterministic test above pins distinct proposals). *)
let prop_dedup_equivalent_on_random_proposals =
  qtest ~count:40 "dedup == unreduced on random binary assignments"
    QCheck.(triple (int_range 0 15) (int_range 0 6) bool)
    (fun (ones_mask, fixture, all_subsets) ->
      let algo, _, n, t = List.nth reduction_fixtures fixture in
      let policy =
        if all_subsets then Mc.Serial.All_subsets else Mc.Serial.Prefixes
      in
      let config = config ~n ~t in
      let ones =
        Pid.Set.of_ints
          (List.filter
             (fun i -> ones_mask land (1 lsl (i - 1)) <> 0)
             (List.init n (fun i -> i + 1)))
      in
      let proposals = Sim.Runner.binary_proposals config ~ones in
      let u =
        Mc.Exhaustive.sweep_incremental ~policy ~algo ~config ~proposals ()
      in
      let r, _ = Mc.Dedup.sweep ~policy ~algo ~config ~proposals () in
      result_equal u r)

(* Symmetry: exact aggregates, and the orbit weighting accounts for every
   unreduced violation and contained crash — sum over orbits of
   multiplicity x (representative's list length) equals the unreduced list
   length. *)
let test_symmetry_equivalence () =
  List.iter
    (fun (policy, ptag) ->
      List.iter
        (fun (algo, name, n, t) ->
          let tag = Printf.sprintf "%s n=%d t=%d %s" name n t ptag in
          let config = config ~n ~t in
          let u =
            Mc.Exhaustive.sweep_binary_incremental ~policy ~algo ~config ()
          in
          let r, _ = Mc.Symmetry.sweep_binary ~policy ~algo ~config () in
          check_int (tag ^ ": runs") u.Mc.Exhaustive.runs r.Mc.Exhaustive.runs;
          check_int (tag ^ ": max") u.Mc.Exhaustive.max_decision
            r.Mc.Exhaustive.max_decision;
          check_int (tag ^ ": min") u.Mc.Exhaustive.min_decision
            r.Mc.Exhaustive.min_decision;
          check_int (tag ^ ": undecided") u.Mc.Exhaustive.undecided_runs
            r.Mc.Exhaustive.undecided_runs;
          let per = Mc.Symmetry.sweep_orbits ~policy ~algo ~config () in
          let weighted f =
            List.fold_left
              (fun acc (o, r, _) ->
                acc + (o.Mc.Symmetry.multiplicity * List.length (f r)))
              0 per
          in
          check_int
            (tag ^ ": orbit-weighted violations")
            (List.length u.Mc.Exhaustive.violations)
            (weighted (fun r -> r.Mc.Exhaustive.violations));
          check_int
            (tag ^ ": orbit-weighted crashed")
            (List.length u.Mc.Exhaustive.crashed)
            (weighted (fun r -> r.Mc.Exhaustive.crashed)))
        [
          (floodset, "floodset", 4, 2);
          (floodmin, "floodmin", 4, 2);
          (Fuzz.Faulty.eager_floodset, "eager", 4, 1);
          (Fuzz.Faulty.eager_floodset, "eager", 4, 2);
          (Fuzz.Faulty.raising ~at:2, "raising@2", 4, 1);
        ])
    both_policies

let test_symmetry_orbits () =
  let config = c41 in
  let orbits = Mc.Symmetry.orbits config in
  check_int "n+1 orbits" 5 (List.length orbits);
  check_int "multiplicities cover 2^n" 16
    (List.fold_left (fun acc o -> acc + o.Mc.Symmetry.multiplicity) 0 orbits);
  check_int "C(4,2)" 6 (Mc.Symmetry.choose 4 2)

(* A(t+2).Standard is not symmetric (its Ct_diamond_s fallback elects
   coordinators by pid), so asking for symmetry must fall back to plain
   dedup — bit-identically. *)
let test_symmetry_asymmetric_fallback () =
  check_bool "at2 not symmetric" false (Sim.Algorithm.symmetric at2);
  let d, ds = Mc.Dedup.sweep_binary ~algo:at2 ~config:c41 () in
  let s, ss = Mc.Symmetry.sweep_binary ~algo:at2 ~config:c41 () in
  check_bool "falls back to dedup" true (d = s && ds = ss);
  let u = Mc.Exhaustive.sweep_binary_incremental ~algo:at2 ~config:c41 () in
  check_bool "still == unreduced" true (result_equal u s)

(* Reduced sweeps are deterministic across --jobs: the parallel reduced
   drivers equal the serial reduced ones on every field, stats included. *)
let test_reduced_jobs_determinism () =
  let config = c41 in
  let proposals = Sim.Runner.distinct_proposals config in
  let sd = Mc.Dedup.sweep ~algo:floodset ~config ~proposals () in
  let sbd = Mc.Dedup.sweep_binary ~algo:floodset ~config () in
  let sbs = Mc.Symmetry.sweep_binary ~algo:floodset ~config () in
  List.iter
    (fun jobs ->
      let tag = Printf.sprintf "jobs=%d" jobs in
      check_bool (tag ^ ": dedup") true
        (Mc.Parallel.sweep_dedup ~jobs ~algo:floodset ~config ~proposals ()
        = sd);
      check_bool (tag ^ ": binary dedup") true
        (Mc.Parallel.sweep_binary_dedup ~jobs ~algo:floodset ~config () = sbd);
      check_bool (tag ^ ": binary dedup+sym") true
        (Mc.Parallel.sweep_binary_sym ~jobs ~algo:floodset ~config () = sbs))
    [ 1; 2; 4 ]

(* The paper's headline sweep, with every reduction on: A(t+2) still
   decides at exactly t+2 with no violation in any of the runs the
   reduced sweeps account for. *)
let test_at2_reduced_t_plus_2 () =
  let r, _ = Mc.Dedup.sweep_binary ~algo:at2 ~config:c41 () in
  check_int "dedup min = t+2" 3 r.Mc.Exhaustive.min_decision;
  check_int "dedup max = t+2" 3 r.Mc.Exhaustive.max_decision;
  check_bool "dedup no violations" true (r.Mc.Exhaustive.violations = []);
  check_bool "dedup many runs" true (r.Mc.Exhaustive.runs > 500);
  let s, _ = Mc.Symmetry.sweep_binary ~algo:at2 ~config:c41 () in
  check_int "sym min = t+2" 3 s.Mc.Exhaustive.min_decision;
  check_int "sym max = t+2" 3 s.Mc.Exhaustive.max_decision;
  check_bool "sym no violations" true (s.Mc.Exhaustive.violations = [])

(* ------------------------------------------------------------------ *)
(* Omission-fault adversary (DESIGN §13)                               *)

(* One-round branching under each menu, against the closed forms: with
   [a] alive processes an omission act offers a culprits x (non-empty
   target subsets of the other a-1), crashes keep their usual branching,
   and a declared culprit is the only one left once the budget is spent. *)
let test_serial_omission_choices () =
  let alive = Pid.Set.universe ~n:3 in
  let count ?faults ?send_omitters ?omit_left ~crashes_left () =
    List.length
      (Mc.Serial.choices ?faults ?send_omitters ?omit_left
         ~policy:Mc.Serial.All_subsets ~alive ~crashes_left ())
  in
  (* 1 no-act + 3 culprits x (2^2 - 1) non-empty target sets *)
  check_int "send-omit branching" 10
    (count ~faults:Sim.Model.Send_omit_only ~omit_left:1 ~crashes_left:0 ());
  check_int "recv-omit branching" 10
    (count ~faults:Sim.Model.Recv_omit_only ~omit_left:1 ~crashes_left:0 ());
  (* mixed adds the crash-only branching (3 victims x 2^2 receiver sets)
     and both omission classes *)
  check_int "mixed branching" 31
    (count ~faults:Sim.Model.Mixed ~omit_left:1 ~crashes_left:1 ());
  (* budget spent: only the declared culprit may re-offend (for free) *)
  check_int "declared culprit re-offends" 4
    (count ~faults:Sim.Model.Send_omit_only
       ~send_omitters:(Pid.Set.of_ints [ 1 ])
       ~omit_left:0 ~crashes_left:0 ());
  (* Crash_only ignores any omission budget *)
  check_int "crash-only unchanged" 13
    (count ~faults:Sim.Model.Crash_only ~omit_left:1 ~crashes_left:1 ())

(* The e13 anchor numbers: FloodSet n=4 t=1 breaks under send-omissions
   (its crash-free-round argument fails without a crash being spent)
   while A(t+2) stays safe with its decision interval stretched past t+2
   — and every driver reports the same result bit-identically. *)
let test_omission_sweep_determinism () =
  List.iter
    (fun (algo, name, expect_viol, expect_min, expect_max) ->
      let config = c41 in
      let proposals = Sim.Runner.distinct_proposals config in
      let faults = Sim.Model.Send_omit_only in
      let s = Mc.Exhaustive.sweep ~faults ~algo ~config ~proposals () in
      let i =
        Mc.Exhaustive.sweep_incremental ~faults ~algo ~config ~proposals ()
      in
      let p1 =
        Mc.Parallel.sweep ~jobs:1 ~faults ~algo ~config ~proposals ()
      in
      let p4 =
        Mc.Parallel.sweep ~jobs:4 ~faults ~algo ~config ~proposals ()
      in
      let d, _ = Mc.Dedup.sweep ~faults ~algo ~config ~proposals () in
      check_bool (name ^ ": incremental == serial") true (result_equal s i);
      check_bool (name ^ ": jobs=1 == serial") true (result_equal s p1);
      check_bool (name ^ ": jobs=4 == serial") true (result_equal s p4);
      check_bool (name ^ ": dedup == unreduced") true (result_equal i d);
      check_int (name ^ ": runs") 253 s.Mc.Exhaustive.runs;
      check_int (name ^ ": violations") expect_viol
        (List.length s.Mc.Exhaustive.violations);
      check_int (name ^ ": min decision") expect_min
        s.Mc.Exhaustive.min_decision;
      check_int (name ^ ": max decision") expect_max
        s.Mc.Exhaustive.max_decision)
    [
      (floodset, "floodset send-omit", 8, 2, 2);
      (at2, "at2 send-omit", 0, 3, 7);
    ]

(* Every schedule an omission sweep enumerates validates, carries the
   sweep's explicit budget, and a violation witness replays to the same
   violation outside the sweep. *)
let test_omission_sweep_witnesses_replay () =
  let faults = Sim.Model.Mixed in
  let proposals = Sim.Runner.distinct_proposals c41 in
  let r =
    Mc.Exhaustive.sweep_incremental ~faults ~algo:floodset ~config:c41
      ~proposals ()
  in
  check_bool "mixed menu finds violations" true
    (r.Mc.Exhaustive.violations <> []);
  let budget = Mc.Serial.budget_of ~faults c41 in
  List.iter
    (fun (choices, violations) ->
      let s = Mc.Serial.to_schedule ?budget c41 choices in
      assert_valid c41 s;
      check_bool "witness carries the budget" true
        (Sim.Schedule.budget s = budget);
      let replayed =
        Sim.Props.check (Sim.Runner.run floodset c41 ~proposals s)
      in
      check_bool "witness replays its violations" true (violations = replayed))
    r.Mc.Exhaustive.violations

(* Crash-only sweeps are bit-compatible with the pre-omission enumerator:
   passing the menu explicitly changes nothing, and no budget is attached
   to the schedules. *)
let test_crash_only_bit_compat () =
  let proposals = Sim.Runner.distinct_proposals c41 in
  let default_ =
    Mc.Exhaustive.sweep_incremental ~algo:floodset ~config:c41 ~proposals ()
  in
  let explicit =
    Mc.Exhaustive.sweep_incremental ~faults:Sim.Model.Crash_only ~omit_budget:3
      ~algo:floodset ~config:c41 ~proposals ()
  in
  check_bool "explicit Crash_only == default" true
    (result_equal default_ explicit);
  check_bool "crash-only carries no budget" true
    (Mc.Serial.budget_of ~faults:Sim.Model.Crash_only c41 = None)

(* Wall-clock deadlines: a deadline already in the past yields a partial
   result flagged [expired]; a generous one changes nothing. *)
let test_sweep_deadline_expiry () =
  let proposals = Sim.Runner.distinct_proposals c41 in
  let past =
    Mc.Exhaustive.sweep_incremental
      ~deadline:(Unix.gettimeofday () -. 1.0)
      ~algo:floodset ~config:c41 ~proposals ()
  in
  check_bool "past deadline expires" true past.Mc.Exhaustive.expired;
  check_bool "partial accounting only" true
    (past.Mc.Exhaustive.runs < 253);
  let plain =
    Mc.Exhaustive.sweep_incremental ~algo:floodset ~config:c41 ~proposals ()
  in
  let future =
    Mc.Exhaustive.sweep_incremental
      ~deadline:(Unix.gettimeofday () +. 3600.0)
      ~algo:floodset ~config:c41 ~proposals ()
  in
  check_bool "future deadline does not expire" false
    future.Mc.Exhaustive.expired;
  check_bool "future deadline == no deadline" true (result_equal plain future);
  (* the reduced and parallel drivers share the expiry flag *)
  let d, _ =
    Mc.Dedup.sweep
      ~deadline:(Unix.gettimeofday () -. 1.0)
      ~algo:floodset ~config:c41 ~proposals ()
  in
  check_bool "dedup expires too" true d.Mc.Exhaustive.expired;
  let p =
    Mc.Parallel.sweep ~jobs:2
      ~deadline:(Unix.gettimeofday () -. 1.0)
      ~algo:floodset ~config:c41 ~proposals ()
  in
  check_bool "parallel expires too" true p.Mc.Exhaustive.expired

(* ------------------------------------------------------------------ *)
(* Fault containment                                                   *)

(* A raising on_receive is contained as a per-run crashed record — in all
   three sweep drivers, bit-identically, with full pid/round context. *)
let test_sweep_contains_step_errors () =
  let algo = Fuzz.Faulty.raising ~at:2 in
  let proposals = Sim.Runner.distinct_proposals c31 in
  let s = Mc.Exhaustive.sweep ~algo ~config:c31 ~proposals ~horizon:2 () in
  check_bool "every run crashed" true
    (List.length s.Mc.Exhaustive.crashed = s.Mc.Exhaustive.runs);
  check_bool "some runs" true (s.Mc.Exhaustive.runs > 0);
  (match s.Mc.Exhaustive.crashed with
  | { Mc.Exhaustive.error; _ } :: _ ->
      check_int "faulting round" 2 (Round.to_int error.Sim.Engine.round);
      check_bool "algorithm name" true (error.Sim.Engine.algorithm = "Raising@2");
      check_bool "reason mentions the fault" true
        (contains error.Sim.Engine.reason "injected fault")
  | [] -> Alcotest.fail "expected crashed runs");
  let i =
    Mc.Exhaustive.sweep_incremental ~algo ~config:c31 ~proposals ~horizon:2 ()
  in
  let p =
    Mc.Parallel.sweep ~jobs:4 ~algo ~config:c31 ~proposals ~horizon:2 ()
  in
  check_bool "incremental == serial (crashed included)" true (result_equal s i);
  check_bool "parallel == serial (crashed included)" true (result_equal s p)

(* An exception outside the engine's containment (raising init) must
   surface as per-shard failures with shard context — the Par pool joins
   and the merged result still arrives. *)
let test_parallel_shard_failures () =
  let algo = Fuzz.Faulty.raising_init in
  let proposals = Sim.Runner.distinct_proposals c31 in
  let r = Mc.Parallel.sweep ~jobs:4 ~algo ~config:c31 ~proposals ~horizon:2 () in
  check_int "no run completed" 0 r.Mc.Exhaustive.runs;
  check_bool "every shard failed" true
    (List.length r.Mc.Exhaustive.shard_failures > 0);
  List.iteri
    (fun i (f : Mc.Exhaustive.shard_failure) ->
      check_int "shards reported in order" i f.Mc.Exhaustive.shard;
      check_bool "context describes the subproblem" true
        (f.Mc.Exhaustive.context <> "");
      check_bool "message kept" true
        (contains f.Mc.Exhaustive.message "injected init fault"))
    r.Mc.Exhaustive.shard_failures;
  (* A healthy sweep reports no shard failures. *)
  let ok = Mc.Parallel.sweep ~jobs:4 ~algo:floodset ~config:c31 ~proposals () in
  check_bool "healthy sweep has none" true
    (ok.Mc.Exhaustive.shard_failures = [])

(* ------------------------------------------------------------------ *)
(* Valency                                                             *)

let ones_proposals cfg =
  Sim.Runner.binary_proposals cfg
    ~ones:(Pid.Set.of_ints (Listx.range 2 (Config.n cfg)))

let test_valency_univalent_uniform () =
  (* All-zero proposals: validity forces 0-valence. *)
  let proposals =
    Sim.Runner.binary_proposals c31 ~ones:Pid.Set.empty
  in
  check_bool "0-valent" true
    (Mc.Valency.equal Mc.Valency.Zero
       (Mc.Valency.of_partial ~algo:floodset_ws ~config:c31 ~proposals []))

let test_valency_bivalent_initial () =
  match Mc.Valency.bivalent_initial ~algo:floodset_ws ~config:c31 () with
  | None -> Alcotest.fail "Lemma 3: a bivalent initial configuration exists"
  | Some proposals ->
      check_bool "it is bivalent" true
        (Mc.Valency.equal Mc.Valency.Bivalent
           (Mc.Valency.of_partial ~algo:floodset_ws ~config:c31 ~proposals []))

let test_valency_frontier_floodset_ws () =
  (* Lemma 4 gives a bivalent (t-1)-round run; the t-round partials of a
     t+1-decider are univalent. *)
  let k, _ =
    Mc.Valency.frontier ~algo:floodset_ws ~config:c31
      ~proposals:(ones_proposals c31) ()
  in
  check_int "frontier = t-1" 0 k

let test_valency_frontier_at2 () =
  let k, _ =
    Mc.Valency.frontier ~algo:at2 ~config:c31 ~proposals:(ones_proposals c31)
      ()
  in
  check_int "frontier = t-1" 0 k

let test_valency_crash_changes_value () =
  (* (0,1,1): p1 crashing silently at round 1 forces decision 1; quiet runs
     decide 0 -> the empty prefix is bivalent, the one-round prefix where p1
     dies silently is 1-valent. *)
  let proposals = ones_proposals c31 in
  let silent =
    Mc.Serial.Crash { victim = Pid.of_int 1; receivers = Pid.Set.empty }
  in
  check_bool "empty prefix bivalent" true
    (Mc.Valency.equal Mc.Valency.Bivalent
       (Mc.Valency.of_partial ~algo:floodset_ws ~config:c31 ~proposals []));
  check_bool "silent-crash prefix 1-valent" true
    (Mc.Valency.equal Mc.Valency.One
       (Mc.Valency.of_partial ~algo:floodset_ws ~config:c31 ~proposals
          [ silent ]));
  check_bool "no-crash prefix 0-valent" true
    (Mc.Valency.equal Mc.Valency.Zero
       (Mc.Valency.of_partial ~algo:floodset_ws ~config:c31 ~proposals
          [ Mc.Serial.No_crash ]))

(* ------------------------------------------------------------------ *)
(* Attack                                                              *)

let test_witness_breaks_floodset_ws () =
  List.iter
    (fun (n, t) ->
      let cfg = config ~n ~t in
      let r = Mc.Attack.floodset_ws_witness cfg in
      check_bool
        (Printf.sprintf "violation at n=%d t=%d" n t)
        true
        (List.exists
           (function Sim.Props.Agreement _ -> true | _ -> false)
           r.Mc.Attack.violations))
    [ (3, 1); (4, 1); (5, 2); (7, 3); (9, 4) ]

let test_witness_schedule_shape () =
  let s = Mc.Attack.witness_schedule c52 in
  assert_valid c52 s;
  check_bool "asynchronous" false (Sim.Schedule.synchronous s);
  (* t-1 chain crashes plus the final crash *)
  check_int "crashes" 2 (Sim.Schedule.crash_count s);
  check_bool "p_t stays correct" true
    (Sim.Schedule.crash_round s (Pid.of_int 2) = None)

let test_solo_split_breaks_floodset () =
  let r = Mc.Attack.run_solo_split floodset c52 in
  check_bool "violated" true (r.Mc.Attack.violations <> [])

(* Section 1.4: the attack transfers to the DLS basic round model with the
   isolating messages lost instead of delayed. *)
let test_solo_split_dls () =
  let s = Mc.Attack.solo_split_dls c52 in
  assert_valid c52 s;
  check_bool "DLS model" true
    (Sim.Model.equal (Sim.Schedule.model s) Sim.Model.Dls_basic);
  check_bool "no delayed messages at all" true
    (List.for_all
       (fun (p : Sim.Schedule.plan) -> p.Sim.Schedule.delayed = [])
       (Sim.Schedule.plans s));
  let r = Mc.Attack.run_solo_split_dls floodset_ws c52 in
  check_bool "FloodSetWS violated in DLS" true (r.Mc.Attack.violations <> []);
  let r2 = Mc.Attack.run_solo_split_dls floodset c52 in
  check_bool "FloodSet violated in DLS" true (r2.Mc.Attack.violations <> [])

let test_dls_model_rules () =
  (* Delays are never legal in the DLS basic model; arbitrary pre-gst losses
     are. *)
  let dls ~gst plans =
    Sim.Schedule.make ~model:Sim.Model.Dls_basic ~gst:(Round.of_int gst) plans
  in
  let lost_plan =
    {
      Sim.Schedule.crashes = [];
      lost = [ (Pid.of_int 1, Pid.of_int 2) ];
      delayed = [];
    }
  in
  let delayed_plan =
    {
      Sim.Schedule.crashes = [];
      lost = [];
      delayed = [ (Pid.of_int 1, Pid.of_int 2, Round.of_int 3) ];
    }
  in
  assert_valid c52 (dls ~gst:2 [ lost_plan ]);
  assert_invalid c52 (dls ~gst:1 [ lost_plan ]);
  assert_invalid c52 (dls ~gst:4 [ delayed_plan ])

let test_survivors () =
  List.iter
    (fun algo ->
      let r1 = Mc.Attack.run_witness algo c52 in
      let r2 = Mc.Attack.run_solo_split algo c52 in
      check_bool "witness survived" true (r1.Mc.Attack.violations = []);
      check_bool "solo split survived" true (r2.Mc.Attack.violations = []))
    [ at2; at2_opt; a_ds; hr; ct ]

let test_search_finds_floodset_violation () =
  let proposals = ones_proposals c52 in
  match
    Mc.Attack.search ~samples:300 ~seed:5 ~algo:floodset ~config:c52
      ~proposals ()
  with
  | Some r -> check_bool "violations recorded" true (r.Mc.Attack.violations <> [])
  | None -> Alcotest.fail "random search should break FloodSet in ES"

(* The five-run construction of Claim 5.1 (Fig. 1): every proof obligation
   holds against the canonical t+1-round algorithm, at every resilience. *)
let test_figure1_against_floodset_ws () =
  List.iter
    (fun (n, t) ->
      let o = Mc.Figure1.against_floodset_ws (config ~n ~t) in
      List.iter
        (fun (r : Mc.Figure1.relation) ->
          check_bool
            (Printf.sprintf "(n=%d,t=%d) %s" n t r.description)
            true r.holds)
        o.Mc.Figure1.relations;
      check_bool "agreement violated" true o.Mc.Figure1.agreement_violated;
      check_bool "all_hold" true (Mc.Figure1.all_hold o))
    [ (3, 1); (4, 1); (5, 2); (7, 3); (9, 4) ]

(* Against the indulgent algorithm the same five runs produce no violation:
   A(t+2) does not decide at t+1, so the contradiction never materialises. *)
let test_figure1_against_at2 () =
  let module F = Mc.Figure1.Make (Indulgent.At_plus_2.Standard) in
  let o = F.run (config ~n:5 ~t:2) in
  check_bool "no agreement violation" false o.Mc.Figure1.agreement_violated;
  check_bool "Q does not decide both values" true
    (not
       (o.Mc.Figure1.q_decision_a1 = Some Kernel.Value.one
       && o.Mc.Figure1.q_decision_a0 = Some Kernel.Value.zero))

let test_search_clean_for_at2 () =
  let proposals = ones_proposals c31 in
  check_bool "no violation found" true
    (Mc.Attack.search ~samples:120 ~seed:5 ~algo:at2 ~config:c31 ~proposals ()
    = None)

(* ------------------------------------------------------------------ *)
(* Codec: canonical JSON for everything a worker ships or a checkpoint
   stores — the wire format and the snapshot format are the same bytes,
   so one round-trip suite covers both.                                 *)

let json_eq a b = String.equal (Obs.Json.to_string a) (Obs.Json.to_string b)

let pid_set_of_mask mask =
  Pid.Set.of_ints
    (List.filter (fun i -> mask land (1 lsl (i - 1)) <> 0) [ 1; 2; 3; 4; 5 ])

let arb_choice =
  QCheck.map
    (fun (kind, who, mask) ->
      let pid = Pid.of_int (1 + who) in
      let set = pid_set_of_mask mask in
      match kind with
      | 0 -> Mc.Serial.No_crash
      | 1 -> Mc.Serial.Crash { victim = pid; receivers = set }
      | 2 -> Mc.Serial.Send_omit { culprit = pid; dropped = set }
      | _ -> Mc.Serial.Recv_omit { culprit = pid; dropped = set })
    QCheck.(triple (int_range 0 3) (int_range 0 4) (int_range 0 31))

(* Sets decode to the same set but not necessarily the same tree shape, so
   the property is a fixpoint on the canonical encoding. *)
let prop_codec_choice_roundtrip =
  qtest ~count:200 "choice codec round-trip" arb_choice (fun c ->
      match Mc.Codec.choice_of_json (Mc.Codec.choice_to_json c) with
      | Error msg -> QCheck.Test.fail_reportf "decode failed: %s" msg
      | Ok c' -> json_eq (Mc.Codec.choice_to_json c) (Mc.Codec.choice_to_json c'))

let arb_violation =
  QCheck.map
    (fun (kind, a, b, mask) ->
      let pid i = Pid.of_int (1 + (i mod 5)) in
      let undecided =
        List.filter (fun i -> mask land (1 lsl (i - 1)) <> 0) [ 1; 2; 3; 4; 5 ]
        |> List.map Pid.of_int
      in
      match kind with
      | 0 -> Sim.Props.Validity { pid = pid a; value = Value.of_int b }
      | 1 ->
          Sim.Props.Agreement
            {
              pid_a = pid a;
              value_a = Value.of_int a;
              pid_b = pid b;
              value_b = Value.of_int b;
            }
      | 2 -> Sim.Props.Termination { undecided }
      | _ -> Sim.Props.Unsettled { undecided })
    QCheck.(quad (int_range 0 3) (int_range 0 4) (int_range 0 4) (int_range 0 31))

let prop_codec_violation_roundtrip =
  qtest ~count:200 "violation codec round-trip" arb_violation (fun v ->
      match Mc.Codec.violation_of_json (Mc.Codec.violation_to_json v) with
      | Error msg -> QCheck.Test.fail_reportf "decode failed: %s" msg
      | Ok v' -> v' = v)

let arb_step_error =
  QCheck.map
    (fun (algorithm, reason, p, r) ->
      {
        Sim.Engine.algorithm;
        pid = Pid.of_int (1 + p);
        round = Round.of_int (1 + r);
        reason;
      })
    QCheck.(quad string_printable string_printable (int_range 0 4) (int_range 0 8))

let prop_codec_step_error_roundtrip =
  qtest ~count:200 "step_error codec round-trip" arb_step_error (fun e ->
      Mc.Codec.step_error_of_json (Mc.Codec.step_error_to_json e) = Ok e)

let test_codec_stats_roundtrip () =
  let s =
    {
      Mc.Dedup.hits = 12;
      misses = 5;
      entries = 7;
      edges = 999;
      spilled = 3;
      snapshots = 41;
      restores = 29;
    }
  in
  check_bool "stats round-trip" true
    (Mc.Codec.stats_of_json (Mc.Codec.stats_to_json s) = Ok s);
  (* Checkpoints written before the arena counters existed decode with
     both counters at 0. *)
  let legacy =
    Obs.Json.Obj
      [
        ("hits", Obs.Json.Int 1);
        ("misses", Obs.Json.Int 2);
        ("entries", Obs.Json.Int 3);
        ("edges", Obs.Json.Int 4);
        ("spilled", Obs.Json.Int 0);
      ]
  in
  check_bool "legacy stats decode" true
    (Mc.Codec.stats_of_json legacy
    = Ok
        {
          Mc.Dedup.hits = 1;
          misses = 2;
          entries = 3;
          edges = 4;
          spilled = 0;
          snapshots = 0;
          restores = 0;
        })

(* Real sweep results — the fixtures deliberately include an algorithm
   that violates agreement and one that raises mid-run, so the codec is
   exercised on populated violation lists, witnesses and crashed runs. *)
let test_codec_result_roundtrip () =
  List.iter
    (fun (algo, name, n, t) ->
      let config = config ~n ~t in
      let proposals = Sim.Runner.distinct_proposals config in
      let r = Mc.Exhaustive.sweep_incremental ~algo ~config ~proposals () in
      match Mc.Codec.result_of_json (Mc.Codec.result_to_json r) with
      | Error msg -> Alcotest.fail (name ^ ": " ^ msg)
      | Ok r' ->
          check_bool (name ^ ": decoded result is bit-identical") true
            (result_equal r r');
          check_bool (name ^ ": codec equality agrees") true
            (Mc.Codec.result_equal r r'))
    reduction_fixtures

(* ------------------------------------------------------------------ *)
(* Checkpoint: versioned snapshots and their pinned failure modes       *)

let with_temp_file f =
  let path = Filename.temp_file "ipi-test-mc" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let with_temp_dir f =
  let dir = Filename.temp_file "ipi-test-mc" ".dir" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun name ->
          try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let mk_spec ?(faults = Sim.Model.Crash_only) ?omit_budget
    ?(reduce = Mc.Distrib.Rdedup) ?(binary = false) ?table_cap ?spill_dir
    ~algo config =
  {
    Mc.Distrib.faults;
    omit_budget;
    policy = Mc.Serial.Prefixes;
    horizon = None;
    algo;
    config;
    reduce;
    scope =
      (if binary then Mc.Distrib.Binary
       else Mc.Distrib.Fixed (Sim.Runner.distinct_proposals config));
    table_cap;
    spill_dir;
  }

let run_ok name = function
  | Ok r -> r
  | Error msg -> Alcotest.fail (name ^ ": " ^ msg)

let entry_equal (a : Mc.Checkpoint.entry) (b : Mc.Checkpoint.entry) =
  a.task = b.task && a.edges = b.edges && a.stats = b.stats
  && Mc.Codec.result_equal a.result b.result

let test_checkpoint_roundtrip () =
  with_temp_file @@ fun path ->
  let params = Obs.Json.Obj [ ("test", Obs.Json.String "ckpt-roundtrip") ] in
  let full =
    run_ok "serial" (Mc.Distrib.run_serial ~params (mk_spec ~algo:floodset c41))
  in
  check_bool "fixture produced entries" true (full.Mc.Distrib.completed <> []);
  let t =
    {
      Mc.Checkpoint.commit = "deadbeef";
      params;
      total_tasks = full.Mc.Distrib.total_tasks;
      completed = full.Mc.Distrib.completed;
    }
  in
  Mc.Checkpoint.save ~path t;
  match Mc.Checkpoint.load ~path with
  | Error e ->
      Alcotest.fail (Format.asprintf "%a" Mc.Checkpoint.pp_load_error e)
  | Ok t' ->
      check_string "commit survives" "deadbeef" t'.Mc.Checkpoint.commit;
      check_bool "params survive canonically" true
        (json_eq params t'.Mc.Checkpoint.params);
      check_int "total_tasks survives" t.Mc.Checkpoint.total_tasks
        t'.Mc.Checkpoint.total_tasks;
      check_int "entry count survives"
        (List.length t.Mc.Checkpoint.completed)
        (List.length t'.Mc.Checkpoint.completed);
      List.iter2
        (fun a b -> check_bool "entry bit-identical" true (entry_equal a b))
        t.Mc.Checkpoint.completed t'.Mc.Checkpoint.completed;
      check_bool "compatible with its own params" true
        (Mc.Checkpoint.compatible t' ~params = Ok ())

let load_error name path =
  match Mc.Checkpoint.load ~path with
  | Ok _ -> Alcotest.fail (name ^ ": expected a load error")
  | Error e -> (e, Format.asprintf "%a" Mc.Checkpoint.pp_load_error e)

let test_checkpoint_load_errors () =
  let e, msg = load_error "missing" "/nonexistent/ipi.ckpt" in
  check_bool "missing file is Unreadable" true
    (match e with Mc.Checkpoint.Unreadable _ -> true | _ -> false);
  check_bool "missing-file message pinned" true
    (contains msg "checkpoint: cannot read file");
  with_temp_file @@ fun path ->
  let is_malformed = function Mc.Checkpoint.Malformed _ -> true | _ -> false in
  Obs.Artifact.write_string path "not json {";
  let e, msg = load_error "garbage" path in
  check_bool "garbage is Malformed" true (is_malformed e);
  check_bool "malformed message pinned" true
    (contains msg "checkpoint: malformed or truncated file");
  Obs.Artifact.write_string path "{\"not\":\"a checkpoint\"}";
  let e, _ = load_error "wrong shape" path in
  check_bool "JSON without the format marker is Malformed" true (is_malformed e);
  (* a half-written file: valid snapshot cut mid-byte *)
  let params = Obs.Json.Obj [ ("test", Obs.Json.String "ckpt-errors") ] in
  let full =
    run_ok "serial" (Mc.Distrib.run_serial ~params (mk_spec ~algo:floodset c31))
  in
  let snapshot =
    {
      Mc.Checkpoint.commit = "c";
      params;
      total_tasks = full.Mc.Distrib.total_tasks;
      completed = full.Mc.Distrib.completed;
    }
  in
  Mc.Checkpoint.save ~path snapshot;
  let whole = In_channel.with_open_bin path In_channel.input_all in
  Obs.Artifact.write_string path (String.sub whole 0 (String.length whole / 2));
  let e, _ = load_error "truncated" path in
  check_bool "truncated file is Malformed, never an exception" true
    (is_malformed e);
  (* the version gate fires before any other field is even looked at *)
  Obs.Artifact.write_string path
    (Obs.Json.to_string
       (Obs.Json.Obj
          [
            ("format", Obs.Json.String "ipi-checkpoint");
            ("version", Obs.Json.Int 99);
          ]));
  let e, msg = load_error "future version" path in
  check_bool "future version is Unknown_version" true
    (e = Mc.Checkpoint.Unknown_version 99);
  check_string "version message pinned"
    (Printf.sprintf
       "checkpoint: unknown format version 99 (this build reads version %d)"
       Mc.Checkpoint.version)
    msg;
  (* hand-edited task lists are refused rather than merged *)
  let entry = List.hd full.Mc.Distrib.completed in
  let forged completed total =
    Obs.Artifact.write_string path
      (Obs.Json.to_string
         (Obs.Json.Obj
            [
              ("format", Obs.Json.String "ipi-checkpoint");
              ("version", Obs.Json.Int Mc.Checkpoint.version);
              ("commit", Obs.Json.String "c");
              ("params", params);
              ("total_tasks", Obs.Json.Int total);
              ( "completed",
                Obs.Json.List (List.map Mc.Checkpoint.entry_to_json completed)
              );
            ]))
  in
  let at task = { entry with Mc.Checkpoint.task } in
  forged [ at 0; at 0 ] 2;
  let e, msg = load_error "duplicate tasks" path in
  check_bool "duplicate task indices are Malformed" true (is_malformed e);
  check_bool "duplicate message names the problem" true
    (contains msg "not ascending");
  forged [ at 5 ] 2;
  let e, msg = load_error "out of range" path in
  check_bool "out-of-range task index is Malformed" true (is_malformed e);
  check_bool "range message names the problem" true
    (contains msg "out of range")

(* ------------------------------------------------------------------ *)
(* Crash-safe drivers: checkpoint, interrupt, resume — bit-identical    *)

(* Interrupt after four tasks (deterministically, via the should_stop
   poll), checkpoint every task, reload, resume, and demand the resumed
   aggregates equal an undisturbed run on every field. *)
let serial_resume_cycle name spec =
  with_temp_file @@ fun path ->
  let params = Obs.Json.Obj [ ("test", Obs.Json.String name) ] in
  let full = run_ok name (Mc.Distrib.run_serial ~params spec) in
  check_bool (name ^ ": undisturbed run completes") false full.Mc.Distrib.partial;
  check_bool
    (name ^ ": fixture has enough tasks to interrupt")
    true
    (full.Mc.Distrib.total_tasks > 5);
  let polls = ref 0 in
  let should_stop () =
    incr polls;
    !polls > 4
  in
  let part =
    run_ok name
      (Mc.Distrib.run_serial ~checkpoint:(path, 1) ~should_stop ~params spec)
  in
  check_bool (name ^ ": interrupted run reports PARTIAL") true
    part.Mc.Distrib.partial;
  check_int (name ^ ": exactly four tasks persisted") 4
    (List.length part.Mc.Distrib.completed);
  let ck =
    match Mc.Checkpoint.load ~path with
    | Ok ck -> ck
    | Error e ->
        Alcotest.fail
          (Format.asprintf "%s: %a" name Mc.Checkpoint.pp_load_error e)
  in
  check_int (name ^ ": checkpoint holds the persisted tasks") 4
    (List.length ck.Mc.Checkpoint.completed);
  let resumed = run_ok name (Mc.Distrib.run_serial ~resume:ck ~params spec) in
  check_bool (name ^ ": resumed run completes") false resumed.Mc.Distrib.partial;
  check_bool
    (name ^ ": aggregates bit-identical after resume")
    true
    (result_equal full.Mc.Distrib.result resumed.Mc.Distrib.result);
  check_bool (name ^ ": reduction stats identical") true
    (full.Mc.Distrib.stats = resumed.Mc.Distrib.stats);
  check_int (name ^ ": edge counts identical") full.Mc.Distrib.edges
    resumed.Mc.Distrib.edges

let test_serial_resume_crash_dedup () =
  serial_resume_cycle "crash/dedup" (mk_spec ~algo:floodset c41)

let test_serial_resume_crash_unreduced () =
  serial_resume_cycle "crash/unreduced"
    (mk_spec ~reduce:Mc.Distrib.Rnone ~algo:floodset c41)

let test_serial_resume_mixed_faults () =
  serial_resume_cycle "mixed/dedup"
    (mk_spec ~faults:Sim.Model.Mixed ~omit_budget:1 ~algo:floodset c31)

let test_serial_resume_binary_scope () =
  serial_resume_cycle "binary/dedup" (mk_spec ~binary:true ~algo:floodset c41)

(* The --budget expiry path: a deadline already in the past stops the
   sweep before any task runs, still flushes a (resumable) checkpoint. *)
let test_serial_deadline_checkpoint_resume () =
  with_temp_file @@ fun path ->
  let params = Obs.Json.Obj [ ("test", Obs.Json.String "deadline") ] in
  let spec = mk_spec ~algo:floodset c41 in
  let full = run_ok "deadline" (Mc.Distrib.run_serial ~params spec) in
  let part =
    run_ok "deadline"
      (Mc.Distrib.run_serial ~checkpoint:(path, 1)
         ~deadline:(Unix.gettimeofday () -. 1.)
         ~params spec)
  in
  check_bool "expired budget reports PARTIAL" true part.Mc.Distrib.partial;
  check_int "nothing ran, nothing persisted" 0
    (List.length part.Mc.Distrib.completed);
  let ck =
    match Mc.Checkpoint.load ~path with
    | Ok ck -> ck
    | Error e ->
        Alcotest.fail (Format.asprintf "%a" Mc.Checkpoint.pp_load_error e)
  in
  let resumed = run_ok "deadline" (Mc.Distrib.run_serial ~resume:ck ~params spec) in
  check_bool "resume from an empty checkpoint is the full sweep" true
    (result_equal full.Mc.Distrib.result resumed.Mc.Distrib.result)

(* A checkpoint can never silently seed a different sweep. *)
let test_resume_validation_errors () =
  let params = Obs.Json.Obj [ ("test", Obs.Json.String "resume-validate") ] in
  let spec = mk_spec ~algo:floodset c31 in
  let full = run_ok "validate" (Mc.Distrib.run_serial ~params spec) in
  let ck params total_tasks =
    { Mc.Checkpoint.commit = "c"; params; total_tasks; completed = [] }
  in
  (match
     Mc.Distrib.run_serial
       ~resume:
         (ck
            (Obs.Json.Obj [ ("test", Obs.Json.String "another sweep") ])
            full.Mc.Distrib.total_tasks)
       ~params spec
   with
  | Ok _ -> Alcotest.fail "foreign params must be refused"
  | Error msg ->
      check_bool "params mismatch is named" true (contains msg "parameter mismatch"));
  match
    Mc.Distrib.run_serial
      ~resume:(ck params (full.Mc.Distrib.total_tasks + 1))
      ~params spec
  with
  | Ok _ -> Alcotest.fail "wrong task count must be refused"
  | Error msg ->
      check_bool "task count mismatch is named" true
        (contains msg "task count mismatch")

(* The checkpointed serial driver is the classic incremental sweeps in a
   new harness: with no interruption it must be bit-identical to them. *)
let test_distrib_serial_matches_classic_drivers () =
  let params = Obs.Json.Obj [ ("test", Obs.Json.String "distrib-eq") ] in
  let config = c41 in
  let proposals = Sim.Runner.distinct_proposals config in
  let horizon = Config.t config + 2 in
  let classic =
    Mc.Exhaustive.sweep_incremental ~horizon ~algo:floodset ~config ~proposals
      ()
  in
  let d =
    run_ok "fixed/unreduced"
      (Mc.Distrib.run_serial ~params
         (mk_spec ~reduce:Mc.Distrib.Rnone ~algo:floodset config))
  in
  check_bool "fixed/unreduced == incremental sweep" true
    (result_equal classic d.Mc.Distrib.result);
  let dedup_classic, dedup_stats =
    Mc.Dedup.sweep ~horizon ~algo:floodset ~config ~proposals ()
  in
  let dd =
    run_ok "fixed/dedup"
      (Mc.Distrib.run_serial ~params (mk_spec ~algo:floodset config))
  in
  check_bool "fixed/dedup == dedup sweep" true
    (result_equal dedup_classic dd.Mc.Distrib.result);
  check_bool "fixed/dedup stats match" true
    (dd.Mc.Distrib.stats = Some dedup_stats);
  let classic_bin =
    Mc.Exhaustive.sweep_binary_incremental ~horizon ~algo:floodset ~config ()
  in
  let db =
    run_ok "binary/unreduced"
      (Mc.Distrib.run_serial ~params
         (mk_spec ~reduce:Mc.Distrib.Rnone ~binary:true ~algo:floodset config))
  in
  check_bool "binary/unreduced == binary incremental sweep" true
    (result_equal classic_bin db.Mc.Distrib.result)

(* Out-of-core dedup: capping the table and spilling to disk must change
   memory behaviour only — same aggregates, same lookup profile, and
   every key accounted for either in memory or on disk. *)
let test_spill_equivalence () =
  with_temp_dir @@ fun dir ->
  let params = Obs.Json.Obj [ ("test", Obs.Json.String "spill") ] in
  let full =
    run_ok "uncapped" (Mc.Distrib.run_serial ~params (mk_spec ~algo:floodset c52))
  in
  let spilled =
    run_ok "spilling"
      (Mc.Distrib.run_serial ~params
         (mk_spec ~table_cap:16 ~spill_dir:dir ~algo:floodset c52))
  in
  check_bool "spilling sweep is bit-identical" true
    (result_equal full.Mc.Distrib.result spilled.Mc.Distrib.result);
  (match (full.Mc.Distrib.stats, spilled.Mc.Distrib.stats) with
  | Some a, Some b ->
      check_bool "cap actually forced spilling" true (b.Mc.Dedup.spilled > 0);
      check_int "resident + spilled = uncapped entries" a.Mc.Dedup.entries
        (b.Mc.Dedup.entries + b.Mc.Dedup.spilled);
      check_int "lookup profile unchanged"
        (a.Mc.Dedup.hits + a.Mc.Dedup.misses)
        (b.Mc.Dedup.hits + b.Mc.Dedup.misses)
  | _ -> Alcotest.fail "dedup sweeps must report stats");
  (* no spill_dir: overflow entries are dropped, which may cost repeat
     work but never changes the answer *)
  let dropped =
    run_ok "dropping"
      (Mc.Distrib.run_serial ~params (mk_spec ~table_cap:16 ~algo:floodset c52))
  in
  check_bool "dropping sweep is bit-identical" true
    (result_equal full.Mc.Distrib.result dropped.Mc.Distrib.result)

let () =
  Alcotest.run "mc"
    [
      ( "serial",
        [
          Alcotest.test_case "choices" `Quick test_serial_choices;
          Alcotest.test_case "enumerate count" `Quick test_serial_enumerate_count;
          Alcotest.test_case "count closed form" `Quick
            test_serial_count_closed_form;
          Alcotest.test_case "to_schedule" `Quick test_serial_to_schedule;
          prop_serial_schedules_valid;
        ] );
      ( "exhaustive",
        [
          Alcotest.test_case "floodset t+1" `Quick test_exhaustive_floodset;
          Alcotest.test_case "at2 exactly t+2" `Slow test_exhaustive_at2;
          Alcotest.test_case "sweep determinism" `Quick test_sweep_determinism;
          Alcotest.test_case "binary sweep determinism" `Quick
            test_sweep_binary_determinism;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "dedup == unreduced (all fixtures, both \
                              policies)" `Quick test_dedup_equivalence;
          prop_dedup_equivalent_on_random_proposals;
          Alcotest.test_case "symmetry aggregates == unreduced" `Slow
            test_symmetry_equivalence;
          Alcotest.test_case "orbit arithmetic" `Quick test_symmetry_orbits;
          Alcotest.test_case "asymmetric algorithms fall back to dedup" `Quick
            test_symmetry_asymmetric_fallback;
          Alcotest.test_case "reduced sweeps deterministic across jobs" `Quick
            test_reduced_jobs_determinism;
          Alcotest.test_case "serial omission choices" `Quick
            test_serial_omission_choices;
          Alcotest.test_case "omission sweep determinism" `Quick
            test_omission_sweep_determinism;
          Alcotest.test_case "omission witnesses replay" `Quick
            test_omission_sweep_witnesses_replay;
          Alcotest.test_case "crash-only bit compatibility" `Quick
            test_crash_only_bit_compat;
          Alcotest.test_case "sweep deadline expiry" `Quick
            test_sweep_deadline_expiry;
          Alcotest.test_case "A(t+2) = t+2 under reduction" `Quick
            test_at2_reduced_t_plus_2;
        ] );
      ( "containment",
        [
          Alcotest.test_case "step errors contained in all drivers" `Quick
            test_sweep_contains_step_errors;
          Alcotest.test_case "shard failures surface, pool survives" `Quick
            test_parallel_shard_failures;
        ] );
      ( "valency",
        [
          Alcotest.test_case "uniform is univalent" `Quick test_valency_univalent_uniform;
          Alcotest.test_case "Lemma 3" `Quick test_valency_bivalent_initial;
          Alcotest.test_case "frontier FloodSetWS" `Quick test_valency_frontier_floodset_ws;
          Alcotest.test_case "frontier A(t+2)" `Quick test_valency_frontier_at2;
          Alcotest.test_case "crash flips valency" `Quick test_valency_crash_changes_value;
        ] );
      ( "attack",
        [
          Alcotest.test_case "witness breaks FloodSetWS" `Quick test_witness_breaks_floodset_ws;
          Alcotest.test_case "witness shape" `Quick test_witness_schedule_shape;
          Alcotest.test_case "solo split breaks FloodSet" `Quick test_solo_split_breaks_floodset;
          Alcotest.test_case "solo split in DLS (Section 1.4)" `Quick test_solo_split_dls;
          Alcotest.test_case "DLS model rules" `Quick test_dls_model_rules;
          Alcotest.test_case "indulgent algorithms survive" `Quick test_survivors;
          Alcotest.test_case "search finds FloodSet violation" `Quick test_search_finds_floodset_violation;
          Alcotest.test_case "search clean for A(t+2)" `Quick test_search_clean_for_at2;
        ] );
      ( "figure1",
        [
          Alcotest.test_case "five runs vs FloodSetWS" `Quick
            test_figure1_against_floodset_ws;
          Alcotest.test_case "five runs vs A(t+2)" `Quick
            test_figure1_against_at2;
        ] );
      ( "codec",
        [
          prop_codec_choice_roundtrip;
          prop_codec_violation_roundtrip;
          prop_codec_step_error_roundtrip;
          Alcotest.test_case "stats round-trip" `Quick
            test_codec_stats_roundtrip;
          Alcotest.test_case "real results round-trip" `Quick
            test_codec_result_roundtrip;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "save/load round-trip" `Quick
            test_checkpoint_roundtrip;
          Alcotest.test_case "load error taxonomy" `Quick
            test_checkpoint_load_errors;
        ] );
      ( "crash-safety",
        [
          Alcotest.test_case "resume crash/dedup" `Quick
            test_serial_resume_crash_dedup;
          Alcotest.test_case "resume crash/unreduced" `Quick
            test_serial_resume_crash_unreduced;
          Alcotest.test_case "resume mixed faults" `Quick
            test_serial_resume_mixed_faults;
          Alcotest.test_case "resume binary scope" `Quick
            test_serial_resume_binary_scope;
          Alcotest.test_case "budget expiry checkpoint" `Quick
            test_serial_deadline_checkpoint_resume;
          Alcotest.test_case "resume validation" `Quick
            test_resume_validation_errors;
          Alcotest.test_case "distrib == classic drivers" `Quick
            test_distrib_serial_matches_classic_drivers;
          Alcotest.test_case "spill equivalence" `Quick
            test_spill_equivalence;
        ] );
    ]
