
open Helpers

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

let test_registry_lookup () =
  check_bool "find" true (Expt.Registry.find "A(t+2)" <> None);
  check_bool "missing" true (Expt.Registry.find "nope" = None);
  check_int "entries" 13 (List.length Expt.Registry.all)

let test_registry_applicability () =
  let c52 = config ~n:5 ~t:2 in
  let c72 = config ~n:7 ~t:2 in
  check_bool "A(t+2) at (5,2)" true
    (Expt.Registry.applicable Expt.Registry.at_plus_2 c52);
  check_bool "A(f+2) not at (5,2)" false
    (Expt.Registry.applicable Expt.Registry.af_plus_2 c52);
  check_bool "A(f+2) at (7,2)" true
    (Expt.Registry.applicable Expt.Registry.af_plus_2 c72);
  check_bool "FloodSet anywhere" true
    (Expt.Registry.applicable Expt.Registry.floodset (config ~n:4 ~t:3))

let test_registry_predictions () =
  let c = config ~n:5 ~t:2 in
  check_int "FloodSet" 3 (Expt.Registry.floodset.Expt.Registry.sync_worst_case c);
  check_int "A(t+2)" 4 (Expt.Registry.at_plus_2.Expt.Registry.sync_worst_case c);
  check_int "HR" 6 (Expt.Registry.hurfin_raynal.Expt.Registry.sync_worst_case c);
  check_int "CT" 12 (Expt.Registry.ct_diamond_s.Expt.Registry.sync_worst_case c)

(* ------------------------------------------------------------------ *)
(* Experiments (reduced parameters: these are smoke + correctness)     *)

let test_e1_small () =
  let rows = Expt.E1_price.measure ~samples:40 [ (3, 1); (5, 2) ] in
  check_bool "rows present" true (List.length rows >= 10);
  List.iter
    (fun (r : Expt.E1_price.row) ->
      check_int
        (Printf.sprintf "%s at n=%d matches prediction" r.label r.n)
        r.predicted r.measured)
    rows

let test_e2_small () =
  let rows = Expt.E2_lower_bound.measure [ (3, 1); (5, 2) ] in
  List.iter
    (fun (r : Expt.E2_lower_bound.row) ->
      check_int "fast algorithm decides at t+1" (r.t + 1) r.fast_decides_at;
      check_int "frontier t-1" (r.t - 1) r.frontier;
      check_bool "attack works" true (r.attack_violations > 0);
      check_bool "A(t+2) survives" true r.at2_survives)
    rows

let test_e5_small () =
  let rows = Expt.E5_failure_free.measure (config ~n:5 ~t:2) in
  let find label =
    List.find (fun (r : Expt.E5_failure_free.row) -> r.label = label) rows
  in
  check_int "optimized decides at 2" 2 (find "A(t+2)+ff").failure_free;
  check_int "standard decides at t+2" 4 (find "A(t+2)").failure_free;
  check_bool "optimized worst within t+2" true
    ((find "A(t+2)+ff").sync_worst <= 4)

let test_e6_small () =
  let rows = Expt.E6_early.measure ~samples:60 (config ~n:7 ~t:2) in
  List.iter
    (fun (r : Expt.E6_early.row) ->
      check_bool
        (Printf.sprintf "A(f+2) within f+2 at f=%d" r.f)
        true (r.af2_worst <= r.f + 2);
      check_int "A(t+2) pinned at t+2" 4 r.at2_worst)
    rows

let test_e7_small () =
  let rows =
    Expt.E7_eventual.measure ~samples:30 (config ~n:7 ~t:2) ~ks:[ 0; 2 ]
  in
  List.iter
    (fun (r : Expt.E7_eventual.row) ->
      check_bool "A(f+2) within k+f+2" true (r.af2_worst <= r.af2_bound);
      check_bool "AMR within k+2f+2" true (r.amr_worst <= r.amr_bound))
    rows

let test_e8_small () =
  let rows = Expt.E8_fd.measure ~samples:20 (config ~n:5 ~t:2) [ 1; 4 ] in
  List.iter
    (fun (r : Expt.E8_fd.row) ->
      check_int "completeness always" r.runs r.completeness_ok;
      check_int "<>P always" r.runs r.dp_accuracy_ok;
      check_int "<>S always" r.runs r.ds_accuracy_ok;
      if r.gst = 1 then check_int "P holds when synchronous" r.runs r.p_accuracy_ok)
    rows

let test_e9 () =
  List.iter
    (fun (d : Expt.E9_resilience.demo) ->
      check_bool (d.what ^ "/" ^ d.algorithm) d.expected_violation d.violated)
    (Expt.E9_resilience.measure ())

let test_e10 () =
  let rows = Expt.E10_cost.measure [ (5, 2) ] in
  List.iter
    (fun (r : Expt.E10_cost.row) ->
      check_bool "decided" true (r.decision_round > 0);
      check_bool "messages consistent with rounds" true
        (r.messages <= r.quiescent_round * r.n * r.n);
      (* every copy carries at least its 7-byte header *)
      check_bool "bytes at least headers" true (r.bytes >= 7 * r.messages))
    rows

let test_e11 () =
  List.iter
    (fun (r : Expt.E11_ablations.row) ->
      check_bool (r.ablation ^ " / " ^ r.scenario) true r.as_predicted)
    (Expt.E11_ablations.measure ())

let test_e12 () =
  let rows = Expt.E12_crossover.measure ~samples:40 (config ~n:5 ~t:2) in
  List.iter
    (fun (r : Expt.E12_crossover.row) ->
      (* the paper's trade: optimists have better means under random
         crashes, the optimized A(t+2) has the bounded tail *)
      check_bool "opt max within t+2" true (r.opt_max <= 4);
      check_bool "opt mean beats or ties plain A(t+2)" true
        (r.opt_mean <= r.at2_mean +. 1e-9);
      check_bool "A(t+2) flat at t+2" true
        (r.at2_mean = 4.0 && r.at2_max = 4);
      if r.crashes = 0 then
        check_bool "failure-free: opt ties HR at 2" true
          (r.opt_mean = 2.0 && r.hr_mean = 2.0))
      (* HR's 2t+2 tail vs the opt's t+2 cap is certified deterministically
         by E1's coordinator-killer cascade; random sampling at this size
         need not surface it. *)
    rows

let test_e13 () =
  let rows = Expt.E13_omissions.measure () in
  check_int "eight rows" 8 (List.length rows);
  List.iter
    (fun (r : Expt.E13_omissions.row) ->
      let label =
        Printf.sprintf "%s / %s" r.algorithm
          (Sim.Model.faults_to_string r.faults)
      in
      check_bool (label ^ " safety as expected") r.expected_safe
        (r.violations = 0);
      check_bool (label ^ " ran") true (r.runs > 0);
      (* omission menus only enlarge the crash-only space *)
      if r.faults <> Sim.Model.Crash_only then
        check_bool (label ^ " bigger than crash-only") true (r.runs > 49);
      if r.algorithm = "A(t+2)" then (
        check_int (label ^ " earliest decision at t+2") (r.t + 2)
          r.min_decision;
        if r.faults = Sim.Model.Crash_only then
          check_int (label ^ " crash-only flat at t+2") (r.t + 2)
            r.max_decision
        else
          (* the measured shift: omitters starve the rotation *)
          check_bool (label ^ " decisions shift later") true
            (r.max_decision > r.t + 2)))
    rows

let test_suite_index () =
  check_int "thirteen experiments" 13 (List.length Expt.Suite.all);
  check_bool "find e1" true (Expt.Suite.find "e1" <> None);
  check_bool "find e12" true (Expt.Suite.find "e12" <> None);
  check_bool "find e13" true (Expt.Suite.find "e13" <> None);
  check_bool "missing" true (Expt.Suite.find "e14" = None)

let test_verify_certificate () =
  let checks = Expt.Verify.run () in
  check_int "ten claims" 10 (List.length checks);
  List.iter
    (fun (c : Expt.Verify.check) -> check_bool c.claim true c.ok)
    checks;
  check_bool "all ok" true (Expt.Verify.all_ok checks)

(* Stats helpers used by the experiment tables. *)
let test_stats_table () =
  let t =
    Stats.Table.add_rows
      (Stats.Table.make ~headers:[ "a"; "b" ])
      [ [ "1"; "22" ]; [ "333"; "4" ] ]
  in
  let rendered = Format.asprintf "%a" Stats.Table.render t in
  check_bool "contains rule" true (String.length rendered > 0);
  check_bool "aligned" true
    (String.split_on_char '\n' rendered
    |> List.for_all (fun line ->
           line = "" || String.length line = String.length "+-----+----+"));
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Table.add_row: 1 cells for 2 columns") (fun () ->
      ignore (Stats.Table.add_row t [ "x" ]))

let test_stats_summary () =
  match Stats.Summary.of_list [ 3; 1; 2 ] with
  | None -> Alcotest.fail "summary"
  | Some s ->
      check_int "count" 3 s.Stats.Summary.count;
      check_int "min" 1 s.Stats.Summary.min;
      check_int "max" 3 s.Stats.Summary.max;
      check_bool "mean" true (abs_float (s.Stats.Summary.mean -. 2.0) < 1e-9);
      check_bool "empty" true (Stats.Summary.of_list [] = None)

let () =
  Alcotest.run "expt"
    [
      ( "registry",
        [
          Alcotest.test_case "lookup" `Quick test_registry_lookup;
          Alcotest.test_case "applicability" `Quick test_registry_applicability;
          Alcotest.test_case "predictions" `Quick test_registry_predictions;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "e1 matches predictions" `Slow test_e1_small;
          Alcotest.test_case "e2 lower bound" `Slow test_e2_small;
          Alcotest.test_case "e5 failure-free" `Quick test_e5_small;
          Alcotest.test_case "e6 early decision" `Slow test_e6_small;
          Alcotest.test_case "e7 eventual decision" `Slow test_e7_small;
          Alcotest.test_case "e8 failure detectors" `Quick test_e8_small;
          Alcotest.test_case "e9 resilience" `Quick test_e9;
          Alcotest.test_case "e10 cost" `Quick test_e10;
          Alcotest.test_case "e11 ablations" `Quick test_e11;
          Alcotest.test_case "e12 crossover" `Slow test_e12;
          Alcotest.test_case "e13 omissions" `Slow test_e13;
          Alcotest.test_case "suite index" `Quick test_suite_index;
          Alcotest.test_case "reproduction certificate" `Slow
            test_verify_certificate;
        ] );
      ( "stats",
        [
          Alcotest.test_case "table" `Quick test_stats_table;
          Alcotest.test_case "summary" `Quick test_stats_summary;
        ] );
    ]
