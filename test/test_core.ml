open Kernel
open Helpers

let c31 = config ~n:3 ~t:1
let c52 = config ~n:5 ~t:2
let c72 = config ~n:7 ~t:2
let c73 = config ~n:7 ~t:3

(* ------------------------------------------------------------------ *)
(* A_{t+2}: fast decision and values                                   *)

let test_at2_quiet () =
  List.iter
    (fun cfg ->
      let trace = run at2 cfg quiet_es in
      assert_consensus trace;
      check_int "global decision at t+2" (Config.t cfg + 2) (global_round trace);
      check_int "decides the minimum" 1 (decided_value trace))
    [ c31; c52; c73 ]

let test_at2_chain () =
  let trace = run at2 c52 (Workload.Cascade.chain c52) in
  assert_consensus trace;
  check_int "t+2 under the chain" 4 (global_round trace);
  check_int "chained value survives" 1 (decided_value trace)

let test_at2_silent_crash_value () =
  let s = Workload.Cascade.silent_crashes c52 ~rounds:[ Round.first ] in
  let trace = run at2 c52 s in
  assert_consensus trace;
  check_int "t+2" 4 (global_round trace);
  check_int "p1's value died with it" 2 (decided_value trace)

let test_at2_never_early =
  qtest ~count:80 "no synchronous run decides before t+2" QCheck.int
    (fun seed ->
      let rng = Rng.create ~seed in
      let s = Workload.Random_runs.synchronous_with_delays rng c52 () in
      let trace = run at2 c52 s in
      Sim.Props.check trace = []
      &&
      match Sim.Trace.first_decision_round trace with
      | Some r -> Round.to_int r = 4
      | None -> false)

let test_at2_es_safety =
  qtest ~count:60 "safe and live on random ES runs"
    QCheck.(pair int (int_range 2 6))
    (fun (seed, gst) ->
      let rng = Rng.create ~seed in
      let s = Workload.Random_runs.eventually_synchronous rng c52 ~gst () in
      Sim.Props.check (run at2 c52 s) = [])

let test_at2_survives_witness () =
  List.iter
    (fun cfg ->
      let report = Mc.Attack.run_witness at2 cfg in
      check_bool "no violation" true (report.Mc.Attack.violations = []);
      assert_consensus report.Mc.Attack.trace)
    [ c31; c52; c73 ]

(* Every serial synchronous run of A(t+2) at (5,2) — under the full
   receiver-subset adversary, all 2^4 subsets per victim — decides at
   exactly t+2 and respects uniform consensus. *)
let test_at2_exhaustive_52 () =
  let r =
    Mc.Exhaustive.sweep ~policy:Mc.Serial.All_subsets ~algo:at2 ~config:c52
      ~proposals:(Sim.Runner.distinct_proposals c52)
      ()
  in
  check_bool "no violations" true (r.Mc.Exhaustive.violations = []);
  check_int "min = t+2" 4 r.Mc.Exhaustive.min_decision;
  check_int "max = t+2" 4 r.Mc.Exhaustive.max_decision;
  check_bool "tens of thousands of runs" true (r.Mc.Exhaustive.runs > 10_000)

let test_at2_survives_solo_split () =
  let report = Mc.Attack.run_solo_split at2 c52 in
  check_bool "no violation" true (report.Mc.Attack.violations = []);
  assert_consensus report.Mc.Attack.trace

(* ------------------------------------------------------------------ *)
(* Phase-2 internals: elimination (Lemma 6) and |Halt|>t (Lemma 13),   *)
(* observed by running Phase 1 alone through the engine.               *)

module Phase1_probe = struct
  type msg = Baselines.Ws_flood.payload
  type state = { config : Config.t; me : Pid.t; flood : Baselines.Ws_flood.t }

  let name = "phase1-probe"
  let model = Sim.Model.Es
  let symmetric = false

  let init config me v = { config; me; flood = Baselines.Ws_flood.init v }
  let on_send st _ = Baselines.Ws_flood.payload st.flood

  let on_receive st round inbox =
    if Round.to_int round > Config.t st.config + 1 then st
    else
      let current =
        List.filter (fun e -> Sim.Envelope.is_current e ~round) inbox
      in
      {
        st with
        flood =
          Baselines.Ws_flood.compute ~n:(Config.n st.config) ~me:st.me
            st.flood current;
      }

  let decision _ = None
  let halted _ = false
  let wire_size = Baselines.Ws_flood.payload_bytes

  let pp_msg = Baselines.Ws_flood.pp_payload
  let pp_state ppf st = Baselines.Ws_flood.pp ppf st.flood
end

module P1 = Sim.Engine.Make (Phase1_probe)

(* Run Phase 1 (t+1 rounds) under a schedule and return each survivor's
   (est, |Halt| > t) — the nE each process would send at round t+2. *)
let phase1_new_estimates cfg schedule =
  let rec steps sys k =
    if k > Config.t cfg + 1 then sys
    else
      steps (P1.step sys (Sim.Schedule.plan_at schedule (Round.of_int k))) (k + 1)
  in
  let sys =
    steps (P1.start cfg ~proposals:(Sim.Runner.distinct_proposals cfg)) 1
  in
  List.filter_map
    (fun p ->
      Option.map
        (fun st ->
          let flood = st.Phase1_probe.flood in
          if Baselines.Ws_flood.detects_false_suspicion flood ~config:cfg then
            `Bot
          else `Est (Value.to_int flood.Baselines.Ws_flood.est))
        (P1.state_of sys p))
    (Config.processes cfg)

let distinct_estimates n_es =
  List.sort_uniq compare
    (List.filter_map (function `Est v -> Some v | `Bot -> None) n_es)

let test_elimination_lemma6 =
  qtest ~count:120 "at most one non-bot new estimate (Lemma 6)"
    QCheck.(pair int (int_range 1 6))
    (fun (seed, gst) ->
      let rng = Rng.create ~seed in
      let s =
        if gst = 1 then Workload.Random_runs.synchronous_with_delays rng c52 ()
        else Workload.Random_runs.eventually_synchronous rng c52 ~gst ()
      in
      List.length (distinct_estimates (phase1_new_estimates c52 s)) <= 1)

let test_no_bot_in_sync_lemma13 =
  qtest ~count:120 "no bot new estimate in synchronous runs (Lemma 13)"
    QCheck.int
    (fun seed ->
      let rng = Rng.create ~seed in
      let s = Workload.Random_runs.synchronous_with_delays rng c52 () in
      List.for_all (function `Bot -> false | `Est _ -> true)
        (phase1_new_estimates c52 s))

let test_bot_under_false_suspicion () =
  (* The solo split makes p1 accumulate |Halt| > t. *)
  let n_es = phase1_new_estimates c52 (Mc.Attack.solo_split_schedule c52) in
  check_bool "some process sends bot" true
    (List.exists (function `Bot -> true | `Est _ -> false) n_es)

(* ------------------------------------------------------------------ *)
(* Fig. 4 optimization                                                 *)

let test_opt_failure_free () =
  List.iter
    (fun cfg ->
      let trace = run at2_opt cfg quiet_es in
      assert_consensus trace;
      check_int "round 2" 2 (global_round trace);
      check_int "minimum" 1 (decided_value trace))
    [ c31; c52; c73 ]

let test_opt_with_crashes =
  qtest ~count:100 "still within t+2 with crashes" QCheck.int (fun seed ->
      let rng = Rng.create ~seed in
      let s = Workload.Random_runs.synchronous_with_delays rng c52 () in
      let trace = run at2_opt c52 s in
      Sim.Props.check trace = [] && global_round trace <= 4)

let test_opt_es_safety =
  qtest ~count:60 "optimization safe on ES runs"
    QCheck.(pair int (int_range 2 5))
    (fun (seed, gst) ->
      let rng = Rng.create ~seed in
      let s = Workload.Random_runs.eventually_synchronous rng c52 ~gst () in
      Sim.Props.check (run at2_opt c52 s) = [])

(* ------------------------------------------------------------------ *)
(* Slow C: fast decision is independent of C                           *)

let test_slow_c_sync () =
  let trace = run at2_slow c52 (Workload.Cascade.chain c52) in
  assert_consensus trace;
  check_int "still t+2" 4 (global_round trace)

let test_slow_c_async_still_terminates () =
  (* The 40-round pad pushes decisions far past the engine's default bound. *)
  let trace =
    Sim.Runner.run ~max_rounds:150 at2_slow c31
      ~proposals:(Sim.Runner.distinct_proposals c31)
      (Mc.Attack.solo_split_schedule c31)
  in
  assert_consensus trace

(* ------------------------------------------------------------------ *)
(* A_<>S                                                               *)

let test_a_ds_sync () =
  let trace = run a_ds c52 quiet_es in
  assert_consensus trace;
  check_int "t+2" 4 (global_round trace)

let test_a_ds_es =
  qtest ~count:60 "A<>S safe and live on ES runs"
    QCheck.(pair int (int_range 2 6))
    (fun (seed, gst) ->
      let rng = Rng.create ~seed in
      let s = Workload.Random_runs.eventually_synchronous rng c52 ~gst () in
      Sim.Props.check (run a_ds c52 s) = [])

(* ------------------------------------------------------------------ *)
(* A_{f+2}                                                             *)

let test_af2_quiet () =
  let trace = run af2 c72 quiet_es in
  assert_consensus trace;
  check_int "failure-free is 2 rounds" 2 (global_round trace);
  check_int "minimum" 1 (decided_value trace)

let test_af2_regime () =
  match run af2 c52 quiet_es with
  | (_ : Sim.Trace.t) -> Alcotest.fail "t >= n/3 must be rejected"
  | exception Invalid_argument _ -> ()

let test_af2_early_decision =
  qtest ~count:80 "decides by f+2 in synchronous runs"
    QCheck.(pair int (int_range 0 2))
    (fun (seed, f) ->
      let rng = Rng.create ~seed in
      let s = Workload.Random_runs.synchronous rng c72 ~max_crashes:f () in
      let trace = run af2 c72 s in
      Sim.Props.check trace = []
      && global_round trace <= Sim.Schedule.crash_count s + 2)

let test_af2_eventual_bound () =
  List.iter
    (fun (k, f) ->
      let s = Workload.Cascade.split_brain c72 ~k ~f in
      let trace = run af2 c72 s in
      assert_consensus trace;
      check_bool
        (Printf.sprintf "k=%d f=%d within k+f+2" k f)
        true
        (global_round trace <= k + f + 2);
      if k > 0 then
        check_bool "stalled through the asynchronous prefix" true
          (global_round trace > k))
    [ (0, 0); (0, 2); (2, 0); (2, 1); (3, 2); (5, 1) ]

let test_af2_es_safety =
  qtest ~count:60 "safe and live on ES runs"
    QCheck.(pair int (int_range 2 6))
    (fun (seed, gst) ->
      let rng = Rng.create ~seed in
      let s = Workload.Random_runs.eventually_synchronous rng c72 ~gst () in
      Sim.Props.check (run af2 c72 s) = [])

let () =
  Alcotest.run "core"
    [
      ( "at_plus_2",
        [
          Alcotest.test_case "quiet = t+2" `Quick test_at2_quiet;
          Alcotest.test_case "chain = t+2" `Quick test_at2_chain;
          Alcotest.test_case "silent crash value" `Quick test_at2_silent_crash_value;
          Alcotest.test_case "survives the witness" `Quick test_at2_survives_witness;
          Alcotest.test_case "survives solo split" `Quick test_at2_survives_solo_split;
          Alcotest.test_case "exhaustive at (5,2)" `Slow test_at2_exhaustive_52;
          test_at2_never_early;
          test_at2_es_safety;
        ] );
      ( "lemmas",
        [
          test_elimination_lemma6;
          test_no_bot_in_sync_lemma13;
          Alcotest.test_case "bot under false suspicion" `Quick
            test_bot_under_false_suspicion;
        ] );
      ( "optimization",
        [
          Alcotest.test_case "failure-free round 2" `Quick test_opt_failure_free;
          test_opt_with_crashes;
          test_opt_es_safety;
        ] );
      ( "slow_c",
        [
          Alcotest.test_case "sync t+2" `Quick test_slow_c_sync;
          Alcotest.test_case "async terminates" `Quick
            test_slow_c_async_still_terminates;
        ] );
      ( "a_diamond_s",
        [ Alcotest.test_case "sync t+2" `Quick test_a_ds_sync; test_a_ds_es ] );
      ( "af_plus_2",
        [
          Alcotest.test_case "quiet" `Quick test_af2_quiet;
          Alcotest.test_case "regime guard" `Quick test_af2_regime;
          Alcotest.test_case "eventual bound" `Quick test_af2_eventual_bound;
          test_af2_early_decision;
          test_af2_es_safety;
        ] );
    ]
