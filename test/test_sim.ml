open Kernel
open Helpers

(* ------------------------------------------------------------------ *)
(* Envelope / Inbox                                                    *)

let env src sent payload =
  Sim.Envelope.make ~src:(Pid.of_int src) ~sent:(Round.of_int sent) payload

let test_envelope () =
  let e = env 2 3 "m" in
  check_bool "current" true (Sim.Envelope.is_current e ~round:(Round.of_int 3));
  check_bool "late" false (Sim.Envelope.is_current e ~round:(Round.of_int 4));
  check_bool "compare by src" true
    (Sim.Envelope.compare_src (env 1 3 "a") (env 2 3 "b") < 0)

let test_inbox () =
  let round = Round.of_int 2 in
  let inbox = [ env 3 2 "c"; env 1 2 "a"; env 2 1 "late" ] in
  check_int "current count" 2 (Sim.Inbox.count_current inbox ~round);
  check_int "late count" 1 (List.length (Sim.Inbox.late inbox ~round));
  check_bool "senders" true
    (Pid.Set.equal (Sim.Inbox.senders inbox ~round) (Pid.Set.of_ints [ 1; 3 ]));
  check_bool "suspected" true
    (Pid.Set.equal
       (Sim.Inbox.suspected ~n:4 inbox ~round)
       (Pid.Set.of_ints [ 2; 4 ]));
  check_bool "from present" true
    (Sim.Inbox.from inbox ~src:(Pid.of_int 1) ~round = Some "a");
  check_bool "from late is ignored" true
    (Sim.Inbox.from inbox ~src:(Pid.of_int 2) ~round = None)

(* ------------------------------------------------------------------ *)
(* Schedule validation                                                 *)

let plan ?(crashes = []) ?(lost = []) ?(delayed = []) () =
  {
    Sim.Schedule.crashes = List.map Pid.of_int crashes;
    lost = List.map (fun (a, b) -> (Pid.of_int a, Pid.of_int b)) lost;
    delayed =
      List.map
        (fun (a, b, r) -> (Pid.of_int a, Pid.of_int b, Round.of_int r))
        delayed;
  }

let es ~gst plans = Sim.Schedule.make ~model:Sim.Model.Es ~gst:(Round.of_int gst) plans
let scs plans = Sim.Schedule.make ~model:Sim.Model.Scs ~gst:Round.first plans

let c52 = config ~n:5 ~t:2

let test_schedule_valid_cases () =
  assert_valid c52 quiet_es;
  (* crash-round losses are always legal *)
  assert_valid c52 (es ~gst:1 [ plan ~crashes:[ 1 ] ~lost:[ (1, 3); (1, 4) ] () ]);
  (* crash-round delays are legal even in synchronous runs (footnote 5) *)
  assert_valid c52 (es ~gst:1 [ plan ~crashes:[ 1 ] ~delayed:[ (1, 3, 4) ] () ]);
  (* pre-gst delays from correct senders are legal *)
  assert_valid c52 (es ~gst:3 [ plan ~delayed:[ (1, 3, 5) ] () ]);
  (* SCS with crash-round loss *)
  assert_valid c52 (scs [ plan ~crashes:[ 2 ] ~lost:[ (2, 1) ] () ]);
  (* entries towards already-crashed receivers are tolerated *)
  assert_valid c52
    (es ~gst:1
       [
         plan ~crashes:[ 1 ] ();
         plan ~crashes:[ 2 ] ~lost:[ (2, 1); (2, 3) ] ();
       ])

let test_schedule_invalid_cases () =
  (* loss from a sender that does not crash, at/after gst *)
  assert_invalid c52 (es ~gst:1 [ plan ~lost:[ (1, 2) ] () ]);
  (* delay after gst from a non-crashing sender *)
  assert_invalid c52 (es ~gst:1 [ plan ~delayed:[ (1, 2, 3) ] () ]);
  (* SCS never delays *)
  assert_invalid c52 (scs [ plan ~crashes:[ 1 ] ~delayed:[ (1, 2, 3) ] () ]);
  (* a process always receives its own message *)
  assert_invalid c52 (es ~gst:1 [ plan ~crashes:[ 1 ] ~lost:[ (1, 1) ] () ]);
  (* double crash *)
  assert_invalid c52 (es ~gst:1 [ plan ~crashes:[ 1 ] (); plan ~crashes:[ 1 ] () ]);
  (* too many crashes *)
  assert_invalid c52
    (es ~gst:1 [ plan ~crashes:[ 1; 2; 3 ] () ]);
  (* delays must go strictly forward *)
  assert_invalid c52 (es ~gst:4 [ plan ~delayed:[ (1, 2, 1) ] () ]);
  (* two fates for one message *)
  assert_invalid c52
    (es ~gst:1 [ plan ~crashes:[ 1 ] ~lost:[ (1, 2) ] ~delayed:[ (1, 2, 3) ] () ]);
  (* sender already crashed *)
  assert_invalid c52
    (es ~gst:1 [ plan ~crashes:[ 1 ] (); plan ~lost:[ (1, 2) ] () ]);
  (* t-resilience: p5 loses 3 current-round messages, keeps only 2 *)
  assert_invalid c52
    (es ~gst:5 [ plan ~delayed:[ (1, 5, 3); (2, 5, 3); (3, 5, 3) ] () ])

let test_schedule_queries () =
  let s =
    es ~gst:3
      [ plan ~delayed:[ (1, 2, 4) ] (); plan ~crashes:[ 4 ] (); plan () ]
  in
  check_int "horizon" 3 (Sim.Schedule.horizon s);
  check_bool "faulty" true
    (Pid.Set.equal (Sim.Schedule.faulty s) (Pid.Set.of_ints [ 4 ]));
  check_bool "crash_round" true
    (Sim.Schedule.crash_round s (Pid.of_int 4) = Some (Round.of_int 2));
  check_int "crash count" 1 (Sim.Schedule.crash_count s);
  check_int "crashes after r1" 1 (Sim.Schedule.crashes_after s Round.first);
  check_int "crashes after r2" 0
    (Sim.Schedule.crashes_after s (Round.of_int 2));
  check_bool "fate delayed" true
    (Sim.Schedule.fate s ~src:(Pid.of_int 1) ~dst:(Pid.of_int 2)
       ~round:Round.first
    = Sim.Schedule.Delayed_until (Round.of_int 4));
  check_bool "fate default" true
    (Sim.Schedule.fate s ~src:(Pid.of_int 1) ~dst:(Pid.of_int 3)
       ~round:Round.first
    = Sim.Schedule.Same_round);
  check_int "effective gst" 2 (Round.to_int (Sim.Schedule.effective_gst s));
  check_bool "not synchronous" false (Sim.Schedule.synchronous s);
  check_bool "synchronous after 1" true
    (Sim.Schedule.synchronous_after s Round.first)

let test_schedule_effective_gst_sync () =
  (* Crash-round tampering does not make a run asynchronous. *)
  let s = es ~gst:6 [ plan ~crashes:[ 1 ] ~lost:[ (1, 2) ] ~delayed:[ (1, 3, 9) ] () ] in
  check_int "effective gst" 1 (Round.to_int (Sim.Schedule.effective_gst s));
  check_bool "synchronous" true (Sim.Schedule.synchronous s);
  check_bool "failure-free" false (Sim.Schedule.failure_free_synchronous s);
  check_bool "quiet is failure-free" true
    (Sim.Schedule.failure_free_synchronous quiet_es)

(* ------------------------------------------------------------------ *)
(* Omission faults (DESIGN §13)                                        *)

let assert_invalid_msg cfg schedule fragment =
  match Sim.Schedule.validate cfg schedule with
  | Ok () -> Alcotest.fail "schedule should be invalid"
  | Error e ->
      if not (contains e fragment) then
        Alcotest.fail
          (Printf.sprintf "error %S does not mention %S" e fragment)

let es_omit ?budget ~omitters ~gst plans =
  Sim.Schedule.make
    ~omitters:(List.map (fun (p, c) -> (Pid.of_int p, c)) omitters)
    ?budget ~model:Sim.Model.Es ~gst:(Round.of_int gst) plans

let test_schedule_omitters_valid () =
  (* a send-omitter's losses are legal in any round, even at/after gst *)
  assert_valid c52
    (es_omit ~omitters:[ (1, Sim.Model.Send_omit) ] ~gst:1
       [ plan ~lost:[ (1, 3); (1, 4) ] (); plan ~lost:[ (1, 2) ] () ]);
  (* t-resilience is not demanded of a receive-omitter: it may be starved
     below the quorum without leaving the model *)
  assert_valid c52
    (es_omit ~omitters:[ (5, Sim.Model.Recv_omit) ] ~gst:1
       [ plan ~lost:[ (1, 5); (2, 5); (3, 5); (4, 5) ] () ]);
  (* SCS accepts omission losses too: the drop is at the faulty process's
     doorstep, not the network's *)
  assert_valid c52
    (Sim.Schedule.make
       ~omitters:[ (Pid.of_int 2, Sim.Model.Send_omit) ]
       ~model:Sim.Model.Scs ~gst:Round.first
       [ plan ~lost:[ (2, 4) ] () ]);
  (* an explicit budget licenses a crash and an omitter side by side *)
  assert_valid c52
    (es_omit
       ~omitters:[ (2, Sim.Model.Send_omit) ]
       ~budget:(Sim.Model.budget ~t_crash:1 ~t_omit:1)
       ~gst:1
       [ plan ~crashes:[ 1 ] ~lost:[ (1, 3); (2, 4) ] () ])

let test_schedule_omitters_invalid () =
  (* budget soundness: t_crash + t_omit <= t, message pinned *)
  assert_invalid_msg c52
    (es_omit ~omitters:[]
       ~budget:(Sim.Model.budget ~t_crash:2 ~t_omit:1)
       ~gst:1 [])
    "budget 2+1 exceeds t = 2 (soundness: t_crash + t_omit <= t)";
  (* omitter declarations are pid-checked like every other entry *)
  assert_invalid_msg c52
    (es_omit ~omitters:[ (9, Sim.Model.Send_omit) ] ~gst:1 [])
    "send-omitter declaration references p9, outside p1..p5";
  (* more omitters than the declared budget allows *)
  assert_invalid_msg c52
    (es_omit
       ~omitters:[ (1, Sim.Model.Send_omit); (2, Sim.Model.Recv_omit) ]
       ~budget:(Sim.Model.budget ~t_crash:0 ~t_omit:1)
       ~gst:1 [])
    "2 omitters but the budget allows t_omit = 1";
  (* more crashes than the declared budget allows *)
  assert_invalid_msg c52
    (es_omit
       ~omitters:[ (1, Sim.Model.Send_omit) ]
       ~budget:(Sim.Model.budget ~t_crash:0 ~t_omit:1)
       ~gst:1
       [ plan ~crashes:[ 2 ] () ])
    "1 crashes but the budget allows t_crash = 0";
  (* without a budget the distinct faulty set must still fit t *)
  assert_invalid_msg c52
    (es_omit
       ~omitters:[ (3, Sim.Model.Recv_omit) ]
       ~gst:1
       [ plan ~crashes:[ 1; 2 ] () ])
    "3 distinct faulty processes (crashed or omitting) but t = 2";
  (* an unjustified loss still names both ends and the omitter rule *)
  assert_invalid_msg c52
    (es ~gst:1 [ plan ~lost:[ (1, 2) ] () ])
    "neither end is a declared omitter";
  (* a recv-omitter declaration does not license the culprit's outgoing
     losses (nor a send-omitter its incoming ones) *)
  assert_invalid_msg c52
    (es_omit ~omitters:[ (1, Sim.Model.Recv_omit) ] ~gst:1
       [ plan ~lost:[ (1, 2) ] () ])
    "neither end is a declared omitter"

let test_schedule_validate_message_context () =
  (* Other validator refusals carry round/pid/src/dst context too. *)
  assert_invalid_msg c52
    (es ~gst:1 [ plan ~lost:[ (1, 7) ] () ])
    "round 1: lost references p7, outside p1..p5";
  assert_invalid_msg c52
    (es ~gst:1 [ plan ~crashes:[ 1 ] (); plan ~crashes:[ 1 ] () ])
    "p1 crashes twice (second time in round 2)";
  assert_invalid_msg c52
    (es ~gst:1
       [ plan ~crashes:[ 1 ] ~lost:[ (1, 2) ] ~delayed:[ (1, 2, 3) ] () ])
    "round 1: two fates for the message p1 -> p2";
  assert_invalid_msg c52
    (es ~gst:5 [ plan ~delayed:[ (1, 5, 3); (2, 5, 3); (3, 5, 3) ] () ])
    "round 1: p5 receives only 2 current-round messages, t-resilience \
     requires 3"

let test_schedule_omission_queries () =
  let s =
    es_omit
      ~omitters:[ (1, Sim.Model.Send_omit); (4, Sim.Model.Recv_omit) ]
      ~budget:(Sim.Model.budget ~t_crash:0 ~t_omit:2)
      ~gst:1
      [ plan ~lost:[ (1, 2); (3, 4) ] () ]
  in
  assert_valid c52 s;
  check_int "omit count" 2 (Sim.Schedule.omit_count s);
  check_bool "class of p1" true
    (Sim.Schedule.omitter_class s (Pid.of_int 1) = Some Sim.Model.Send_omit);
  check_bool "class of p2" true
    (Sim.Schedule.omitter_class s (Pid.of_int 2) = None);
  check_bool "send omitters" true
    (Pid.Set.equal (Sim.Schedule.send_omitters s) (Pid.Set.of_ints [ 1 ]));
  check_bool "recv omitters" true
    (Pid.Set.equal (Sim.Schedule.recv_omitters s) (Pid.Set.of_ints [ 4 ]));
  check_bool "budget carried" true
    (Sim.Schedule.budget s = Some (Sim.Model.budget ~t_crash:0 ~t_omit:2));
  check_bool "send side justified" true
    (Sim.Schedule.omission_justified s ~src:(Pid.of_int 1) ~dst:(Pid.of_int 3));
  check_bool "recv side justified" true
    (Sim.Schedule.omission_justified s ~src:(Pid.of_int 2) ~dst:(Pid.of_int 4));
  check_bool "correct pair not justified" false
    (Sim.Schedule.omission_justified s ~src:(Pid.of_int 2) ~dst:(Pid.of_int 3));
  (* crashes are faulty; omitters are reported separately *)
  check_bool "faulty excludes omitters" true
    (Pid.Set.is_empty (Sim.Schedule.faulty s));
  (* omission losses do not break synchrony: effective gst stays 1 *)
  check_int "effective gst" 1 (Round.to_int (Sim.Schedule.effective_gst s));
  check_bool "synchronous" true (Sim.Schedule.synchronous s);
  check_bool "but not failure-free" false
    (Sim.Schedule.failure_free_synchronous s)

(* ------------------------------------------------------------------ *)
(* Engine, via a transparent probe algorithm                           *)

(* Echoes the round number; records everything it receives; decides its own
   pid value at round [decide_at]; halts one round later. *)
module Probe = struct
  type msg = Ping of int

  type state = {
    me : Pid.t;
    received : (int * (Pid.t * int) list) list;  (* round -> (src, sent) *)
    decide_at : int;
    decision : Value.t option;
    halted : bool;
  }

  let name = "probe"
  let model = Sim.Model.Es
  let symmetric = false

  let init _config me v =
    {
      me;
      received = [];
      decide_at = 3 + (Value.to_int v * 0);
      decision = None;
      halted = false;
    }

  let on_send _st round = Ping (Round.to_int round)

  let on_receive st round inbox =
    let entries =
      List.map
        (fun (e : msg Sim.Envelope.t) -> (e.src, Round.to_int e.sent))
        inbox
    in
    let st =
      { st with received = (Round.to_int round, entries) :: st.received }
    in
    if st.decision <> None then { st with halted = true }
    else if Round.to_int round >= st.decide_at then
      { st with decision = Some (Value.of_int (Pid.to_int st.me)) }
    else st

  let decision st = st.decision
  let halted st = st.halted
  let wire_size (Ping _) = 4

  let pp_msg ppf (Ping k) = Format.fprintf ppf "ping%d" k
  let pp_state ppf st = Format.fprintf ppf "probe(%a)" Pid.pp st.me
end

module E = Sim.Engine.Make (Probe)

let received_at sys pid round =
  match E.state_of sys (Pid.of_int pid) with
  | None -> []
  | Some st -> (
      match List.assoc_opt round st.Probe.received with
      | Some entries -> entries
      | None -> [])

let start_probe cfg =
  E.start cfg ~proposals:(Sim.Runner.distinct_proposals cfg)

let test_engine_full_delivery () =
  let cfg = config ~n:4 ~t:1 in
  let sys = E.step (start_probe cfg) Sim.Schedule.empty_plan in
  List.iter
    (fun p ->
      check_int
        (Printf.sprintf "p%d receives all in round 1" p)
        4
        (List.length (received_at sys p 1)))
    [ 1; 2; 3; 4 ]

let test_engine_crash_semantics () =
  let cfg = config ~n:4 ~t:1 in
  (* p1 crashes in round 1; only p2 hears it. *)
  let sys =
    E.step (start_probe cfg)
      (plan ~crashes:[ 1 ] ~lost:[ (1, 3); (1, 4) ] ())
  in
  check_int "victim does not complete the round" 0
    (List.length (received_at sys 1 1));
  check_bool "victim recorded as crashed" true
    (E.crashed sys = [ (Pid.of_int 1, Round.first) ]);
  check_int "p2 hears the victim" 4 (List.length (received_at sys 2 1));
  check_int "p3 misses the victim" 3 (List.length (received_at sys 3 1));
  (* Next round: the victim is silent. *)
  let sys = E.step sys Sim.Schedule.empty_plan in
  check_int "round 2 without victim" 3 (List.length (received_at sys 2 2));
  check_bool "alive" true
    (List.map Pid.to_int (E.alive sys) = [ 2; 3; 4 ])

let test_engine_delay_semantics () =
  let cfg = config ~n:4 ~t:1 in
  let sys = E.step (start_probe cfg) (plan ~delayed:[ (1, 3, 3) ] ()) in
  check_int "p3 misses the delayed message" 3
    (List.length (received_at sys 3 1));
  let sys = E.step sys Sim.Schedule.empty_plan in
  check_int "nothing extra in round 2" 4 (List.length (received_at sys 3 2));
  let sys = E.step sys Sim.Schedule.empty_plan in
  let entries = received_at sys 3 3 in
  check_int "delayed message arrives in round 3" 5 (List.length entries);
  check_bool "it is the round-1 message from p1" true
    (List.exists (fun (src, sent) -> Pid.equal src (Pid.of_int 1) && sent = 1) entries)

let test_engine_own_message () =
  let cfg = config ~n:3 ~t:1 in
  let sys = E.step (start_probe cfg) (plan ~crashes:[ 2 ] ~lost:[ (2, 1); (2, 3) ] ()) in
  List.iter
    (fun p ->
      check_bool
        (Printf.sprintf "p%d always receives itself" p)
        true
        (List.exists
           (fun (src, _) -> Pid.equal src (Pid.of_int p))
           (received_at sys p 1)))
    [ 1; 3 ]

let test_engine_halt_stops_sending () =
  let cfg = config ~n:3 ~t:1 in
  let trace =
    E.run cfg ~proposals:(Sim.Runner.distinct_proposals cfg) quiet_es
  in
  (* decide at 3, halt at 4: engine stops after round 4 *)
  check_int "rounds executed" 4 trace.Sim.Trace.rounds_executed;
  check_bool "all halted" true trace.Sim.Trace.all_halted;
  check_int "global decision" 3 (global_round trace);
  check_int "everyone decides" 3 (List.length trace.Sim.Trace.decisions)

let test_engine_records () =
  let cfg = config ~n:3 ~t:1 in
  let trace =
    E.run ~record:true cfg
      ~proposals:(Sim.Runner.distinct_proposals cfg)
      (es ~gst:1 [ plan ~crashes:[ 3 ] ~lost:[ (3, 1); (3, 2) ] () ])
  in
  check_int "one record per round" trace.Sim.Trace.rounds_executed
    (List.length trace.Sim.Trace.records);
  let r1 = List.hd trace.Sim.Trace.records in
  check_bool "crash recorded" true (r1.Sim.Trace.crashed_now = [ Pid.of_int 3 ]);
  check_int "senders in round 1" 3 (List.length r1.Sim.Trace.senders)

(* Decision stability is enforced. *)
module Flipper = struct
  type msg = unit
  type state = { round : int }

  let name = "flipper"
  let model = Sim.Model.Es
  let symmetric = false
  let init _ _ _ = { round = 0 }
  let on_send _ _ = ()
  let on_receive _ round _ = { round = Round.to_int round }
  let decision st = if st.round = 0 then None else Some (Value.of_int st.round)
  let halted _ = false
  let wire_size () = 0

  let pp_msg ppf () = Format.fprintf ppf "()"
  let pp_state ppf _ = Format.fprintf ppf "flipper"
end

let test_engine_decision_stability () =
  let module F = Sim.Engine.Make (Flipper) in
  let cfg = config ~n:3 ~t:1 in
  match
    F.run ~max_rounds:5 cfg
      ~proposals:(Sim.Runner.distinct_proposals cfg)
      quiet_es
  with
  | (_ : Sim.Trace.t) -> Alcotest.fail "expected Step_error on decision change"
  | exception Sim.Engine.Step_error err ->
      check_bool "faulting algorithm" true
        (err.Sim.Engine.algorithm = "flipper");
      check_int "faulting round" 2 (Round.to_int err.Sim.Engine.round);
      check_bool "reason names the decision change" true
        (contains err.Sim.Engine.reason "changed its decision");
      (* the printed error pins algorithm, pid and round context *)
      check_bool "printable with full context" true
        (contains
           (Format.asprintf "%a" Sim.Engine.pp_step_error err)
           "flipper: p1 failed in round 2: changed its decision")

(* ------------------------------------------------------------------ *)
(* Props                                                               *)

let test_props_on_sound_run () =
  let trace = run floodset (config ~n:4 ~t:1) quiet_es in
  assert_consensus trace;
  check_bool "decided_by t+1" true
    (Sim.Props.decided_by trace (Round.of_int 2));
  check_bool "not decided_by 1" false
    (Sim.Props.decided_by trace Round.first)

let test_props_agreement_violation () =
  let cfg = config ~n:5 ~t:2 in
  let trace =
    Sim.Runner.run floodset cfg
      ~proposals:(Sim.Runner.distinct_proposals cfg)
      (Mc.Attack.solo_split_schedule cfg)
  in
  check_bool "agreement violated" true
    (List.exists
       (function Sim.Props.Agreement _ -> true | _ -> false)
       (Sim.Props.check trace));
  match Sim.Props.assert_ok trace with
  | () -> Alcotest.fail "assert_ok should raise"
  | exception Failure _ -> ()

let test_props_unsettled () =
  (* Truncate CT before its decision round: correct processes undecided. *)
  let cfg = config ~n:3 ~t:1 in
  let trace = run ~max_rounds:2 ct cfg quiet_es in
  check_bool "unsettled reported" true
    (List.exists
       (function Sim.Props.Unsettled _ -> true | _ -> false)
       (Sim.Props.check trace))

(* ------------------------------------------------------------------ *)
(* Engine-vs-model invariants: an observer that never decides records   *)
(* every delivery; random valid schedules must produce runs satisfying  *)
(* the clauses of Section 1.2.                                          *)

module Observer = struct
  type msg = Mark

  type state = {
    me : Pid.t;
    log : (int * (Pid.t * int) list) list;  (* round -> (src, sent_round) *)
  }

  let name = "observer"
  let model = Sim.Model.Es
  let symmetric = false
  let init _config me _v = { me; log = [] }
  let on_send _st _round = Mark

  let on_receive st round inbox =
    let entries =
      List.map
        (fun (e : msg Sim.Envelope.t) -> (e.src, Round.to_int e.sent))
        inbox
    in
    { st with log = (Round.to_int round, entries) :: st.log }

  let decision _ = None
  let halted _ = false
  let wire_size Mark = 0
  let pp_msg ppf Mark = Format.pp_print_string ppf "mark"
  let pp_state ppf st = Format.fprintf ppf "observer(%a)" Pid.pp st.me
end

module O = Sim.Engine.Make (Observer)

let observe cfg schedule ~rounds =
  let rec steps sys k =
    if k > rounds then sys
    else steps (O.step sys (Sim.Schedule.plan_at schedule (Round.of_int k))) (k + 1)
  in
  steps (O.start cfg ~proposals:(Sim.Runner.distinct_proposals cfg)) 1

let model_invariants cfg schedule ~rounds =
  let sys = observe cfg schedule ~rounds in
  let n = Config.n cfg in
  let quorum = Config.quorum cfg in
  let crashed_by p k =
    match Sim.Schedule.crash_round schedule p with
    | Some r -> Round.to_int r <= k
    | None -> false
  in
  List.for_all
    (fun p ->
      match O.state_of sys p with
      | None -> true (* crashed *)
      | Some st ->
          List.for_all
            (fun (k, entries) ->
              let current =
                List.filter (fun (_, sent) -> sent = k) entries
              in
              (* t-resilience: at least n - t current-round messages. *)
              List.length current >= quorum
              (* self-delivery, always in the same round *)
              && List.exists (fun (src, _) -> Pid.equal src p) current
              (* no message from a process that crashed in an earlier round *)
              && List.for_all
                   (fun (src, sent) -> not (crashed_by src (sent - 1)))
                   entries
              (* every delivery matches the schedule's fate for it *)
              && List.for_all
                   (fun (src, sent) ->
                     Pid.equal src p
                     ||
                     match
                       Sim.Schedule.fate schedule ~src ~dst:p
                         ~round:(Round.of_int sent)
                     with
                     | Sim.Schedule.Same_round -> sent = k
                     | Sim.Schedule.Delayed_until u -> Round.to_int u = k
                     | Sim.Schedule.Lost -> false)
                   entries)
            st.Observer.log)
    (Pid.all ~n)

let prop_engine_respects_model =
  qtest ~count:200 "engine deliveries satisfy the model clauses"
    QCheck.(pair int (int_range 1 6))
    (fun (seed, gst) ->
      let rng = Rng.create ~seed in
      let s =
        if gst = 1 then Workload.Random_runs.synchronous_with_delays rng c52 ()
        else Workload.Random_runs.eventually_synchronous rng c52 ~gst ()
      in
      model_invariants c52 s ~rounds:(Sim.Schedule.horizon s + 3))

let prop_engine_deterministic =
  qtest ~count:80 "identical inputs give identical traces" QCheck.int
    (fun seed ->
      let rng = Rng.create ~seed in
      let s = Workload.Random_runs.eventually_synchronous rng c52 ~gst:3 () in
      let run_once () =
        let tr = run floodset_ws c52 s in
        ( Sim.Trace.decided_values tr,
          Sim.Trace.global_decision_round tr,
          tr.Sim.Trace.rounds_executed )
      in
      run_once () = run_once ())

(* The engine now has four execution paths: the recording batch engine
   ([~record:true]), the allocation-free fast path (default [run], which
   delegates to the incremental core and its flat tail), the explicit
   resumable checker ([Incremental.start] / [finish]), and the mutable
   snapshot/restore arena the model checker's DFS drives. All four must
   replay the same run exactly — decisions, crash records, round count and
   halting flag — on arbitrary ES schedules, which exercise crashes,
   losses and delayed deliveries. *)
let engines_agree cfg s (Sim.Algorithm.Packed (module A)) =
  let proposals = Sim.Runner.distinct_proposals cfg in
  let module F = Sim.Engine.Make (A) in
  let key (t : Sim.Trace.t) =
    ( t.Sim.Trace.decisions,
      t.Sim.Trace.crashes,
      t.Sim.Trace.rounds_executed,
      t.Sim.Trace.all_halted )
  in
  let t_rec = F.run ~record:true cfg ~proposals s in
  let t_fast = F.run cfg ~proposals s in
  let t_inc =
    F.Incremental.finish ~schedule:s (F.Incremental.start cfg ~proposals)
  in
  let t_arena = F.Arena.finish ~schedule:s (F.Arena.create cfg ~proposals) in
  key t_rec = key t_fast && key t_fast = key t_inc && key t_inc = key t_arena

let prop_incremental_matches_run =
  qtest ~count:60 "incremental core equals run" QCheck.int (fun seed ->
      let rng = Rng.create ~seed in
      let cfg = config ~n:4 ~t:2 in
      let s = Workload.Random_runs.eventually_synchronous rng cfg ~gst:4 () in
      engines_agree cfg s floodset && engines_agree cfg s floodset_ws)

let prop_cross_engine_equivalence =
  qtest ~count:40 "recording, fast and incremental engines agree"
    QCheck.(pair int (int_range 1 5))
    (fun (seed, gst) ->
      let rng = Rng.create ~seed in
      let s =
        if gst = 1 then Workload.Random_runs.synchronous_with_delays rng c52 ()
        else Workload.Random_runs.eventually_synchronous rng c52 ~gst ()
      in
      List.for_all
        (engines_agree c52 s)
        [ floodset; floodset_ws; early_fs; at2; floodmin ])

(* Every registered algorithm, every fault menu: random SCS schedules with
   declared crash/send-omission/receive-omission/mixed faults, plus random
   ES schedules, must replay identically on all four engine paths. This is
   the contract the arena-backed sweeps lean on — the DFS re-executes
   exactly these schedule shapes branch by branch. *)
let prop_all_algorithms_all_menus =
  qtest ~count:40 "all engines agree for every algorithm and fault menu"
    QCheck.(pair int (int_range 0 4))
    (fun (seed, menu) ->
      let rng = Rng.create ~seed in
      (* n = 7, t = 2 satisfies every registered algorithm's resilience
         guard: indulgent entries need 2t < n, the A_{f+2} family 3t < n. *)
      let cfg = config ~n:7 ~t:2 in
      let s =
        match menu with
        | 0 -> Workload.Random_runs.with_omissions rng cfg
                 ~faults:Sim.Model.Crash_only ()
        | 1 -> Workload.Random_runs.with_omissions rng cfg
                 ~faults:Sim.Model.Send_omit_only ()
        | 2 -> Workload.Random_runs.with_omissions rng cfg
                 ~faults:Sim.Model.Recv_omit_only ()
        | 3 -> Workload.Random_runs.with_omissions rng cfg
                 ~faults:Sim.Model.Mixed ()
        | _ -> Workload.Random_runs.eventually_synchronous rng cfg ~gst:3 ()
      in
      List.for_all
        (fun (e : Expt.Registry.entry) -> engines_agree cfg s e.algo)
        Expt.Registry.all)

(* The arena's branch-point contract, the exact discipline the DFS relies
   on: snapshot anywhere, run any number of further rounds, restore — the
   rewound arena must be indistinguishable (same fingerprint, structural
   equality) from the moment of the save. *)
let prop_arena_snapshot_restore =
  qtest ~count:100 "snapshot, k steps, restore is a fingerprint no-op"
    QCheck.(triple int (int_range 0 4) (int_range 1 5))
    (fun (seed, before, after) ->
      let rng = Rng.create ~seed in
      let cfg = c52 in
      let n = Config.n cfg in
      let s = Workload.Random_runs.synchronous rng cfg () in
      List.for_all
        (fun (Sim.Algorithm.Packed (module A)) ->
          let module F = Sim.Engine.Make (A) in
          let arena =
            F.Arena.create cfg ~proposals:(Sim.Runner.distinct_proposals cfg)
          in
          let step_round a =
            if not (F.Arena.all_halted a) then
              F.Arena.step a
                (Sim.Schedule.compile_plan ~n
                   (Sim.Schedule.plan_at s (F.Arena.next_round a)))
          in
          for _ = 1 to before do
            step_round arena
          done;
          F.Arena.save arena;
          let fp_saved = F.Arena.fingerprint arena in
          for _ = 1 to after do
            step_round arena
          done;
          F.Arena.restore arena;
          let fp_restored = F.Arena.fingerprint arena in
          fp_saved = fp_restored)
        [ floodset; floodmin; at2 ])

(* Past the schedule horizon the fast path switches to the flat
   struct-of-arrays tail; holding FloodMin in its steady state for many
   rounds pins that tail against the recording engine. *)
module Floodmin_steady = Baselines.Floodmin.Make (struct
  let extra_rounds = 40
end)

let test_flat_tail_equivalence () =
  let algo = Sim.Algorithm.Packed (module Floodmin_steady) in
  List.iter
    (fun (n, t) ->
      let cfg = config ~n ~t in
      check_bool
        (Printf.sprintf "flat tail agrees at n=%d" n)
        true
        (engines_agree cfg quiet_es algo))
    [ (5, 2); (63, 2); (64, 2); (100, 3) ]

(* Crash-round edge cases: a victim crashing in its own decision round
   records no decision (it does not complete the round), and a victim all
   of whose messages are lost crashed "before sending".  Both must replay
   identically on all three engine paths and stay safety-clean. *)
let test_crash_round_edge_cases () =
  let cfg = config ~n:4 ~t:1 in
  let silent =
    es ~gst:1 [ plan ~crashes:[ 2 ] ~lost:[ (2, 1); (2, 3); (2, 4) ] () ]
  in
  assert_valid cfg silent;
  let trace = run floodset cfg silent in
  assert_consensus trace;
  check_bool "silent victim records no decision" true
    (Sim.Trace.decision_of trace (Pid.of_int 2) = None);
  check_int "survivors decide" 3 (List.length trace.Sim.Trace.decisions);
  (* FloodSet decides in round t+1 = 2: crash the victim in exactly that
     round *)
  let crash_in_decision_round = es ~gst:1 [ plan (); plan ~crashes:[ 2 ] () ] in
  assert_valid cfg crash_in_decision_round;
  let trace2 = run floodset cfg crash_in_decision_round in
  assert_consensus trace2;
  check_bool "deciding-round victim records no decision" true
    (Sim.Trace.decision_of trace2 (Pid.of_int 2) = None);
  check_int "survivors still decide" 3 (List.length trace2.Sim.Trace.decisions);
  check_bool "engines agree on the silent victim" true
    (engines_agree cfg silent floodset);
  check_bool "engines agree on the deciding-round crash" true
    (engines_agree cfg crash_in_decision_round floodset)

(* The same two edge schedules through the fuzz harness: its online
   monitor and termination judgment must also treat the victim as faulty,
   so both runs come back Passed. *)
let test_crash_round_edge_cases_harness () =
  let cfg = config ~n:4 ~t:1 in
  let proposals = Sim.Runner.distinct_proposals cfg in
  List.iter
    (fun (name, s) ->
      match Fuzz.Harness.run ~algo:floodset ~config:cfg ~proposals s with
      | Fuzz.Outcome.Passed _ -> ()
      | o ->
          Alcotest.fail
            (Format.asprintf "%s: expected Passed: %a" name Fuzz.Outcome.pp o))
    [
      ( "silent victim",
        es ~gst:1 [ plan ~crashes:[ 2 ] ~lost:[ (2, 1); (2, 3); (2, 4) ] () ] );
      ("deciding-round crash", es ~gst:1 [ plan (); plan ~crashes:[ 2 ] () ]);
    ]

(* ------------------------------------------------------------------ *)
(* Trace rendering and queries                                         *)

let test_trace_queries () =
  let cfg = config ~n:4 ~t:1 in
  let trace =
    run floodset cfg
      (es ~gst:1 [ plan ~crashes:[ 4 ] ~lost:[ (4, 1); (4, 2); (4, 3) ] () ])
  in
  check_bool "p4 has no decision" true
    (Sim.Trace.decision_of trace (Pid.of_int 4) = None);
  check_bool "p1 decided" true
    (Sim.Trace.decision_of trace (Pid.of_int 1) <> None);
  check_int "three deciders" 3 (List.length (Sim.Trace.decided_values trace));
  check_bool "correct excludes p4" true
    (List.map Pid.to_int (Sim.Trace.correct trace) = [ 1; 2; 3 ]);
  check_bool "first = global here" true
    (Sim.Trace.first_decision_round trace
    = Sim.Trace.global_decision_round trace)

let test_trace_rendering () =
  let cfg = config ~n:3 ~t:1 in
  let trace =
    Sim.Runner.run ~record:true floodset cfg
      ~proposals:(Sim.Runner.distinct_proposals cfg)
      (es ~gst:1 [ plan ~crashes:[ 2 ] ~lost:[ (2, 1); (2, 3) ] () ])
  in
  let summary = Format.asprintf "%a" Sim.Trace.pp_summary trace in
  check_bool "summary names the algorithm" true
    (contains summary "FloodSet");
  check_bool "summary reports the decision" true
    (contains summary "global decision");
  let diagram = Format.asprintf "%a" Sim.Trace.pp_diagram trace in
  check_bool "diagram marks the crash" true
    (contains diagram "X");
  check_bool "diagram marks decisions" true
    (contains diagram "D=");
  check_bool "diagram lists losses" true
    (contains diagram "lost")

(* Omission fates render distinctly from network losses: the legend names
   the declared omitters and each dropped message is attributed to its
   culprit instead of reading as "lost". *)
let test_trace_omission_rendering () =
  let cfg = config ~n:4 ~t:1 in
  let s =
    es_omit ~omitters:[ (1, Sim.Model.Send_omit) ] ~gst:1
      [ plan ~lost:[ (1, 2) ] () ]
  in
  assert_valid cfg s;
  let trace =
    Sim.Runner.run ~record:true floodset cfg
      ~proposals:(Sim.Runner.distinct_proposals cfg)
      s
  in
  let diagram = Format.asprintf "%a" Sim.Trace.pp_diagram trace in
  check_bool "legend declares the omitter" true
    (contains diagram "omitters: p1 (send-omission)");
  check_bool "fate attributed to the culprit" true
    (contains diagram "r1: p1 -> p2 omitted (send-omission by p1)");
  check_bool "no plain loss line" false (contains diagram "p1 -> p2 lost");
  (* the omitter is excluded from the correct set *)
  check_bool "correct excludes the omitter" true
    (List.map Pid.to_int (Sim.Trace.correct trace) = [ 2; 3; 4 ]);
  let s_recv =
    es_omit ~omitters:[ (4, Sim.Model.Recv_omit) ] ~gst:1
      [ plan ~lost:[ (2, 4) ] () ]
  in
  let trace_recv =
    Sim.Runner.run ~record:true floodset cfg
      ~proposals:(Sim.Runner.distinct_proposals cfg)
      s_recv
  in
  let diagram_recv = Format.asprintf "%a" Sim.Trace.pp_diagram trace_recv in
  check_bool "receive-omission attributed to the receiver" true
    (contains diagram_recv "r1: p2 -> p4 omitted (receive-omission by p4)")

let test_engine_max_rounds () =
  let cfg = config ~n:3 ~t:1 in
  let trace = run ~max_rounds:1 ct cfg quiet_es in
  check_int "stopped after one round" 1 trace.Sim.Trace.rounds_executed;
  check_bool "not quiescent" false trace.Sim.Trace.all_halted;
  check_bool "default bound is generous" true
    (Sim.Engine.default_max_rounds cfg quiet_es >= 20)

let test_engine_bytes_recorded () =
  let cfg = config ~n:4 ~t:1 in
  let trace = run ~record:true floodset cfg quiet_es in
  match trace.Sim.Trace.records with
  | first :: _ ->
      (* Round 1: four senders, each broadcasting 4 copies of a one-value
         flood (header 7 + payload 4 + 8). *)
      check_int "round-1 bytes" (4 * 4 * (7 + 12)) first.Sim.Trace.bytes_sent
  | [] -> Alcotest.fail "no records"

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)

(* Semantic equality over a horizon: same model, gst, crash pattern and
   per-message fate. *)
let schedules_equivalent cfg a b =
  let n = Config.n cfg in
  let horizon = max (Sim.Schedule.horizon a) (Sim.Schedule.horizon b) in
  Sim.Model.equal (Sim.Schedule.model a) (Sim.Schedule.model b)
  && Round.equal (Sim.Schedule.gst a) (Sim.Schedule.gst b)
  && List.for_all
       (fun p ->
         Sim.Schedule.crash_round a p = Sim.Schedule.crash_round b p)
       (Pid.all ~n)
  && List.for_all
       (fun k ->
         let round = Round.of_int k in
         List.for_all
           (fun src ->
             List.for_all
               (fun dst ->
                 Sim.Schedule.fate a ~src ~dst ~round
                 = Sim.Schedule.fate b ~src ~dst ~round)
               (Pid.all ~n))
           (Pid.all ~n))
       (Listx.range 1 horizon)

let test_codec_example () =
  let text =
    "# a comment\n\
     schedule ES gst=3\n\
     round 1: delay p1->p3@4 p1->p4@4\n\
     round 2: crash p2 | lose p2->p3 p2->p4\n"
  in
  let s = Sim.Codec.decode_exn text in
  check_bool "model" true (Sim.Model.equal (Sim.Schedule.model s) Sim.Model.Es);
  check_int "gst" 3 (Round.to_int (Sim.Schedule.gst s));
  check_int "horizon" 2 (Sim.Schedule.horizon s);
  check_bool "crash" true
    (Sim.Schedule.crash_round s (Pid.of_int 2) = Some (Round.of_int 2));
  check_bool "delay" true
    (Sim.Schedule.fate s ~src:(Pid.of_int 1) ~dst:(Pid.of_int 3)
       ~round:Round.first
    = Sim.Schedule.Delayed_until (Round.of_int 4));
  check_bool "lose" true
    (Sim.Schedule.fate s ~src:(Pid.of_int 2) ~dst:(Pid.of_int 3)
       ~round:(Round.of_int 2)
    = Sim.Schedule.Lost)

let test_codec_omission_example () =
  let text =
    "schedule ES gst=1 omit=p1:send,p4:recv budget=1+2\n\
     round 1: crash p2 | lose p1->p3 p2->p5\n"
  in
  let s = Sim.Codec.decode_exn text in
  check_int "omitters decoded" 2 (Sim.Schedule.omit_count s);
  check_bool "p1 send class" true
    (Sim.Schedule.omitter_class s (Pid.of_int 1) = Some Sim.Model.Send_omit);
  check_bool "p4 recv class" true
    (Sim.Schedule.omitter_class s (Pid.of_int 4) = Some Sim.Model.Recv_omit);
  check_bool "budget decoded" true
    (Sim.Schedule.budget s = Some (Sim.Model.budget ~t_crash:1 ~t_omit:2));
  (* encoding reproduces both tokens *)
  let enc = Sim.Codec.encode s in
  check_bool "omit token re-encoded" true (contains enc "omit=p1:send,p4:recv");
  check_bool "budget token re-encoded" true (contains enc "budget=1+2");
  (* backward compat: the bare three-token header still parses, with no
     omitters and no budget *)
  let bare = Sim.Codec.decode_exn "schedule ES gst=3\nround 1: crash p1\n" in
  check_int "no omitters" 0 (Sim.Schedule.omit_count bare);
  check_bool "no budget" true (Sim.Schedule.budget bare = None)

let test_codec_errors () =
  let bad texts =
    List.iter
      (fun text ->
        match Sim.Codec.decode text with
        | Ok _ -> Alcotest.fail ("should reject: " ^ text)
        | Error _ -> ())
      texts
  in
  bad
    [
      "";
      "bogus header\n";
      "schedule XX gst=1\n";
      "schedule ES gst=0\n";
      "schedule ES gst=1\nround zero: crash p1\n";
      "schedule ES gst=1\nround 1: crash q1\n";
      "schedule ES gst=1\nround 1: teleport p1\n";
      "schedule ES gst=1\nround 1: delay p1->p2\n";
      "schedule ES gst=1\nround 1 crash p1\n";
    ]

let prop_codec_roundtrip =
  qtest ~count:150 "encode/decode roundtrip on generated schedules"
    QCheck.(pair int (int_range 0 3))
    (fun (seed, kind) ->
      let cfg = config ~n:5 ~t:2 in
      let rng = Rng.create ~seed in
      let s =
        match kind with
        | 0 -> Workload.Random_runs.synchronous rng cfg ()
        | 1 -> Workload.Random_runs.synchronous_with_delays rng cfg ()
        | 2 -> Workload.Random_runs.eventually_synchronous rng cfg ~gst:4 ()
        | _ -> Workload.Cascade.chain cfg
      in
      match Sim.Codec.decode (Sim.Codec.encode s) with
      | Ok s' -> schedules_equivalent cfg s s'
      | Error _ -> false)

(* Roundtrip over the omission generator: fates, omitter declarations and
   the explicit budget all survive encode/decode. *)
let prop_codec_roundtrip_omissions =
  qtest ~count:100 "roundtrip preserves omitters and budget"
    QCheck.(pair int (int_range 0 2))
    (fun (seed, menu) ->
      let cfg = config ~n:5 ~t:2 in
      let rng = Rng.create ~seed in
      let faults =
        match menu with
        | 0 -> Sim.Model.Send_omit_only
        | 1 -> Sim.Model.Recv_omit_only
        | _ -> Sim.Model.Mixed
      in
      let s = Workload.Random_runs.with_omissions rng cfg ~faults () in
      match Sim.Codec.decode (Sim.Codec.encode s) with
      | Ok s' ->
          schedules_equivalent cfg s s'
          && Sim.Schedule.omitters s = Sim.Schedule.omitters s'
          && Sim.Schedule.budget s = Sim.Schedule.budget s'
      | Error _ -> false)

let test_runner_proposals () =
  let cfg = config ~n:3 ~t:1 in
  let p = Sim.Runner.proposals_of_list (List.map Value.of_int [ 5; 6; 7 ]) in
  check_int "p2 proposal" 6 (Value.to_int (Pid.Map.find (Pid.of_int 2) p));
  let b = Sim.Runner.binary_proposals cfg ~ones:(Pid.Set.of_ints [ 2 ]) in
  check_int "binary p2" 1 (Value.to_int (Pid.Map.find (Pid.of_int 2) b));
  check_int "binary p1" 0 (Value.to_int (Pid.Map.find (Pid.of_int 1) b));
  let u = Sim.Runner.uniform_proposals cfg (Value.of_int 9) in
  check_bool "uniform" true
    (Pid.Map.for_all (fun _ v -> Value.to_int v = 9) u)

let () =
  Alcotest.run "sim"
    [
      ( "envelope/inbox",
        [
          Alcotest.test_case "envelope" `Quick test_envelope;
          Alcotest.test_case "inbox" `Quick test_inbox;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "valid cases" `Quick test_schedule_valid_cases;
          Alcotest.test_case "invalid cases" `Quick test_schedule_invalid_cases;
          Alcotest.test_case "queries" `Quick test_schedule_queries;
          Alcotest.test_case "effective gst" `Quick test_schedule_effective_gst_sync;
        ] );
      ( "omissions",
        [
          Alcotest.test_case "valid omitter schedules" `Quick
            test_schedule_omitters_valid;
          Alcotest.test_case "invalid omitter schedules (pinned messages)"
            `Quick test_schedule_omitters_invalid;
          Alcotest.test_case "validator message context" `Quick
            test_schedule_validate_message_context;
          Alcotest.test_case "omission queries" `Quick
            test_schedule_omission_queries;
          Alcotest.test_case "omission rendering" `Quick
            test_trace_omission_rendering;
          Alcotest.test_case "codec omission tokens" `Quick
            test_codec_omission_example;
          prop_codec_roundtrip_omissions;
        ] );
      ( "engine",
        [
          Alcotest.test_case "full delivery" `Quick test_engine_full_delivery;
          Alcotest.test_case "crash semantics" `Quick test_engine_crash_semantics;
          Alcotest.test_case "delay semantics" `Quick test_engine_delay_semantics;
          Alcotest.test_case "own message" `Quick test_engine_own_message;
          Alcotest.test_case "halting" `Quick test_engine_halt_stops_sending;
          Alcotest.test_case "records" `Quick test_engine_records;
          Alcotest.test_case "decision stability" `Quick test_engine_decision_stability;
        ] );
      ( "props",
        [
          Alcotest.test_case "sound run" `Quick test_props_on_sound_run;
          Alcotest.test_case "agreement violation" `Quick test_props_agreement_violation;
          Alcotest.test_case "unsettled" `Quick test_props_unsettled;
          Alcotest.test_case "runner proposals" `Quick test_runner_proposals;
        ] );
      ( "model-invariants",
        [
          prop_engine_respects_model;
          prop_engine_deterministic;
          prop_incremental_matches_run;
          prop_cross_engine_equivalence;
          prop_all_algorithms_all_menus;
          prop_arena_snapshot_restore;
          Alcotest.test_case "flat tail equivalence" `Quick
            test_flat_tail_equivalence;
          Alcotest.test_case "crash-round edge cases" `Quick
            test_crash_round_edge_cases;
          Alcotest.test_case "crash-round edge cases (harness)" `Quick
            test_crash_round_edge_cases_harness;
        ] );
      ( "trace",
        [
          Alcotest.test_case "queries" `Quick test_trace_queries;
          Alcotest.test_case "rendering" `Quick test_trace_rendering;
          Alcotest.test_case "max rounds" `Quick test_engine_max_rounds;
          Alcotest.test_case "bytes recorded" `Quick test_engine_bytes_recorded;
        ] );
      ( "codec",
        [
          Alcotest.test_case "example" `Quick test_codec_example;
          Alcotest.test_case "errors" `Quick test_codec_errors;
          prop_codec_roundtrip;
        ] );
    ]
