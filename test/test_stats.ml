(* Bench-diff: artifact parsing and the regression verdict policy. *)

open Helpers

let entry ?minor ?speedup name mean stddev =
  {
    Stats.Bench_diff.e_name = name;
    e_mean_s = mean;
    e_stddev_s = stddev;
    e_minor_words = minor;
    e_speedup = speedup;
  }

let artifact ?date suites = { Stats.Bench_diff.a_date = date; a_suites = suites }

let diff = Stats.Bench_diff.diff

let row report suite name =
  match
    List.find_opt
      (fun (r : Stats.Bench_diff.row) -> r.suite = suite && r.name = name)
      report.Stats.Bench_diff.rows
  with
  | Some r -> r
  | None -> Alcotest.fail (Printf.sprintf "row %s/%s missing" suite name)

(* ------------------------------------------------------------------ *)
(* Verdict policy                                                      *)

let test_time_regression_needs_ratio_and_sigma () =
  (* Same 2x ratio on both rows; only the one whose delta clears the
     2-sigma noise band regresses. *)
  let old_ =
    artifact
      [ ("s", [ entry "clean" 1.0 0.01; entry "noisy" 1.0 0.5 ]) ]
  in
  let new_ =
    artifact
      [ ("s", [ entry "clean" 2.0 0.01; entry "noisy" 2.0 0.5 ]) ]
  in
  let report = diff ~threshold:1.25 ~old_ ~new_ () in
  check_bool "clean row regresses" true (row report "s" "clean").time_regressed;
  check_bool "noisy row is shielded by its stddev" false
    (row report "s" "noisy").time_regressed;
  check_int "one regression" 1
    (List.length (Stats.Bench_diff.regressions report))

let test_time_below_threshold_passes () =
  let old_ = artifact [ ("s", [ entry "w" 1.0 0.001 ]) ] in
  let new_ = artifact [ ("s", [ entry "w" 1.2 0.001 ]) ] in
  let report = diff ~threshold:1.25 ~old_ ~new_ () in
  check_bool "1.2x under a 1.25 threshold" false (row report "s" "w").time_regressed;
  let tight = diff ~threshold:1.1 ~old_ ~new_ () in
  check_bool "same artifacts fail a 1.1 threshold" true
    (row tight "s" "w").time_regressed

let test_alloc_regression_and_min_words_floor () =
  let old_ =
    artifact
      [
        ( "s",
          [
            entry ~minor:10_000. "big" 1.0 0.001;
            entry ~minor:100. "tiny" 1.0 0.001;
          ] );
      ]
  in
  let new_ =
    artifact
      [
        ( "s",
          [
            entry ~minor:15_000. "big" 1.0 0.001;
            entry ~minor:400. "tiny" 1.0 0.001;
          ] );
      ]
  in
  let report = diff ~alloc_threshold:1.10 ~old_ ~new_ () in
  let big = row report "s" "big" in
  check_bool "1.5x words on a big row regresses" true big.alloc_regressed;
  check_bool "alloc ratio computed" true
    (match big.alloc_ratio with Some r -> r > 1.4 && r < 1.6 | None -> false);
  check_bool "4x words under the min_words floor is ignored" false
    (row report "s" "tiny").alloc_regressed;
  check_bool "time untouched" false big.time_regressed

let test_missing_minor_words_means_no_alloc_verdict () =
  (* Pre-profiling artifacts carry no alloc columns: diffing against them
     must still work and never produce alloc verdicts. *)
  let old_ = artifact [ ("s", [ entry "w" 1.0 0.001 ]) ] in
  let new_ = artifact [ ("s", [ entry ~minor:1.0e9 "w" 1.0 0.001 ]) ] in
  let r = row (diff ~old_ ~new_ ()) "s" "w" in
  check_bool "no alloc ratio" true (r.alloc_ratio = None);
  check_bool "no alloc verdict" false r.alloc_regressed

let test_speedup_lost_policy () =
  (* A reduction may compress (7.9x -> 5.6x: the unreduced sibling got
     faster) without regressing, but clearly inverting below 1x fails even
     if the row's own time improved; rows that never were a win stay
     exempt, and overhead-style rows hovering at ~1x are shielded by the
     threshold. *)
  let old_ =
    artifact
      [
        ( "s",
          [
            entry ~speedup:7.9 "compressed" 1.0 0.001;
            entry ~speedup:1.2 "inverted" 1.0 0.001;
            entry ~speedup:1.01 "hovering" 1.0 0.001;
            entry ~speedup:0.9 "never-won" 1.0 0.001;
            entry "no-speedup" 1.0 0.001;
          ] );
      ]
  in
  let new_ =
    artifact
      [
        ( "s",
          [
            entry ~speedup:5.6 "compressed" 0.8 0.001;
            entry ~speedup:0.8 "inverted" 0.7 0.001;
            entry ~speedup:0.99 "hovering" 1.0 0.001;
            entry ~speedup:0.85 "never-won" 1.0 0.001;
            entry "no-speedup" 1.0 0.001;
          ] );
      ]
  in
  let report = diff ~threshold:1.03 ~old_ ~new_ () in
  check_bool "compression is not a regression" false
    (row report "s" "compressed").speedup_lost;
  check_bool "inversion regresses despite a faster absolute time" true
    (row report "s" "inverted").speedup_lost;
  check_bool "a ~1x overhead row crossing the boundary is shielded" false
    (row report "s" "hovering").speedup_lost;
  check_bool "a row that never won is exempt" false
    (row report "s" "never-won").speedup_lost;
  check_bool "rows without the column have no verdict" false
    (row report "s" "no-speedup").speedup_lost;
  check_int "one regression" 1
    (List.length (Stats.Bench_diff.regressions report));
  let text = Format.asprintf "%a" Stats.Bench_diff.pp report in
  check_bool "table shows old->new speedups" true (contains text "7.90x->5.60x");
  check_bool "verdict names the loss" true (contains text "SPEEDUP")

let test_only_old_and_only_new_never_fail () =
  let old_ = artifact [ ("s", [ entry "kept" 1.0 0.001; entry "dropped" 1.0 0.001 ]) ] in
  let new_ = artifact [ ("s", [ entry "kept" 1.0 0.001; entry "added" 9.0 0.001 ]) ] in
  let report = diff ~old_ ~new_ () in
  check_bool "dropped row listed" true
    (report.Stats.Bench_diff.only_old = [ "s/dropped" ]);
  check_bool "added row listed" true
    (report.Stats.Bench_diff.only_new = [ "s/added" ]);
  check_int "unmatched rows are never regressions" 0
    (List.length (Stats.Bench_diff.regressions report));
  check_int "only matched rows in the table" 1
    (List.length report.Stats.Bench_diff.rows)

(* ------------------------------------------------------------------ *)
(* Artifact parsing                                                    *)

let test_parse_both_artifact_generations () =
  let new_format =
    {|{"date":"2026-08-07","suites":{"micro":[
        {"name":"w","mean_s":1.5e-6,"stddev_s":1e-8,"minor_words":1234.5}]}}|}
  in
  (match Stats.Bench_diff.artifact_of_string new_format with
  | Error e -> Alcotest.fail e
  | Ok a -> (
      check_bool "date" true (a.Stats.Bench_diff.a_date = Some "2026-08-07");
      match a.Stats.Bench_diff.a_suites with
      | [ ("micro", [ e ]) ] ->
          check_string "name" "w" e.Stats.Bench_diff.e_name;
          check_bool "minor words read" true (e.e_minor_words = Some 1234.5)
      | _ -> Alcotest.fail "unexpected suite shape"));
  let old_format =
    {|{"suites":{"micro":[{"name":"w","mean_s":1.5e-6,"stddev_s":1e-8}]}}|}
  in
  match Stats.Bench_diff.artifact_of_string old_format with
  | Error e -> Alcotest.fail e
  | Ok a -> (
      check_bool "no date" true (a.Stats.Bench_diff.a_date = None);
      match a.Stats.Bench_diff.a_suites with
      | [ ("micro", [ e ]) ] ->
          check_bool "no minor words" true (e.Stats.Bench_diff.e_minor_words = None)
      | _ -> Alcotest.fail "unexpected suite shape")

let test_parse_errors_are_reported () =
  (match Stats.Bench_diff.artifact_of_string "{\"nope\":1}" with
  | Error e -> check_bool "names the missing field" true (contains e "suites")
  | Ok _ -> Alcotest.fail "expected an error");
  (match
     Stats.Bench_diff.artifact_of_string
       {|{"suites":{"micro":[{"name":"w"}]}}|}
   with
  | Error e -> check_bool "names the missing row field" true (contains e "mean_s")
  | Ok _ -> Alcotest.fail "expected an error");
  match Stats.Bench_diff.artifact_of_string "not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a parse error"

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let test_pp_and_json_report () =
  let old_ = artifact [ ("s", [ entry ~minor:10_000. "w" 1.0 0.001 ]) ] in
  let new_ = artifact [ ("s", [ entry ~minor:20_000. "w" 2.0 0.001 ]) ] in
  let report = diff ~old_ ~new_ () in
  let text = Format.asprintf "%a" Stats.Bench_diff.pp report in
  check_bool "table names the workload" true (contains text "s/w");
  check_bool "summary counts the regression" true (contains text "1 regression");
  let json = Stats.Bench_diff.to_json report in
  match Option.bind (Obs.Json.member "rows" json) Obs.Json.to_list_opt with
  | Some [ r ] ->
      check_bool "row json carries verdicts" true
        (Option.bind (Obs.Json.member "time_regressed" r) Obs.Json.to_bool_opt
        = Some true)
  | _ -> Alcotest.fail "report json must carry one row"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "stats"
    [
      ( "bench-diff verdicts",
        [
          Alcotest.test_case "ratio + sigma" `Quick
            test_time_regression_needs_ratio_and_sigma;
          Alcotest.test_case "threshold" `Quick test_time_below_threshold_passes;
          Alcotest.test_case "alloc + floor" `Quick
            test_alloc_regression_and_min_words_floor;
          Alcotest.test_case "old artifacts" `Quick
            test_missing_minor_words_means_no_alloc_verdict;
          Alcotest.test_case "speedup lost" `Quick test_speedup_lost_policy;
          Alcotest.test_case "unmatched rows" `Quick
            test_only_old_and_only_new_never_fail;
        ] );
      ( "bench-diff parsing",
        [
          Alcotest.test_case "both generations" `Quick
            test_parse_both_artifact_generations;
          Alcotest.test_case "errors" `Quick test_parse_errors_are_reported;
        ] );
      ( "bench-diff report",
        [
          Alcotest.test_case "pp and json" `Quick test_pp_and_json_report;
        ] );
    ]
