open Kernel
open Helpers

let c41 = config ~n:4 ~t:1
let c52 = config ~n:5 ~t:2
let props cfg = Sim.Runner.distinct_proposals cfg
let eager = Fuzz.Faulty.eager_floodset

let class_of outcome = Fuzz.Outcome.failure_of outcome

(* ------------------------------------------------------------------ *)
(* Engine containment                                                  *)

let test_engine_step_error () =
  match Helpers.run (Fuzz.Faulty.raising ~at:2) c41 quiet_es with
  | _ -> Alcotest.fail "expected Step_error"
  | exception Sim.Engine.Step_error e ->
      check_int "faulting round" 2 (Round.to_int e.Sim.Engine.round);
      check_bool "pid in range" true
        (let p = Pid.to_int e.Sim.Engine.pid in
         p >= 1 && p <= 4);
      check_bool "algorithm named" true (e.Sim.Engine.algorithm = "Raising@2");
      check_bool "printable" true
        (contains
           (Format.asprintf "%a" Sim.Engine.pp_step_error e)
           "injected fault")

(* ------------------------------------------------------------------ *)
(* Harness outcomes                                                    *)

let test_harness_passed () =
  match Fuzz.Harness.run ~algo:at2 ~config:c52 ~proposals:(props c52) quiet_es with
  | Fuzz.Outcome.Passed { decision_round = Some r; _ } ->
      check_int "A(t+2) decides at t+2" 4 r
  | o -> Alcotest.fail (Format.asprintf "expected Passed: %a" Fuzz.Outcome.pp o)

let test_harness_crashed () =
  match
    Fuzz.Harness.run
      ~algo:(Fuzz.Faulty.raising ~at:3)
      ~config:c41 ~proposals:(props c41) quiet_es
  with
  | Fuzz.Outcome.Crashed e ->
      check_int "round carried" 3 (Round.to_int e.Sim.Engine.round)
  | o -> Alcotest.fail (Format.asprintf "expected Crashed: %a" Fuzz.Outcome.pp o)

let test_harness_budget () =
  match
    Fuzz.Harness.run ~fuel:1 ~algo:at2 ~config:c52 ~proposals:(props c52)
      quiet_es
  with
  | Fuzz.Outcome.Budget_exhausted { fuel; undecided } ->
      check_int "fuel recorded" 1 fuel;
      check_int "nobody decided in one round" 5 (List.length undecided)
  | o ->
      Alcotest.fail
        (Format.asprintf "expected Budget_exhausted: %a" Fuzz.Outcome.pp o)

let test_harness_raised_contained () =
  match
    Fuzz.Harness.run_contained ~algo:Fuzz.Faulty.raising_init ~config:c41
      ~proposals:(props c41) quiet_es
  with
  | Fuzz.Outcome.Raised msg -> check_bool "message" true (contains msg "init")
  | o -> Alcotest.fail (Format.asprintf "expected Raised: %a" Fuzz.Outcome.pp o)

(* The monitor aborts the eager FloodSet's split decision at the violating
   round — before the run completes. *)
let test_monitor_aborts_early () =
  let chain = Workload.Cascade.chain c52 in
  match Fuzz.Harness.run ~algo:eager ~config:c52 ~proposals:(props c52) chain with
  | Fuzz.Outcome.Violated { round; violations = [ Sim.Props.Agreement _ ] } ->
      check_int "aborted at the deciding round" 2 round
  | o ->
      Alcotest.fail
        (Format.asprintf "expected an agreement violation: %a" Fuzz.Outcome.pp
           o)

(* ------------------------------------------------------------------ *)
(* qcheck: monitor verdict == post-hoc Props verdict                   *)

let prop_monitor_agrees_with_posthoc =
  qtest ~count:60 "online monitor == post-hoc Props.check"
    QCheck.(pair (int_bound 99999) (int_bound 2))
    (fun (seed, which) ->
      let algo = List.nth [ at2; floodset; eager ] which in
      let rng = Rng.create ~seed in
      let schedule = Fuzz.Campaign.default_gen c52 rng in
      let proposals = props c52 in
      let online =
        Fuzz.Harness.run ~algo ~config:c52 ~proposals schedule
      in
      match class_of online with
      | Some Fuzz.Outcome.Crash -> false (* none of these algorithms raise *)
      | verdict -> (
          let posthoc =
            Sim.Props.check_agreement
              (Sim.Runner.run algo c52 ~proposals schedule)
          in
          let has p = List.exists p posthoc in
          match verdict with
          | Some Fuzz.Outcome.Agreement ->
              has (function Sim.Props.Agreement _ -> true | _ -> false)
          | Some Fuzz.Outcome.Validity ->
              has (function Sim.Props.Validity _ -> true | _ -> false)
          (* fuel and liveness outcomes must be safety-clean: the monitor
             saw every decision the full run produced *)
          | None | Some Fuzz.Outcome.Termination | Some Fuzz.Outcome.Fuel ->
              posthoc = []
          | Some Fuzz.Outcome.Crash -> false))

(* ------------------------------------------------------------------ *)
(* qcheck: shrinking preserves validity and the failure class          *)

let prop_shrink_preserves_class =
  qtest ~count:25 "shrunken schedules validate and keep their class"
    QCheck.(int_bound 99999)
    (fun seed ->
      let rng = Rng.create ~seed in
      let base = Workload.Cascade.chain c52 in
      let schedule = Workload.Mutate.generator ~base c52 rng in
      let proposals = props c52 in
      let original =
        class_of (Fuzz.Harness.run ~algo:eager ~config:c52 ~proposals schedule)
      in
      match
        Fuzz.Shrink.shrink ~algo:eager ~config:c52 ~proposals schedule
      with
      | None -> original = None
      | Some r ->
          Some r.Fuzz.Shrink.failure = original
          && Sim.Schedule.validate c52 r.Fuzz.Shrink.schedule = Ok ()
          && class_of
               (Fuzz.Harness.run ~algo:eager ~config:c52 ~proposals
                  r.Fuzz.Shrink.schedule)
             = original)

(* qcheck: Mutate only emits schedules the model validator accepts. *)
let prop_mutate_valid =
  qtest ~count:100 "mutated schedules always validate"
    QCheck.(int_bound 99999)
    (fun seed ->
      let rng = Rng.create ~seed in
      let base =
        if Rng.bool rng then Workload.Cascade.chain c52
        else Workload.Random_runs.synchronous rng c52 ()
      in
      let s = Workload.Mutate.generator ~base c52 rng in
      Sim.Schedule.validate c52 s = Ok ())

(* ------------------------------------------------------------------ *)
(* Omission faults: monitor exclusion, harness survival, shrinking      *)

(* The monitor judges agreement among non-omitters only: an omitter's
   divergent decision neither anchors nor trips it, while validity still
   applies to everyone. *)
let test_monitor_omitter_exclusion () =
  let proposals = props c41 in
  let d pid value =
    {
      Sim.Trace.pid = Pid.of_int pid;
      round = Round.of_int 2;
      value = Value.of_int value;
    }
  in
  let omitters = Pid.Set.of_ints [ 1 ] in
  (* the omitter disagrees with the anchor: no agreement violation *)
  let m = Fuzz.Monitor.create ~omitters ~proposals () in
  let m = Fuzz.Monitor.observe_all m [ d 2 2; d 1 1 ] in
  check_bool "omitter disagreement tolerated" false (Fuzz.Monitor.tripped m);
  (* a correct process disagreeing still trips it *)
  let m = Fuzz.Monitor.observe m (d 3 1) in
  check_bool "correct disagreement trips" true (Fuzz.Monitor.tripped m);
  check_bool "as an agreement violation" true
    (match Fuzz.Monitor.violation m with
    | Some (Sim.Props.Agreement _) -> true
    | _ -> false);
  (* the omitter never anchors: its early decision binds nobody *)
  let m2 = Fuzz.Monitor.create ~omitters ~proposals () in
  let m2 = Fuzz.Monitor.observe_all m2 [ d 1 1; d 2 2; d 3 2 ] in
  check_bool "omitter decision does not anchor" false
    (Fuzz.Monitor.tripped m2);
  (* validity still holds omitters to account *)
  let m3 = Fuzz.Monitor.create ~omitters ~proposals () in
  let m3 = Fuzz.Monitor.observe m3 (d 1 99) in
  check_bool "omitter validity checked" true
    (match Fuzz.Monitor.violation m3 with
    | Some (Sim.Props.Validity _) -> true
    | _ -> false)

(* FloodSet survives pure receive-omissions: a receive-omitter only
   starves itself, and its own (possibly divergent) decision is excluded
   from the agreement judgment — the e13 asymmetry, via the harness. *)
let test_harness_recv_omit_starvation () =
  let starved =
    Sim.Schedule.make
      ~omitters:[ (Pid.of_int 4, Sim.Model.Recv_omit) ]
      ~model:Sim.Model.Es ~gst:Round.first
      [
        { Sim.Schedule.empty_plan with
          lost = [ (Pid.of_int 1, Pid.of_int 4);
                   (Pid.of_int 2, Pid.of_int 4);
                   (Pid.of_int 3, Pid.of_int 4) ] };
        { Sim.Schedule.empty_plan with
          lost = [ (Pid.of_int 1, Pid.of_int 4);
                   (Pid.of_int 2, Pid.of_int 4);
                   (Pid.of_int 3, Pid.of_int 4) ] };
      ]
  in
  assert_valid c41 starved;
  match
    Fuzz.Harness.run ~algo:floodset ~config:c41 ~proposals:(props c41) starved
  with
  | Fuzz.Outcome.Passed _ -> ()
  | o ->
      Alcotest.fail
        (Format.asprintf "expected Passed under recv-omission: %a"
           Fuzz.Outcome.pp o)

(* A send-omission counterexample from the exhaustive sweep shrinks to a
   1-minimal schedule that keeps its omitter declaration: the fault is
   essential, so no reduction may drop it. *)
let test_shrink_omission_minimal () =
  let faults = Sim.Model.Send_omit_only in
  let proposals = props c41 in
  let r =
    Mc.Exhaustive.sweep_incremental ~faults ~algo:floodset ~config:c41
      ~proposals ()
  in
  let choices, _ =
    match r.Mc.Exhaustive.violations with
    | w :: _ -> w
    | [] -> Alcotest.fail "send-omit sweep must find FloodSet violations"
  in
  let budget = Mc.Serial.budget_of ~faults c41 in
  let witness = Mc.Serial.to_schedule ?budget c41 choices in
  match Fuzz.Shrink.shrink ~algo:floodset ~config:c41 ~proposals witness with
  | None -> Alcotest.fail "witness must fail under the harness"
  | Some rep ->
      check_bool "agreement preserved" true
        (rep.Fuzz.Shrink.failure = Fuzz.Outcome.Agreement);
      assert_valid c41 rep.Fuzz.Shrink.schedule;
      check_int "the omitter survives shrinking" 1
        (Sim.Schedule.omit_count rep.Fuzz.Shrink.schedule);
      check_int "no crash is needed" 0
        (Sim.Schedule.crash_count rep.Fuzz.Shrink.schedule);
      (* 1-minimality: a second shrink is a fixpoint *)
      (match
         Fuzz.Shrink.shrink ~algo:floodset ~config:c41 ~proposals
           rep.Fuzz.Shrink.schedule
       with
      | Some again -> check_int "fixpoint" 0 again.Fuzz.Shrink.steps
      | None -> Alcotest.fail "shrunken schedule must still fail")

(* The omission generator and the omission-aware mutation operators only
   emit schedules the validator accepts, whatever the menu. *)
let prop_omission_workloads_valid =
  qtest ~count:100 "omission generator and mutations validate"
    QCheck.(pair (int_bound 99999) (int_bound 2))
    (fun (seed, menu) ->
      let faults =
        match menu with
        | 0 -> Sim.Model.Send_omit_only
        | 1 -> Sim.Model.Recv_omit_only
        | _ -> Sim.Model.Mixed
      in
      let rng = Rng.create ~seed in
      let base = Workload.Random_runs.with_omissions rng c52 ~faults () in
      let mutated = Workload.Mutate.generator ~base c52 rng in
      Sim.Schedule.validate c52 base = Ok ()
      && Sim.Schedule.validate c52 mutated = Ok ())

(* ------------------------------------------------------------------ *)
(* Shrinking the chain seed: the acceptance criterion                  *)

let test_shrink_chain_minimal () =
  let chain = Workload.Cascade.chain c52 in
  let proposals = props c52 in
  match Fuzz.Shrink.shrink ~algo:eager ~config:c52 ~proposals chain with
  | None -> Alcotest.fail "eager FloodSet must fail on the chain cascade"
  | Some r ->
      check_bool "agreement preserved" true
        (r.Fuzz.Shrink.failure = Fuzz.Outcome.Agreement);
      assert_valid c52 r.Fuzz.Shrink.schedule;
      check_bool "still violates" true
        (class_of
           (Fuzz.Harness.run ~algo:eager ~config:c52 ~proposals
              r.Fuzz.Shrink.schedule)
        = Some Fuzz.Outcome.Agreement);
      (* 1-minimality: the shrunken schedule is a fixpoint — a second
         shrink finds nothing left to remove. *)
      (match
         Fuzz.Shrink.shrink ~algo:eager ~config:c52 ~proposals
           r.Fuzz.Shrink.schedule
       with
      | Some again -> check_int "fixpoint" 0 again.Fuzz.Shrink.steps
      | None -> Alcotest.fail "shrunken schedule must still fail");
      (* Both cascade crashes are essential to split the eager decision. *)
      check_int "both crashes kept" 2
        (Sim.Schedule.crash_count r.Fuzz.Shrink.schedule)

(* ------------------------------------------------------------------ *)
(* Campaigns                                                           *)

let report_equal (a : Fuzz.Campaign.report) (b : Fuzz.Campaign.report) =
  a.Fuzz.Campaign.runs = b.Fuzz.Campaign.runs
  && a.Fuzz.Campaign.skipped = b.Fuzz.Campaign.skipped
  && a.Fuzz.Campaign.passed = b.Fuzz.Campaign.passed
  && a.Fuzz.Campaign.findings = b.Fuzz.Campaign.findings
  && a.Fuzz.Campaign.shrink_steps = b.Fuzz.Campaign.shrink_steps

let campaign ?(shrink = true) ~jobs ~algo ~gen ~seed () =
  Fuzz.Campaign.run ~jobs ~shrink ~seed ~runs:40 ~algo ~config:c52
    ~proposals:(props c52) ~gen ()

let prop_campaign_jobs_deterministic =
  qtest ~count:4 "campaign reports bit-identical across jobs"
    QCheck.(int_bound 9999)
    (fun seed ->
      let run jobs =
        campaign ~jobs ~algo:eager
          ~gen:(Fuzz.Campaign.mutation_gen ~base:(Workload.Cascade.chain c52))
          ~seed ()
      in
      let r1 = run 1 and r2 = run 2 and r4 = run 4 in
      (* The mutation campaign around the cascade must actually find
         violations, or this property tests nothing. *)
      r1.Fuzz.Campaign.findings <> []
      && report_equal r1 r2 && report_equal r1 r4)

let test_campaign_contains_crashes () =
  let r =
    campaign ~shrink:false ~jobs:2
      ~algo:(Fuzz.Faulty.raising ~at:2)
      ~gen:Fuzz.Campaign.default_gen ~seed:11 ()
  in
  check_int "campaign completed every run" 40 r.Fuzz.Campaign.runs;
  check_int "every run is a finding" 40 (List.length r.Fuzz.Campaign.findings);
  List.iter
    (fun (f : Fuzz.Campaign.finding) ->
      match f.Fuzz.Campaign.outcome with
      | Fuzz.Outcome.Crashed e ->
          check_int "round context" 2 (Round.to_int e.Sim.Engine.round)
      | o ->
          Alcotest.fail
            (Format.asprintf "expected Crashed: %a" Fuzz.Outcome.pp o))
    r.Fuzz.Campaign.findings

let test_campaign_contains_raised () =
  let r =
    campaign ~shrink:false ~jobs:4 ~algo:Fuzz.Faulty.raising_init
      ~gen:Fuzz.Campaign.default_gen ~seed:11 ()
  in
  check_int "campaign survived an uncontained raiser" 40 r.Fuzz.Campaign.runs;
  check_bool "all findings are Raised" true
    (List.for_all
       (fun (f : Fuzz.Campaign.finding) ->
         match f.Fuzz.Campaign.outcome with
         | Fuzz.Outcome.Raised _ -> true
         | _ -> false)
       r.Fuzz.Campaign.findings)

let test_campaign_metrics () =
  let m = Obs.Metrics.create () in
  let _ =
    Fuzz.Campaign.run ~metrics:m ~shrink:true ~seed:5 ~runs:30 ~algo:eager
      ~config:c52 ~proposals:(props c52)
      ~gen:(Fuzz.Campaign.mutation_gen ~base:(Workload.Cascade.chain c52))
      ()
  in
  check_bool "fuzz.runs" true (Obs.Metrics.find_counter m "fuzz.runs" = Some 30);
  check_bool "fuzz.violations counted" true
    (match Obs.Metrics.find_counter m "fuzz.violations" with
    | Some v -> v > 0
    | None -> false);
  check_bool "fuzz.shrink_steps counted" true
    (match Obs.Metrics.find_counter m "fuzz.shrink_steps" with
    | Some v -> v > 0
    | None -> false)

let test_campaign_budget_skips () =
  let r =
    Fuzz.Campaign.run ~budget_s:(-1.0) ~seed:5 ~runs:25 ~algo:at2 ~config:c52
      ~proposals:(props c52) ~gen:Fuzz.Campaign.default_gen ()
  in
  check_int "nothing executed" 0 r.Fuzz.Campaign.runs;
  check_int "everything skipped" 25 r.Fuzz.Campaign.skipped

(* Seeded omission campaigns: A(t+2) survives the mixed menu (indulgence
   covers omissions), the campaign is bit-identical across --jobs, and a
   FloodSet send-omission campaign's findings all shrink to schedules
   whose violation is licensed by a declared omitter. *)
let test_campaign_omissions () =
  let gen faults config rng =
    Workload.Random_runs.with_omissions rng config ~faults ()
  in
  let at2_run jobs =
    Fuzz.Campaign.run ~jobs ~shrink:true ~seed:42 ~runs:80 ~algo:at2
      ~config:c52 ~proposals:(props c52)
      ~gen:(gen Sim.Model.Mixed) ()
  in
  let r1 = at2_run 1 and r4 = at2_run 4 in
  check_int "A(t+2) clean under mixed omissions" 0
    (List.length r1.Fuzz.Campaign.findings);
  check_bool "bit-identical across jobs" true (report_equal r1 r4);
  let fs =
    Fuzz.Campaign.run ~shrink:true ~seed:42 ~runs:600 ~algo:floodset
      ~config:c41 ~proposals:(props c41)
      ~gen:(gen Sim.Model.Send_omit_only) ()
  in
  check_bool "floodset campaign finds send-omit violations" true
    (fs.Fuzz.Campaign.findings <> []);
  List.iter
    (fun (f : Fuzz.Campaign.finding) ->
      check_bool "every finding keeps its omitter" true
        (Sim.Schedule.omit_count f.Fuzz.Campaign.schedule > 0))
    fs.Fuzz.Campaign.findings

let test_campaign_json_roundtrips () =
  let r =
    campaign ~jobs:1 ~algo:eager
      ~gen:(Fuzz.Campaign.mutation_gen ~base:(Workload.Cascade.chain c52))
      ~seed:3 ()
  in
  let json = Obs.Json.to_string (Fuzz.Campaign.to_json r) in
  match Obs.Json.of_string json with
  | Error e -> Alcotest.fail ("report JSON must parse: " ^ e)
  | Ok tree ->
      let findings =
        match Obs.Json.member "findings" tree with
        | Some l -> Option.value ~default:[] (Obs.Json.to_list_opt l)
        | None -> []
      in
      check_int "findings serialized" (List.length r.Fuzz.Campaign.findings)
        (List.length findings);
      (* Every embedded schedule must decode back through the codec. *)
      List.iter
        (fun f ->
          match Obs.Json.member "schedule" f with
          | Some (Obs.Json.String s) -> (
              match Sim.Codec.decode s with
              | Ok _ -> ()
              | Error e -> Alcotest.fail ("embedded schedule: " ^ e))
          | _ -> Alcotest.fail "finding without schedule")
        findings

let () =
  Alcotest.run "fuzz"
    [
      ( "containment",
        [
          Alcotest.test_case "engine wraps raising callbacks" `Quick
            test_engine_step_error;
          Alcotest.test_case "harness: crashed" `Quick test_harness_crashed;
          Alcotest.test_case "harness: raised (init)" `Quick
            test_harness_raised_contained;
          Alcotest.test_case "campaign: crashes contained" `Quick
            test_campaign_contains_crashes;
          Alcotest.test_case "campaign: raised contained" `Quick
            test_campaign_contains_raised;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "harness: passed" `Quick test_harness_passed;
          Alcotest.test_case "harness: budget exhausted" `Quick
            test_harness_budget;
          Alcotest.test_case "aborts at the violating round" `Quick
            test_monitor_aborts_early;
          prop_monitor_agrees_with_posthoc;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "chain shrinks to a 1-minimal witness" `Quick
            test_shrink_chain_minimal;
          prop_shrink_preserves_class;
          prop_mutate_valid;
        ] );
      ( "omissions",
        [
          Alcotest.test_case "monitor excludes omitters from agreement" `Quick
            test_monitor_omitter_exclusion;
          Alcotest.test_case "recv-omission starvation passes" `Quick
            test_harness_recv_omit_starvation;
          Alcotest.test_case "send-omission witness shrinks 1-minimal" `Quick
            test_shrink_omission_minimal;
          prop_omission_workloads_valid;
          Alcotest.test_case "omission campaigns" `Quick
            test_campaign_omissions;
        ] );
      ( "campaign",
        [
          prop_campaign_jobs_deterministic;
          Alcotest.test_case "metrics reported" `Quick test_campaign_metrics;
          Alcotest.test_case "wall budget skips runs" `Quick
            test_campaign_budget_skips;
          Alcotest.test_case "JSON report roundtrips" `Quick
            test_campaign_json_roundtrips;
        ] );
    ]
