(* The process supervisor under hostility: scripted workers (forked
   closures speaking the real wire protocol) that die, stall or behave on
   cue, and the genuine `ipi sweep-worker` binary driven through a
   checkpoint/interrupt/resume cycle with chaos injection. All scripting
   is deterministic — workers misbehave on instruction, never on a
   timer — so every assertion here is exact, not statistical. *)

open Kernel
open Helpers
module J = Obs.Json

let payload task = J.Obj [ ("task", J.Int task); ("sq", J.Int (task * task)) ]

(* A worker that reads assignment frames and consults [behave] (with its
   own per-process frame count) before answering: [`Reply] echoes the
   task with a recomputable payload, [`Die] exits without answering,
   [`Stall] wedges forever so only a chunk timeout can rescue the task. *)
let scripted_worker ?(behave = fun ~count:_ ~task:_ -> `Reply) () =
  Proc.fork (fun ic oc ->
      let count = ref 0 in
      let rec go () =
        match Obs.Wire.read ic with
        | Error _ -> ()
        | Ok json ->
            if Option.is_some (J.member "shutdown" json) then ()
            else (
              match Option.bind (J.member "task" json) J.to_int_opt with
              | None -> exit 9
              | Some task -> (
                  incr count;
                  match behave ~count:!count ~task with
                  | `Reply ->
                      Obs.Wire.write oc (payload task);
                      go ()
                  | `Die -> exit 7
                  | `Stall ->
                      Unix.sleep 1000;
                      exit 8))
      in
      go ())

let test_supervise_completes_in_order () =
  let tasks = List.init 20 Fun.id in
  let outcome =
    Mc.Supervise.run ~workers:3
      ~spawn:(fun () -> scripted_worker ())
      ~tasks ()
  in
  check_bool "every task completed, in ascending order" true
    (List.map fst outcome.Mc.Supervise.completed = tasks);
  check_bool "payloads ferried back verbatim" true
    (List.for_all
       (fun (t, j) -> Option.bind (J.member "sq" j) J.to_int_opt = Some (t * t))
       outcome.Mc.Supervise.completed);
  check_bool "nothing failed or interrupted" true
    (outcome.Mc.Supervise.failed = [] && outcome.Mc.Supervise.interrupted = []);
  check_int "one frame per task" 20 outcome.Mc.Supervise.metrics.Mc.Supervise.frames;
  check_int "no deaths on a calm run" 0
    outcome.Mc.Supervise.metrics.Mc.Supervise.deaths

let test_supervise_death_and_retry () =
  (* The first spawned worker dies on its first assignment; every
     replacement behaves. The murdered task must be reassigned and the
     sweep must converge with no failures. *)
  let spawns = ref 0 in
  let spawn () =
    incr spawns;
    let doomed = !spawns = 1 in
    scripted_worker
      ~behave:(fun ~count ~task:_ ->
        if doomed && count = 1 then `Die else `Reply)
      ()
  in
  let tasks = List.init 8 Fun.id in
  let outcome =
    Mc.Supervise.run ~workers:2 ~max_retries:3 ~backoff:0.01 ~spawn ~tasks ()
  in
  check_bool "all tasks complete despite the death" true
    (List.map fst outcome.Mc.Supervise.completed = tasks);
  check_bool "no task failed" true (outcome.Mc.Supervise.failed = []);
  let m = outcome.Mc.Supervise.metrics in
  check_bool "the death was seen" true (m.Mc.Supervise.deaths >= 1);
  check_bool "the task was retried" true (m.Mc.Supervise.retries >= 1);
  (* the surviving worker may drain the queue before the backoff respawn
     fires, so only the initial pool size is guaranteed *)
  check_bool "spawn count covers the pool" true (m.Mc.Supervise.spawned >= 2)

let test_supervise_poison_task_bounded_retry () =
  (* Task 5 kills every worker that touches it: after max_retries + 1
     attempts it must land in [failed] — and the rest of the sweep must
     survive it. *)
  let spawn () =
    scripted_worker
      ~behave:(fun ~count:_ ~task -> if task = 5 then `Die else `Reply)
      ()
  in
  let outcome =
    Mc.Supervise.run ~workers:2 ~max_retries:1 ~backoff:0.01 ~spawn
      ~tasks:(List.init 8 Fun.id) ()
  in
  check_bool "the healthy tasks all complete" true
    (List.map fst outcome.Mc.Supervise.completed = [ 0; 1; 2; 3; 4; 6; 7 ]);
  (match outcome.Mc.Supervise.failed with
  | [ (5, _) ] -> ()
  | other ->
      Alcotest.fail
        (Printf.sprintf "expected exactly task 5 to fail, got %d failures"
           (List.length other)));
  check_bool "attempts were bounded" true
    (outcome.Mc.Supervise.metrics.Mc.Supervise.deaths >= 2)

let test_supervise_stall_rescued_by_timeout () =
  (* The first worker wedges on task 2 (SIGSTOP-style, via sleep); the
     chunk timeout must kill it and reassign the task to a replacement. *)
  let spawns = ref 0 in
  let spawn () =
    incr spawns;
    let wedged = !spawns = 1 in
    scripted_worker
      ~behave:(fun ~count:_ ~task ->
        if wedged && task = 2 then `Stall else `Reply)
      ()
  in
  let tasks = List.init 5 Fun.id in
  let outcome =
    Mc.Supervise.run ~workers:1 ~chunk_timeout:0.4 ~max_retries:3 ~backoff:0.01
      ~spawn ~tasks ()
  in
  check_bool "all tasks complete despite the stall" true
    (List.map fst outcome.Mc.Supervise.completed = tasks);
  check_bool "no task failed" true (outcome.Mc.Supervise.failed = []);
  check_bool "the stall was a chunk timeout" true
    (outcome.Mc.Supervise.metrics.Mc.Supervise.timeouts >= 1)

let test_supervise_should_stop_partitions () =
  let finished = ref 0 in
  let outcome =
    Mc.Supervise.run ~workers:2
      ~should_stop:(fun () -> !finished >= 3)
      ~on_result:(fun ~task:_ _ -> incr finished)
      ~spawn:(fun () -> scripted_worker ())
      ~tasks:(List.init 30 Fun.id) ()
  in
  check_bool "stop leaves unfinished work in interrupted" true
    (outcome.Mc.Supervise.interrupted <> []);
  check_bool "completed + interrupted + failed partition the tasks" true
    (List.sort compare
       (List.map fst outcome.Mc.Supervise.completed
       @ outcome.Mc.Supervise.interrupted
       @ List.map fst outcome.Mc.Supervise.failed)
    = List.init 30 Fun.id)

let test_supervise_chaos_converges () =
  (* Seeded chaos murders workers mid-assignment, but with budget <
     retries every task survives at least one undisturbed attempt. *)
  let chaos = Mc.Supervise.default_chaos Mc.Supervise.Kill ~seed:7 in
  let tasks = List.init 16 Fun.id in
  let outcome =
    Mc.Supervise.run ~chaos ~workers:2 ~backoff:0.01
      ~spawn:(fun () -> scripted_worker ())
      ~tasks ()
  in
  check_bool "chaos-ridden run still completes every task" true
    (List.map fst outcome.Mc.Supervise.completed = tasks);
  check_bool "no task failed" true (outcome.Mc.Supervise.failed = []);
  check_bool "injections stayed within budget" true
    (outcome.Mc.Supervise.metrics.Mc.Supervise.chaos_injected
    <= chaos.Mc.Supervise.budget)

(* ------------------------------------------------------------------ *)
(* End to end: the real `ipi sweep-worker` binary                       *)

(* dune's (deps ../bin/ipi.exe) guarantees the binary exists and is
   fresh; resolve it relative to this test binary so the path holds under
   both `dune runtest` and `dune exec` from the repository root. *)
let ipi_exe =
  Filename.concat
    (Filename.concat (Filename.dirname Sys.executable_name) "..")
    (Filename.concat "bin" "ipi.exe")

let result_equal = Mc.Codec.result_equal

let e2e_spec config =
  {
    Mc.Distrib.faults = Sim.Model.Crash_only;
    omit_budget = None;
    policy = Mc.Serial.Prefixes;
    horizon = None;
    algo = Expt.Registry.floodset.Expt.Registry.algo;
    config;
    reduce = Mc.Distrib.Rdedup;
    scope = Mc.Distrib.Fixed (Sim.Runner.distinct_proposals config);
    table_cap = None;
    spill_dir = None;
  }

let e2e_worker_argv config =
  [
    ipi_exe;
    "sweep-worker";
    "-a";
    Expt.Registry.floodset.Expt.Registry.label;
    "-n";
    string_of_int (Config.n config);
    "-t";
    string_of_int (Config.t config);
    "--faults";
    "crash";
    "--policy";
    "prefixes";
    "--reduce";
    "dedup";
  ]

let run_ok name = function
  | Ok r -> r
  | Error msg -> Alcotest.fail (name ^ ": " ^ msg)

let test_sweep_worker_end_to_end () =
  let cfg = config ~n:5 ~t:2 in
  let spec = e2e_spec cfg in
  let worker_argv = e2e_worker_argv cfg in
  let params = J.Obj [ ("test", J.String "supervise-e2e") ] in
  let serial = run_ok "serial" (Mc.Distrib.run_serial ~params spec) in
  (* 1. chaos-ridden supervised sweep, straight through *)
  let sup =
    run_ok "supervised"
      (Mc.Distrib.run_supervised ~workers:2
         ~chaos:(Mc.Supervise.default_chaos Mc.Supervise.Kill ~seed:11)
         ~worker_argv ~params spec)
  in
  check_bool "supervised run completes" false sup.Mc.Distrib.partial;
  check_bool "chaos-ridden 2-worker sweep is bit-identical to serial" true
    (result_equal serial.Mc.Distrib.result sup.Mc.Distrib.result);
  check_bool "reduction stats identical across the process boundary" true
    (serial.Mc.Distrib.stats = sup.Mc.Distrib.stats);
  check_int "edge counts identical" serial.Mc.Distrib.edges
    sup.Mc.Distrib.edges;
  check_bool "supervisor metrics are reported" true
    (sup.Mc.Distrib.sup_metrics <> None);
  (* 2. interrupt a serial sweep deterministically, then finish the job
     under supervision, with chaos, from its checkpoint *)
  let path = Filename.temp_file "ipi-test-supervise" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let polls = ref 0 in
  let part =
    run_ok "interrupted"
      (Mc.Distrib.run_serial ~checkpoint:(path, 1)
         ~should_stop:(fun () ->
           incr polls;
           !polls > 6)
         ~params spec)
  in
  check_bool "interrupted run reports PARTIAL" true part.Mc.Distrib.partial;
  check_int "six tasks persisted before the interrupt" 6
    (List.length part.Mc.Distrib.completed);
  let ck =
    match Mc.Checkpoint.load ~path with
    | Ok ck -> ck
    | Error e ->
        Alcotest.fail (Format.asprintf "%a" Mc.Checkpoint.pp_load_error e)
  in
  let resumed =
    run_ok "resumed"
      (Mc.Distrib.run_supervised ~resume:ck ~workers:2
         ~chaos:(Mc.Supervise.default_chaos Mc.Supervise.Kill ~seed:5)
         ~worker_argv ~params spec)
  in
  check_bool "resumed supervised run completes" false resumed.Mc.Distrib.partial;
  check_bool "interrupt + chaos resume is bit-identical to serial" true
    (result_equal serial.Mc.Distrib.result resumed.Mc.Distrib.result);
  check_bool "stats identical after the full cycle" true
    (serial.Mc.Distrib.stats = resumed.Mc.Distrib.stats)

let test_supervised_immediate_stop () =
  let cfg = config ~n:5 ~t:2 in
  let spec = e2e_spec cfg in
  let params = J.Obj [ ("test", J.String "supervise-stop") ] in
  let stopped =
    run_ok "stopped"
      (Mc.Distrib.run_supervised
         ~should_stop:(fun () -> true)
         ~workers:2 ~worker_argv:(e2e_worker_argv cfg) ~params spec)
  in
  check_bool "immediate stop reports PARTIAL" true stopped.Mc.Distrib.partial;
  check_int "nothing completed" 0 (List.length stopped.Mc.Distrib.completed)

let () =
  Alcotest.run "supervise"
    [
      ( "scripted workers",
        [
          Alcotest.test_case "completes in order" `Quick
            test_supervise_completes_in_order;
          Alcotest.test_case "death and retry" `Quick
            test_supervise_death_and_retry;
          Alcotest.test_case "poison task bounded retry" `Quick
            test_supervise_poison_task_bounded_retry;
          Alcotest.test_case "stall rescued by timeout" `Quick
            test_supervise_stall_rescued_by_timeout;
          Alcotest.test_case "should_stop partitions tasks" `Quick
            test_supervise_should_stop_partitions;
          Alcotest.test_case "chaos converges" `Quick
            test_supervise_chaos_converges;
        ] );
      ( "sweep-worker binary",
        [
          Alcotest.test_case "chaos / interrupt / resume cycle" `Quick
            test_sweep_worker_end_to_end;
          Alcotest.test_case "immediate stop" `Quick
            test_supervised_immediate_stop;
        ] );
    ]
