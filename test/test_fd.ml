open Kernel
open Helpers

let plan ?(crashes = []) ?(lost = []) ?(delayed = []) () =
  {
    Sim.Schedule.crashes = List.map Pid.of_int crashes;
    lost = List.map (fun (a, b) -> (Pid.of_int a, Pid.of_int b)) lost;
    delayed =
      List.map
        (fun (a, b, r) -> (Pid.of_int a, Pid.of_int b, Round.of_int r))
        delayed;
  }

let es ~gst plans =
  Sim.Schedule.make ~model:Sim.Model.Es ~gst:(Round.of_int gst) plans

let c52 = config ~n:5 ~t:2

let output cfg s ~receiver ~round =
  Fd.Simulate.output cfg s ~receiver:(Pid.of_int receiver)
    ~round:(Round.of_int round)

let test_kind () =
  check_string "P" "P" (Fd.Kind.to_string Fd.Kind.P);
  check_string "<>P" "<>P" (Fd.Kind.to_string Fd.Kind.Diamond_p);
  check_string "<>S" "<>S" (Fd.Kind.to_string Fd.Kind.Diamond_s);
  check_bool "equal" true (Fd.Kind.equal Fd.Kind.P Fd.Kind.P);
  check_bool "distinct" false (Fd.Kind.equal Fd.Kind.P Fd.Kind.Diamond_s)

let test_output_quiet () =
  check_bool "nobody suspected" true
    (Pid.Set.is_empty (output c52 quiet_es ~receiver:1 ~round:1))

let test_output_crashed_sender () =
  let s = es ~gst:1 [ plan ~crashes:[ 2 ] ~lost:[ (2, 1) ] () ] in
  check_bool "suspected at crash round when lost" true
    (Pid.Set.mem (Pid.of_int 2) (output c52 s ~receiver:1 ~round:1));
  check_bool "not suspected by a receiver that heard it" false
    (Pid.Set.mem (Pid.of_int 2) (output c52 s ~receiver:3 ~round:1));
  check_bool "suspected forever after" true
    (Pid.Set.mem (Pid.of_int 2) (output c52 s ~receiver:3 ~round:2))

let test_output_delay_is_false_suspicion () =
  let s = es ~gst:3 [ plan ~delayed:[ (1, 3, 4) ] () ] in
  check_bool "delayed message means suspicion" true
    (Pid.Set.mem (Pid.of_int 1) (output c52 s ~receiver:3 ~round:1));
  check_bool "only at that round" false
    (Pid.Set.mem (Pid.of_int 1) (output c52 s ~receiver:3 ~round:2))

let test_output_self () =
  let s = es ~gst:3 [ plan ~delayed:[ (1, 3, 4) ] () ] in
  check_bool "never self-suspect" false
    (Pid.Set.mem (Pid.of_int 3) (output c52 s ~receiver:3 ~round:1))

let test_output_rejects_crashed_receiver () =
  let s = es ~gst:1 [ plan ~crashes:[ 2 ] () ] in
  match output c52 s ~receiver:2 ~round:1 with
  | (_ : Pid.Set.t) -> Alcotest.fail "should reject"
  | exception Invalid_argument _ -> ()

let test_history () =
  let s =
    es ~gst:1
      [ plan ~crashes:[ 5 ] ~lost:[ (5, 1); (5, 2); (5, 3); (5, 4) ] () ]
  in
  let h = Fd.Simulate.history c52 s ~rounds:2 in
  (* 4 survivors x 2 rounds; p5 completes nothing. *)
  check_int "entries" 8 (List.length h);
  check_bool "p5 suspected by all in round 1" true
    (List.for_all
       (fun (_, r, out) -> Round.to_int r <> 1 || Pid.Set.mem (Pid.of_int 5) out)
       h)

let test_stabilisation () =
  check_int "quiet stabilises immediately" 1
    (Round.to_int (Fd.Simulate.stabilisation_round c52 quiet_es));
  let s = es ~gst:3 [ plan ~delayed:[ (1, 3, 4) ] () ] in
  check_bool "delay pushes stabilisation past round 1" true
    (Round.to_int (Fd.Simulate.stabilisation_round c52 s) > 1)

let test_check_quiet () =
  let r = Fd.Check.strong_completeness c52 quiet_es in
  check_bool "completeness" true r.Fd.Check.holds;
  let r = Fd.Check.eventual_strong_accuracy c52 quiet_es in
  check_bool "<>P accuracy" true r.Fd.Check.holds;
  let r, witness = Fd.Check.eventual_weak_accuracy c52 quiet_es in
  check_bool "<>S accuracy" true r.Fd.Check.holds;
  check_bool "<>S witness exists" true (witness <> None);
  let r = Fd.Check.perfect_accuracy c52 quiet_es in
  check_bool "P accuracy" true r.Fd.Check.holds;
  check_int "no false suspicions" 0
    (List.length (Fd.Check.false_suspicions c52 quiet_es))

let test_check_async () =
  let s = es ~gst:3 [ plan ~delayed:[ (1, 3, 4) ] () ] in
  let r = Fd.Check.perfect_accuracy c52 s in
  check_bool "P accuracy broken by a delay" false r.Fd.Check.holds;
  check_bool "counterexample reported" true (r.Fd.Check.counterexample <> None);
  check_int "exactly one false suspicion" 1
    (List.length (Fd.Check.false_suspicions c52 s));
  (match Fd.Check.false_suspicions c52 s with
  | [ (receiver, suspect, round) ] ->
      check_int "receiver" 3 (Pid.to_int receiver);
      check_int "suspect" 1 (Pid.to_int suspect);
      check_int "round" 1 (Round.to_int round)
  | _ -> Alcotest.fail "unexpected count");
  check_bool "<>P still holds" true
    (Fd.Check.eventual_strong_accuracy c52 s).Fd.Check.holds

(* Over random ES schedules: completeness and both eventual accuracies
   always hold, and false suspicions exist iff the run is asynchronous. *)
let prop_random_es =
  qtest ~count:60 "axioms hold on random ES schedules"
    QCheck.(pair int (int_range 1 6))
    (fun (seed, gst) ->
      let rng = Rng.create ~seed in
      let s =
        if gst = 1 then Workload.Random_runs.synchronous_with_delays rng c52 ()
        else Workload.Random_runs.eventually_synchronous rng c52 ~gst ()
      in
      let completeness = (Fd.Check.strong_completeness c52 s).Fd.Check.holds in
      let dp = (Fd.Check.eventual_strong_accuracy c52 s).Fd.Check.holds in
      let ds = (fst (Fd.Check.eventual_weak_accuracy c52 s)).Fd.Check.holds in
      let false_susp = Fd.Check.false_suspicions c52 s in
      completeness && dp && ds
      && (not (Sim.Schedule.synchronous s)) = (false_susp <> []))

let () =
  Alcotest.run "fd"
    [
      ( "simulate",
        [
          Alcotest.test_case "kinds" `Quick test_kind;
          Alcotest.test_case "quiet output" `Quick test_output_quiet;
          Alcotest.test_case "crashed sender" `Quick test_output_crashed_sender;
          Alcotest.test_case "delay = false suspicion" `Quick
            test_output_delay_is_false_suspicion;
          Alcotest.test_case "no self-suspicion" `Quick test_output_self;
          Alcotest.test_case "crashed receiver rejected" `Quick
            test_output_rejects_crashed_receiver;
          Alcotest.test_case "history" `Quick test_history;
          Alcotest.test_case "stabilisation" `Quick test_stabilisation;
        ] );
      ( "check",
        [
          Alcotest.test_case "quiet run" `Quick test_check_quiet;
          Alcotest.test_case "async run" `Quick test_check_async;
          prop_random_es;
        ] );
    ]
