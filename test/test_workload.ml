open Kernel
open Helpers

let c31 = config ~n:3 ~t:1
let c52 = config ~n:5 ~t:2
let c72 = config ~n:7 ~t:2

(* ------------------------------------------------------------------ *)
(* Cascades                                                            *)

let test_chain () =
  let s = Workload.Cascade.chain c52 in
  assert_valid c52 s;
  check_bool "synchronous" true (Sim.Schedule.synchronous s);
  check_int "t crashes" 2 (Sim.Schedule.crash_count s);
  check_bool "victims are p1, p2" true
    (Pid.Set.equal (Sim.Schedule.faulty s) (Pid.Set.of_ints [ 1; 2 ]))

let test_silent_crashes () =
  let s =
    Workload.Cascade.silent_crashes c52
      ~rounds:[ Round.of_int 1; Round.of_int 3 ]
  in
  assert_valid c52 s;
  check_bool "p1 at round 1" true
    (Sim.Schedule.crash_round s (Pid.of_int 1) = Some Round.first);
  check_bool "p2 at round 3" true
    (Sim.Schedule.crash_round s (Pid.of_int 2) = Some (Round.of_int 3));
  (* silent: everything the victim sends that round is lost *)
  check_bool "lost to everyone" true
    (Sim.Schedule.fate s ~src:(Pid.of_int 1) ~dst:(Pid.of_int 4)
       ~round:Round.first
    = Sim.Schedule.Lost)

let test_coordinator_killer () =
  let s = Workload.Cascade.coordinator_killer c52 ~phase_rounds:2 in
  assert_valid c52 s;
  check_bool "p1 dies in round 1" true
    (Sim.Schedule.crash_round s (Pid.of_int 1) = Some Round.first);
  check_bool "p2 dies in round 3" true
    (Sim.Schedule.crash_round s (Pid.of_int 2) = Some (Round.of_int 3))

let test_leader_killer () =
  let s = Workload.Cascade.leader_killer c52 ~f:2 ~stride:2 ~start:(Round.of_int 3) in
  assert_valid c52 s;
  check_bool "p1 at round 3" true
    (Sim.Schedule.crash_round s (Pid.of_int 1) = Some (Round.of_int 3));
  check_bool "p2 at round 5" true
    (Sim.Schedule.crash_round s (Pid.of_int 2) = Some (Round.of_int 5));
  check_bool "f > t rejected" true
    (match Workload.Cascade.leader_killer c52 ~f:3 ~stride:1 ~start:Round.first with
    | (_ : Sim.Schedule.t) -> false
    | exception Invalid_argument _ -> true)

let test_split_brain () =
  let s = Workload.Cascade.split_brain c72 ~k:3 ~f:2 in
  assert_valid c72 s;
  check_int "gst is k+1" 4 (Round.to_int (Sim.Schedule.effective_gst s));
  check_bool "synchronous after k" true
    (Sim.Schedule.synchronous_after s (Round.of_int 3));
  check_int "f crashes" 2 (Sim.Schedule.crash_count s);
  check_int "crashes after k" 2 (Sim.Schedule.crashes_after s (Round.of_int 3))

let test_minority_keeper () =
  let s = Workload.Cascade.minority_keeper c72 ~f:2 in
  assert_valid c72 s;
  check_bool "synchronous" true (Sim.Schedule.synchronous s);
  check_int "f crashes" 2 (Sim.Schedule.crash_count s);
  (* The tightness property it exists for: A(f+2) decides exactly at f+2. *)
  let trace =
    Sim.Runner.run af2 c72
      ~proposals:(Sim.Runner.distinct_proposals c72)
      s
  in
  check_bool "no violations" true (Sim.Props.check trace = []);
  check_int "decides exactly at f+2" 4 (global_round trace);
  check_bool "f out of range rejected" true
    (match Workload.Cascade.minority_keeper c72 ~f:3 with
    | (_ : Sim.Schedule.t) -> false
    | exception Invalid_argument _ -> true)

let test_split_then_minority () =
  List.iter
    (fun (k, f) ->
      let s = Workload.Cascade.split_then_minority c72 ~k ~f in
      assert_valid c72 s;
      let trace =
        Sim.Runner.run af2 c72
          ~proposals:(Sim.Runner.distinct_proposals c72)
          s
      in
      check_bool "no violations" true (Sim.Props.check trace = []);
      check_int
        (Printf.sprintf "k=%d f=%d decides exactly at k+f+2" k f)
        (k + f + 2) (global_round trace))
    [ (0, 1); (0, 2); (2, 0); (2, 2); (4, 1) ]

let test_all_named () =
  List.iter
    (fun (name, s) ->
      (match Sim.Schedule.validate c52 s with
      | Ok () -> ()
      | Error e -> Alcotest.fail (name ^ ": " ^ e));
      check_bool (name ^ " is synchronous") true (Sim.Schedule.synchronous s))
    (Workload.Cascade.all_named c52)

(* ------------------------------------------------------------------ *)
(* Partition                                                           *)

let test_partition () =
  let cfg = config ~n:4 ~t:2 in
  let s = Workload.Partition.split cfg ~until:8 in
  assert_valid cfg s;
  check_bool "not synchronous" false (Sim.Schedule.synchronous s);
  let a, b = Workload.Partition.blocks cfg in
  check_int "block sizes" 2 (List.length a);
  check_int "block sizes" 2 (List.length b);
  (* t < n/2 makes the partition illegal *)
  check_bool "rejected for t < n/2" true
    (match Workload.Partition.split c52 ~until:8 with
    | (_ : Sim.Schedule.t) -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Random generators always produce valid schedules                    *)

let valid cfg s =
  match Sim.Schedule.validate cfg s with Ok () -> true | Error _ -> false

let prop_sync_valid =
  qtest ~count:200 "random synchronous schedules validate" QCheck.int
    (fun seed ->
      let rng = Rng.create ~seed in
      let s = Workload.Random_runs.synchronous rng c52 () in
      valid c52 s && Sim.Schedule.synchronous s)

let prop_sync_delays_valid =
  qtest ~count:200 "random synchronous-with-delays schedules validate"
    QCheck.int (fun seed ->
      let rng = Rng.create ~seed in
      let s = Workload.Random_runs.synchronous_with_delays rng c52 () in
      valid c52 s && Sim.Schedule.synchronous s)

let prop_es_valid =
  qtest ~count:200 "random ES schedules validate"
    QCheck.(pair int (int_range 2 7))
    (fun (seed, gst) ->
      let rng = Rng.create ~seed in
      let s = Workload.Random_runs.eventually_synchronous rng c52 ~gst () in
      valid c52 s)

let prop_sync_after_valid =
  qtest ~count:200 "synchronous-after schedules validate"
    QCheck.(triple int (int_range 0 5) (int_range 0 2))
    (fun (seed, k, f) ->
      let rng = Rng.create ~seed in
      let s = Workload.Random_runs.synchronous_after rng c72 ~k ~f () in
      valid c72 s
      && Sim.Schedule.synchronous_after s (Round.of_int (max k 1))
      && Sim.Schedule.crash_count s = f)

(* The omission generator: schedules validate, stay synchronous, carry an
   explicit sound budget, and declare omitters of the class the fault
   menu permits (disjoint from the crash victims). *)
let prop_with_omissions_valid =
  qtest ~count:200 "random omission schedules validate"
    QCheck.(pair int (int_range 0 2))
    (fun (seed, menu) ->
      let faults =
        match menu with
        | 0 -> Sim.Model.Send_omit_only
        | 1 -> Sim.Model.Recv_omit_only
        | _ -> Sim.Model.Mixed
      in
      let rng = Rng.create ~seed in
      let s = Workload.Random_runs.with_omissions rng c52 ~faults () in
      let class_ok =
        List.for_all
          (fun (_, cls) ->
            match (faults, cls) with
            | Sim.Model.Send_omit_only, Sim.Model.Send_omit -> true
            | Sim.Model.Recv_omit_only, Sim.Model.Recv_omit -> true
            | Sim.Model.Mixed, _ -> true
            | _ -> false)
          (Sim.Schedule.omitters s)
      in
      let budget_ok =
        match Sim.Schedule.budget s with
        | None -> false
        | Some b ->
            b.Sim.Model.t_crash + b.Sim.Model.t_omit <= 2
            && Sim.Schedule.crash_count s <= b.Sim.Model.t_crash
            && Sim.Schedule.omit_count s <= b.Sim.Model.t_omit
      in
      valid c52 s && Sim.Schedule.synchronous s && class_ok && budget_ok
      && Pid.Set.is_empty
           (Pid.Set.inter (Sim.Schedule.faulty s) (Sim.Schedule.omitter_set s)))

(* The omission mutation operators compose with every other operator
   without ever leaving the model. *)
let prop_mutate_omissions_valid =
  qtest ~count:200 "mutations of omission schedules validate" QCheck.int
    (fun seed ->
      let rng = Rng.create ~seed in
      let base =
        Workload.Random_runs.with_omissions rng c52 ~faults:Sim.Model.Mixed ()
      in
      let s = ref base in
      for _ = 1 to 5 do
        s := Workload.Mutate.generator ~base:!s c52 rng
      done;
      valid c52 !s)

let prop_split_brain_valid =
  qtest ~count:100 "split-brain schedules validate"
    QCheck.(triple int (int_range 0 6) (int_range 0 2))
    (fun (_seed, k, f) ->
      let s = Workload.Cascade.split_brain c72 ~k ~f in
      valid c72 s)

let prop_witness_valid =
  qtest ~count:30 "attack witnesses validate"
    QCheck.(int_range 1 4)
    (fun t ->
      let cfg = config ~n:(2 * t + 1) ~t in
      valid cfg (Mc.Attack.witness_schedule cfg)
      && valid cfg (Mc.Attack.solo_split_schedule cfg))

(* ------------------------------------------------------------------ *)
(* Search                                                              *)

let test_search_over () =
  let proposals = Sim.Runner.distinct_proposals c31 in
  let outcome =
    Workload.Search.over ~algo:floodset ~config:c31 ~proposals
      (List.to_seq [ quiet_es; Workload.Cascade.chain c31 ])
  in
  check_int "two runs" 2 outcome.Workload.Search.runs;
  check_int "worst is t+1" 2 outcome.Workload.Search.worst_round;
  check_bool "no violations" true (outcome.Workload.Search.violations = [])

let test_search_over_jobs () =
  (* The parallel fold must produce the outcome of the serial fold — same
     worst schedule, same violations in the same order. *)
  let cfg = config ~n:4 ~t:1 in
  let proposals = Sim.Runner.distinct_proposals cfg in
  let rng = Rng.create ~seed:11 in
  let schedules =
    List.init 30 (fun _ ->
        Workload.Random_runs.eventually_synchronous rng cfg ~gst:4 ())
  in
  let run jobs =
    Workload.Search.over ~jobs ~algo:floodset ~config:cfg ~proposals
      (List.to_seq schedules)
  in
  let serial = run 1 in
  List.iter
    (fun jobs ->
      let par = run jobs in
      check_bool (Printf.sprintf "jobs=%d equals serial" jobs) true
        (serial = par))
    [ 2; 4; 7 ]

let test_search_random () =
  let proposals = Sim.Runner.distinct_proposals c52 in
  let outcome =
    Workload.Search.random_synchronous ~samples:50 ~seed:3 ~algo:at2
      ~config:c52 ~proposals ()
  in
  check_int "runs counted" 50 outcome.Workload.Search.runs;
  check_int "worst is t+2" 4 outcome.Workload.Search.worst_round

let () =
  Alcotest.run "workload"
    [
      ( "cascade",
        [
          Alcotest.test_case "chain" `Quick test_chain;
          Alcotest.test_case "silent" `Quick test_silent_crashes;
          Alcotest.test_case "coordinator killer" `Quick test_coordinator_killer;
          Alcotest.test_case "leader killer" `Quick test_leader_killer;
          Alcotest.test_case "split brain" `Quick test_split_brain;
          Alcotest.test_case "minority keeper tightness" `Quick
            test_minority_keeper;
          Alcotest.test_case "split-then-minority tightness" `Quick
            test_split_then_minority;
          Alcotest.test_case "all named" `Quick test_all_named;
        ] );
      ("partition", [ Alcotest.test_case "split" `Quick test_partition ]);
      ( "generators",
        [
          prop_sync_valid;
          prop_sync_delays_valid;
          prop_es_valid;
          prop_sync_after_valid;
          prop_with_omissions_valid;
          prop_mutate_omissions_valid;
          prop_split_brain_valid;
          prop_witness_valid;
        ] );
      ( "search",
        [
          Alcotest.test_case "over" `Quick test_search_over;
          Alcotest.test_case "over with jobs" `Quick test_search_over_jobs;
          Alcotest.test_case "random" `Quick test_search_random;
        ] );
    ]
