(* The benchmark harness.

   Usage:
     dune exec bench/main.exe            -- everything: all experiment
                                            tables (E1..E10) followed by the
                                            Bechamel micro-benchmarks
     dune exec bench/main.exe e4         -- one experiment table
     dune exec bench/main.exe tables     -- all tables, no micro-benchmarks
     dune exec bench/main.exe micro      -- micro-benchmarks only

   The tables are the paper's reproduced results (paper-vs-measured is
   recorded in EXPERIMENTS.md); the micro-benchmarks measure the simulator's
   wall-clock cost per representative run — one Test.make per experiment
   workload.

   Besides the human tables, `micro` writes a machine-readable
   BENCH_<date>.json next to the current directory: per benchmark the run
   count, mean/stddev wall-clock seconds (measured with our own monotonic
   sampling loop, so the artifact does not depend on Bechamel's OLS
   internals) and — for the simulator workloads — the message and byte
   counts obtained by running the workload once under an
   Obs.Metrics.counting_sink. This file is the perf trajectory the
   regression tooling diffs across commits. *)

open Kernel
open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks: one per experiment's representative workload       *)

let quiet = Sim.Schedule.make ~model:Sim.Model.Es ~gst:Round.first []

let run_once algo config schedule () =
  ignore
    (Sim.Runner.run algo config
       ~proposals:(Sim.Runner.distinct_proposals config)
       schedule)

(* A benchmark workload: the closure Bechamel times, plus (for simulator
   runs) a sink-accepting variant the JSON exporter uses to count messages
   and bytes without re-plumbing every call site. *)
type workload = {
  name : string;
  fn : unit -> unit;
  counted : (Obs.Sink.t -> unit) option;
}

let plain name fn = { name; fn; counted = None }

let bench_of_algo name algo config schedule =
  {
    name;
    fn = run_once algo config schedule;
    counted =
      Some
        (fun sink ->
          ignore
            (Sim.Runner.run ~sink algo config
               ~proposals:(Sim.Runner.distinct_proposals config)
               schedule));
  }

let bench_of_entry name entry config schedule =
  bench_of_algo name entry.Expt.Registry.algo config schedule

let micro_workloads () =
  let c52 = Config.make ~n:5 ~t:2 in
  let c94 = Config.make ~n:9 ~t:4 in
  let c72 = Config.make ~n:7 ~t:2 in
  [
    (* E1: worst-case synchronous runs *)
    bench_of_entry "e1/at2-chain-n5" Expt.Registry.at_plus_2 c52
      (Workload.Cascade.chain c52);
    bench_of_entry "e1/at2-chain-n9" Expt.Registry.at_plus_2 c94
      (Workload.Cascade.chain c94);
    bench_of_entry "e1/hr-coordkill-n5" Expt.Registry.hurfin_raynal c52
      (Workload.Cascade.coordinator_killer c52 ~phase_rounds:2);
    bench_of_entry "e1/ct-coordkill-n5" Expt.Registry.ct_diamond_s c52
      (Workload.Cascade.coordinator_killer c52 ~phase_rounds:4);
    (* E2: the attack schedule *)
    bench_of_entry "e2/ws-witness-n5" Expt.Registry.floodset_ws c52
      (Mc.Attack.witness_schedule c52);
    (* E3: fast decision on the quiet run *)
    bench_of_entry "e3/at2-quiet-n5" Expt.Registry.at_plus_2 c52 quiet;
    bench_of_entry "e3/at2-slowC-quiet-n5" Expt.Registry.at_plus_2_slow c52
      quiet;
    (* E4: an asynchronous run that exercises the fallback *)
    bench_of_entry "e4/ads-solo-n5" Expt.Registry.a_diamond_s c52
      (Mc.Attack.solo_split_schedule c52);
    (* E5: the optimized failure-free path *)
    bench_of_entry "e5/at2opt-quiet-n5" Expt.Registry.at_plus_2_opt c52 quiet;
    (* E6/E7: A(f+2) under the split-brain adversary *)
    bench_of_entry "e6/af2-split-n7" Expt.Registry.af_plus_2 c72
      (Workload.Cascade.split_brain c72 ~k:2 ~f:2);
    bench_of_entry "e7/amr-split-n7" Expt.Registry.amr c72
      (Workload.Cascade.split_brain c72 ~k:2 ~f:2);
    (* E8: failure-detector checking *)
    plain "e8/fd-check-n5" (fun () ->
        let rng = Rng.create ~seed:7 in
        let s = Workload.Random_runs.eventually_synchronous rng c52 ~gst:4 () in
        ignore (Fd.Check.eventual_strong_accuracy c52 s));
    (* E9: the partition demo *)
    (let c42 = Config.make ~n:4 ~t:2 in
     bench_of_algo "e9/ct-naive-partition-n4"
       (Sim.Algorithm.Packed (module Baselines.Ct_naive))
       c42
       (Workload.Partition.split c42 ~until:16));
    (* E10: simulator scaling *)
    bench_of_entry "e10/at2-quiet-n25" Expt.Registry.at_plus_2
      (Config.make ~n:25 ~t:12)
      quiet;
    (* E6: the SCS early decider and the tightness adversary *)
    bench_of_entry "e6/earlyfs-quiet-n5" Expt.Registry.early_floodset c52 quiet;
    bench_of_entry "e6/af2-minority-n7" Expt.Registry.af_plus_2 c72
      (Workload.Cascade.minority_keeper c72 ~f:2);
    (* the DLS basic round model (Section 1.4) *)
    bench_of_entry "dls/quiet-n5" Expt.Registry.dls c52 quiet;
    (* schedule codec round-trip *)
    plain "codec/roundtrip-witness-n5"
      (let w = Mc.Attack.witness_schedule c52 in
       fun () -> ignore (Sim.Codec.decode (Sim.Codec.encode w)));
    (* the Fig. 1 five-run construction *)
    plain "mc/figure1-n3" (fun () ->
        ignore (Mc.Figure1.against_floodset_ws (Config.make ~n:3 ~t:1)));
    (* the model checker itself *)
    plain "mc/exhaustive-sweep-n3" (fun () ->
        let c31 = Config.make ~n:3 ~t:1 in
        ignore
          (Mc.Exhaustive.sweep
             ~algo:Expt.Registry.at_plus_2.Expt.Registry.algo ~config:c31
             ~proposals:(Sim.Runner.distinct_proposals c31)
             ()));
  ]

let micro_tests workloads =
  List.map (fun w -> Test.make ~name:w.name (Staged.stage w.fn)) workloads

(* ------------------------------------------------------------------ *)
(* The mc suite: serial vs incremental vs parallel exhaustive sweeps    *)

(* Three drivers over identical state spaces (the results are
   bit-identical, which the determinism tests assert); what this suite
   tracks is their relative wall-clock cost. The acceptance bar is the
   incremental+parallel sweep at n=5, t=2, jobs=4 beating the serial
   baseline by >= 3x. *)
let mc_jobs = 4

let mc_workloads () =
  let sweep_case tag algo config =
    let proposals = Sim.Runner.distinct_proposals config in
    let prefix = "mc/" ^ tag in
    [
      plain (prefix ^ "/serial") (fun () ->
          ignore (Mc.Exhaustive.sweep ~algo ~config ~proposals ()));
      plain (prefix ^ "/incremental") (fun () ->
          ignore (Mc.Exhaustive.sweep_incremental ~algo ~config ~proposals ()));
      plain
        (Printf.sprintf "%s/parallel-j%d" prefix mc_jobs)
        (fun () ->
          ignore (Mc.Parallel.sweep ~jobs:mc_jobs ~algo ~config ~proposals ()));
    ]
  in
  let at2 = Expt.Registry.at_plus_2.Expt.Registry.algo in
  let floodset = Expt.Registry.floodset.Expt.Registry.algo in
  sweep_case "at2-n4t1" at2 (Config.make ~n:4 ~t:1)
  @ sweep_case "floodset-n4t2" floodset (Config.make ~n:4 ~t:2)
  @ sweep_case "at2-n5t2" at2 (Config.make ~n:5 ~t:2)

(* ------------------------------------------------------------------ *)
(* The mc-reduction suite: none vs dedup vs dedup+sym                   *)

(* All reduced rows compute verdicts observationally equivalent to their
   "/none" sibling (bit-identical for dedup; exact aggregates for
   dedup+sym — the equivalence tests assert both), so this suite measures
   pure reduction win. The rows are on FloodSet, the symmetric workhorse:
   dedup alone is a constant-factor win there, and the binary dedup+sym
   rows carry the >= 5x acceptance bar (2^5 assignments collapse to 6
   orbits). Every reduced row is gated: a reduction that benches slower
   than its unreduced sibling fails the artifact check below. *)
let reduction_workloads () =
  let c52 = Config.make ~n:5 ~t:2 in
  let algo = Expt.Registry.floodset.Expt.Registry.algo in
  let proposals = Sim.Runner.distinct_proposals c52 in
  let single =
    let prefix = "mc-reduction/floodset-n5t2" in
    [
      plain (prefix ^ "/none") (fun () ->
          ignore
            (Mc.Exhaustive.sweep_incremental ~algo ~config:c52 ~proposals ()));
      plain (prefix ^ "/dedup") (fun () ->
          ignore (Mc.Dedup.sweep ~algo ~config:c52 ~proposals ()));
      plain
        (Printf.sprintf "%s/dedup-j%d" prefix mc_jobs)
        (fun () ->
          ignore
            (Mc.Parallel.sweep_dedup ~jobs:mc_jobs ~algo ~config:c52
               ~proposals ()));
    ]
  in
  let binary =
    let prefix = "mc-reduction/floodset-n5t2-binary" in
    [
      plain (prefix ^ "/none") (fun () ->
          ignore (Mc.Exhaustive.sweep_binary_incremental ~algo ~config:c52 ()));
      plain (prefix ^ "/dedup") (fun () ->
          ignore (Mc.Dedup.sweep_binary ~algo ~config:c52 ()));
      plain (prefix ^ "/dedup+sym") (fun () ->
          ignore (Mc.Symmetry.sweep_binary ~algo ~config:c52 ()));
      plain
        (Printf.sprintf "%s/dedup-j%d" prefix mc_jobs)
        (fun () ->
          ignore
            (Mc.Parallel.sweep_binary_dedup ~jobs:mc_jobs ~algo ~config:c52 ()));
      plain
        (Printf.sprintf "%s/dedup+sym-j%d" prefix mc_jobs)
        (fun () ->
          ignore
            (Mc.Parallel.sweep_binary_sym ~jobs:mc_jobs ~algo ~config:c52 ()));
    ]
  in
  let omission =
    (* The omission-fault adversary rides the same no-pessimisation gate:
       its dedup row (keys extended with the omitter bitsets) must at
       least match its unreduced sibling. FloodSet at n=5, t=2 under the
       mixed menu (one crash + one omitter) is large enough that the
       extended keys must actually collapse states to win. *)
    let faults = Sim.Model.Mixed in
    let prefix = "mc-reduction/floodset-n5t2-mixed" in
    [
      plain (prefix ^ "/none") (fun () ->
          ignore
            (Mc.Exhaustive.sweep_incremental ~faults ~algo ~config:c52
               ~proposals ()));
      plain (prefix ^ "/dedup") (fun () ->
          ignore (Mc.Dedup.sweep ~faults ~algo ~config:c52 ~proposals ()));
    ]
  in
  single @ binary @ omission

(* ------------------------------------------------------------------ *)
(* The fuzz suite: campaign throughput, online monitors on vs off       *)

(* Identical seeded campaigns, so both rows execute the same schedules
   through the same engine path; the only difference is the per-decision
   monitor fold and the early abort. The "/monitors-off" row is the
   baseline sibling (like "/serial" in the mc suite), so the JSON
   artifact's speedup_vs_serial field reports the monitor overhead ratio
   directly. *)
let fuzz_workloads () =
  let case tag algo config =
    let proposals = Sim.Runner.distinct_proposals config in
    let campaign monitor () =
      ignore
        (Fuzz.Campaign.run ~monitor ~seed:42 ~runs:60 ~algo ~config ~proposals
           ~gen:Fuzz.Campaign.default_gen ())
    in
    let prefix = "fuzz/" ^ tag in
    [
      plain (prefix ^ "/monitors-off") (campaign false);
      plain (prefix ^ "/monitors-on") (campaign true);
    ]
  in
  let c52 = Config.make ~n:5 ~t:2 in
  case "at2-n5t2" Expt.Registry.at_plus_2.Expt.Registry.algo c52
  @ case "floodset-n5t2" Expt.Registry.floodset.Expt.Registry.algo c52
  @ case "floodset-n9t4" Expt.Registry.floodset.Expt.Registry.algo
      (Config.make ~n:9 ~t:4)

(* ------------------------------------------------------------------ *)
(* The obs suite: instrumentation overhead, off vs each probe kind      *)

(* Sibling rows run the same workload with instrumentation off ("/none")
   and with one instrument enabled each, so the artifact's
   speedup_vs_none column reports each instrument's overhead ratio
   directly. The "/none" rows still pass through the guarded
   disabled-path branches, which is exactly what the committed-baseline
   diff below holds to <= 3% against the pre-instrumentation code. *)
let obs_workloads () =
  let sweep_rows =
    let c42 = Config.make ~n:4 ~t:2 in
    let algo = Expt.Registry.floodset.Expt.Registry.algo in
    let proposals = Sim.Runner.distinct_proposals c42 in
    let sweep ?prof ?spans ?progress () =
      ignore
        (Mc.Dedup.sweep ?prof ?spans ?progress ~algo ~config:c42 ~proposals ())
    in
    let prefix = "obs/dedup-sweep-n4t2" in
    [
      plain (prefix ^ "/none") (fun () -> sweep ());
      plain (prefix ^ "/probe") (fun () -> sweep ~prof:(Obs.Prof.acc ()) ());
      plain (prefix ^ "/progress") (fun () ->
          sweep
            ~progress:
              (Obs.Progress.create ~label:"bench" ~emit:(fun _ -> ()) ())
            ());
      plain (prefix ^ "/spans") (fun () ->
          sweep ~spans:(Obs.Span.recorder ()) ());
    ]
  in
  let run_rows =
    let c52 = Config.make ~n:5 ~t:2 in
    let algo = Expt.Registry.at_plus_2.Expt.Registry.algo in
    let proposals = Sim.Runner.distinct_proposals c52 in
    let run ?prof () =
      ignore (Sim.Runner.run ?prof algo c52 ~proposals quiet)
    in
    let prefix = "obs/at2-quiet-n5" in
    [
      plain (prefix ^ "/none") (fun () -> run ());
      plain (prefix ^ "/probe") (fun () -> run ~prof:(Obs.Prof.acc ()) ());
    ]
  in
  sweep_rows @ run_rows

(* ------------------------------------------------------------------ *)
(* Machine-readable artifact: BENCH_<date>.json                        *)

type bench_row = {
  row_name : string;
  runs : int;
  mean_s : float;
  min_s : float;
      (** best observed run — the load-insensitive statistic ratio gates
          compare, since a single scheduler or disk-latency outlier shifts a
          handful-of-samples mean by whole percents *)
  stddev_s : float;
  messages : int option;
  bytes : int option;
  minor_words : float option;  (** mean per run *)
  promoted_words : float option;  (** mean per run *)
  major_collections : int option;  (** total over the profiled runs *)
}

(* Time one workload: a couple of warmup calls, then sample wall-clock
   durations until we have enough runs or spent the per-benchmark budget. *)
let time_workload w =
  let min_runs = 5 and max_runs = 50 and budget_s = 0.25 in
  w.fn ();
  w.fn ();
  let samples = ref [] in
  let started = Unix.gettimeofday () in
  let continue () =
    let n = List.length !samples in
    n < min_runs || (n < max_runs && Unix.gettimeofday () -. started < budget_s)
  in
  while continue () do
    let t0 = Unix.gettimeofday () in
    w.fn ();
    samples := (Unix.gettimeofday () -. t0) :: !samples
  done;
  let h = Obs.Metrics.histogram (Obs.Metrics.create ()) "wall_clock_s" in
  List.iter (Obs.Metrics.observe h) !samples;
  match Obs.Metrics.summary h with
  | None -> (0, 0., 0., 0.)
  | Some s ->
      (s.Obs.Metrics.count, s.Obs.Metrics.mean, s.Obs.Metrics.min,
       s.Obs.Metrics.stddev)

(* Allocation profile of one workload, in a separate pass *after* timing so
   the timed samples run the exact same code path as pre-profiling
   artifacts. Allocation is deterministic per run, so a few probed
   iterations pin the per-run mean. *)
let alloc_of_workload w =
  let a = Obs.Prof.acc () in
  for _ = 1 to 3 do
    Obs.Prof.measure a w.fn
  done;
  let m = Obs.Metrics.create () in
  Obs.Prof.flush a ~metrics:m ~prefix:"bench" ~per:"run";
  match Obs.Metrics.find_histogram m "bench.minor_words_per_run" with
  | None -> (None, None, None)
  | Some s ->
      let runs = float_of_int s.Obs.Metrics.count in
      let promoted =
        Option.map
          (fun w -> float_of_int w /. runs)
          (Obs.Metrics.find_counter m "bench.promoted_words")
      in
      ( Some s.Obs.Metrics.mean,
        promoted,
        Obs.Metrics.find_counter m "bench.major_collections" )

let cost_of_workload w =
  match w.counted with
  | None -> (None, None)
  | Some counted ->
      let registry = Obs.Metrics.create () in
      counted (Obs.Metrics.counting_sink registry);
      ( Stats.Summary.messages_of_metrics registry,
        Stats.Summary.bytes_of_metrics registry )

let bench_rows workloads =
  List.map
    (fun w ->
      let runs, mean_s, min_s, stddev_s = time_workload w in
      let messages, bytes = cost_of_workload w in
      let minor_words, promoted_words, major_collections =
        alloc_of_workload w
      in
      {
        row_name = w.name;
        runs;
        mean_s;
        min_s;
        stddev_s;
        messages;
        bytes;
        minor_words;
        promoted_words;
        major_collections;
      })
    workloads

(* The baseline sibling row's mean, for speedup annotations: ".../serial"
   in the mc suite ("mc/<case>/<mode>"), ".../monitors-off" in the fuzz
   suite ("fuzz/<case>/monitors-<on|off>") and ".../none" in the
   mc-reduction suite ("mc-reduction/<case>/<reduction>"). *)
let sibling_mean_of rows name suffix =
  match String.rindex_opt name '/' with
  | None -> None
  | Some i ->
      let sibling = String.sub name 0 i ^ suffix in
      if sibling = name then None
      else
        List.find_map
          (fun r -> if r.row_name = sibling then Some r.mean_s else None)
          rows

let serial_mean_of rows name =
  match sibling_mean_of rows name "/serial" with
  | Some m -> Some m
  | None -> sibling_mean_of rows name "/monitors-off"

let none_mean_of rows name = sibling_mean_of rows name "/none"

(* Best-observed sibling time, for overhead gates and [speedup_vs_none]:
   comparing minima instead of means keeps a handful-of-samples gate from
   flaking on one slow run — on a shared runner a noise burst inflates a
   whole row's mean, but rarely all of its samples. *)
let none_min_of rows name =
  match String.rindex_opt name '/' with
  | None -> None
  | Some i ->
      let sibling = String.sub name 0 i ^ "/none" in
      if sibling = name then None
      else
        List.find_map
          (fun r -> if r.row_name = sibling then Some r.min_s else None)
          rows

let json_of_suites ~meta suites =
  let opt_int = function Some i -> Obs.Json.Int i | None -> Obs.Json.Null in
  let opt_float =
    function Some f -> Obs.Json.Float f | None -> Obs.Json.Null
  in
  let json_of_rows rows =
    Obs.Json.List
      (List.map
         (fun r ->
           let speedup =
             match serial_mean_of rows r.row_name with
             | Some serial when r.mean_s > 0. ->
                 Obs.Json.Float (serial /. r.mean_s)
             | _ -> Obs.Json.Null
           in
           let speedup_vs_none =
             (* Best-observed on both sides (see [none_min_of]): this field
                carries the reduction gate and the bench-diff inversion
                verdict, so it must not flake with the runner's noise. *)
             match none_min_of rows r.row_name with
             | Some none when r.min_s > 0. ->
                 Obs.Json.Float (none /. r.min_s)
             | _ -> Obs.Json.Null
           in
           Obs.Json.Obj
             [
               ("name", Obs.Json.String r.row_name);
               ("runs", Obs.Json.Int r.runs);
               ("mean_s", Obs.Json.Float r.mean_s);
               ("min_s", Obs.Json.Float r.min_s);
               ("stddev_s", Obs.Json.Float r.stddev_s);
               ("messages", opt_int r.messages);
               ("bytes", opt_int r.bytes);
               ("minor_words", opt_float r.minor_words);
               ("promoted_words", opt_float r.promoted_words);
               ("major_collections", opt_int r.major_collections);
               ("speedup_vs_serial", speedup);
               ("speedup_vs_none", speedup_vs_none);
             ])
         rows)
  in
  Obs.Json.Obj
    [
      ( "date",
        let tm = Unix.localtime (Unix.time ()) in
        Obs.Json.String
          (Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900)
             (tm.Unix.tm_mon + 1) tm.Unix.tm_mday) );
      ("meta", meta);
      ( "suites",
        Obs.Json.Obj
          (List.map (fun (name, rows) -> (name, json_of_rows rows)) suites) );
    ]

(* Anchor the artifact at the repo root (the nearest ancestor holding
   dune-project), so `make bench` and a bare `dune exec bench/main.exe`
   from any subdirectory agree on where BENCH_<date>.json lands. *)
let repo_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else up parent
  in
  up (Sys.getcwd ())

(* Provenance for trajectory comparisons: which commit, toolchain and
   machine produced the artifact. Best-effort — a missing git binary or a
   tarball checkout just yields a null commit. *)
let git_commit root =
  try
    let cmd =
      Printf.sprintf "git -C %s rev-parse HEAD 2>/dev/null"
        (Filename.quote root)
    in
    let ic = Unix.open_process_in cmd in
    let line = try Some (String.trim (input_line ic)) with End_of_file -> None in
    match (Unix.close_process_in ic, line) with
    | Unix.WEXITED 0, Some c when c <> "" -> Some c
    | _ -> None
  with _ -> None

let meta_json () =
  let commit =
    match Option.bind (repo_root ()) git_commit with
    | Some c -> Obs.Json.String c
    | None -> Obs.Json.Null
  in
  Obs.Json.Obj
    [
      ("commit", commit);
      ("ocaml", Obs.Json.String Sys.ocaml_version);
      ("hostname", Obs.Json.String (Unix.gethostname ()));
      ("default_jobs", Obs.Json.Int (Par.default_jobs ()));
    ]

let write_bench_json suites =
  let tm = Unix.localtime (Unix.time ()) in
  let name =
    Printf.sprintf "BENCH_%04d-%02d-%02d.json" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
  in
  let path =
    match repo_root () with
    | Some root -> Filename.concat root name
    | None -> name
  in
  Obs.Artifact.write path (fun oc ->
      output_string oc
        (Obs.Json.to_string (json_of_suites ~meta:(meta_json ()) suites));
      output_char oc '\n');
  Format.printf "bench artifact written to %s@." path

(* Perf-trajectory check against the committed baseline. Prints the
   per-row diff whenever bench/BASELINE.json exists; rows only in one
   artifact (new suites, retired workloads) never fail it. The run exits
   nonzero on a regression only when BENCH_GATE is set — CI runs
   warn-only, a release checklist exports BENCH_GATE=1. The 1.03 default
   bar is the instrumentation disabled-path budget; Bench_diff's 2-sigma
   absolute guard keeps sub-microsecond rows from tripping it on timer
   noise. *)
let check_baseline suites =
  match repo_root () with
  | None -> true
  | Some root -> (
      let path = Filename.concat root "bench/BASELINE.json" in
      if not (Sys.file_exists path) then true
      else
        let contents =
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        match Stats.Bench_diff.artifact_of_string contents with
        | Error e ->
            Format.eprintf "bench baseline %s: %s@." path e;
            true
        | Ok old_ ->
            let new_ =
              {
                Stats.Bench_diff.a_date = None;
                a_suites =
                  List.map
                    (fun (name, rows) ->
                      ( name,
                        List.map
                          (fun r ->
                            {
                              Stats.Bench_diff.e_name = r.row_name;
                              e_mean_s = r.mean_s;
                              e_stddev_s = r.stddev_s;
                              e_minor_words = r.minor_words;
                              e_speedup =
                                (match none_min_of rows r.row_name with
                                | Some none when r.min_s > 0. ->
                                    Some (none /. r.min_s)
                                | _ -> None);
                            })
                          rows ))
                    suites;
              }
            in
            let threshold =
              match
                Option.bind
                  (Sys.getenv_opt "BENCH_GATE_THRESHOLD")
                  float_of_string_opt
              with
              | Some t -> t
              | None -> 1.03
            in
            let report =
              Stats.Bench_diff.diff ~threshold ~old_ ~new_ ()
            in
            Format.printf "Perf trajectory vs %s:@.%a@." path
              Stats.Bench_diff.pp report;
            Stats.Bench_diff.regressions report = []
            || Sys.getenv_opt "BENCH_GATE" = None)

(* ------------------------------------------------------------------ *)
(* Bechamel tables (stdout, unchanged)                                 *)

let micro_rows () =
  let workloads = micro_workloads () in
  let tests = micro_tests workloads in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let table = ref (Stats.Table.make ~headers:[ "benchmark"; "time/run" ]) in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analysis = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let cell =
            match Analyze.OLS.estimates ols_result with
            | Some (est :: _) ->
                if est > 1_000_000.0 then
                  Printf.sprintf "%.2f ms" (est /. 1_000_000.0)
                else if est > 1_000.0 then
                  Printf.sprintf "%.2f us" (est /. 1_000.0)
                else Printf.sprintf "%.0f ns" est
            | Some [] | None -> "-"
          in
          table := Stats.Table.add_row !table [ name; cell ])
        analysis)
    tests;
  Format.printf "Micro-benchmarks (Bechamel, monotonic clock):@.%a@."
    Stats.Table.render !table;
  bench_rows workloads

let mc_rows () =
  let rows = bench_rows (mc_workloads ()) in
  let table =
    List.fold_left
      (fun table r ->
        let speedup =
          match serial_mean_of rows r.row_name with
          | Some serial when r.mean_s > 0. ->
              Printf.sprintf "%.2fx" (serial /. r.mean_s)
          | _ -> "-"
        in
        Stats.Table.add_row table
          [
            r.row_name;
            Printf.sprintf "%.2f ms" (r.mean_s *. 1_000.0);
            speedup;
          ])
      (Stats.Table.make ~headers:[ "sweep"; "time/run"; "vs serial" ])
      rows
  in
  Format.printf
    "Model-checker sweeps (serial vs incremental vs parallel, jobs=%d):@.%a@."
    mc_jobs Stats.Table.render table;
  rows

let reduction_rows () =
  let rows = bench_rows (reduction_workloads ()) in
  let table =
    List.fold_left
      (fun table r ->
        let speedup =
          match none_min_of rows r.row_name with
          | Some none when r.min_s > 0. ->
              Printf.sprintf "%.2fx" (none /. r.min_s)
          | _ -> "-"
        in
        Stats.Table.add_row table
          [
            r.row_name;
            Printf.sprintf "%.2f ms" (r.mean_s *. 1_000.0);
            speedup;
          ])
      (Stats.Table.make ~headers:[ "sweep"; "time/run"; "vs none" ])
      rows
  in
  Format.printf
    "State-space reduction (none vs dedup vs dedup+sym, jobs=%d):@.%a@."
    mc_jobs Stats.Table.render table;
  rows

(* The no-pessimisation gate: every reduced row must at least match its
   unreduced "/none" sibling. Returns the offending rows. *)
(* On a single-core machine the [-jN] rows spawn N domains with nothing
   to run them on, so "parallel at least matches serial" is not a
   property of the code there; exempt them rather than fail every
   1-core container. *)
let parallel_row name =
  let n = String.length name in
  let rec scan i =
    i + 2 <= n && ((name.[i] = '-' && name.[i + 1] = 'j') || scan (i + 1))
  in
  scan 0

let reduction_regressions rows =
  let single_core = Par.default_jobs () < 2 in
  List.filter_map
    (fun r ->
      if single_core && parallel_row r.row_name then None
      else
        match none_min_of rows r.row_name with
        | Some none when r.min_s > 0. && none /. r.min_s < 1.0 ->
            Some (r.row_name, none /. r.min_s)
        | _ -> None)
    rows

let check_reduction_gate rows =
  match reduction_regressions rows with
  | [] -> true
  | slow ->
      List.iter
        (fun (name, speedup) ->
          Format.eprintf
            "reduction gate: %s is %.2fx vs its /none sibling (must be >= \
             1.0)@."
            name speedup)
        slow;
      false

let fuzz_rows () =
  let rows = bench_rows (fuzz_workloads ()) in
  let campaign_runs = 60. in
  let table =
    List.fold_left
      (fun table r ->
        let overhead =
          match serial_mean_of rows r.row_name with
          | Some off when r.mean_s > 0. ->
              Printf.sprintf "%.2fx" (r.mean_s /. off)
          | _ -> "-"
        in
        Stats.Table.add_row table
          [
            r.row_name;
            Printf.sprintf "%.2f ms" (r.mean_s *. 1_000.0);
            (if r.mean_s > 0. then
               Printf.sprintf "%.0f" (campaign_runs /. r.mean_s)
             else "-");
            overhead;
          ])
      (Stats.Table.make
         ~headers:[ "campaign"; "time/run"; "runs/s"; "vs monitors-off" ])
      rows
  in
  Format.printf
    "Fuzz campaigns (60 runs each, online monitors on vs off):@.%a@."
    Stats.Table.render table;
  rows

let obs_rows () =
  let rows = bench_rows (obs_workloads ()) in
  let table =
    List.fold_left
      (fun table r ->
        let overhead =
          match none_mean_of rows r.row_name with
          | Some none when none > 0. ->
              Printf.sprintf "%.3fx" (r.mean_s /. none)
          | _ -> "-"
        in
        Stats.Table.add_row table
          [
            r.row_name;
            Printf.sprintf "%.3f ms" (r.mean_s *. 1_000.0);
            (match r.minor_words with
            | Some w -> Printf.sprintf "%.0f" w
            | None -> "-");
            overhead;
          ])
      (Stats.Table.make
         ~headers:[ "workload"; "time/run"; "minor words"; "vs none" ])
      rows
  in
  Format.printf "Instrumentation overhead (off vs each instrument):@.%a@."
    Stats.Table.render table;
  rows

(* ------------------------------------------------------------------ *)
(* The crash-safety suite: checkpointing overhead on the sweep driver   *)

(* Sibling rows run the same Distrib task loop with checkpointing off
   ("/none") and on ("/checkpoint", snapshotting every 8 shards — the
   CLI's default cadence — to a temp file through the same atomic
   tmp+rename path `ipi sweep --checkpoint` uses). The binary scope is
   the representative checkpoint-worthy workload: its 2^n shards are
   whole per-assignment sweeps, like the long sweeps people actually
   interrupt, rather than sub-millisecond first-choice subtrees. The
   gate below holds the ratio to <= 1.10: serializing completed shards
   must stay in the noise of sweeping them. *)
let crash_safety_workloads () =
  let c52 = Config.make ~n:5 ~t:2 in
  let algo = Expt.Registry.floodset.Expt.Registry.algo in
  let spec =
    {
      Mc.Distrib.faults = Sim.Model.Crash_only;
      omit_budget = None;
      policy = Mc.Serial.Prefixes;
      horizon = None;
      algo;
      config = c52;
      reduce = Mc.Distrib.Rdedup;
      scope = Mc.Distrib.Binary;
      table_cap = None;
      spill_dir = None;
    }
  in
  let params = Obs.Json.Obj [ ("bench", Obs.Json.String "crash-safety") ] in
  let ckpt = Filename.temp_file "ipi-bench-checkpoint" ".json" in
  at_exit (fun () -> try Sys.remove ckpt with Sys_error _ -> ());
  let sweep ?checkpoint () =
    match Mc.Distrib.run_serial ?checkpoint ~params spec with
    | Ok _ -> ()
    | Error msg -> failwith msg
  in
  let prefix = "crash-safety/floodset-n5t2-binary-dedup" in
  [
    plain (prefix ^ "/none") (fun () -> sweep ());
    plain (prefix ^ "/checkpoint") (fun () -> sweep ~checkpoint:(ckpt, 8) ());
  ]

let crash_safety_budget = 1.10

(* Gate on best-observed times: the workload runs for ~100ms and only a
   handful of samples fit the timing budget, so a single disk-latency or
   scheduler outlier in either row's mean swings the ratio by several
   percent. The minimum is what the checkpointing machinery actually
   costs when the machine cooperates, and that is the number the budget
   bounds. *)
let crash_safety_regressions rows =
  List.filter_map
    (fun r ->
      match none_min_of rows r.row_name with
      | Some none when none > 0. && r.min_s /. none > crash_safety_budget ->
          Some (r.row_name, r.min_s /. none)
      | _ -> None)
    rows

let check_crash_safety_gate rows =
  match crash_safety_regressions rows with
  | [] -> true
  | slow ->
      List.iter
        (fun (name, ratio) ->
          Format.eprintf
            "crash-safety gate: %s is %.2fx vs its /none sibling (budget \
             %.2fx)@."
            name ratio crash_safety_budget)
        slow;
      false

(* Interleaved paired sampling. [bench_rows] times each workload in its own
   window, which is fine for display but fatal for a ratio gate on a loaded
   machine: background load drifting between the /none window and the
   /checkpoint window shows up as a phantom overhead (or a phantom speedup)
   of 10-20% on a ~110ms workload. Alternating the two workloads sample by
   sample puts both rows in the same window, so drift hits them equally and
   the min-vs-min ratio reflects the checkpointing machinery alone. *)
let interleaved_rows workloads =
  let workloads = Array.of_list workloads in
  let pairs = 12 in
  Array.iter
    (fun w ->
      w.fn ();
      w.fn ())
    workloads;
  let samples = Array.map (fun _ -> ref []) workloads in
  for _ = 1 to pairs do
    Array.iteri
      (fun i w ->
        let t0 = Unix.gettimeofday () in
        w.fn ();
        samples.(i) := (Unix.gettimeofday () -. t0) :: !(samples.(i)))
      workloads
  done;
  Array.to_list
    (Array.mapi
       (fun i w ->
         let h = Obs.Metrics.histogram (Obs.Metrics.create ()) "wall_clock_s" in
         List.iter (Obs.Metrics.observe h) !(samples.(i));
         let runs, mean_s, min_s, stddev_s =
           match Obs.Metrics.summary h with
           | None -> (0, 0., 0., 0.)
           | Some s ->
               (s.Obs.Metrics.count, s.Obs.Metrics.mean, s.Obs.Metrics.min,
                s.Obs.Metrics.stddev)
         in
         let messages, bytes = cost_of_workload w in
         let minor_words, promoted_words, major_collections =
           alloc_of_workload w
         in
         {
           row_name = w.name;
           runs;
           mean_s;
           min_s;
           stddev_s;
           messages;
           bytes;
           minor_words;
           promoted_words;
           major_collections;
         })
       workloads)

let crash_safety_rows () =
  let rows = interleaved_rows (crash_safety_workloads ()) in
  let table =
    List.fold_left
      (fun table r ->
        let overhead =
          match none_min_of rows r.row_name with
          | Some none when none > 0. ->
              Printf.sprintf "%.3fx" (r.min_s /. none)
          | _ -> "-"
        in
        Stats.Table.add_row table
          [
            r.row_name;
            Printf.sprintf "%.2f ms" (r.mean_s *. 1_000.0);
            Printf.sprintf "%.2f ms" (r.min_s *. 1_000.0);
            overhead;
          ])
      (Stats.Table.make
         ~headers:[ "sweep"; "time/run"; "best/run"; "vs none (best)" ])
      rows
  in
  Format.printf
    "Crash-safety (checkpointing off vs every 8 shards, budget %.2fx on \
     best-observed times):@.%a@."
    crash_safety_budget Stats.Table.render table;
  rows

(* ------------------------------------------------------------------ *)
(* Scaling curve: FloodMin as the engine's zero-allocation witness      *)

(* FloodMin holds the whole system in a converged steady state for as many
   rounds as we ask (its state and messages are physically reused once
   estimates converge), so these rows measure the engine itself: the
   record-free fast path at n far beyond the int-bitset limit, and the
   per-round allocation floor of the in-place tail. *)

let quiet_scs = Sim.Schedule.make ~model:Sim.Model.Scs ~gst:Round.first []

let floodmin_algo ~extra : Sim.Algorithm.packed =
  let module P = struct
    let extra_rounds = extra
  end in
  Sim.Algorithm.Packed (module Baselines.Floodmin.Make (P))

(* [rounds] is the decision round: FloodMin decides at [t + 1 + extra]. The
   default round bound grows with [n], not with [extra], so pin it
   explicitly. *)
let floodmin_workload ~prefix ~n ~t ~rounds =
  let config = Config.make ~n ~t in
  let algo = floodmin_algo ~extra:(rounds - t - 1) in
  let max_rounds = rounds + 5 in
  {
    name = Printf.sprintf "%s/floodmin-n%d-r%d" prefix n rounds;
    fn =
      (fun () ->
        ignore
          (Sim.Runner.run ~max_rounds algo config
             ~proposals:(Sim.Runner.distinct_proposals config)
             quiet_scs));
    (* No counted pass: a counting sink forces the recording engine, which
       at n = 10,000 costs minutes per run, and message counts on a quiet
       FloodMin run are just n^2 * rounds anyway. *)
    counted = None;
  }

(* The steady-state allocation probe: one profiled run, per-round GC
   deltas. The mean amortises the handful of allocating rounds (round 1
   convergence, the decision round, spine rebuilds on halts) over the long
   converged plateau, which is exactly the "steady state" the engine
   advertises. *)
let steady_words_per_round ~n ~t ~rounds =
  let config = Config.make ~n ~t in
  let algo = floodmin_algo ~extra:(rounds - t - 1) in
  let a = Obs.Prof.acc () in
  ignore
    (Sim.Runner.run ~prof:a ~max_rounds:(rounds + 5) algo config
       ~proposals:(Sim.Runner.distinct_proposals config)
       quiet_scs);
  let m = Obs.Metrics.create () in
  Obs.Prof.flush a ~metrics:m ~prefix:"sim" ~per:"round";
  Option.map
    (fun s -> s.Obs.Metrics.mean)
    (Obs.Metrics.find_histogram m "sim.minor_words_per_round")

(* In these rows [minor_words] means words per *round* (from the profiled
   pass above), not per run: that is the number the zero-alloc contract
   bounds, and it is machine-independent. *)
let steady_row ~prefix ~n ~t ~rounds =
  let w = floodmin_workload ~prefix:(prefix ^ "/steady") ~n ~t ~rounds in
  let runs, mean_s, min_s, stddev_s = time_workload w in
  {
    row_name = w.name;
    runs;
    mean_s;
    min_s;
    stddev_s;
    messages = None;
    bytes = None;
    minor_words = steady_words_per_round ~n ~t ~rounds;
    promoted_words = None;
    major_collections = None;
  }

let steady_words_budget = 8.0

(* The zero-alloc gate: deterministic (allocation does not depend on the
   machine), so it is enforced like the reduction gate whenever its rows
   ran. *)
let is_steady_row name =
  let marker = "/steady/" in
  let ln = String.length name and lm = String.length marker in
  let rec scan i = i + lm <= ln && (String.sub name i lm = marker || scan (i + 1)) in
  scan 0

let check_steady_gate rows =
  let offenders =
    List.filter
      (fun r ->
        is_steady_row r.row_name
        && match r.minor_words with
           | Some w -> w > steady_words_budget
           | None -> false)
      rows
  in
  match offenders with
  | [] -> true
  | slow ->
      List.iter
        (fun r ->
          Format.eprintf
            "steady-state gate: %s allocates %.1f minor words/round (budget \
             %.0f)@."
            r.row_name
            (Option.value r.minor_words ~default:0.)
            steady_words_budget)
        slow;
      false

let scaling_workloads ~smoke ~prefix =
  if smoke then [ floodmin_workload ~prefix ~n:100 ~t:2 ~rounds:50 ]
  else
    [
      floodmin_workload ~prefix ~n:100 ~t:2 ~rounds:50;
      floodmin_workload ~prefix ~n:1_000 ~t:2 ~rounds:10;
      floodmin_workload ~prefix ~n:10_000 ~t:1 ~rounds:2;
    ]

let scaling_rows_named ~smoke ~prefix () =
  let rows = bench_rows (scaling_workloads ~smoke ~prefix) in
  let rows = rows @ [ steady_row ~prefix ~n:100 ~t:2 ~rounds:2_000 ] in
  let table =
    List.fold_left
      (fun table r ->
        Stats.Table.add_row table
          [
            r.row_name;
            Printf.sprintf "%.3f ms" (r.mean_s *. 1_000.0);
            (if r.mean_s > 0. then Printf.sprintf "%.0f" (1. /. r.mean_s)
             else "-");
            (match r.minor_words with
            | Some w -> Printf.sprintf "%.1f" w
            | None -> "-");
          ])
      (Stats.Table.make
         ~headers:[ "workload"; "time/run"; "runs/s"; "minor words" ])
      rows
  in
  Format.printf
    "Scaling curve (FloodMin; steady-row minor words are per round):@.%a@."
    Stats.Table.render table;
  rows

let scaling_rows () = scaling_rows_named ~smoke:false ~prefix:"scaling" ()

(* The smoke variant CI runs: n = 100 only, and row names prefixed
   [scaling-smoke/] so they are absent from bench/BASELINE.json — the
   wall-clock columns then cannot trip the time gate on a noisy runner,
   while the deterministic steady-state allocation gate still applies. *)
let scaling_smoke_rows () =
  scaling_rows_named ~smoke:true ~prefix:"scaling-smoke" ()

(* ------------------------------------------------------------------ *)
(* The mc-alloc suite: checker-core allocation per DFS round            *)

(* DESIGN §16's contract in one number: minor words per checker-core
   round over the *distinct* (post-dedup) work of the FloodSet n=5, t=2
   binary dedup sweep — the arena DFS's inner loop, branch
   snapshot/restore included. Like the steady-state row this is
   deterministic (allocation does not depend on the machine), so the gate
   below is unconditional. Before the arena port this row read ≈140
   words/round; the budget holds it at the arena's level. *)
let mc_alloc_words_per_round () =
  let config = Config.make ~n:5 ~t:2 in
  let algo = Expt.Registry.floodset.Expt.Registry.algo in
  let a = Obs.Prof.acc () in
  ignore (Mc.Dedup.sweep_binary ~prof:a ~algo ~config ());
  let m = Obs.Metrics.create () in
  Obs.Prof.flush a ~metrics:m ~prefix:"mc" ~per:"round";
  Option.map
    (fun s -> s.Obs.Metrics.mean)
    (Obs.Metrics.find_histogram m "mc.minor_words_per_round")

let mc_alloc_workload () =
  let config = Config.make ~n:5 ~t:2 in
  let algo = Expt.Registry.floodset.Expt.Registry.algo in
  plain "mc-alloc/floodset-n5t2-binary/dedup" (fun () ->
      ignore (Mc.Dedup.sweep_binary ~algo ~config ()))

let mc_alloc_words_budget = 16.0

(* [minor_words] on this row means words per checker-core *round* over
   distinct work (from the profiled pass), not per run — the
   machine-independent number the arena contract bounds. *)
let mc_alloc_rows () =
  let w = mc_alloc_workload () in
  let runs, mean_s, min_s, stddev_s = time_workload w in
  let words = mc_alloc_words_per_round () in
  let row =
    {
      row_name = w.name;
      runs;
      mean_s;
      min_s;
      stddev_s;
      messages = None;
      bytes = None;
      minor_words = words;
      promoted_words = None;
      major_collections = None;
    }
  in
  Format.printf
    "Checker-core allocation (FloodSet n=5 t=2 binary dedup sweep): %s \
     minor words/round (budget %.0f)@."
    (match words with Some w -> Printf.sprintf "%.2f" w | None -> "-")
    mc_alloc_words_budget;
  [ row ]

(* The checker-core allocation gate: enforced whenever its row ran,
   regardless of BENCH_GATE, exactly like the steady-state gate. A probe
   failure (None) also fails — a gate that cannot read its number must
   not pass. *)
let check_mc_alloc_gate rows =
  List.for_all
    (fun r ->
      if r.row_name <> "mc-alloc/floodset-n5t2-binary/dedup" then true
      else
        match r.minor_words with
        | Some w when w <= mc_alloc_words_budget -> true
        | Some w ->
            Format.eprintf
              "mc-alloc gate: %s allocates %.1f minor words/round (budget \
               %.0f)@."
              r.row_name w mc_alloc_words_budget;
            false
        | None ->
            Format.eprintf "mc-alloc gate: %s has no allocation probe@."
              r.row_name;
            false)
    rows

(* ------------------------------------------------------------------ *)
(* Entry point                                                          *)

let run_tables () = Expt.Suite.run_all Format.std_formatter

(* Run the named benchmark suites (one shared artifact, so `main.exe mc
   mc-reduction` keeps both suites' rows in the same BENCH_<date>.json),
   then apply the reduction gate if its suite ran. *)
let run_suites names =
  let suites =
    List.map
      (fun name ->
        let rows =
          match name with
          | "micro" -> micro_rows ()
          | "mc" -> mc_rows ()
          | "mc-reduction" -> reduction_rows ()
          | "fuzz" -> fuzz_rows ()
          | "obs" -> obs_rows ()
          | "crash-safety" -> crash_safety_rows ()
          | "scaling" -> scaling_rows ()
          | "scaling-smoke" -> scaling_smoke_rows ()
          | "mc-alloc" -> mc_alloc_rows ()
          | _ -> assert false
        in
        (name, rows))
      names
  in
  write_bench_json suites;
  let rows_of suite =
    List.concat_map
      (fun (name, rows) -> if name = suite then rows else [])
      suites
  in
  let reduction_ok = check_reduction_gate (rows_of "mc-reduction") in
  let crash_safety_ok = check_crash_safety_gate (rows_of "crash-safety") in
  let steady_ok =
    check_steady_gate (List.concat_map (fun (_, rows) -> rows) suites)
  in
  let mc_alloc_ok = check_mc_alloc_gate (rows_of "mc-alloc") in
  let baseline_ok = check_baseline suites in
  if
    not
      (reduction_ok && crash_safety_ok && steady_ok && mc_alloc_ok
     && baseline_ok)
  then exit 1

let is_suite = function
  | "micro" | "mc" | "mc-reduction" | "fuzz" | "obs" | "crash-safety"
  | "scaling" | "scaling-smoke" | "mc-alloc" ->
      true
  | _ -> false

let () =
  match Array.to_list Sys.argv with
  | [] | _ :: [] ->
      run_tables ();
      run_suites
        [
          (* mc-alloc is deliberately absent: its row must stay out of
             bench/BASELINE.json so CI can run it under BENCH_GATE=1
             without the wall-clock diff flaking on a shared runner —
             its enforced check is the unconditional words/round gate. *)
          "micro"; "mc"; "mc-reduction"; "fuzz"; "obs"; "crash-safety";
          "scaling";
        ]
  | _ :: [ "tables" ] -> run_tables ()
  | _ :: names when List.for_all is_suite names -> run_suites names
  | _ :: names ->
      List.iter
        (fun name ->
          match Expt.Suite.find name with
          | Some e ->
              e.Expt.Suite.run Format.std_formatter;
              Format.print_newline ()
          | None ->
              Format.eprintf
                "unknown experiment %S (e1..e10, tables, micro, mc, \
                 mc-reduction, fuzz, obs, crash-safety, scaling, \
                 scaling-smoke, mc-alloc)@."
                name;
              exit 2)
        names
