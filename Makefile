# Convenience wrappers over dune. `bench` runs the sweep suites and
# always leaves BENCH_<date>.json at the repo root (the harness anchors
# the artifact at the nearest dune-project, wherever it is launched
# from); `bench-full` additionally runs the experiment tables, the
# micro-benchmarks and the fuzz suite.

.PHONY: all build test bench bench-full verify clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe -- mc mc-reduction

bench-full:
	dune exec bench/main.exe

verify:
	dune exec bin/ipi.exe -- verify

clean:
	dune clean
