# Convenience wrappers over dune. `bench` runs the sweep suites and
# always leaves BENCH_<date>.json at the repo root (the harness anchors
# the artifact at the nearest dune-project, wherever it is launched
# from); `bench-full` additionally runs the experiment tables, the
# micro-benchmarks and the fuzz suite.

.PHONY: all build test bench bench-full bench-baseline verify clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe -- mc mc-reduction

bench-full:
	dune exec bench/main.exe

# Re-pin the committed perf baseline. Runs every suite (so the baseline
# carries the minor_words columns the allocation gates compare against)
# and promotes the fresh artifact to bench/BASELINE.json. Run on quiet,
# mains-powered hardware only — the numbers gate future bench-diff runs.
bench-baseline:
	dune exec bench/main.exe
	cp BENCH_$$(date +%F).json bench/BASELINE.json

verify:
	dune exec bin/ipi.exe -- verify

clean:
	dune clean
