(* A replicated command log built on repeated consensus — the workload the
   paper's introduction motivates: most runs of a real system are
   synchronous, so the consensus at each log slot should be fast then, yet
   must stay safe through the occasional asynchronous spell.

   Five replicas agree slot by slot on which client command to append.
   Each slot is one independent instance of A_{t+2}; slots see different
   network weather (failure-free, crash cascades, asynchronous spells).
   At the end, every live replica must hold the same log.

   Run with:  dune exec examples/replicated_log.exe *)

open Kernel

let commands =
  [|
    "SET x 1";
    "SET y 2";
    "INCR x";
    "DEL y";
    "SET z 9";
    "INCR z";
    "GET-SNAPSHOT";
    "SET x 7";
  |]

(* Encode "replica i proposes command c" as a totally ordered value, the
   paper's assumption 4. *)
let encode config ~proposer ~command_index =
  Value.tag ~proposer ~n:(Config.n config) command_index

let decode config value =
  let command_index, proposer = Value.untag ~n:(Config.n config) value in
  (commands.(command_index mod Array.length commands), proposer)

let weather rng config slot =
  match slot mod 4 with
  | 0 -> Sim.Schedule.make ~model:Sim.Model.Es ~gst:Round.first []
  | 1 -> Workload.Random_runs.synchronous rng config ()
  | 2 -> Workload.Random_runs.eventually_synchronous rng config ~gst:3 ()
  | _ -> Workload.Cascade.chain config

let () =
  let config = Config.make ~n:5 ~t:2 in
  let algo = Sim.Algorithm.Packed (module Indulgent.At_plus_2.Standard) in
  let rng = Rng.create ~seed:2026 in
  let slots = 8 in
  (* logs.(replica).(slot) = the command the replica applied there, if it
     was up to learn it (a replica crashing in one slot's simulation is
     restarted for the next slot). *)
  let logs = Array.make_matrix (Config.n config) slots None in
  Format.printf "replicated log: %d replicas, t = %d, %d slots@.@."
    (Config.n config) (Config.t config) slots;
  for slot = 0 to slots - 1 do
    (* Each replica wants its own command in this slot. *)
    let proposals =
      List.fold_left
        (fun acc p ->
          let command_index = (slot + Pid.to_int p) mod Array.length commands in
          Pid.Map.add p (encode config ~proposer:p ~command_index) acc)
        Pid.Map.empty (Config.processes config)
    in
    let schedule = weather rng config slot in
    Sim.Schedule.validate_exn config schedule;
    let trace = Sim.Runner.run algo config ~proposals schedule in
    (match Sim.Props.check trace with
    | [] -> ()
    | violations ->
        Format.printf "slot %d: CONSENSUS BROKEN %a@." slot
          (Format.pp_print_list Sim.Props.pp_violation)
          violations;
        exit 1);
    let weather_name =
      if Sim.Schedule.failure_free_synchronous schedule then "failure-free"
      else if Sim.Schedule.synchronous schedule then "synchronous"
      else "asynchronous"
    in
    List.iter
      (fun (d : Sim.Trace.decision) ->
        let command, from = decode config d.value in
        logs.(Pid.to_int d.pid - 1).(slot) <-
          Some (Format.asprintf "%s (from %a)" command Pid.pp from))
      trace.Sim.Trace.decisions;
    match trace.Sim.Trace.decisions with
    | { value; round; _ } :: _ ->
        let command, from = decode config value in
        Format.printf "slot %d [%-12s]: %-22s proposed by %a, decided at round %d@."
          slot weather_name command Pid.pp from (Round.to_int round)
    | [] -> Format.printf "slot %d: no decision!@." slot
  done;
  (* No two replicas ever disagree on a slot they both hold, and every slot
     was learnt by someone. *)
  let consistent = ref true in
  for slot = 0 to slots - 1 do
    let entries =
      Array.to_list logs
      |> List.filter_map (fun row -> row.(slot))
      |> List.sort_uniq compare
    in
    match entries with
    | [ _ ] -> ()
    | [] | _ :: _ :: _ -> consistent := false
  done;
  let complete =
    Array.to_list logs
    |> Listx.count (fun row -> Array.for_all Option.is_some row)
  in
  Format.printf
    "@.%d replica(s) hold the complete log; slot-wise consistent: %b@."
    complete !consistent;
  if not !consistent then exit 1
