(* Quickstart: run the paper's algorithm A_{t+2} once and look at the trace.

   Build and run with:  dune exec examples/quickstart.exe *)

open Kernel

let () =
  (* A system of n = 5 processes of which at most t = 2 may crash — the
     indulgent regime requires a majority of correct processes. *)
  let config = Config.make ~n:5 ~t:2 in

  (* Every process proposes a value; p_i proposes i here. *)
  let proposals = Sim.Runner.distinct_proposals config in

  (* A schedule is the adversary's plan. This one crashes one process per
     round, each victim heard by a single survivor — the classic worst case
     for flooding consensus. It is synchronous: failure detection is never
     wrong, merely reporting the crashes. *)
  let schedule = Workload.Cascade.chain config in
  Sim.Schedule.validate_exn config schedule;

  (* Pick the algorithm — the paper's A_{t+2} — and run. *)
  let algo = Sim.Algorithm.Packed (module Indulgent.At_plus_2.Standard) in
  let trace = Sim.Runner.run ~record:true algo config ~proposals schedule in

  Format.printf "%a@.@." Sim.Trace.pp_summary trace;
  Format.printf "%a@.@." Sim.Trace.pp_diagram trace;

  (* Check consensus: validity, uniform agreement, termination. *)
  (match Sim.Props.check trace with
  | [] -> Format.printf "consensus holds.@."
  | violations ->
      List.iter
        (fun v -> Format.printf "VIOLATION: %a@." Sim.Props.pp_violation v)
        violations);

  (* The paper's headline: in every synchronous run A_{t+2} reaches a global
     decision at round t + 2 — one round later than the synchronous-model
     optimum t + 1, and that round is the inherent price of indulgence. *)
  match Sim.Trace.global_decision_round trace with
  | Some r ->
      Format.printf "global decision at round %d (t + 2 = %d)@."
        (Round.to_int r)
        (Config.t config + 2)
  | None -> Format.printf "no decision (unexpected!)@."
