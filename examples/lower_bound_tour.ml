(* A guided tour of the paper's lower bound (Proposition 1): why every
   indulgent consensus algorithm has a synchronous run that needs t + 2
   rounds, told with executable artifacts at n = 3, t = 1.

   Run with:  dune exec examples/lower_bound_tour.exe *)

open Kernel

let fast = Sim.Algorithm.Packed (module Baselines.Floodset_ws)
let indulgent = Sim.Algorithm.Packed (module Indulgent.At_plus_2.Standard)

let () =
  let config = Config.make ~n:3 ~t:1 in
  Format.printf
    "The inherent price of indulgence, executable tour (n=3, t=1)@.@.";

  (* Step 1 — the fast algorithm really is fast: every serial synchronous
     run of FloodSetWS reaches a global decision at t+1 = 2. *)
  let sweep =
    Mc.Exhaustive.sweep_binary ~policy:Mc.Serial.All_subsets ~algo:fast
      ~config ()
  in
  Format.printf
    "1. FloodSetWS over ALL %d serial synchronous runs: decisions in rounds \
     [%d, %d], %d violations.@.   It meets the SCS optimum t+1 = 2.@.@."
    sweep.Mc.Exhaustive.runs sweep.Mc.Exhaustive.min_decision
    sweep.Mc.Exhaustive.max_decision
    (List.length sweep.Mc.Exhaustive.violations);

  (* Step 2 — Lemma 3: some initial configuration is bivalent. *)
  (match Mc.Valency.bivalent_initial ~algo:fast ~config () with
  | Some proposals ->
      let values =
        List.map
          (fun p -> Value.to_int (Pid.Map.find p proposals))
          (Config.processes config)
      in
      Format.printf
        "2. Lemma 3: proposals %a form a BIVALENT initial configuration —@.\
        \   the adversary's crash choices alone steer the decision to 0 or 1.@.@."
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           Format.pp_print_int)
        values
  | None -> Format.printf "2. unexpectedly, no bivalent initial configuration@.");

  (* Step 3 — the frontier: bivalence survives to round t-1 and no further.
     After round t every serial partial run is univalent... *)
  let proposals =
    Sim.Runner.binary_proposals config ~ones:(Pid.Set.of_ints [ 2; 3 ])
  in
  let frontier, _ = Mc.Valency.frontier ~algo:fast ~config ~proposals () in
  Format.printf
    "3. Lemma 4: the bivalence frontier of FloodSetWS is round %d (= t-1).@.\
    \   Every t-round serial partial run is univalent — in the synchronous@.\
    \   world the decision looks settled one round before it is announced.@.@."
    frontier;

  (* Step 4 — but ES lets the adversary fake a crash. The proof-guided
     schedule makes p3 falsely suspect p1 (a delayed message), then crashes
     p2, the only witness of p1's survival. *)
  let report = Mc.Attack.floodset_ws_witness config in
  Format.printf
    "4. The ES attack: delay p1 -> p3 in round 1 (false suspicion), crash p2 \
     in round 2@.   heard only by p1. At the end of round t+1:@.";
  Format.printf "%a@.@." Sim.Trace.pp_diagram report.Mc.Attack.trace;
  List.iter
    (fun v -> Format.printf "   %a@." Sim.Props.pp_violation v)
    report.Mc.Attack.violations;
  Format.printf
    "   p1 cannot distinguish this run from a synchronous run where p3 \
     crashed;@.   p3 cannot distinguish it from one where p1 crashed. Both \
     are wrong.@.@.";

  (* Step 5 — A_{t+2} under the very same schedule. *)
  let survivor = Mc.Attack.run_witness indulgent config in
  let trace = survivor.Mc.Attack.trace in
  Format.printf
    "5. A(t+2) on the SAME schedule: %d violation(s); decisions %a.@."
    (List.length survivor.Mc.Attack.violations)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (d : Sim.Trace.decision) ->
         Format.fprintf ppf "%a=%a@@r%d" Pid.pp d.pid Value.pp d.value
           (Round.to_int d.round)))
    trace.Sim.Trace.decisions;
  Format.printf
    "   The extra round of suspicion exchange detects the ambiguity and \
     falls@.   back to the underlying consensus — safety is preserved.@.@.";

  (* Step 6 — and in synchronous runs A_{t+2} pays exactly one round. *)
  let sweep2 =
    Mc.Exhaustive.sweep_binary ~policy:Mc.Serial.All_subsets ~algo:indulgent
      ~config ()
  in
  Format.printf
    "6. A(t+2) over ALL %d serial synchronous runs: decisions in rounds \
     [%d, %d].@.   t+2 = %d: the inherent price of indulgence is one round.@."
    sweep2.Mc.Exhaustive.runs sweep2.Mc.Exhaustive.min_decision
    sweep2.Mc.Exhaustive.max_decision
    (Config.t config + 2)
