(* Section 4 of the paper: simulating the unreliable failure detectors <>P
   and <>S from the eventually synchronous model, by taking each round's
   suspicions (senders whose round message did not arrive in-round) as the
   detector output.

   This example builds one asynchronous-then-synchronous schedule, prints
   the simulated detector output round by round, and checks the detector
   axioms: strong completeness, eventual strong accuracy (<>P), eventual
   weak accuracy (<>S), and where exactly perfect accuracy (P) fails.

   Run with:  dune exec examples/fd_simulation.exe *)

open Kernel

let () =
  let config = Config.make ~n:4 ~t:1 in
  (* Rounds 1-2 are asynchronous: p1's messages to p4 are delayed. p3
     crashes in round 4 (after the network has stabilised). *)
  let delay dst round until =
    (Pid.of_int 1, Pid.of_int dst, Round.of_int until) |> fun d ->
    ignore round;
    d
  in
  let schedule =
    Sim.Schedule.make ~model:Sim.Model.Es ~gst:(Round.of_int 3)
      [
        { Sim.Schedule.crashes = []; lost = []; delayed = [ delay 4 1 3 ] };
        { Sim.Schedule.crashes = []; lost = []; delayed = [ delay 4 2 3 ] };
        Sim.Schedule.empty_plan;
        {
          Sim.Schedule.crashes = [ Pid.of_int 3 ];
          lost = [ (Pid.of_int 3, Pid.of_int 1) ];
          delayed = [];
        };
      ]
  in
  Sim.Schedule.validate_exn config schedule;
  Format.printf "schedule:@.%a@.@." Sim.Schedule.pp schedule;

  Format.printf "simulated failure-detector output (suspected sets):@.";
  List.iter
    (fun (receiver, round, suspected) ->
      if not (Pid.Set.is_empty suspected) then
        Format.printf "  round %d at %a: %a@." (Round.to_int round) Pid.pp
          receiver Pid.Set.pp suspected)
    (Fd.Simulate.history config schedule ~rounds:6);

  Format.printf "@.axioms:@.";
  let report name (r : Fd.Check.report) =
    Format.printf "  %-28s %s%s@." name
      (if r.Fd.Check.holds then "holds" else "FAILS")
      (match (r.Fd.Check.witness_round, r.Fd.Check.counterexample) with
      | Some w, _ -> Printf.sprintf " (from round %d on)" (Round.to_int w)
      | None, Some (recv, susp, round) ->
          Format.asprintf " (%a falsely suspects %a in round %d)" Pid.pp recv
            Pid.pp susp (Round.to_int round)
      | None, None -> "")
  in
  report "strong completeness" (Fd.Check.strong_completeness config schedule);
  report "<>P eventual strong accuracy"
    (Fd.Check.eventual_strong_accuracy config schedule);
  let ds, candidate = Fd.Check.eventual_weak_accuracy config schedule in
  report "<>S eventual weak accuracy" ds;
  (match candidate with
  | Some p ->
      Format.printf "    (eventually never suspected: %a)@." Pid.pp p
  | None -> ());
  report "P accuracy" (Fd.Check.perfect_accuracy config schedule);
  Format.printf "@.false suspicions (the ambiguity indulgence forgives):@.";
  List.iter
    (fun (receiver, suspect, round) ->
      Format.printf "  %a suspected %a in round %d, but %a had not crashed@."
        Pid.pp receiver Pid.pp suspect (Round.to_int round) Pid.pp suspect)
    (Fd.Check.false_suspicions config schedule)
