(** Aggregates over integer samples (decision rounds, message counts). *)

type t = { count : int; min : int; max : int; mean : float }

val of_list : int list -> t option
(** [None] on the empty list. *)

val pp : Format.formatter -> t -> unit

val messages_of_trace : Sim.Trace.t -> int option
(** Total point-to-point message copies sent in the run: each sender
    broadcasts to all [n] processes every round it participates in. [None]
    when the trace carries no records (run with [~record:true], or count
    through an {!Obs.Metrics.counting_sink} instead). *)

val rounds_to_quiescence : Sim.Trace.t -> int
(** Rounds executed before every surviving process halted. *)

val bytes_of_trace : Sim.Trace.t -> int option
(** Total estimated bytes on the wire (headers plus per-algorithm
    {!Sim.Algorithm.S.wire_size} payload estimates). [None] without
    records. *)

val messages_of_metrics : Obs.Metrics.t -> int option
(** The [sim.messages_sent] counter of a registry fed by
    {!Obs.Metrics.counting_sink} — the record-free way to get the same
    number {!messages_of_trace} computes. *)

val bytes_of_metrics : Obs.Metrics.t -> int option
(** The [sim.bytes_sent] counter, ditto. *)
