(** Aggregates over integer samples (decision rounds, message counts). *)

type t = { count : int; min : int; max : int; mean : float }

val of_list : int list -> t option
(** [None] on the empty list. *)

val pp : Format.formatter -> t -> unit

val messages_of_trace : Sim.Trace.t -> int
(** Total point-to-point message copies sent in the run: each sender
    broadcasts to all [n] processes every round it participates in. The
    trace must carry records (run with [~record:true]); raises
    [Invalid_argument] otherwise. *)

val rounds_to_quiescence : Sim.Trace.t -> int
(** Rounds executed before every surviving process halted. *)

val bytes_of_trace : Sim.Trace.t -> int
(** Total estimated bytes on the wire (headers plus per-algorithm
    {!Sim.Algorithm.S.wire_size} payload estimates). Requires records. *)
