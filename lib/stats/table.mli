(** Column-aligned text tables, the output format of every experiment. *)

type t

val make : headers:string list -> t
val add_row : t -> string list -> t
(** Raises [Invalid_argument] when the row width differs from the header. *)

val add_rows : t -> string list list -> t
val render : Format.formatter -> t -> unit

val cell_int : int -> string
val cell_round : Kernel.Round.t option -> string
(** ["-"] for [None]. *)

val cell_bool : bool -> string
(** ["yes"] / ["no"]. *)

val cell_check : bool -> string
(** ["ok"] / ["FAIL"] — for property columns. *)
