type t = { headers : string list; rev_rows : string list list }

let make ~headers = { headers; rev_rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg
      (Printf.sprintf "Table.add_row: %d cells for %d columns"
         (List.length row) (List.length t.headers));
  { t with rev_rows = row :: t.rev_rows }

let add_rows t rows = List.fold_left add_row t rows

let render ppf t =
  let rows = List.rev t.rev_rows in
  let widths =
    List.fold_left
      (fun widths row ->
        List.map2 (fun w cell -> max w (String.length cell)) widths row)
      (List.map String.length t.headers)
      rows
  in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let print_row row =
    Format.fprintf ppf "| %s |@,"
      (String.concat " | " (List.map2 pad row widths))
  in
  let rule =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
  in
  Format.fprintf ppf "@[<v>%s@," rule;
  print_row t.headers;
  Format.fprintf ppf "%s@," rule;
  List.iter print_row rows;
  Format.fprintf ppf "%s@]" rule

let cell_int = string_of_int

let cell_round = function
  | Some r -> string_of_int (Kernel.Round.to_int r)
  | None -> "-"

let cell_bool b = if b then "yes" else "no"
let cell_check b = if b then "ok" else "FAIL"
