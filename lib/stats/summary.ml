type t = { count : int; min : int; max : int; mean : float }

let of_list = function
  | [] -> None
  | first :: rest as all ->
      let count = List.length all in
      let min, max, sum =
        List.fold_left
          (fun (mn, mx, sum) x -> (Stdlib.min mn x, Stdlib.max mx x, sum + x))
          (first, first, first)
          rest
      in
      Some { count; min; max; mean = float_of_int sum /. float_of_int count }

let pp ppf s =
  Format.fprintf ppf "n=%d min=%d max=%d mean=%.2f" s.count s.min s.max s.mean

(* A record-free trace of a non-trivial run carries no cost information; the
   old behaviour (Invalid_argument) turned a missing ~record:true into a
   crash deep inside an experiment. [None] lets callers degrade: compute the
   costs from an Obs event stream, or print "-". *)
let messages_of_trace (trace : Sim.Trace.t) =
  match trace.records with
  | [] when trace.rounds_executed > 0 -> None
  | records ->
      let n = Kernel.Config.n trace.config in
      Some
        (List.fold_left
           (fun acc (r : Sim.Trace.round_record) ->
             acc + (List.length r.senders * n))
           0 records)

let rounds_to_quiescence (trace : Sim.Trace.t) = trace.rounds_executed

let bytes_of_trace (trace : Sim.Trace.t) =
  match trace.records with
  | [] when trace.rounds_executed > 0 -> None
  | records ->
      Some
        (List.fold_left
           (fun acc (r : Sim.Trace.round_record) -> acc + r.bytes_sent)
           0 records)

let messages_of_metrics metrics =
  Obs.Metrics.find_counter metrics "sim.messages_sent"

let bytes_of_metrics metrics = Obs.Metrics.find_counter metrics "sim.bytes_sent"
