(** Bench-trajectory regression detection.

    Compares two bench artifacts ([BENCH_<date>.json], or the committed
    [bench/BASELINE.json]) row by row and flags regressions. Rows are
    matched on [(suite, name)]; rows present in only one artifact are
    listed, never treated as regressions — adding or retiring a workload
    must not fail the gate.

    A {e time} regression requires both a relative and an absolute
    signal: [new/old > threshold] {b and}
    [new - old > noise_sigma * max(stddev_old, stddev_new)] — micro
    rows in the hundreds of nanoseconds jitter far past any reasonable
    ratio, and the stddev guard keeps them from tripping the gate.
    An {e alloc} regression ([minor_words] ratio) only fires when both
    sides report at least [min_words] words: allocation counts are
    deterministic, but tiny rows ratio wildly on a few boxed floats.
    Old artifacts without alloc columns simply have no alloc verdicts.

    Rows carrying [speedup_vs_none] (the reduced sweeps, measured against
    their unreduced sibling in the same artifact) get one more verdict:
    a row whose reduction was a win ([>= 1x]) in the old artifact must
    still be one in the new. The ratio itself is allowed to compress —
    speeding up the shared checker core legitimately shrinks every
    reduction's edge — but a reduction inverting into a pessimisation
    regresses the diff even when the row's absolute time improved. The
    inversion must clear [threshold] ([new * threshold < 1]), shielding
    overhead-style rows that sit at ~1x by design from boundary noise. *)

type entry = {
  e_name : string;
  e_mean_s : float;
  e_stddev_s : float;
  e_minor_words : float option;  (** mean minor words per run, if recorded *)
  e_speedup : float option;  (** [speedup_vs_none], reduced rows only *)
}

type artifact = {
  a_date : string option;
  a_suites : (string * entry list) list;  (** in artifact order *)
}

type row = {
  suite : string;
  name : string;
  old_mean_s : float;
  new_mean_s : float;
  time_ratio : float;  (** [new/old]; [nan] when [old] is [0] *)
  old_stddev_s : float;
  new_stddev_s : float;
  old_minor_words : float option;
  new_minor_words : float option;
  alloc_ratio : float option;  (** only when both sides report words *)
  old_speedup : float option;
  new_speedup : float option;
  time_regressed : bool;
  alloc_regressed : bool;
  speedup_lost : bool;
      (** old speedup [>= 1x] but new clearly below [1x] (past [threshold]) *)
}

type report = {
  rows : row list;  (** matched rows, in new-artifact order *)
  only_old : string list;  (** ["suite/name"] rows dropped in [new] *)
  only_new : string list;  (** ["suite/name"] rows absent from [old] *)
  threshold : float;
  alloc_threshold : float;
}

val artifact_of_json : Obs.Json.t -> (artifact, string) result
(** Reads either artifact generation: rows need [name], [mean_s] and
    [stddev_s]; [minor_words] is optional ([null] or absent in
    pre-profiling artifacts). *)

val artifact_of_string : string -> (artifact, string) result

val diff :
  ?threshold:float ->
  ?alloc_threshold:float ->
  ?noise_sigma:float ->
  ?min_words:float ->
  old_:artifact ->
  new_:artifact ->
  unit ->
  report
(** Defaults: [threshold = 1.25], [alloc_threshold = 1.10],
    [noise_sigma = 2.0], [min_words = 1000.]. *)

val regressions : report -> row list
(** The rows with either verdict set — nonempty means the gate fails. *)

val pp : Format.formatter -> report -> unit
(** Per-row delta table (time, ratio, alloc ratio, verdict) followed by
    only-old/only-new notes and a one-line summary. *)

val to_json : report -> Obs.Json.t
