type entry = {
  e_name : string;
  e_mean_s : float;
  e_stddev_s : float;
  e_minor_words : float option;
  e_speedup : float option;
}

type artifact = {
  a_date : string option;
  a_suites : (string * entry list) list;
}

type row = {
  suite : string;
  name : string;
  old_mean_s : float;
  new_mean_s : float;
  time_ratio : float;
  old_stddev_s : float;
  new_stddev_s : float;
  old_minor_words : float option;
  new_minor_words : float option;
  alloc_ratio : float option;
  old_speedup : float option;
  new_speedup : float option;
  time_regressed : bool;
  alloc_regressed : bool;
  speedup_lost : bool;
}

type report = {
  rows : row list;
  only_old : string list;
  only_new : string list;
  threshold : float;
  alloc_threshold : float;
}

let ( let* ) = Result.bind

let entry_of_json j =
  let field name conv =
    match Option.bind (Obs.Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "bench row: missing or bad %S" name)
  in
  let* e_name = field "name" Obs.Json.to_string_opt in
  let* e_mean_s = field "mean_s" Obs.Json.to_float_opt in
  let* e_stddev_s = field "stddev_s" Obs.Json.to_float_opt in
  let e_minor_words =
    Option.bind (Obs.Json.member "minor_words" j) Obs.Json.to_float_opt
  in
  let e_speedup =
    Option.bind (Obs.Json.member "speedup_vs_none" j) Obs.Json.to_float_opt
  in
  Ok { e_name; e_mean_s; e_stddev_s; e_minor_words; e_speedup }

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let artifact_of_json j =
  let a_date =
    Option.bind (Obs.Json.member "date" j) Obs.Json.to_string_opt
  in
  let* suites =
    match Obs.Json.member "suites" j with
    | Some (Obs.Json.Obj fields) -> Ok fields
    | Some _ -> Error "bench artifact: \"suites\" is not an object"
    | None -> Error "bench artifact: missing \"suites\""
  in
  let* a_suites =
    map_result
      (fun (suite, rows) ->
        match Obs.Json.to_list_opt rows with
        | None ->
            Error (Printf.sprintf "bench suite %S: rows are not a list" suite)
        | Some rows ->
            let* entries = map_result entry_of_json rows in
            Ok (suite, entries))
      suites
  in
  Ok { a_date; a_suites }

let artifact_of_string s =
  let* j = Obs.Json.of_string s in
  artifact_of_json j

let keys artifact =
  List.concat_map
    (fun (suite, entries) -> List.map (fun e -> (suite, e)) entries)
    artifact.a_suites

let diff ?(threshold = 1.25) ?(alloc_threshold = 1.10) ?(noise_sigma = 2.0)
    ?(min_words = 1000.) ~old_ ~new_ () =
  let old_keys = keys old_ and new_keys = keys new_ in
  let find ks suite name =
    List.find_opt (fun (s, e) -> s = suite && e.e_name = name) ks
  in
  let rows =
    List.filter_map
      (fun (suite, n) ->
        match find old_keys suite n.e_name with
        | None -> None
        | Some (_, o) ->
            let time_ratio =
              if o.e_mean_s > 0. then n.e_mean_s /. o.e_mean_s else Float.nan
            in
            let noise =
              noise_sigma *. Float.max o.e_stddev_s n.e_stddev_s
            in
            let time_regressed =
              o.e_mean_s > 0.
              && time_ratio > threshold
              && n.e_mean_s -. o.e_mean_s > noise
            in
            let alloc_ratio, alloc_regressed =
              match (o.e_minor_words, n.e_minor_words) with
              | Some ow, Some nw when ow > 0. ->
                  let r = nw /. ow in
                  ( Some r,
                    ow >= min_words && nw >= min_words && r > alloc_threshold
                  )
              | _ -> (None, false)
            in
            (* A reduced row whose speedup over its unreduced sibling was a
               win (>= 1x) in the old artifact must still be one: ratios
               compress legitimately when the shared core speeds the
               sibling up, but a reduction inverting into a pessimisation
               is a regression no matter what the absolute times did. The
               inversion must clear [threshold], for the same reason the
               time verdict does: overhead-style rows (instrumentation,
               checkpointing) sit at ~1x by design and would flip sign on
               boundary noise. *)
            let speedup_lost =
              match (o.e_speedup, n.e_speedup) with
              | Some os, Some ns -> os >= 1.0 && ns *. threshold < 1.0
              | _ -> false
            in
            Some
              {
                suite;
                name = n.e_name;
                old_mean_s = o.e_mean_s;
                new_mean_s = n.e_mean_s;
                time_ratio;
                old_stddev_s = o.e_stddev_s;
                new_stddev_s = n.e_stddev_s;
                old_minor_words = o.e_minor_words;
                new_minor_words = n.e_minor_words;
                alloc_ratio;
                old_speedup = o.e_speedup;
                new_speedup = n.e_speedup;
                time_regressed;
                alloc_regressed;
                speedup_lost;
              })
      new_keys
  in
  let only side other =
    List.filter_map
      (fun (suite, e) ->
        match find other suite e.e_name with
        | Some _ -> None
        | None -> Some (suite ^ "/" ^ e.e_name))
      side
  in
  {
    rows;
    only_old = only old_keys new_keys;
    only_new = only new_keys old_keys;
    threshold;
    alloc_threshold;
  }

let regressions report =
  List.filter
    (fun r -> r.time_regressed || r.alloc_regressed || r.speedup_lost)
    report.rows

let cell_seconds s =
  if s >= 1. then Printf.sprintf "%.3fs"s
  else if s >= 1e-3 then Printf.sprintf "%.3fms" (s *. 1e3)
  else Printf.sprintf "%.1fus" (s *. 1e6)

let cell_ratio = function
  | None -> "-"
  | Some r when Float.is_nan r -> "-"
  | Some r -> Printf.sprintf "%.3fx" r

let verdict r =
  let parts =
    (if r.time_regressed then [ "TIME" ] else [])
    @ (if r.alloc_regressed then [ "ALLOC" ] else [])
    @ if r.speedup_lost then [ "SPEEDUP" ] else []
  in
  if parts = [] then "ok" else String.concat "+" parts

let cell_speedups old_ new_ =
  match (old_, new_) with
  | None, None -> "-"
  | o, n ->
      let one = function None -> "-" | Some s -> Printf.sprintf "%.2fx" s in
      one o ^ "->" ^ one n

let pp ppf report =
  let speedups =
    List.exists
      (fun r -> r.old_speedup <> None || r.new_speedup <> None)
      report.rows
  in
  let table =
    List.fold_left
      (fun t r ->
        Table.add_row t
          ([
             r.suite ^ "/" ^ r.name;
             cell_seconds r.old_mean_s;
             cell_seconds r.new_mean_s;
             cell_ratio (Some r.time_ratio);
             cell_ratio r.alloc_ratio;
           ]
          @ (if speedups then [ cell_speedups r.old_speedup r.new_speedup ]
             else [])
          @ [ verdict r ]))
      (Table.make
         ~headers:
           ([ "workload"; "old"; "new"; "time"; "alloc" ]
           @ (if speedups then [ "vs-none" ] else [])
           @ [ "verdict" ]))
      report.rows
  in
  Table.render ppf table;
  let note label = function
    | [] -> ()
    | names ->
        Format.fprintf ppf "@,%s: %s" label (String.concat ", " names)
  in
  Format.pp_open_vbox ppf 0;
  note "only in old" report.only_old;
  note "only in new" report.only_new;
  let n = List.length (regressions report) in
  Format.fprintf ppf
    "@,%d regression(s) at time>%.2fx alloc>%.2fx speedup-vs-none<1x over %d \
     matched row(s)"
    n report.threshold report.alloc_threshold
    (List.length report.rows);
  Format.pp_close_box ppf ()

let opt_float = function
  | None -> Obs.Json.Null
  | Some v -> Obs.Json.Float v

let row_to_json r =
  Obs.Json.Obj
    [
      ("suite", Obs.Json.String r.suite);
      ("name", Obs.Json.String r.name);
      ("old_mean_s", Obs.Json.Float r.old_mean_s);
      ("new_mean_s", Obs.Json.Float r.new_mean_s);
      ("time_ratio", Obs.Json.Float r.time_ratio);
      ("old_minor_words", opt_float r.old_minor_words);
      ("new_minor_words", opt_float r.new_minor_words);
      ("alloc_ratio", opt_float r.alloc_ratio);
      ("old_speedup", opt_float r.old_speedup);
      ("new_speedup", opt_float r.new_speedup);
      ("time_regressed", Obs.Json.Bool r.time_regressed);
      ("alloc_regressed", Obs.Json.Bool r.alloc_regressed);
      ("speedup_lost", Obs.Json.Bool r.speedup_lost);
    ]

let to_json report =
  Obs.Json.Obj
    [
      ("threshold", Obs.Json.Float report.threshold);
      ("alloc_threshold", Obs.Json.Float report.alloc_threshold);
      ("rows", Obs.Json.List (List.map row_to_json report.rows));
      ( "only_old",
        Obs.Json.List
          (List.map (fun s -> Obs.Json.String s) report.only_old) );
      ( "only_new",
        Obs.Json.List
          (List.map (fun s -> Obs.Json.String s) report.only_new) );
      ("regressions", Obs.Json.Int (List.length (regressions report)));
    ]
