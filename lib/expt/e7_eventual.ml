open Kernel

let name = "e7"
let title = "E7: fast eventual decision - k+f+2 vs k+2f+2"

type row = {
  k : int;
  f : int;
  af2_worst : int;
  af2_bound : int;
  amr_worst : int;
  amr_bound : int;
}

let worst entry config ~k ~f ~samples ~seed =
  let proposals = Sim.Runner.distinct_proposals config in
  let algo = entry.Registry.algo in
  let rng = Rng.create ~seed in
  let random =
    Seq.init samples (fun _ ->
        Workload.Random_runs.synchronous_after rng config ~k ~f ())
  in
  let crafted =
    List.to_seq
      [
        Workload.Cascade.split_brain config ~k ~f;
        Workload.Cascade.split_then_minority config ~k ~f;
      ]
  in
  let outcome =
    Workload.Search.over ~algo ~config ~proposals (Seq.append crafted random)
  in
  (match outcome.Workload.Search.violations with
  | [] -> ()
  | (s, vs) :: _ ->
      failwith
        (Format.asprintf "%s: %a under %a" entry.Registry.label
           (Format.pp_print_list Sim.Props.pp_violation)
           vs Sim.Schedule.pp s));
  outcome.Workload.Search.worst_round

let measure ?(seed = 61) ?(samples = 100) config ~ks =
  List.concat_map
    (fun k ->
      List.map
        (fun f ->
          {
            k;
            f;
            af2_worst = worst Registry.af_plus_2 config ~k ~f ~samples ~seed;
            af2_bound = k + f + 2;
            amr_worst = worst Registry.amr config ~k ~f ~samples ~seed;
            amr_bound = k + (2 * f) + 2;
          })
        (Listx.range 0 (Config.t config)))
    ks

let run ppf =
  let config = Config.make ~n:7 ~t:2 in
  let rows = measure config ~ks:[ 0; 2; 4 ] in
  let table =
    List.fold_left
      (fun table r ->
        Stats.Table.add_row table
          [
            Stats.Table.cell_int r.k;
            Stats.Table.cell_int r.f;
            Stats.Table.cell_int r.af2_worst;
            Stats.Table.cell_int r.af2_bound;
            Stats.Table.cell_check (r.af2_worst <= r.af2_bound);
            Stats.Table.cell_int r.amr_worst;
            Stats.Table.cell_int r.amr_bound;
            Stats.Table.cell_check (r.amr_worst <= r.amr_bound);
          ])
      (Stats.Table.make
         ~headers:
           [
             "k";
             "f";
             "A(f+2)";
             "k+f+2";
             "in bound";
             "AMR";
             "k+2f+2";
             "in bound";
           ])
      rows
  in
  Format.fprintf ppf "@[<v>%s (n=7, t=2 = 3t+1 regime)@,%a@,@]" title
    Stats.Table.render table
