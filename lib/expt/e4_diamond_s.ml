open Kernel

let name = "e4"
let title = "E4: A<>S under a gst sweep (vs Hurfin-Raynal alone)"

type row = {
  gst : int;
  a_ds_worst : int;
  hr_worst : int;
  a_ds_safe : bool;
  hr_safe : bool;
  all_terminated : bool;
}

let worst_over entry config ~gst ~samples ~seed =
  let proposals = Sim.Runner.distinct_proposals config in
  let rng = Rng.create ~seed in
  let schedules =
    Seq.init samples (fun _ ->
        if gst = 1 then Workload.Random_runs.synchronous_with_delays rng config ()
        else Workload.Random_runs.eventually_synchronous rng config ~gst ())
  in
  let outcome =
    Workload.Search.over ~algo:entry.Registry.algo ~config ~proposals schedules
  in
  let unterminated =
    List.exists
      (fun (_, vs) ->
        List.exists
          (function
            | Sim.Props.Termination _ | Sim.Props.Unsettled _ -> true
            | _ -> false)
          vs)
      outcome.Workload.Search.violations
  in
  let unsafe =
    List.exists
      (fun (_, vs) ->
        List.exists
          (function
            | Sim.Props.Validity _ | Sim.Props.Agreement _ -> true
            | _ -> false)
          vs)
      outcome.Workload.Search.violations
  in
  (outcome.Workload.Search.worst_round, not unsafe, not unterminated)

let measure ?(seed = 31) ?(samples = 120) config gsts =
  List.map
    (fun gst ->
      let a_ds_worst, a_ds_safe, a_ds_term =
        worst_over Registry.a_diamond_s config ~gst ~samples ~seed
      in
      let hr_worst, hr_safe, hr_term =
        worst_over Registry.hurfin_raynal config ~gst ~samples ~seed
      in
      {
        gst;
        a_ds_worst;
        hr_worst;
        a_ds_safe;
        hr_safe;
        all_terminated = a_ds_term && hr_term;
      })
    gsts

let run ppf =
  let config = Config.make ~n:5 ~t:2 in
  let rows = measure config [ 1; 2; 4; 6; 8 ] in
  let table =
    List.fold_left
      (fun table r ->
        Stats.Table.add_row table
          [
            Stats.Table.cell_int r.gst;
            Stats.Table.cell_int r.a_ds_worst;
            Stats.Table.cell_int r.hr_worst;
            Stats.Table.cell_check r.a_ds_safe;
            Stats.Table.cell_check r.hr_safe;
            Stats.Table.cell_check r.all_terminated;
          ])
      (Stats.Table.make
         ~headers:
           [ "gst"; "A<>S worst"; "HR worst"; "A<>S safe"; "HR safe"; "terminated" ])
      rows
  in
  Format.fprintf ppf
    "@[<v>%s (n=5, t=2; gst=1 rows are synchronous: A<>S = t+2 = 4)@,%a@,@]"
    title Stats.Table.render table
