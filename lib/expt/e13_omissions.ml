open Kernel

let name = "e13"
let title = "E13: omission faults - indulgence survives, decisions shift"

type row = {
  algorithm : string;
  faults : Sim.Model.faults;
  n : int;
  t : int;
  runs : int;
  min_decision : int;
  max_decision : int;
  violations : int;
  expected_safe : bool;
}

let sweep_row entry config ~faults ~expected_safe =
  let r =
    Mc.Exhaustive.sweep_incremental ~faults ~algo:entry.Registry.algo ~config
      ~proposals:(Sim.Runner.distinct_proposals config)
      ()
  in
  {
    algorithm = entry.Registry.label;
    faults;
    n = Config.n config;
    t = Config.t config;
    runs = r.Mc.Exhaustive.runs;
    min_decision = r.Mc.Exhaustive.min_decision;
    max_decision = r.Mc.Exhaustive.max_decision;
    violations = List.length r.Mc.Exhaustive.violations;
    expected_safe;
  }

let measure () =
  let c41 = Config.make ~n:4 ~t:1 in
  let menus = Sim.Model.all_faults in
  (* FloodSet's crash-tolerance argument needs a crash-free round to
     equalize views, and a send-omitter falsifies that without spending a
     crash — but a receive-omitter only starves itself, and its decisions
     are excluded from the agreement judgment, so recv-omit alone leaves
     FloodSet safe. The indulgent A_{t+2} is expected to stay safe under
     every menu — the interesting part is where its decision rounds land. *)
  List.map
    (fun faults ->
      sweep_row Registry.floodset c41 ~faults
        ~expected_safe:
          (match faults with
          | Sim.Model.Crash_only | Sim.Model.Recv_omit_only -> true
          | Sim.Model.Send_omit_only | Sim.Model.Mixed -> false))
    menus
  @ List.map
      (fun faults -> sweep_row Registry.at_plus_2 c41 ~faults ~expected_safe:true)
      menus

let run ppf =
  let rows = measure () in
  let table =
    List.fold_left
      (fun table r ->
        let safe = r.violations = 0 in
        let shift = r.max_decision - (r.t + 2) in
        Stats.Table.add_row table
          [
            r.algorithm;
            Sim.Model.faults_to_string r.faults;
            Stats.Table.cell_int r.n;
            Stats.Table.cell_int r.t;
            Stats.Table.cell_int r.runs;
            Format.sprintf "[%d, %d]" r.min_decision r.max_decision;
            (if safe then "0" else string_of_int r.violations);
            (if safe && shift > 0 then Format.sprintf "+%d" shift else "-");
            Stats.Table.cell_check (safe = r.expected_safe);
          ])
      (Stats.Table.make
         ~headers:
           [
             "algorithm";
             "faults";
             "n";
             "t";
             "runs";
             "decision rounds";
             "violations";
             "shift past t+2";
             "match";
           ])
      rows
  in
  Format.fprintf ppf "@[<v>%s@,%a@,@]" title Stats.Table.render table
