(** Experiment E6 — early decision (Section 6, first paragraph).

    For runs with at most [f <= t] crashes, the paper derives an [f + 2]
    lower bound for synchronous runs of any ES consensus algorithm (one
    round above the [f + 1] of SCS), and reports (via [5]) that it is
    tight. [A_{f+2}] achieves it for [t < n/3]: its decision round tracks
    the number of {e actual} failures. [A_{t+2}] by contrast always pays
    for the worst case: [t + 2] rounds even in a failure-free run — the
    cost of resilience-oblivious flooding, and exactly why Section 6 asks
    the early-decision question. *)

type row = {
  f : int;
  af2_worst : int;  (** worst over synchronous runs with at most f crashes *)
  at2_worst : int;
  floodset_worst : int;  (** plain FloodSet: always t+1 *)
  early_fs_worst : int;  (** the SCS early decider: min(f+2, t+1) *)
}

val measure : ?seed:int -> ?samples:int -> Kernel.Config.t -> row list
val run : Format.formatter -> unit
val name : string
val title : string
