(** Experiment E2 — the lower bound (Section 2, Fig. 1), mechanised.

    The reproduction follows the proof's own structure:

    + {e Lemma 3}: a bivalent initial configuration exists (the model
      checker finds one for each algorithm);
    + {e Lemma 4}: a bivalent [(t-1)]-round serial partial run exists — the
      measured bivalence {!Mc.Valency.frontier} is exactly [t - 1];
    + every [t]-round serial partial run is univalent, and exhaustive sweeps
      confirm FloodSetWS globally decides at [t + 1] in {e every} serial
      run — the premise of Lemma 2;
    + the contradiction: the proof-guided ES schedule
      ({!Mc.Attack.witness_schedule}) is indistinguishable, for the deciding
      processes, from two different synchronous runs, and FloodSetWS
      violates uniform agreement on it — while [A_{t+2}], which waits the
      one extra round, survives the same schedule.

    Together these show executably why [t + 1]-round indulgent consensus is
    impossible and the price of indulgence is one round. *)

type row = {
  n : int;
  t : int;
  fast_decides_at : int;  (** FloodSetWS sync worst case, exhaustive/cascade *)
  frontier : int;  (** largest bivalent round of FloodSetWS *)
  attack_violations : int;  (** agreement violations under the witness *)
  at2_survives : bool;  (** A_{t+2} safe under the same witness *)
}

val measure : (int * int) list -> row list
val run : Format.formatter -> unit
val name : string
val title : string
