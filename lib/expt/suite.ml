type experiment = {
  name : string;
  title : string;
  run : Format.formatter -> unit;
}

let all =
  [
    { name = E1_price.name; title = E1_price.title; run = E1_price.run };
    {
      name = E2_lower_bound.name;
      title = E2_lower_bound.title;
      run = E2_lower_bound.run;
    };
    {
      name = E3_fast_decision.name;
      title = E3_fast_decision.title;
      run = E3_fast_decision.run;
    };
    {
      name = E4_diamond_s.name;
      title = E4_diamond_s.title;
      run = E4_diamond_s.run;
    };
    {
      name = E5_failure_free.name;
      title = E5_failure_free.title;
      run = E5_failure_free.run;
    };
    { name = E6_early.name; title = E6_early.title; run = E6_early.run };
    { name = E7_eventual.name; title = E7_eventual.title; run = E7_eventual.run };
    { name = E8_fd.name; title = E8_fd.title; run = E8_fd.run };
    {
      name = E9_resilience.name;
      title = E9_resilience.title;
      run = E9_resilience.run;
    };
    { name = E10_cost.name; title = E10_cost.title; run = E10_cost.run };
    {
      name = E11_ablations.name;
      title = E11_ablations.title;
      run = E11_ablations.run;
    };
    {
      name = E12_crossover.name;
      title = E12_crossover.title;
      run = E12_crossover.run;
    };
    {
      name = E13_omissions.name;
      title = E13_omissions.title;
      run = E13_omissions.run;
    };
  ]

let find name = List.find_opt (fun e -> String.equal e.name name) all

let run_all ppf =
  List.iter (fun e -> Format.fprintf ppf "%t@.@." (fun ppf -> e.run ppf)) all
