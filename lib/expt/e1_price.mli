(** Experiment E1 — the headline table: worst-case global decision round in
    synchronous runs, per algorithm and resilience (Sections 1.4 and 3).

    Paper predictions: FloodSet / FloodSetWS decide by [t+1] (the SCS
    optimum); every indulgent algorithm needs at least [t+2] (Proposition
    1); [A_{t+2}] and its variants achieve exactly [t+2]; Hurfin–Raynal hits
    [2t+2]; CT-<>S hits [4t+4]. The "price of indulgence" is the [t+2] vs
    [t+1] gap; the payoff over prior indulgent algorithms is the [t+2] vs
    [2t+2] gap. *)

type row = {
  label : string;
  n : int;
  t : int;
  predicted : int;
  measured : int;
  indulgent : bool;
}

val measure : ?seed:int -> ?samples:int -> (int * int) list -> row list
(** One row per (config, applicable algorithm). *)

val run : Format.formatter -> unit
(** Print the table for {!Measure.standard_configs}. *)

val name : string
val title : string
