(** Experiment E9 — why indulgence, and what it costs in resilience
    (Section 1.1, references [2] and [9]).

    Three demonstrations:

    + {e Non-indulgent algorithms break under asynchrony}: the crash-free
      solo-split schedule (p1's messages delayed for [t + 1] rounds) makes
      FloodSet and FloodSetWS violate uniform agreement; [A_{t+2}] survives
      it. This motivates indulgence in the first place.
    + {e Indulgence needs a correct majority}: with [t >= n/2], a partition
      schedule in which each half forms an [n - t] "quorum" makes the
      naive-threshold coordinator algorithm (CT with quorum [n - t] instead
      of a majority) decide two different values. [t < n/2] is necessary —
      the {e resilience} price of indulgence, complementing the one-round
      {e time} price.
    + The properly-guarded CT refuses [t >= n/2] configurations outright. *)

type demo = {
  what : string;
  algorithm : string;
  n : int;
  t : int;
  violated : bool;  (** agreement/validity broken, as predicted? *)
  expected_violation : bool;
}

val measure : unit -> demo list
val run : Format.formatter -> unit
val name : string
val title : string
