(** Shared measurement helpers for the experiment modules. *)

open Kernel

val sync_worst_case :
  ?samples:int ->
  ?exhaustive_up_to_n:int ->
  seed:int ->
  entry:Registry.entry ->
  config:Config.t ->
  unit ->
  int
(** The worst global decision round observed over synchronous runs: the
    named deterministic cascades, [samples] random synchronous schedules
    (with and without crash-round delays), and — when [n] is at most
    [exhaustive_up_to_n] (default 4) — an exhaustive serial sweep. Raises
    [Failure] if any run violates a consensus property (these are all runs
    of the algorithm's own model, so violations are implementation bugs). *)

val decision_round_on :
  Registry.entry -> Config.t -> Sim.Schedule.t -> int option
(** Global decision round of one run with distinct proposals ([None] =
    nobody decided within the engine bound). *)

val decision_round_binary :
  Registry.entry -> Config.t -> Sim.Schedule.t -> int option
(** Same with [p_1] proposing 0 and the rest 1. *)

val check_safety_on :
  Registry.entry -> Config.t -> Sim.Schedule.t -> Sim.Props.violation list

val standard_configs : (int * int) list
(** The (n, t) pairs the headline tables sweep: (3,1), (5,2), (7,3), (9,4). *)

val third_configs : (int * int) list
(** (n, t) pairs with n = 3t + 1: (4,1), (7,2), (10,3). *)
