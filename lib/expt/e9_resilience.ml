open Kernel

let name = "e9"
let title = "E9: the resilience price - majority is necessary"

type demo = {
  what : string;
  algorithm : string;
  n : int;
  t : int;
  violated : bool;
  expected_violation : bool;
}

let solo_split_demo entry config ~expected =
  let report = Mc.Attack.run_solo_split entry.Registry.algo config in
  {
    what = "solo split (crash-free asynchrony)";
    algorithm = entry.Registry.label;
    n = Config.n config;
    t = Config.t config;
    violated = report.Mc.Attack.violations <> [];
    expected_violation = expected;
  }

let partition_demo () =
  (* t >= n/2: both halves of a 4-process system can stand alone. *)
  let config = Config.make ~n:4 ~t:2 in
  let schedule = Workload.Partition.split config ~until:16 in
  let proposals = Sim.Runner.distinct_proposals config in
  let trace =
    Sim.Runner.run
      (Sim.Algorithm.Packed (module Baselines.Ct_naive))
      config ~proposals schedule
  in
  {
    what = "partition with t >= n/2";
    algorithm = "CT-naive";
    n = 4;
    t = 2;
    violated = Sim.Props.check_agreement trace <> [];
    expected_violation = true;
  }

let guard_demo () =
  let config = Config.make ~n:4 ~t:2 in
  let refused =
    match
      Sim.Runner.run Registry.ct_diamond_s.Registry.algo config
        ~proposals:(Sim.Runner.distinct_proposals config)
        (Sim.Schedule.make ~model:Sim.Model.Es ~gst:Round.first [])
    with
    | (_ : Sim.Trace.t) -> false
    | exception Invalid_argument _ -> true
  in
  {
    what = "guarded CT refuses t >= n/2";
    algorithm = "CT-<>S";
    n = 4;
    t = 2;
    violated = refused;  (* here "violated" = refused, the expected outcome *)
    expected_violation = true;
  }

let measure () =
  let config = Config.make ~n:5 ~t:2 in
  [
    solo_split_demo Registry.floodset config ~expected:true;
    solo_split_demo Registry.floodset_ws config ~expected:true;
    solo_split_demo Registry.early_floodset config ~expected:true;
    solo_split_demo Registry.at_plus_2 config ~expected:false;
    solo_split_demo Registry.hurfin_raynal config ~expected:false;
    partition_demo ();
    guard_demo ();
  ]

let run ppf =
  let rows = measure () in
  let table =
    List.fold_left
      (fun table d ->
        Stats.Table.add_row table
          [
            d.what;
            d.algorithm;
            Stats.Table.cell_int d.n;
            Stats.Table.cell_int d.t;
            Stats.Table.cell_bool d.violated;
            Stats.Table.cell_bool d.expected_violation;
            Stats.Table.cell_check (d.violated = d.expected_violation);
          ])
      (Stats.Table.make
         ~headers:
           [ "scenario"; "algorithm"; "n"; "t"; "broken"; "expected"; "match" ])
      rows
  in
  Format.fprintf ppf "@[<v>%s@,%a@,@]" title Stats.Table.render table
