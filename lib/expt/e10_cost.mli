(** Experiment E10 — engineering cost: rounds to quiescence and total
    message copies per algorithm on the failure-free run, as [n] grows.
    (Wall-clock micro-benchmarks of the same runs live in [bench/main.ml]
    under Bechamel.) The shape to expect: every algorithm sends
    [O(rounds * n^2)] copies; [A_{t+2}]'s round count grows with [t] while
    HR's and CT's failure-free cost stays constant — the flip side of their
    worse worst case. *)

type row = {
  label : string;
  n : int;
  t : int;
  decision_round : int;
  quiescent_round : int;
  messages : int;
  bytes : int;
}

val measure : (int * int) list -> row list
val run : Format.formatter -> unit
val name : string
val title : string
