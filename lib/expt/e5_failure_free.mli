(** Experiment E5 — the failure-free optimization (Section 5.2, Fig. 4).

    In the failure-free synchronous run, the optimized [A_{t+2}] reaches a
    global decision at round 2, matching the two-round lower bound for
    well-behaved runs ([11]); the unoptimized algorithm still needs [t + 2].
    With crashes the optimization must not cost anything: the worst case
    over synchronous runs stays at most [t + 2], and safety is preserved on
    asynchronous schedules. *)

type row = {
  label : string;
  failure_free : int;  (** global decision round, quiet run *)
  sync_worst : int;
  safe_async : bool;
}

val measure : ?seed:int -> Kernel.Config.t -> row list
val run : Format.formatter -> unit
val name : string
val title : string
