open Kernel

type check = { claim : string; ok : bool }

let check claim ok = { claim; ok }

let headline_rounds () =
  (* E1 at (5,2): every algorithm hits exactly its predicted worst case. *)
  let rows = E1_price.measure ~samples:60 [ (5, 2) ] in
  check "E1: measured worst cases equal predictions at (5,2)"
    (rows <> []
    && List.for_all (fun (r : E1_price.row) -> r.measured = r.predicted) rows)

let lower_bound () =
  let rows = E2_lower_bound.measure [ (3, 1); (5, 2) ] in
  check "E2: t+1-deciders break in ES, A(t+2) survives"
    (List.for_all
       (fun (r : E2_lower_bound.row) ->
         r.attack_violations > 0 && r.at2_survives
         && r.fast_decides_at = r.t + 1)
       rows)

let figure1 () =
  check "Fig. 1: all five-run obligations hold at (5,2)"
    (Mc.Figure1.all_hold (Mc.Figure1.against_floodset_ws (Config.make ~n:5 ~t:2)))

let fast_decision () =
  let rows = E3_fast_decision.measure [ (4, 1); (5, 2) ] in
  check "E3: A(t+2) decides at exactly t+2 in every synchronous run"
    (List.for_all
       (fun (r : E3_fast_decision.row) ->
         r.safe && r.min_decision = r.t + 2 && r.max_decision = r.t + 2)
       rows)

let failure_free () =
  let rows = E5_failure_free.measure (Config.make ~n:5 ~t:2) in
  check "E5: the Fig. 4 optimization decides at round 2 failure-free"
    (List.exists
       (fun (r : E5_failure_free.row) ->
         r.label = "A(t+2)+ff" && r.failure_free = 2 && r.sync_worst <= 4)
       rows)

let early_decision () =
  let config = Config.make ~n:7 ~t:2 in
  let rows = E6_early.measure ~samples:60 config in
  check "E6: A(f+2) decides at exactly f+2 for every f"
    (List.for_all (fun (r : E6_early.row) -> r.af2_worst = r.f + 2) rows)

let eventual_decision () =
  let config = Config.make ~n:7 ~t:2 in
  let rows = E7_eventual.measure ~samples:30 config ~ks:[ 0; 3 ] in
  check "E7: A(f+2) achieves k+f+2 exactly; AMR stays within k+2f+2"
    (List.for_all
       (fun (r : E7_eventual.row) ->
         r.af2_worst = r.af2_bound && r.amr_worst <= r.amr_bound)
       rows)

let failure_detectors () =
  let rows = E8_fd.measure ~samples:25 (Config.make ~n:5 ~t:2) [ 1; 4 ] in
  check "E8: the Section-4 simulation satisfies the <>P/<>S axioms"
    (List.for_all
       (fun (r : E8_fd.row) ->
         r.completeness_ok = r.runs
         && r.dp_accuracy_ok = r.runs
         && r.ds_accuracy_ok = r.runs
         && (r.gst <> 1 || r.p_accuracy_ok = r.runs))
       rows)

let resilience () =
  check "E9: solo split breaks fast algorithms; partition breaks t >= n/2"
    (List.for_all
       (fun (d : E9_resilience.demo) -> d.violated = d.expected_violation)
       (E9_resilience.measure ()))

let ablations () =
  check "E11: removing Halt exchange / the n/3 guard breaks as predicted"
    (List.for_all
       (fun (r : E11_ablations.row) -> r.as_predicted)
       (E11_ablations.measure ()))

let run () =
  [
    headline_rounds ();
    lower_bound ();
    figure1 ();
    fast_decision ();
    failure_free ();
    early_decision ();
    eventual_decision ();
    failure_detectors ();
    resilience ();
    ablations ();
  ]

let all_ok checks = List.for_all (fun c -> c.ok) checks

let print ppf checks =
  List.iter
    (fun c ->
      Format.fprintf ppf "  [%s] %s@." (if c.ok then "ok" else "FAIL") c.claim)
    checks;
  let ok = all_ok checks in
  Format.fprintf ppf "%s@."
    (if ok then "reproduction certificate: ALL CLAIMS HOLD"
     else "reproduction certificate: FAILURES ABOVE");
  ok
