(** The reproduction certificate: one call that re-checks every headline
    claim of the paper against freshly-run simulations and reports a
    pass/fail checklist. [ipi verify] exposes it on the command line; the
    test suite runs it too. All checks are deterministic (fixed seeds). *)

type check = { claim : string; ok : bool }

val run : unit -> check list
val all_ok : check list -> bool

val print : Format.formatter -> check list -> bool
(** Pretty-print the checklist; returns {!all_ok}. *)
