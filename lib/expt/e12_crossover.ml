open Kernel

let name = "e12"
let title = "E12: average-case crossover - optimistic vs flat decision cost"

type row = {
  crashes : int;
  samples : int;
  hr_mean : float;
  hr_max : int;
  at2_mean : float;
  at2_max : int;
  opt_mean : float;
  opt_max : int;
  ct_mean : float;
  ct_max : int;
}

(* A random synchronous schedule with exactly [crashes] crashes (rejection
   sampling over the generator's 0..max uniform count). *)
let schedule_with_crashes rng config ~crashes =
  let rec draw () =
    let s =
      Workload.Random_runs.synchronous_with_delays rng config
        ~max_crashes:crashes ()
    in
    if Sim.Schedule.crash_count s = crashes then s else draw ()
  in
  draw ()

let stats entry config schedules =
  let rounds =
    List.map
      (fun schedule ->
        let trace =
          Sim.Runner.run entry.Registry.algo config
            ~proposals:(Sim.Runner.distinct_proposals config)
            schedule
        in
        (match Sim.Props.check trace with
        | [] -> ()
        | vs ->
            failwith
              (Format.asprintf "%s: %a" entry.Registry.label
                 (Format.pp_print_list Sim.Props.pp_violation)
                 vs));
        match Sim.Trace.global_decision_round trace with
        | Some r -> Round.to_int r
        | None -> failwith (entry.Registry.label ^ ": no decision"))
      schedules
  in
  match Stats.Summary.of_list rounds with
  | Some s -> (s.Stats.Summary.mean, s.Stats.Summary.max)
  | None -> (0., 0)

let measure ?(seed = 83) ?(samples = 200) config =
  List.map
    (fun crashes ->
      let rng = Rng.create ~seed:(seed + crashes) in
      let schedules =
        List.init samples (fun _ -> schedule_with_crashes rng config ~crashes)
      in
      let hr_mean, hr_max = stats Registry.hurfin_raynal config schedules in
      let at2_mean, at2_max = stats Registry.at_plus_2 config schedules in
      let opt_mean, opt_max = stats Registry.at_plus_2_opt config schedules in
      let ct_mean, ct_max = stats Registry.ct_diamond_s config schedules in
      {
        crashes;
        samples;
        hr_mean;
        hr_max;
        at2_mean;
        at2_max;
        opt_mean;
        opt_max;
        ct_mean;
        ct_max;
      })
    (Listx.range 0 (Config.t config))

let cell_mean m = Printf.sprintf "%.2f" m

let run ppf =
  let config = Config.make ~n:5 ~t:2 in
  let rows = measure config in
  let table =
    List.fold_left
      (fun table r ->
        Stats.Table.add_row table
          [
            Stats.Table.cell_int r.crashes;
            cell_mean r.hr_mean;
            Stats.Table.cell_int r.hr_max;
            cell_mean r.at2_mean;
            Stats.Table.cell_int r.at2_max;
            cell_mean r.opt_mean;
            Stats.Table.cell_int r.opt_max;
            cell_mean r.ct_mean;
            Stats.Table.cell_int r.ct_max;
          ])
      (Stats.Table.make
         ~headers:
           [
             "crashes";
             "HR mean";
             "HR max";
             "A(t+2) mean";
             "max";
             "A(t+2)+ff mean";
             "max";
             "CT mean";
             "max";
           ])
      rows
  in
  Format.fprintf ppf
    "@[<v>%s (n=5, t=2; %d random synchronous runs per row)@,%a@,@]" title
    (match rows with r :: _ -> r.samples | [] -> 0)
    Stats.Table.render table
