open Kernel

type regime = Indulgent | Third | Any_t

type entry = {
  label : string;
  algo : Sim.Algorithm.packed;
  model : Sim.Model.t;
  regime : regime;
  indulgent : bool;
  sync_worst_case : Config.t -> int;
  reference : string;
}

let floodset =
  {
    label = "FloodSet";
    algo = Sim.Algorithm.Packed (module Baselines.Floodset);
    model = Sim.Model.Scs;
    regime = Any_t;
    indulgent = false;
    sync_worst_case = (fun c -> Config.t c + 1);
    reference = "Lynch 96 [13], SCS optimal";
  }

let floodset_ws =
  {
    label = "FloodSetWS";
    algo = Sim.Algorithm.Packed (module Baselines.Floodset_ws);
    model = Sim.Model.Scs;
    regime = Any_t;
    indulgent = false;
    sync_worst_case = (fun c -> Config.t c + 1);
    reference = "Charron-Bost et al. 00 [3], P-based";
  }

let early_floodset =
  {
    label = "EarlyFS";
    algo = Sim.Algorithm.Packed (module Baselines.Early_floodset);
    model = Sim.Model.Scs;
    regime = Any_t;
    indulgent = false;
    sync_worst_case = (fun c -> Config.t c + 1);
    reference = "Charron-Bost-Schiper [4] / Keidar-Rajsbaum [11]";
  }

let floodmin =
  {
    label = "FloodMin";
    algo = Sim.Algorithm.Packed (module Baselines.Floodmin.Std);
    model = Sim.Model.Scs;
    regime = Any_t;
    indulgent = false;
    sync_worst_case = (fun c -> Config.t c + 1);
    reference = "Lynch 96 [13], min-flooding";
  }

let at_plus_2 =
  {
    label = "A(t+2)";
    algo = Sim.Algorithm.Packed (module Indulgent.At_plus_2.Standard);
    model = Sim.Model.Es;
    regime = Indulgent;
    indulgent = true;
    sync_worst_case = (fun c -> Config.t c + 2);
    reference = "this paper, Fig. 2";
  }

let at_plus_2_opt =
  {
    label = "A(t+2)+ff";
    algo = Sim.Algorithm.Packed (module Indulgent.At_plus_2.Optimized);
    model = Sim.Model.Es;
    regime = Indulgent;
    indulgent = true;
    sync_worst_case = (fun c -> Config.t c + 2);
    reference = "this paper, Fig. 4";
  }

let at_plus_2_slow =
  {
    label = "A(t+2)/slowC";
    algo = Sim.Algorithm.Packed (module Indulgent.At_plus_2.Slow_fallback);
    model = Sim.Model.Es;
    regime = Indulgent;
    indulgent = true;
    sync_worst_case = (fun c -> Config.t c + 2);
    reference = "this paper, Fig. 2 + padded C";
  }

let a_diamond_s =
  {
    label = "A<>S";
    algo = Sim.Algorithm.Packed (module Indulgent.A_diamond_s);
    model = Sim.Model.Es;
    regime = Indulgent;
    indulgent = true;
    sync_worst_case = (fun c -> Config.t c + 2);
    reference = "this paper, Fig. 3";
  }

let hurfin_raynal =
  {
    label = "HR-<>S";
    algo = Sim.Algorithm.Packed (module Baselines.Hurfin_raynal);
    model = Sim.Model.Es;
    regime = Indulgent;
    indulgent = true;
    sync_worst_case = (fun c -> (2 * Config.t c) + 2);
    reference = "Hurfin-Raynal 99 [10]";
  }

let ct_diamond_s =
  {
    label = "CT-<>S";
    algo = Sim.Algorithm.Packed (module Baselines.Ct_diamond_s);
    model = Sim.Model.Es;
    regime = Indulgent;
    indulgent = true;
    sync_worst_case = (fun c -> (4 * Config.t c) + 4);
    reference = "Chandra-Toueg 96 [2]";
  }

let amr =
  {
    label = "AMR-leader";
    algo = Sim.Algorithm.Packed (module Baselines.Amr);
    model = Sim.Model.Es;
    regime = Third;
    indulgent = true;
    sync_worst_case = (fun c -> (2 * Config.t c) + 2);
    reference = "Mostefaoui-Raynal 01 [14]";
  }

let dls =
  {
    label = "DLS";
    algo = Sim.Algorithm.Packed (module Baselines.Dls);
    model = Sim.Model.Dls_basic;
    regime = Indulgent;
    indulgent = true;
    sync_worst_case = (fun c -> (4 * Config.t c) + 4);
    reference = "Dwork-Lynch-Stockmeyer 88 [6]";
  }

let af_plus_2 =
  {
    label = "A(f+2)";
    algo = Sim.Algorithm.Packed (module Indulgent.Af_plus_2);
    model = Sim.Model.Es;
    regime = Third;
    indulgent = true;
    sync_worst_case = (fun c -> Config.t c + 2);
    reference = "this paper, Fig. 5";
  }

let all =
  [
    floodset;
    floodset_ws;
    early_floodset;
    floodmin;
    at_plus_2;
    at_plus_2_opt;
    at_plus_2_slow;
    a_diamond_s;
    hurfin_raynal;
    ct_diamond_s;
    amr;
    af_plus_2;
    dls;
  ]

let find label = List.find_opt (fun e -> String.equal e.label label) all

let applicable entry config =
  match entry.regime with
  | Any_t -> true
  | Indulgent -> Config.has_majority_resilience config
  | Third -> Config.has_third_resilience config
