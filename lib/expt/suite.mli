(** The full experiment suite, indexed for the CLI and the bench harness. *)

type experiment = {
  name : string;  (** short id: "e1" .. "e10" *)
  title : string;
  run : Format.formatter -> unit;
}

val all : experiment list
val find : string -> experiment option

val run_all : Format.formatter -> unit
(** Run every experiment in order, separated by blank lines. *)
