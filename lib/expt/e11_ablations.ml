open Kernel

let name = "e11"
let title = "E11: ablations - remove a mechanism, watch the predicted failure"

type row = {
  ablation : string;
  scenario : string;
  guarded : string;
  ablated : string;
  as_predicted : bool;
}

let agreement_broken trace = Sim.Props.check_agreement trace <> []

let halt_exchange_async () =
  let config = Config.make ~n:5 ~t:2 in
  (* Isolate p1 through round t+2 so its Phase-2 message is also unheard. *)
  let schedule =
    Mc.Attack.solo_split_schedule ~rounds:(Config.t config + 2) config
  in
  let proposals = Sim.Runner.distinct_proposals config in
  let run algo = Sim.Runner.run algo config ~proposals schedule in
  let guarded_trace = run Registry.at_plus_2.Registry.algo in
  let ablated_trace =
    run (Sim.Algorithm.Packed (module Indulgent.At_plus_2.No_halt_exchange))
  in
  {
    ablation = "no Halt exchange (Lemma 6)";
    scenario = "solo split through t+2";
    guarded =
      (if agreement_broken guarded_trace then "BROKEN" else "safe");
    ablated =
      (if agreement_broken ablated_trace then "agreement broken" else "safe");
    as_predicted =
      (not (agreement_broken guarded_trace))
      && agreement_broken ablated_trace;
  }

let halt_exchange_sync () =
  (* The ablation costs nothing in synchronous runs: still exactly t+2. *)
  let config = Config.make ~n:5 ~t:2 in
  let proposals = Sim.Runner.distinct_proposals config in
  let outcome =
    Workload.Search.random_synchronous ~samples:120 ~with_delays:true ~seed:97
      ~algo:(Sim.Algorithm.Packed (module Indulgent.At_plus_2.No_halt_exchange))
      ~config ~proposals ()
  in
  {
    ablation = "no Halt exchange (Lemma 6)";
    scenario = "random synchronous runs";
    guarded = "t+2, safe";
    ablated =
      Printf.sprintf "worst %d, %s" outcome.Workload.Search.worst_round
        (if outcome.Workload.Search.violations = [] then "safe" else "BROKEN");
    as_predicted =
      outcome.Workload.Search.worst_round = Config.t config + 2
      && outcome.Workload.Search.violations = [];
  }

let third_guard () =
  let config = Config.make ~n:4 ~t:2 in
  let schedule = Workload.Partition.split config ~until:12 in
  let proposals = Sim.Runner.distinct_proposals config in
  let ablated_trace =
    Sim.Runner.run
      (Sim.Algorithm.Packed (module Indulgent.Af_plus_2.Unguarded))
      config ~proposals schedule
  in
  let guarded_refuses =
    match
      Sim.Runner.run Registry.af_plus_2.Registry.algo config ~proposals
        schedule
    with
    | (_ : Sim.Trace.t) -> false
    | exception Invalid_argument _ -> true
  in
  {
    ablation = "no t < n/3 guard (A(f+2))";
    scenario = "partition at n=4, t=2";
    guarded = (if guarded_refuses then "refused at init" else "ACCEPTED");
    ablated =
      (if agreement_broken ablated_trace then "agreement broken" else "safe");
    as_predicted = guarded_refuses && agreement_broken ablated_trace;
  }

let measure () = [ halt_exchange_async (); halt_exchange_sync (); third_guard () ]

let run ppf =
  let rows = measure () in
  let table =
    List.fold_left
      (fun table r ->
        Stats.Table.add_row table
          [
            r.ablation;
            r.scenario;
            r.guarded;
            r.ablated;
            Stats.Table.cell_check r.as_predicted;
          ])
      (Stats.Table.make
         ~headers:[ "ablation"; "scenario"; "paper version"; "ablated"; "match" ])
      rows
  in
  Format.fprintf ppf "@[<v>%s@,%a@,@]" title Stats.Table.render table
