(** Every algorithm in the repository, packed with the complexity the paper
    predicts for it. The experiment tables iterate over this list. *)

open Kernel

type regime =
  | Indulgent  (** requires 0 < t < n/2 *)
  | Third  (** requires t < n/3 *)
  | Any_t  (** any t < n *)

type entry = {
  label : string;  (** short name used in tables *)
  algo : Sim.Algorithm.packed;
  model : Sim.Model.t;
  regime : regime;
  indulgent : bool;
      (** tolerates unreliable failure detection: safe and live in every ES
          run (within its regime) *)
  sync_worst_case : Config.t -> int;
      (** the paper's predicted worst-case global decision round over
          synchronous runs *)
  reference : string;  (** where the algorithm comes from *)
}

val all : entry list
val find : string -> entry option
val applicable : entry -> Config.t -> bool

val floodset : entry
val floodset_ws : entry
val early_floodset : entry
val floodmin : entry
val at_plus_2 : entry
val at_plus_2_opt : entry
val at_plus_2_slow : entry
val a_diamond_s : entry
val hurfin_raynal : entry
val ct_diamond_s : entry
val amr : entry
val af_plus_2 : entry
val dls : entry
