open Kernel

let standard_configs = [ (3, 1); (5, 2); (7, 3); (9, 4) ]
let third_configs = [ (4, 1); (7, 2); (10, 3) ]

let run_trace entry config schedule ~proposals =
  Sim.Runner.run entry.Registry.algo config ~proposals schedule

let decision_round_on entry config schedule =
  let proposals = Sim.Runner.distinct_proposals config in
  let trace = run_trace entry config schedule ~proposals in
  Option.map Round.to_int (Sim.Trace.global_decision_round trace)

let decision_round_binary entry config schedule =
  let proposals =
    Sim.Runner.binary_proposals config
      ~ones:(Pid.Set.of_ints (Kernel.Listx.range 2 (Config.n config)))
  in
  let trace = run_trace entry config schedule ~proposals in
  Option.map Round.to_int (Sim.Trace.global_decision_round trace)

let check_safety_on entry config schedule =
  let proposals = Sim.Runner.distinct_proposals config in
  Sim.Props.check_agreement (run_trace entry config schedule ~proposals)

let fail_on_violations entry config outcome what =
  match outcome.Workload.Search.violations with
  | [] -> ()
  | (schedule, vs) :: _ ->
      failwith
        (Format.asprintf "%s on %a, %s: %a@ under %a" entry.Registry.label
           Config.pp config what
           (Format.pp_print_list Sim.Props.pp_violation)
           vs Sim.Schedule.pp schedule)

let sync_worst_case ?(samples = 200) ?(exhaustive_up_to_n = 4) ~seed ~entry
    ~config () =
  let proposals = Sim.Runner.distinct_proposals config in
  let algo = entry.Registry.algo in
  (* Deterministic cascades. *)
  let named =
    Workload.Search.over ~algo ~config ~proposals
      (List.to_seq (List.map snd (Workload.Cascade.all_named config)))
  in
  fail_on_violations entry config named "cascades";
  (* Random synchronous schedules, plain and with crash-round delays. *)
  let plain =
    Workload.Search.random_synchronous ~samples ~seed ~algo ~config ~proposals
      ()
  in
  fail_on_violations entry config plain "random synchronous";
  let delayed =
    Workload.Search.random_synchronous ~samples ~with_delays:true
      ~seed:(seed + 1) ~algo ~config ~proposals ()
  in
  fail_on_violations entry config delayed "random synchronous with delays";
  let best =
    max named.Workload.Search.worst_round
      (max plain.Workload.Search.worst_round
         delayed.Workload.Search.worst_round)
  in
  (* Exhaustive serial sweep for small systems. *)
  if Config.n config <= exhaustive_up_to_n then begin
    let sweep = Mc.Exhaustive.sweep ~algo ~config ~proposals () in
    (match sweep.Mc.Exhaustive.violations with
    | [] -> ()
    | (choices, vs) :: _ ->
        failwith
          (Format.asprintf "%s on %a, exhaustive: %a under %a"
             entry.Registry.label Config.pp config
             (Format.pp_print_list Sim.Props.pp_violation)
             vs
             (Format.pp_print_list Mc.Serial.pp_choice)
             choices));
    max best sweep.Mc.Exhaustive.max_decision
  end
  else best
