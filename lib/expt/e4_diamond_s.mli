(** Experiment E4 — the <>S variant (Section 5.1, Fig. 3): [A_<>S] keeps the
    [t + 2] fast decision in synchronous runs, and in asynchronous runs it
    terminates (correctly) once the simulated <>S stabilises — measured here
    as the worst decision round over random ES schedules while sweeping the
    global stabilisation round. The contrast column runs the underlying
    Hurfin–Raynal algorithm alone on the same schedules: [A_<>S] matches it
    asymptotically but beats it by [t] rounds when the run happens to be
    synchronous. *)

type row = {
  gst : int;
  a_ds_worst : int;
  hr_worst : int;
  a_ds_safe : bool;
  hr_safe : bool;
  all_terminated : bool;
}

val measure : ?seed:int -> ?samples:int -> Kernel.Config.t -> int list -> row list
val run : Format.formatter -> unit
val name : string
val title : string
