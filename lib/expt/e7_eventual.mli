(** Experiment E7 — fast eventual decision (Section 6, Fig. 5, footnote 10).

    For runs that become synchronous after round [k] with [f] crashes after
    [k], the paper proves [A_{f+2}] globally decides by round [k + f + 2]
    (for [t < n/3]), and notes that the unoptimised leader-based AMR would
    need up to [k + 2f + 2] on such runs. The workload is the split-brain
    adversary of {!Workload.Cascade.split_brain} (asynchronous prefix that
    provably stalls quorum-counting for [n = 3t + 1], then [f] partial-
    delivery crashes), plus random synchronous-after-[k] schedules. Both
    algorithms are checked against their own bound; the table shows
    [A_{f+2}]'s bound is strictly tighter as [f] grows. *)

type row = {
  k : int;
  f : int;
  af2_worst : int;
  af2_bound : int;  (** k + f + 2 *)
  amr_worst : int;
  amr_bound : int;  (** k + 2f + 2 *)
}

val measure : ?seed:int -> ?samples:int -> Kernel.Config.t -> ks:int list -> row list
val run : Format.formatter -> unit
val name : string
val title : string
