(** Experiment E12 — where the crossover falls (Section 1.1's practical
    motivation: "in many real systems, most runs are actually synchronous",
    and among those most are failure-free).

    Hurfin–Raynal is {e optimistic}: 2 rounds when its first coordinator
    survives, up to [2t + 2] when coordinators keep dying. The plain
    [A_{t+2}] is {e flat}: always [t + 2]. The Fig. 4 optimization makes
    [A_{t+2}] optimistic too (2 rounds failure-free) without giving up the
    [t + 2] ceiling. This experiment sweeps the number of crashes and
    reports the mean and worst global decision round of each algorithm over
    random synchronous runs — showing where the optimistic baselines lose
    their lead and that the optimized algorithm dominates: never worse than
    either, best or tied in every regime. *)

type row = {
  crashes : int;  (** exactly this many crashes per sampled run *)
  samples : int;
  hr_mean : float;
  hr_max : int;
  at2_mean : float;
  at2_max : int;
  opt_mean : float;
  opt_max : int;
  ct_mean : float;
  ct_max : int;
}

val measure : ?seed:int -> ?samples:int -> Kernel.Config.t -> row list
val run : Format.formatter -> unit
val name : string
val title : string
