(** Experiment E11 — ablations: each safety mechanism the design calls out,
    removed, must break in exactly the predicted way.

    + {e Halt exchange} (Fig. 2 lines 31–35). Without exchanging suspicion
      sets, the elimination property (Lemma 6) fails: a falsely-suspected
      process keeps [|Halt| <= t], sends a non-⊥ new estimate different from
      everyone else's, and the round-[t+2] rule decides on conflicting
      values. The extended solo-split schedule (p1 delayed through round
      t+2) breaks the ablated algorithm while the real [A_{t+2}] survives —
      and in {e synchronous} runs the ablated variant still decides at t+2:
      the suspicion exchange buys precisely the asynchronous safety.
    + {e The t < n/3 guard of A_{f+2}}. Without it, at (n=4, t=2) the
      [n - 2t = 0] occurrence threshold is vacuous and a partition makes
      the two halves decide different values; the guarded algorithm refuses
      the configuration at [init]. *)

type row = {
  ablation : string;
  scenario : string;
  guarded : string;  (** what the paper's version does *)
  ablated : string;  (** what the ablated version does *)
  as_predicted : bool;
}

val measure : unit -> row list
val run : Format.formatter -> unit
val name : string
val title : string
