(** Experiment E8 — simulating <>P and <>S from ES (Section 4).

    The paper's simulation sets the failure-detector output at each round to
    the set of processes whose round message did not arrive in-round. Over
    random ES schedules the experiment checks, per run: strong completeness
    (always holds), <>P eventual strong accuracy and <>S eventual weak
    accuracy (hold with a stabilisation round bounded by the schedule's
    gst/last crash), and P accuracy (holds exactly on the runs without
    false suspicions — synchronous runs). *)

type row = {
  gst : int;
  runs : int;
  completeness_ok : int;
  dp_accuracy_ok : int;
  ds_accuracy_ok : int;
  p_accuracy_ok : int;  (** expected ~ all for gst=1, few otherwise *)
  max_stabilisation : int;
}

val measure : ?seed:int -> ?samples:int -> Kernel.Config.t -> int list -> row list
val run : Format.formatter -> unit
val name : string
val title : string
