open Kernel

let name = "e3"
let title = "E3: A(t+2) fast decision = t+2, independent of C"

type row = {
  variant : string;
  n : int;
  t : int;
  min_decision : int;
  max_decision : int;
  runs : int;
  safe : bool;
}

let variants =
  [ Registry.at_plus_2; Registry.at_plus_2_slow; Registry.a_diamond_s ]

let measure ?(seed = 23) configs =
  List.concat_map
    (fun (n, t) ->
      let config = Config.make ~n ~t in
      List.map
        (fun entry ->
          let algo = entry.Registry.algo in
          let proposals = Sim.Runner.distinct_proposals config in
          if n <= 4 then begin
            let sweep = Mc.Exhaustive.sweep_binary ~algo ~config () in
            {
              variant = entry.Registry.label;
              n;
              t;
              min_decision = sweep.Mc.Exhaustive.min_decision;
              max_decision = sweep.Mc.Exhaustive.max_decision;
              runs = sweep.Mc.Exhaustive.runs;
              safe = sweep.Mc.Exhaustive.violations = [];
            }
          end
          else begin
            let cascades =
              Workload.Search.over ~algo ~config ~proposals
                (List.to_seq (List.map snd (Workload.Cascade.all_named config)))
            in
            let random =
              Workload.Search.random_synchronous ~samples:200
                ~with_delays:true ~seed ~algo ~config ~proposals ()
            in
            let plain =
              Workload.Search.random_synchronous ~samples:200 ~seed:(seed + 1)
                ~algo ~config ~proposals ()
            in
            let outcomes = [ cascades; random; plain ] in
            {
              variant = entry.Registry.label;
              n;
              t;
              (* Search tracks only the worst; re-run the quiet schedule for
                 the best case. *)
              min_decision =
                Option.value
                  (Measure.decision_round_on entry config
                     (Sim.Schedule.make ~model:Sim.Model.Es ~gst:Round.first []))
                  ~default:0;
              max_decision =
                List.fold_left
                  (fun acc o -> max acc o.Workload.Search.worst_round)
                  0 outcomes;
              runs =
                List.fold_left
                  (fun acc o -> acc + o.Workload.Search.runs)
                  0 outcomes;
              safe =
                List.for_all
                  (fun o -> o.Workload.Search.violations = [])
                  outcomes;
            }
          end)
        variants)
    configs

let run ppf =
  let rows = measure [ (3, 1); (4, 1); (5, 2); (7, 3) ] in
  let table =
    List.fold_left
      (fun table r ->
        let expected = r.t + 2 in
        Stats.Table.add_row table
          [
            r.variant;
            Stats.Table.cell_int r.n;
            Stats.Table.cell_int r.t;
            Stats.Table.cell_int r.min_decision;
            Stats.Table.cell_int r.max_decision;
            Stats.Table.cell_int r.runs;
            Stats.Table.cell_check r.safe;
            Stats.Table.cell_check
              (r.min_decision = expected && r.max_decision = expected);
          ])
      (Stats.Table.make
         ~headers:
           [
             "variant";
             "n";
             "t";
             "min decision";
             "max decision";
             "runs";
             "safe";
             "= t+2";
           ])
      rows
  in
  Format.fprintf ppf "@[<v>%s@,%a@,@]" title Stats.Table.render table
