open Kernel

let name = "e6"
let title = "E6: early decision - rounds vs actual failures f"

type row = {
  f : int;
  af2_worst : int;
  at2_worst : int;
  floodset_worst : int;
  early_fs_worst : int;
}

let worst entry config ~f ~samples ~seed =
  let proposals = Sim.Runner.distinct_proposals config in
  let algo = entry.Registry.algo in
  let rng = Rng.create ~seed in
  let random =
    Seq.init samples (fun _ ->
        Workload.Random_runs.synchronous rng config ~max_crashes:f ())
  in
  let cascades =
    if f = 0 then Seq.empty
    else
      List.to_seq
        [
          Workload.Cascade.leader_killer config ~f ~stride:1 ~start:Round.first;
          Workload.Cascade.silent_crashes config
            ~rounds:(List.map Round.of_int (Listx.range 1 f));
          Workload.Cascade.split_brain config ~k:0 ~f;
          Workload.Cascade.minority_keeper config ~f;
        ]
  in
  let outcome =
    Workload.Search.over ~algo ~config ~proposals (Seq.append cascades random)
  in
  (match outcome.Workload.Search.violations with
  | [] -> ()
  | (s, vs) :: _ ->
      failwith
        (Format.asprintf "%s: %a under %a" entry.Registry.label
           (Format.pp_print_list Sim.Props.pp_violation)
           vs Sim.Schedule.pp s));
  outcome.Workload.Search.worst_round

let measure ?(seed = 53) ?(samples = 200) config =
  List.map
    (fun f ->
      {
        f;
        af2_worst = worst Registry.af_plus_2 config ~f ~samples ~seed;
        at2_worst = worst Registry.at_plus_2 config ~f ~samples ~seed;
        floodset_worst = worst Registry.floodset config ~f ~samples ~seed;
        early_fs_worst = worst Registry.early_floodset config ~f ~samples ~seed;
      })
    (Listx.range 0 (Config.t config))

let run ppf =
  let config = Config.make ~n:7 ~t:2 in
  let rows = measure config in
  let table =
    List.fold_left
      (fun table r ->
        Stats.Table.add_row table
          [
            Stats.Table.cell_int r.f;
            Stats.Table.cell_int (r.f + 2);
            Stats.Table.cell_int r.af2_worst;
            Stats.Table.cell_int r.at2_worst;
            Stats.Table.cell_int r.floodset_worst;
            Stats.Table.cell_int r.early_fs_worst;
            Stats.Table.cell_check (r.af2_worst <= r.f + 2);
            Stats.Table.cell_check
              (r.early_fs_worst <= min (r.f + 2) (Config.t config + 1));
          ])
      (Stats.Table.make
         ~headers:
           [
             "f";
             "bound f+2";
             "A(f+2)";
             "A(t+2)";
             "FloodSet";
             "EarlyFS(SCS)";
             "A(f+2) <= f+2";
             "EarlyFS <= min(f+2,t+1)";
           ])
      rows
  in
  Format.fprintf ppf
    "@[<v>%s (n=7, t=2: A(t+2) is stuck at t+2=4, A(f+2) tracks f)@,%a@,@]"
    title Stats.Table.render table
