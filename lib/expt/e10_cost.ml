open Kernel

let name = "e10"
let title = "E10: failure-free cost - rounds and message copies"

type row = {
  label : string;
  n : int;
  t : int;
  decision_round : int;
  quiescent_round : int;
  messages : int;
  bytes : int;
}

let entries =
  [
    Registry.floodset;
    Registry.at_plus_2;
    Registry.at_plus_2_opt;
    Registry.hurfin_raynal;
    Registry.ct_diamond_s;
  ]

let measure configs =
  List.concat_map
    (fun (n, t) ->
      let config = Config.make ~n ~t in
      let quiet = Sim.Schedule.make ~model:Sim.Model.Es ~gst:Round.first [] in
      let proposals = Sim.Runner.distinct_proposals config in
      List.filter_map
        (fun entry ->
          if not (Registry.applicable entry config) then None
          else begin
            let trace =
              Sim.Runner.run ~record:true entry.Registry.algo config
                ~proposals quiet
            in
            Some
              {
                label = entry.Registry.label;
                n;
                t;
                decision_round =
                  (match Sim.Trace.global_decision_round trace with
                  | Some r -> Round.to_int r
                  | None -> 0);
                quiescent_round = Stats.Summary.rounds_to_quiescence trace;
                (* [Option.value ~default:0] cannot trigger here: the run
                   above passes ~record:true. *)
                messages =
                  Option.value ~default:0
                    (Stats.Summary.messages_of_trace trace);
                bytes =
                  Option.value ~default:0 (Stats.Summary.bytes_of_trace trace);
              }
          end)
        entries)
    configs

let run ppf =
  let rows = measure [ (5, 2); (9, 4); (15, 7); (25, 12) ] in
  let table =
    List.fold_left
      (fun table r ->
        Stats.Table.add_row table
          [
            r.label;
            Stats.Table.cell_int r.n;
            Stats.Table.cell_int r.t;
            Stats.Table.cell_int r.decision_round;
            Stats.Table.cell_int r.quiescent_round;
            Stats.Table.cell_int r.messages;
            Stats.Table.cell_int r.bytes;
          ])
      (Stats.Table.make
         ~headers:
           [ "algorithm"; "n"; "t"; "decision"; "quiescent"; "messages"; "bytes" ])
      rows
  in
  Format.fprintf ppf "@[<v>%s@,%a@,@]" title Stats.Table.render table
