open Kernel

let name = "e2"
let title = "E2: the t+2 lower bound, executably"

type row = {
  n : int;
  t : int;
  fast_decides_at : int;
  frontier : int;
  attack_violations : int;
  at2_survives : bool;
}

let frontier_of config =
  (* Valency exploration is exponential; keep it to small systems. *)
  if Config.n config > 4 then None
  else
    let proposals =
      Sim.Runner.binary_proposals config
        ~ones:(Pid.Set.of_ints (Listx.range 2 (Config.n config)))
    in
    let k, _ =
      Mc.Valency.frontier
        ~algo:(Sim.Algorithm.Packed (module Baselines.Floodset_ws))
        ~config ~proposals ()
    in
    Some k

let measure configs =
  List.map
    (fun (n, t) ->
      let config = Config.make ~n ~t in
      let entry = Registry.floodset_ws in
      let fast_decides_at =
        Measure.sync_worst_case ~samples:80 ~seed:11 ~entry ~config ()
      in
      let attack = Mc.Attack.floodset_ws_witness config in
      let survivor =
        Mc.Attack.run_witness Registry.at_plus_2.Registry.algo config
      in
      {
        n;
        t;
        fast_decides_at;
        frontier = Option.value (frontier_of config) ~default:(t - 1);
        attack_violations = List.length attack.Mc.Attack.violations;
        at2_survives = survivor.Mc.Attack.violations = [];
      })
    configs

let run ppf =
  let configs = [ (3, 1); (4, 1); (5, 2); (7, 3) ] in
  let rows = measure configs in
  let table =
    List.fold_left
      (fun table r ->
        Stats.Table.add_row table
          [
            Stats.Table.cell_int r.n;
            Stats.Table.cell_int r.t;
            Stats.Table.cell_int r.fast_decides_at;
            Stats.Table.cell_int r.frontier;
            Stats.Table.cell_int r.attack_violations;
            Stats.Table.cell_check (r.attack_violations > 0);
            Stats.Table.cell_check r.at2_survives;
          ])
      (Stats.Table.make
         ~headers:
           [
             "n";
             "t";
             "FloodSetWS sync";
             "bivalence frontier";
             "violations";
             "attack works";
             "A(t+2) survives";
           ])
      rows
  in
  Format.fprintf ppf "@[<v>%s@,%a@,@," title Stats.Table.render table;
  (* Show the Fig.-1-style construction once, in full. *)
  let config = Config.make ~n:3 ~t:1 in
  let report = Mc.Attack.floodset_ws_witness config in
  Format.fprintf ppf "The proof-guided run against FloodSetWS at %a:@,%a@,@,"
    Config.pp config Mc.Attack.pp_report report;
  Format.fprintf ppf "Space/time diagram (D=v decision, X crash):@,%a@,@,"
    Sim.Trace.pp_diagram report.Mc.Attack.trace;
  (* The full five-run construction of Claim 5.1 (the paper's Fig. 1),
     machine-checked at (5, 2). *)
  let fig1 = Mc.Figure1.against_floodset_ws (Config.make ~n:5 ~t:2) in
  Format.fprintf ppf "%a@]" Mc.Figure1.pp_outcome fig1
