open Kernel

let name = "e8"
let title = "E8: failure detectors simulated from ES"

type row = {
  gst : int;
  runs : int;
  completeness_ok : int;
  dp_accuracy_ok : int;
  ds_accuracy_ok : int;
  p_accuracy_ok : int;
  max_stabilisation : int;
}

let measure ?(seed = 71) ?(samples = 60) config gsts =
  List.map
    (fun gst ->
      let rng = Rng.create ~seed in
      let completeness = ref 0
      and dp = ref 0
      and ds = ref 0
      and p = ref 0
      and stab = ref 0 in
      for _ = 1 to samples do
        let schedule =
          if gst = 1 then
            Workload.Random_runs.synchronous_with_delays rng config ()
          else Workload.Random_runs.eventually_synchronous rng config ~gst ()
        in
        let r1 = Fd.Check.strong_completeness config schedule in
        if r1.Fd.Check.holds then incr completeness;
        let r2 = Fd.Check.eventual_strong_accuracy config schedule in
        if r2.Fd.Check.holds then incr dp;
        let r3, _ = Fd.Check.eventual_weak_accuracy config schedule in
        if r3.Fd.Check.holds then incr ds;
        let r4 = Fd.Check.perfect_accuracy config schedule in
        if r4.Fd.Check.holds then incr p;
        stab :=
          max !stab
            (Round.to_int (Fd.Simulate.stabilisation_round config schedule))
      done;
      {
        gst;
        runs = samples;
        completeness_ok = !completeness;
        dp_accuracy_ok = !dp;
        ds_accuracy_ok = !ds;
        p_accuracy_ok = !p;
        max_stabilisation = !stab;
      })
    gsts

let run ppf =
  let config = Config.make ~n:5 ~t:2 in
  let rows = measure config [ 1; 3; 5; 8 ] in
  let table =
    List.fold_left
      (fun table r ->
        Stats.Table.add_row table
          [
            Stats.Table.cell_int r.gst;
            Stats.Table.cell_int r.runs;
            Printf.sprintf "%d/%d" r.completeness_ok r.runs;
            Printf.sprintf "%d/%d" r.dp_accuracy_ok r.runs;
            Printf.sprintf "%d/%d" r.ds_accuracy_ok r.runs;
            Printf.sprintf "%d/%d" r.p_accuracy_ok r.runs;
            Stats.Table.cell_int r.max_stabilisation;
          ])
      (Stats.Table.make
         ~headers:
           [
             "gst";
             "runs";
             "completeness";
             "<>P accuracy";
             "<>S accuracy";
             "P accuracy";
             "max stabilisation";
           ])
      rows
  in
  Format.fprintf ppf
    "@[<v>%s (n=5, t=2; P accuracy can fail only when gst > 1)@,%a@,@]" title
    Stats.Table.render table
