open Kernel

let name = "e5"
let title = "E5: failure-free optimization decides at round 2"

type row = {
  label : string;
  failure_free : int;
  sync_worst : int;
  safe_async : bool;
}

let entries =
  [
    Registry.at_plus_2_opt;
    Registry.at_plus_2;
    Registry.hurfin_raynal;
    Registry.ct_diamond_s;
    Registry.floodset;
  ]

let measure ?(seed = 43) config =
  let quiet = Sim.Schedule.make ~model:Sim.Model.Es ~gst:Round.first [] in
  List.map
    (fun entry ->
      let failure_free =
        Option.value (Measure.decision_round_on entry config quiet) ~default:0
      in
      let sync_worst =
        Measure.sync_worst_case ~samples:150 ~seed ~entry ~config ()
      in
      let safe_async =
        if not entry.Registry.indulgent then
          (* Not expected to be safe in ES; measured by E9 instead. *)
          false
        else begin
          let proposals = Sim.Runner.distinct_proposals config in
          let outcome =
            Workload.Search.random_es ~samples:150 ~seed ~algo:entry.Registry.algo
              ~config ~proposals ()
          in
          outcome.Workload.Search.violations = []
        end
      in
      { label = entry.Registry.label; failure_free; sync_worst; safe_async })
    entries

let run ppf =
  let config = Config.make ~n:5 ~t:2 in
  let rows = measure config in
  let table =
    List.fold_left
      (fun table r ->
        Stats.Table.add_row table
          [
            r.label;
            Stats.Table.cell_int r.failure_free;
            Stats.Table.cell_int r.sync_worst;
            (if r.safe_async then "yes" else "n/a");
          ])
      (Stats.Table.make
         ~headers:[ "algorithm"; "failure-free"; "sync worst"; "ES-safe" ])
      rows
  in
  Format.fprintf ppf
    "@[<v>%s (n=5, t=2; two rounds is optimal for well-behaved runs [11])@,%a@,@]"
    title Stats.Table.render table
