(** Experiment E13 — the omission-fault adversary (DESIGN §13).

    Exhaustive serial sweeps of FloodSet and [A_{t+2}] at [n = 4, t = 1]
    under all four fault menus (crash, send-omit, recv-omit, mixed),
    reporting runs, the decision-round interval, and violation counts.

    The expected picture:

    + {e FloodSet breaks under send-omissions}: its [t + 1]-round crash
      argument needs a crash-free round to equalize views, and a
      send-omitter falsifies that without spending a crash — uniform
      agreement violations among the {e correct} processes. Pure
      receive-omissions leave it safe: a receive-omitter only starves
      itself, and its own decisions are excluded from the agreement
      judgment.
    + {e [A_{t+2}] stays safe under every menu} (indulgence covers
      omissions: an omitted message is indistinguishable from a slow
      one), but its decision rounds {e shift}: the crash-only interval
      [[t+2, t+2]] stretches to a strictly larger maximum as omitters
      starve the coordinator rotation — the measured "where" of the
      shift. *)

type row = {
  algorithm : string;
  faults : Sim.Model.faults;
  n : int;
  t : int;
  runs : int;
  min_decision : int;
  max_decision : int;
  violations : int;
  expected_safe : bool;
}

val measure : unit -> row list
val run : Format.formatter -> unit
val name : string
val title : string
