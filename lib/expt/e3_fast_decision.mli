(** Experiment E3 — Fig. 2's fast-decision property: in {e every}
    synchronous run of [A_{t+2}], every process that decides does so by
    round [t + 2] (Lemma 13), independently of the underlying consensus
    module [C].

    Checked three ways: exhaustive serial sweeps over all binary inputs for
    small systems; deterministic cascades plus random synchronous schedules
    (with crash-round delays, the part SCS does not even allow) for larger
    ones; and the same again with [C] padded by 40 idle rounds — the
    padding must not move a single synchronous decision. The sweeps also
    confirm the decision round is {e exactly} [t + 2]: the algorithm never
    decides earlier without the Fig. 4 optimization, so the bound is tight
    run-by-run, not just in the worst case. *)

type row = {
  variant : string;
  n : int;
  t : int;
  min_decision : int;
  max_decision : int;
  runs : int;
  safe : bool;
}

val measure : ?seed:int -> (int * int) list -> row list
val run : Format.formatter -> unit
val name : string
val title : string
