open Kernel

let name = "e1"
let title = "E1: worst-case decision round in synchronous runs"

type row = {
  label : string;
  n : int;
  t : int;
  predicted : int;
  measured : int;
  indulgent : bool;
}

let entries =
  [
    Registry.floodset;
    Registry.floodset_ws;
    Registry.early_floodset;
    Registry.at_plus_2;
    Registry.a_diamond_s;
    Registry.at_plus_2_slow;
    Registry.hurfin_raynal;
    Registry.ct_diamond_s;
    Registry.af_plus_2;
  ]

let measure ?(seed = 7) ?(samples = 150) configs =
  List.concat_map
    (fun (n, t) ->
      let config = Config.make ~n ~t in
      List.filter_map
        (fun entry ->
          if not (Registry.applicable entry config) then None
          else
            let measured =
              Measure.sync_worst_case ~samples ~seed ~entry ~config ()
            in
            Some
              {
                label = entry.Registry.label;
                n;
                t;
                predicted = entry.Registry.sync_worst_case config;
                measured;
                indulgent = entry.Registry.indulgent;
              })
        entries)
    configs

let run ppf =
  let rows = measure Measure.standard_configs in
  let table =
    List.fold_left
      (fun table r ->
        Stats.Table.add_row table
          [
            r.label;
            Stats.Table.cell_int r.n;
            Stats.Table.cell_int r.t;
            Stats.Table.cell_int r.predicted;
            Stats.Table.cell_int r.measured;
            Stats.Table.cell_bool r.indulgent;
            Stats.Table.cell_check (r.measured = r.predicted);
          ])
      (Stats.Table.make
         ~headers:
           [ "algorithm"; "n"; "t"; "predicted"; "measured"; "indulgent"; "match" ])
      rows
  in
  Format.fprintf ppf "@[<v>%s@,%a@,@]" title Stats.Table.render table
