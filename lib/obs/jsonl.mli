(** JSON Lines export and import of event streams.

    One {!Event.t} per line, encoded with {!Event.to_json}. The format is
    append-friendly (a sink can stream lines as the run executes), diffable
    (a fixed config + seed + schedule produces a byte-identical log — the
    determinism the test suite asserts) and greppable. [ipi run --trace]
    writes it; [ipi trace] reads it back. *)

val line : Event.t -> string
(** One compact JSON object, no trailing newline. *)

val to_string : Event.t list -> string
(** Newline-terminated lines, in order. *)

val to_channel : out_channel -> Event.t list -> unit

val sink : (string -> unit) -> Sink.t
(** A streaming sink: calls the consumer with each event's {!line}
    (newline not included) as it is emitted. *)

val parse : string -> (Event.t list, string) result
(** Parse a whole log. Blank lines and [#]-prefixed comment lines are
    skipped; errors name the offending line number. *)
