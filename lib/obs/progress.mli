(** Throttled progress snapshots for long-running sweeps and fuzz
    campaigns.

    A meter counts work items (shards, orbits, runs — whatever unit the
    driver steps it by) plus schedules executed and dedup lookups, and
    emits a {!snapshot} through a caller-supplied callback whenever the
    item count crosses a multiple of [every]. Emission points therefore
    depend only on counts, never on wall time, so tests that capture
    snapshots see a deterministic sequence; the snapshot {e contents}
    include wall-derived rate and ETA, which are only for display.

    Meters may be stepped concurrently from worker domains: state and
    emission are guarded by a mutex, so callbacks run serialized (and must
    not themselves step the meter). The {!disabled} meter makes every
    operation an immediate match, mirroring {!Sink.noop}. *)

type snapshot = {
  seq : int;
      (** Monotonic per-meter sequence number, starting at 1. A heartbeat
          reader uses it to detect truncated or interleaved JSONL streams:
          sequence numbers in a well-formed heartbeat strictly increase. *)
  label : string;
  items : int;  (** Work items completed so far. *)
  total : int option;  (** Expected items, when the driver knows it. *)
  runs : int;  (** Schedules executed so far (0 if the driver doesn't count them). *)
  distinct : int;
      (** Post-dedup runs actually executed, when a reduction reports
          them (0 otherwise). *)
  elapsed_s : float;
  per_s : float option;
      (** Distinct runs per second when a reduction reports them
          ([distinct > 0] — raw [runs] inflate with every table hit),
          else runs per second when [runs > 0], else items per second;
          [None] until the clock has measurably advanced. *)
  eta_s : float option;
      (** Estimated seconds remaining; needs [total]. Extrapolates the
          per-item cost observed so far, which under a reduction is the
          {e distinct} (post-dedup) work per shard. *)
  hit_rate : float option;
      (** Dedup hits / lookups, when the driver reports lookups. *)
  final : bool;  (** [true] only for the snapshot {!finish} emits. *)
}

type t

val disabled : t
val enabled : t -> bool

val create :
  ?every:int -> ?total:int -> label:string -> emit:(snapshot -> unit) -> unit -> t
(** A live meter. [every] (default 1) throttles emission to every
    [every]-th item. [emit] runs under the meter's mutex. *)

val set_total : t -> int -> unit
(** Drivers that only learn the item count after sharding call this before
    stepping. No-op on {!disabled}. *)

val step :
  ?distinct:int -> t -> items:int -> runs:int -> hits:int -> lookups:int -> unit
(** Add completed work. Emits a snapshot if the item count crossed a
    multiple of [every]. All arguments are deltas; pass 0 (the [distinct]
    default) for dimensions the driver doesn't track. No-op on
    {!disabled}. *)

val finish : t -> unit
(** Emit one last snapshot ([final = true]) regardless of throttling.
    No-op on {!disabled}. *)

val render : snapshot -> string
(** One human line, e.g.
    ["sweep 12/84 (14%) | 35210 runs | 8123 runs/s | hit 62.1% | eta 8.2s"]. *)

val snapshot_to_json : snapshot -> Json.t
(** A flat object, for JSONL heartbeat files. *)

val snapshot_of_json : Json.t -> (snapshot, string) result
(** Inverse of {!snapshot_to_json}, for heartbeat probes reading JSONL
    files back. Errors name the offending field. *)

val check_heartbeat :
  now:float ->
  mtime:float ->
  max_age_items:int ->
  snapshot list ->
  (unit, string) result
(** Staleness probe over a parsed heartbeat stream. [mtime] is the
    heartbeat file's last-modified time and [now] the probe time (both
    [Unix] epoch seconds). The stream is healthy when sequence numbers
    strictly increase and either the last snapshot is final, or the file
    was written recently enough: the item budget [max_age_items] is
    converted to a time budget using the last snapshot's observed rate
    ([per_s], falling back to [items/elapsed_s]), and the file's age must
    not exceed it. A stream too young to have a rate is healthy. Errors
    carry a pinned, human-readable reason. *)
