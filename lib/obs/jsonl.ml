let line ev = Json.to_string (Event.to_json ev)

let to_string events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun ev ->
      Buffer.add_string buf (line ev);
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

let to_channel oc events =
  List.iter
    (fun ev ->
      output_string oc (line ev);
      output_char oc '\n')
    events

let sink consume = Sink.make (fun ev -> consume (line ev))

let parse contents =
  let lines = String.split_on_char '\n' contents in
  let rec loop lineno acc = function
    | [] -> Ok (List.rev acc)
    | raw :: rest ->
        let trimmed = String.trim raw in
        if trimmed = "" || trimmed.[0] = '#' then loop (lineno + 1) acc rest
        else
          let parsed =
            match Json.of_string trimmed with
            | Ok json -> Event.of_json json
            | Error e -> Error e
          in
          (match parsed with
          | Ok ev -> loop (lineno + 1) (ev :: acc) rest
          | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
  in
  loop 1 [] lines
