(** Atomic artifact writes.

    Every machine-readable artifact the tools leave behind — bench JSON,
    fuzz counterexamples, heartbeat JSONL, sweep checkpoints — goes through
    one tmp+rename helper, so a run interrupted at any instant (SIGKILL,
    power loss, a chaos-harness murder) never leaves a truncated or
    half-written file at the published path: readers either see the
    previous complete artifact or the new complete one, never a prefix.

    The temporary file lives in the same directory as the target (rename
    is only atomic within a filesystem) and carries the writing process's
    pid, so concurrent writers cannot clobber each other's staging file. *)

val write : string -> (out_channel -> unit) -> unit
(** [write path f] runs [f] on a channel backed by a staging file next to
    [path], flushes and closes it, then atomically renames it over [path].
    On any exception from [f] (or from the filesystem) the staging file is
    removed and the exception re-raised; [path] is untouched. *)

val write_string : string -> string -> unit
(** [write_string path s] is [write path (fun oc -> output_string oc s)]. *)
