type counter = { c_name : string; mutable count : int }
type gauge = { g_name : string; mutable value : int option }

type hist_state = {
  mutable h_count : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable h_min : float;
  mutable h_max : float;
}

type histogram = { h_name : string; state : hist_state }

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = { mutable rev_instruments : instrument list }

let create () = { rev_instruments = [] }

let instrument_name = function
  | Counter c -> c.c_name
  | Gauge g -> g.g_name
  | Histogram h -> h.h_name

let find t name =
  List.find_opt (fun i -> instrument_name i = name) t.rev_instruments

let register t i = t.rev_instruments <- i :: t.rev_instruments

let counter t name =
  match find t name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg ("Metrics.counter: " ^ name ^ " is not a counter")
  | None ->
      let c = { c_name = name; count = 0 } in
      register t (Counter c);
      c

let incr ?(by = 1) c = c.count <- c.count + by
let counter_value c = c.count

let gauge t name =
  match find t name with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " is not a gauge")
  | None ->
      let g = { g_name = name; value = None } in
      register t (Gauge g);
      g

let set g v = g.value <- Some v
let gauge_value g = g.value

let histogram t name =
  match find t name with
  | Some (Histogram h) -> h
  | Some _ ->
      invalid_arg ("Metrics.histogram: " ^ name ^ " is not a histogram")
  | None ->
      let h =
        {
          h_name = name;
          state =
            { h_count = 0; sum = 0.; sumsq = 0.; h_min = infinity; h_max = neg_infinity };
        }
      in
      register t (Histogram h);
      h

let observe h x =
  let s = h.state in
  s.h_count <- s.h_count + 1;
  s.sum <- s.sum +. x;
  s.sumsq <- s.sumsq +. (x *. x);
  if x < s.h_min then s.h_min <- x;
  if x > s.h_max then s.h_max <- x

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let summary h =
  let s = h.state in
  if s.h_count = 0 then None
  else
    let n = float_of_int s.h_count in
    let mean = s.sum /. n in
    let variance = Float.max 0. ((s.sumsq /. n) -. (mean *. mean)) in
    Some
      {
        count = s.h_count;
        mean;
        stddev = sqrt variance;
        min = s.h_min;
        max = s.h_max;
      }

let fold_samples h ~count ~sum ~sumsq ~min:mn ~max:mx =
  if count < 0 then invalid_arg "Metrics.fold_samples: negative count";
  if count > 0 then begin
    let s = h.state in
    s.h_count <- s.h_count + count;
    s.sum <- s.sum +. sum;
    s.sumsq <- s.sumsq +. sumsq;
    if mn < s.h_min then s.h_min <- mn;
    if mx > s.h_max then s.h_max <- mx
  end

let find_counter t name =
  match find t name with Some (Counter c) -> Some c.count | _ -> None

let find_gauge t name =
  match find t name with Some (Gauge g) -> g.value | _ -> None

let find_histogram t name =
  match find t name with Some (Histogram h) -> summary h | _ -> None

let instruments t = List.rev t.rev_instruments

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i instrument ->
      if i > 0 then Format.fprintf ppf "@,";
      match instrument with
      | Counter c -> Format.fprintf ppf "%-28s %d" c.c_name c.count
      | Gauge g ->
          Format.fprintf ppf "%-28s %s" g.g_name
            (match g.value with Some v -> string_of_int v | None -> "-")
      | Histogram h -> (
          match summary h with
          | None -> Format.fprintf ppf "%-28s (empty)" h.h_name
          | Some s ->
              Format.fprintf ppf
                "%-28s n=%d mean=%.6g stddev=%.6g min=%.6g max=%.6g" h.h_name
                s.count s.mean s.stddev s.min s.max))
    (instruments t);
  Format.fprintf ppf "@]"

let to_json t =
  let counters, gauges, histograms =
    List.fold_left
      (fun (cs, gs, hs) instrument ->
        match instrument with
        | Counter c -> ((c.c_name, Json.Int c.count) :: cs, gs, hs)
        | Gauge g ->
            let v =
              match g.value with Some v -> Json.Int v | None -> Json.Null
            in
            (cs, (g.g_name, v) :: gs, hs)
        | Histogram h ->
            let v =
              match summary h with
              | None -> Json.Null
              | Some s ->
                  Json.Obj
                    [
                      ("count", Json.Int s.count);
                      ("mean", Json.Float s.mean);
                      ("stddev", Json.Float s.stddev);
                      ("min", Json.Float s.min);
                      ("max", Json.Float s.max);
                    ]
            in
            (cs, gs, (h.h_name, v) :: hs))
      ([], [], []) (instruments t)
  in
  Json.Obj
    [
      ("counters", Json.Obj (List.rev counters));
      ("gauges", Json.Obj (List.rev gauges));
      ("histograms", Json.Obj (List.rev histograms));
    ]

let counting_sink t =
  let runs = counter t "sim.runs" in
  let rounds = counter t "sim.rounds" in
  let broadcasts = counter t "sim.broadcasts" in
  let sent = counter t "sim.messages_sent" in
  let delivered = counter t "sim.messages_delivered" in
  let dropped = counter t "sim.messages_dropped" in
  let delayed = counter t "sim.messages_delayed" in
  let bytes = counter t "sim.bytes_sent" in
  let crashes = counter t "sim.crashes" in
  let decisions = counter t "sim.decisions" in
  let halts = counter t "sim.halts" in
  let fd_outputs = counter t "sim.fd_outputs" in
  let first_decision = gauge t "sim.first_decision_round" in
  let global_decision = gauge t "sim.global_decision_round" in
  let rounds_per_run = histogram t "sim.rounds_per_run" in
  Sink.make (fun ev ->
      match ev with
      | Event.Run_start _ -> ()
      | Event.Round_start _ -> incr rounds
      | Event.Send { copies; bytes = b; _ } ->
          incr broadcasts;
          incr ~by:copies sent;
          incr ~by:b bytes
      | Event.Deliver _ -> incr delivered
      | Event.Drop _ -> incr dropped
      | Event.Delay _ -> incr delayed
      | Event.Crash _ -> incr crashes
      | Event.Decide { round; _ } ->
          incr decisions;
          let r = Kernel.Round.to_int round in
          (match gauge_value first_decision with
          | Some prev when prev <= r -> ()
          | Some _ | None -> set first_decision r);
          (match gauge_value global_decision with
          | Some prev when prev >= r -> ()
          | Some _ | None -> set global_decision r)
      | Event.Halt _ -> incr halts
      | Event.Fd_output _ -> incr fd_outputs
      | Event.Run_end { rounds = r; _ } ->
          incr runs;
          observe rounds_per_run (float_of_int r))
