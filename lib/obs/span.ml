type record = {
  label : string;
  track : int;
  depth : int;
  start_us : int;
  dur_us : int;
  cpu_us : int;
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
}

(* An open span holds the clocks and GC counters captured at [enter];
   [exit] turns the deltas into a [record]. Minor words come from
   [Gc.minor_words] — the exact domain-local allocation pointer — because
   [Gc.quick_stat]'s counters only refresh at collections on OCaml 5;
   the collection-granular fields still come from [quick_stat]. *)
type frame = {
  f_label : string;
  f_depth : int;
  f_wall : float;
  f_cpu : float;
  f_minor : float;
  f_gc : Gc.stat;
}

type recorder = {
  r_origin : float;
  r_track : int;
  mutable stack : frame list;
  mutable rev_records : record list;
}

type t = Disabled | Enabled of recorder

let disabled = Disabled
let enabled = function Disabled -> false | Enabled _ -> true
let origin () = Unix.gettimeofday ()

let recorder ?origin:(o = Unix.gettimeofday ()) ?(track = 0) () =
  Enabled { r_origin = o; r_track = track; stack = []; rev_records = [] }

let child t ~track =
  match t with
  | Disabled -> Disabled
  | Enabled r ->
      Enabled { r_origin = r.r_origin; r_track = track; stack = []; rev_records = [] }

let enter t label =
  match t with
  | Disabled -> ()
  | Enabled r ->
      let frame =
        {
          f_label = label;
          f_depth = List.length r.stack;
          f_wall = Unix.gettimeofday ();
          f_cpu = Sys.time ();
          f_minor = Gc.minor_words ();
          f_gc = Gc.quick_stat ();
        }
      in
      r.stack <- frame :: r.stack

let us_of_span f = int_of_float (f *. 1e6)

let exit t =
  match t with
  | Disabled -> ()
  | Enabled r -> (
      match r.stack with
      | [] -> invalid_arg "Span.exit: no open span"
      | frame :: rest ->
          let wall = Unix.gettimeofday () in
          let cpu = Sys.time () in
          let minor = Gc.minor_words () in
          let gc = Gc.quick_stat () in
          let g0 = frame.f_gc in
          r.stack <- rest;
          r.rev_records <-
            {
              label = frame.f_label;
              track = r.r_track;
              depth = frame.f_depth;
              start_us = us_of_span (frame.f_wall -. r.r_origin);
              dur_us = us_of_span (wall -. frame.f_wall);
              cpu_us = us_of_span (cpu -. frame.f_cpu);
              minor_words = minor -. frame.f_minor;
              major_words = gc.Gc.major_words -. g0.Gc.major_words;
              promoted_words = gc.Gc.promoted_words -. g0.Gc.promoted_words;
              minor_collections =
                gc.Gc.minor_collections - g0.Gc.minor_collections;
              major_collections =
                gc.Gc.major_collections - g0.Gc.major_collections;
            }
            :: r.rev_records)

let with_ t label f =
  match t with
  | Disabled -> f ()
  | Enabled _ ->
      enter t label;
      Fun.protect ~finally:(fun () -> exit t) f

let records = function
  | Disabled -> []
  | Enabled r -> List.rev r.rev_records

let absorb parent child =
  match (parent, child) with
  | Disabled, _ | _, Disabled -> ()
  | Enabled p, Enabled c ->
      (* Completion order within each recorder is preserved; the child's
         records land after everything the parent completed so far. *)
      p.rev_records <- List.rev_append (List.rev c.rev_records) p.rev_records;
      c.rev_records <- []

let record_to_json r =
  Json.Obj
    [
      ("label", Json.String r.label);
      ("track", Json.Int r.track);
      ("depth", Json.Int r.depth);
      ("start_us", Json.Int r.start_us);
      ("dur_us", Json.Int r.dur_us);
      ("cpu_us", Json.Int r.cpu_us);
      ("minor_words", Json.Float r.minor_words);
      ("major_words", Json.Float r.major_words);
      ("promoted_words", Json.Float r.promoted_words);
      ("minor_collections", Json.Int r.minor_collections);
      ("major_collections", Json.Int r.major_collections);
    ]
