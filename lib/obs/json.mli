(** A minimal JSON tree, emitter and parser.

    The observability layer needs machine-readable output (JSONL event logs,
    Chrome traces, metrics dumps, bench artifacts) but the repository has no
    JSON dependency; this module is the small, dependency-free subset we
    need: compact one-line emission and a strict recursive-descent parser
    for reading event logs back ({!Jsonl.parse}). Numbers we emit are
    ASCII; the parser additionally accepts the usual escapes. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. Floats are printed with enough digits
    to round-trip; NaN and infinities become [null] (JSON has no spelling
    for them). *)

val pp : Format.formatter -> t -> unit
(** Same compact rendering, onto a formatter. *)

val of_string : string -> (t, string) result
(** Strict parse of one JSON value (surrounding whitespace allowed).
    Errors carry a character offset. *)

(** {2 Accessors} — all total, returning [None] on shape mismatch. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]. *)

val to_int_opt : t -> int option
(** Accepts [Int] and integral [Float]. *)

val to_float_opt : t -> float option
val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option
