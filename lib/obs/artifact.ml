let write path f =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (match f oc with
  | () -> close_out oc
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  match Sys.rename tmp path with
  | () -> ()
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let write_string path s = write path (fun oc -> output_string oc s)
