(** Length-prefixed JSON framing for the supervisor/worker pipe protocol.

    A frame is the decimal byte length of the payload, a newline, then the
    payload itself: ["17\n{\"type\":\"hello\"}"]. The explicit length makes
    framing independent of the payload's contents (embedded newlines are
    fine) and lets a reader detect truncation — a half-written frame from a
    murdered worker parses as {!Truncated}, never as a shorter valid
    message.

    Two reader disciplines are provided. {!read} blocks on an
    [in_channel] — the worker side, which has nothing else to do. The
    {!decoder} is incremental: the supervisor feeds it whatever bytes
    [Unix.read] returned after a [select] and drains complete frames, so a
    worker stopped mid-write (SIGSTOP, chaos stall) can never block the
    supervisor's event loop on a partial frame. *)

type error =
  | Eof  (** clean end of stream at a frame boundary *)
  | Truncated  (** stream ended inside a header or payload *)
  | Too_large of int  (** declared length exceeds {!max_frame} *)
  | Malformed of string  (** bad header or payload that is not valid JSON *)

val pp_error : Format.formatter -> error -> unit

val max_frame : int
(** Upper bound on a single frame's payload (16 MiB): a corrupt header
    cannot make a reader allocate unboundedly. *)

val write : out_channel -> Json.t -> unit
(** Emit one frame and flush, so the peer's [select] sees it promptly. *)

val read : in_channel -> (Json.t, error) result
(** Blocking read of exactly one frame. *)

(** {2 Incremental decoding} *)

type decoder

val decoder : unit -> decoder

val feed : decoder -> bytes -> int -> unit
(** [feed d buf n] appends the first [n] bytes of [buf] to the decoder's
    internal buffer. *)

val next : decoder -> (Json.t option, error) result
(** The next complete frame, [Ok None] when more bytes are needed. Errors
    are sticky for {!Too_large} and {!Malformed} headers (the stream can no
    longer be framed); a malformed {e payload} consumes the frame and is
    reported once, so the caller can keep draining subsequent frames. *)

val pending : decoder -> int
(** Bytes buffered but not yet consumed — non-zero at worker death means
    the worker died mid-frame. *)
