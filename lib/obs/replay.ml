open Kernel

type run = {
  algorithm : string option;
  n : int;
  t : int option;
  rounds : int;
  events : Event.t list;
}

let of_events events =
  let algorithm, t =
    List.fold_left
      (fun ((_, _) as acc) ev ->
        match ev with
        | Event.Run_start { algorithm; t = t'; _ } -> (Some algorithm, Some t')
        | _ -> acc)
      (None, None) events
  in
  let n =
    List.fold_left
      (fun acc ev ->
        match ev with
        | Event.Run_start { n; _ } -> max acc n
        | Event.Send { src; _ } -> max acc (Pid.to_int src)
        | Event.Deliver { src; dst; _ }
        | Event.Drop { src; dst; _ }
        | Event.Delay { src; dst; _ } ->
            max acc (max (Pid.to_int src) (Pid.to_int dst))
        | Event.Crash { pid; _ }
        | Event.Decide { pid; _ }
        | Event.Halt { pid; _ }
        | Event.Fd_output { pid; _ } -> max acc (Pid.to_int pid)
        | Event.Round_start _ | Event.Run_end _ -> acc)
      0 events
  in
  let rounds =
    List.fold_left
      (fun acc ev ->
        match ev with
        | Event.Run_end { rounds; _ } -> max acc rounds
        | Event.Round_start { round } -> max acc (Round.to_int round)
        | _ -> acc)
      0 events
  in
  if n = 0 then Error "event stream mentions no process"
  else Ok { algorithm; n; t; rounds; events }

let crash_round run p =
  List.find_map
    (function
      | Event.Crash { pid; round } when Pid.equal pid p ->
          Some (Round.to_int round)
      | _ -> None)
    run.events

let halt_round run p =
  List.find_map
    (function
      | Event.Halt { pid; round } when Pid.equal pid p ->
          Some (Round.to_int round)
      | _ -> None)
    run.events

let decisions run =
  List.filter_map
    (function
      | Event.Decide { pid; round; value } -> Some (pid, round, value)
      | _ -> None)
    run.events

let pp_summary ppf run =
  let ds = decisions run in
  Format.fprintf ppf "@[<v>%s on n=%d%s: %d round(s), %d decision(s)%a@]"
    (Option.value run.algorithm ~default:"(unknown algorithm)")
    run.n
    (match run.t with Some t -> Printf.sprintf " t=%d" t | None -> "")
    run.rounds (List.length ds)
    (fun ppf () ->
      if ds <> [] then
        Format.fprintf ppf "@,decisions: [%a]"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
             (fun ppf (p, r, v) ->
               Format.fprintf ppf "%a:%a@@r%d" Pid.pp p Value.pp v
                 (Round.to_int r)))
          ds)
    ()

(* Mirrors Sim.Trace.pp_diagram, but cells come from the event stream:
   Halt events make the "h" cells exact instead of inferred from who sent. *)
let pp_diagram ppf run =
  let decision_at p k =
    List.find_map
      (fun (pid, round, value) ->
        if Pid.equal pid p && Round.to_int round = k then Some value else None)
      (decisions run)
  in
  let cell p k =
    match crash_round run p with
    | Some r when r < k -> "."
    | Some r when r = k -> "X"
    | _ -> (
        match decision_at p k with
        | Some v -> Format.asprintf "D=%a" Value.pp v
        | None -> (
            match halt_round run p with
            | Some h when h < k -> "h"
            | _ -> "*"))
  in
  let width = 5 in
  let pad s =
    let len = String.length s in
    if len >= width then s else s ^ String.make (width - len) ' '
  in
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "     ";
  for k = 1 to run.rounds do
    Format.fprintf ppf "%s" (pad (Printf.sprintf "r%d" k))
  done;
  Format.fprintf ppf "@,";
  List.iter
    (fun p ->
      Format.fprintf ppf "%-4s " (Pid.to_string p);
      for k = 1 to run.rounds do
        Format.fprintf ppf "%s" (pad (cell p k))
      done;
      Format.fprintf ppf "@,")
    (Pid.all ~n:run.n);
  List.iter
    (fun ev ->
      match ev with
      | Event.Drop { src; dst; round } ->
          Format.fprintf ppf "  r%d: %a -> %a lost@," (Round.to_int round)
            Pid.pp src Pid.pp dst
      | Event.Delay { src; dst; round; until } ->
          Format.fprintf ppf "  r%d: %a -> %a delayed until r%d@,"
            (Round.to_int round) Pid.pp src Pid.pp dst (Round.to_int until)
      | _ -> ())
    run.events;
  Format.fprintf ppf "@]"
