(** A registry of named counters, gauges and histograms.

    The registry is the mutable side of the observability layer: producers
    (engine sinks, the model checker, the workload search, the bench
    harness) bump instruments; consumers render the whole registry as a
    text dump ({!pp}) or JSON ({!to_json} — the serializer behind
    [BENCH_*.json] and [ipi run --metrics]).

    Instruments are created on first use ({!counter} etc. are
    get-or-create) and rendered in creation order. Names are free-form;
    the convention in this repository is [<layer>.<what>], e.g.
    [sim.messages_delivered] or [mc.runs]. *)

type t

type counter
(** Monotonically increasing integer. *)

type gauge
(** A last-write-wins integer, unset until first {!set}. *)

type histogram
(** Streaming summary of float observations: count, mean, stddev, min,
    max (no buckets — the consumers here want moments, not quantiles). *)

val create : unit -> t

val counter : t -> string -> counter
val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : t -> string -> gauge
val set : gauge -> int -> unit
val gauge_value : gauge -> int option

val histogram : t -> string -> histogram
val observe : histogram -> float -> unit

val fold_samples :
  histogram ->
  count:int ->
  sum:float ->
  sumsq:float ->
  min:float ->
  max:float ->
  unit
(** Merge a pre-aggregated batch of observations into the histogram in one
    step, as if each underlying sample had been {!observe}d individually.
    This is how per-domain accumulators ({!Prof}) land in a shared registry
    without the registry ever being touched from a worker domain. A
    [count] of [0] is a no-op (the [min]/[max] arguments are ignored);
    negative counts raise [Invalid_argument]. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** population standard deviation; 0 for count <= 1 *)
  min : float;
  max : float;
}

val summary : histogram -> summary option
(** [None] before the first observation. *)

val find_counter : t -> string -> int option
(** Read-only lookup (does not create). *)

val find_gauge : t -> string -> int option

val find_histogram : t -> string -> summary option
(** Read-only lookup (does not create): the histogram's {!summary}, [None]
    if no histogram of that name exists or it has no observations yet. *)

val pp : Format.formatter -> t -> unit
(** One instrument per line, creation order. *)

val to_json : t -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {...}}]. *)

val counting_sink : t -> Sink.t
(** A sink that folds run events into the registry:

    - counters [sim.runs], [sim.rounds], [sim.broadcasts],
      [sim.messages_sent] (point-to-point copies), [sim.messages_delivered],
      [sim.messages_dropped], [sim.messages_delayed], [sim.bytes_sent],
      [sim.crashes], [sim.decisions], [sim.halts], [sim.fd_outputs];
    - gauges [sim.first_decision_round] (min over the run) and
      [sim.global_decision_round] (max);
    - histogram [sim.rounds_per_run] observed at each [Run_end]. *)
