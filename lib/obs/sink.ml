type t = Noop | Emit of (Event.t -> unit)

let noop = Noop
let make f = Emit f
let enabled = function Noop -> false | Emit _ -> true
let emit sink ev = match sink with Noop -> () | Emit f -> f ev

let tee a b =
  match (a, b) with
  | Noop, other | other, Noop -> other
  | Emit f, Emit g ->
      Emit
        (fun ev ->
          f ev;
          g ev)

let memory () =
  let rev_events = ref [] in
  (Emit (fun ev -> rev_events := ev :: !rev_events),
   fun () -> List.rev !rev_events)
