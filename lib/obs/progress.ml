type snapshot = {
  label : string;
  items : int;
  total : int option;
  runs : int;
  elapsed_s : float;
  per_s : float option;
  eta_s : float option;
  hit_rate : float option;
  final : bool;
}

type state = {
  s_label : string;
  every : int;
  started : float;
  emit : snapshot -> unit;
  lock : Mutex.t;
  mutable total : int option;
  mutable items : int;
  mutable runs : int;
  mutable hits : int;
  mutable lookups : int;
}

type t = Disabled | Enabled of state

let disabled = Disabled
let enabled = function Disabled -> false | Enabled _ -> true

let create ?(every = 1) ?total ~label ~emit () =
  if every < 1 then invalid_arg "Progress.create: every < 1";
  Enabled
    {
      s_label = label;
      every;
      started = Unix.gettimeofday ();
      emit;
      lock = Mutex.create ();
      total;
      items = 0;
      runs = 0;
      hits = 0;
      lookups = 0;
    }

let set_total t total =
  match t with
  | Disabled -> ()
  | Enabled s ->
      Mutex.lock s.lock;
      s.total <- Some total;
      Mutex.unlock s.lock

(* Call with [s.lock] held. *)
let snapshot_locked s ~final =
  let elapsed = Unix.gettimeofday () -. s.started in
  let per_s =
    if elapsed <= 0. then None
    else if s.runs > 0 then Some (float_of_int s.runs /. elapsed)
    else if s.items > 0 then Some (float_of_int s.items /. elapsed)
    else None
  in
  let eta_s =
    match s.total with
    | Some total when s.items > 0 && total > s.items ->
        Some (elapsed *. float_of_int (total - s.items) /. float_of_int s.items)
    | Some total when s.items >= total -> Some 0.
    | _ -> None
  in
  let hit_rate =
    if s.lookups > 0 then Some (float_of_int s.hits /. float_of_int s.lookups)
    else None
  in
  {
    label = s.s_label;
    items = s.items;
    total = s.total;
    runs = s.runs;
    elapsed_s = elapsed;
    per_s;
    eta_s;
    hit_rate;
    final;
  }

let step t ~items ~runs ~hits ~lookups =
  match t with
  | Disabled -> ()
  | Enabled s ->
      Mutex.lock s.lock;
      let before = s.items in
      s.items <- s.items + items;
      s.runs <- s.runs + runs;
      s.hits <- s.hits + hits;
      s.lookups <- s.lookups + lookups;
      let crossed = s.items / s.every > before / s.every in
      let snap = if crossed then Some (snapshot_locked s ~final:false) else None in
      (match snap with Some snap -> s.emit snap | None -> ());
      Mutex.unlock s.lock

let finish t =
  match t with
  | Disabled -> ()
  | Enabled s ->
      Mutex.lock s.lock;
      let snap = snapshot_locked s ~final:true in
      s.emit snap;
      Mutex.unlock s.lock

let render snap =
  let buf = Buffer.create 96 in
  Buffer.add_string buf snap.label;
  (match snap.total with
  | Some total when total > 0 ->
      Buffer.add_string buf
        (Printf.sprintf " %d/%d (%d%%)" snap.items total
           (snap.items * 100 / total))
  | _ -> Buffer.add_string buf (Printf.sprintf " %d" snap.items));
  if snap.runs > 0 then
    Buffer.add_string buf (Printf.sprintf " | %d runs" snap.runs);
  (match snap.per_s with
  | Some r ->
      let unit = if snap.runs > 0 then "runs/s" else "items/s" in
      Buffer.add_string buf (Printf.sprintf " | %.0f %s" r unit)
  | None -> ());
  (match snap.hit_rate with
  | Some h -> Buffer.add_string buf (Printf.sprintf " | hit %.1f%%" (100. *. h))
  | None -> ());
  (match snap.eta_s with
  | Some eta when not snap.final ->
      Buffer.add_string buf (Printf.sprintf " | eta %.1fs" eta)
  | _ -> ());
  if snap.final then
    Buffer.add_string buf (Printf.sprintf " | done in %.2fs" snap.elapsed_s);
  Buffer.contents buf

let snapshot_to_json snap =
  let opt f = function Some v -> f v | None -> Json.Null in
  Json.Obj
    [
      ("label", Json.String snap.label);
      ("items", Json.Int snap.items);
      ("total", opt (fun v -> Json.Int v) snap.total);
      ("runs", Json.Int snap.runs);
      ("elapsed_s", Json.Float snap.elapsed_s);
      ("per_s", opt (fun v -> Json.Float v) snap.per_s);
      ("eta_s", opt (fun v -> Json.Float v) snap.eta_s);
      ("hit_rate", opt (fun v -> Json.Float v) snap.hit_rate);
      ("final", Json.Bool snap.final);
    ]
