type snapshot = {
  seq : int;
  label : string;
  items : int;
  total : int option;
  runs : int;
  distinct : int;
  elapsed_s : float;
  per_s : float option;
  eta_s : float option;
  hit_rate : float option;
  final : bool;
}

type state = {
  s_label : string;
  every : int;
  started : float;
  emit : snapshot -> unit;
  lock : Mutex.t;
  mutable seq : int;
  mutable total : int option;
  mutable items : int;
  mutable runs : int;
  mutable distinct : int;
  mutable hits : int;
  mutable lookups : int;
}

type t = Disabled | Enabled of state

let disabled = Disabled
let enabled = function Disabled -> false | Enabled _ -> true

let create ?(every = 1) ?total ~label ~emit () =
  if every < 1 then invalid_arg "Progress.create: every < 1";
  Enabled
    {
      s_label = label;
      every;
      started = Unix.gettimeofday ();
      emit;
      lock = Mutex.create ();
      seq = 0;
      total;
      items = 0;
      runs = 0;
      distinct = 0;
      hits = 0;
      lookups = 0;
    }

let set_total t total =
  match t with
  | Disabled -> ()
  | Enabled s ->
      Mutex.lock s.lock;
      s.total <- Some total;
      Mutex.unlock s.lock

(* Call with [s.lock] held. *)
let snapshot_locked s ~final =
  s.seq <- s.seq + 1;
  let elapsed = Unix.gettimeofday () -. s.started in
  (* Under a reduction the distinct (post-dedup) count is the real work
     driver — raw [runs] inflate with every table hit — so the rate, and
     with it the ETA extrapolation below (elapsed scaled by remaining
     items at the observed per-item cost), follow distinct work whenever
     any was recorded. *)
  let per_s =
    if elapsed <= 0. then None
    else if s.distinct > 0 then Some (float_of_int s.distinct /. elapsed)
    else if s.runs > 0 then Some (float_of_int s.runs /. elapsed)
    else if s.items > 0 then Some (float_of_int s.items /. elapsed)
    else None
  in
  let eta_s =
    match s.total with
    | Some total when s.items > 0 && total > s.items ->
        Some (elapsed *. float_of_int (total - s.items) /. float_of_int s.items)
    | Some total when s.items >= total -> Some 0.
    | _ -> None
  in
  let hit_rate =
    if s.lookups > 0 then Some (float_of_int s.hits /. float_of_int s.lookups)
    else None
  in
  {
    seq = s.seq;
    label = s.s_label;
    items = s.items;
    total = s.total;
    runs = s.runs;
    distinct = s.distinct;
    elapsed_s = elapsed;
    per_s;
    eta_s;
    hit_rate;
    final;
  }

let step ?(distinct = 0) t ~items ~runs ~hits ~lookups =
  match t with
  | Disabled -> ()
  | Enabled s ->
      Mutex.lock s.lock;
      let before = s.items in
      s.items <- s.items + items;
      s.runs <- s.runs + runs;
      s.distinct <- s.distinct + distinct;
      s.hits <- s.hits + hits;
      s.lookups <- s.lookups + lookups;
      let crossed = s.items / s.every > before / s.every in
      let snap = if crossed then Some (snapshot_locked s ~final:false) else None in
      (match snap with Some snap -> s.emit snap | None -> ());
      Mutex.unlock s.lock

let finish t =
  match t with
  | Disabled -> ()
  | Enabled s ->
      Mutex.lock s.lock;
      let snap = snapshot_locked s ~final:true in
      s.emit snap;
      Mutex.unlock s.lock

let render snap =
  let buf = Buffer.create 96 in
  Buffer.add_string buf snap.label;
  (match snap.total with
  | Some total when total > 0 ->
      Buffer.add_string buf
        (Printf.sprintf " %d/%d (%d%%)" snap.items total
           (snap.items * 100 / total))
  | _ -> Buffer.add_string buf (Printf.sprintf " %d" snap.items));
  if snap.runs > 0 then
    if snap.distinct > 0 then
      Buffer.add_string buf
        (Printf.sprintf " | %d runs (%d distinct)" snap.runs snap.distinct)
    else Buffer.add_string buf (Printf.sprintf " | %d runs" snap.runs);
  (match snap.per_s with
  | Some r ->
      let unit =
        if snap.distinct > 0 then "distinct/s"
        else if snap.runs > 0 then "runs/s"
        else "items/s"
      in
      Buffer.add_string buf (Printf.sprintf " | %.0f %s" r unit)
  | None -> ());
  (match snap.hit_rate with
  | Some h -> Buffer.add_string buf (Printf.sprintf " | hit %.1f%%" (100. *. h))
  | None -> ());
  (match snap.eta_s with
  | Some eta when not snap.final ->
      Buffer.add_string buf (Printf.sprintf " | eta %.1fs" eta)
  | _ -> ());
  if snap.final then
    Buffer.add_string buf (Printf.sprintf " | done in %.2fs" snap.elapsed_s);
  Buffer.contents buf

let snapshot_to_json (snap : snapshot) =
  let opt f = function Some v -> f v | None -> Json.Null in
  Json.Obj
    [
      ("seq", Json.Int snap.seq);
      ("label", Json.String snap.label);
      ("items", Json.Int snap.items);
      ("total", opt (fun v -> Json.Int v) snap.total);
      ("runs", Json.Int snap.runs);
      ("distinct", Json.Int snap.distinct);
      ("elapsed_s", Json.Float snap.elapsed_s);
      ("per_s", opt (fun v -> Json.Float v) snap.per_s);
      ("eta_s", opt (fun v -> Json.Float v) snap.eta_s);
      ("hit_rate", opt (fun v -> Json.Float v) snap.hit_rate);
      ("final", Json.Bool snap.final);
    ]

let snapshot_of_json json =
  let req name conv =
    match Option.bind (Json.member name json) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "heartbeat: bad or missing field %S" name)
  in
  let opt name conv =
    match Json.member name json with
    | None | Some Json.Null -> None
    | Some v -> conv v
  in
  let ( let* ) = Result.bind in
  let* seq = req "seq" Json.to_int_opt in
  let* label = req "label" Json.to_string_opt in
  let* items = req "items" Json.to_int_opt in
  let* runs = req "runs" Json.to_int_opt in
  (* Absent in heartbeats written before reductions reported distinct
     work; old files stay readable. *)
  let distinct = Option.value (opt "distinct" Json.to_int_opt) ~default:0 in
  let* elapsed_s = req "elapsed_s" Json.to_float_opt in
  let* final = req "final" Json.to_bool_opt in
  Ok
    {
      seq;
      label;
      items;
      total = opt "total" Json.to_int_opt;
      runs;
      distinct;
      elapsed_s;
      per_s = opt "per_s" Json.to_float_opt;
      eta_s = opt "eta_s" Json.to_float_opt;
      hit_rate = opt "hit_rate" Json.to_float_opt;
      final;
    }

let check_heartbeat ~now ~mtime ~max_age_items (snaps : snapshot list) =
  if max_age_items < 1 then invalid_arg "Progress.check_heartbeat: max_age_items < 1";
  match snaps with
  | [] -> Error "heartbeat: no snapshots"
  | first :: _ ->
      let rec monotonic (prev : snapshot) = function
        | [] -> Ok ()
        | (s : snapshot) :: rest ->
            if s.seq <= prev.seq then
              Error
                (Printf.sprintf "heartbeat: non-monotonic sequence (%d after %d)"
                   s.seq prev.seq)
            else monotonic s rest
      in
      let ( let* ) = Result.bind in
      let* () = monotonic first (List.tl snaps) in
      let last = List.fold_left (fun _ s -> s) first snaps in
      if last.final then Ok ()
      else
        let rate =
          match last.per_s with
          | Some r when r > 0. -> Some r
          | _ ->
              if last.items > 0 && last.elapsed_s > 0. then
                Some (float_of_int last.items /. last.elapsed_s)
              else None
        in
        (* Without an observed rate we cannot convert an item budget into a
           time budget; the writer has barely started, so give it the
           benefit of the doubt. *)
        match rate with
        | None -> Ok ()
        | Some rate ->
            let budget_s = float_of_int max_age_items /. rate in
            let age_s = now -. mtime in
            if age_s > budget_s then
              Error
                (Printf.sprintf
                   "heartbeat: stale (last seq %d at %d items; %.1fs since last \
                    write exceeds the %.1fs budget for %d items)"
                   last.seq last.items age_s budget_s max_age_items)
            else Ok ()
