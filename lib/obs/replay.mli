(** Reconstructing a run from its event stream.

    A saved JSONL log carries everything the ASCII space/time diagram
    needs — in fact more than [Sim.Trace.t] without records does, since
    [Halt] events pin down exactly when each process returned. [ipi trace
    FILE] parses the log and renders the same Fig.-1-style diagram as
    [ipi run -d], without re-executing anything. *)

type run = {
  algorithm : string option;  (** from [Run_start], when present *)
  n : int;
  t : int option;
  rounds : int;
      (** columns to draw: [Run_end.rounds] when present, otherwise the
          highest round seen in any event *)
  events : Event.t list;
}

val of_events : Event.t list -> (run, string) result
(** [Error] when the stream mentions no process at all. *)

val pp_summary : Format.formatter -> run -> unit
(** One line: algorithm, n/t, rounds, decisions with rounds. *)

val pp_diagram : Format.formatter -> run -> unit
(** One row per process, one cell per round: [X] crash, [D=v] decision,
    [h] halted (no longer sending), [.] already crashed, [*] participating;
    then a legend of off-schedule fates ([Drop]/[Delay] events). *)
