open Kernel

(* Round k spans [(k-1)*1000, k*1000) microseconds; instants land mid-slice
   so Perfetto draws them inside the round they belong to. *)
let slice_us = 1000
let ts_of_round r = (Round.to_int r - 1) * slice_us
let mid_of_round r = ts_of_round r + (slice_us / 2)

let base ~name ~ph ~ts ~tid extra =
  Json.Obj
    ([
       ("name", Json.String name);
       ("ph", Json.String ph);
       ("ts", Json.Int ts);
       ("pid", Json.Int 0);
       ("tid", Json.Int tid);
     ]
    @ extra)

let instant ~name ~round ~pid =
  base ~name ~ph:"i" ~ts:(mid_of_round round) ~tid:(Pid.to_int pid)
    [ ("s", Json.String "t") ]

let thread_meta pid =
  Json.Obj
    [
      ("name", Json.String "thread_name");
      ("ph", Json.String "M");
      ("pid", Json.Int 0);
      ("tid", Json.Int (Pid.to_int pid));
      ("args", Json.Obj [ ("name", Json.String (Pid.to_string pid)) ]);
    ]

let to_json events =
  (* Collect the participating pids (prefer Run_start's n for a complete,
     ordered track list even for processes that never get to send). *)
  let n =
    List.fold_left
      (fun acc ev ->
        match ev with
        | Event.Run_start { n; _ } -> max acc n
        | Event.Send { src; _ } -> max acc (Pid.to_int src)
        | Event.Deliver { src; dst; _ } ->
            max acc (max (Pid.to_int src) (Pid.to_int dst))
        | Event.Crash { pid; _ }
        | Event.Decide { pid; _ }
        | Event.Halt { pid; _ }
        | Event.Fd_output { pid; _ } -> max acc (Pid.to_int pid)
        | _ -> acc)
      0 events
  in
  let metas = List.map thread_meta (Pid.all ~n) in
  let rev_slices =
    List.fold_left
      (fun acc ev ->
        match ev with
        | Event.Send { src; round; copies; bytes } ->
            base
              ~name:(Printf.sprintf "round %d" (Round.to_int round))
              ~ph:"X" ~ts:(ts_of_round round) ~tid:(Pid.to_int src)
              [
                ("dur", Json.Int slice_us);
                ( "args",
                  Json.Obj
                    [ ("copies", Json.Int copies); ("bytes", Json.Int bytes) ]
                );
              ]
            :: acc
        | Event.Crash { pid; round } ->
            instant ~name:"crash" ~round ~pid :: acc
        | Event.Decide { pid; round; value } ->
            instant
              ~name:(Format.asprintf "decide %a" Value.pp value)
              ~round ~pid
            :: acc
        | Event.Halt { pid; round } -> instant ~name:"halt" ~round ~pid :: acc
        | Event.Drop { src; dst; round } ->
            instant
              ~name:(Format.asprintf "drop to %a" Pid.pp dst)
              ~round ~pid:src
            :: acc
        | Event.Delay { src; dst; round; until } ->
            instant
              ~name:
                (Format.asprintf "delay to %a until r%d" Pid.pp dst
                   (Round.to_int until))
              ~round ~pid:src
            :: acc
        | Event.Run_start _ | Event.Round_start _ | Event.Deliver _
        | Event.Fd_output _ | Event.Run_end _ ->
            acc)
      [] events
  in
  Json.Obj
    [
      ("traceEvents", Json.List (metas @ List.rev rev_slices));
      ("displayTimeUnit", Json.String "ms");
    ]

let to_string events = Json.to_string (to_json events)
