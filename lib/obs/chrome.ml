open Kernel

(* Round k spans [(k-1)*1000, k*1000) microseconds; instants land mid-slice
   so Perfetto draws them inside the round they belong to. *)
let slice_us = 1000
let ts_of_round r = (Round.to_int r - 1) * slice_us
let mid_of_round r = ts_of_round r + (slice_us / 2)

let base ~name ~ph ~ts ~tid extra =
  Json.Obj
    ([
       ("name", Json.String name);
       ("ph", Json.String ph);
       ("ts", Json.Int ts);
       ("pid", Json.Int 0);
       ("tid", Json.Int tid);
     ]
    @ extra)

let instant ~name ~round ~pid =
  base ~name ~ph:"i" ~ts:(mid_of_round round) ~tid:(Pid.to_int pid)
    [ ("s", Json.String "t") ]

let thread_meta pid =
  Json.Obj
    [
      ("name", Json.String "thread_name");
      ("ph", Json.String "M");
      ("pid", Json.Int 0);
      ("tid", Json.Int (Pid.to_int pid));
      ("args", Json.Obj [ ("name", Json.String (Pid.to_string pid)) ]);
    ]

let to_json events =
  (* Collect the participating pids (prefer Run_start's n for a complete,
     ordered track list even for processes that never get to send). *)
  let n =
    List.fold_left
      (fun acc ev ->
        match ev with
        | Event.Run_start { n; _ } -> max acc n
        | Event.Send { src; _ } -> max acc (Pid.to_int src)
        | Event.Deliver { src; dst; _ } ->
            max acc (max (Pid.to_int src) (Pid.to_int dst))
        | Event.Crash { pid; _ }
        | Event.Decide { pid; _ }
        | Event.Halt { pid; _ }
        | Event.Fd_output { pid; _ } -> max acc (Pid.to_int pid)
        | _ -> acc)
      0 events
  in
  let metas = List.map thread_meta (Pid.all ~n) in
  let rev_slices =
    List.fold_left
      (fun acc ev ->
        match ev with
        | Event.Send { src; round; copies; bytes } ->
            base
              ~name:(Printf.sprintf "round %d" (Round.to_int round))
              ~ph:"X" ~ts:(ts_of_round round) ~tid:(Pid.to_int src)
              [
                ("dur", Json.Int slice_us);
                ( "args",
                  Json.Obj
                    [ ("copies", Json.Int copies); ("bytes", Json.Int bytes) ]
                );
              ]
            :: acc
        | Event.Crash { pid; round } ->
            instant ~name:"crash" ~round ~pid :: acc
        | Event.Decide { pid; round; value } ->
            instant
              ~name:(Format.asprintf "decide %a" Value.pp value)
              ~round ~pid
            :: acc
        | Event.Halt { pid; round } -> instant ~name:"halt" ~round ~pid :: acc
        | Event.Drop { src; dst; round } ->
            instant
              ~name:(Format.asprintf "drop to %a" Pid.pp dst)
              ~round ~pid:src
            :: acc
        | Event.Delay { src; dst; round; until } ->
            instant
              ~name:
                (Format.asprintf "delay to %a until r%d" Pid.pp dst
                   (Round.to_int until))
              ~round ~pid:src
            :: acc
        | Event.Run_start _ | Event.Round_start _ | Event.Deliver _
        | Event.Fd_output _ | Event.Run_end _ ->
            acc)
      [] events
  in
  Json.Obj
    [
      ("traceEvents", Json.List (metas @ List.rev rev_slices));
      ("displayTimeUnit", Json.String "ms");
    ]

let to_string events = Json.to_string (to_json events)

(* Span records map onto a second "process" (pid 1) so span tracks never
   collide with per-simulated-process event tracks when both exports are
   concatenated by hand. Track 0 is the calling domain; track [1 + k] is
   shard [k]'s worker recorder. Nesting within a track is implied by
   ts/dur containment, which the viewers render as stacked slices. *)
let span_pid = 1

let span_track_meta track =
  let name = if track = 0 then "main" else Printf.sprintf "shard %d" (track - 1) in
  Json.Obj
    [
      ("name", Json.String "thread_name");
      ("ph", Json.String "M");
      ("pid", Json.Int span_pid);
      ("tid", Json.Int track);
      ("args", Json.Obj [ ("name", Json.String name) ]);
    ]

let of_spans records =
  let tracks =
    List.sort_uniq compare (List.map (fun r -> r.Span.track) records)
  in
  let metas = List.map span_track_meta tracks in
  let slices =
    List.map
      (fun (r : Span.record) ->
        Json.Obj
          [
            ("name", Json.String r.label);
            ("ph", Json.String "X");
            ("ts", Json.Int r.start_us);
            ("dur", Json.Int (max 1 r.dur_us));
            ("pid", Json.Int span_pid);
            ("tid", Json.Int r.track);
            ( "args",
              Json.Obj
                [
                  ("cpu_us", Json.Int r.cpu_us);
                  ("minor_words", Json.Float r.minor_words);
                  ("major_words", Json.Float r.major_words);
                  ("promoted_words", Json.Float r.promoted_words);
                  ("minor_collections", Json.Int r.minor_collections);
                  ("major_collections", Json.Int r.major_collections);
                ] );
          ])
      records
  in
  Json.Obj
    [
      ("traceEvents", Json.List (metas @ slices));
      ("displayTimeUnit", Json.String "ms");
    ]

let spans_to_string records = Json.to_string (of_spans records)
