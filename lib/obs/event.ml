open Kernel

type t =
  | Run_start of {
      algorithm : string;
      n : int;
      t : int;
      proposals : (Pid.t * Value.t) list;
    }
  | Round_start of { round : Round.t }
  | Send of { src : Pid.t; round : Round.t; copies : int; bytes : int }
  | Deliver of { src : Pid.t; dst : Pid.t; sent : Round.t; round : Round.t }
  | Drop of { src : Pid.t; dst : Pid.t; round : Round.t }
  | Delay of { src : Pid.t; dst : Pid.t; round : Round.t; until : Round.t }
  | Crash of { pid : Pid.t; round : Round.t }
  | Decide of { pid : Pid.t; round : Round.t; value : Value.t }
  | Halt of { pid : Pid.t; round : Round.t }
  | Fd_output of { pid : Pid.t; round : Round.t; suspected : Pid.t list }
  | Run_end of { rounds : int; decided : int; all_halted : bool }

(* Every payload bottoms out in ints, strings and lists thereof, so
   structural equality is exact. *)
let equal (a : t) (b : t) = a = b

let label = function
  | Run_start _ -> "run_start"
  | Round_start _ -> "round_start"
  | Send _ -> "send"
  | Deliver _ -> "deliver"
  | Drop _ -> "drop"
  | Delay _ -> "delay"
  | Crash _ -> "crash"
  | Decide _ -> "decide"
  | Halt _ -> "halt"
  | Fd_output _ -> "fd_output"
  | Run_end _ -> "run_end"

let pp ppf ev =
  match ev with
  | Run_start { algorithm; n; t; proposals = _ } ->
      Format.fprintf ppf "run_start %s n=%d t=%d" algorithm n t
  | Round_start { round } -> Format.fprintf ppf "round_start r%d" (Round.to_int round)
  | Send { src; round; copies; bytes } ->
      Format.fprintf ppf "send %a r%d copies=%d bytes=%d" Pid.pp src
        (Round.to_int round) copies bytes
  | Deliver { src; dst; sent; round } ->
      Format.fprintf ppf "deliver %a->%a sent=r%d r%d" Pid.pp src Pid.pp dst
        (Round.to_int sent) (Round.to_int round)
  | Drop { src; dst; round } ->
      Format.fprintf ppf "drop %a->%a r%d" Pid.pp src Pid.pp dst
        (Round.to_int round)
  | Delay { src; dst; round; until } ->
      Format.fprintf ppf "delay %a->%a r%d until=r%d" Pid.pp src Pid.pp dst
        (Round.to_int round) (Round.to_int until)
  | Crash { pid; round } ->
      Format.fprintf ppf "crash %a r%d" Pid.pp pid (Round.to_int round)
  | Decide { pid; round; value } ->
      Format.fprintf ppf "decide %a=%a r%d" Pid.pp pid Value.pp value
        (Round.to_int round)
  | Halt { pid; round } ->
      Format.fprintf ppf "halt %a r%d" Pid.pp pid (Round.to_int round)
  | Fd_output { pid; round; suspected } ->
      Format.fprintf ppf "fd_output %a r%d suspects={%a}" Pid.pp pid
        (Round.to_int round)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           Pid.pp)
        suspected
  | Run_end { rounds; decided; all_halted } ->
      Format.fprintf ppf "run_end rounds=%d decided=%d all_halted=%b" rounds
        decided all_halted

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)

let pid_json p = Json.Int (Pid.to_int p)
let round_json r = Json.Int (Round.to_int r)

let to_json ev =
  let tag = ("ev", Json.String (label ev)) in
  match ev with
  | Run_start { algorithm; n; t; proposals } ->
      Json.Obj
        [
          tag;
          ("algorithm", Json.String algorithm);
          ("n", Json.Int n);
          ("t", Json.Int t);
          ( "proposals",
            Json.List
              (List.map
                 (fun (p, v) ->
                   Json.List [ pid_json p; Json.Int (Value.to_int v) ])
                 proposals) );
        ]
  | Round_start { round } -> Json.Obj [ tag; ("round", round_json round) ]
  | Send { src; round; copies; bytes } ->
      Json.Obj
        [
          tag;
          ("src", pid_json src);
          ("round", round_json round);
          ("copies", Json.Int copies);
          ("bytes", Json.Int bytes);
        ]
  | Deliver { src; dst; sent; round } ->
      Json.Obj
        [
          tag;
          ("src", pid_json src);
          ("dst", pid_json dst);
          ("sent", round_json sent);
          ("round", round_json round);
        ]
  | Drop { src; dst; round } ->
      Json.Obj
        [
          tag;
          ("src", pid_json src);
          ("dst", pid_json dst);
          ("round", round_json round);
        ]
  | Delay { src; dst; round; until } ->
      Json.Obj
        [
          tag;
          ("src", pid_json src);
          ("dst", pid_json dst);
          ("round", round_json round);
          ("until", round_json until);
        ]
  | Crash { pid; round } ->
      Json.Obj [ tag; ("pid", pid_json pid); ("round", round_json round) ]
  | Decide { pid; round; value } ->
      Json.Obj
        [
          tag;
          ("pid", pid_json pid);
          ("round", round_json round);
          ("value", Json.Int (Value.to_int value));
        ]
  | Halt { pid; round } ->
      Json.Obj [ tag; ("pid", pid_json pid); ("round", round_json round) ]
  | Fd_output { pid; round; suspected } ->
      Json.Obj
        [
          tag;
          ("pid", pid_json pid);
          ("round", round_json round);
          ("suspected", Json.List (List.map pid_json suspected));
        ]
  | Run_end { rounds; decided; all_halted } ->
      Json.Obj
        [
          tag;
          ("rounds", Json.Int rounds);
          ("decided", Json.Int decided);
          ("all_halted", Json.Bool all_halted);
        ]

let ( let* ) = Result.bind

let field name conv json =
  match Option.bind (Json.member name json) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let int_field name = field name Json.to_int_opt
let bool_field name = field name Json.to_bool_opt
let string_field name = field name Json.to_string_opt

let pid_field name json =
  let* i = int_field name json in
  if i >= 1 then Ok (Pid.of_int i)
  else Error (Printf.sprintf "field %S: pid must be >= 1" name)

let round_field name json =
  let* i = int_field name json in
  if i >= 1 then Ok (Round.of_int i)
  else Error (Printf.sprintf "field %S: round must be >= 1" name)

let of_json json =
  let* tag = string_field "ev" json in
  match tag with
  | "run_start" ->
      let* algorithm = string_field "algorithm" json in
      let* n = int_field "n" json in
      let* t = int_field "t" json in
      let* raw = field "proposals" Json.to_list_opt json in
      let* proposals =
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            match item with
            | Json.List [ p; v ] -> (
                match (Json.to_int_opt p, Json.to_int_opt v) with
                | Some p, Some v when p >= 1 ->
                    Ok ((Pid.of_int p, Value.of_int v) :: acc)
                | _ -> Error "proposals: expected [pid, value] int pairs")
            | _ -> Error "proposals: expected [pid, value] pairs")
          (Ok []) raw
      in
      Ok (Run_start { algorithm; n; t; proposals = List.rev proposals })
  | "round_start" ->
      let* round = round_field "round" json in
      Ok (Round_start { round })
  | "send" ->
      let* src = pid_field "src" json in
      let* round = round_field "round" json in
      let* copies = int_field "copies" json in
      let* bytes = int_field "bytes" json in
      Ok (Send { src; round; copies; bytes })
  | "deliver" ->
      let* src = pid_field "src" json in
      let* dst = pid_field "dst" json in
      let* sent = round_field "sent" json in
      let* round = round_field "round" json in
      Ok (Deliver { src; dst; sent; round })
  | "drop" ->
      let* src = pid_field "src" json in
      let* dst = pid_field "dst" json in
      let* round = round_field "round" json in
      Ok (Drop { src; dst; round })
  | "delay" ->
      let* src = pid_field "src" json in
      let* dst = pid_field "dst" json in
      let* round = round_field "round" json in
      let* until = round_field "until" json in
      Ok (Delay { src; dst; round; until })
  | "crash" ->
      let* pid = pid_field "pid" json in
      let* round = round_field "round" json in
      Ok (Crash { pid; round })
  | "decide" ->
      let* pid = pid_field "pid" json in
      let* round = round_field "round" json in
      let* value = int_field "value" json in
      Ok (Decide { pid; round; value = Value.of_int value })
  | "halt" ->
      let* pid = pid_field "pid" json in
      let* round = round_field "round" json in
      Ok (Halt { pid; round })
  | "fd_output" ->
      let* pid = pid_field "pid" json in
      let* round = round_field "round" json in
      let* raw = field "suspected" Json.to_list_opt json in
      let* suspected =
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            match Json.to_int_opt item with
            | Some i when i >= 1 -> Ok (Pid.of_int i :: acc)
            | _ -> Error "suspected: expected pid ints")
          (Ok []) raw
      in
      Ok (Fd_output { pid; round; suspected = List.rev suspected })
  | "run_end" ->
      let* rounds = int_field "rounds" json in
      let* decided = int_field "decided" json in
      let* all_halted = bool_field "all_halted" json in
      Ok (Run_end { rounds; decided; all_halted })
  | other -> Error (Printf.sprintf "unknown event tag %S" other)
