(** Allocation/GC probes that fold into the {!Metrics} registry.

    A probe accumulator ({!acc}) is a plain mutable record of streaming
    moments over measured intervals: per-interval minor words
    (count/sum/sumsq/min/max) plus totals for major words, promoted words
    and collection counts. The intended wiring:

    - the caller creates one [acc] per domain that will measure (the
      registry itself is not safe to touch from worker domains);
    - hot loops bracket each unit of work — an engine round, a fuzzed run
      — with {!measure};
    - after the parallel join, shard accumulators {!merge} into one;
    - {!flush} lands the result in the registry as
      [<prefix>.minor_words_per_<per>] (histogram) plus
      [<prefix>.{major_words,promoted_words,minor_collections,
      major_collections}] counters.

    Minor words are read from [Gc.minor_words] (the exact domain-local
    allocation pointer — [Gc.quick_stat]'s counters only refresh at
    collections on OCaml 5, which would make sub-collection intervals
    read zero); collection counts and major/promoted totals come from
    [quick_stat]. The probe itself allocates (a stat record and boxed
    floats per read); {!acc} calibrates that self-cost once at creation
    and {!measure} subtracts it from every interval, so an empty measured
    interval reads as (close to) zero minor words.

    The disabled path is an [option] at the call site:
    [match prof with None -> work () | Some a -> Prof.measure a work] —
    one immediate match, no allocation, mirroring {!Sink.enabled}. *)

type acc

val acc : unit -> acc
(** A fresh accumulator (calibrates the [Gc.quick_stat] self-cost). *)

val measure : acc -> (unit -> 'a) -> 'a
(** Run the thunk and record the interval's GC deltas. The interval is
    recorded even if the thunk raises (the exception is re-raised). Must
    be called on the domain that owns the accumulator — GC counters are
    per-domain. *)

val intervals : acc -> int
(** Number of intervals recorded so far. *)

val merge : into:acc -> acc -> unit
(** Fold a (joined) shard accumulator into another; the source is not
    cleared. Safe once the source's domain has been joined. *)

val flush :
  acc -> metrics:Metrics.t -> prefix:string -> per:string -> unit
(** Land the accumulated moments in the registry (get-or-create, so
    repeated sweeps accumulate):

    - histogram [<prefix>.minor_words_per_<per>] — one synthetic
      observation batch with the accumulator's count/sum/sumsq/min/max
      ({!Metrics.fold_samples});
    - counters [<prefix>.minor_collections], [<prefix>.major_collections],
      [<prefix>.major_words], [<prefix>.promoted_words] (word totals
      truncated to int).

    A no-op when no interval was recorded. *)

val pool : Metrics.t -> prefix:string -> Kernel.Par.worker_stat array -> unit
(** Fold a {!Kernel.Par.map_tasks} utilization report into the registry:
    gauge [<prefix>.workers], and per worker [w] gauges
    [<prefix>.w<w>.tasks], [<prefix>.w<w>.busy_us], [<prefix>.w<w>.idle_us].
    Partially applied, it is exactly the [?report] callback shape. *)
