(** Event sinks: where the engine (and the other instrumented layers) send
    their {!Event.t}s.

    The default sink is {!noop}, and the producers are written in guarded
    style:

    {[
      if Obs.Sink.enabled sink then
        Obs.Sink.emit sink (Obs.Event.Send { ... })
    ]}

    so that with tracing off the hot path performs one immediate boolean
    test and allocates nothing — the event constructor is never evaluated.
    The pure-functional engine and the model checker's exhaustive search
    therefore pay no observable cost when untraced. *)

type t

val noop : t
(** Discards everything; {!enabled} is [false]. *)

val make : (Event.t -> unit) -> t
(** A sink from a callback. The callback must not raise. *)

val enabled : t -> bool
(** [false] exactly for {!noop} — the producer-side guard. *)

val emit : t -> Event.t -> unit
(** No-op on {!noop}. *)

val tee : t -> t -> t
(** Both sinks, in order; collapses to the other (or {!noop}) when either
    side is {!noop}. *)

val memory : unit -> t * (unit -> Event.t list)
(** A buffering sink and its drain: the closure returns every event emitted
    so far, in emission order. *)
