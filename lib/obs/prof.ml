type acc = {
  (* The probe's own allocation per interval (one [Gc.quick_stat] record
     plus the boxed [Gc.minor_words] results), calibrated at creation by
     measuring empty intervals through {!measure} itself and subtracted
     from every interval so empty intervals read as zero. *)
  mutable self_words : float;
  mutable n : int;
  mutable minor_sum : float;
  mutable minor_sumsq : float;
  mutable minor_min : float;
  mutable minor_max : float;
  mutable major : float;
  mutable promoted : float;
  mutable minor_cols : int;
  mutable major_cols : int;
}

(* [Gc.quick_stat] (and [Gc.counters]) only refresh their counters at
   collections on OCaml 5, so their [minor_words] stand still between
   minor GCs; [Gc.minor_words] reads the domain-local allocation pointer
   and is exact. Minor words — the headline per-interval signal — come
   from the latter; collection counts and major/promoted totals, which
   only ever advance at collections anyway, come from [quick_stat]. *)
let note a w0 (s0 : Gc.stat) =
  (* Read the allocation pointer before [quick_stat] so the interval does
     not absorb the probe's own record. *)
  let w1 = Gc.minor_words () in
  let s1 = Gc.quick_stat () in
  let minor = Float.max 0. (w1 -. w0 -. a.self_words) in
  a.n <- a.n + 1;
  a.minor_sum <- a.minor_sum +. minor;
  a.minor_sumsq <- a.minor_sumsq +. (minor *. minor);
  if minor < a.minor_min then a.minor_min <- minor;
  if minor > a.minor_max then a.minor_max <- minor;
  a.major <- a.major +. (s1.Gc.major_words -. s0.Gc.major_words);
  a.promoted <- a.promoted +. (s1.Gc.promoted_words -. s0.Gc.promoted_words);
  a.minor_cols <- a.minor_cols + (s1.Gc.minor_collections - s0.Gc.minor_collections);
  a.major_cols <- a.major_cols + (s1.Gc.major_collections - s0.Gc.major_collections)

let measure a f =
  let w0 = Gc.minor_words () in
  let s0 = Gc.quick_stat () in
  match f () with
  | v ->
      note a w0 s0;
      v
  | exception e ->
      note a w0 s0;
      raise e

let acc () =
  let a =
    {
      self_words = 0.;
      n = 0;
      minor_sum = 0.;
      minor_sumsq = 0.;
      minor_min = infinity;
      minor_max = neg_infinity;
      major = 0.;
      promoted = 0.;
      minor_cols = 0;
      major_cols = 0;
    }
  in
  (* Calibrate against real empty intervals: the minimum over a few
     [measure]d no-ops is exactly the probe's own footprint (boxed
     [Gc.minor_words] result plus the [quick_stat] record), whatever the
     runtime makes it. A first-principles estimate measured outside
     [measure] undercounts and leaves every interval with a constant
     positive bias. *)
  for _ = 1 to 3 do
    measure a ignore
  done;
  a.self_words <- Float.max 0. a.minor_min;
  a.n <- 0;
  a.minor_sum <- 0.;
  a.minor_sumsq <- 0.;
  a.minor_min <- infinity;
  a.minor_max <- neg_infinity;
  a.major <- 0.;
  a.promoted <- 0.;
  a.minor_cols <- 0;
  a.major_cols <- 0;
  a

let intervals a = a.n

let merge ~into src =
  if src.n > 0 then begin
    into.n <- into.n + src.n;
    into.minor_sum <- into.minor_sum +. src.minor_sum;
    into.minor_sumsq <- into.minor_sumsq +. src.minor_sumsq;
    if src.minor_min < into.minor_min then into.minor_min <- src.minor_min;
    if src.minor_max > into.minor_max then into.minor_max <- src.minor_max;
    into.major <- into.major +. src.major;
    into.promoted <- into.promoted +. src.promoted;
    into.minor_cols <- into.minor_cols + src.minor_cols;
    into.major_cols <- into.major_cols + src.major_cols
  end

let flush a ~metrics ~prefix ~per =
  if a.n > 0 then begin
    Metrics.fold_samples
      (Metrics.histogram metrics
         (prefix ^ ".minor_words_per_" ^ per))
      ~count:a.n ~sum:a.minor_sum ~sumsq:a.minor_sumsq ~min:a.minor_min
      ~max:a.minor_max;
    Metrics.incr ~by:a.minor_cols
      (Metrics.counter metrics (prefix ^ ".minor_collections"));
    Metrics.incr ~by:a.major_cols
      (Metrics.counter metrics (prefix ^ ".major_collections"));
    Metrics.incr
      ~by:(int_of_float a.major)
      (Metrics.counter metrics (prefix ^ ".major_words"));
    Metrics.incr
      ~by:(int_of_float a.promoted)
      (Metrics.counter metrics (prefix ^ ".promoted_words"))
  end

let pool metrics ~prefix stats =
  let us s = int_of_float (s *. 1e6) in
  Metrics.set (Metrics.gauge metrics (prefix ^ ".workers")) (Array.length stats);
  Array.iteri
    (fun w (st : Kernel.Par.worker_stat) ->
      let name field = Printf.sprintf "%s.w%d.%s" prefix w field in
      Metrics.set (Metrics.gauge metrics (name "tasks")) st.tasks;
      Metrics.set (Metrics.gauge metrics (name "busy_us")) (us st.busy_s);
      Metrics.set (Metrics.gauge metrics (name "idle_us")) (us st.idle_s))
    stats
