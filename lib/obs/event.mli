(** Structured run-lifecycle events.

    One simulated run is, observationally, a sequence of these events — the
    communication-closed-rounds view: a [Run_start], then per round a
    [Round_start] followed by the send-phase events ([Send], with per-copy
    [Drop]/[Delay] fates), the round's [Crash]es, and the receive-phase
    events ([Deliver], [Decide], [Halt]) in process order, and finally a
    [Run_end]. The engine emits them through an {!Sink.t}; exporters
    ({!Jsonl}, {!Chrome}) serialize them and {!Replay} reconstructs the
    run diagram from them.

    Events use only kernel types so every layer (sim, mc, fd, workload,
    bench, bin) can produce and consume them without cycles. *)

open Kernel

type t =
  | Run_start of {
      algorithm : string;
      n : int;
      t : int;
      proposals : (Pid.t * Value.t) list;  (** sorted by pid *)
    }
  | Round_start of { round : Round.t }
  | Send of { src : Pid.t; round : Round.t; copies : int; bytes : int }
      (** One broadcast: [copies] point-to-point copies ([n] in this model),
          [bytes] the estimated wire total (per-copy header + payload). *)
  | Deliver of { src : Pid.t; dst : Pid.t; sent : Round.t; round : Round.t }
      (** Emitted when the envelope reaches [dst]'s receive phase —
          [round > sent] for delayed messages. *)
  | Drop of { src : Pid.t; dst : Pid.t; round : Round.t }
      (** The copy sent by [src] to [dst] in [round] is lost. *)
  | Delay of { src : Pid.t; dst : Pid.t; round : Round.t; until : Round.t }
      (** The copy is deferred to round [until] (its [Deliver] follows
          there, unless the receiver dies first). *)
  | Crash of { pid : Pid.t; round : Round.t }
  | Decide of { pid : Pid.t; round : Round.t; value : Value.t }
  | Halt of { pid : Pid.t; round : Round.t }
      (** The process returned from [propose] in [round] and sends nothing
          afterwards. *)
  | Fd_output of { pid : Pid.t; round : Round.t; suspected : Pid.t list }
      (** The §4 simulated failure-detector output at [pid] for [round]. *)
  | Run_end of { rounds : int; decided : int; all_halted : bool }

val equal : t -> t -> bool

val label : t -> string
(** The constructor's wire tag, e.g. ["send"]; also the ["ev"] field of the
    JSON encoding. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Json.t
(** A flat object: [{"ev": <label>; <payload fields>}]. *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}: [of_json (to_json e)] is [Ok e'] with
    [equal e e']. *)
