type error =
  | Eof
  | Truncated
  | Too_large of int
  | Malformed of string

let pp_error ppf = function
  | Eof -> Format.pp_print_string ppf "end of stream"
  | Truncated -> Format.pp_print_string ppf "truncated frame"
  | Too_large n -> Format.fprintf ppf "frame length %d exceeds the maximum" n
  | Malformed msg -> Format.fprintf ppf "malformed frame: %s" msg

let max_frame = 16 * 1024 * 1024

let write oc json =
  let payload = Json.to_string json in
  output_string oc (string_of_int (String.length payload));
  output_char oc '\n';
  output_string oc payload;
  flush oc

(* Blocking reader: header bytes one at a time (headers are tiny), then the
   payload in one [really_input]. *)
let read ic =
  let rec header acc seen_digit =
    match input_char ic with
    | '\n' -> if seen_digit then Ok acc else Error (Malformed "empty length")
    | '0' .. '9' as c ->
        let acc = (acc * 10) + (Char.code c - Char.code '0') in
        if acc > max_frame then Error (Too_large acc) else header acc true
    | c -> Error (Malformed (Printf.sprintf "unexpected header byte %C" c))
    | exception End_of_file -> if seen_digit then Error Truncated else Error Eof
  in
  match header 0 false with
  | Error _ as e -> e
  | Ok len -> (
      match really_input_string ic len with
      | payload -> (
          match Json.of_string payload with
          | Ok json -> Ok json
          | Error msg -> Error (Malformed msg))
      | exception End_of_file -> Error Truncated)

(* ------------------------------------------------------------------ *)
(* Incremental decoder                                                 *)

type decoder = {
  buf : Buffer.t;
  mutable pos : int;  (** consumed prefix of [buf] *)
  mutable dead : error option;  (** sticky framing error *)
}

let decoder () = { buf = Buffer.create 4096; pos = 0; dead = None }

let feed d bytes n = Buffer.add_subbytes d.buf bytes 0 n

let pending d = Buffer.length d.buf - d.pos

(* Drop the consumed prefix once it dominates the buffer, so a long-lived
   decoder does not grow without bound. *)
let compact d =
  if d.pos > 4096 && d.pos * 2 > Buffer.length d.buf then begin
    let rest = Buffer.sub d.buf d.pos (Buffer.length d.buf - d.pos) in
    Buffer.clear d.buf;
    Buffer.add_string d.buf rest;
    d.pos <- 0
  end

let next d =
  match d.dead with
  | Some e -> Error e
  | None -> (
      let len = Buffer.length d.buf in
      (* Scan the header in place. *)
      let rec scan i acc seen_digit =
        if i >= len then Ok None (* header incomplete *)
        else
          match Buffer.nth d.buf i with
          | '\n' ->
              if not seen_digit then Error (Malformed "empty length")
              else if len - (i + 1) < acc then Ok None (* payload incomplete *)
              else begin
                let payload = Buffer.sub d.buf (i + 1) acc in
                d.pos <- i + 1 + acc;
                compact d;
                match Json.of_string payload with
                | Ok json -> Ok (Some json)
                | Error msg -> Error (Malformed msg)
              end
          | '0' .. '9' as c ->
              let acc = (acc * 10) + (Char.code c - Char.code '0') in
              if acc > max_frame then Error (Too_large acc)
              else scan (i + 1) acc true
          | c -> Error (Malformed (Printf.sprintf "unexpected header byte %C" c))
      in
      match scan d.pos 0 false with
      | Ok _ as ok -> ok
      | Error (Malformed _) as e when (Buffer.length d.buf > d.pos) ->
          (* A malformed payload was consumed above (pos already advanced
             past it) — report once but keep framing; a malformed header
             kills the stream. *)
          (match e with
          | Error (Malformed msg)
            when String.length msg >= 10
                 && String.sub msg 0 10 = "unexpected" ->
              d.dead <- Some (Malformed msg)
          | _ -> ());
          e
      | Error err ->
          d.dead <- Some err;
          Error err)
