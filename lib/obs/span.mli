(** Hierarchical timed spans: the profiling counterpart of {!Sink}.

    A span covers one dynamic extent — a sweep, a shard, a single run —
    and records where wall clock, CPU time and allocations went while it
    was open. Spans nest: {!enter} pushes onto a per-recorder stack,
    {!exit} pops and appends a completed {!record}. The recorder follows
    the same two-state discipline as {!Sink.t}:

    {[
      if Obs.Span.enabled spans then ... Obs.Span.enter spans "run" ...
    ]}

    With the {!disabled} recorder every operation is an immediate match on
    an immutable constructor — no clock read, no [Gc.quick_stat], no
    allocation — so instrumented hot paths cost nothing when profiling is
    off.

    Recorders are single-domain: each worker of a parallel sweep gets its
    own recorder (with a distinct [track] and a shared [origin] so the
    timelines line up), and the caller {!absorb}s them into the main
    recorder after the join. Completed records export to Chrome
    [trace_event] JSON via {!Chrome.of_spans} or line-by-line via
    {!record_to_json}. *)

type record = {
  label : string;
  track : int;  (** Chrome tid: 0 for the calling domain, [1 + shard] for workers. *)
  depth : int;  (** Nesting depth at [enter]: 0 for an outermost span. *)
  start_us : int;  (** Wall-clock microseconds since the recorder's origin. *)
  dur_us : int;  (** Wall-clock duration in microseconds. *)
  cpu_us : int;  (** [Sys.time] delta in microseconds (per-process CPU). *)
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
}
(** One completed span. GC fields are [Gc.quick_stat] deltas between
    {!enter} and {!exit} on the recording domain. *)

type t

val disabled : t
(** Ignores everything; {!enabled} is [false]. *)

val enabled : t -> bool
(** [false] exactly for {!disabled} — the producer-side guard. *)

val origin : unit -> float
(** A fresh wall-clock origin ([Unix.gettimeofday ()]) to share between
    the recorders of one profiled activity. *)

val recorder : ?origin:float -> ?track:int -> unit -> t
(** A live recorder. [origin] (default: now) anchors [start_us];
    [track] (default 0) tags every record — parallel sweeps give each
    shard recorder its own track so Chrome renders them as separate
    rows. *)

val child : t -> track:int -> t
(** A fresh recorder sharing [t]'s origin, on its own [track] — what a
    parallel sweep hands each shard so worker-domain spans line up with
    the caller's timeline. {!disabled} if [t] is. *)

val enter : t -> string -> unit
(** Open a span. No-op on {!disabled}. *)

val exit : t -> unit
(** Close the innermost open span and append its {!record}. No-op on
    {!disabled}; raises [Invalid_argument] if no span is open. *)

val with_ : t -> string -> (unit -> 'a) -> 'a
(** [with_ t label f] brackets [f ()] in {!enter}/{!exit}, closing the
    span even if [f] raises. On {!disabled} it is a tail call to [f]. *)

val records : t -> record list
(** Completed records in completion order (children before parents).
    [[]] on {!disabled}. Open spans are not included. *)

val absorb : t -> t -> unit
(** [absorb parent child] appends [child]'s completed records to
    [parent]. No-op if either side is {!disabled}. The child recorder is
    left empty. *)

val record_to_json : record -> Json.t
(** A flat object with every field, for JSONL trace output. *)
