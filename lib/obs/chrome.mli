(** Chrome [trace_event] export, viewable in Perfetto / [chrome://tracing].

    The mapping treats the run as one "process" and each simulated process
    [p_i] as a thread: every round a process participates in (it sent its
    round message) becomes a 1 ms complete slice on its track, and crashes,
    decisions and halts become instant events on the same track. Round [k]
    occupies the window [[(k-1) ms, k ms)], so the synchronized-rounds
    structure of a run is directly visible as aligned slices.

    Use [ipi run --trace out.json --trace-format chrome] and open the file
    with https://ui.perfetto.dev. *)

val to_json : Event.t list -> Json.t
(** The [{"traceEvents": [...], "displayTimeUnit": "ms"}] envelope. *)

val to_string : Event.t list -> string

val of_spans : Span.record list -> Json.t
(** Profiling spans as complete ("X") duration slices, one Chrome thread
    per span track (track 0 is named "main", track [1+k] "shard k"), with
    CPU and GC deltas in [args]. Spans live on their own Chrome pid so
    they compose with the event export. Zero-length spans are widened to
    1 µs so every span stays visible. *)

val spans_to_string : Span.record list -> string
