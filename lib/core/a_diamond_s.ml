include
  At_plus_2.Make
    (Baselines.Hurfin_raynal)
    (struct
      let failure_free_optimization = false
      let exchange_suspicions = true
    end)

let name = "A<>S[HR]"
