open Kernel

module Generic (G : sig
  val name : string
  val validate : Config.t -> unit
end) =
struct
type msg = Est of Value.t | Decide of Value.t

type state = {
  config : Config.t;
  me : Pid.t;
  est : Value.t;
  decision : Value.t option;
  announced : bool;  (* the decision has been broadcast *)
  halted : bool;
}

let name = G.name
let model = Sim.Model.Es

(* msgSet keeps the quorum of estimates with the *lowest sender ids*: an
   id-selected input, so the automaton is not permutation-equivariant. *)
let symmetric = false

let init config me v =
  G.validate config;
  { config; me; est = v; decision = None; announced = false; halted = false }

let on_send st _round =
  match st.decision with Some v -> Decide v | None -> Est st.est

let find_decide inbox =
  List.find_map
    (fun (e : msg Sim.Envelope.t) ->
      match e.payload with Decide v -> Some v | Est _ -> None)
    inbox

(* msgSet: the n - t current-round estimates with the lowest sender ids
   (the inbox arrives sorted by sender id). *)
let msg_set st ~round inbox =
  List.filter_map
    (fun (e : msg Sim.Envelope.t) ->
      match e.payload with
      | Est v when Sim.Envelope.is_current e ~round -> Some v
      | Est _ | Decide _ -> None)
    inbox
  |> Listx.take (Config.quorum st.config)

let on_receive st round inbox =
  match st.decision with
  | Some _ -> { st with announced = true; halted = true }
  | None -> (
      match find_decide inbox with
      | Some v -> { st with decision = Some v }
      | None -> (
          let quorum = Config.quorum st.config in
          let values = msg_set st ~round inbox in
          if List.length values < quorum then
            (* Possible only when decided processes already returned; their
               DECIDE is in flight to us. *)
            st
          else if Listx.all_equal ~equal:Value.equal values then
            { st with decision = Some (List.hd values) }
          else
            let threshold = quorum - Config.t st.config in
            match
              List.find_opt
                (fun (_, count) -> count >= threshold)
                (Listx.occurrences ~compare:Value.compare values)
            with
            | Some (v, _) -> { st with est = v }
            | None -> { st with est = Value.minimum values }))

let decision st = st.decision
let halted st = st.halted

let wire_size = function Est _ -> 8 | Decide _ -> 8

let pp_msg ppf = function
  | Est v -> Format.fprintf ppf "est(%a)" Value.pp v
  | Decide v -> Format.fprintf ppf "decide(%a)" Value.pp v

let pp_state ppf st =
  Format.fprintf ppf "@[est=%a%a@]" Value.pp st.est
    (fun ppf () ->
      match st.decision with
      | Some v -> Format.fprintf ppf " decided=%a" Value.pp v
      | None -> ())
    ()

end

include Generic (struct
  let name = "A(f+2)"
  let validate = Config.validate_third
end)

(* The E11 ablation: the same protocol with the t < n/3 guard removed. Its
   counting rule is unsound outside that regime. *)
module Unguarded = Generic (struct
  let name = "A(f+2)-guard"
  let validate = fun (_ : Config.t) -> ()
end)
