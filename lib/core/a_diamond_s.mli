(** [A_<>S] — the <>S-based variant of [A_{t+2}] (Section 5.1, Fig. 3).

    The paper obtains [A_<>S] from [A_{t+2}] by (1) replacing the underlying
    consensus module [C] with any <>S-based consensus algorithm [C'], and
    (2) changing the receive guards to "wait for [n - t] messages and for a
    message from every process the local <>S module does not suspect".

    In the round-based simulation the second modification is observationally
    the Section-4 suspicion derivation the engine already implements — the
    round-[k] suspicion set {e is} the simulated <>S output — so the variant
    is realised by instantiating the [A_{t+2}] functor with the <>S-based
    consensus of Hurfin–Raynal as [C']. It retains the fast-decision
    property: global decision at round [t + 2] in every synchronous run,
    against the [2t + 2] worst case of using [C'] alone. *)

include Sim.Algorithm.S
