(** [A_{f+2}] — the fast-eventual-decision algorithm for [t < n/3]
    (Section 6, Fig. 5).

    An optimised version of the second leader-based algorithm of
    Mostefaoui–Raynal. Every round, every process floods its estimate. On
    receiving the messages of round [k] a process:

    - decides the value of any DECIDE message received (from round [k] or a
      lower round);
    - otherwise forms [msgSet], the [n - t] current-round messages with the
      lowest sender ids, and (a) decides if all carry the same estimate,
      (b) adopts a value occurring at least [n - 2t] times, or (c) adopts
      the minimum estimate in [msgSet].

    A process that decides broadcasts its decision in the next round and
    returns.

    Safety rests on the [t < n/3] counting observation: if a value [v]
    fills an entire [n - t] selection, every other [n - t] selection
    contains [v] at least [n - 2t] times and every other value fewer.

    {e Fast eventual decision} (Lemma 15): in a run that is synchronous
    after round [k] with [f <= t] crashes after round [k], every process
    that decides does so by round [k + f + 2]. With [k = 0] this gives
    early decision at [f + 2] in synchronous runs — one round above the
    [f + 1] of SCS, and matching the [f + 2] lower bound the paper derives
    from Proposition 1. *)

include Sim.Algorithm.S

module Unguarded : Sim.Algorithm.S
(** The same protocol with the [t < n/3] guard removed — the E11 ablation.
    With [t >= n/3] the counting observation fails and a partition makes two
    blocks decide differently; never use outside the demonstration. *)
