open Kernel
module Ws = Baselines.Ws_flood

module Make
    (C : Sim.Algorithm.S) (P : sig
      val failure_free_optimization : bool
      val exchange_suspicions : bool
    end) =
struct
  type msg =
    | Estimate of Ws.payload  (* Phase 1, rounds 1..t+1 *)
    | New_estimate of Value.t option  (* round t+2; None encodes ⊥ *)
    | Decide of Value.t  (* rounds >= 3 (with the optimization) or t+3 *)
    | Underlying of C.msg  (* the embedded module C, rounds >= t+3 *)

  type stage =
    | Phase1 of Ws.t
    | Deciding  (* decided: broadcast DECIDE once, then return *)
    | Fallback of C.state

  type state = {
    config : Config.t;
    me : Pid.t;
    proposal : Value.t;
    vc : Value.t;  (* the proposal for C (Fig. 2 line 17 / Fig. 4 line 6.8) *)
    stage : stage;
    decision : Value.t option;
    halted : bool;
  }

  let name =
    Format.sprintf "A(t+2)%s%s[%s]"
      (if P.failure_free_optimization then "+ff" else "")
      (if P.exchange_suspicions then "" else "-halt")
      C.name

  let model = Sim.Model.Es

  (* Phase 1 and the exchange round are pid-symmetric (Ws_flood), but the
     composed automaton inherits the fallback's symmetry: C runs from
     round t + 3 in asynchronous runs, and the stock fallbacks are
     coordinator-based. *)
  let symmetric = C.symmetric

  let init config me v =
    Config.validate_indulgent config;
    {
      config;
      me;
      proposal = v;
      vc = v;
      stage = Phase1 (Ws.init v);
      decision = None;
      halted = false;
    }

  let last_flood_round st = Config.t st.config + 1
  let exchange_round st = Config.t st.config + 2

  (* C runs with its own round numbering starting right after the exchange
     round: its round r is the system's round t + 2 + r. *)
  let relative st round = Round.to_int round - exchange_round st

  let new_estimate st flood =
    if Ws.detects_false_suspicion flood ~config:st.config then None
    else Some flood.Ws.est

  let on_send st round =
    match st.stage with
    | Deciding -> (
        match st.decision with
        | Some v -> Decide v
        | None -> assert false)
    | Phase1 flood ->
        if Round.to_int round <= last_flood_round st then
          let payload = Ws.payload flood in
          Estimate
            (if P.exchange_suspicions then payload
             else { payload with Ws.p_halt = Bitset.empty })
        else New_estimate (new_estimate st flood)
    | Fallback c -> Underlying (C.on_send c (Round.of_int (relative st round)))

  let find_decide inbox =
    List.find_map
      (fun (e : msg Sim.Envelope.t) ->
        match e.payload with Decide v -> Some v | _ -> None)
      inbox

  let current_estimates ~round inbox =
    List.filter_map
      (fun (e : msg Sim.Envelope.t) ->
        match e.payload with
        | Estimate p when Sim.Envelope.is_current e ~round ->
            Some { e with payload = p }
        | _ -> None)
      inbox

  let current_new_estimates ~round inbox =
    List.filter_map
      (fun (e : msg Sim.Envelope.t) ->
        match e.payload with
        | New_estimate nE when Sim.Envelope.is_current e ~round -> Some nE
        | _ -> None)
      inbox

  (* Fig. 4: after receiving the messages of round 2, decide if the round-1
     exchange was provably complete and suspicion-free; pre-load [vc] if it
     was merely suspicion-free as far as visible. *)
  let apply_optimization st estimates =
    let suspicion_free =
      List.for_all
        (fun (e : Ws.payload Sim.Envelope.t) ->
          Bitset.is_empty e.payload.Ws.p_halt)
        estimates
    in
    if not suspicion_free then `Continue st
    else
      let ests =
        List.map (fun (e : Ws.payload Sim.Envelope.t) -> e.payload.Ws.p_est)
          estimates
      in
      if List.length estimates = Config.n st.config then
        `Decided
          {
            st with
            decision = Some (Value.minimum ests);
            stage = Deciding;
          }
      else `Continue { st with vc = Value.minimum ests }

  let receive_phase1 st flood round inbox =
    let estimates = current_estimates ~round inbox in
    if Round.to_int round <= last_flood_round st then
      let continue st =
        let flood =
          Ws.compute ~n:(Config.n st.config) ~me:st.me flood estimates
        in
        { st with stage = Phase1 flood }
      in
      if P.failure_free_optimization && Round.to_int round = 2 then
        match apply_optimization st estimates with
        | `Decided st -> st
        | `Continue st -> continue st
      else continue st
    else begin
      (* Round t+2: the new-estimate exchange. *)
      let n_es = current_new_estimates ~round inbox in
      let values = List.filter_map Fun.id n_es in
      if values <> [] && List.length values = List.length n_es then
        { st with decision = Some (Value.minimum values); stage = Deciding }
      else
        let vc = match values with v :: _ -> v | [] -> st.vc in
        let c = C.init st.config st.me vc in
        { st with vc; stage = Fallback c }
    end

  let receive_fallback st c round inbox =
    let inner =
      List.filter_map
        (fun (e : msg Sim.Envelope.t) ->
          match e.payload with
          | Underlying payload ->
              let sent = relative st e.sent in
              if sent >= 1 then
                Some (Sim.Envelope.make ~src:e.src ~sent:(Round.of_int sent) payload)
              else None
          | _ -> None)
        inbox
    in
    let c = C.on_receive c (Round.of_int (relative st round)) inner in
    { st with stage = Fallback c; decision = C.decision c }

  let on_receive st round inbox =
    match st.stage with
    | Deciding -> { st with halted = true }
    | (Phase1 _ | Fallback _) as stage -> (
        match find_decide inbox with
        | Some v -> { st with decision = Some v; stage = Deciding }
        | None -> (
            match stage with
            | Phase1 flood -> receive_phase1 st flood round inbox
            | Fallback c -> receive_fallback st c round inbox
            | Deciding -> assert false))

  let decision st =
    match st.stage with Fallback c -> C.decision c | _ -> st.decision

  let halted st =
    match st.stage with Fallback c -> C.halted c | _ -> st.halted

  let wire_size = function
    | Estimate p -> Ws.payload_bytes p
    | New_estimate _ -> 9
    | Decide _ -> 8
    | Underlying m -> C.wire_size m

  let pp_msg ppf = function
    | Estimate p -> Format.fprintf ppf "est(%a)" Ws.pp_payload p
    | New_estimate (Some v) -> Format.fprintf ppf "nE(%a)" Value.pp v
    | New_estimate None -> Format.fprintf ppf "nE(_|_)"
    | Decide v -> Format.fprintf ppf "decide(%a)" Value.pp v
    | Underlying m -> Format.fprintf ppf "C:%a" C.pp_msg m

  let pp_state ppf st =
    match st.stage with
    | Phase1 flood -> Format.fprintf ppf "@[phase1 %a@]" Ws.pp flood
    | Deciding ->
        Format.fprintf ppf "@[decided %a@]"
          (Format.pp_print_option Value.pp)
          st.decision
    | Fallback c -> Format.fprintf ppf "@[C %a@]" C.pp_state c
end

module No_opt = struct
  let failure_free_optimization = false
  let exchange_suspicions = true
end

module With_opt = struct
  let failure_free_optimization = true
  let exchange_suspicions = true
end

module Ablated = struct
  let failure_free_optimization = false
  let exchange_suspicions = false
end

module Standard = Make (Baselines.Ct_diamond_s) (No_opt)
module Optimized = Make (Baselines.Ct_diamond_s) (With_opt)

module Padded_ct =
  Baselines.Padding.Make
    (Baselines.Ct_diamond_s)
    (struct
      let rounds = 40
    end)

module Slow_fallback = Make (Padded_ct) (No_opt)
module No_halt_exchange = Make (Baselines.Ct_diamond_s) (Ablated)
