(** [A_{t+2}] — the paper's matching algorithm (Fig. 2), with the
    failure-free optimization of Fig. 4 as an option.

    The algorithm solves uniform consensus in ES for [0 < t < n/2] and has
    the {e fast decision} property: in every synchronous run, every process
    that decides does so by round [t + 2] — matching the lower bound of
    Proposition 1 and beating the [2t + 2] of Hurfin–Raynal.

    {b Phase 1} (rounds [1 .. t+1]): flood [(est, Halt)] pairs and run the
    compute() of {!Baselines.Ws_flood}: converge estimates to the minimum
    while tracking mutual suspicions. Its {e elimination property} (Lemma 6):
    any two processes that reach round [t + 2] either hold the same estimate
    or at least one of them has [|Halt| > t], which by Lemma 13 certifies a
    false suspicion somewhere in the run.

    {b Phase 2} (round [t + 2]): each process sends a new estimate [nE] —
    its estimate if [|Halt| <= t], and ⊥ otherwise. By elimination, at most
    one distinct non-⊥ value circulates. A process receiving {e only} non-⊥
    values decides one of them, broadcasts DECIDE in round [t + 3], and
    returns; everyone else proposes a received non-⊥ value (or its own
    proposal if all were ⊥) to the underlying consensus module [C], which
    runs from round [t + 3] on and eventually decides. Fast decision is
    independent of [C]'s complexity — instantiate [C] with
    {!Baselines.Padding.Make} to check.

    A process that receives a DECIDE message decides that value, relays the
    DECIDE once, and returns.

    With [failure_free_optimization] (Fig. 4), a process that receives
    round-2 messages from all [n] processes, every one carrying [Halt = ∅],
    decides immediately (round 2) — complete exchange in round 1 forces all
    estimates equal to the global minimum — and a process that merely sees
    no suspicion pre-loads its [C]-proposal with that estimate. *)

module Make
    (C : Sim.Algorithm.S) (P : sig
      val failure_free_optimization : bool

      val exchange_suspicions : bool
      (** [true] is the paper's algorithm. [false] is the E11 {e ablation}:
          ESTIMATE messages carry an empty Halt set, so suspicions are
          tracked locally but never exchanged. The elimination property
          (Lemma 6) then fails — a falsely-suspected process never learns it
          is being accused, keeps [|Halt| <= t], and sends a non-⊥ new
          estimate that can differ from everyone else's, breaking uniform
          agreement in asynchronous runs. *)
    end) : Sim.Algorithm.S

module Standard : Sim.Algorithm.S
(** [Make (Baselines.Ct_diamond_s)] without the optimization — the paper's
    plain [A_{t+2}]. *)

module Optimized : Sim.Algorithm.S
(** [Standard] plus the Fig. 4 failure-free optimization. *)

module Slow_fallback : Sim.Algorithm.S
(** [C] padded with 40 idle rounds: the fast-decision independence ablation
    (experiment E3). *)

module No_halt_exchange : Sim.Algorithm.S
(** The Lemma-6 ablation (suspicions never exchanged) — unsafe by design;
    experiment E11 exhibits its agreement violation. *)
