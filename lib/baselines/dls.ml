open Kernel

type lock = { value : Value.t; phase : int }

type msg =
  | Report of { phase : int; est : Value.t; lock : lock option }
  | Propose of { phase : int; value : Value.t }
  | Ack of { phase : int }
  | Decide of Value.t
  | Dummy

type state = {
  config : Config.t;
  me : Pid.t;
  est : Value.t;
  lock : lock option;
  gathered : (Value.t * lock option) list;  (* leader: phase reports *)
  accepted : bool;  (* this phase's proposal was received and locked *)
  pending_decide : Value.t option;
  decision : Value.t option;
  halted : bool;
}

let name = "DLS"
let model = Sim.Model.Dls_basic

(* Rotating-coordinator phases: not pid-symmetric. *)
let symmetric = false

let init config me v =
  Config.validate_indulgent config;
  {
    config;
    me;
    est = v;
    lock = None;
    gathered = [];
    accepted = false;
    pending_decide = None;
    decision = None;
    halted = false;
  }

let phase_of round = (Round.to_int round - 1) / 4
let subround_of round = (Round.to_int round - 1) mod 4
let leader config phase = Pid.of_int ((phase mod Config.n config) + 1)
let is_leader st round = Pid.equal st.me (leader st.config (phase_of round))

(* The value of the highest-phase lock among the reports, or the minimum
   estimate when nobody is locked. Ties towards the smaller value. *)
let proposal_value gathered =
  let best_lock =
    List.fold_left
      (fun acc (_, lock) ->
        match (acc, lock) with
        | None, l -> l
        | Some a, Some l
          when l.phase > a.phase
               || (l.phase = a.phase && Value.compare l.value a.value < 0) ->
            Some l
        | Some _, _ -> acc)
      None gathered
  in
  match best_lock with
  | Some l -> l.value
  | None -> Value.minimum (List.map fst gathered)

let on_send st round =
  match st.decision with
  | Some v -> Decide v
  | None -> (
      let phase = phase_of round in
      match subround_of round with
      | 0 -> Report { phase; est = st.est; lock = st.lock }
      | 1 ->
          if
            is_leader st round
            && List.length st.gathered >= Config.quorum st.config
          then Propose { phase; value = proposal_value st.gathered }
          else Dummy
      | 2 -> if st.accepted then Ack { phase } else Dummy
      | _ -> (
          match st.pending_decide with
          | Some v when is_leader st round -> Decide v
          | _ -> Dummy))

let find_decide inbox =
  List.find_map
    (fun (e : msg Sim.Envelope.t) ->
      match e.payload with Decide v -> Some v | _ -> None)
    inbox

let current ~round inbox =
  List.filter_map
    (fun (e : msg Sim.Envelope.t) ->
      if Sim.Envelope.is_current e ~round then Some (e.src, e.payload)
      else None)
    inbox

let on_receive st round inbox =
  match st.decision with
  | Some _ ->
      (* Unlike the ES algorithms, a decider must NOT stop after one relay:
         the basic round model has no reliable channels, so a single DECIDE
         broadcast can be entirely lost before stabilisation, and the
         remaining processes may be too few to assemble a report quorum on
         their own. Broadcasting DECIDE forever is the standard remedy —
         after stabilisation one round suffices to finish everyone. *)
      st
  | None -> (
      match find_decide inbox with
      | Some v -> { st with decision = Some v }
      | None -> (
          let phase = phase_of round in
          let msgs = current ~round inbox in
          match subround_of round with
          | 0 ->
              let gathered =
                if is_leader st round then
                  List.filter_map
                    (fun (_, payload) ->
                      match payload with
                      | Report r when r.phase = phase -> Some (r.est, r.lock)
                      | _ -> None)
                    msgs
                else []
              in
              { st with gathered; accepted = false; pending_decide = None }
          | 1 -> (
              let from_leader =
                List.find_map
                  (fun (src, payload) ->
                    match payload with
                    | Propose p
                      when p.phase = phase
                           && Pid.equal src (leader st.config phase) ->
                        Some p.value
                    | _ -> None)
                  msgs
              in
              match from_leader with
              | Some v ->
                  {
                    st with
                    accepted = true;
                    est = v;
                    lock = Some { value = v; phase };
                  }
              | None -> { st with accepted = false })
          | 2 ->
              if is_leader st round then begin
                let acks =
                  Listx.count
                    (fun (_, payload) ->
                      match payload with
                      | Ack a -> a.phase = phase
                      | _ -> false)
                    msgs
                in
                if acks >= Config.t st.config + 1 then
                  (* The leader accepted its own proposal, so est = v. *)
                  { st with pending_decide = Some st.est }
                else st
              end
              else st
          | _ ->
              { st with gathered = []; accepted = false; pending_decide = None }))

let decision st = st.decision
let halted st = st.halted

let wire_size = function
  | Report { lock = Some _; _ } -> 4 + 8 + 1 + 12
  | Report { lock = None; _ } -> 4 + 8 + 1
  | Propose _ -> 12
  | Ack _ -> 4
  | Decide _ -> 8
  | Dummy -> 0

let pp_lock ppf l = Format.fprintf ppf "(%a,ph%d)" Value.pp l.value l.phase

let pp_msg ppf = function
  | Report r ->
      Format.fprintf ppf "report(ph%d,%a,%a)" r.phase Value.pp r.est
        (Format.pp_print_option pp_lock)
        r.lock
  | Propose p -> Format.fprintf ppf "propose(ph%d,%a)" p.phase Value.pp p.value
  | Ack a -> Format.fprintf ppf "ack(ph%d)" a.phase
  | Decide v -> Format.fprintf ppf "decide(%a)" Value.pp v
  | Dummy -> Format.pp_print_string ppf "dummy"

let pp_state ppf st =
  Format.fprintf ppf "@[est=%a lock=%a%a@]" Value.pp st.est
    (Format.pp_print_option pp_lock)
    st.lock
    (fun ppf () ->
      match st.decision with
      | Some v -> Format.fprintf ppf " decided=%a" Value.pp v
      | None -> ())
    ()
