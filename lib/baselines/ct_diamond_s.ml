include Ct_generic.Make (struct
  let name = "CT-<>S"
  let threshold = Kernel.Config.majority
  let validate = Kernel.Config.validate_indulgent
end)
