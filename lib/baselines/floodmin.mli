(** FloodMin: estimate flooding that keeps only the minimum.

    The scalar cousin of {!Floodset} (Lynch, {e Distributed Algorithms},
    1996): each process floods its current estimate — not the whole set of
    values seen — for [t + 1] rounds and decides the minimum at the end of
    round [t + 1]. Same SCS guarantees and the same worst case as FloodSet
    (it is the [k = 1] case of the FloodMin [k]-set-consensus family), with
    O(1)-size messages and an O(1)-size state.

    Its role here is as the engine's zero-allocation witness: after round 1
    of a failure-free run every estimate has already converged, so
    [on_send] returns a cached message and [on_receive] returns the state
    physically unchanged — a steady round allocates {e nothing}. The
    scaling benchmarks instantiate {!Make} with thousands of
    [extra_rounds] to hold the system in that steady state and measure the
    engine's own per-round allocation floor; [extra_rounds] just pushes
    the decision round to [t + 1 + extra_rounds] and changes nothing
    else. *)

module type Params = sig
  val extra_rounds : int
  (** Extra flooding rounds past the classic [t + 1]; must be [>= 0].
      [0] is the textbook algorithm. *)
end

module Make (_ : Params) : Sim.Algorithm.S

module Std : Sim.Algorithm.S
(** [Make] with [extra_rounds = 0]. *)
