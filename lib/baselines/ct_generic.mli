(** The rotating-coordinator consensus skeleton shared by {!Ct_diamond_s}
    and {!Ct_naive}, parameterised by the quorum the coordinator needs for
    gathering estimates and counting acks.

    With the {e majority} threshold this is the Chandra–Toueg <>S algorithm
    and uniform agreement holds for [t < n/2] (majorities intersect, so a
    locked value is visible to every later coordinator). With the weaker
    [n - t] threshold and [t >= n/2], two disjoint halves of the system can
    each assemble a "quorum" — experiment E9 partitions the network and
    makes the naive variant decide two different values, reproducing the
    resilience price of indulgence ([t < n/2] is necessary, reference [2]). *)

module Make (Q : sig
  val name : string

  val threshold : Kernel.Config.t -> int
  (** Messages the coordinator needs to propose, and acks it needs to
      decide. *)

  val validate : Kernel.Config.t -> unit
  (** Resilience regime check performed at [init]. *)
end) : Sim.Algorithm.S
