(** Consensus in the fail-stop basic round model — the algorithm of Dwork,
    Lynch and Stockmeyer (JACM 35(2), 1988 — reference [6]), reconstructed
    for crash faults with [n >= 2t + 1].

    The paper's Section 1.4 identifies the DLS basic round model with the
    variant of ES that drops t-resilience and loses delayed messages; this
    algorithm is the natural resident of that model, and also runs unchanged
    on ES schedules (which only deliver more).

    Rotating-leader phases of four rounds (phase [k], leader
    [p_{(k mod n)+1}]):

    + everyone reports its estimate and its current lock to the leader;
    + the leader, {e if it heard at least [n - t] reports}, proposes the
      value of the highest-phase lock reported (or the minimum estimate if
      none) — the gathering quorum is what makes locks visible: any [t+1]
      lockers intersect any [n - t] reporters;
    + processes that received the proposal lock [(v, k)], adopt [v] and
      ack;
    + the leader, on [t + 1] acks, broadcasts DECIDE — at least one acker
      is correct and carries the lock forever, so by induction every later
      proposal equals [v].

    Deciders keep broadcasting DECIDE {e forever} (they never halt): with
    no reliable channels, a one-shot relay can be lost wholesale before
    stabilisation, stranding a correct process that can no longer assemble
    a report quorum from the survivors — a liveness bug the random-schedule
    property tests caught, kept as a pinned regression.

    Before stabilisation whole phases can be mute (the model may lose
    anything); after it, the first phase with a correct leader decides, so
    every run terminates by stabilisation + [4(n+1)] rounds, and a
    synchronous run in which the first [t] leaders crash decides at
    [4t + 4] — another baseline far above the [t + 2] of [A_{t+2}]. *)

include Sim.Algorithm.S
