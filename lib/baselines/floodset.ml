open Kernel

type msg = Flood of Value.Set.t | Decide of Value.t

type state = {
  config : Config.t;
  seen : Value.Set.t;
  decision : Value.t option;
  halted : bool;
}

let name = "FloodSet"
let model = Sim.Model.Scs

(* Estimates converge to the minimum over value sets; no step consults an
   id except through pid sets. *)
let symmetric = true

let init config _pid v =
  { config; seen = Value.Set.singleton v; decision = None; halted = false }

let last_flood_round st = Config.t st.config + 1

let on_send st _round =
  match st.decision with
  | Some v -> Decide v
  | None -> Flood st.seen

let on_receive st round inbox =
  match st.decision with
  | Some _ ->
      (* Decision already broadcast in this round's send phase; return. *)
      { st with halted = true }
  | None ->
      (* Only same-round messages: SCS has no delayed deliveries, so on an
         ES schedule a synchronous run must look exactly like an SCS run to
         this algorithm (DECIDE echoes are accepted whenever they arrive). *)
      let seen =
        List.fold_left
          (fun acc (e : msg Sim.Envelope.t) ->
            match e.payload with
            | Flood values when Sim.Envelope.is_current e ~round ->
                (* Once estimates converge every incoming set is a subset of
                   [acc]: checking first keeps the steady state free of set
                   rebuilds (and their allocations). *)
                if Value.Set.subset values acc then acc
                else Value.Set.union values acc
            | Flood _ -> acc
            | Decide v -> if Value.Set.mem v acc then acc else Value.Set.add v acc)
          st.seen inbox
      in
      if Round.to_int round >= last_flood_round st then
        { st with seen; decision = Some (Value.Set.min_elt seen) }
      else if seen == st.seen then st
      else { st with seen }

let decision st = st.decision
let halted st = st.halted

let wire_size = function
  | Flood values -> 4 + (8 * Value.Set.cardinal values)
  | Decide _ -> 8

let pp_msg ppf = function
  | Flood values ->
      Format.fprintf ppf "flood{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           Value.pp)
        (Value.Set.elements values)
  | Decide v -> Format.fprintf ppf "decide(%a)" Value.pp v

let pp_state ppf st =
  Format.fprintf ppf "@[seen={%a}%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Value.pp)
    (Value.Set.elements st.seen)
    (fun ppf () ->
      match st.decision with
      | Some v -> Format.fprintf ppf " decided=%a" Value.pp v
      | None -> ())
    ()
