open Kernel

type msg = Flood of Value.Set.t * int | Decide of Value.t

type state = {
  config : Config.t;
  seen : Value.Set.t;
  mask : int;
      (* [seen] as a bitmask when every value fits in a 62-bit word
         ([mask_of]), [-1] otherwise; a function of [seen], kept so the
         steady-state subset test is one [land] with no allocation *)
  msg_out : msg;
      (* the message [on_send] returns, cached so steady-state sends
         allocate nothing; always [Flood (seen, mask)] before deciding and
         [Decide v] after, so it is a function of the other fields and
         states stay canonical (equal behaviour iff equal structure) *)
  decision : Value.t option;
  halted : bool;
  next : state option;
      (* precomputed successor, again a function of the other fields:
         an undecided state holds the decided state it becomes at
         [last_flood_round] {e if no new value arrives by then} (true on
         every clean run: floods converge in one round), a decided state
         holds its halted successor, a halted state holds [None]. Under
         DFS snapshot/restore the same record is stepped once per sibling
         branch, so returning [next] instead of rebuilding makes decision
         and halt rounds allocation-free. The chain is finite — no
         [let rec] cycles, which polymorphic [(=)] (dedup's key equality)
         could not terminate on. *)
}

let name = "FloodSet"
let model = Sim.Model.Scs

(* Estimates converge to the minimum over value sets; no step consults an
   id except through pid sets. *)
let symmetric = true

let mask_of seen =
  Value.Set.fold
    (fun v m ->
      let v = Value.to_int v in
      if m < 0 || v < 0 || v > 61 then -1 else m lor (1 lsl v))
    seen 0

(* The decided state reached at [last_flood_round] from [seen], carrying
   its own halted successor. *)
let decided_state config seen mask =
  let v = Value.Set.min_elt seen in
  let halted_st =
    {
      config;
      seen;
      mask;
      msg_out = Decide v;
      decision = Some v;
      halted = true;
      next = None;
    }
  in
  { halted_st with halted = false; next = Some halted_st }

let flood_state config seen mask =
  {
    config;
    seen;
    mask;
    msg_out = Flood (seen, mask);
    decision = None;
    halted = false;
    next = Some (decided_state config seen mask);
  }

let init config _pid v =
  let seen = Value.Set.singleton v in
  flood_state config seen (mask_of seen)

let last_flood_round st = Config.t st.config + 1

let on_send st _round = st.msg_out

(* A toplevel recursive loop rather than [List.fold_left f]: a closure over
   [round] would be allocated once per process per round. Once estimates
   converge every incoming set is a subset of [acc]; the mask test (or, for
   unmaskable values, [Value.Set.subset]) keeps that steady state free of
   set rebuilds and their allocations. *)
let rec absorb acc macc round inbox =
  match inbox with
  | [] -> acc
  | (e : msg Sim.Envelope.t) :: rest -> (
      match e.payload with
      | Flood (values, vmask) when Sim.Envelope.is_current e ~round ->
          if
            values == acc
            || (vmask >= 0 && macc >= 0 && vmask land macc = vmask)
            || Value.Set.subset values acc
          then absorb acc macc round rest
          else
            let acc = Value.Set.union values acc in
            absorb acc (mask_of acc) round rest
      | Flood _ ->
          (* Only same-round messages: SCS has no delayed deliveries, so on
             an ES schedule a synchronous run must look exactly like an SCS
             run to this algorithm (DECIDE echoes are accepted whenever
             they arrive). *)
          absorb acc macc round rest
      | Decide v ->
          if Value.Set.mem v acc then absorb acc macc round rest
          else
            let acc = Value.Set.add v acc in
            absorb acc (mask_of acc) round rest)

let on_receive st round inbox =
  match st.decision with
  | Some _ -> (
      (* Decision already broadcast in this round's send phase; halt. *)
      match st.next with
      | Some halted_st -> halted_st
      | None -> st (* already halted; engines never step a halted process *))
  | None ->
      let seen = absorb st.seen st.mask round inbox in
      if Round.to_int round >= last_flood_round st then
        if seen == st.seen then
          match st.next with
          | Some d -> d
          | None -> decided_state st.config seen st.mask
        else decided_state st.config seen (mask_of seen)
      else if seen == st.seen then st
      else flood_state st.config seen (mask_of seen)

let decision st = st.decision
let halted st = st.halted

let wire_size = function
  | Flood (values, _) -> 4 + (8 * Value.Set.cardinal values)
  | Decide _ -> 8

let pp_msg ppf = function
  | Flood (values, _) ->
      Format.fprintf ppf "flood{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           Value.pp)
        (Value.Set.elements values)
  | Decide v -> Format.fprintf ppf "decide(%a)" Value.pp v

let pp_state ppf st =
  Format.fprintf ppf "@[seen={%a}%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Value.pp)
    (Value.Set.elements st.seen)
    (fun ppf () ->
      match st.decision with
      | Some v -> Format.fprintf ppf " decided=%a" Value.pp v
      | None -> ())
    ()
