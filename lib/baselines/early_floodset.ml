open Kernel

type msg = Flood of Value.t | Decide of Value.t

type state = {
  config : Config.t;
  est : Value.t;
  prev_heard : Pid.Set.t option;  (* sender set of the previous round *)
  decision : Value.t option;
  halted : bool;
}

let name = "EarlyFS"
let model = Sim.Model.Scs

(* Sender sets and value minima only: fully pid-symmetric. *)
let symmetric = true

let init config _me v =
  { config; est = v; prev_heard = None; decision = None; halted = false }

let on_send st _round =
  match st.decision with Some v -> Decide v | None -> Flood st.est

let on_receive st round inbox =
  match st.decision with
  | Some _ -> { st with halted = true }
  | None -> (
      match
        List.find_map
          (fun (e : msg Sim.Envelope.t) ->
            match e.payload with Decide v -> Some v | Flood _ -> None)
          inbox
      with
      | Some v -> { st with decision = Some v }
      | None ->
          let current =
            List.filter_map
              (fun (e : msg Sim.Envelope.t) ->
                match e.payload with
                | Flood v when Sim.Envelope.is_current e ~round ->
                    Some (e.src, v)
                | Flood _ | Decide _ -> None)
              inbox
          in
          let heard =
            List.fold_left
              (fun acc (src, _) -> Pid.Set.add src acc)
              Pid.Set.empty current
          in
          let est =
            Value.minimum (st.est :: List.map snd current)
          in
          let stable =
            match st.prev_heard with
            | Some prev -> Pid.Set.equal prev heard
            | None -> false
          in
          let decision =
            if stable || Round.to_int round >= Config.t st.config + 1 then
              Some est
            else None
          in
          { st with est; prev_heard = Some heard; decision })

let decision st = st.decision
let halted st = st.halted
let wire_size = function Flood _ | Decide _ -> 8

let pp_msg ppf = function
  | Flood v -> Format.fprintf ppf "flood(%a)" Value.pp v
  | Decide v -> Format.fprintf ppf "decide(%a)" Value.pp v

let pp_state ppf st =
  Format.fprintf ppf "@[est=%a%a@]" Value.pp st.est
    (fun ppf () ->
      match st.decision with
      | Some v -> Format.fprintf ppf " decided=%a" Value.pp v
      | None -> ())
    ()
