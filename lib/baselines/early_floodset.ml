open Kernel

type msg = Flood of Value.t | Decide of Value.t

type state = {
  config : Config.t;
  est : Value.t;
  prev_heard : Bitset.t;
      (* sender set of the previous round; [Bitset.empty] means "no
         previous round yet" — a real sender set always contains the
         process itself (self-delivery is unconditional), so the sentinel
         is unambiguous and costs no option box per round *)
  decision : Value.t option;
  halted : bool;
}

let name = "EarlyFS"
let model = Sim.Model.Scs

(* Sender sets and value minima only: fully pid-symmetric. *)
let symmetric = true

let init config _me v =
  {
    config;
    est = v;
    prev_heard = Bitset.empty;
    decision = None;
    halted = false;
  }

let on_send st _round =
  match st.decision with Some v -> Decide v | None -> Flood st.est

let on_receive st round inbox =
  match st.decision with
  | Some _ -> { st with halted = true }
  | None -> (
      match
        List.find_map
          (fun (e : msg Sim.Envelope.t) ->
            match e.payload with Decide v -> Some v | Flood _ -> None)
          inbox
      with
      | Some v -> { st with decision = Some v }
      | None ->
          (* The inbox holds no DECIDE here (the [find_map] above caught
             that case), so the current-round senders are exactly the
             FLOOD senders: one unboxed pass instead of a [Pid.Set]
             round-trip per round. *)
          let heard = Sim.Inbox.senders_bits inbox ~round in
          let est =
            List.fold_left
              (fun acc (e : msg Sim.Envelope.t) ->
                match e.payload with
                | Flood v when Sim.Envelope.is_current e ~round ->
                    Value.min acc v
                | Flood _ | Decide _ -> acc)
              st.est inbox
          in
          let stable =
            (not (Bitset.is_empty st.prev_heard))
            && Bitset.equal st.prev_heard heard
          in
          let decision =
            if stable || Round.to_int round >= Config.t st.config + 1 then
              Some est
            else None
          in
          { st with est; prev_heard = heard; decision })

let decision st = st.decision
let halted st = st.halted
let wire_size = function Flood _ | Decide _ -> 8

let pp_msg ppf = function
  | Flood v -> Format.fprintf ppf "flood(%a)" Value.pp v
  | Decide v -> Format.fprintf ppf "decide(%a)" Value.pp v

let pp_state ppf st =
  Format.fprintf ppf "@[est=%a%a@]" Value.pp st.est
    (fun ppf () ->
      match st.decision with
      | Some v -> Format.fprintf ppf " decided=%a" Value.pp v
      | None -> ())
    ()
