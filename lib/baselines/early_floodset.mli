(** Early-deciding uniform consensus in the synchronous crash-stop model —
    the algorithm behind references [4] (Charron-Bost–Schiper) and [11]
    (Keidar–Rajsbaum): global decision by round [min(f + 2, t + 1)] where
    [f] is the number of crashes that {e actually} occur.

    Processes flood estimates as in FloodSet and additionally watch the set
    of processes they hear from. A process decides its estimate at the end
    of the first round [r >= 2] whose sender set equals the previous
    round's: two personally-clean rounds mean every estimate the process
    could be missing has already reached everybody it could disagree with.
    Deciding at the {e first} clean round would not be uniform — the round-1
    sender set has no predecessor to compare against, and deciding on it is
    exactly the mistake that loses uniform agreement when all early
    deciders subsequently crash (the f + 2 lower bound for uniform
    consensus [4, 11]; the exhaustive sweeps in the test suite find the
    violation if the rule is weakened). Unconditionally, round [t + 1]
    decides (the FloodSet fallback), so the bound is [min(f+2, t+1)].

    Section 6 of the paper contrasts exactly these quantities: SCS reaches
    [f + 2] with reliable failure detection, ES needs [f + 2] too but only
    achieves it for [t < n/3] via [A_{f+2}] (and [t < n/2] via the paper's
    follow-up [5]). *)

include Sim.Algorithm.S
