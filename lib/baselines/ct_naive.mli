(** {!Ct_generic} with the naive [n - t] threshold and no resilience check:
    a deliberately broken "indulgent" algorithm for [t >= n/2], used by
    experiment E9 to reproduce the impossibility of indulgent consensus
    without a correct majority (reference [2] of the paper). Safe when
    [t < n/2] only by accident of scheduling — do not use it for anything
    but the demonstration. *)

include Sim.Algorithm.S
