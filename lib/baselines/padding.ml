open Kernel

module Make
    (A : Sim.Algorithm.S) (D : sig
      val rounds : int
    end) =
struct
  type state = A.state
  type msg = Idle | Inner of A.msg

  let name = Format.sprintf "%s+pad%d" A.name D.rounds
  let model = A.model
  let symmetric = A.symmetric
  let init = A.init
  let shift round = Round.to_int round - D.rounds

  let on_send st round =
    if shift round <= 0 then Idle
    else Inner (A.on_send st (Round.of_int (shift round)))

  let on_receive st round inbox =
    if shift round <= 0 then st
    else
      let inner_inbox =
        List.filter_map
          (fun (e : msg Sim.Envelope.t) ->
            match e.payload with
            | Idle -> None
            | Inner payload ->
                let sent = shift e.sent in
                if sent <= 0 then None
                else
                  Some
                    (Sim.Envelope.make ~src:e.src ~sent:(Round.of_int sent)
                       payload))
          inbox
      in
      A.on_receive st (Round.of_int (shift round)) inner_inbox

  let decision = A.decision
  let halted = A.halted

  let wire_size = function Idle -> 0 | Inner m -> A.wire_size m

  let pp_msg ppf = function
    | Idle -> Format.pp_print_string ppf "idle"
    | Inner m -> A.pp_msg ppf m

  let pp_state = A.pp_state
end
