(** A combinator that makes any algorithm artificially slower by prefixing
    [D.rounds] idle rounds (dummy messages, ignored inboxes) before the inner
    algorithm starts.

    [A_{t+2}] guarantees its fast-decision property {e regardless of the time
    complexity of C} (Section 3); plugging [Pad (Ct_diamond_s) (struct let
    rounds = 40 end)] in as [C] lets experiment E3 check that claim
    mechanically: synchronous runs still globally decide at [t + 2] even when
    the fallback path is absurdly slow. *)

module Make (A : Sim.Algorithm.S) (D : sig
  val rounds : int
end) : Sim.Algorithm.S
