(** The FloodSet consensus algorithm for the synchronous crash-stop model
    (Lynch, {e Distributed Algorithms}, 1996 — reference [13] of the paper).

    Every process floods the set of values it has seen for [t + 1] rounds and
    decides the minimum at the end of round [t + 1]. In SCS this is optimal:
    every run reaches a global decision at round [t + 1], matching the [t + 1]
    lower bound. It is {e not} indulgent: experiment E9 runs it on an ES
    schedule with a delayed message and exhibits an agreement violation,
    which is why the whole indulgence question arises. *)

include Sim.Algorithm.S
