open Kernel

type msg = Estimate of Ws_flood.payload | Decide of Value.t

type state = {
  config : Config.t;
  me : Pid.t;
  flood : Ws_flood.t;
  decision : Value.t option;
  halted : bool;
}

let name = "FloodSetWS"

(* Designed for the synchronous model enriched with a perfect failure
   detector; its guarantees hold exactly on synchronous schedules. *)
let model = Sim.Model.Scs

(* Ws_flood tracks pid sets and takes value minima; nothing id-selected. *)
let symmetric = true

let init config me v =
  { config; me; flood = Ws_flood.init v; decision = None; halted = false }

let decision_round st = Config.t st.config + 1

let on_send st _round =
  match st.decision with
  | Some v -> Decide v
  | None -> Estimate (Ws_flood.payload st.flood)

let estimate_envelopes ~round inbox =
  List.filter_map
    (fun (e : msg Sim.Envelope.t) ->
      match e.payload with
      | Estimate p when Sim.Envelope.is_current e ~round ->
          Some { e with payload = p }
      | Estimate _ | Decide _ -> None)
    inbox

let on_receive st round inbox =
  match st.decision with
  | Some _ -> { st with halted = true }
  | None -> (
      match
        List.find_map
          (fun (e : msg Sim.Envelope.t) ->
            match e.payload with Decide v -> Some v | Estimate _ -> None)
          inbox
      with
      | Some v -> { st with decision = Some v }
      | None ->
          let current = estimate_envelopes ~round inbox in
          let flood =
            Ws_flood.compute ~n:(Config.n st.config) ~me:st.me st.flood
              current
          in
          if Round.to_int round >= decision_round st then
            { st with flood; decision = Some flood.Ws_flood.est }
          else { st with flood })

let decision st = st.decision
let halted st = st.halted

let wire_size = function
  | Estimate p -> Ws_flood.payload_bytes p
  | Decide _ -> 8

let pp_msg ppf = function
  | Estimate p -> Format.fprintf ppf "est(%a)" Ws_flood.pp_payload p
  | Decide v -> Format.fprintf ppf "decide(%a)" Value.pp v

let pp_state ppf st =
  Format.fprintf ppf "@[%a%a@]" Ws_flood.pp st.flood
    (fun ppf () ->
      match st.decision with
      | Some v -> Format.fprintf ppf " decided=%a" Value.pp v
      | None -> ())
    ()
