open Kernel

module type Params = sig
  val extra_rounds : int
end

module Make (P : Params) = struct
  type msg = Est of Value.t | Decide of Value.t

  type state = {
    config : Config.t;
    est : Value.t;
    msg_out : msg;
        (* the message [on_send] returns, cached so steady-state sends
           allocate nothing; always [Est est] before deciding and
           [Decide v] after, so it is a function of the other fields and
           states stay canonical (equal behaviour iff equal structure) *)
    decision : Value.t option;
    halted : bool;
  }

  let name =
    if P.extra_rounds = 0 then "FloodMin"
    else Printf.sprintf "FloodMin+%d" P.extra_rounds

  let model = Sim.Model.Scs

  (* Minima over values and a fixed decision round: fully pid-symmetric. *)
  let symmetric = true

  let init config _me v =
    {
      config;
      est = v;
      msg_out = Est v;
      decision = None;
      halted = false;
    }

  let decide_round st = Config.t st.config + 1 + P.extra_rounds
  let on_send st _round = st.msg_out

  (* A toplevel recursive loop rather than [List.fold_left f]: a closure
     over [round] would be allocated once per process per round, which is
     the entire allocation budget of a steady round. *)
  let rec min_est acc round = function
    | [] -> acc
    | (e : msg Sim.Envelope.t) :: rest ->
        let acc =
          if Sim.Envelope.is_current e ~round then
            match e.payload with Est v | Decide v -> Value.min acc v
          else acc
        in
        min_est acc round rest

  let on_receive st round inbox =
    match st.decision with
    | Some _ -> if st.halted then st else { st with halted = true }
    | None ->
        let est = min_est st.est round inbox in
        if Round.to_int round >= decide_round st then
          { st with est; msg_out = Decide est; decision = Some est }
        else if Value.equal est st.est then st
        else { st with est; msg_out = Est est }

  let decision st = st.decision
  let halted st = st.halted
  let wire_size = function Est _ | Decide _ -> 8

  let pp_msg ppf = function
    | Est v -> Format.fprintf ppf "est(%a)" Value.pp v
    | Decide v -> Format.fprintf ppf "decide(%a)" Value.pp v

  let pp_state ppf st =
    Format.fprintf ppf "@[est=%a%a@]" Value.pp st.est
      (fun ppf () ->
        match st.decision with
        | Some v -> Format.fprintf ppf " decided=%a" Value.pp v
        | None -> ())
      ()
end

module Std = Make (struct
  let extra_rounds = 0
end)
