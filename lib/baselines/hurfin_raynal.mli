(** The Hurfin–Raynal <>S consensus algorithm (Distributed Computing 12(4),
    1999 — reference [10]), reconstructed in the round-based ES model.

    This was the most efficient indulgent algorithm in worst-case synchronous
    runs before [A_{t+2}]: the paper cites it as having a synchronous run
    that needs [2t + 2] rounds for a global decision. Its structure is a
    rotating coordinator with {e two} rounds per phase:

    + the phase's coordinator broadcasts its estimate;
    + every process echoes the coordinator's value, or ⊥ if it suspects the
      coordinator; a process that sees a full quorum of [n - t] echoes all
      carrying the same value decides it, and a process that sees at least
      one non-⊥ echo adopts the value.

    Safety: all non-⊥ echoes of a phase carry the same value (the
    coordinator's, crash faults only); if somebody decides [v] on [n - t]
    unanimous echoes, any other quorum of echoes intersects it in at least
    [n - 2t >= 1] processes (since [t < n/2]), so everyone else at least
    adopts [v] and later phases can only propose [v].

    Crashing the coordinators of the first [t] phases wastes two rounds
    each; the phase of the first surviving coordinator completes in two more,
    hence the [2t + 2] worst case that E1 measures — exactly the complexity
    the paper attributes to [10], which is what the comparison against
    [A_{t+2}]'s [t + 2] needs. *)

include Sim.Algorithm.S
