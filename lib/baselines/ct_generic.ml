open Kernel

module Make (Q : sig
  val name : string
  val threshold : Kernel.Config.t -> int
  val validate : Kernel.Config.t -> unit
end) =
struct
type msg =
  | Est of { phase : int; est : Value.t; ts : int }
  | Proposal of { phase : int; value : Value.t }
  | Ack of { phase : int; positive : bool }
  | Decide of Value.t
  | Dummy

type state = {
  config : Config.t;
  me : Pid.t;
  est : Value.t;
  ts : int;  (* 0 = initial; phi + 1 = adopted in phase phi *)
  gathered : (Value.t * int) list;  (* coordinator: phase estimates *)
  proposal : Value.t option;  (* this phase's coordinator proposal, if seen *)
  pending_decide : Value.t option;  (* coordinator: locked, announce next round *)
  decision : Value.t option;
  relayed : bool;  (* the DECIDE broadcast round has been sent *)
  halted : bool;
}

let name = Q.name
let model = Sim.Model.Es

(* Rotating coordinator, selected by id. *)
let symmetric = false

let init config me v =
  Q.validate config;
  {
    config;
    me;
    est = v;
    ts = 0;
    gathered = [];
    proposal = None;
    pending_decide = None;
    decision = None;
    relayed = false;
    halted = false;
  }

let phase_of round = (Round.to_int round - 1) / 4
let subround_of round = (Round.to_int round - 1) mod 4

let coordinator config phase =
  Pid.of_int ((phase mod Config.n config) + 1)

let is_coordinator st round =
  Pid.equal st.me (coordinator st.config (phase_of round))

(* The estimate with the highest timestamp; ties broken towards the smallest
   value for determinism. *)
let best_estimate gathered =
  match gathered with
  | [] -> invalid_arg "Ct_diamond_s.best_estimate: empty"
  | first :: rest ->
      let better (v, ts) (v', ts') =
        if ts' > ts || (ts' = ts && Value.compare v' v < 0) then (v', ts')
        else (v, ts)
      in
      fst (List.fold_left better first rest)

let on_send st round =
  match st.decision with
  | Some v -> Decide v
  | None -> (
      match subround_of round with
      | 0 -> Est { phase = phase_of round; est = st.est; ts = st.ts }
      | 1 ->
          if is_coordinator st round then
            match st.gathered with
            | gathered when List.length gathered >= Q.threshold st.config
              ->
                Proposal
                  { phase = phase_of round; value = best_estimate gathered }
            | _ -> Dummy
          else Dummy
      | 2 ->
          Ack { phase = phase_of round; positive = st.proposal <> None }
      | _ -> (
          match st.pending_decide with
          | Some v when is_coordinator st round -> Decide v
          | _ -> Dummy))

let find_decide inbox =
  List.find_map
    (fun (e : msg Sim.Envelope.t) ->
      match e.payload with Decide v -> Some v | _ -> None)
    inbox

let current_payloads ~round inbox =
  List.filter_map
    (fun (e : msg Sim.Envelope.t) ->
      if Sim.Envelope.is_current e ~round then Some (e.src, e.payload)
      else None)
    inbox

let on_receive st round inbox =
  match st.decision with
  | Some _ ->
      (* The send phase of this round broadcast DECIDE; we may now return. *)
      { st with relayed = true; halted = true }
  | None -> (
      match find_decide inbox with
      | Some v -> { st with decision = Some v }
      | None -> (
          let phase = phase_of round in
          let current = current_payloads ~round inbox in
          match subround_of round with
          | 0 ->
              let gathered =
                if is_coordinator st round then
                  List.filter_map
                    (fun (_, payload) ->
                      match payload with
                      | Est e when e.phase = phase -> Some (e.est, e.ts)
                      | _ -> None)
                    current
                else []
              in
              { st with gathered; proposal = None; pending_decide = None }
          | 1 -> (
              let coord = coordinator st.config phase in
              match
                List.find_map
                  (fun (src, payload) ->
                    match payload with
                    | Proposal p when p.phase = phase && Pid.equal src coord
                      ->
                        Some p.value
                    | _ -> None)
                  current
              with
              | Some v ->
                  { st with proposal = Some v; est = v; ts = phase + 1 }
              | None -> { st with proposal = None })
          | 2 ->
              if is_coordinator st round then begin
                let positive_acks =
                  Listx.count
                    (fun (_, payload) ->
                      match payload with
                      | Ack a -> a.phase = phase && a.positive
                      | _ -> false)
                    current
                in
                if positive_acks >= Q.threshold st.config then
                  (* Own est is the proposal: the coordinator adopted its own
                     proposal when it received it in the previous round. *)
                  { st with pending_decide = Some st.est }
                else { st with pending_decide = None }
              end
              else st
          | _ -> { st with gathered = []; proposal = None; pending_decide = None }))

let decision st = st.decision
let halted st = st.halted

let wire_size = function
  | Est _ -> 16
  | Proposal _ -> 12
  | Ack _ -> 5
  | Decide _ -> 8
  | Dummy -> 0

let pp_msg ppf = function
  | Est e -> Format.fprintf ppf "est(ph%d,%a,ts%d)" e.phase Value.pp e.est e.ts
  | Proposal p -> Format.fprintf ppf "prop(ph%d,%a)" p.phase Value.pp p.value
  | Ack a -> Format.fprintf ppf "%s(ph%d)" (if a.positive then "ack" else "nack") a.phase
  | Decide v -> Format.fprintf ppf "decide(%a)" Value.pp v
  | Dummy -> Format.fprintf ppf "dummy"

let pp_state ppf st =
  Format.fprintf ppf "@[est=%a ts=%d%a@]" Value.pp st.est st.ts
    (fun ppf () ->
      match st.decision with
      | Some v -> Format.fprintf ppf " decided=%a" Value.pp v
      | None -> ())
    ()

end
