open Kernel

type msg =
  | Est of { phase : int; est : Value.t }
  | Cand of { phase : int; cand : Value.t }
  | Decide of Value.t

type state = {
  config : Config.t;
  me : Pid.t;
  est : Value.t;
  cand : Value.t;  (* leader's estimate adopted in the first subround *)
  decision : Value.t option;
  halted : bool;
}

let name = "AMR-leader"
let model = Sim.Model.Es

(* Leader-based: the designated leader is selected by id. *)
let symmetric = false

let init config me v =
  Config.validate_third config;
  { config; me; est = v; cand = v; decision = None; halted = false }

let phase_of round = (Round.to_int round - 1) / 2
let subround_of round = (Round.to_int round - 1) mod 2

let on_send st round =
  match st.decision with
  | Some v -> Decide v
  | None -> (
      let phase = phase_of round in
      match subround_of round with
      | 0 -> Est { phase; est = st.est }
      | _ -> Cand { phase; cand = st.cand })

let find_decide inbox =
  List.find_map
    (fun (e : msg Sim.Envelope.t) ->
      match e.payload with Decide v -> Some v | _ -> None)
    inbox

(* The n - t messages with the lowest sender ids among the current-round
   messages matching [select]; the inbox arrives sorted by sender id. *)
let lowest_quorum st ~round ~select inbox =
  let matching =
    List.filter_map
      (fun (e : msg Sim.Envelope.t) ->
        if Sim.Envelope.is_current e ~round then
          Option.map (fun x -> (e.src, x)) (select e.payload)
        else None)
      inbox
  in
  Listx.take (Config.quorum st.config) matching

let on_receive st round inbox =
  match st.decision with
  | Some _ -> { st with halted = true }
  | None -> (
      match find_decide inbox with
      | Some v -> { st with decision = Some v }
      | None -> (
          let phase = phase_of round in
          match subround_of round with
          | 0 -> (
              let ests =
                lowest_quorum st ~round
                  ~select:(function
                    | Est e when e.phase = phase -> Some e.est
                    | _ -> None)
                  inbox
              in
              (* The leader is the minimum-id sender: the head of the sorted
                 quorum. *)
              match ests with
              | (_, leader_est) :: _ -> { st with cand = leader_est }
              | [] -> st)
          | _ -> (
              let cands =
                lowest_quorum st ~round
                  ~select:(function
                    | Cand c when c.phase = phase -> Some c.cand
                    | _ -> None)
                  inbox
              in
              let quorum = Config.quorum st.config in
              let values = List.map snd cands in
              if List.length values < quorum then st
              else if Listx.all_equal ~equal:Value.equal values then
                { st with decision = Some (List.hd values) }
              else
                let threshold = quorum - Config.t st.config in
                match
                  List.find_opt
                    (fun (_, count) -> count >= threshold)
                    (Listx.occurrences ~compare:Value.compare values)
                with
                | Some (v, _) -> { st with est = v }
                | None -> { st with est = Value.minimum values })))

let decision st = st.decision
let halted st = st.halted

let wire_size = function Est _ | Cand _ -> 12 | Decide _ -> 8

let pp_msg ppf = function
  | Est e -> Format.fprintf ppf "est(ph%d,%a)" e.phase Value.pp e.est
  | Cand c -> Format.fprintf ppf "cand(ph%d,%a)" c.phase Value.pp c.cand
  | Decide v -> Format.fprintf ppf "decide(%a)" Value.pp v

let pp_state ppf st =
  Format.fprintf ppf "@[est=%a cand=%a%a@]" Value.pp st.est Value.pp st.cand
    (fun ppf () ->
      match st.decision with
      | Some v -> Format.fprintf ppf " decided=%a" Value.pp v
      | None -> ())
    ()
