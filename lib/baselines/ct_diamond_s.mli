(** Rotating-coordinator consensus with majority locking — the Chandra–Toueg
    <>S algorithm (reference [2]) transposed to the round-based ES model, as
    the paper's footnote 7 prescribes for the underlying module [C] of
    [A_{t+2}].

    Requires [0 < t < n/2]. Each phase [phi] (coordinator
    [p_{(phi mod n) + 1}]) takes four rounds:

    + everyone sends its timestamped estimate;
    + the coordinator, if it received a majority of phase-[phi] estimates,
      proposes the estimate with the highest timestamp;
    + processes that received the proposal adopt it (stamping it with the
      phase) and ack; the rest nack;
    + the coordinator, on a majority of acks, broadcasts DECIDE.

    Uniform agreement is the classic locking argument: a decided value was
    adopted by a majority, every later coordinator reads a majority of
    estimates, and majorities intersect, so the highest-timestamped estimate
    it sees is the locked value. Termination holds in every ES run: after the
    schedule's gst the first phase whose coordinator is correct decides.

    Synchronous worst case: crashing the coordinators of the first [t] phases
    wastes four rounds each, so a global decision can be delayed to round
    [4t + 4] — far beyond [t + 2], which is why [A_{t+2}] does not run [C] on
    the fast path at all. *)

include Sim.Algorithm.S
