include Ct_generic.Make (struct
  let name = "CT-naive"
  let threshold = Kernel.Config.quorum
  let validate = fun _ -> ()
end)
