open Kernel

type echo = Val of Value.t | Bot

type msg =
  | Current of { phase : int; est : Value.t }  (* coordinator broadcast *)
  | Echo of { phase : int; echo : echo }
  | Decide of Value.t
  | Dummy

type state = {
  config : Config.t;
  me : Pid.t;
  est : Value.t;
  heard : Value.t option;  (* coordinator value received in this phase *)
  decision : Value.t option;
  halted : bool;
}

let name = "HR-<>S"
let model = Sim.Model.Es

(* Rotating coordinator, selected by id. *)
let symmetric = false

let init config me v =
  Config.validate_indulgent config;
  { config; me; est = v; heard = None; decision = None; halted = false }

let phase_of round = (Round.to_int round - 1) / 2
let subround_of round = (Round.to_int round - 1) mod 2
let coordinator config phase = Pid.of_int ((phase mod Config.n config) + 1)

let on_send st round =
  match st.decision with
  | Some v -> Decide v
  | None -> (
      let phase = phase_of round in
      match subround_of round with
      | 0 ->
          if Pid.equal st.me (coordinator st.config phase) then
            Current { phase; est = st.est }
          else Dummy
      | _ -> (
          match st.heard with
          | Some v -> Echo { phase; echo = Val v }
          | None -> Echo { phase; echo = Bot }))

let find_decide inbox =
  List.find_map
    (fun (e : msg Sim.Envelope.t) ->
      match e.payload with Decide v -> Some v | _ -> None)
    inbox

let on_receive st round inbox =
  match st.decision with
  | Some _ -> { st with halted = true }
  | None -> (
      match find_decide inbox with
      | Some v -> { st with decision = Some v }
      | None -> (
          let phase = phase_of round in
          let current =
            List.filter_map
              (fun (e : msg Sim.Envelope.t) ->
                if Sim.Envelope.is_current e ~round then
                  Some (e.src, e.payload)
                else None)
              inbox
          in
          match subround_of round with
          | 0 ->
              let coord = coordinator st.config phase in
              let heard =
                List.find_map
                  (fun (src, payload) ->
                    match payload with
                    | Current c when c.phase = phase && Pid.equal src coord ->
                        Some c.est
                    | _ -> None)
                  current
              in
              { st with heard }
          | _ ->
              let echoes =
                List.filter_map
                  (fun (_, payload) ->
                    match payload with
                    | Echo e when e.phase = phase -> Some e.echo
                    | _ -> None)
                  current
              in
              let values =
                List.filter_map
                  (function Val v -> Some v | Bot -> None)
                  echoes
              in
              let unanimous =
                List.length echoes >= Config.quorum st.config
                && List.length values = List.length echoes
              in
              let st = { st with heard = None } in
              if unanimous then { st with decision = Some (List.hd values) }
              else (
                match values with
                | v :: _ -> { st with est = v }
                | [] -> st)))

let decision st = st.decision
let halted st = st.halted

let wire_size = function
  | Current _ -> 12
  | Echo _ -> 13
  | Decide _ -> 8
  | Dummy -> 0

let pp_echo ppf = function
  | Val v -> Value.pp ppf v
  | Bot -> Format.pp_print_string ppf "_|_"

let pp_msg ppf = function
  | Current c -> Format.fprintf ppf "coord(ph%d,%a)" c.phase Value.pp c.est
  | Echo e -> Format.fprintf ppf "echo(ph%d,%a)" e.phase pp_echo e.echo
  | Decide v -> Format.fprintf ppf "decide(%a)" Value.pp v
  | Dummy -> Format.fprintf ppf "dummy"

let pp_state ppf st =
  Format.fprintf ppf "@[est=%a%a@]" Value.pp st.est
    (fun ppf () ->
      match st.decision with
      | Some v -> Format.fprintf ppf " decided=%a" Value.pp v
      | None -> ())
    ()
