(** The leader-based consensus algorithm of Mostefaoui–Raynal (PPL 11(1),
    2001 — reference [14]), translated to ES with the leader oracle of the
    paper's footnote 10: on receiving the messages of a round, the leader is
    the process with the minimum id among the senders.

    [A_{f+2}] (Fig. 5) is the paper's optimised version of this algorithm;
    the un-optimised original is the baseline of experiment E7. It requires
    [t < n/3] and runs {e two}-round phases:

    + everyone broadcasts its estimate; each process adopts as candidate the
      estimate of its current leader (minimum-id sender among the [n - t]
      lowest-id messages it selects);
    + everyone broadcasts its candidate; on [n - t] unanimous candidates a
      process decides; a candidate occurring at least [n - 2t] times is
      adopted as the new estimate; otherwise the minimum candidate is.

    Because recovering from a crashed leader costs a full two-round phase,
    a run that becomes synchronous after round [k] with [f] later crashes
    can be delayed to round [k + 2f + 2] — the complexity the paper's
    footnote 10 attributes to this algorithm, against [k + f + 2] for
    [A_{f+2}]. *)

include Sim.Algorithm.S
