open Kernel

type t = { est : Value.t; halt : Pid.Set.t }
type payload = { p_est : Value.t; p_halt : Pid.Set.t }

let init v = { est = v; halt = Pid.Set.empty }
let payload t = { p_est = t.est; p_halt = t.halt }

let compute ~n ~me t current =
  let senders =
    List.fold_left
      (fun acc (e : payload Sim.Envelope.t) -> Pid.Set.add e.src acc)
      Pid.Set.empty current
  in
  let suspected_now = Pid.Set.diff (Pid.Set.universe ~n) senders in
  let accusers =
    List.fold_left
      (fun acc (e : payload Sim.Envelope.t) ->
        if Pid.Set.mem me e.payload.p_halt then Pid.Set.add e.src acc
        else acc)
      Pid.Set.empty current
  in
  let halt = Pid.Set.union t.halt (Pid.Set.union suspected_now accusers) in
  let msg_set =
    List.filter
      (fun (e : payload Sim.Envelope.t) -> not (Pid.Set.mem e.src halt))
      current
  in
  assert (List.exists (fun (e : payload Sim.Envelope.t) -> Pid.equal e.src me) msg_set);
  let est =
    Value.minimum
      (List.map (fun (e : payload Sim.Envelope.t) -> e.payload.p_est) msg_set)
  in
  { est; halt }

let detects_false_suspicion t ~config = Pid.Set.cardinal t.halt > Config.t config

let payload_bytes p = 8 + 4 + (2 * Pid.Set.cardinal p.p_halt)

let pp ppf t =
  Format.fprintf ppf "@[est=%a halt=%a@]" Value.pp t.est Pid.Set.pp t.halt

let pp_payload ppf p =
  Format.fprintf ppf "@[est=%a halt=%a@]" Value.pp p.p_est Pid.Set.pp p.p_halt
