open Kernel

type t = { est : Value.t; halt : Bitset.t }
type payload = { p_est : Value.t; p_halt : Bitset.t }

let init v = { est = v; halt = Bitset.empty }
let payload t = { p_est = t.est; p_halt = t.halt }

let compute ~n ~me t current =
  let me_i = Pid.to_int me in
  let senders =
    List.fold_left
      (fun acc (e : payload Sim.Envelope.t) ->
        Bitset.add (Pid.to_int e.src) acc)
      Bitset.empty current
  in
  let suspected_now = Bitset.diff (Bitset.full ~n) senders in
  let accusers =
    List.fold_left
      (fun acc (e : payload Sim.Envelope.t) ->
        if Bitset.mem me_i e.payload.p_halt then
          Bitset.add (Pid.to_int e.src) acc
        else acc)
      Bitset.empty current
  in
  let halt = Bitset.union t.halt (Bitset.union suspected_now accusers) in
  let msg_set =
    List.filter
      (fun (e : payload Sim.Envelope.t) ->
        not (Bitset.mem (Pid.to_int e.src) halt))
      current
  in
  assert (
    List.exists (fun (e : payload Sim.Envelope.t) -> Pid.equal e.src me) msg_set);
  let est =
    Value.minimum
      (List.map (fun (e : payload Sim.Envelope.t) -> e.payload.p_est) msg_set)
  in
  if Value.equal est t.est && Bitset.equal halt t.halt then t
  else { est; halt }

let detects_false_suspicion t ~config = Bitset.cardinal t.halt > Config.t config

let payload_bytes p = 8 + 4 + (2 * Bitset.cardinal p.p_halt)

let pp ppf t =
  Format.fprintf ppf "@[est=%a halt=%a@]" Value.pp t.est Bitset.pp t.halt

let pp_payload ppf p =
  Format.fprintf ppf "@[est=%a halt=%a@]" Value.pp p.p_est Bitset.pp p.p_halt
