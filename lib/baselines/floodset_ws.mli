(** FloodSetWS — flooding consensus with a perfect failure detector
    (Charron-Bost, Guerraoui, Schiper, DSN 2000 — reference [3]).

    The processes flood (estimate, suspicion-set) pairs for [t + 1] rounds
    and decide their estimate at the end of round [t + 1]. With perfect
    failure detection — in our round model, in {e synchronous} runs — every
    run reaches a global decision at round [t + 1]: the suspicion-free
    elimination argument makes all estimates equal by then.

    FloodSetWS is the algorithm [A_{t+2}] is built from, and it is the
    canonical "fast but not indulgent" algorithm: it decides at [t + 1] in
    every synchronous run, so by Proposition 1 it {e must} lose uniform
    agreement in some asynchronous ES run. The model checker's attack
    synthesiser (experiment E2) finds exactly such a run, realising the
    paper's lower-bound construction. *)

include Sim.Algorithm.S
