(** Estimate flooding with suspicion tracking — the compute() procedure of
    the paper's Fig. 2, shared by FloodSetWS and by Phase 1 of [A_{t+2}].

    Each process keeps an estimate [est] (initially its proposal) and a set
    [halt] of processes [p_j] such that, in the current round or a lower one,
    the process suspected [p_j] {e or} [p_j] reported suspecting the process
    (lines 31–35 of Fig. 2). On receiving the round's messages it adds the
    processes it suspects this round and the senders that accuse it, filters
    the round's messages down to senders outside [halt] ([msgSet]), and takes
    the minimum estimate seen there. A process never suspects itself, so its
    own message is always in [msgSet] and the estimate is well defined and
    non-increasing. *)

open Kernel

type t = private { est : Value.t; halt : Bitset.t }

type payload = { p_est : Value.t; p_halt : Bitset.t }
(** The content of an ESTIMATE message. Halt sets live on
    {!Kernel.Bitset} — one unboxed word, set algebra in a handful of
    machine instructions — because [compute] runs once per process per
    round on the engine's hottest path. *)

val init : Value.t -> t
val payload : t -> payload

val compute :
  n:int -> me:Pid.t -> t -> payload Sim.Envelope.t list -> t
(** [compute ~n ~me t current] updates the state from the {e current-round}
    ESTIMATE envelopes (the caller filters out late deliveries and other
    message kinds; suspicion is defined by same-round receipt). The caller
    must include the process's own envelope. Returns the state physically
    unchanged when nothing was learned this round, so steady-state rounds
    allocate nothing. *)

val detects_false_suspicion : t -> config:Config.t -> bool
(** [|halt| > t], the Phase-2 test (line 10 of Fig. 2): by Lemma 13 this can
    only happen when some false suspicion occurred in the run. *)

val payload_bytes : payload -> int
(** Serialized size estimate of an ESTIMATE payload: the estimate plus a
    length-prefixed Halt set. *)

val pp : Format.formatter -> t -> unit
val pp_payload : Format.formatter -> payload -> unit
