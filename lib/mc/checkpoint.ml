module J = Obs.Json

let ( let* ) = Result.bind
let version = 1
let magic = "ipi-checkpoint"

type entry = {
  task : int;
  result : Exhaustive.result;
  stats : Dedup.stats option;
  edges : int;
}

type t = {
  commit : string;
  params : J.t;
  total_tasks : int;
  completed : entry list;
}

(* Memoized: the commit cannot change under a running process, and a
   periodic checkpointer must not fork a subprocess per snapshot. *)
let current_commit =
  let memo =
    lazy
      (match Unix.open_process_in "git rev-parse HEAD 2>/dev/null" with
      | exception _ -> "unknown"
      | ic -> (
          let line = try input_line ic with End_of_file -> "" in
          match Unix.close_process_in ic with
          | Unix.WEXITED 0 when String.length line = 40 -> line
          | _ | (exception _) -> "unknown"))
  in
  fun () -> Lazy.force memo

let entry_to_json e =
  J.Obj
    [
      ("task", J.Int e.task);
      ("result", Codec.result_to_json e.result);
      ( "stats",
        match e.stats with None -> J.Null | Some s -> Codec.stats_to_json s );
      ("edges", J.Int e.edges);
    ]

let to_json t =
  J.Obj
    [
      ("format", J.String magic);
      ("version", J.Int version);
      ("commit", J.String t.commit);
      ("params", t.params);
      ("total_tasks", J.Int t.total_tasks);
      ("completed", J.List (List.map entry_to_json t.completed));
    ]

let save ~path t = Obs.Artifact.write_string path (J.to_string (to_json t))

type load_error =
  | Unreadable of string
  | Malformed of string
  | Unknown_version of int

let pp_load_error ppf = function
  | Unreadable msg -> Format.fprintf ppf "checkpoint: cannot read file (%s)" msg
  | Malformed msg ->
      Format.fprintf ppf "checkpoint: malformed or truncated file (%s)" msg
  | Unknown_version v ->
      Format.fprintf ppf
        "checkpoint: unknown format version %d (this build reads version %d)" v
        version

let entry_of_json json =
  let* task =
    match Option.bind (J.member "task" json) J.to_int_opt with
    | Some v when v >= 0 -> Ok v
    | _ -> Error "bad or missing field \"task\""
  in
  let* result =
    match J.member "result" json with
    | Some j -> Codec.result_of_json j
    | None -> Error "bad or missing field \"result\""
  in
  let* stats =
    match J.member "stats" json with
    | None | Some J.Null -> Ok None
    | Some j ->
        let* s = Codec.stats_of_json j in
        Ok (Some s)
  in
  let* edges =
    match Option.bind (J.member "edges" json) J.to_int_opt with
    | Some v -> Ok v
    | None -> Error "bad or missing field \"edges\""
  in
  Ok { task; result; stats; edges }

let of_json json =
  let* () =
    match Option.bind (J.member "format" json) J.to_string_opt with
    | Some m when String.equal m magic -> Ok ()
    | _ -> Error (Malformed "missing ipi-checkpoint format marker")
  in
  let* v =
    match Option.bind (J.member "version" json) J.to_int_opt with
    | Some v -> Ok v
    | None -> Error (Malformed "bad or missing field \"version\"")
  in
  let* () = if v = version then Ok () else Error (Unknown_version v) in
  let str e = Result.map_error (fun m -> Malformed m) e in
  let* commit =
    str
      (match Option.bind (J.member "commit" json) J.to_string_opt with
      | Some c -> Ok c
      | None -> Error "bad or missing field \"commit\"")
  in
  let* params =
    match J.member "params" json with
    | Some p -> Ok p
    | None -> Error (Malformed "bad or missing field \"params\"")
  in
  let* total_tasks =
    str
      (match Option.bind (J.member "total_tasks" json) J.to_int_opt with
      | Some v when v >= 0 -> Ok v
      | _ -> Error "bad or missing field \"total_tasks\"")
  in
  let* completed =
    str
      (match Option.bind (J.member "completed" json) J.to_list_opt with
      | None -> Error "bad or missing field \"completed\""
      | Some items ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | x :: rest ->
                let* e = entry_of_json x in
                go (e :: acc) rest
          in
          go [] items)
  in
  (* Ascending, duplicate-free, in-range task indices: anything else means
     the file was hand-edited or the writer was broken — refuse it rather
     than merge garbage deterministically. *)
  let* () =
    let rec check prev = function
      | [] -> Ok ()
      | e :: rest ->
          if e.task <= prev then Error (Malformed "completed tasks not ascending")
          else if e.task >= total_tasks then
            Error (Malformed "completed task index out of range")
          else check e.task rest
    in
    check (-1) completed
  in
  Ok { commit; params; total_tasks; completed }

let load ~path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error (Unreadable msg)
  | contents -> (
      match J.of_string contents with
      | Error msg -> Error (Malformed msg)
      | Ok json -> of_json json)

let compatible t ~params =
  let mine = J.to_string params and theirs = J.to_string t.params in
  if String.equal mine theirs then Ok ()
  else
    Error
      (Printf.sprintf
         "checkpoint: parameter mismatch — the snapshot describes %s but this \
          sweep is %s"
         theirs mine)
