open Kernel

type choice =
  | No_crash
  | Crash of { victim : Pid.t; receivers : Pid.Set.t }
  | Send_omit of { culprit : Pid.t; dropped : Pid.Set.t }
  | Recv_omit of { culprit : Pid.t; dropped : Pid.Set.t }

let pp_choice ppf = function
  | No_crash -> Format.pp_print_string ppf "-"
  | Crash { victim; receivers } ->
      Format.fprintf ppf "%a!%a" Pid.pp victim Pid.Set.pp receivers
  | Send_omit { culprit; dropped } ->
      Format.fprintf ppf "%a->x%a" Pid.pp culprit Pid.Set.pp dropped
  | Recv_omit { culprit; dropped } ->
      Format.fprintf ppf "%a<-x%a" Pid.pp culprit Pid.Set.pp dropped

type policy = All_subsets | Prefixes

let receiver_sets ~policy ~survivors =
  match policy with
  | All_subsets -> List.map Pid.Set.of_list (Listx.subsets survivors)
  | Prefixes -> List.map Pid.Set.of_list (Listx.prefixes survivors)

(* Non-empty target sets for an omission act: the empty set would make the
   choice a round-shaped duplicate of [No_crash]. *)
let dropped_sets ~policy ~others =
  List.filter
    (fun s -> not (Pid.Set.is_empty s))
    (receiver_sets ~policy ~survivors:others)

let crash_choices ~policy ~alive ~omitters =
  (* The enumeration keeps crash victims and omitters disjoint: once the
     adversary fixes a process's fault class it stays in that class, so
     every budget unit buys one distinct faulty process. *)
  let victims =
    Pid.Set.elements
      (if Pid.Set.is_empty omitters then alive
       else Pid.Set.diff alive omitters)
  in
  List.concat_map
    (fun victim ->
      let survivors = Pid.Set.elements (Pid.Set.remove victim alive) in
      List.map
        (fun receivers -> Crash { victim; receivers })
        (receiver_sets ~policy ~survivors))
    victims

let omission_choices ~policy ~alive ~declared ~all_omitters ~omit_left mk =
  (* Declared culprits of this class re-offend for free; a fresh culprit
     (not yet faulty in any class) costs one unit of the omission budget. *)
  let declared_alive = Pid.Set.inter declared alive in
  let fresh =
    if omit_left > 0 then Pid.Set.diff alive all_omitters else Pid.Set.empty
  in
  let culprits = Pid.Set.elements (Pid.Set.union declared_alive fresh) in
  List.concat_map
    (fun culprit ->
      let others = Pid.Set.elements (Pid.Set.remove culprit alive) in
      List.map
        (fun dropped -> mk culprit dropped)
        (dropped_sets ~policy ~others))
    culprits

let choices ?(faults = Sim.Model.Crash_only) ?(send_omitters = Pid.Set.empty)
    ?(recv_omitters = Pid.Set.empty) ?(omit_left = 0) ~policy ~alive
    ~crashes_left () =
  let all_omitters = Pid.Set.union send_omitters recv_omitters in
  let crashes =
    match faults with
    | Sim.Model.Crash_only | Sim.Model.Mixed ->
        if crashes_left <= 0 then []
        else crash_choices ~policy ~alive ~omitters:all_omitters
    | Sim.Model.Send_omit_only | Sim.Model.Recv_omit_only -> []
  in
  let send_omits =
    match faults with
    | Sim.Model.Send_omit_only | Sim.Model.Mixed ->
        omission_choices ~policy ~alive ~declared:send_omitters ~all_omitters
          ~omit_left (fun culprit dropped -> Send_omit { culprit; dropped })
    | Sim.Model.Crash_only | Sim.Model.Recv_omit_only -> []
  in
  let recv_omits =
    match faults with
    | Sim.Model.Recv_omit_only | Sim.Model.Mixed ->
        omission_choices ~policy ~alive ~declared:recv_omitters ~all_omitters
          ~omit_left (fun culprit dropped -> Recv_omit { culprit; dropped })
    | Sim.Model.Crash_only | Sim.Model.Send_omit_only -> []
  in
  No_crash :: (crashes @ send_omits @ recv_omits)

(* ------------------------------------------------------------------ *)
(* Adversary state                                                     *)

type adversary = {
  alive : Pid.Set.t;
  crashes_left : int;
  send_omitters : Pid.Set.t;
  recv_omitters : Pid.Set.t;
  omit_left : int;
}

(* How the fault menu splits the algorithm's design threshold [t] into the
   explicit budget [(t_crash, t_omit)] the sweep runs under. [omit_budget]
   is clamped so the soundness rule [t_crash + t_omit <= t] always holds. *)
let split_budget ?(omit_budget = 1) ~faults config =
  let t = Config.t config in
  match faults with
  | Sim.Model.Crash_only -> (t, 0)
  | Sim.Model.Send_omit_only | Sim.Model.Recv_omit_only ->
      (0, min omit_budget t)
  | Sim.Model.Mixed ->
      let o = min omit_budget t in
      (t - o, o)

let budget_of ?omit_budget ~faults config =
  match faults with
  | Sim.Model.Crash_only -> None
  | _ ->
      let t_crash, t_omit = split_budget ?omit_budget ~faults config in
      Some (Sim.Model.budget ~t_crash ~t_omit)

let initial ?omit_budget ?(faults = Sim.Model.Crash_only) config =
  let t_crash, t_omit = split_budget ?omit_budget ~faults config in
  {
    alive = Pid.Set.universe ~n:(Config.n config);
    crashes_left = t_crash;
    send_omitters = Pid.Set.empty;
    recv_omitters = Pid.Set.empty;
    omit_left = t_omit;
  }

let advance adv = function
  | No_crash -> adv
  | Crash { victim; _ } ->
      {
        adv with
        alive = Pid.Set.remove victim adv.alive;
        crashes_left = adv.crashes_left - 1;
      }
  | Send_omit { culprit; _ } ->
      if Pid.Set.mem culprit adv.send_omitters then adv
      else
        {
          adv with
          send_omitters = Pid.Set.add culprit adv.send_omitters;
          omit_left = adv.omit_left - 1;
        }
  | Recv_omit { culprit; _ } ->
      if Pid.Set.mem culprit adv.recv_omitters then adv
      else
        {
          adv with
          recv_omitters = Pid.Set.add culprit adv.recv_omitters;
          omit_left = adv.omit_left - 1;
        }

let adversary_choices ~policy ~faults adv =
  choices ~faults ~send_omitters:adv.send_omitters
    ~recv_omitters:adv.recv_omitters ~omit_left:adv.omit_left ~policy
    ~alive:adv.alive ~crashes_left:adv.crashes_left ()

(* ------------------------------------------------------------------ *)
(* Denotation                                                          *)

let plan_of config = function
  | No_crash -> Sim.Schedule.empty_plan
  | Crash { victim; receivers } ->
      {
        Sim.Schedule.crashes = [ victim ];
        lost =
          List.filter_map
            (fun dst ->
              if Pid.Set.mem dst receivers then None else Some (victim, dst))
            (Pid.others ~n:(Config.n config) victim);
        delayed = [];
      }
  | Send_omit { culprit; dropped } ->
      {
        Sim.Schedule.crashes = [];
        lost = List.map (fun dst -> (culprit, dst)) (Pid.Set.elements dropped);
        delayed = [];
      }
  | Recv_omit { culprit; dropped } ->
      {
        Sim.Schedule.crashes = [];
        lost = List.map (fun src -> (src, culprit)) (Pid.Set.elements dropped);
        delayed = [];
      }

let omitters_of choices =
  List.fold_left
    (fun acc choice ->
      match choice with
      | No_crash | Crash _ -> acc
      | Send_omit { culprit; _ } ->
          if List.mem_assoc culprit acc then acc
          else acc @ [ (culprit, Sim.Model.Send_omit) ]
      | Recv_omit { culprit; _ } ->
          if List.mem_assoc culprit acc then acc
          else acc @ [ (culprit, Sim.Model.Recv_omit) ])
    [] choices

let to_schedule ?budget config choices =
  match omitters_of choices with
  | [] ->
      (* Crash-only sequences take the historical constructor shape so
         crash-only sweeps stay bit-identical with earlier releases. *)
      Sim.Schedule.make ?budget ~model:Sim.Model.Es ~gst:Round.first
        (List.map (plan_of config) choices)
  | omitters ->
      Sim.Schedule.make ~omitters ?budget ~model:Sim.Model.Es ~gst:Round.first
        (List.map (plan_of config) choices)

(* ------------------------------------------------------------------ *)
(* Enumeration                                                         *)

let fold ?(faults = Sim.Model.Crash_only) ?omit_budget ~policy ?(prefix = [])
    config ~horizon ~root ~step ~leaf =
  let rec go depth adv prefix_rev state =
    if depth = 0 then leaf (List.rev prefix_rev) state
    else
      List.iter
        (fun choice ->
          go (depth - 1) (advance adv choice) (choice :: prefix_rev)
            (step state choice))
        (adversary_choices ~policy ~faults adv)
  in
  let depth = horizon - List.length prefix in
  if depth < 0 then invalid_arg "Serial.fold: prefix longer than the horizon";
  let adv =
    List.fold_left advance (initial ?omit_budget ~faults config) prefix
  in
  go depth adv (List.rev prefix) root

let enumerate ?faults ?omit_budget ~policy config ~horizon ~f =
  fold ?faults ?omit_budget ~policy config ~horizon ~root:()
    ~step:(fun () _ -> ())
    ~leaf:(fun choices () -> f choices)

let count ?faults ?omit_budget ~policy config ~horizon =
  let total = ref 0 in
  enumerate ?faults ?omit_budget ~policy config ~horizon ~f:(fun _ ->
      incr total);
  !total
