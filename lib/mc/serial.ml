open Kernel

type choice = No_crash | Crash of { victim : Pid.t; receivers : Pid.Set.t }

let pp_choice ppf = function
  | No_crash -> Format.pp_print_string ppf "-"
  | Crash { victim; receivers } ->
      Format.fprintf ppf "%a!%a" Pid.pp victim Pid.Set.pp receivers

type policy = All_subsets | Prefixes

let receiver_sets ~policy ~survivors =
  match policy with
  | All_subsets -> List.map Pid.Set.of_list (Listx.subsets survivors)
  | Prefixes -> List.map Pid.Set.of_list (Listx.prefixes survivors)

let choices ~policy ~alive ~crashes_left =
  if crashes_left <= 0 then [ No_crash ]
  else
    let victims = Pid.Set.elements alive in
    No_crash
    :: List.concat_map
         (fun victim ->
           let survivors =
             Pid.Set.elements (Pid.Set.remove victim alive)
           in
           List.map
             (fun receivers -> Crash { victim; receivers })
             (receiver_sets ~policy ~survivors))
         victims

let plan_of config = function
  | No_crash -> Sim.Schedule.empty_plan
  | Crash { victim; receivers } ->
      {
        Sim.Schedule.crashes = [ victim ];
        lost =
          List.filter_map
            (fun dst ->
              if Pid.Set.mem dst receivers then None else Some (victim, dst))
            (Pid.others ~n:(Config.n config) victim);
        delayed = [];
      }

let to_schedule config choices =
  Sim.Schedule.make ~model:Sim.Model.Es ~gst:Round.first
    (List.map (plan_of config) choices)

let fold ~policy ?(prefix = []) config ~horizon ~root ~step ~leaf =
  let rec go depth alive crashes_left prefix_rev state =
    if depth = 0 then leaf (List.rev prefix_rev) state
    else
      List.iter
        (fun choice ->
          let alive', crashes_left' =
            match choice with
            | No_crash -> (alive, crashes_left)
            | Crash { victim; _ } ->
                (Pid.Set.remove victim alive, crashes_left - 1)
          in
          go (depth - 1) alive' crashes_left' (choice :: prefix_rev)
            (step state choice))
        (choices ~policy ~alive ~crashes_left)
  in
  let n = Config.n config in
  let depth = horizon - List.length prefix in
  if depth < 0 then
    invalid_arg "Serial.fold: prefix longer than the horizon";
  let alive, crashes_left =
    List.fold_left
      (fun (alive, left) choice ->
        match choice with
        | No_crash -> (alive, left)
        | Crash { victim; _ } -> (Pid.Set.remove victim alive, left - 1))
      (Pid.Set.universe ~n, Config.t config)
      prefix
  in
  go depth alive crashes_left (List.rev prefix) root

let enumerate ~policy config ~horizon ~f =
  fold ~policy config ~horizon ~root:() ~step:(fun () _ -> ())
    ~leaf:(fun choices () -> f choices)

let count ~policy config ~horizon =
  let total = ref 0 in
  enumerate ~policy config ~horizon ~f:(fun _ -> incr total);
  !total
