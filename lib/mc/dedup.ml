open Kernel

type stats = {
  hits : int;
  misses : int;
  entries : int;
  edges : int;
  spilled : int;
  snapshots : int;
  restores : int;
}

let zero_stats =
  {
    hits = 0;
    misses = 0;
    entries = 0;
    edges = 0;
    spilled = 0;
    snapshots = 0;
    restores = 0;
  }

let merge_stats a b =
  {
    hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    entries = a.entries + b.entries;
    edges = a.edges + b.edges;
    spilled = a.spilled + b.spilled;
    snapshots = a.snapshots + b.snapshots;
    restores = a.restores + b.restores;
  }

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0. else float_of_int s.hits /. float_of_int total

let pp_stats ppf s =
  Format.fprintf ppf "%d/%d subtrees from table (%.0f%%), %d entries" s.hits
    (s.hits + s.misses) (100. *. hit_rate s) s.entries;
  if s.spilled > 0 then Format.fprintf ppf " (+%d spilled)" s.spilled;
  if s.snapshots > 0 then
    Format.fprintf ppf "; %d arena snapshots, %d restores" s.snapshots
      s.restores

(* Combine a later sibling subtree into the accumulator, preserving the
   exact list orders of the one-pass serial DFS: the serial sweep conses
   violations and crashed runs as it meets them, so its final lists are the
   reverse of enumeration order — later subtrees must land in front.
   [Exhaustive.merge] gets every scalar right (including keeping the first
   strictly-maximal witness, which is what the one-pass "update on [>]"
   produces). *)
let combine acc child =
  let m = Exhaustive.merge acc child in
  {
    m with
    Exhaustive.violations = child.Exhaustive.violations @ acc.Exhaustive.violations;
    crashed = child.Exhaustive.crashed @ acc.Exhaustive.crashed;
  }

(* Prepend [choice] to every choice list of a subtree fragment, lifting
   choices stored relative to a node into the parent's frame. *)
let lift choice (frag : Exhaustive.result) =
  {
    frag with
    Exhaustive.max_witness = Option.map (List.cons choice) frag.max_witness;
    violations =
      List.map (fun (cs, vs) -> (choice :: cs, vs)) frag.Exhaustive.violations;
    crashed =
      List.map
        (fun (c : Exhaustive.crashed_run) ->
          { c with choices = choice :: c.choices })
        frag.Exhaustive.crashed;
  }

let sweep_prefix ?(faults = Sim.Model.Crash_only) ?omit_budget ?deadline
    ?(policy = Serial.Prefixes) ?horizon ?prof ?(spans = Obs.Span.disabled)
    ?table_cap ?spill_dir ~algo:(Sim.Algorithm.Packed (module A)) ~config
    ~proposals ~prefix () =
  let module E = Sim.Engine.Make (A) in
  let horizon = Option.value horizon ~default:(Config.t config + 2) in
  let n = Config.n config in
  let depth0 = horizon - List.length prefix in
  if depth0 < 0 then
    invalid_arg "Dedup.sweep_prefix: prefix longer than the horizon";
  let max_rounds = Sim.Engine.round_bound config ~horizon ~gst:1 in
  let menu = Menu.create ~faults ?omit_budget ~policy config in
  let check = Exhaustive.deadline_check deadline in
  let hits = ref 0 and misses = ref 0 and edges = ref 0 in
  (* The memo key. [k_alive] and [k_left] are NOT derivable from the
     fingerprint: the adversary may "crash" an already-halted process,
     spending budget (and shrinking its victim pool) without changing any
     engine-visible state — two such histories share a fingerprint but face
     different futures. The same holds for the omitter sets and the
     remaining omission budget: they gate the legal choices below a node,
     and at leaves the declared omitters decide the verdict. [k_depth] pins
     the remaining horizon (hence the round, for [Ok] states). A poisoned
     ([Error]) subtree is engine-free — its leaves depend only on the
     choice tree below and the error — so it memoises on the structured
     error instead of a fingerprint.

     The fields are mutable only so one probe key can be refreshed in
     place per lookup (mutability is invisible to structural [( = )] and
     [Hashtbl.hash]); stored keys are immutable clones taken before the
     subtree is explored. *)
  let module Key = struct
    type state_key =
      | K_ok of E.Arena.fingerprint
      | K_err of Sim.Engine.step_error

    type t = {
      mutable k_depth : int;
      mutable k_left : int;
      mutable k_alive : Bitset.Big.t;
      mutable k_send : Bitset.Big.t;
      mutable k_recv : Bitset.Big.t;
      mutable k_omit_left : int;
      mutable k_state : state_key;
    }
  end in
  let module Tbl = Hashtbl.Make (struct
    type t = Key.t

    (* [compare]-based equality, not [( = )]: the runtime's total-order
       comparison short-circuits on physically equal subterms, which the
       arena produces constantly — snapshot/restore shares state records
       across branches, so a probe against the matching stored key walks
       pointers, not structure. [( = )] must descend even through shared
       records (NaN forbids the shortcut); keys are float-free pure data,
       so the two agree on every key this table can hold. *)
    let equal a b = Stdlib.compare (a : t) b = 0

    (* The default [Hashtbl.hash] reads only a bounded prefix of the key,
       so distinct fingerprints can share buckets — but [equal] resolves
       every collision structurally, so a shallow hash costs lookups time,
       never soundness. Measured on the n = 5 sweeps here it beats
       [hash_param 64 128]: the depth/budget/alive fields plus the first
       few process states already discriminate well, and deep hashing of
       large algorithm states (e.g. [A_{t+2}]'s) dominated the win. *)
    let hash (k : t) = Hashtbl.hash k
  end) in
  let tbl = Tbl.create 1024 in
  (* Disk overflow: once the in-memory table reaches [table_cap], new
     entries spill to an append-only store instead (or, with no
     [spill_dir], are simply dropped — bounded memory, fewer future hits).
     Marshalled with [No_sharing] the bytes of equal keys are equal, since
     the table's equality is structural; fragments and keys are pure data
     (see the fingerprint and {!Algorithm.S} docs). *)
  let spill = ref None in
  let spilled = ref 0 in
  let marshal v = Marshal.to_string v [ Marshal.No_sharing ] in
  let spill_find key =
    match !spill with
    | None -> None
    | Some s ->
        Option.map
          (fun b -> (Marshal.from_string b 0 : Exhaustive.result))
          (Spill.find s ~key:(marshal key))
  in
  let table_store key frag =
    match table_cap with
    | Some cap when Tbl.length tbl >= cap -> (
        match spill_dir with
        | Some dir ->
            let s =
              match !spill with
              | Some s -> s
              | None ->
                  let s = Spill.create ~dir in
                  spill := Some s;
                  s
            in
            Spill.add s ~key:(marshal key) ~data:(marshal frag);
            incr spilled
        | None -> ())
    | _ -> Tbl.add tbl key frag
  in
  let arena = E.Arena.create config ~proposals in
  let step_arena cplan =
    match prof with
    | None -> E.Arena.step arena cplan
    | Some a -> Obs.Prof.measure a (fun () -> E.Arena.step arena cplan)
  in
  (* One probe key, refreshed in place per lookup: [probe_ok] wraps the
     arena's reusable probe fingerprint, so a warm lookup allocates
     nothing at all. *)
  let probe_ok = Key.K_ok (E.Arena.probe_fingerprint arena) in
  let probe =
    {
      Key.k_depth = 0;
      k_left = 0;
      k_alive = Bitset.Big.empty;
      k_send = Bitset.Big.empty;
      k_recv = Bitset.Big.empty;
      k_omit_left = 0;
      k_state = probe_ok;
    }
  in
  let set_probe depth (node : Menu.node) err =
    (match err with
    | None ->
        ignore (E.Arena.probe_fingerprint arena : E.Arena.fingerprint);
        probe.Key.k_state <- probe_ok
    | Some e -> probe.Key.k_state <- Key.K_err e);
    (* Leaves memoise on the fingerprint and the declared omitter sets:
       with no choices left, the remaining budgets and victim pool cannot
       influence the run — but the omitter sets still decide the verdict
       ([finish]'s trace is judged against the fault-free set). Collapsing
       the budgets buys hits across histories that differ only in budget
       spent on already-halted victims. *)
    if depth = 0 then (
      probe.Key.k_depth <- 0;
      probe.Key.k_left <- 0;
      probe.Key.k_alive <- Bitset.Big.empty;
      probe.Key.k_omit_left <- 0)
    else (
      probe.Key.k_depth <- depth;
      probe.Key.k_left <- node.Menu.adv.Serial.crashes_left;
      probe.Key.k_alive <- node.Menu.aliveb;
      probe.Key.k_omit_left <- node.Menu.adv.Serial.omit_left);
    probe.Key.k_send <- node.Menu.sendb;
    probe.Key.k_recv <- node.Menu.recvb
  in
  (* An immutable snapshot of the probe, safe to store: the scalar fields
     and bitsets are copied/shared, the fingerprint deep-copied out of the
     arena's loaned buffers. Taken BEFORE the subtree below is explored —
     recursive lookups overwrite the probe. *)
  let clone_probe () =
    {
      Key.k_depth = probe.Key.k_depth;
      k_left = probe.Key.k_left;
      k_alive = probe.Key.k_alive;
      k_send = probe.Key.k_send;
      k_recv = probe.Key.k_recv;
      k_omit_left = probe.Key.k_omit_left;
      k_state =
        (match probe.Key.k_state with
        | Key.K_ok fp -> Key.K_ok (E.Arena.copy_fingerprint fp)
        | Key.K_err _ as e -> e);
    }
  in
  (* Only table misses reach [leaf], so spans and probes record exactly the
     distinct work done — answered-from-table subtrees cost (and show)
     nothing. *)
  let leaf (node : Menu.node) err =
    match err with
    | Some error -> Exhaustive.add_crashed Exhaustive.empty ~choices:[] ~error
    | None ->
        if Obs.Span.enabled spans then Obs.Span.enter spans "run";
        let frag =
          match
            E.Arena.finish ~max_rounds ?prof ~schedule:node.Menu.leaf_schedule
              arena
          with
          | trace -> Exhaustive.add_run Exhaustive.empty ~choices:[] ~trace
          | exception Sim.Engine.Step_error error ->
              Exhaustive.add_crashed Exhaustive.empty ~choices:[] ~error
        in
        if Obs.Span.enabled spans then Obs.Span.exit spans;
        frag
  in
  (* Returns the subtree's result with choice lists relative to the node
     (the caller lifts them); [distinct_runs] counts the leaves this call
     actually evaluated, so a table hit contributes 0.

     Branch discipline mirrors [Exhaustive.sweep_prefix]: one snapshot per
     expanded node, taken before the first child and restored before every
     later sibling; the last child leaves the arena wherever it ran to
     (end of a leaf run, or mid-round after a raise) and the parent's own
     snapshot covers the residue. Poisoned ([Some err]) subtrees never
     touch the arena. *)
  let rec children depth (node : Menu.node) err =
    let acc = ref Exhaustive.empty in
    let k = Array.length node.Menu.choices in
    (match err with
    | Some _ ->
        for i = 0 to k - 1 do
          acc :=
            combine !acc
              (lift node.Menu.choices.(i)
                 (explore (depth - 1) (Menu.child menu node i) err))
        done
    | None ->
        E.Arena.save arena;
        for i = 0 to k - 1 do
          if i > 0 then E.Arena.restore arena;
          incr edges;
          let err' =
            try
              step_arena node.Menu.plans.(i);
              None
            with Sim.Engine.Step_error e -> Some e
          in
          acc :=
            combine !acc
              (lift node.Menu.choices.(i)
                 (explore (depth - 1) (Menu.child menu node i) err'))
        done;
        E.Arena.drop arena);
    !acc
  and explore depth node err =
    if depth = 0 then check ();
    set_probe depth node err;
    match Tbl.find_opt tbl probe with
    | Some frag ->
        incr hits;
        { frag with Exhaustive.distinct_runs = 0 }
    | None -> (
        match spill_find probe with
        | Some frag ->
            incr hits;
            { frag with Exhaustive.distinct_runs = 0 }
        | None ->
            incr misses;
            let key = clone_probe () in
            let frag =
              if depth = 0 then leaf node err else children depth node err
            in
            table_store key frag;
            frag)
  in
  (* Replay the prefix once, into the arena; a [Step_error] on a prefix
     round poisons the whole subtree below. *)
  let root_err = ref None in
  List.iter
    (fun choice ->
      match !root_err with
      | Some _ -> ()
      | None -> (
          incr edges;
          let cplan =
            Sim.Schedule.compile_plan ~n (Serial.plan_of config choice)
          in
          try step_arena cplan
          with Sim.Engine.Step_error e -> root_err := Some e))
    prefix;
  let root_node =
    Menu.node_of menu
      (List.fold_left Serial.advance
         (Serial.initial ?omit_budget ~faults config)
         prefix)
  in
  let frag, expired =
    Fun.protect
      ~finally:(fun () ->
        match !spill with Some s -> Spill.close s | None -> ())
      (fun () ->
        match explore depth0 root_node !root_err with
        | frag -> (frag, false)
        | exception Exhaustive.Expired -> (Exhaustive.empty, true))
  in
  let result =
    { (List.fold_right lift prefix frag) with Exhaustive.expired }
  in
  ( result,
    {
      hits = !hits;
      misses = !misses;
      entries = Tbl.length tbl;
      edges = !edges;
      spilled = !spilled;
      snapshots = E.Arena.snapshots arena;
      restores = E.Arena.restores arena;
    } )

(* One fresh table per first-round subtree — deliberately the same
   granularity {!Parallel} shards at, so serial and parallel reduced sweeps
   are bit-identical on every field {e including} [distinct_runs] and the
   stats, whatever [--jobs] is. Cross-subtree hits at the root are the
   price; below round 1 is where the state space actually converges. *)
let first_choices ?(faults = Sim.Model.Crash_only) ?omit_budget ?policy config =
  Serial.adversary_choices
    ~policy:(Option.value policy ~default:Serial.Prefixes)
    ~faults
    (Serial.initial ?omit_budget ~faults config)

let sweep_sharded ?faults ?omit_budget ?deadline ?policy ?horizon ?prof
    ?(spans = Obs.Span.disabled) ?(progress = Obs.Progress.disabled)
    ?table_cap ?spill_dir ~algo ~config ~proposals () =
  let horizon = Option.value horizon ~default:(Config.t config + 2) in
  let firsts = first_choices ?faults ?omit_budget ?policy config in
  List.fold_left
    (fun (acc, stats) first ->
      let subtree () =
        if acc.Exhaustive.expired then (Exhaustive.empty, zero_stats)
        else
          sweep_prefix ?faults ?omit_budget ?deadline ?policy ~horizon ?prof
            ~spans ?table_cap ?spill_dir ~algo ~config ~proposals
            ~prefix:[ first ] ()
      in
      let r, s =
        if Obs.Span.enabled spans then
          Obs.Span.with_ spans
            (Format.asprintf "shard %a" Serial.pp_choice first)
            subtree
        else subtree ()
      in
      if Obs.Progress.enabled progress then
        Obs.Progress.step progress ~distinct:r.Exhaustive.distinct_runs
          ~items:1 ~runs:r.Exhaustive.runs ~hits:s.hits
          ~lookups:(s.hits + s.misses);
      (combine acc r, merge_stats stats s))
    (Exhaustive.empty, zero_stats)
    firsts

let sweep ?faults ?omit_budget ?deadline ?policy ?metrics ?horizon ?prof
    ?(spans = Obs.Span.disabled) ?(progress = Obs.Progress.disabled)
    ?table_cap ?spill_dir ~algo ~config ~proposals () =
  let horizon = Option.value horizon ~default:(Config.t config + 2) in
  let started = Exhaustive.stopwatch () in
  Obs.Progress.set_total progress
    (List.length (first_choices ?faults ?omit_budget ?policy config));
  let result, stats =
    Obs.Span.with_ spans "sweep" (fun () ->
        sweep_sharded ?faults ?omit_budget ?deadline ?policy ~horizon ?prof
          ~spans ~progress ?table_cap ?spill_dir ~algo ~config ~proposals ())
  in
  Exhaustive.report_sweep metrics ~started
    ~prefix_hits:((result.Exhaustive.runs * horizon) - stats.edges)
    ~dedup:(stats.hits, stats.entries)
    ~arena:(stats.snapshots, stats.restores) result;
  (result, stats)

let sweep_binary ?faults ?omit_budget ?deadline ?policy ?metrics ?horizon
    ?prof ?(spans = Obs.Span.disabled) ?(progress = Obs.Progress.disabled)
    ?table_cap ?spill_dir ~algo ~config () =
  let horizon = Option.value horizon ~default:(Config.t config + 2) in
  let started = Exhaustive.stopwatch () in
  let assignments = Exhaustive.binary_assignments config in
  Obs.Progress.set_total progress
    (List.length assignments
    * List.length (first_choices ?faults ?omit_budget ?policy config));
  let result, stats =
    Obs.Span.with_ spans "sweep" (fun () ->
        List.fold_left
          (fun (acc, stats) proposals ->
            if acc.Exhaustive.expired then (acc, stats)
            else
              let r, s =
                sweep_sharded ?faults ?omit_budget ?deadline ?policy ~horizon
                  ?prof ~spans ~progress ?table_cap ?spill_dir ~algo ~config
                  ~proposals ()
              in
              (Exhaustive.merge acc r, merge_stats stats s))
          (Exhaustive.empty, zero_stats)
          assignments)
  in
  Exhaustive.report_sweep metrics ~started
    ~prefix_hits:((result.Exhaustive.runs * horizon) - stats.edges)
    ~dedup:(stats.hits, stats.entries)
    ~arena:(stats.snapshots, stats.restores) result;
  (result, stats)
