open Kernel

type stats = {
  hits : int;
  misses : int;
  entries : int;
  edges : int;
  spilled : int;
}

let zero_stats = { hits = 0; misses = 0; entries = 0; edges = 0; spilled = 0 }

let merge_stats a b =
  {
    hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    entries = a.entries + b.entries;
    edges = a.edges + b.edges;
    spilled = a.spilled + b.spilled;
  }

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0. else float_of_int s.hits /. float_of_int total

let pp_stats ppf s =
  Format.fprintf ppf "%d/%d subtrees from table (%.0f%%), %d entries" s.hits
    (s.hits + s.misses) (100. *. hit_rate s) s.entries;
  if s.spilled > 0 then Format.fprintf ppf " (+%d spilled)" s.spilled

(* Combine a later sibling subtree into the accumulator, preserving the
   exact list orders of the one-pass serial DFS: the serial sweep conses
   violations and crashed runs as it meets them, so its final lists are the
   reverse of enumeration order — later subtrees must land in front.
   [Exhaustive.merge] gets every scalar right (including keeping the first
   strictly-maximal witness, which is what the one-pass "update on [>]"
   produces). *)
let combine acc child =
  let m = Exhaustive.merge acc child in
  {
    m with
    Exhaustive.violations = child.Exhaustive.violations @ acc.Exhaustive.violations;
    crashed = child.Exhaustive.crashed @ acc.Exhaustive.crashed;
  }

(* Prepend [choice] to every choice list of a subtree fragment, lifting
   choices stored relative to a node into the parent's frame. *)
let lift choice (frag : Exhaustive.result) =
  {
    frag with
    Exhaustive.max_witness = Option.map (List.cons choice) frag.max_witness;
    violations =
      List.map (fun (cs, vs) -> (choice :: cs, vs)) frag.Exhaustive.violations;
    crashed =
      List.map
        (fun (c : Exhaustive.crashed_run) ->
          { c with choices = choice :: c.choices })
        frag.Exhaustive.crashed;
  }

(* The per-branch adversary state plus the [Bitset.Big] mirrors the memo
   keys are built from (canonical, array-backed — meaningful under [( = )]
   and [Hashtbl.hash] at any [n]). *)
type frame = {
  adv : Serial.adversary;
  aliveb : Bitset.Big.t;
  sendb : Bitset.Big.t;
  recvb : Bitset.Big.t;
}

let initial_frame ?omit_budget ?faults config =
  {
    adv = Serial.initial ?omit_budget ?faults config;
    aliveb = Bitset.Big.full ~n:(Config.n config);
    sendb = Bitset.Big.empty;
    recvb = Bitset.Big.empty;
  }

let advance_frame fr choice =
  let adv = Serial.advance fr.adv choice in
  match choice with
  | Serial.No_crash -> { fr with adv }
  | Serial.Crash { victim; _ } ->
      { fr with adv; aliveb = Bitset.Big.remove (Pid.to_int victim) fr.aliveb }
  | Serial.Send_omit { culprit; _ } ->
      { fr with adv; sendb = Bitset.Big.add (Pid.to_int culprit) fr.sendb }
  | Serial.Recv_omit { culprit; _ } ->
      { fr with adv; recvb = Bitset.Big.add (Pid.to_int culprit) fr.recvb }

let sweep_prefix ?(faults = Sim.Model.Crash_only) ?omit_budget ?deadline
    ?(policy = Serial.Prefixes) ?horizon ?prof ?(spans = Obs.Span.disabled)
    ?table_cap ?spill_dir ~algo:(Sim.Algorithm.Packed (module A)) ~config
    ~proposals ~prefix () =
  let module E = Sim.Engine.Make (A) in
  let horizon = Option.value horizon ~default:(Config.t config + 2) in
  let n = Config.n config in
  let depth0 = horizon - List.length prefix in
  if depth0 < 0 then
    invalid_arg "Dedup.sweep_prefix: prefix longer than the horizon";
  let max_rounds = Sim.Engine.round_bound config ~horizon ~gst:1 in
  let budget = Serial.budget_of ?omit_budget ~faults config in
  let leaf_schedule = Serial.to_schedule config [] in
  (* Omission leaves need their omitter declarations in the trace schedule
     — the verdict ([Props.check]) judges agreement/termination on the
     fault-free set. The crash-only shared empty schedule stays as-is. *)
  let leaf_schedule_of fr =
    let omitters =
      List.map
        (fun p -> (p, Sim.Model.Send_omit))
        (Pid.Set.elements fr.adv.Serial.send_omitters)
      @ List.map
          (fun p -> (p, Sim.Model.Recv_omit))
          (Pid.Set.elements fr.adv.Serial.recv_omitters)
    in
    if omitters = [] then leaf_schedule
    else
      Sim.Schedule.make ~omitters ?budget ~model:Sim.Model.Es ~gst:Round.first
        []
  in
  let check = Exhaustive.deadline_check deadline in
  let hits = ref 0 and misses = ref 0 and edges = ref 0 in
  (* The memo key. [k_alive] and [k_left] are NOT derivable from the
     fingerprint: the adversary may "crash" an already-halted process,
     spending budget (and shrinking its victim pool) without changing any
     engine-visible state — two such histories share a fingerprint but face
     different futures. The same holds for the omitter sets and the
     remaining omission budget: they gate the legal choices below a node,
     and at leaves the declared omitters decide the verdict. [k_depth] pins
     the remaining horizon (hence the round, for [Ok] states). A poisoned
     ([Error]) subtree is engine-free — its leaves depend only on the
     choice tree below and the error — so it memoises on the structured
     error instead of a fingerprint. *)
  let module Key = struct
    type state_key =
      | K_ok of E.Incremental.fingerprint
      | K_err of Sim.Engine.step_error

    type t = {
      k_depth : int;
      k_left : int;
      k_alive : Bitset.Big.t;
      k_send : Bitset.Big.t;
      k_recv : Bitset.Big.t;
      k_omit_left : int;
      k_state : state_key;
    }
  end in
  let module Tbl = Hashtbl.Make (struct
    type t = Key.t

    let equal = ( = )

    (* The default [Hashtbl.hash] reads only a bounded prefix of the key,
       so distinct fingerprints can share buckets — but [equal] resolves
       every collision structurally, so a shallow hash costs lookups time,
       never soundness. Measured on the n = 5 sweeps here it beats
       [hash_param 64 128]: the depth/budget/alive fields plus the first
       few process states already discriminate well, and deep hashing of
       large algorithm states (e.g. [A_{t+2}]'s) dominated the win. *)
    let hash (k : t) = Hashtbl.hash k
  end) in
  let tbl = Tbl.create 1024 in
  (* Disk overflow: once the in-memory table reaches [table_cap], new
     entries spill to an append-only store instead (or, with no
     [spill_dir], are simply dropped — bounded memory, fewer future hits).
     Marshalled with [No_sharing] the bytes of equal keys are equal, since
     the table's equality is structural; fragments and keys are pure data
     (see the fingerprint and {!Algorithm.S} docs). *)
  let spill = ref None in
  let spilled = ref 0 in
  let marshal v = Marshal.to_string v [ Marshal.No_sharing ] in
  let spill_find key =
    match !spill with
    | None -> None
    | Some s ->
        Option.map
          (fun b -> (Marshal.from_string b 0 : Exhaustive.result))
          (Spill.find s ~key:(marshal key))
  in
  let table_store key frag =
    match table_cap with
    | Some cap when Tbl.length tbl >= cap -> (
        match spill_dir with
        | Some dir ->
            let s =
              match !spill with
              | Some s -> s
              | None ->
                  let s = Spill.create ~dir in
                  spill := Some s;
                  s
            in
            Spill.add s ~key:(marshal key) ~data:(marshal frag);
            incr spilled
        | None -> ())
    | _ -> Tbl.add tbl key frag
  in
  let extend st choice =
    match st with
    | Error _ -> st
    | Ok st -> (
        incr edges;
        let cplan = Sim.Schedule.compile_plan ~n (Serial.plan_of config choice) in
        match
          match prof with
          | None -> E.Incremental.step st cplan
          | Some a -> Obs.Prof.measure a (fun () -> E.Incremental.step st cplan)
        with
        | st -> Ok st
        | exception Sim.Engine.Step_error e -> Error e)
  in
  (* Only table misses reach [leaf], so spans and probes record exactly the
     distinct work done — answered-from-table subtrees cost (and show)
     nothing. *)
  let leaf fr st =
    match st with
    | Error error -> Exhaustive.add_crashed Exhaustive.empty ~choices:[] ~error
    | Ok st ->
        if Obs.Span.enabled spans then Obs.Span.enter spans "run";
        let frag =
          match
            E.Incremental.finish ~max_rounds ?prof
              ~schedule:(leaf_schedule_of fr) st
          with
          | trace -> Exhaustive.add_run Exhaustive.empty ~choices:[] ~trace
          | exception Sim.Engine.Step_error error ->
              Exhaustive.add_crashed Exhaustive.empty ~choices:[] ~error
        in
        if Obs.Span.enabled spans then Obs.Span.exit spans;
        frag
  in
  (* Returns the subtree's result with choice lists relative to the node
     (the caller lifts them); [distinct_runs] counts the leaves this call
     actually evaluated, so a table hit contributes 0. *)
  let rec children depth fr st =
    List.fold_left
      (fun acc choice ->
        combine acc
          (lift choice
             (explore (depth - 1) (advance_frame fr choice) (extend st choice))))
      Exhaustive.empty
      (Serial.adversary_choices ~policy ~faults fr.adv)
  and explore depth fr st =
    let key =
      if depth = 0 then begin
        (* Leaves memoise on the fingerprint and the declared omitter sets:
           with no choices left, the remaining budgets and victim pool
           cannot influence the run — but the omitter sets still decide the
           verdict ([finish]'s trace is judged against the fault-free set).
           Collapsing the budgets buys hits across histories that differ
           only in budget spent on already-halted victims. *)
        check ();
        {
          Key.k_depth = 0;
          k_left = 0;
          k_alive = Bitset.Big.empty;
          k_send = fr.sendb;
          k_recv = fr.recvb;
          k_omit_left = 0;
          k_state =
            (match st with
            | Ok s -> Key.K_ok (E.Incremental.fingerprint s)
            | Error e -> Key.K_err e);
        }
      end
      else
        {
          Key.k_depth = depth;
          k_left = fr.adv.Serial.crashes_left;
          k_alive = fr.aliveb;
          k_send = fr.sendb;
          k_recv = fr.recvb;
          k_omit_left = fr.adv.Serial.omit_left;
          k_state =
            (match st with
            | Ok s -> Key.K_ok (E.Incremental.fingerprint s)
            | Error e -> Key.K_err e);
        }
    in
      match Tbl.find_opt tbl key with
      | Some frag ->
          incr hits;
          { frag with Exhaustive.distinct_runs = 0 }
      | None -> (
          match spill_find key with
          | Some frag ->
              incr hits;
              { frag with Exhaustive.distinct_runs = 0 }
          | None ->
              incr misses;
              let frag =
                if depth = 0 then leaf fr st else children depth fr st
              in
              table_store key frag;
              frag)
  in
  let root =
    List.fold_left extend (Ok (E.Incremental.start config ~proposals)) prefix
  in
  let fr0 =
    List.fold_left advance_frame (initial_frame ?omit_budget ~faults config)
      prefix
  in
  let frag, expired =
    Fun.protect
      ~finally:(fun () ->
        match !spill with Some s -> Spill.close s | None -> ())
      (fun () ->
        match explore depth0 fr0 root with
        | frag -> (frag, false)
        | exception Exhaustive.Expired -> (Exhaustive.empty, true))
  in
  let result =
    { (List.fold_right lift prefix frag) with Exhaustive.expired }
  in
  ( result,
    {
      hits = !hits;
      misses = !misses;
      entries = Tbl.length tbl;
      edges = !edges;
      spilled = !spilled;
    } )

(* One fresh table per first-round subtree — deliberately the same
   granularity {!Parallel} shards at, so serial and parallel reduced sweeps
   are bit-identical on every field {e including} [distinct_runs] and the
   stats, whatever [--jobs] is. Cross-subtree hits at the root are the
   price; below round 1 is where the state space actually converges. *)
let first_choices ?(faults = Sim.Model.Crash_only) ?omit_budget ?policy config =
  Serial.adversary_choices
    ~policy:(Option.value policy ~default:Serial.Prefixes)
    ~faults
    (Serial.initial ?omit_budget ~faults config)

let sweep_sharded ?faults ?omit_budget ?deadline ?policy ?horizon ?prof
    ?(spans = Obs.Span.disabled) ?(progress = Obs.Progress.disabled)
    ?table_cap ?spill_dir ~algo ~config ~proposals () =
  let horizon = Option.value horizon ~default:(Config.t config + 2) in
  let firsts = first_choices ?faults ?omit_budget ?policy config in
  List.fold_left
    (fun (acc, stats) first ->
      let subtree () =
        if acc.Exhaustive.expired then (Exhaustive.empty, zero_stats)
        else
          sweep_prefix ?faults ?omit_budget ?deadline ?policy ~horizon ?prof
            ~spans ?table_cap ?spill_dir ~algo ~config ~proposals
            ~prefix:[ first ] ()
      in
      let r, s =
        if Obs.Span.enabled spans then
          Obs.Span.with_ spans
            (Format.asprintf "shard %a" Serial.pp_choice first)
            subtree
        else subtree ()
      in
      if Obs.Progress.enabled progress then
        Obs.Progress.step progress ~items:1 ~runs:r.Exhaustive.runs
          ~hits:s.hits ~lookups:(s.hits + s.misses);
      (combine acc r, merge_stats stats s))
    (Exhaustive.empty, zero_stats)
    firsts

let sweep ?faults ?omit_budget ?deadline ?policy ?metrics ?horizon ?prof
    ?(spans = Obs.Span.disabled) ?(progress = Obs.Progress.disabled)
    ?table_cap ?spill_dir ~algo ~config ~proposals () =
  let horizon = Option.value horizon ~default:(Config.t config + 2) in
  let started = Exhaustive.stopwatch () in
  Obs.Progress.set_total progress
    (List.length (first_choices ?faults ?omit_budget ?policy config));
  let result, stats =
    Obs.Span.with_ spans "sweep" (fun () ->
        sweep_sharded ?faults ?omit_budget ?deadline ?policy ~horizon ?prof
          ~spans ~progress ?table_cap ?spill_dir ~algo ~config ~proposals ())
  in
  Exhaustive.report_sweep metrics ~started
    ~prefix_hits:((result.Exhaustive.runs * horizon) - stats.edges)
    ~dedup:(stats.hits, stats.entries) result;
  (result, stats)

let sweep_binary ?faults ?omit_budget ?deadline ?policy ?metrics ?horizon
    ?prof ?(spans = Obs.Span.disabled) ?(progress = Obs.Progress.disabled)
    ?table_cap ?spill_dir ~algo ~config () =
  let horizon = Option.value horizon ~default:(Config.t config + 2) in
  let started = Exhaustive.stopwatch () in
  let assignments = Exhaustive.binary_assignments config in
  Obs.Progress.set_total progress
    (List.length assignments
    * List.length (first_choices ?faults ?omit_budget ?policy config));
  let result, stats =
    Obs.Span.with_ spans "sweep" (fun () ->
        List.fold_left
          (fun (acc, stats) proposals ->
            if acc.Exhaustive.expired then (acc, stats)
            else
              let r, s =
                sweep_sharded ?faults ?omit_budget ?deadline ?policy ~horizon
                  ?prof ~spans ~progress ?table_cap ?spill_dir ~algo ~config
                  ~proposals ()
              in
              (Exhaustive.merge acc r, merge_stats stats s))
          (Exhaustive.empty, zero_stats)
          assignments)
  in
  Exhaustive.report_sweep metrics ~started
    ~prefix_hits:((result.Exhaustive.runs * horizon) - stats.edges)
    ~dedup:(stats.hits, stats.entries) result;
  (result, stats)
