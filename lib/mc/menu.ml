open Kernel

(* The serial adversary's transition system, interned per shard. The
   arena DFS re-enters semantically identical adversary states constantly
   (budgets and victim pools converge fast), and the per-edge work the
   immutable DFS used to redo — [Serial.adversary_choices],
   [Serial.plan_of] + [Schedule.compile_plan], [Serial.advance], the
   [Bitset.Big] mirrors, the leaf schedule — is a pure function of that
   state. Interning makes each of them a one-time cost per distinct
   adversary state; a warm edge is two array loads and no allocation.

   A menu is single-owner like the arena it feeds: one per shard, never
   shared across domains. *)

type node = {
  adv : Serial.adversary;
  choices : Serial.choice array;  (* in [Serial.adversary_choices] order *)
  plans : Sim.Schedule.compiled_plan array;  (* [plans.(i)] compiles [choices.(i)] *)
  nexts : node option array;  (* memoized [advance] targets *)
  aliveb : Bitset.Big.t;
  sendb : Bitset.Big.t;
  recvb : Bitset.Big.t;
  leaf_schedule : Sim.Schedule.t;
}

(* The intern key is the canonical bitset/budget tuple, NOT the adversary
   record: structurally different [Pid.Set] trees can denote the same set,
   and [Bitset.Big]'s trimmed-array form restores canonical [( = )] /
   [Hashtbl.hash]. Two adversaries with equal keys have identical choice
   menus, transitions and leaf schedules. *)
type key = {
  key_alive : Bitset.Big.t;
  key_send : Bitset.Big.t;
  key_recv : Bitset.Big.t;
  key_crashes_left : int;
  key_omit_left : int;
}

type t = {
  config : Config.t;
  policy : Serial.policy;
  faults : Sim.Model.faults;
  omit_budget : int option;
  budget : Sim.Model.budget option;
  empty_schedule : Sim.Schedule.t;
  interned : (key, node) Hashtbl.t;
}

let create ?(faults = Sim.Model.Crash_only) ?omit_budget ~policy config =
  {
    config;
    policy;
    faults;
    omit_budget;
    budget = Serial.budget_of ?omit_budget ~faults config;
    empty_schedule = Serial.to_schedule config [];
    interned = Hashtbl.create 256;
  }

let big_of_set s =
  Pid.Set.fold
    (fun p acc -> Bitset.Big.add (Pid.to_int p) acc)
    s Bitset.Big.empty

(* Leaves are judged against the run's omitter declarations (validity on
   everybody, agreement/termination on the fault-free set), so omission
   nodes carry a plan-free schedule declaring them; crash-only nodes share
   one empty schedule. [Schedule.make] folds the omitter list into a map,
   so list order is irrelevant and this matches what the per-path
   [Serial.omitters_of] construction used to build. *)
let leaf_schedule_of t (adv : Serial.adversary) =
  let omitters =
    List.map
      (fun p -> (p, Sim.Model.Send_omit))
      (Pid.Set.elements adv.Serial.send_omitters)
    @ List.map
        (fun p -> (p, Sim.Model.Recv_omit))
        (Pid.Set.elements adv.Serial.recv_omitters)
  in
  if omitters = [] then t.empty_schedule
  else
    Sim.Schedule.make ~omitters ?budget:t.budget ~model:Sim.Model.Es
      ~gst:Round.first []

let node_of t adv =
  let aliveb = big_of_set adv.Serial.alive in
  let sendb = big_of_set adv.Serial.send_omitters in
  let recvb = big_of_set adv.Serial.recv_omitters in
  let key =
    {
      key_alive = aliveb;
      key_send = sendb;
      key_recv = recvb;
      key_crashes_left = adv.Serial.crashes_left;
      key_omit_left = adv.Serial.omit_left;
    }
  in
  match Hashtbl.find_opt t.interned key with
  | Some node -> node
  | None ->
      let choices =
        Array.of_list
          (Serial.adversary_choices ~policy:t.policy ~faults:t.faults adv)
      in
      let n = Config.n t.config in
      let node =
        {
          adv;
          choices;
          plans =
            Array.map
              (fun c ->
                Sim.Schedule.compile_plan ~n (Serial.plan_of t.config c))
              choices;
          nexts = Array.make (Array.length choices) None;
          aliveb;
          sendb;
          recvb;
          leaf_schedule = leaf_schedule_of t adv;
        }
      in
      Hashtbl.add t.interned key node;
      node

let root t =
  node_of t (Serial.initial ?omit_budget:t.omit_budget ~faults:t.faults t.config)

let child t node i =
  match node.nexts.(i) with
  | Some c -> c
  | None ->
      let c = node_of t (Serial.advance node.adv node.choices.(i)) in
      node.nexts.(i) <- Some c;
      c
