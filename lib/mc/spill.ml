type record = { off : int; key_len : int; data_len : int }

type t = {
  path : string;
  mutable fd : Unix.file_descr option;
  index : (string, record list) Hashtbl.t;
  mutable count : int;
  mutable size : int;  (** bytes appended; also the next record's offset *)
}

let counter = ref 0

let create ~dir =
  incr counter;
  let path =
    Filename.concat dir
      (Printf.sprintf "dedup-spill.%d.%d" (Unix.getpid ()) !counter)
  in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_EXCL ] 0o600 in
  { path; fd = Some fd; index = Hashtbl.create 1024; count = 0; size = 0 }

let fd_exn t =
  match t.fd with
  | Some fd -> fd
  | None -> invalid_arg "Spill: store is closed"

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      let n = Unix.write_substring fd s off (len - off) in
      go (off + n)
  in
  go 0

let read_at fd ~off ~len =
  let buf = Bytes.create len in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let rec go pos =
    if pos < len then begin
      let n = Unix.read fd buf pos (len - pos) in
      if n = 0 then failwith "Spill: short read (truncated backing file)";
      go (pos + n)
    end
  in
  go 0;
  Bytes.unsafe_to_string buf

let add t ~key ~data =
  let fd = fd_exn t in
  let rec_off = t.size in
  ignore (Unix.lseek fd rec_off Unix.SEEK_SET);
  write_all fd key;
  write_all fd data;
  t.size <- t.size + String.length key + String.length data;
  let digest = Digest.string key in
  let bucket = Option.value ~default:[] (Hashtbl.find_opt t.index digest) in
  Hashtbl.replace t.index digest
    ({ off = rec_off; key_len = String.length key; data_len = String.length data }
    :: bucket);
  t.count <- t.count + 1

let find t ~key =
  let fd = fd_exn t in
  match Hashtbl.find_opt t.index (Digest.string key) with
  | None -> None
  | Some bucket ->
      let rec scan = function
        | [] -> None
        | r :: rest ->
            if
              r.key_len = String.length key
              && String.equal (read_at fd ~off:r.off ~len:r.key_len) key
            then Some (read_at fd ~off:(r.off + r.key_len) ~len:r.data_len)
            else scan rest
      in
      scan bucket

let entries t = t.count
let bytes_on_disk t = t.size

let close t =
  match t.fd with
  | None -> ()
  | Some fd ->
      t.fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (try Sys.remove t.path with Sys_error _ -> ())
