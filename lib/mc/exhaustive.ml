open Kernel

type result = {
  runs : int;
  max_decision : int;
  min_decision : int;
  max_witness : Serial.choice list option;
  violations : (Serial.choice list * Sim.Props.violation list) list;
  undecided_runs : int;
}

let empty =
  {
    runs = 0;
    max_decision = 0;
    min_decision = max_int;
    max_witness = None;
    violations = [];
    undecided_runs = 0;
  }

let add_run acc ~choices ~trace =
  let acc = { acc with runs = acc.runs + 1 } in
  let acc =
    match Sim.Props.check trace with
    | [] -> acc
    | vs ->
        let undecided =
          List.exists
            (function
              | Sim.Props.Termination _ | Sim.Props.Unsettled _ -> true
              | Sim.Props.Validity _ | Sim.Props.Agreement _ -> false)
            vs
        in
        {
          acc with
          violations = (choices, vs) :: acc.violations;
          undecided_runs = (acc.undecided_runs + if undecided then 1 else 0);
        }
  in
  match Sim.Trace.global_decision_round trace with
  | None -> acc
  | Some r ->
      let r = Round.to_int r in
      let acc =
        if r > acc.max_decision then
          { acc with max_decision = r; max_witness = Some choices }
        else acc
      in
      if r < acc.min_decision then { acc with min_decision = r } else acc

let report_sweep metrics ~started result =
  match metrics with
  | None -> ()
  | Some m ->
      Obs.Metrics.incr ~by:result.runs (Obs.Metrics.counter m "mc.runs");
      Obs.Metrics.incr
        ~by:(List.length result.violations)
        (Obs.Metrics.counter m "mc.violations");
      Obs.Metrics.incr ~by:result.undecided_runs
        (Obs.Metrics.counter m "mc.undecided_runs");
      Obs.Metrics.set
        (Obs.Metrics.gauge m "mc.max_decision_round")
        result.max_decision;
      let elapsed = Sys.time () -. started in
      Obs.Metrics.observe (Obs.Metrics.histogram m "mc.sweep_seconds") elapsed;
      if elapsed > 0. then
        Obs.Metrics.observe
          (Obs.Metrics.histogram m "mc.schedules_per_second")
          (float_of_int result.runs /. elapsed)

let sweep ?(policy = Serial.Prefixes) ?metrics ?horizon ~algo ~config
    ~proposals () =
  let horizon = Option.value horizon ~default:(Config.t config + 2) in
  let started = Sys.time () in
  let acc = ref empty in
  Serial.enumerate ~policy config ~horizon ~f:(fun choices ->
      let schedule = Serial.to_schedule config choices in
      let trace = Sim.Runner.run algo config ~proposals schedule in
      acc := add_run !acc ~choices ~trace);
  report_sweep metrics ~started !acc;
  !acc

let binary_assignments config =
  let n = Config.n config in
  List.map
    (fun ones -> Sim.Runner.binary_proposals config ~ones:(Pid.Set.of_list ones))
    (Listx.subsets (Pid.all ~n))

let merge a b =
  {
    runs = a.runs + b.runs;
    max_decision = max a.max_decision b.max_decision;
    min_decision = min a.min_decision b.min_decision;
    max_witness =
      (if b.max_decision > a.max_decision then b.max_witness
       else a.max_witness);
    violations = a.violations @ b.violations;
    undecided_runs = a.undecided_runs + b.undecided_runs;
  }

let sweep_binary ?policy ?metrics ?horizon ~algo ~config () =
  List.fold_left
    (fun acc proposals ->
      merge acc (sweep ?policy ?metrics ?horizon ~algo ~config ~proposals ()))
    empty (binary_assignments config)

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>%d run(s); global decision rounds in [%s, %d]; %d violation(s); \
     %d undecided@]"
    r.runs
    (if r.min_decision = max_int then "-" else string_of_int r.min_decision)
    r.max_decision
    (List.length r.violations)
    r.undecided_runs
