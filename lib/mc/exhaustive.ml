open Kernel

type crashed_run = {
  choices : Serial.choice list;
  error : Sim.Engine.step_error;
}

type shard_failure = { shard : int; context : string; message : string }

type result = {
  runs : int;
  distinct_runs : int;
      (* leaves actually enumerated/simulated; [runs] additionally counts
         runs answered from a transposition table or scaled up from a
         symmetry-orbit representative *)
  max_decision : int;
  min_decision : int;
  max_witness : Serial.choice list option;
  violations : (Serial.choice list * Sim.Props.violation list) list;
  undecided_runs : int;
  crashed : crashed_run list;
  shard_failures : shard_failure list;
  expired : bool;
      (* the sweep's wall-clock budget ran out: the counts above account
         for what was explored, not for the whole space *)
}

let empty =
  {
    runs = 0;
    distinct_runs = 0;
    max_decision = 0;
    min_decision = max_int;
    max_witness = None;
    violations = [];
    undecided_runs = 0;
    crashed = [];
    shard_failures = [];
    expired = false;
  }

exception Expired
(* Raised at the next leaf once a sweep deadline has passed; callers catch
   it, keep what they accounted so far and mark the result [expired]. *)

let deadline_check = function
  | None -> fun () -> ()
  | Some d -> fun () -> if Unix.gettimeofday () > d then raise Expired

let add_run acc ~choices ~trace =
  let acc =
    { acc with runs = acc.runs + 1; distinct_runs = acc.distinct_runs + 1 }
  in
  let acc =
    match Sim.Props.check trace with
    | [] -> acc
    | vs ->
        let undecided =
          List.exists
            (function
              | Sim.Props.Termination _ | Sim.Props.Unsettled _ -> true
              | Sim.Props.Validity _ | Sim.Props.Agreement _ -> false)
            vs
        in
        {
          acc with
          violations = (choices, vs) :: acc.violations;
          undecided_runs = (acc.undecided_runs + if undecided then 1 else 0);
        }
  in
  match Sim.Trace.global_decision_round trace with
  | None -> acc
  | Some r ->
      let r = Round.to_int r in
      let acc =
        if r > acc.max_decision then
          { acc with max_decision = r; max_witness = Some choices }
        else acc
      in
      if r < acc.min_decision then { acc with min_decision = r } else acc

let add_crashed acc ~choices ~error =
  {
    acc with
    runs = acc.runs + 1;
    distinct_runs = acc.distinct_runs + 1;
    crashed = { choices; error } :: acc.crashed;
  }

let merge a b =
  {
    runs = a.runs + b.runs;
    distinct_runs = a.distinct_runs + b.distinct_runs;
    max_decision = max a.max_decision b.max_decision;
    min_decision = min a.min_decision b.min_decision;
    max_witness =
      (if b.max_decision > a.max_decision then b.max_witness
       else a.max_witness);
    violations = a.violations @ b.violations;
    undecided_runs = a.undecided_runs + b.undecided_runs;
    crashed = a.crashed @ b.crashed;
    shard_failures = a.shard_failures @ b.shard_failures;
    expired = a.expired || b.expired;
  }

type stopwatch = { wall_started : float; cpu_started : float }

let stopwatch () =
  { wall_started = Unix.gettimeofday (); cpu_started = Sys.time () }

let report_sweep ?(domains = 1) ?(prefix_hits = 0) ?dedup ?arena ?orbits
    metrics ~started result =
  match metrics with
  | None -> ()
  | Some m ->
      Obs.Metrics.incr ~by:result.runs (Obs.Metrics.counter m "mc.runs");
      Obs.Metrics.incr ~by:result.distinct_runs
        (Obs.Metrics.counter m "mc.distinct_runs");
      (match dedup with
      | None -> ()
      | Some (hits, entries) ->
          Obs.Metrics.incr ~by:hits (Obs.Metrics.counter m "mc.dedup_hits");
          Obs.Metrics.set (Obs.Metrics.gauge m "mc.dedup_entries") entries);
      (match arena with
      | None -> ()
      | Some (snapshots, restores) ->
          Obs.Metrics.incr ~by:snapshots
            (Obs.Metrics.counter m "mc.arena_snapshots");
          Obs.Metrics.incr ~by:restores
            (Obs.Metrics.counter m "mc.arena_restores"));
      (match orbits with
      | None -> ()
      | Some k -> Obs.Metrics.set (Obs.Metrics.gauge m "mc.orbits") k);
      Obs.Metrics.incr
        ~by:(List.length result.violations)
        (Obs.Metrics.counter m "mc.violations");
      Obs.Metrics.incr ~by:result.undecided_runs
        (Obs.Metrics.counter m "mc.undecided_runs");
      Obs.Metrics.incr
        ~by:(List.length result.crashed)
        (Obs.Metrics.counter m "mc.crashed_runs");
      Obs.Metrics.incr
        ~by:(List.length result.shard_failures)
        (Obs.Metrics.counter m "mc.shard_failures");
      Obs.Metrics.set
        (Obs.Metrics.gauge m "mc.max_decision_round")
        result.max_decision;
      Obs.Metrics.set (Obs.Metrics.gauge m "mc.domains") domains;
      if prefix_hits > 0 then
        Obs.Metrics.incr ~by:prefix_hits
          (Obs.Metrics.counter m "mc.prefix_hits");
      let cpu = Sys.time () -. started.cpu_started in
      let wall = Unix.gettimeofday () -. started.wall_started in
      Obs.Metrics.observe (Obs.Metrics.histogram m "mc.sweep_cpu_seconds") cpu;
      Obs.Metrics.observe
        (Obs.Metrics.histogram m "mc.sweep_wall_seconds")
        wall;
      (* Throughput over the wall clock: under several domains CPU time
         overcounts elapsed time by up to the domain count. *)
      if wall > 0. then
        Obs.Metrics.observe
          (Obs.Metrics.histogram m "mc.schedules_per_second")
          (float_of_int result.runs /. wall)

let sweep ?faults ?omit_budget ?deadline ?(policy = Serial.Prefixes) ?metrics
    ?horizon ~algo ~config ~proposals () =
  let horizon = Option.value horizon ~default:(Config.t config + 2) in
  let started = stopwatch () in
  let budget =
    Serial.budget_of ?omit_budget
      ~faults:(Option.value faults ~default:Sim.Model.Crash_only)
      config
  in
  let check = deadline_check deadline in
  let acc = ref empty in
  (try
     Serial.enumerate ?faults ?omit_budget ~policy config ~horizon
       ~f:(fun choices ->
         check ();
         let schedule = Serial.to_schedule ?budget config choices in
         match Sim.Runner.run algo config ~proposals schedule with
         | trace -> acc := add_run !acc ~choices ~trace
         | exception Sim.Engine.Step_error error ->
             acc := add_crashed !acc ~choices ~error)
   with Expired -> acc := { !acc with expired = true });
  report_sweep metrics ~started !acc;
  !acc

let binary_assignments config =
  let n = Config.n config in
  List.map
    (fun ones -> Sim.Runner.binary_proposals config ~ones:(Pid.Set.of_list ones))
    (Listx.subsets (Pid.all ~n))

let sweep_binary ?faults ?omit_budget ?deadline ?policy ?metrics ?horizon
    ~algo ~config () =
  List.fold_left
    (fun acc proposals ->
      if acc.expired then acc
      else
        merge acc
          (sweep ?faults ?omit_budget ?deadline ?policy ?metrics ?horizon
             ~algo ~config ~proposals ()))
    empty (binary_assignments config)

(* ------------------------------------------------------------------ *)
(* Incremental (prefix-sharing) sweeps                                 *)

(* The sweep result never looks at [Trace.t.schedule] ([Props.check] and
   [global_decision_round] read decisions, crashes, proposals, config and
   the halting flag), so the incremental path hands [finish] one shared
   empty schedule instead of materialising a [Schedule.t] per leaf. The
   round bound must then be supplied explicitly, computed from the sweep's
   real horizon so that it matches what [Runner.run] would use. *)

let sweep_prefix ?faults ?omit_budget ?deadline ?(policy = Serial.Prefixes)
    ?horizon ?prof ?(spans = Obs.Span.disabled)
    ~algo:(Sim.Algorithm.Packed (module A)) ~config ~proposals ~prefix () =
  let module E = Sim.Engine.Make (A) in
  let horizon = Option.value horizon ~default:(Config.t config + 2) in
  let n = Config.n config in
  let max_rounds = Sim.Engine.round_bound config ~horizon ~gst:1 in
  let faults_v = Option.value faults ~default:Sim.Model.Crash_only in
  let depth0 = horizon - List.length prefix in
  if depth0 < 0 then invalid_arg "Serial.fold: prefix longer than the horizon";
  let menu = Menu.create ~faults:faults_v ?omit_budget ~policy config in
  let check = deadline_check deadline in
  let edges = ref 0 in
  let arena = E.Arena.create config ~proposals in
  let step_arena cplan =
    match prof with
    | None -> E.Arena.step arena cplan
    | Some a -> Obs.Prof.measure a (fun () -> E.Arena.step arena cplan)
  in
  (* Replay the prefix once, into the arena. A [Step_error] on a prefix
     round poisons the whole sweep: every leaf records the same crashed
     run, exactly what the from-scratch [sweep] observes, since a raise in
     round [r] depends only on the choice prefix up to [r]. *)
  let root_err = ref None in
  List.iter
    (fun choice ->
      match !root_err with
      | Some _ -> ()
      | None -> (
          incr edges;
          let cplan =
            Sim.Schedule.compile_plan ~n (Serial.plan_of config choice)
          in
          try step_arena cplan
          with Sim.Engine.Step_error e -> root_err := Some e))
    prefix;
  let root_node =
    Menu.node_of menu
      (List.fold_left Serial.advance
         (Serial.initial ?omit_budget ~faults:faults_v config)
         prefix)
  in
  let acc = ref empty in
  (* The choice path below the prefix, filled in place as the DFS
     descends; a leaf materialises [prefix @ path] exactly once, like the
     per-leaf list [Serial.fold] used to build. *)
  let path = Array.make (max depth0 1) Serial.No_crash in
  let leaf_choices () = prefix @ Array.to_list (Array.sub path 0 depth0) in
  (* Branch discipline: one snapshot per expanded node, taken before its
     first child and restored before every later sibling; the last child
     leaves the arena wherever it ran to (possibly mid-round after a
     raise) and the parent's own snapshot covers the residue. Poisoned
     subtrees touch the arena not at all. *)
  let rec go depth node err =
    if depth = 0 then (
      check ();
      match err with
      | Some error -> acc := add_crashed !acc ~choices:(leaf_choices ()) ~error
      | None ->
          if Obs.Span.enabled spans then Obs.Span.enter spans "run";
          (match
             E.Arena.finish ~max_rounds ?prof
               ~schedule:node.Menu.leaf_schedule arena
           with
          | trace -> acc := add_run !acc ~choices:(leaf_choices ()) ~trace
          | exception Sim.Engine.Step_error error ->
              acc := add_crashed !acc ~choices:(leaf_choices ()) ~error);
          if Obs.Span.enabled spans then Obs.Span.exit spans)
    else
      let k = Array.length node.Menu.choices in
      match err with
      | Some _ ->
          for i = 0 to k - 1 do
            path.(depth0 - depth) <- node.Menu.choices.(i);
            go (depth - 1) (Menu.child menu node i) err
          done
      | None ->
          E.Arena.save arena;
          for i = 0 to k - 1 do
            if i > 0 then E.Arena.restore arena;
            path.(depth0 - depth) <- node.Menu.choices.(i);
            incr edges;
            let err' =
              try
                step_arena node.Menu.plans.(i);
                None
              with Sim.Engine.Step_error e -> Some e
            in
            go (depth - 1) (Menu.child menu node i) err'
          done;
          E.Arena.drop arena
  in
  (try go depth0 root_node !root_err
   with Expired -> acc := { !acc with expired = true });
  (!acc, !edges)

let prefix_hits ~horizon result ~edges = (result.runs * horizon) - edges

let sweep_incremental ?faults ?omit_budget ?deadline ?policy ?metrics ?horizon
    ?prof ?(spans = Obs.Span.disabled) ?(progress = Obs.Progress.disabled)
    ~algo ~config ~proposals () =
  let horizon = Option.value horizon ~default:(Config.t config + 2) in
  let started = stopwatch () in
  Obs.Progress.set_total progress 1;
  let result, edges =
    Obs.Span.with_ spans "sweep" (fun () ->
        sweep_prefix ?faults ?omit_budget ?deadline ?policy ~horizon ?prof
          ~spans ~algo ~config ~proposals ~prefix:[] ())
  in
  if Obs.Progress.enabled progress then
    Obs.Progress.step progress ~items:1 ~runs:result.runs ~hits:0 ~lookups:0;
  report_sweep metrics ~started ~prefix_hits:(prefix_hits ~horizon result ~edges)
    result;
  result

let sweep_binary_incremental ?faults ?omit_budget ?deadline ?policy ?metrics
    ?horizon ?prof ?(spans = Obs.Span.disabled)
    ?(progress = Obs.Progress.disabled) ~algo ~config () =
  let horizon = Option.value horizon ~default:(Config.t config + 2) in
  let started = stopwatch () in
  let assignments = binary_assignments config in
  Obs.Progress.set_total progress (List.length assignments);
  let result, edges =
    Obs.Span.with_ spans "sweep" (fun () ->
        let i = ref (-1) in
        List.fold_left
          (fun (acc, edges) proposals ->
            incr i;
            let subtree () =
              sweep_prefix ?faults ?omit_budget ?deadline ?policy ~horizon
                ?prof ~spans ~algo ~config ~proposals ~prefix:[] ()
            in
            let r, e =
              if Obs.Span.enabled spans then
                Obs.Span.with_ spans
                  (Printf.sprintf "shard %d" !i)
                  subtree
              else subtree ()
            in
            if Obs.Progress.enabled progress then
              Obs.Progress.step progress ~items:1 ~runs:r.runs ~hits:0
                ~lookups:0;
            (merge acc r, edges + e))
          (empty, 0) assignments)
  in
  report_sweep metrics ~started ~prefix_hits:(prefix_hits ~horizon result ~edges)
    result;
  result

let pp_result ppf r =
  let undecided = r.min_decision = max_int in
  Format.fprintf ppf
    "@[<v>%d run(s)%s; global decision rounds in [%s, %s]; %d violation(s); \
     %d undecided@]"
    r.runs
    (if r.distinct_runs = r.runs then ""
     else Format.sprintf " (%d explored, rest from reduction)" r.distinct_runs)
    (if undecided then "-" else string_of_int r.min_decision)
    (if undecided && r.max_decision = 0 then "-"
     else string_of_int r.max_decision)
    (List.length r.violations)
    r.undecided_runs;
  if r.expired then
    Format.fprintf ppf
      "@,wall-clock budget expired: PARTIAL results (the counts above \
       account only for the explored part of the space)";
  if r.crashed <> [] then
    Format.fprintf ppf "@,%d crashed run(s), first: %a"
      (List.length r.crashed)
      Sim.Engine.pp_step_error
      (List.nth r.crashed (List.length r.crashed - 1)).error;
  List.iter
    (fun f ->
      Format.fprintf ppf "@,shard %d failed (%s): %s" f.shard f.context
        f.message)
    r.shard_failures
