open Kernel

type result = {
  runs : int;
  max_decision : int;
  min_decision : int;
  max_witness : Serial.choice list option;
  violations : (Serial.choice list * Sim.Props.violation list) list;
  undecided_runs : int;
}

let empty =
  {
    runs = 0;
    max_decision = 0;
    min_decision = max_int;
    max_witness = None;
    violations = [];
    undecided_runs = 0;
  }

let add_run acc ~choices ~trace =
  let acc = { acc with runs = acc.runs + 1 } in
  let acc =
    match Sim.Props.check trace with
    | [] -> acc
    | vs ->
        let undecided =
          List.exists
            (function
              | Sim.Props.Termination _ | Sim.Props.Unsettled _ -> true
              | Sim.Props.Validity _ | Sim.Props.Agreement _ -> false)
            vs
        in
        {
          acc with
          violations = (choices, vs) :: acc.violations;
          undecided_runs = (acc.undecided_runs + if undecided then 1 else 0);
        }
  in
  match Sim.Trace.global_decision_round trace with
  | None -> acc
  | Some r ->
      let r = Round.to_int r in
      let acc =
        if r > acc.max_decision then
          { acc with max_decision = r; max_witness = Some choices }
        else acc
      in
      if r < acc.min_decision then { acc with min_decision = r } else acc

let sweep ?(policy = Serial.Prefixes) ?horizon ~algo ~config ~proposals () =
  let horizon = Option.value horizon ~default:(Config.t config + 2) in
  let acc = ref empty in
  Serial.enumerate ~policy config ~horizon ~f:(fun choices ->
      let schedule = Serial.to_schedule config choices in
      let trace = Sim.Runner.run algo config ~proposals schedule in
      acc := add_run !acc ~choices ~trace);
  !acc

let binary_assignments config =
  let n = Config.n config in
  List.map
    (fun ones -> Sim.Runner.binary_proposals config ~ones:(Pid.Set.of_list ones))
    (Listx.subsets (Pid.all ~n))

let merge a b =
  {
    runs = a.runs + b.runs;
    max_decision = max a.max_decision b.max_decision;
    min_decision = min a.min_decision b.min_decision;
    max_witness =
      (if b.max_decision > a.max_decision then b.max_witness
       else a.max_witness);
    violations = a.violations @ b.violations;
    undecided_runs = a.undecided_runs + b.undecided_runs;
  }

let sweep_binary ?policy ?horizon ~algo ~config () =
  List.fold_left
    (fun acc proposals ->
      merge acc (sweep ?policy ?horizon ~algo ~config ~proposals ()))
    empty (binary_assignments config)

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>%d run(s); global decision rounds in [%s, %d]; %d violation(s); \
     %d undecided@]"
    r.runs
    (if r.min_decision = max_int then "-" else string_of_int r.min_decision)
    r.max_decision
    (List.length r.violations)
    r.undecided_runs
