(** Crash-safe, resumable, multi-process sweep drivers.

    This is where the crash-safety layer meets the determinism contract.
    A sweep is cut into {e tasks} at exactly the granularity the serial
    and domain-parallel drivers already shard at — one first-round choice
    subtree for a fixed-proposal sweep, one proposal assignment for a
    binary sweep ({!Parallel}'s shards, {!Dedup}'s fresh-table units) —
    and every driver here is a fold over task results {e in task order}:

    - {!run_serial} runs tasks in-process, snapshotting completed tasks
      to a {!Checkpoint} file periodically and on interruption;
    - {!run_supervised} farms tasks to [ipi sweep-worker] processes via
      {!Supervise}, merging frames back by task index;
    - a crashed, chaos-ridden, or budget-expired run resumes from its
      checkpoint and completes the pending tasks.

    Because the merge is a deterministic fold in task order over
    per-task results that are themselves bit-identical however computed
    (the PR 2/PR 4 contracts), {e any} interleaving of workers, deaths,
    retries, interruptions and resumes yields the same final aggregates
    as one undisturbed serial sweep. Tasks interrupted mid-subtree are
    never persisted — they rerun from scratch on resume — so there is no
    sub-task state to get wrong.

    Symmetry-reduced sweeps are not distributed here: their n+1 orbits
    are too few to shard across processes and finish in milliseconds —
    checkpointing them would be pure overhead. *)

open Kernel

type reduce = Rnone | Rdedup

type scope =
  | Fixed of Value.t Pid.Map.t  (** one proposal assignment *)
  | Binary  (** all [2^n] binary assignments *)

type spec = {
  faults : Sim.Model.faults;
  omit_budget : int option;
  policy : Serial.policy;
  horizon : int option;  (** [None]: the usual [t + 2] *)
  algo : Sim.Algorithm.packed;
  config : Config.t;
  reduce : reduce;
  scope : scope;
  table_cap : int option;  (** {!Dedup} in-memory entry cap, [Rdedup] only *)
  spill_dir : string option;  (** disk overflow directory for the cap *)
}

val total_tasks : spec -> int
(** Tasks are indexed [0 .. total_tasks - 1] in enumeration order:
    first-round choices for [Fixed], assignments for [Binary]. *)

val task_context : spec -> int -> string
(** Human description of task [i] (for shard-failure reports), matching
    {!Parallel}'s contexts. *)

val run_task : ?deadline:float -> spec -> int -> Checkpoint.entry
(** Execute one task to completion. The entry's [result] is bit-identical
    to what the serial or domain-parallel driver computes for the same
    shard. If [deadline] passes mid-task the entry's result has
    [expired = true] — such an entry must not be persisted or merged as
    completed (the drivers here treat it as display-only). *)

val merge_entries :
  spec -> Checkpoint.entry list -> Exhaustive.result * Dedup.stats option * int
(** Fold entries (ascending task order, no gaps required) back into an
    aggregate with each mode's serial merge: {!Parallel.merge_in_order}
    for [Fixed]+[Rnone], {!Dedup.combine} for [Fixed]+[Rdedup], plain
    {!Exhaustive.merge} for [Binary] — plus merged stats ([Rdedup]) and
    summed engine edges. Over the full task range this reproduces the
    undisturbed serial sweep bit-identically. *)

type run = {
  result : Exhaustive.result;
      (** merged aggregates; on a partial run this covers completed tasks
          plus (serial driver only) the expired task's explored fragment,
          faithfully flagged [expired] *)
  stats : Dedup.stats option;  (** [Rdedup] only *)
  edges : int;
  completed : Checkpoint.entry list;  (** what a checkpoint would hold *)
  total_tasks : int;
  partial : bool;
      (** stopped, expired or interrupted before all tasks finished *)
  sup_metrics : Supervise.metrics option;  (** {!run_supervised} only *)
}

val run_serial :
  ?resume:Checkpoint.t ->
  ?checkpoint:string * int ->
  ?should_stop:(unit -> bool) ->
  ?deadline:float ->
  ?progress:Obs.Progress.t ->
  params:Obs.Json.t ->
  spec ->
  (run, string) result
(** In-process checkpointed driver. [checkpoint = (path, every)] snapshots
    after every [every] completed tasks and always once more on exit —
    normal, stopped, or expired — so the file on disk is never staler
    than [every] tasks. [resume] seeds completed tasks from a loaded
    snapshot ({!Checkpoint.compatible} is checked against [params]; a
    mismatch is the [Error]). [should_stop] is polled between tasks
    (SIGINT/SIGTERM flag); [deadline] is the [--budget] hook, enforced
    between tasks and inside each task's sweep. [progress] steps once per
    task with the total set up front. *)

val run_supervised :
  ?resume:Checkpoint.t ->
  ?checkpoint:string * int ->
  ?should_stop:(unit -> bool) ->
  ?chaos:Supervise.chaos ->
  ?chunk_timeout:float ->
  ?max_retries:int ->
  ?progress:Obs.Progress.t ->
  workers:int ->
  worker_argv:string list ->
  params:Obs.Json.t ->
  spec ->
  (run, string) result
(** Multi-process driver: {!Supervise.run} over the pending tasks with
    workers spawned as [worker_argv] (an [ipi sweep-worker] invocation
    carrying the same sweep flags). Task failures (retries exhausted)
    become {!Exhaustive.shard_failure}s in the merged result, matching
    the domain-parallel driver's containment. Checkpoints are written in
    completion order (entries stay sorted by task); a final snapshot is
    written on stop as with {!run_serial}. *)

val worker_loop : spec -> in_channel -> out_channel -> unit
(** The [ipi sweep-worker] body: read [{"task": i}] frames off stdin, run
    each task, write back the entry as a frame
    [{"task", "result", "stats", "edges"}], loop until [{"shutdown"}] or
    EOF. Exits the loop (returning) on shutdown; raises on a malformed
    stream so the supervisor sees a death, not silence. *)

val entry_to_frame : Checkpoint.entry -> Obs.Json.t
val entry_of_frame : Obs.Json.t -> (Checkpoint.entry, string) result
(** The worker protocol's result frame — shared with the tests. *)
