(** Symmetry reduction over binary proposal assignments.

    For an algorithm whose behaviour is invariant under renaming processes
    ({!Sim.Algorithm.S.symmetric} — no pid-dependent tie-breaking), two
    proposal assignments that differ only by a permutation of processes
    produce permutation-equivalent run sets: same decision rounds, same
    violation counts, same undecided counts, run by run. Binary assignments
    therefore fall into [n + 1] orbits classified by the number of [1]
    proposers, so a binary sweep need only explore one {e representative}
    per orbit ([ones = {p1..pk}]) and weight it by the orbit size
    [C(n, k)] — [2^n] assignments collapse to [n + 1].

    Soundness requires the schedule set to be permutation-closed too. It is
    by construction under {!Serial.All_subsets}; under the default
    [Prefixes] policy the receiver sets are pid-prefixes (not closed under
    permutation), but the orbit-equivalence of the {e aggregates} still
    holds empirically for every algorithm in this repo — the property tests
    assert exactly that, per orbit, against the unreduced sweep.

    Scaled aggregates are exact for [runs] and [undecided_runs]; the
    [max_decision]/[min_decision] interval is exact because a permuted run
    decides in the same round. The [violations] and [crashed] {e lists}
    keep only the representative's entries (one witness per orbit, not
    [C(n,k)] permuted copies); their unreduced counts are recoverable as
    [sum multiplicity * length per-orbit list], which the property tests
    check. [distinct_runs] counts the representative's explored leaves
    only. *)

open Kernel

type orbit = {
  ones : Pid.Set.t;  (** the [1]-proposers of the representative *)
  proposals : Value.t Pid.Map.t;
  multiplicity : int;  (** orbit size: [C(n, |ones|)] *)
}

val choose : int -> int -> int
(** Exact binomial coefficient [C(n, k)]; [0] outside [0 <= k <= n]. *)

val orbits : Config.t -> orbit list
(** The [n + 1] orbit representatives, in ascending [|ones|] order —
    [ones = {}], [{p1}], [{p1, p2}], …, [{p1..pn}]. Multiplicities sum to
    [2^n]. *)

val scale : int -> Exhaustive.result -> Exhaustive.result
(** Weight a representative's sweep result by the orbit size: multiplies
    [runs] and [undecided_runs], leaves everything else (including
    [distinct_runs] and the violation/crashed lists) as the
    representative's. *)

val sweep_orbit :
  ?faults:Sim.Model.faults ->
  ?omit_budget:int ->
  ?deadline:float ->
  ?policy:Serial.policy ->
  ?horizon:int ->
  ?prof:Obs.Prof.acc ->
  ?spans:Obs.Span.t ->
  ?progress:Obs.Progress.t ->
  algo:Sim.Algorithm.packed ->
  config:Config.t ->
  orbit:orbit ->
  unit ->
  Exhaustive.result * Dedup.stats
(** Dedup-sweep one orbit's representative and {!scale} it — the sharding
    unit of the parallel symmetric sweep. Reports no metrics itself.
    Instrumentation threads through to {!Dedup.sweep_sharded} (progress
    steps per first-round shard; [runs] deltas are the representative's,
    unscaled). *)

val sweep_orbits :
  ?faults:Sim.Model.faults ->
  ?omit_budget:int ->
  ?deadline:float ->
  ?policy:Serial.policy ->
  ?horizon:int ->
  ?prof:Obs.Prof.acc ->
  ?spans:Obs.Span.t ->
  ?progress:Obs.Progress.t ->
  algo:Sim.Algorithm.packed ->
  config:Config.t ->
  unit ->
  (orbit * Exhaustive.result * Dedup.stats) list
(** {!sweep_orbit} over every orbit, keeping the per-orbit split — what
    the orbit-equivalence property tests consume. [spans] wraps each
    orbit in an ["orbit |ones|=k"] span. *)

val sweep_binary :
  ?faults:Sim.Model.faults ->
  ?omit_budget:int ->
  ?deadline:float ->
  ?policy:Serial.policy ->
  ?metrics:Obs.Metrics.t ->
  ?horizon:int ->
  ?prof:Obs.Prof.acc ->
  ?spans:Obs.Span.t ->
  ?progress:Obs.Progress.t ->
  algo:Sim.Algorithm.packed ->
  config:Config.t ->
  unit ->
  Exhaustive.result * Dedup.stats
(** The full reduced binary sweep: {!sweep_orbits} merged in orbit order.
    [runs] equals the unreduced [2^n]-assignment count; the decision-round
    interval and [undecided_runs] match the unreduced sweep exactly.

    If the algorithm is {e not} declared {!Sim.Algorithm.S.symmetric} this
    falls back to {!Dedup.sweep_binary} (all [2^n] assignments, dedup
    only) — asking for symmetry never unsoundly reduces an asymmetric
    algorithm. Reports the {!Dedup.sweep} metrics plus the [mc.orbits]
    gauge when the orbit reduction actually applied. *)
