(** A supervisor for worker {e processes} chewing through a task list.

    {!Kernel.Par} shards work across domains inside one process;
    this is its process-boundary sibling, built for hostility: workers are
    murdered, wedged and preempted — by the OS, by an operator, or by the
    built-in {!chaos} injector — and the sweep must converge anyway.

    The supervisor owns a pool of [workers] children (spawned by a caller
    factory, e.g. [ipi sweep-worker]), assigns tasks over a
    length-prefixed JSON pipe protocol ({!Obs.Wire}), and enforces:

    - {b per-chunk timeouts}: an assignment not answered within
      [chunk_timeout] seconds gets its worker SIGKILLed and the task
      reassigned;
    - {b death detection}: worker exit, kill, or a malformed/truncated
      frame all count as death; the in-flight task is reassigned;
    - {b bounded retry}: a task is attempted at most [max_retries + 1]
      times, then recorded as failed (the driver maps this to a
      {!Exhaustive.shard_failure} — one poisoned task never aborts the
      sweep);
    - {b exponential backoff}: a slot that keeps dying respawns after
      [backoff * 2^(consecutive deaths - 1)] seconds, capped, so a
      crash-looping worker binary cannot busy-spin the supervisor.

    {b Protocol.} Supervisor to worker, one frame per assignment:
    [{"task": i}]; then [{"shutdown": true}] when done. Worker to
    supervisor: one frame per finished task, an object carrying back
    ["task": i] plus the driver's payload. The supervisor treats any
    frame without a valid in-flight ["task"] as a protocol error (death).

    {b Determinism.} Completion order is timing-dependent, but the
    supervisor never interprets payloads — the driver ({!Distrib}) merges
    them by task index in enumeration order, which is what keeps
    aggregates bit-identical to serial for any worker count, any chaos,
    any interleaving.

    {b Chaos.} The seeded injector fires on task assignments with
    probability [rate_pct]%, at most [budget] times per run: [Kill]
    SIGKILLs the worker just after handing it the task, [Stall] SIGSTOPs
    it and leaves the chunk timeout to rescue the task, [Slow] SIGSTOPs
    and SIGCONTs after [resume_after] seconds so the task finishes late
    but finishes. With [budget < max_retries] a chaos-ridden run is
    {e guaranteed} to complete: every task survives at least one
    undisturbed attempt. *)

type chaos_mode = Kill | Stall | Slow

val chaos_mode_of_string : string -> (chaos_mode, string) result
(** ["kill" | "stall" | "slow"], as the CLI spells them. *)

val pp_chaos_mode : Format.formatter -> chaos_mode -> unit

type chaos = {
  mode : chaos_mode;
  seed : int;  (** drives a {!Kernel.Rng}; same seed, same injection draws *)
  rate_pct : int;  (** injection chance per assignment, 0–100 *)
  budget : int;  (** total injections per run *)
  resume_after : float;  (** [Slow] only: seconds until SIGCONT *)
}

val default_chaos : chaos_mode -> seed:int -> chaos
(** rate 25%, budget 3, resume after 0.2s. *)

type metrics = {
  spawned : int;  (** workers started, respawns included *)
  deaths : int;  (** exits, kills and protocol errors *)
  timeouts : int;  (** chunk timeouts (counted in [deaths] too) *)
  retries : int;  (** task reassignments *)
  chaos_injected : int;
  frames : int;  (** well-formed result frames *)
}

val metrics_to_json : metrics -> Obs.Json.t
val pp_metrics : Format.formatter -> metrics -> unit

type outcome = {
  completed : (int * Obs.Json.t) list;
      (** ascending task index; payload is the worker's whole result
          frame *)
  failed : (int * string) list;  (** ascending; retries exhausted *)
  interrupted : int list;  (** pending when [should_stop] fired *)
  metrics : metrics;
}

val run :
  ?chaos:chaos ->
  ?should_stop:(unit -> bool) ->
  ?on_result:(task:int -> Obs.Json.t -> unit) ->
  ?chunk_timeout:float ->
  ?max_retries:int ->
  ?backoff:float ->
  workers:int ->
  spawn:(unit -> Kernel.Proc.child) ->
  tasks:int list ->
  unit ->
  outcome
(** Drive [tasks] (the driver's indices, any order — preserved for
    assignment) to completion across [workers] children. [on_result] runs
    in completion order as frames arrive — the driver's hook for progress
    meters and periodic checkpoints. [should_stop] is polled every loop
    iteration; once true, workers are killed and unfinished tasks land in
    [interrupted]. Defaults: no chaos, 60s chunk timeout, 3 retries, 0.1s
    backoff base. SIGPIPE is ignored for the duration (writes to a dead
    worker surface as [EPIPE], i.e. a death, not a crash). *)
