(** Exhaustive sweeps over serial synchronous runs: the mechanised side of
    the paper's complexity claims for small systems.

    For a deterministic algorithm and fixed proposals, the serial adversary's
    choices determine the run completely, so enumerating all choice
    sequences up to a horizon visits {e every} serial run prefix. A sweep
    reports the worst (and best) global decision round and every consensus
    violation found — e.g. [A_{t+2}] sweeps must show max = min = [t + 2]
    with zero violations, while FloodSet shows [t + 1]. *)

open Kernel

type crashed_run = {
  choices : Serial.choice list;
  error : Sim.Engine.step_error;
}
(** A schedule whose run raised {!Sim.Engine.Step_error}: the adversary
    choices to replay it, plus the structured error (algorithm, pid,
    round, reason). *)

type shard_failure = { shard : int; context : string; message : string }
(** A {!Parallel} shard whose worker raised something the engine did not
    contain (e.g. an exception escaping [Algorithm.init]). [shard] is the
    shard's index in enumeration order and [context] describes the
    subproblem (first-round choice or proposal assignment) so the failure
    is reproducible. Serial sweeps never produce these. *)

type result = {
  runs : int;
      (** total runs the sweep accounts for — always equal to the unreduced
          enumeration count, whatever reduction computed it *)
  distinct_runs : int;
      (** leaves actually enumerated or simulated. Unreduced sweeps have
          [distinct_runs = runs]; {!Mc.Dedup} counts a subtree answered
          from its transposition table into [runs] but not here, and
          {!Mc.Symmetry} counts only the orbit representative here while
          scaling [runs] by the orbit size. The split keeps the reduction
          honest: aggregates speak for all [runs], work done is
          [distinct_runs]. *)
  max_decision : int;  (** worst global decision round over all runs *)
  min_decision : int;
  max_witness : Serial.choice list option;
  violations : (Serial.choice list * Sim.Props.violation list) list;
  undecided_runs : int;
      (** runs where some correct process never decided within the engine
          bound — must be 0 for every terminating algorithm *)
  crashed : crashed_run list;
      (** runs contained after a {!Sim.Engine.Step_error}; counted in
          [runs] but in no other aggregate. Like [violations], the list is
          the reverse of enumeration order, and serial, incremental and
          parallel sweeps produce it bit-identically. *)
  shard_failures : shard_failure list;
      (** failed {!Parallel} shards, in shard order; their subtrees'
          runs are not counted anywhere else. *)
  expired : bool;
      (** a wall-clock [deadline] passed mid-sweep: every count above is a
          faithful account of the {e explored} part of the space only.
          Graceful degradation for interactive sweeps — the CLI maps this
          to a distinct exit code. *)
}

val empty : result
(** The unit of {!merge}: zero runs. *)

exception Expired
(** Raised by a sweep's per-leaf deadline check once the wall clock passes
    the [deadline] argument. Drivers catch it, keep what they accounted so
    far and set [expired]; it only escapes a sweep entry point if a custom
    caller of {!deadline_check} lets it. *)

val deadline_check : float option -> unit -> unit
(** [deadline_check deadline ()] raises {!Expired} when [deadline] is
    [Some d] and [Unix.gettimeofday () > d]; a no-op otherwise. Exposed
    for the reduction/parallel drivers so every sweep flavour shares one
    notion of expiry. *)

val merge : result -> result -> result
(** Aggregate two sweep results. Associative with unit {!empty}; keeps the
    {e first} (left-most) maximal-round witness, so folding shard results in
    enumeration order reproduces exactly the single-sweep result. *)

val add_run :
  result -> choices:Serial.choice list -> trace:Sim.Trace.t -> result
(** Fold one finished run into a result: checks {!Sim.Props}, updates the
    decision-round extremes and counts. The per-leaf step of every sweep
    driver, exposed for the reduction layer ({!Dedup}). *)

val add_crashed :
  result ->
  choices:Serial.choice list ->
  error:Sim.Engine.step_error ->
  result
(** Fold one contained {!Sim.Engine.Step_error} run into a result. *)

val binary_assignments : Config.t -> Value.t Pid.Map.t list
(** All [2^n] binary proposal assignments, in the subset order
    {!sweep_binary} enumerates them. *)

val sweep :
  ?faults:Sim.Model.faults ->
  ?omit_budget:int ->
  ?deadline:float ->
  ?policy:Serial.policy ->
  ?metrics:Obs.Metrics.t ->
  ?horizon:int ->
  algo:Sim.Algorithm.packed ->
  config:Config.t ->
  proposals:Value.t Pid.Map.t ->
  unit ->
  result
(** Enumerate every serial run whose crashes happen within [horizon] rounds
    (default [t + 2]; crashes later than that cannot affect the decision
    rounds of any algorithm here) under [policy] (default [Prefixes]).
    Every run is simulated from round 1 — the simple baseline;
    {!sweep_incremental} computes the identical result faster.

    [faults] (default [Crash_only]) selects the adversary's fault menu and
    [omit_budget] (default 1, clamped per {!Serial.split_budget}) the
    omission side of its budget; omission runs are judged with agreement
    and termination restricted to fault-free processes. [deadline] (an
    absolute [Unix.gettimeofday] time) is the graceful-degradation hook:
    once it passes, the sweep stops at the next leaf and returns what it
    accounted with [expired = true].

    A schedule whose run raises {!Sim.Engine.Step_error} is recorded as a
    {!crashed_run} and the sweep continues — one poisoned schedule never
    aborts an enumeration.

    When [metrics] is given the sweep reports into it: the [mc.runs]
    (states explored), [mc.violations], [mc.undecided_runs],
    [mc.crashed_runs], [mc.shard_failures] and
    [mc.prefix_hits] (engine rounds saved by prefix sharing) counters, the
    [mc.max_decision_round] and [mc.domains] gauges, and the
    [mc.sweep_cpu_seconds] / [mc.sweep_wall_seconds] /
    [mc.schedules_per_second] histograms (throughput is measured against
    the wall clock — CPU time overcounts elapsed time under multiple
    domains). *)

val sweep_binary :
  ?faults:Sim.Model.faults ->
  ?omit_budget:int ->
  ?deadline:float ->
  ?policy:Serial.policy ->
  ?metrics:Obs.Metrics.t ->
  ?horizon:int ->
  algo:Sim.Algorithm.packed ->
  config:Config.t ->
  unit ->
  result
(** {!sweep} over {e all} [2^n] binary proposal assignments, aggregated. *)

val sweep_incremental :
  ?faults:Sim.Model.faults ->
  ?omit_budget:int ->
  ?deadline:float ->
  ?policy:Serial.policy ->
  ?metrics:Obs.Metrics.t ->
  ?horizon:int ->
  ?prof:Obs.Prof.acc ->
  ?spans:Obs.Span.t ->
  ?progress:Obs.Progress.t ->
  algo:Sim.Algorithm.packed ->
  config:Config.t ->
  proposals:Value.t Pid.Map.t ->
  unit ->
  result
(** Same result as {!sweep}, bit-identical (same runs, decision rounds,
    witness and violation list), computed by carrying the resumable engine
    state ({!Sim.Engine.Make.Incremental}) down the choice-tree DFS: the
    shared prefix of two schedules is simulated once instead of once per
    leaf.

    Instrumentation (all default-off, none of it affects the result):
    [prof] accumulates per-engine-round GC deltas; [spans] records a
    ["sweep"] span with one ["run"] span per simulated leaf; [progress]
    is stepped at shard granularity (here: once). The caller owns
    {!Obs.Progress.finish} and the {!Obs.Prof.flush}. *)

val sweep_binary_incremental :
  ?faults:Sim.Model.faults ->
  ?omit_budget:int ->
  ?deadline:float ->
  ?policy:Serial.policy ->
  ?metrics:Obs.Metrics.t ->
  ?horizon:int ->
  ?prof:Obs.Prof.acc ->
  ?spans:Obs.Span.t ->
  ?progress:Obs.Progress.t ->
  algo:Sim.Algorithm.packed ->
  config:Config.t ->
  unit ->
  result
(** {!sweep_incremental} over all [2^n] binary assignments; bit-identical
    to {!sweep_binary}. [progress] steps once per assignment (with a
    total), [spans] wraps each assignment in a ["shard <i>"] span. *)

val sweep_prefix :
  ?faults:Sim.Model.faults ->
  ?omit_budget:int ->
  ?deadline:float ->
  ?policy:Serial.policy ->
  ?horizon:int ->
  ?prof:Obs.Prof.acc ->
  ?spans:Obs.Span.t ->
  algo:Sim.Algorithm.packed ->
  config:Config.t ->
  proposals:Value.t Pid.Map.t ->
  prefix:Serial.choice list ->
  unit ->
  result * int
(** Incremental sweep of the single subtree whose first rounds are pinned
    to [prefix] — the unit of work {!Parallel} shards across domains.
    Returns the subtree's result together with the number of engine rounds
    stepped during the DFS (for the [mc.prefix_hits] accounting); reports
    no metrics itself. Folding [sweep_prefix] results with {!merge} over
    the first-round choices in order yields exactly
    {!sweep_incremental}'s result except for the [violations] and
    [crashed] orders (each subtree's lists stay newest-first within the
    subtree). A {!Sim.Engine.Step_error} on an edge of the choice tree
    poisons the subtree below it: every leaf under the edge is recorded
    as a {!crashed_run} with that error, matching what the from-scratch
    {!sweep} observes run by run.

    [prof] measures every engine round the subtree executes (DFS edges
    and {!Sim.Engine.Make.Incremental.finish} tails); [spans] wraps each
    simulated leaf in a ["run"] span. When the caller is a parallel
    driver, both must be owned by the shard's worker domain — GC deltas
    and span recorders are single-domain. *)

type stopwatch
(** Wall + CPU clocks captured together at sweep start. *)

val stopwatch : unit -> stopwatch

val report_sweep :
  ?domains:int ->
  ?prefix_hits:int ->
  ?dedup:int * int ->
  ?arena:int * int ->
  ?orbits:int ->
  Obs.Metrics.t option ->
  started:stopwatch ->
  result ->
  unit
(** Report a finished sweep into a metrics registry (no-op on [None]):
    the counters and gauges listed under {!sweep}, with [domains]
    (default 1) and [prefix_hits] (default 0, omitted when 0) as
    annotations from the caller's driver. Reduced sweeps also pass
    [dedup] (transposition-table [(hits, entries)], reported as the
    [mc.dedup_hits] counter and [mc.dedup_entries] gauge), [arena]
    (branch-execution [(snapshots, restores)], the [mc.arena_snapshots]
    and [mc.arena_restores] counters) and [orbits] (assignment classes
    actually swept, the [mc.orbits] gauge); the [mc.distinct_runs]
    counter is always reported and equals [mc.runs] for unreduced
    sweeps. *)

val pp_result : Format.formatter -> result -> unit
(** Prints [[-, -]] for the decision-round interval when no run decided. *)
