(** Exhaustive sweeps over serial synchronous runs: the mechanised side of
    the paper's complexity claims for small systems.

    For a deterministic algorithm and fixed proposals, the serial adversary's
    choices determine the run completely, so enumerating all choice
    sequences up to a horizon visits {e every} serial run prefix. A sweep
    reports the worst (and best) global decision round and every consensus
    violation found — e.g. [A_{t+2}] sweeps must show max = min = [t + 2]
    with zero violations, while FloodSet shows [t + 1]. *)

open Kernel

type result = {
  runs : int;
  max_decision : int;  (** worst global decision round over all runs *)
  min_decision : int;
  max_witness : Serial.choice list option;
  violations : (Serial.choice list * Sim.Props.violation list) list;
  undecided_runs : int;
      (** runs where some correct process never decided within the engine
          bound — must be 0 for every terminating algorithm *)
}

val sweep :
  ?policy:Serial.policy ->
  ?metrics:Obs.Metrics.t ->
  ?horizon:int ->
  algo:Sim.Algorithm.packed ->
  config:Config.t ->
  proposals:Value.t Pid.Map.t ->
  unit ->
  result
(** Enumerate every serial run whose crashes happen within [horizon] rounds
    (default [t + 2]; crashes later than that cannot affect the decision
    rounds of any algorithm here) under [policy] (default [Prefixes]).
    When [metrics] is given the sweep reports progress counters into it:
    [mc.runs] (states explored), [mc.violations], [mc.undecided_runs], the
    [mc.max_decision_round] gauge and the [mc.sweep_seconds] /
    [mc.schedules_per_second] histograms. *)

val sweep_binary :
  ?policy:Serial.policy ->
  ?metrics:Obs.Metrics.t ->
  ?horizon:int ->
  algo:Sim.Algorithm.packed ->
  config:Config.t ->
  unit ->
  result
(** {!sweep} over {e all} [2^n] binary proposal assignments, aggregated. *)

val pp_result : Format.formatter -> result -> unit
