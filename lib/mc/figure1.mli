(** The five-run construction of Claim 5.1 — the paper's Fig. 1 — executable
    and machine-checked.

    The heart of the lower-bound proof considers an algorithm that globally
    decides at round [t + 1] in every synchronous run, takes a bivalent
    [(t-1)]-round serial partial run, and builds five runs that differ only
    in whether one process [P] really crashed or was merely slow, and in
    whether one pivot process [Q] heard it:

    - [s1] — synchronous: the chain prefix, then [P] crashes in round [t]
      heard by nobody. 1-valent: [Q] decides 1 at [t + 1].
    - [s0] — synchronous: same, but [Q] alone hears [P]. 0-valent: [Q]
      decides 0 at [t + 1].
    - [a2] — asynchronous: [P] does {e not} crash, its round-[t] messages
      are merely delayed past round [t + 1] (everyone falsely suspects
      [P]); [Q] crashes at [t + 1] before sending. Reaches a global
      decision at some round [k'].
    - [a1] — like [a2] through round [t], but [Q] survives round [t + 1]:
      everyone falsely suspects [Q] (its messages are delayed past [k']),
      [Q] falsely suspects [P], and [Q] crashes at [t + 2]. {b [Q] cannot
      distinguish [a1] from [s1]} at the end of round [t + 1] — so it
      decides 1.
    - [a0] — like [s0] through round [t] ([Q] alone hears [P], whose
      messages to the others are delayed), then as [a1]. {b [Q] cannot
      distinguish [a0] from [s0]} — so it decides 0.

    Every process other than [Q] receives identical messages in [a2], [a1]
    and [a0] through round [k'], so they decide the same value in all three
    — and [Q] has already decided both 0 and 1. One of [a1], [a0] violates
    uniform agreement, in a legal ES run: the algorithm cannot have been
    safe and [t + 1]-fast.

    [Make] builds the five schedules for any [0 < t < n/2] (prefix = the
    standard chain carrying the minority value to [P = p_t]; pivot
    [Q = p_n]) and checks every claim above {e computationally}: the
    indistinguishability statements compare the pivot's full local state
    across runs, round by round. *)

open Kernel

type relation = {
  description : string;
  holds : bool;
}

type outcome = {
  config : Config.t;
  p : Pid.t;  (** the process crashed-or-slandered in round t *)
  q : Pid.t;  (** the pivot *)
  k' : int;  (** global decision round of [a2] *)
  s1 : Sim.Schedule.t;
  s0 : Sim.Schedule.t;
  a2 : Sim.Schedule.t;
  a1 : Sim.Schedule.t;
  a0 : Sim.Schedule.t;
  q_decision_s1 : Value.t option;
  q_decision_s0 : Value.t option;
  q_decision_a1 : Value.t option;
  q_decision_a0 : Value.t option;
  relations : relation list;
      (** each proof obligation with its checked status *)
  agreement_violated : bool;
      (** [a1] or [a0] violates uniform agreement — the contradiction *)
}

val all_hold : outcome -> bool
val pp_outcome : Format.formatter -> outcome -> unit

module Make (A : Sim.Algorithm.S) : sig
  val run : Config.t -> outcome
  (** Build the five runs against [A] and check every relation. Meaningful
      for algorithms that decide at [t + 1] in synchronous runs (the
      proof's premise); for indulgent algorithms the decision relations
      simply fail to produce a violation, which is the expected outcome. *)
end

val against_floodset_ws : Config.t -> outcome
(** The construction against the canonical [t + 1]-round algorithm; the
    test suite asserts that every relation holds and agreement breaks for
    every [0 < t < n/2] up to [n = 9]. *)
