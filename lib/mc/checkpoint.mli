(** Versioned, atomically-written sweep snapshots.

    A checkpoint is the crash-safe image of a sweep in flight, at the
    sharding granularity every driver here already agrees on ({!Dedup}'s
    fresh-table-per-first-round-subtree, {!Parallel}'s shard, {!Distrib}'s
    task): the results of the {e completed} tasks, in task order, plus
    enough metadata to rebuild the pending ones deterministically. Nothing
    sub-task is persisted — a task interrupted mid-subtree is simply rerun
    on resume, which is what keeps a resumed sweep's aggregates
    bit-identical to an undisturbed one (the merge is a fold over tasks in
    enumeration order either way).

    Files are written through {!Obs.Artifact} (tmp+rename), so a snapshot
    on disk is always complete: a crash mid-write leaves the previous
    snapshot, never a prefix. Each file embeds a format version and the
    source commit; {!load} returns a {e structured} error — pinned message,
    never an exception — for unknown versions, truncated files, or
    anything else unreadable, so `--resume` against a bad file degrades
    into a clear complaint. *)

type entry = {
  task : int;  (** index in the driver's deterministic task order *)
  result : Exhaustive.result;
  stats : Dedup.stats option;  (** reduced sweeps only *)
  edges : int;  (** engine rounds the task stepped (prefix-hit metrics) *)
}

type t = {
  commit : string;  (** source commit the writing binary was built from *)
  params : Obs.Json.t;
      (** the driver's own description of the sweep (algorithm, config,
          mode, …), opaque here; {!compatible} compares it for equality on
          resume so a checkpoint can never silently seed a different
          sweep *)
  total_tasks : int;
  completed : entry list;  (** ascending by [task], no duplicates *)
}

val version : int
(** The format version this build reads and writes (1). *)

val entry_to_json : entry -> Obs.Json.t
val entry_of_json : Obs.Json.t -> (entry, string) result
(** One completed task, as stored in snapshots — {!Distrib} reuses the
    same object as its worker protocol's result frame, so the snapshot
    format and the wire format cannot drift apart. *)

val current_commit : unit -> string
(** The source commit embedded in new snapshots: [git rev-parse HEAD] when
    available, ["unknown"] otherwise (never fails). *)

val save : path:string -> t -> unit
(** Atomic write (tmp+rename in [path]'s directory). *)

type load_error =
  | Unreadable of string  (** file missing or unreadable *)
  | Malformed of string  (** truncated, not JSON, or fields missing *)
  | Unknown_version of int  (** written by a different format version *)

val pp_load_error : Format.formatter -> load_error -> unit
(** Pinned messages, e.g.
    ["checkpoint: unknown format version 7 (this build reads version 1)"]. *)

val load : path:string -> (t, load_error) result
(** Never raises: every failure mode is a {!load_error}. *)

val compatible : t -> params:Obs.Json.t -> (unit, string) result
(** Whether a loaded checkpoint belongs to the sweep described by
    [params] (canonical JSON equality). The error message names both
    parameter strings. *)
