open Kernel
module J = Obs.Json

type chaos_mode = Kill | Stall | Slow

let chaos_mode_of_string = function
  | "kill" -> Ok Kill
  | "stall" -> Ok Stall
  | "slow" -> Ok Slow
  | s -> Error (Printf.sprintf "unknown chaos mode %S (kill|stall|slow)" s)

let pp_chaos_mode ppf m =
  Format.pp_print_string ppf
    (match m with Kill -> "kill" | Stall -> "stall" | Slow -> "slow")

type chaos = {
  mode : chaos_mode;
  seed : int;
  rate_pct : int;
  budget : int;
  resume_after : float;
}

let default_chaos mode ~seed =
  { mode; seed; rate_pct = 25; budget = 3; resume_after = 0.2 }

type metrics = {
  spawned : int;
  deaths : int;
  timeouts : int;
  retries : int;
  chaos_injected : int;
  frames : int;
}

let metrics_to_json m =
  J.Obj
    [
      ("spawned", J.Int m.spawned);
      ("deaths", J.Int m.deaths);
      ("timeouts", J.Int m.timeouts);
      ("retries", J.Int m.retries);
      ("chaos_injected", J.Int m.chaos_injected);
      ("frames", J.Int m.frames);
    ]

let pp_metrics ppf m =
  Format.fprintf ppf
    "%d spawned, %d deaths (%d timeouts), %d retries, %d chaos, %d frames"
    m.spawned m.deaths m.timeouts m.retries m.chaos_injected m.frames

type outcome = {
  completed : (int * J.t) list;
  failed : (int * string) list;
  interrupted : int list;
  metrics : metrics;
}

(* One worker slot of the pool. [child = None] means the slot is between
   incarnations, waiting out its backoff. *)
type slot = {
  id : int;
  mutable child : Proc.child option;
  mutable out : out_channel option;  (** buffered writer over [to_child] *)
  mutable dec : Obs.Wire.decoder;
  mutable assigned : (int * float) option;  (** in-flight task, deadline *)
  mutable respawn_at : float;
  mutable consecutive_deaths : int;
  mutable resume_at : float option;  (** pending SIGCONT (Slow chaos) *)
}

let max_backoff = 5.0

let run ?chaos ?(should_stop = fun () -> false) ?(on_result = fun ~task:_ _ -> ())
    ?(chunk_timeout = 60.) ?(max_retries = 3) ?(backoff = 0.1) ~workers ~spawn
    ~tasks () =
  if workers < 1 then invalid_arg "Supervise.run: workers < 1";
  if chunk_timeout <= 0. then invalid_arg "Supervise.run: chunk_timeout <= 0";
  let rng = Option.map (fun c -> Rng.create ~seed:c.seed) chaos in
  let chaos_left =
    ref (match chaos with Some c -> c.budget | None -> 0)
  in
  let spawned = ref 0
  and deaths = ref 0
  and timeouts = ref 0
  and retries = ref 0
  and chaos_injected = ref 0
  and frames = ref 0 in
  let pending = Queue.create () in
  List.iter (fun t -> Queue.add t pending) tasks;
  let attempts = Hashtbl.create 16 in
  let completed = ref [] in
  let failed = ref [] in
  let slots =
    Array.init workers (fun id ->
        {
          id;
          child = None;
          out = None;
          dec = Obs.Wire.decoder ();
          assigned = None;
          respawn_at = 0.;
          consecutive_deaths = 0;
          resume_at = None;
        })
  in
  let in_flight () =
    Array.exists (fun s -> s.assigned <> None) slots
  in
  let work_left () = not (Queue.is_empty pending) || in_flight () in
  let dispose slot =
    match slot.child with
    | None -> ()
    | Some child ->
        ignore (Proc.kill_and_reap child);
        slot.child <- None;
        slot.out <- None;
        slot.dec <- Obs.Wire.decoder ()
  in
  (* A slot's incarnation ended (exit, kill, timeout, protocol error):
     reap it, reassign its in-flight task under the retry bound, and
     schedule the respawn with exponential backoff. *)
  let handle_death slot ~now ~reason =
    dispose slot;
    incr deaths;
    slot.resume_at <- None;
    slot.consecutive_deaths <- slot.consecutive_deaths + 1;
    slot.respawn_at <-
      now
      +. Float.min max_backoff
           (backoff *. (2. ** float_of_int (slot.consecutive_deaths - 1)));
    match slot.assigned with
    | None -> ()
    | Some (task, _) ->
        slot.assigned <- None;
        let n = 1 + Option.value ~default:0 (Hashtbl.find_opt attempts task) in
        Hashtbl.replace attempts task n;
        if n > max_retries then
          failed :=
            ( task,
              Printf.sprintf "%s; %d attempts exhausted" reason n )
            :: !failed
        else begin
          incr retries;
          Queue.add task pending
        end
  in
  let inject_chaos slot ~now =
    match (chaos, rng) with
    | Some c, Some rng when !chaos_left > 0 && Rng.int rng 100 < c.rate_pct -> (
        decr chaos_left;
        incr chaos_injected;
        match slot.child with
        | None -> ()
        | Some child -> (
            match c.mode with
            | Kill -> Proc.signal child Sys.sigkill
            | Stall -> Proc.signal child Sys.sigstop
            | Slow ->
                Proc.signal child Sys.sigstop;
                slot.resume_at <- Some (now +. c.resume_after)))
    | _ -> ()
  in
  let send_frame slot json =
    match slot.out with
    | None -> ()
    | Some oc -> (
        try Obs.Wire.write oc json
        with Sys_error _ | Unix.Unix_error _ ->
          (* EPIPE with SIGPIPE ignored: the worker is already dead; the
             poll below will notice and reassign. *)
          ())
  in
  let assign slot ~now =
    match Queue.take_opt pending with
    | None -> ()
    | Some task ->
        slot.assigned <- Some (task, now +. chunk_timeout);
        send_frame slot (J.Obj [ ("task", J.Int task) ]);
        inject_chaos slot ~now
  in
  let respawn slot =
    let child = spawn () in
    incr spawned;
    slot.child <- Some child;
    slot.out <- Some (Unix.out_channel_of_descr (Proc.to_child child));
    slot.dec <- Obs.Wire.decoder ();
    slot.resume_at <- None
  in
  let complete slot task payload =
    incr frames;
    slot.assigned <- None;
    slot.consecutive_deaths <- 0;
    completed := (task, payload) :: !completed;
    on_result ~task payload
  in
  (* Drain every complete frame the decoder holds. A payload must carry
     the slot's in-flight task index; anything else is a protocol error
     and the incarnation is put down. Returns [false] on death. *)
  let rec drain slot ~now =
    match Obs.Wire.next slot.dec with
    | Ok None -> true
    | Ok (Some json) -> (
        match (slot.assigned, Option.bind (J.member "task" json) J.to_int_opt)
        with
        | Some (task, _), Some t when t = task ->
            complete slot task json;
            drain slot ~now
        | _ ->
            handle_death slot ~now ~reason:"unexpected result frame";
            false)
    | Error err ->
        handle_death slot ~now
          ~reason:(Format.asprintf "protocol error: %a" Obs.Wire.pp_error err);
        false
  in
  let buf = Bytes.create 65536 in
  let read_slot slot ~now =
    match slot.child with
    | None -> ()
    | Some child -> (
        match Unix.read (Proc.from_child child) buf 0 (Bytes.length buf) with
        | 0 ->
            (* EOF: clean shutdown only if nothing was in flight. *)
            if slot.assigned = None then begin
              dispose slot;
              slot.respawn_at <- now
            end
            else handle_death slot ~now ~reason:"worker closed its pipe"
        | n ->
            Obs.Wire.feed slot.dec buf n;
            ignore (drain slot ~now)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error _ ->
            handle_death slot ~now ~reason:"read error on worker pipe")
  in
  let prev_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> None
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter dispose slots;
      match prev_sigpipe with
      | Some h -> ( try Sys.set_signal Sys.sigpipe h with _ -> ())
      | None -> ())
    (fun () ->
      let stopped = ref false in
      while work_left () && not !stopped do
        if should_stop () then stopped := true
        else begin
          let now = Unix.gettimeofday () in
          (* Chaos Slow: lift pending SIGSTOPs whose delay elapsed. *)
          Array.iter
            (fun slot ->
              match (slot.resume_at, slot.child) with
              | Some at, Some child when at <= now ->
                  Proc.signal child Sys.sigcont;
                  slot.resume_at <- None
              | _ -> ())
            slots;
          (* Reap exits the pipe has not surfaced yet, and chunk
             timeouts. *)
          Array.iter
            (fun slot ->
              match slot.child with
              | None -> ()
              | Some child -> (
                  match Proc.poll child with
                  | Proc.Running -> (
                      match slot.assigned with
                      | Some (_, deadline) when now > deadline ->
                          incr timeouts;
                          handle_death slot ~now ~reason:"chunk timeout"
                      | _ -> ())
                  | Proc.Exited _ | Proc.Signaled _ ->
                      (* Drain what the pipe still holds before declaring
                         death — the result frame may already be there. *)
                      read_slot slot ~now;
                      (match slot.child with
                      | Some _ ->
                          if slot.assigned = None then begin
                            dispose slot;
                            slot.respawn_at <- now
                          end
                          else handle_death slot ~now ~reason:"worker exited"
                      | None -> ())))
            slots;
          (* Respawn and hand out work. *)
          Array.iter
            (fun slot ->
              if
                slot.child = None
                && (not (Queue.is_empty pending))
                && slot.respawn_at <= now
              then respawn slot)
            slots;
          Array.iter
            (fun slot ->
              if slot.child <> None && slot.assigned = None then
                assign slot ~now)
            slots;
          (* Wait for frames (or the next deadline). *)
          let fds =
            Array.to_list slots
            |> List.filter_map (fun slot ->
                   match slot.child with
                   | Some child when slot.assigned <> None ->
                       Some (Proc.from_child child)
                   | _ -> None)
          in
          if fds = [] then
            (if work_left () then Unix.sleepf 0.01)
          else begin
            let timeout =
              Array.fold_left
                (fun acc slot ->
                  let acc =
                    match slot.assigned with
                    | Some (_, deadline) -> Float.min acc (deadline -. now)
                    | None -> acc
                  in
                  match slot.resume_at with
                  | Some at -> Float.min acc (at -. now)
                  | None -> acc)
                0.25 slots
            in
            let timeout = Float.max 0.005 timeout in
            match Unix.select fds [] [] timeout with
            | readable, _, _ ->
                let now = Unix.gettimeofday () in
                Array.iter
                  (fun slot ->
                    match slot.child with
                    | Some child
                      when List.memq (Proc.from_child child) readable ->
                        read_slot slot ~now
                    | _ -> ())
                  slots
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          end
        end
      done;
      (* Graceful shutdown of idle survivors; busy ones only exist if we
         were stopped, and dispose (in [finally]) kills them. *)
      Array.iter
        (fun slot ->
          if slot.assigned = None then
            send_frame slot (J.Obj [ ("shutdown", J.Bool true) ]))
        slots;
      let in_flight_tasks =
        List.filter_map
          (fun s -> Option.map fst s.assigned)
          (Array.to_list slots)
      in
      let interrupted =
        List.sort_uniq compare
          (List.of_seq (Queue.to_seq pending) @ in_flight_tasks)
      in
      {
        completed = List.sort (fun (a, _) (b, _) -> compare a b) !completed;
        failed = List.sort (fun (a, _) (b, _) -> compare a b) !failed;
        interrupted;
        metrics =
          {
            spawned = !spawned;
            deaths = !deaths;
            timeouts = !timeouts;
            retries = !retries;
            chaos_injected = !chaos_injected;
            frames = !frames;
          };
      })
