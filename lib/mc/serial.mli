(** Serial runs and their enumeration.

    The lower-bound proof (Section 2) works with {e serial} runs: synchronous
    runs in which at most one process crashes per round. This module
    enumerates every serial schedule of a small system up to a crash horizon
    — the adversary's full strategy space against a deterministic algorithm —
    which is what makes valency computable.

    A serial schedule is described by one {!choice} per round: either nobody
    crashes, or one victim crashes and its round message reaches exactly the
    given set of surviving processes (every other copy is lost). After the
    horizon the run continues crash-free and synchronous forever. *)

open Kernel

type choice = No_crash | Crash of { victim : Pid.t; receivers : Pid.Set.t }

val pp_choice : Format.formatter -> choice -> unit

type policy =
  | All_subsets  (** every receiver subset — exact but [O(2^n)] per victim *)
  | Prefixes
      (** receiver sets restricted to id-order prefixes of the survivors —
          the adversary used in the classical [t+1] proof; polynomial
          branching, enough to realise every bound in this repository *)

val choices :
  policy:policy -> alive:Pid.Set.t -> crashes_left:int -> choice list
(** All legal choices for one round: [No_crash], plus every (victim,
    receivers) pair permitted by the policy when the crash budget allows.
    The crash budget is the caller's to thread ([crashes_left]); the config
    is not needed. *)

val plan_of : Config.t -> choice -> Sim.Schedule.plan
(** The one-round plan a choice denotes: nothing, or one crash whose round
    message is lost towards every survivor outside [receivers]. *)

val to_schedule : Config.t -> choice list -> Sim.Schedule.t
(** The synchronous schedule whose round [k] applies the [k]-th choice. *)

val fold :
  policy:policy ->
  ?prefix:choice list ->
  Config.t ->
  horizon:int ->
  root:'s ->
  step:('s -> choice -> 's) ->
  leaf:(choice list -> 's -> unit) ->
  unit
(** DFS over every serial choice sequence of length [horizon] (with at most
    [t] crashes in total), threading a caller state down the tree: the root
    carries [root], each edge extends its parent's state with [step], and
    [leaf] receives the full sequence together with the state at its end.
    Because [step] runs once per {e tree edge} rather than once per leaf,
    carrying the simulation state here is what makes sweeps prefix-sharing:
    the common prefix of two schedules is simulated exactly once.

    [prefix] (default empty) pins the first rounds to the given choices and
    explores only that subtree — the sharding hook for parallel sweeps.
    [root] must then be the caller's state at the {e end} of the prefix;
    [leaf] still receives full sequences ([prefix] included). Raises
    [Invalid_argument] if the prefix is longer than the horizon. *)

val enumerate :
  policy:policy ->
  Config.t ->
  horizon:int ->
  f:(choice list -> unit) ->
  unit
(** Apply [f] to every serial choice sequence of length [horizon] (with at
    most [t] crashes in total). The number of sequences is exponential in
    [horizon]; intended for [n <= 5]. *)

val count : policy:policy -> Config.t -> horizon:int -> int
(** Number of sequences {!enumerate} visits. *)
