(** Serial runs and their enumeration.

    The lower-bound proof (Section 2) works with {e serial} runs: synchronous
    runs in which at most one process crashes per round. This module
    enumerates every serial schedule of a small system up to a crash horizon
    — the adversary's full strategy space against a deterministic algorithm —
    which is what makes valency computable.

    A serial schedule is described by one {!choice} per round: either nobody
    crashes, or one victim crashes and its round message reaches exactly the
    given set of surviving processes (every other copy is lost). After the
    horizon the run continues crash-free and synchronous forever.

    The omission-fault adversary keeps the one-act-per-round shape: a round
    may instead apply one send-omission (a culprit's copies towards a target
    set are dropped) or one receive-omission (the copies from a source set
    towards the culprit are dropped). Fault classes are drawn under an
    explicit budget [(t_crash, t_omit)] derived from the {!Sim.Model.faults}
    menu: a fresh culprit costs one omission unit and fixes that process's
    class for the rest of the run; declared culprits re-offend for free, and
    crash victims stay disjoint from omitters. *)

open Kernel

type choice =
  | No_crash
  | Crash of { victim : Pid.t; receivers : Pid.Set.t }
  | Send_omit of { culprit : Pid.t; dropped : Pid.Set.t }
      (** [culprit]'s round message is dropped towards every process in
          [dropped] (a non-empty subset of the other alive processes). *)
  | Recv_omit of { culprit : Pid.t; dropped : Pid.Set.t }
      (** the round messages from every process in [dropped] towards
          [culprit] are dropped at its doorstep. *)

val pp_choice : Format.formatter -> choice -> unit

type policy =
  | All_subsets  (** every receiver subset — exact but [O(2^n)] per victim *)
  | Prefixes
      (** receiver sets restricted to id-order prefixes of the survivors —
          the adversary used in the classical [t+1] proof; polynomial
          branching, enough to realise every bound in this repository *)

val choices :
  ?faults:Sim.Model.faults ->
  ?send_omitters:Pid.Set.t ->
  ?recv_omitters:Pid.Set.t ->
  ?omit_left:int ->
  policy:policy ->
  alive:Pid.Set.t ->
  crashes_left:int ->
  unit ->
  choice list
(** All legal choices for one round: [No_crash], plus every (victim,
    receivers) pair permitted by the policy when the crash budget allows,
    plus — for fault menus beyond [Crash_only] (the default) — every
    omission act permitted by the declared omitter sets and the remaining
    omission budget [omit_left]. The budgets are the caller's to thread;
    the config is not needed. *)

val plan_of : Config.t -> choice -> Sim.Schedule.plan
(** The one-round plan a choice denotes: nothing, one crash whose round
    message is lost towards every survivor outside [receivers], or the
    lost entries of one omission act. *)

val omitters_of : choice list -> (Pid.t * Sim.Model.omission) list
(** The omitter declarations a choice sequence implies, in order of first
    offence; each culprit's class is fixed by its first omission act. *)

val to_schedule :
  ?budget:Sim.Model.budget -> Config.t -> choice list -> Sim.Schedule.t
(** The synchronous schedule whose round [k] applies the [k]-th choice,
    with {!omitters_of} declared as its omitter set. Crash-only sequences
    produce exactly the schedules of the crash-only enumerator. *)

val budget_of :
  ?omit_budget:int -> faults:Sim.Model.faults -> Config.t -> Sim.Model.budget option
(** The explicit budget a sweep under the given fault menu runs with:
    [None] for [Crash_only] (crash sweeps carry no budget, as before),
    and the {!split_budget} split otherwise. *)

(** {1 Adversary state}

    The per-branch state the enumerator threads down the DFS; exposed so
    the reduced sweeps ({!Dedup}) can reuse exactly the same transition
    relation instead of re-deriving it. *)

type adversary = {
  alive : Pid.Set.t;
  crashes_left : int;
  send_omitters : Pid.Set.t;
  recv_omitters : Pid.Set.t;
  omit_left : int;
}

val initial : ?omit_budget:int -> ?faults:Sim.Model.faults -> Config.t -> adversary
(** Everybody alive, full budgets. [faults] defaults to [Crash_only] with
    the full crash budget [t]; omission menus split [t] per
    {!split_budget} ([omit_budget] defaults to 1, clamped to [t]). *)

val advance : adversary -> choice -> adversary
(** One round's transition: a crash removes the victim and debits the
    crash budget; a fresh omission act declares the culprit and debits the
    omission budget; a repeat offence is free. *)

val adversary_choices :
  policy:policy -> faults:Sim.Model.faults -> adversary -> choice list
(** {!choices} with every budget/omitter argument drawn from the state. *)

val split_budget :
  ?omit_budget:int -> faults:Sim.Model.faults -> Config.t -> int * int
(** [(t_crash, t_omit)]: how a fault menu splits the design threshold [t].
    [Crash_only] is [(t, 0)]; the pure omission menus are [(0, min
    omit_budget t)]; [Mixed] gives the omission side [min omit_budget t]
    and the crash side the rest, so [t_crash + t_omit = t] always. *)

val fold :
  ?faults:Sim.Model.faults ->
  ?omit_budget:int ->
  policy:policy ->
  ?prefix:choice list ->
  Config.t ->
  horizon:int ->
  root:'s ->
  step:('s -> choice -> 's) ->
  leaf:(choice list -> 's -> unit) ->
  unit
(** DFS over every serial choice sequence of length [horizon] (with at most
    [t] crashes in total, and omission acts per the fault menu), threading
    a caller state down the tree: the root carries [root], each edge
    extends its parent's state with [step], and [leaf] receives the full
    sequence together with the state at its end. Because [step] runs once
    per {e tree edge} rather than once per leaf, carrying the simulation
    state here is what makes sweeps prefix-sharing: the common prefix of
    two schedules is simulated exactly once.

    [prefix] (default empty) pins the first rounds to the given choices and
    explores only that subtree — the sharding hook for parallel sweeps.
    [root] must then be the caller's state at the {e end} of the prefix;
    [leaf] still receives full sequences ([prefix] included). Raises
    [Invalid_argument] if the prefix is longer than the horizon. *)

val enumerate :
  ?faults:Sim.Model.faults ->
  ?omit_budget:int ->
  policy:policy ->
  Config.t ->
  horizon:int ->
  f:(choice list -> unit) ->
  unit
(** Apply [f] to every serial choice sequence of length [horizon] (with at
    most [t] crashes in total). The number of sequences is exponential in
    [horizon]; intended for [n <= 5]. *)

val count :
  ?faults:Sim.Model.faults ->
  ?omit_budget:int ->
  policy:policy ->
  Config.t ->
  horizon:int ->
  int
(** Number of sequences {!enumerate} visits. *)
