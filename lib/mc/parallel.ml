open Kernel

(* Each shard is one [Exhaustive.sweep_prefix] (a first-round choice
   subtree, or one binary proposal assignment): coarse enough that domain
   overhead vanishes, numerous enough to balance across jobs. Reduction
   happens in enumeration order on the calling domain, which is what makes
   the merged result bit-identical to the serial sweep no matter which
   domain ran which shard. *)

let merge_in_order results =
  (* [Exhaustive.merge] folded left-to-right reproduces every field of the
     one-pass sweep except the violation order: the serial DFS conses
     violations as it meets them, so its final list is the {e reverse} of
     enumeration order. Rebuild exactly that by prepending shard lists in
     shard order (each shard's list is already reversed within itself). *)
  let folded = List.fold_left Exhaustive.merge Exhaustive.empty results in
  {
    folded with
    Exhaustive.violations =
      List.fold_left
        (fun acc (r : Exhaustive.result) -> r.Exhaustive.violations @ acc)
        [] results;
  }

let shard_results ~jobs tasks =
  Array.to_list (Par.map_tasks ~jobs (Array.of_list tasks))

let sweep ?(policy = Serial.Prefixes) ?metrics ?horizon ~jobs ~algo ~config
    ~proposals () =
  let horizon = Option.value horizon ~default:(Config.t config + 2) in
  let started = Exhaustive.stopwatch () in
  let firsts =
    Serial.choices ~policy
      ~alive:(Pid.Set.universe ~n:(Config.n config))
      ~crashes_left:(Config.t config)
  in
  let shards =
    shard_results ~jobs
      (List.map
         (fun first () ->
           Exhaustive.sweep_prefix ~policy ~horizon ~algo ~config ~proposals
             ~prefix:[ first ] ())
         firsts)
  in
  let result = merge_in_order (List.map fst shards) in
  let edges = List.fold_left (fun acc (_, e) -> acc + e) 0 shards in
  Exhaustive.report_sweep metrics ~started ~domains:(max jobs 1)
    ~prefix_hits:((result.Exhaustive.runs * horizon) - edges)
    result;
  result

let sweep_binary ?(policy = Serial.Prefixes) ?metrics ?horizon ~jobs ~algo
    ~config () =
  let horizon = Option.value horizon ~default:(Config.t config + 2) in
  let started = Exhaustive.stopwatch () in
  let shards =
    shard_results ~jobs
      (List.map
         (fun proposals () ->
           Exhaustive.sweep_prefix ~policy ~horizon ~algo ~config ~proposals
             ~prefix:[] ())
         (Exhaustive.binary_assignments config))
  in
  (* [sweep_binary] merges per-assignment results left-to-right, so the
     plain fold is already bit-identical — no violation reordering. *)
  let result =
    List.fold_left Exhaustive.merge Exhaustive.empty (List.map fst shards)
  in
  let edges = List.fold_left (fun acc (_, e) -> acc + e) 0 shards in
  Exhaustive.report_sweep metrics ~started ~domains:(max jobs 1)
    ~prefix_hits:((result.Exhaustive.runs * horizon) - edges)
    result;
  result
