open Kernel

(* Each shard is one [Exhaustive.sweep_prefix] (a first-round choice
   subtree, or one binary proposal assignment): coarse enough that domain
   overhead vanishes, numerous enough to balance across jobs. Reduction
   happens in enumeration order on the calling domain, which is what makes
   the merged result bit-identical to the serial sweep no matter which
   domain ran which shard. *)

let merge_in_order results =
  (* [Exhaustive.merge] folded left-to-right reproduces every field of the
     one-pass sweep except the violation and crashed-run orders: the serial
     DFS conses both lists as it meets them, so the final lists are the
     {e reverse} of enumeration order. Rebuild exactly that by prepending
     shard lists in shard order (each shard's list is already reversed
     within itself). *)
  let folded = List.fold_left Exhaustive.merge Exhaustive.empty results in
  {
    folded with
    Exhaustive.violations =
      List.fold_left
        (fun acc (r : Exhaustive.result) -> r.Exhaustive.violations @ acc)
        [] results;
    crashed =
      List.fold_left
        (fun acc (r : Exhaustive.result) -> r.Exhaustive.crashed @ acc)
        [] results;
  }

(* Backstop for exceptions the engine does not contain (anything outside a
   round step, e.g. a raising [Algorithm.init]): catch on the worker domain
   so [Par.map_tasks] never sees a raise — a raise there would join the
   pool and re-raise, killing the whole sweep. Each failure keeps its shard
   index and a human-readable description of the subproblem. *)
let protect ~context task () =
  try Ok (task ()) with
  | (Stack_overflow | Out_of_memory) as e -> raise e
  | e -> Error (context, Printexc.to_string e)

(* Per-shard instrumentation. Span recorders and probe accumulators are
   single-domain, so each shard gets its own (the worker that claims the
   shard is the only writer of its slot); after the join the caller absorbs
   and merges them back into the caller-owned [spans]/[prof] in shard
   order. Shard recorders share the parent's time origin and get track
   [1 + shard] so Chrome renders them as separate rows under the track-0
   "sweep" span. *)
let shard_instruments ~spans ~prof count =
  let shard_spans =
    if Obs.Span.enabled spans then
      Array.init count (fun i -> Obs.Span.child spans ~track:(i + 1))
    else [||]
  in
  let shard_accs =
    match prof with
    | Some _ -> Array.init count (fun _ -> Obs.Prof.acc ())
    | None -> [||]
  in
  let span_of i =
    if shard_spans = [||] then Obs.Span.disabled else shard_spans.(i)
  in
  let acc_of i = if shard_accs = [||] then None else Some shard_accs.(i) in
  let finalize () =
    Array.iter (fun s -> Obs.Span.absorb spans s) shard_spans;
    match prof with
    | Some into -> Array.iter (fun a -> Obs.Prof.merge ~into a) shard_accs
    | None -> ()
  in
  (span_of, acc_of, finalize)

(* The [Par.map_tasks] utilization report, folded into the metrics registry
   under [par.*] when the caller asked for metrics at all. *)
let pool_report metrics =
  Option.map (fun m -> Obs.Prof.pool m ~prefix:"par") metrics

let shard_results ?report ~jobs tasks =
  let sharded =
    Array.to_list (Par.map_tasks ?report ~jobs (Array.of_list tasks))
  in
  let oks =
    List.filter_map (function Ok r -> Some r | Error _ -> None) sharded
  in
  let failures =
    List.filter_map
      (function
        | _, Ok _ -> None
        | shard, Error (context, message) ->
            Some { Exhaustive.shard; context; message })
      (List.mapi (fun i r -> (i, r)) sharded)
  in
  (oks, failures)

let sweep ?faults ?omit_budget ?deadline ?(policy = Serial.Prefixes) ?metrics
    ?horizon ?prof ?(spans = Obs.Span.disabled)
    ?(progress = Obs.Progress.disabled) ~jobs ~algo ~config ~proposals () =
  let horizon = Option.value horizon ~default:(Config.t config + 2) in
  let started = Exhaustive.stopwatch () in
  let firsts = Dedup.first_choices ?faults ?omit_budget ~policy config in
  Obs.Progress.set_total progress (List.length firsts);
  let span_of, acc_of, finalize =
    shard_instruments ~spans ~prof (List.length firsts)
  in
  Obs.Span.enter spans "sweep";
  let shards, failures =
    shard_results ?report:(pool_report metrics) ~jobs
      (List.mapi
         (fun i first ->
           protect
             ~context:
               (Format.asprintf "first-round choice %a" Serial.pp_choice first)
             (fun () ->
               let sp = span_of i in
               let r, e =
                 Obs.Span.with_ sp
                   (Format.asprintf "shard %d: %a" i Serial.pp_choice first)
                   (fun () ->
                     Exhaustive.sweep_prefix ?faults ?omit_budget ?deadline
                       ~policy ~horizon ?prof:(acc_of i) ~spans:sp ~algo
                       ~config ~proposals ~prefix:[ first ] ())
               in
               if Obs.Progress.enabled progress then
                 Obs.Progress.step progress ~items:1 ~runs:r.Exhaustive.runs
                   ~hits:0 ~lookups:0;
               (r, e)))
         firsts)
  in
  Obs.Span.exit spans;
  finalize ();
  let result = merge_in_order (List.map fst shards) in
  let result = { result with Exhaustive.shard_failures = failures } in
  let edges = List.fold_left (fun acc (_, e) -> acc + e) 0 shards in
  Exhaustive.report_sweep metrics ~started ~domains:(max jobs 1)
    ~prefix_hits:((result.Exhaustive.runs * horizon) - edges)
    result;
  result

let sweep_binary ?faults ?omit_budget ?deadline ?(policy = Serial.Prefixes)
    ?metrics ?horizon ?prof ?(spans = Obs.Span.disabled)
    ?(progress = Obs.Progress.disabled) ~jobs ~algo ~config () =
  let horizon = Option.value horizon ~default:(Config.t config + 2) in
  let started = Exhaustive.stopwatch () in
  let assignments = Exhaustive.binary_assignments config in
  Obs.Progress.set_total progress (List.length assignments);
  let span_of, acc_of, finalize =
    shard_instruments ~spans ~prof (List.length assignments)
  in
  Obs.Span.enter spans "sweep";
  let shards, failures =
    shard_results ?report:(pool_report metrics) ~jobs
      (List.mapi
         (fun i proposals ->
           protect
             ~context:(Format.asprintf "proposal assignment #%d" i)
             (fun () ->
               let sp = span_of i in
               let r, e =
                 Obs.Span.with_ sp
                   (Printf.sprintf "shard %d" i)
                   (fun () ->
                     Exhaustive.sweep_prefix ?faults ?omit_budget ?deadline
                       ~policy ~horizon ?prof:(acc_of i) ~spans:sp ~algo
                       ~config ~proposals ~prefix:[] ())
               in
               if Obs.Progress.enabled progress then
                 Obs.Progress.step progress ~items:1 ~runs:r.Exhaustive.runs
                   ~hits:0 ~lookups:0;
               (r, e)))
         assignments)
  in
  Obs.Span.exit spans;
  finalize ();
  (* [sweep_binary] merges per-assignment results left-to-right, so the
     plain fold is already bit-identical — no violation reordering. *)
  let result =
    List.fold_left Exhaustive.merge Exhaustive.empty (List.map fst shards)
  in
  let result = { result with Exhaustive.shard_failures = failures } in
  let edges = List.fold_left (fun acc (_, e) -> acc + e) 0 shards in
  Exhaustive.report_sweep metrics ~started ~domains:(max jobs 1)
    ~prefix_hits:((result.Exhaustive.runs * horizon) - edges)
    result;
  result

(* ------------------------------------------------------------------ *)
(* Reduced (transposition-table / symmetry) parallel sweeps.

   The serial reduced sweeps were deliberately built at this module's shard
   granularity — {!Dedup.sweep_prefix} is one first-round subtree with its
   own fresh table, {!Dedup.sweep_sharded} one proposal assignment,
   {!Symmetry.sweep_orbit} one orbit — so distributing the shards across
   domains and folding them back in enumeration order reproduces the serial
   reduced result bit-identically, [distinct_runs] and {!Dedup.stats}
   included, for any [jobs]. *)

let merge_reduced_in_order shards =
  List.fold_left
    (fun (acc, stats) (r, s) -> (Dedup.combine acc r, Dedup.merge_stats stats s))
    (Exhaustive.empty, Dedup.zero_stats)
    shards

let report_reduced ?orbits metrics ~started ~jobs ~horizon ~failures
    (result, (stats : Dedup.stats)) =
  let result = { result with Exhaustive.shard_failures = failures } in
  Exhaustive.report_sweep metrics ~started ~domains:(max jobs 1)
    ~prefix_hits:((result.Exhaustive.runs * horizon) - stats.Dedup.edges)
    ~dedup:(stats.Dedup.hits, stats.Dedup.entries)
    ~arena:(stats.Dedup.snapshots, stats.Dedup.restores)
    ?orbits result;
  (result, stats)

let sweep_dedup ?faults ?omit_budget ?deadline ?(policy = Serial.Prefixes)
    ?metrics ?horizon ?prof ?(spans = Obs.Span.disabled)
    ?(progress = Obs.Progress.disabled) ~jobs ~algo ~config ~proposals () =
  let horizon = Option.value horizon ~default:(Config.t config + 2) in
  let started = Exhaustive.stopwatch () in
  let firsts = Dedup.first_choices ?faults ?omit_budget ~policy config in
  Obs.Progress.set_total progress (List.length firsts);
  let span_of, acc_of, finalize =
    shard_instruments ~spans ~prof (List.length firsts)
  in
  Obs.Span.enter spans "sweep";
  let shards, failures =
    shard_results ?report:(pool_report metrics) ~jobs
      (List.mapi
         (fun i first ->
           protect
             ~context:
               (Format.asprintf "first-round choice %a" Serial.pp_choice first)
             (fun () ->
               let sp = span_of i in
               let r, s =
                 Obs.Span.with_ sp
                   (Format.asprintf "shard %d: %a" i Serial.pp_choice first)
                   (fun () ->
                     Dedup.sweep_prefix ?faults ?omit_budget ?deadline ~policy
                       ~horizon ?prof:(acc_of i) ~spans:sp ~algo ~config
                       ~proposals ~prefix:[ first ] ())
               in
               if Obs.Progress.enabled progress then
                 Obs.Progress.step progress
                   ~distinct:r.Exhaustive.distinct_runs ~items:1
                   ~runs:r.Exhaustive.runs ~hits:s.Dedup.hits
                   ~lookups:(s.Dedup.hits + s.Dedup.misses);
               (r, s)))
         firsts)
  in
  Obs.Span.exit spans;
  finalize ();
  report_reduced metrics ~started ~jobs ~horizon ~failures
    (merge_reduced_in_order shards)

let sweep_binary_dedup ?faults ?omit_budget ?deadline
    ?(policy = Serial.Prefixes) ?metrics ?horizon ?prof
    ?(spans = Obs.Span.disabled) ?(progress = Obs.Progress.disabled) ~jobs
    ~algo ~config () =
  let horizon = Option.value horizon ~default:(Config.t config + 2) in
  let started = Exhaustive.stopwatch () in
  let assignments = Exhaustive.binary_assignments config in
  Obs.Progress.set_total progress (List.length assignments);
  let span_of, acc_of, finalize =
    shard_instruments ~spans ~prof (List.length assignments)
  in
  Obs.Span.enter spans "sweep";
  let shards, failures =
    shard_results ?report:(pool_report metrics) ~jobs
      (List.mapi
         (fun i proposals ->
           protect
             ~context:(Format.asprintf "proposal assignment #%d" i)
             (fun () ->
               let sp = span_of i in
               let r, s =
                 Obs.Span.with_ sp
                   (Printf.sprintf "shard %d" i)
                   (fun () ->
                     Dedup.sweep_sharded ?faults ?omit_budget ?deadline
                       ~policy ~horizon ?prof:(acc_of i) ~spans:sp ~algo
                       ~config ~proposals ())
               in
               if Obs.Progress.enabled progress then
                 Obs.Progress.step progress
                   ~distinct:r.Exhaustive.distinct_runs ~items:1
                   ~runs:r.Exhaustive.runs ~hits:s.Dedup.hits
                   ~lookups:(s.Dedup.hits + s.Dedup.misses);
               (r, s)))
         assignments)
  in
  Obs.Span.exit spans;
  finalize ();
  (* Per-assignment results merge with plain [Exhaustive.merge], matching
     the serial [Dedup.sweep_binary] fold. *)
  let merged =
    List.fold_left
      (fun (acc, stats) (r, s) ->
        (Exhaustive.merge acc r, Dedup.merge_stats stats s))
      (Exhaustive.empty, Dedup.zero_stats)
      shards
  in
  report_reduced metrics ~started ~jobs ~horizon ~failures merged

let sweep_binary_sym ?faults ?omit_budget ?deadline ?(policy = Serial.Prefixes)
    ?metrics ?horizon ?prof ?spans ?progress ~jobs ~algo ~config () =
  if not (Sim.Algorithm.symmetric algo) then
    sweep_binary_dedup ?faults ?omit_budget ?deadline ~policy ?metrics ?horizon
      ?prof ?spans ?progress ~jobs ~algo ~config ()
  else begin
    let spans = Option.value spans ~default:Obs.Span.disabled in
    let progress = Option.value progress ~default:Obs.Progress.disabled in
    let horizon = Option.value horizon ~default:(Config.t config + 2) in
    let started = Exhaustive.stopwatch () in
    let orbits = Symmetry.orbits config in
    Obs.Progress.set_total progress (List.length orbits);
    let span_of, acc_of, finalize =
      shard_instruments ~spans ~prof (List.length orbits)
    in
    Obs.Span.enter spans "sweep";
    let shards, failures =
      shard_results ?report:(pool_report metrics) ~jobs
        (List.mapi
           (fun i (orbit : Symmetry.orbit) ->
             protect
               ~context:
                 (Format.asprintf "orbit |ones| = %d"
                    (Pid.Set.cardinal orbit.Symmetry.ones))
               (fun () ->
                 let sp = span_of i in
                 let r, s =
                   Obs.Span.with_ sp
                     (Printf.sprintf "shard %d: |ones|=%d" i
                        (Pid.Set.cardinal orbit.Symmetry.ones))
                     (fun () ->
                       Symmetry.sweep_orbit ?faults ?omit_budget ?deadline
                         ~policy ~horizon ?prof:(acc_of i) ~spans:sp ~algo
                         ~config ~orbit ())
                 in
                 if Obs.Progress.enabled progress then
                   Obs.Progress.step progress
                     ~distinct:r.Exhaustive.distinct_runs ~items:1
                     ~runs:r.Exhaustive.runs ~hits:s.Dedup.hits
                     ~lookups:(s.Dedup.hits + s.Dedup.misses);
                 (r, s)))
           orbits)
    in
    Obs.Span.exit spans;
    finalize ();
    let merged =
      List.fold_left
        (fun (acc, stats) (r, s) ->
          (Exhaustive.merge acc r, Dedup.merge_stats stats s))
        (Exhaustive.empty, Dedup.zero_stats)
        shards
    in
    report_reduced ~orbits:(List.length orbits) metrics ~started ~jobs ~horizon
      ~failures merged
  end
