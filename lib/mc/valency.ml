open Kernel

type t = Zero | One | Bivalent

let pp ppf = function
  | Zero -> Format.pp_print_string ppf "0-valent"
  | One -> Format.pp_print_string ppf "1-valent"
  | Bivalent -> Format.pp_print_string ppf "bivalent"

let equal a b =
  match (a, b) with
  | Zero, Zero | One, One | Bivalent, Bivalent -> true
  | _ -> false

(* Survivor set and crash budget left after a choice prefix. *)
let after_prefix config prefix =
  List.fold_left
    (fun (alive, left) choice ->
      match choice with
      | Serial.No_crash | Serial.Send_omit _ | Serial.Recv_omit _ ->
          (alive, left)
      | Serial.Crash { victim; _ } -> (Pid.Set.remove victim alive, left - 1))
    (Pid.Set.universe ~n:(Config.n config), Config.t config)
    prefix

exception Both_reachable

let of_partial ?(policy = Serial.Prefixes) ?extension_rounds ~algo ~config
    ~proposals prefix =
  let extension_rounds =
    Option.value extension_rounds ~default:(Config.t config + 2)
  in
  let saw_zero = ref false and saw_one = ref false in
  let observe choices =
    let schedule = Serial.to_schedule config choices in
    let trace = Sim.Runner.run algo config ~proposals schedule in
    match Sim.Trace.decided_values trace with
    | [] ->
        invalid_arg
          "Valency.of_partial: a serial extension reached no decision"
    | v :: _ ->
        if Value.equal v Value.zero then saw_zero := true else saw_one := true;
        if !saw_zero && !saw_one then raise Both_reachable
  in
  let rec explore depth alive left suffix_rev =
    if depth = 0 then observe (prefix @ List.rev suffix_rev)
    else
      List.iter
        (fun choice ->
          let alive', left' =
            match choice with
            | Serial.No_crash | Serial.Send_omit _ | Serial.Recv_omit _ ->
                (alive, left)
            | Serial.Crash { victim; _ } ->
                (Pid.Set.remove victim alive, left - 1)
          in
          explore (depth - 1) alive' left' (choice :: suffix_rev))
        (Serial.choices ~policy ~alive ~crashes_left:left ())
  in
  let alive, left = after_prefix config prefix in
  match explore extension_rounds alive left [] with
  | () ->
      if !saw_zero && !saw_one then Bivalent
      else if !saw_zero then Zero
      else if !saw_one then One
      else invalid_arg "Valency.of_partial: no serial extension decided"
  | exception Both_reachable -> Bivalent

exception Found_assignment of Value.t Pid.Map.t

let bivalent_initial ?policy ~algo ~config () =
  let n = Config.n config in
  match
    List.iter
      (fun ones ->
        let proposals =
          Sim.Runner.binary_proposals config ~ones:(Pid.Set.of_list ones)
        in
        match of_partial ?policy ~algo ~config ~proposals [] with
        | Bivalent -> raise (Found_assignment proposals)
        | Zero | One -> ())
      (Listx.subsets (Pid.all ~n))
  with
  | () -> None
  | exception Found_assignment proposals -> Some proposals

exception Found_prefix of Serial.choice list

let bivalent_at ?(policy = Serial.Prefixes) ~algo ~config ~proposals k =
  let rec explore depth alive left prefix_rev =
    if depth = 0 then begin
      let prefix = List.rev prefix_rev in
      match of_partial ~policy ~algo ~config ~proposals prefix with
      | Bivalent -> raise (Found_prefix prefix)
      | Zero | One -> ()
    end
    else
      List.iter
        (fun choice ->
          let alive', left' =
            match choice with
            | Serial.No_crash | Serial.Send_omit _ | Serial.Recv_omit _ ->
                (alive, left)
            | Serial.Crash { victim; _ } ->
                (Pid.Set.remove victim alive, left - 1)
          in
          explore (depth - 1) alive' left' (choice :: prefix_rev))
        (Serial.choices ~policy ~alive ~crashes_left:left ())
  in
  match
    explore k
      (Pid.Set.universe ~n:(Config.n config))
      (Config.t config) []
  with
  | () -> None
  | exception Found_prefix prefix -> Some prefix

let frontier ?(policy = Serial.Prefixes) ?max_k ~algo ~config ~proposals () =
  let max_k = Option.value max_k ~default:(Config.t config + 2) in
  (* Bivalence at k implies bivalence at k-1 (the prefix of a bivalent
     partial run is bivalent), so scan upward until it first disappears. *)
  let rec scan k best =
    if k > max_k then best
    else
      match bivalent_at ~policy ~algo ~config ~proposals k with
      | Some witness -> scan (k + 1) (k, witness)
      | None -> best
  in
  match bivalent_at ~policy ~algo ~config ~proposals 0 with
  | None -> (-1, [])
  | Some w -> scan 1 (0, w)
