open Kernel
module J = Obs.Json

type reduce = Rnone | Rdedup
type scope = Fixed of Value.t Pid.Map.t | Binary

type spec = {
  faults : Sim.Model.faults;
  omit_budget : int option;
  policy : Serial.policy;
  horizon : int option;
  algo : Sim.Algorithm.packed;
  config : Config.t;
  reduce : reduce;
  scope : scope;
  table_cap : int option;
  spill_dir : string option;
}

let horizon_of spec =
  Option.value spec.horizon ~default:(Config.t spec.config + 2)

let firsts spec =
  Dedup.first_choices ~faults:spec.faults ?omit_budget:spec.omit_budget
    ~policy:spec.policy spec.config

let total_tasks spec =
  match spec.scope with
  | Fixed _ -> List.length (firsts spec)
  | Binary -> List.length (Exhaustive.binary_assignments spec.config)

let task_context spec i =
  match spec.scope with
  | Fixed _ ->
      Format.asprintf "first-round choice %a" Serial.pp_choice
        (List.nth (firsts spec) i)
  | Binary -> Printf.sprintf "proposal assignment #%d" i

let run_task ?deadline spec i =
  let horizon = horizon_of spec in
  match (spec.scope, spec.reduce) with
  | Fixed proposals, Rnone ->
      let first = List.nth (firsts spec) i in
      let result, edges =
        Exhaustive.sweep_prefix ~faults:spec.faults
          ?omit_budget:spec.omit_budget ?deadline ~policy:spec.policy ~horizon
          ~algo:spec.algo ~config:spec.config ~proposals ~prefix:[ first ] ()
      in
      { Checkpoint.task = i; result; stats = None; edges }
  | Fixed proposals, Rdedup ->
      let first = List.nth (firsts spec) i in
      let result, stats =
        Dedup.sweep_prefix ~faults:spec.faults ?omit_budget:spec.omit_budget
          ?deadline ~policy:spec.policy ~horizon ?table_cap:spec.table_cap
          ?spill_dir:spec.spill_dir ~algo:spec.algo ~config:spec.config
          ~proposals ~prefix:[ first ] ()
      in
      {
        Checkpoint.task = i;
        result;
        stats = Some stats;
        edges = stats.Dedup.edges;
      }
  | Binary, Rnone ->
      let proposals = List.nth (Exhaustive.binary_assignments spec.config) i in
      let result, edges =
        Exhaustive.sweep_prefix ~faults:spec.faults
          ?omit_budget:spec.omit_budget ?deadline ~policy:spec.policy ~horizon
          ~algo:spec.algo ~config:spec.config ~proposals ~prefix:[] ()
      in
      { Checkpoint.task = i; result; stats = None; edges }
  | Binary, Rdedup ->
      let proposals = List.nth (Exhaustive.binary_assignments spec.config) i in
      let result, stats =
        Dedup.sweep_sharded ~faults:spec.faults ?omit_budget:spec.omit_budget
          ?deadline ~policy:spec.policy ~horizon ?table_cap:spec.table_cap
          ?spill_dir:spec.spill_dir ~algo:spec.algo ~config:spec.config
          ~proposals ()
      in
      {
        Checkpoint.task = i;
        result;
        stats = Some stats;
        edges = stats.Dedup.edges;
      }

let merge_entries spec entries =
  let results = List.map (fun e -> e.Checkpoint.result) entries in
  let edges =
    List.fold_left (fun acc e -> acc + e.Checkpoint.edges) 0 entries
  in
  let stats =
    match spec.reduce with
    | Rnone -> None
    | Rdedup ->
        Some
          (List.fold_left
             (fun acc e ->
               Dedup.merge_stats acc
                 (Option.value ~default:Dedup.zero_stats e.Checkpoint.stats))
             Dedup.zero_stats entries)
  in
  let result =
    match (spec.scope, spec.reduce) with
    | Fixed _, Rnone -> Parallel.merge_in_order results
    | Fixed _, Rdedup -> List.fold_left Dedup.combine Exhaustive.empty results
    | Binary, _ -> List.fold_left Exhaustive.merge Exhaustive.empty results
  in
  (result, stats, edges)

type run = {
  result : Exhaustive.result;
  stats : Dedup.stats option;
  edges : int;
  completed : Checkpoint.entry list;
  total_tasks : int;
  partial : bool;
  sup_metrics : Supervise.metrics option;
}

(* ------------------------------------------------------------------ *)
(* Shared driver plumbing                                              *)

let entry_to_frame = Checkpoint.entry_to_json
let entry_of_frame = Checkpoint.entry_of_json

let validate_resume resume ~params ~total =
  match resume with
  | None -> Ok []
  | Some (ck : Checkpoint.t) -> (
      match Checkpoint.compatible ck ~params with
      | Error _ as e -> e
      | Ok () ->
          if ck.total_tasks <> total then
            Error
              (Printf.sprintf
                 "checkpoint: task count mismatch (snapshot has %d, this sweep \
                  has %d)"
                 ck.total_tasks total)
          else Ok ck.completed)

let save_checkpoint ~checkpoint ~params ~total completed =
  match checkpoint with
  | None -> ()
  | Some (path, _) ->
      Checkpoint.save ~path
        {
          Checkpoint.commit = Checkpoint.current_commit ();
          params;
          total_tasks = total;
          completed;
        }

let step_progress progress (e : Checkpoint.entry) =
  if Obs.Progress.enabled progress then
    let hits, lookups =
      match e.stats with
      | Some s -> (s.Dedup.hits, s.Dedup.hits + s.Dedup.misses)
      | None -> (0, 0)
    in
    (* [distinct] only when a reduction ran: unreduced entries have
       [distinct_runs = runs], which would merely relabel the rate. *)
    let distinct =
      match e.stats with
      | Some _ -> e.result.Exhaustive.distinct_runs
      | None -> 0
    in
    Obs.Progress.step progress ~distinct ~items:1
      ~runs:e.result.Exhaustive.runs ~hits ~lookups

(* ------------------------------------------------------------------ *)
(* Serial checkpointed driver                                          *)

let run_serial ?resume ?checkpoint ?(should_stop = fun () -> false) ?deadline
    ?(progress = Obs.Progress.disabled) ~params spec =
  let total = total_tasks spec in
  match validate_resume resume ~params ~total with
  | Error _ as e -> e
  | Ok resumed ->
      Obs.Progress.set_total progress total;
      List.iter (step_progress progress) resumed;
      let done_set = Hashtbl.create 16 in
      List.iter
        (fun (e : Checkpoint.entry) -> Hashtbl.replace done_set e.task ())
        resumed;
      let completed = ref (List.rev resumed) in
      (* newest-first; ascending task order is restored on save/merge *)
      let since_save = ref 0 in
      let every = match checkpoint with Some (_, n) -> max 1 n | None -> 1 in
      let save () =
        save_checkpoint ~checkpoint ~params ~total (List.rev !completed)
      in
      let expired_fragment = ref None in
      let partial = ref false in
      let i = ref 0 in
      while (not !partial) && !i < total do
        let task = !i in
        incr i;
        if not (Hashtbl.mem done_set task) then
          if should_stop () then partial := true
          else if
            match deadline with
            | Some d -> Unix.gettimeofday () > d
            | None -> false
          then partial := true
          else begin
            let entry = run_task ?deadline spec task in
            if entry.result.Exhaustive.expired then begin
              (* Keep the fragment for faithful PARTIAL display, but never
                 persist it: the task reruns whole on resume. *)
              expired_fragment := Some entry;
              partial := true
            end
            else begin
              completed := entry :: !completed;
              step_progress progress entry;
              incr since_save;
              if !since_save >= every then begin
                save ();
                since_save := 0
              end
            end
          end
      done;
      save ();
      let entries = List.rev !completed in
      let display_entries =
        match !expired_fragment with
        | Some frag -> entries @ [ frag ]
        | None -> entries
      in
      let result, stats, edges = merge_entries spec display_entries in
      Ok
        {
          result;
          stats;
          edges;
          completed = entries;
          total_tasks = total;
          partial = !partial;
          sup_metrics = None;
        }

(* ------------------------------------------------------------------ *)
(* Supervised multi-process driver                                     *)

let run_supervised ?resume ?checkpoint ?(should_stop = fun () -> false) ?chaos
    ?chunk_timeout ?max_retries ?(progress = Obs.Progress.disabled) ~workers
    ~worker_argv ~params spec =
  let total = total_tasks spec in
  match validate_resume resume ~params ~total with
  | Error _ as e -> e
  | Ok resumed ->
      Obs.Progress.set_total progress total;
      List.iter (step_progress progress) resumed;
      let done_set = Hashtbl.create 16 in
      List.iter
        (fun (e : Checkpoint.entry) -> Hashtbl.replace done_set e.task ())
        resumed;
      let pending =
        List.filter
          (fun t -> not (Hashtbl.mem done_set t))
          (List.init total Fun.id)
      in
      let entries = ref resumed in
      let bad_frames = ref [] in
      let every = match checkpoint with Some (_, n) -> max 1 n | None -> 1 in
      let since_save = ref 0 in
      let sorted () =
        List.sort
          (fun (a : Checkpoint.entry) (b : Checkpoint.entry) ->
            compare a.task b.task)
          !entries
      in
      let on_result ~task payload =
        match entry_of_frame payload with
        | Error msg -> bad_frames := (task, msg) :: !bad_frames
        | Ok entry ->
            entries := entry :: !entries;
            step_progress progress entry;
            incr since_save;
            if !since_save >= every then begin
              save_checkpoint ~checkpoint ~params ~total (sorted ());
              since_save := 0
            end
      in
      let prog =
        match worker_argv with
        | prog :: _ -> prog
        | [] -> invalid_arg "Distrib.run_supervised: empty worker_argv"
      in
      let spawn () = Proc.spawn ~prog ~args:worker_argv in
      let outcome =
        Supervise.run ?chaos ~should_stop ~on_result ?chunk_timeout
          ?max_retries ~workers ~spawn ~tasks:pending ()
      in
      let entries = sorted () in
      save_checkpoint ~checkpoint ~params ~total entries;
      let failures =
        List.sort compare
          (List.map
             (fun (task, msg) ->
               ( task,
                 Printf.sprintf "bad result frame: %s" msg ))
             !bad_frames
          @ outcome.Supervise.failed)
        |> List.map (fun (task, message) ->
               {
                 Exhaustive.shard = task;
                 context = task_context spec task;
                 message;
               })
      in
      let result, stats, edges = merge_entries spec entries in
      let result = { result with Exhaustive.shard_failures = failures } in
      let partial = outcome.Supervise.interrupted <> [] in
      Ok
        {
          result;
          stats;
          edges;
          completed = entries;
          total_tasks = total;
          partial;
          sup_metrics = Some outcome.Supervise.metrics;
        }

(* ------------------------------------------------------------------ *)
(* Worker side                                                         *)

let worker_loop spec ic oc =
  let total = total_tasks spec in
  let rec go () =
    match Obs.Wire.read ic with
    | Error Obs.Wire.Eof -> ()
    | Error err ->
        failwith (Format.asprintf "sweep-worker: %a" Obs.Wire.pp_error err)
    | Ok json -> (
        if Option.is_some (J.member "shutdown" json) then ()
        else
          match Option.bind (J.member "task" json) J.to_int_opt with
          | Some i when i >= 0 && i < total ->
              let entry = run_task spec i in
              Obs.Wire.write oc (entry_to_frame entry);
              go ()
          | _ -> failwith "sweep-worker: malformed task frame")
  in
  go ()
