(** Valency analysis of serial partial runs — the machinery of the
    lower-bound proof (Section 2), made executable for small systems.

    A [k]-round serial partial run is {e 0-valent} ({e 1-valent}) if every
    serial extension decides 0 (resp. 1), and {e bivalent} if both decision
    values are reachable. The proof of Proposition 1 hinges on how long an
    adversary can keep a partial run bivalent:

    - Lemma 3: some initial configuration is bivalent;
    - Lemma 4: some [(t-1)]-round serial partial run is bivalent;
    - Lemma 2/5: for an algorithm that globally decides at [t+1] in every
      serial run, every [t]-round serial partial run must be univalent — and
      the proof derives a contradiction from that using ES runs.

    The {!frontier} of an algorithm is the largest [k] for which a bivalent
    [k]-round serial partial run exists. Lemma 4 puts it at [>= t - 1] for
    every consensus algorithm; for the algorithms here it is exactly
    [t - 1]: after round [t] every serial partial run is univalent, yet the
    paper shows that a [t+1]-round decider is still unsafe, because at round
    [t + 1] some process cannot distinguish the univalent serial run it is
    in from an {e asynchronous} ES run with the opposite decision — see
    {!Attack}. That indistinguishability across the serial/ES boundary, not
    serial bivalency itself, is where the extra round is lost. *)

open Kernel

type t = Zero | One | Bivalent

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val of_partial :
  ?policy:Serial.policy ->
  ?extension_rounds:int ->
  algo:Sim.Algorithm.packed ->
  config:Config.t ->
  proposals:Value.t Pid.Map.t ->
  Serial.choice list ->
  t
(** The valency of the serial partial run defined by the choice prefix, over
    binary proposals. Serial extensions are explored with further adversary
    choices for [extension_rounds] more rounds (default [t + 2] — beyond
    any decision round of the algorithms here) and crash-free afterwards.
    Raises [Invalid_argument] if no extension decides (non-binary inputs or
    a non-terminating algorithm). *)

val bivalent_initial :
  ?policy:Serial.policy ->
  algo:Sim.Algorithm.packed ->
  config:Config.t ->
  unit ->
  Value.t Pid.Map.t option
(** A binary proposal assignment whose initial configuration is bivalent
    (Lemma 3 promises one for 0 < t). *)

val bivalent_at :
  ?policy:Serial.policy ->
  algo:Sim.Algorithm.packed ->
  config:Config.t ->
  proposals:Value.t Pid.Map.t ->
  int ->
  Serial.choice list option
(** [bivalent_at ... k] is a bivalent [k]-round serial partial run extending
    the given initial configuration, if one exists. *)

val frontier :
  ?policy:Serial.policy ->
  ?max_k:int ->
  algo:Sim.Algorithm.packed ->
  config:Config.t ->
  proposals:Value.t Pid.Map.t ->
  unit ->
  int * Serial.choice list
(** The largest [k <= max_k] (default [t + 2]) with a bivalent [k]-round
    serial partial run, together with a witness; [(-1, [])] when even the
    initial configuration is univalent. *)
