(** The serial adversary's transition system, interned.

    The arena DFS ({!Exhaustive.sweep_prefix}, {!Dedup.sweep_prefix})
    revisits semantically identical adversary states constantly — budgets
    and victim pools converge after a few rounds — and everything the
    immutable DFS used to recompute per edge is a pure function of that
    state: the choice menu, each choice's compiled round plan, the
    successor adversary, the canonical bitset mirrors the dedup keys need,
    and the leaf schedule the properties are judged against. A menu
    computes each of these once per {e distinct} adversary state; a warm
    edge costs two array loads and allocates nothing.

    Ownership matches the arena's: one menu per shard, one domain, never
    shared. *)

open Kernel

type node = {
  adv : Serial.adversary;
  choices : Serial.choice array;
      (** in {!Serial.adversary_choices} order — the DFS visiting
          [choices] left to right reproduces the immutable sweep's
          exploration order exactly *)
  plans : Sim.Schedule.compiled_plan array;
      (** [plans.(i)] is [choices.(i)]'s round plan, precompiled *)
  nexts : node option array;  (** memoized {!child} slots *)
  aliveb : Bitset.Big.t;  (** [adv.alive], canonical *)
  sendb : Bitset.Big.t;  (** [adv.send_omitters], canonical *)
  recvb : Bitset.Big.t;  (** [adv.recv_omitters], canonical *)
  leaf_schedule : Sim.Schedule.t;
      (** the plan-free schedule declaring this state's omitters (shared
          empty schedule when there are none) — what a run terminating in
          this adversary state is checked against *)
}

type t

val create :
  ?faults:Sim.Model.faults -> ?omit_budget:int -> policy:Serial.policy ->
  Config.t -> t
(** An empty menu. [faults] defaults to [Crash_only]; [omit_budget]
    defaults as in {!Serial.initial}. Nodes are interned on demand. *)

val root : t -> node
(** The node for {!Serial.initial}'s adversary state. *)

val node_of : t -> Serial.adversary -> node
(** Intern an arbitrary adversary state — the sweeps use this for the node
    at the end of a replayed prefix. Keyed on the canonical
    (alive, send-omitters, receive-omitters, crashes left, omissions left)
    tuple, so structurally different but equal [Pid.Set]s land on the same
    node. *)

val child : t -> node -> int -> node
(** [child t node i] is the node after taking [node.choices.(i)];
    memoized in [node.nexts]. *)
