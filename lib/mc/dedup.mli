(** Transposition-table (dedup) sweeps: exact state-space reduction.

    The incremental DFS of {!Exhaustive.sweep_incremental} re-explores
    subtrees that are reachable from {e identical global states} via
    different choice prefixes — e.g. crashing [p1] in round 1 versus
    round 2 after it has already halted, or any two prefixes whose victims'
    messages were all delivered anyway. This module memoises whole subtree
    {e results} in a table keyed on

    [(remaining depth, crash budget, alive victim set, declared
      send/receive-omitter sets, omission budget,
      {!Sim.Engine.Make.Incremental.fingerprint})]

    so each distinct [(key)] subtree is evaluated once. The memoised
    fragments store their witness/violation/crashed choice lists relative
    to the subtree root; on a hit the current prefix is prepended, which
    keeps every field of the final {!Exhaustive.result} — aggregates,
    orders of the [violations]/[crashed] lists, the max witness —
    {e bit-identical} to the unreduced sweep. Only the new
    [distinct_runs] differs: it counts leaves actually evaluated, while
    [runs] still counts every run of the full enumeration.

    The reduction is {e exact}, not probabilistic: keys are compared with
    full structural equality (the hash only routes to a bucket), so a
    collision can never alias two different states. Budget and alive set
    are part of the key because they are not derivable from the engine
    state — crashing an already-halted process spends budget invisibly.

    Each first-round subtree gets a fresh table — the same granularity
    {!Parallel} shards at — so serial and parallel reduced sweeps agree on
    every field including [distinct_runs] and {!stats} for any [--jobs]. *)

open Kernel

type stats = {
  hits : int;  (** subtrees answered from the table *)
  misses : int;  (** subtrees computed and stored *)
  entries : int;  (** keys stored, summed over the per-shard tables *)
  edges : int;  (** engine rounds actually stepped *)
  spilled : int;
      (** entries written to the disk overflow ({!Spill}) after the
          in-memory table reached its cap; 0 for uncapped sweeps *)
  snapshots : int;
      (** arena branch-point snapshots taken
          ({!Sim.Engine.Make.Arena.save}), summed over shards *)
  restores : int;  (** arena rewinds ({!Sim.Engine.Make.Arena.restore}) *)
}

val zero_stats : stats
val merge_stats : stats -> stats -> stats

val combine : Exhaustive.result -> Exhaustive.result -> Exhaustive.result
(** [combine acc later] — {!Exhaustive.merge} with the serial list-order
    convention: the one-pass DFS conses violations and crashed runs as it
    meets them, so its final lists are the reverse of enumeration order
    and a {e later} sibling subtree's lists must land in front of [acc]'s.
    Folding subtree fragments with [combine] in enumeration order is what
    keeps reduced sweeps bit-identical to unreduced ones. *)

val hit_rate : stats -> float
(** [hits / (hits + misses)], [0.] when nothing was explored. *)

val first_choices :
  ?faults:Sim.Model.faults ->
  ?omit_budget:int ->
  ?policy:Serial.policy ->
  Config.t ->
  Serial.choice list
(** The first-round choices a full sweep shards over (policy default
    [Prefixes], fault menu default [Crash_only]) — what drivers use to
    size progress totals and {!Parallel} uses as shard roots. *)

val pp_stats : Format.formatter -> stats -> unit

val sweep :
  ?faults:Sim.Model.faults ->
  ?omit_budget:int ->
  ?deadline:float ->
  ?policy:Serial.policy ->
  ?metrics:Obs.Metrics.t ->
  ?horizon:int ->
  ?prof:Obs.Prof.acc ->
  ?spans:Obs.Span.t ->
  ?progress:Obs.Progress.t ->
  ?table_cap:int ->
  ?spill_dir:string ->
  algo:Sim.Algorithm.packed ->
  config:Config.t ->
  proposals:Value.t Pid.Map.t ->
  unit ->
  Exhaustive.result * stats
(** {!Exhaustive.sweep_incremental} with the transposition table:
    bit-identical on every field except [distinct_runs]. Reports the same
    metrics plus [mc.dedup_hits] / [mc.dedup_entries] /
    [mc.distinct_runs].

    Instrumentation (default-off, never affects the result): [prof]
    accumulates per-round GC deltas over the distinct work only (table
    hits cost nothing, so they record nothing); [spans] nests
    ["sweep" > "shard <choice>" > "run"]; [progress] steps once per
    first-round shard with the shard's run count and table hit/lookup
    deltas, with the total set up front.

    Memory bounding (default-off, never affects the result): [table_cap]
    caps each per-shard table's in-memory entries; once reached, new
    entries go to a {!Spill} store under [spill_dir] (per shard, deleted
    when the shard finishes) — or, with no [spill_dir], are dropped, which
    only costs future hits. Both lookups still count as table hits, so
    [stats] stay comparable across caps. *)

val sweep_binary :
  ?faults:Sim.Model.faults ->
  ?omit_budget:int ->
  ?deadline:float ->
  ?policy:Serial.policy ->
  ?metrics:Obs.Metrics.t ->
  ?horizon:int ->
  ?prof:Obs.Prof.acc ->
  ?spans:Obs.Span.t ->
  ?progress:Obs.Progress.t ->
  ?table_cap:int ->
  ?spill_dir:string ->
  algo:Sim.Algorithm.packed ->
  config:Config.t ->
  unit ->
  Exhaustive.result * stats
(** {!sweep} over all [2^n] binary assignments (fresh tables per
    assignment and first-round choice); bit-identical to
    {!Exhaustive.sweep_binary_incremental} except [distinct_runs].
    [progress]'s total is [2^n * first-round choices]. *)

val sweep_prefix :
  ?faults:Sim.Model.faults ->
  ?omit_budget:int ->
  ?deadline:float ->
  ?policy:Serial.policy ->
  ?horizon:int ->
  ?prof:Obs.Prof.acc ->
  ?spans:Obs.Span.t ->
  ?table_cap:int ->
  ?spill_dir:string ->
  algo:Sim.Algorithm.packed ->
  config:Config.t ->
  proposals:Value.t Pid.Map.t ->
  prefix:Serial.choice list ->
  unit ->
  Exhaustive.result * stats
(** The sharding unit (one table, one pinned subtree) — what {!Parallel}
    distributes across domains; reports no metrics itself. Folding the
    first-round shards in order with the serial list-order convention
    yields exactly {!sweep}. [prof]/[spans] follow
    {!Exhaustive.sweep_prefix}: per-round measures and per-distinct-leaf
    ["run"] spans, single-domain. *)

val sweep_sharded :
  ?faults:Sim.Model.faults ->
  ?omit_budget:int ->
  ?deadline:float ->
  ?policy:Serial.policy ->
  ?horizon:int ->
  ?prof:Obs.Prof.acc ->
  ?spans:Obs.Span.t ->
  ?progress:Obs.Progress.t ->
  ?table_cap:int ->
  ?spill_dir:string ->
  algo:Sim.Algorithm.packed ->
  config:Config.t ->
  proposals:Value.t Pid.Map.t ->
  unit ->
  Exhaustive.result * stats
(** {!sweep} without the metrics reporting or timing — the per-assignment
    unit {!sweep_binary} and {!Symmetry} build on. Steps [progress] per
    first-round shard but never sets its total (the top-level driver
    does). *)
