open Kernel

type orbit = {
  ones : Pid.Set.t;
  proposals : Value.t Pid.Map.t;
  multiplicity : int;
}

(* Exact small binomial: the running product of [i] consecutive integers is
   divisible by [i!], so every intermediate division is integral. *)
let choose n k =
  if k < 0 || k > n then 0
  else
    let k = min k (n - k) in
    let rec go acc i = if i > k then acc else go (acc * (n - k + i) / i) (i + 1) in
    go 1 1

let orbits config =
  let n = Config.n config in
  List.init (n + 1) (fun k ->
      let ones = Pid.Set.of_list (List.init k (fun i -> Pid.of_int (i + 1))) in
      {
        ones;
        proposals = Sim.Runner.binary_proposals config ~ones;
        multiplicity = choose n k;
      })

let scale m (r : Exhaustive.result) =
  {
    r with
    Exhaustive.runs = r.Exhaustive.runs * m;
    undecided_runs = r.Exhaustive.undecided_runs * m;
  }

let sweep_orbit ?faults ?omit_budget ?deadline ?policy ?horizon ?prof ?spans
    ?progress ~algo ~config ~orbit () =
  let r, stats =
    Dedup.sweep_sharded ?faults ?omit_budget ?deadline ?policy ?horizon ?prof
      ?spans ?progress ~algo ~config ~proposals:orbit.proposals ()
  in
  (scale orbit.multiplicity r, stats)

let sweep_orbits ?faults ?omit_budget ?deadline ?policy ?horizon ?prof
    ?(spans = Obs.Span.disabled) ?progress ~algo ~config () =
  List.map
    (fun orbit ->
      let one () =
        sweep_orbit ?faults ?omit_budget ?deadline ?policy ?horizon ?prof
          ~spans ?progress ~algo ~config ~orbit ()
      in
      let r, stats =
        if Obs.Span.enabled spans then
          Obs.Span.with_ spans
            (Printf.sprintf "orbit |ones|=%d" (Pid.Set.cardinal orbit.ones))
            one
        else one ()
      in
      (orbit, r, stats))
    (orbits config)

let sweep_binary ?faults ?omit_budget ?deadline ?policy ?metrics ?horizon
    ?prof ?(spans = Obs.Span.disabled) ?(progress = Obs.Progress.disabled)
    ~algo ~config () =
  if not (Sim.Algorithm.symmetric algo) then
    Dedup.sweep_binary ?faults ?omit_budget ?deadline ?policy ?metrics ?horizon
      ?prof ~spans ~progress ~algo ~config ()
  else begin
    let horizon = Option.value horizon ~default:(Config.t config + 2) in
    let started = Exhaustive.stopwatch () in
    Obs.Progress.set_total progress
      ((Config.n config + 1)
      * List.length (Dedup.first_choices ?faults ?omit_budget ?policy config));
    let per_orbit =
      Obs.Span.with_ spans "sweep" (fun () ->
          sweep_orbits ?faults ?omit_budget ?deadline ?policy ~horizon ?prof
            ~spans ~progress ~algo ~config ())
    in
    let result, stats =
      List.fold_left
        (fun (acc, stats) (_, r, s) ->
          (Exhaustive.merge acc r, Dedup.merge_stats stats s))
        (Exhaustive.empty, Dedup.zero_stats)
        per_orbit
    in
    Exhaustive.report_sweep metrics ~started
      ~prefix_hits:((result.Exhaustive.runs * horizon) - stats.Dedup.edges)
      ~dedup:(stats.Dedup.hits, stats.Dedup.entries)
      ~arena:(stats.Dedup.snapshots, stats.Dedup.restores)
      ~orbits:(List.length per_orbit) result;
    (result, stats)
  end
