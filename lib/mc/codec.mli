(** JSON codecs for sweep results — the vocabulary of the crash-safety
    layer.

    Everything that crosses a process boundary ({!Distrib}'s worker
    protocol) or a crash boundary ({!Checkpoint} snapshot files) is encoded
    here, so the wire format and the snapshot format cannot drift apart.
    Decoders are total: every shape mismatch is an [Error] with a message
    naming the offending field, never an exception.

    Encodings are {e canonical}: process sets serialize as their sorted
    element lists, so two structurally different but equal [Pid.Set.t]
    trees (an incrementally-built AVL tree versus [of_list]'s) encode to
    the same bytes. That makes {!result_equal} — equality of encodings —
    the right notion of "bit-identical aggregates" across processes:
    polymorphic equality on decoded results would be unsound, canonical
    encodings are not. *)

val choice_to_json : Serial.choice -> Obs.Json.t
val choice_of_json : Obs.Json.t -> (Serial.choice, string) result

val violation_to_json : Sim.Props.violation -> Obs.Json.t
val violation_of_json : Obs.Json.t -> (Sim.Props.violation, string) result

val step_error_to_json : Sim.Engine.step_error -> Obs.Json.t
val step_error_of_json : Obs.Json.t -> (Sim.Engine.step_error, string) result

val stats_to_json : Dedup.stats -> Obs.Json.t
val stats_of_json : Obs.Json.t -> (Dedup.stats, string) result

val result_to_json : Exhaustive.result -> Obs.Json.t
(** The full record. [min_decision = max_int] (no run decided) encodes as
    [null] rather than a 63-bit integer literal, keeping snapshots readable
    and parsers honest. *)

val result_of_json : Obs.Json.t -> (Exhaustive.result, string) result

val result_equal : Exhaustive.result -> Exhaustive.result -> bool
(** Equality of canonical encodings — what "bit-identical" means whenever
    one side of the comparison crossed a process or crash boundary. *)
