(** The attack side of the lower bound: turning "too fast in synchronous
    runs" into a concrete ES agreement violation.

    Proposition 1 says no ES algorithm can globally decide at [t + 1] in
    every synchronous run. Its proof builds indistinguishable runs — a
    synchronous run and an asynchronous one that some process cannot tell
    apart at the end of round [t + 1] — and lets them decide differently.
    This module realises that construction {e executably} against
    FloodSetWS, the canonical algorithm that does decide at [t + 1] in every
    synchronous run, and provides a randomized violation search usable
    against any algorithm.

    The deterministic witness follows the proof's recipe:
    - rounds [1 .. t-1]: a chain of crashes carries the minority value 0
      from [p_1] to [p_t] while hiding it from everyone else — after round
      [t - 1] only [p_t] (correct!) holds 0;
    - round [t]: [p_t]'s message is {e delayed} to everyone but [p_{t+1}]
      — the other processes falsely suspect [p_t], exactly the
      suspicion-vs-crash ambiguity of ES;
    - round [t + 1]: [p_{t+1}] crashes, its message reaching only [p_t].

    At the end of round [t + 1], [p_t] has seen no accusation it believes
    and decides 0; every process [p_j] ([j >= t + 2]) has [p_t] in its
    suspicion set, excludes [p_t]'s estimate, and decides 1. Uniform
    agreement is violated — in a legal ES run (the delayed messages arrive
    at round [t + 2]; every process received [n - t] messages every round).
    An indulgent algorithm must therefore not decide at [t + 1], and the
    extra round it spends is the inherent price of indulgence. *)

open Kernel

type report = {
  algorithm : string;
  config : Config.t;
  proposals : Value.t Pid.Map.t;
  schedule : Sim.Schedule.t;
  trace : Sim.Trace.t;
  violations : Sim.Props.violation list;  (** non-empty = attack succeeded *)
}

val pp_report : Format.formatter -> report -> unit

val witness_schedule : Config.t -> Sim.Schedule.t
(** The proof-guided ES schedule described above ([0 < t < n/2]). *)

val witness_proposals : Config.t -> Value.t Pid.Map.t
(** [p_1] proposes 0, everyone else proposes 1. *)

val floodset_ws_witness : Config.t -> report
(** Run FloodSetWS under the witness: the report's [violations] contains the
    uniform-agreement violation (asserted by the test suite for every
    [0 < t < n/2] up to n = 9). *)

val run_witness : Sim.Algorithm.packed -> Config.t -> report
(** The same schedule against any algorithm — e.g. [A_{t+2}] survives it. *)

val solo_split_schedule : ?rounds:int -> Config.t -> Sim.Schedule.t
(** The crash-free split attack: every message from [p_1] in rounds
    [1 .. rounds] (default [t + 1]) is delayed to round [rounds + 1], so
    [p_1] is falsely suspected throughout while seeing everyone. Against
    cumulative flooding (FloodSet) this is the minimal ES counterexample:
    [p_1] decides its own minority value at [t + 1], everybody else decides
    without ever seeing it. No crash occurs at all — the violation is pure
    asynchrony. With [rounds = t + 2] it also isolates [p_1]'s Phase-2
    message, the schedule the E11 ablation needs. *)

val run_solo_split : Sim.Algorithm.packed -> Config.t -> report
(** {!solo_split_schedule} against any algorithm, with [p_1] proposing 0 and
    everyone else 1. *)

val solo_split_dls : Config.t -> Sim.Schedule.t
(** The same attack in the DLS fail-stop basic round model (Section 1.4):
    the isolating copies are {e lost} rather than delayed — legal there for
    any sender before the stabilisation round. The paper remarks that the
    lower-bound proof simplifies trivially to that model; this is the
    executable version of the remark. *)

val run_solo_split_dls : Sim.Algorithm.packed -> Config.t -> report

val search :
  ?samples:int ->
  ?gst:int ->
  ?directed:bool ->
  seed:int ->
  algo:Sim.Algorithm.packed ->
  config:Config.t ->
  proposals:Value.t Pid.Map.t ->
  unit ->
  report option
(** Search for a safety violation over valid ES schedules: the two directed
    attacks above first (unless [directed:false]), then [samples] random
    ES schedules. [None] when every run is safe.

    The directed phase matters: undirected random asynchrony essentially
    never produces a violation even for FloodSet, because breaking agreement
    needs the {e same} process's messages withheld from everyone for
    [t + 1] consecutive rounds — a coordinated adversary, which is exactly
    the entity the lower-bound proof quantifies over. *)
