(** Multicore exhaustive sweeps.

    Shards the sweep into coarse independent subproblems — one
    {!Exhaustive.sweep_prefix} per first-round adversary choice
    ({!sweep}), or per binary proposal assignment ({!sweep_binary}) — and
    runs them on up to [jobs] domains via {!Kernel.Par.map_tasks}. Shard
    results come back positionally and are merged in enumeration order on
    the calling domain, so the outcome is {e bit-identical} to the serial
    {!Exhaustive.sweep} / {!Exhaustive.sweep_binary}: same [runs], same
    decision-round interval, same witness, same violations in the same
    order, no matter how many domains ran or how the scheduler interleaved
    them. This determinism is the correctness anchor of the whole parallel
    path; the determinism tests assert it.

    Fault containment is two-layered. {!Sim.Engine.Step_error}s are
    contained {e inside} each shard by {!Exhaustive.sweep_prefix} as
    [crashed] runs. Anything else a worker raises (an exception escaping
    [Algorithm.init], a bug in the sweep itself) is caught on the worker
    domain and surfaced as an {!Exhaustive.shard_failure} — with the shard
    index and a description of its subproblem — in the merged result's
    [shard_failures], so one poisoned shard neither kills nor deadlocks
    the {!Kernel.Par} pool and every healthy shard still reports.

    [jobs <= 1] degrades to the (single-domain) incremental sweep with no
    domain spawned. *)

open Kernel

val merge_in_order : Exhaustive.result list -> Exhaustive.result
(** Fold shard results (one per first-round choice, in enumeration order)
    back into the serial sweep's result: {!Exhaustive.merge} for every
    scalar, with the violation and crashed-run lists rebuilt by prepending
    shard lists in shard order — the exact lists the one-pass serial DFS
    conses up. Shared with {!Distrib}, whose worker processes shard at the
    same granularity. *)

val sweep :
  ?faults:Sim.Model.faults ->
  ?omit_budget:int ->
  ?deadline:float ->
  ?policy:Serial.policy ->
  ?metrics:Obs.Metrics.t ->
  ?horizon:int ->
  ?prof:Obs.Prof.acc ->
  ?spans:Obs.Span.t ->
  ?progress:Obs.Progress.t ->
  jobs:int ->
  algo:Sim.Algorithm.packed ->
  config:Config.t ->
  proposals:Value.t Pid.Map.t ->
  unit ->
  Exhaustive.result
(** Parallel, prefix-sharing version of {!Exhaustive.sweep}. Reports the
    same metrics (when given) plus [mc.domains] = [jobs] and the
    [mc.prefix_hits] counter.

    Instrumentation (default-off, never affects the result): [prof] is
    merged from one per-shard accumulator per subtree after the join;
    [spans] records a track-0 ["sweep"] span plus per-shard recorders on
    tracks [1 + shard] (absorbed in shard order), each nesting
    ["shard ..."] over its ["run"] spans; [progress] is stepped from the
    worker domains once per completed shard (the meter is mutex-guarded;
    its total is set to the shard count up front). When [metrics] is
    given, the {!Kernel.Par} utilization report also lands as [par.*]
    gauges via {!Obs.Prof.pool}. The same contract applies to every
    variant below. *)

val sweep_binary :
  ?faults:Sim.Model.faults ->
  ?omit_budget:int ->
  ?deadline:float ->
  ?policy:Serial.policy ->
  ?metrics:Obs.Metrics.t ->
  ?horizon:int ->
  ?prof:Obs.Prof.acc ->
  ?spans:Obs.Span.t ->
  ?progress:Obs.Progress.t ->
  jobs:int ->
  algo:Sim.Algorithm.packed ->
  config:Config.t ->
  unit ->
  Exhaustive.result
(** Parallel version of {!Exhaustive.sweep_binary}: the [2^n] proposal
    assignments are the shards. *)

(** {2 Reduced parallel sweeps}

    The reduced serial sweeps shard at exactly this module's granularity —
    {!Dedup.sweep_prefix} per first-round choice, {!Dedup.sweep_sharded}
    per assignment, {!Symmetry.sweep_orbit} per orbit, each with fresh
    transposition tables — so their parallel counterparts below are
    bit-identical to them on {e every} field, [distinct_runs] and
    {!Dedup.stats} included, for any [jobs]. *)

val sweep_dedup :
  ?faults:Sim.Model.faults ->
  ?omit_budget:int ->
  ?deadline:float ->
  ?policy:Serial.policy ->
  ?metrics:Obs.Metrics.t ->
  ?horizon:int ->
  ?prof:Obs.Prof.acc ->
  ?spans:Obs.Span.t ->
  ?progress:Obs.Progress.t ->
  jobs:int ->
  algo:Sim.Algorithm.packed ->
  config:Config.t ->
  proposals:Value.t Pid.Map.t ->
  unit ->
  Exhaustive.result * Dedup.stats
(** Parallel {!Dedup.sweep}. *)

val sweep_binary_dedup :
  ?faults:Sim.Model.faults ->
  ?omit_budget:int ->
  ?deadline:float ->
  ?policy:Serial.policy ->
  ?metrics:Obs.Metrics.t ->
  ?horizon:int ->
  ?prof:Obs.Prof.acc ->
  ?spans:Obs.Span.t ->
  ?progress:Obs.Progress.t ->
  jobs:int ->
  algo:Sim.Algorithm.packed ->
  config:Config.t ->
  unit ->
  Exhaustive.result * Dedup.stats
(** Parallel {!Dedup.sweep_binary}. *)

val sweep_binary_sym :
  ?faults:Sim.Model.faults ->
  ?omit_budget:int ->
  ?deadline:float ->
  ?policy:Serial.policy ->
  ?metrics:Obs.Metrics.t ->
  ?horizon:int ->
  ?prof:Obs.Prof.acc ->
  ?spans:Obs.Span.t ->
  ?progress:Obs.Progress.t ->
  jobs:int ->
  algo:Sim.Algorithm.packed ->
  config:Config.t ->
  unit ->
  Exhaustive.result * Dedup.stats
(** Parallel {!Symmetry.sweep_binary}: the [n + 1] orbit representatives
    are the shards. Falls back to {!sweep_binary_dedup} when the algorithm
    is not {!Sim.Algorithm.S.symmetric}. *)
