open Kernel
module J = Obs.Json

let ( let* ) = Result.bind

let field name conv json =
  match Option.bind (J.member name json) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "bad or missing field %S" name)

let int_field name = field name J.to_int_opt
let string_field name = field name J.to_string_opt
let bool_field name = field name J.to_bool_opt

let list_field name conv json =
  let* items = field name J.to_list_opt json in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest ->
        let* v = conv x in
        go (v :: acc) rest
  in
  go [] items

(* Process sets as sorted element lists: [Pid.Set.elements] ascends and
   [of_ints] rebuilds canonically, so encodings are canonical whatever tree
   shape the set had. *)
let pid_set_to_json s =
  J.List (List.map (fun p -> J.Int (Pid.to_int p)) (Pid.Set.elements s))

let pid_set_of_json name json =
  let* ints =
    list_field name
      (fun j ->
        match J.to_int_opt j with
        | Some i when i >= 1 -> Ok i
        | _ -> Error (Printf.sprintf "bad pid in %S" name))
      json
  in
  Ok (Pid.Set.of_ints ints)

let choice_to_json = function
  | Serial.No_crash -> J.Obj [ ("act", J.String "none") ]
  | Serial.Crash { victim; receivers } ->
      J.Obj
        [
          ("act", J.String "crash");
          ("victim", J.Int (Pid.to_int victim));
          ("receivers", pid_set_to_json receivers);
        ]
  | Serial.Send_omit { culprit; dropped } ->
      J.Obj
        [
          ("act", J.String "send_omit");
          ("culprit", J.Int (Pid.to_int culprit));
          ("dropped", pid_set_to_json dropped);
        ]
  | Serial.Recv_omit { culprit; dropped } ->
      J.Obj
        [
          ("act", J.String "recv_omit");
          ("culprit", J.Int (Pid.to_int culprit));
          ("dropped", pid_set_to_json dropped);
        ]

let pid_field name json =
  let* i = int_field name json in
  if i >= 1 then Ok (Pid.of_int i)
  else Error (Printf.sprintf "bad or missing field %S" name)

let choice_of_json json =
  let* act = string_field "act" json in
  match act with
  | "none" -> Ok Serial.No_crash
  | "crash" ->
      let* victim = pid_field "victim" json in
      let* receivers = pid_set_of_json "receivers" json in
      Ok (Serial.Crash { victim; receivers })
  | "send_omit" ->
      let* culprit = pid_field "culprit" json in
      let* dropped = pid_set_of_json "dropped" json in
      Ok (Serial.Send_omit { culprit; dropped })
  | "recv_omit" ->
      let* culprit = pid_field "culprit" json in
      let* dropped = pid_set_of_json "dropped" json in
      Ok (Serial.Recv_omit { culprit; dropped })
  | other -> Error (Printf.sprintf "unknown choice act %S" other)

let violation_to_json = function
  | Sim.Props.Validity { pid; value } ->
      J.Obj
        [
          ("kind", J.String "validity");
          ("pid", J.Int (Pid.to_int pid));
          ("value", J.Int (Value.to_int value));
        ]
  | Sim.Props.Agreement { pid_a; value_a; pid_b; value_b } ->
      J.Obj
        [
          ("kind", J.String "agreement");
          ("pid_a", J.Int (Pid.to_int pid_a));
          ("value_a", J.Int (Value.to_int value_a));
          ("pid_b", J.Int (Pid.to_int pid_b));
          ("value_b", J.Int (Value.to_int value_b));
        ]
  | Sim.Props.Termination { undecided } ->
      J.Obj
        [
          ("kind", J.String "termination");
          ( "undecided",
            J.List (List.map (fun p -> J.Int (Pid.to_int p)) undecided) );
        ]
  | Sim.Props.Unsettled { undecided } ->
      J.Obj
        [
          ("kind", J.String "unsettled");
          ( "undecided",
            J.List (List.map (fun p -> J.Int (Pid.to_int p)) undecided) );
        ]

let pid_list_of_json name json =
  list_field name
    (fun j ->
      match J.to_int_opt j with
      | Some i when i >= 1 -> Ok (Pid.of_int i)
      | _ -> Error (Printf.sprintf "bad pid in %S" name))
    json

let violation_of_json json =
  let* kind = string_field "kind" json in
  match kind with
  | "validity" ->
      let* pid = pid_field "pid" json in
      let* value = int_field "value" json in
      Ok (Sim.Props.Validity { pid; value = Value.of_int value })
  | "agreement" ->
      let* pid_a = pid_field "pid_a" json in
      let* value_a = int_field "value_a" json in
      let* pid_b = pid_field "pid_b" json in
      let* value_b = int_field "value_b" json in
      Ok
        (Sim.Props.Agreement
           {
             pid_a;
             value_a = Value.of_int value_a;
             pid_b;
             value_b = Value.of_int value_b;
           })
  | "termination" ->
      let* undecided = pid_list_of_json "undecided" json in
      Ok (Sim.Props.Termination { undecided })
  | "unsettled" ->
      let* undecided = pid_list_of_json "undecided" json in
      Ok (Sim.Props.Unsettled { undecided })
  | other -> Error (Printf.sprintf "unknown violation kind %S" other)

let step_error_to_json (e : Sim.Engine.step_error) =
  J.Obj
    [
      ("algorithm", J.String e.algorithm);
      ("pid", J.Int (Pid.to_int e.pid));
      ("round", J.Int (Round.to_int e.round));
      ("reason", J.String e.reason);
    ]

let step_error_of_json json =
  let* algorithm = string_field "algorithm" json in
  let* pid = pid_field "pid" json in
  let* round = int_field "round" json in
  if round < 1 then Error "bad or missing field \"round\""
  else
    let* reason = string_field "reason" json in
    Ok
      { Sim.Engine.algorithm; pid; round = Round.of_int round; reason }

let stats_to_json (s : Dedup.stats) =
  J.Obj
    [
      ("hits", J.Int s.hits);
      ("misses", J.Int s.misses);
      ("entries", J.Int s.entries);
      ("edges", J.Int s.edges);
      ("spilled", J.Int s.spilled);
      ("snapshots", J.Int s.snapshots);
      ("restores", J.Int s.restores);
    ]

(* Absent in checkpoints written before the arena counters existed;
   decode as 0 so old sweep state stays resumable. *)
let opt_int_field name json =
  match J.member name json with
  | None -> Ok 0
  | Some _ -> int_field name json

let stats_of_json json =
  let* hits = int_field "hits" json in
  let* misses = int_field "misses" json in
  let* entries = int_field "entries" json in
  let* edges = int_field "edges" json in
  let* spilled = int_field "spilled" json in
  let* snapshots = opt_int_field "snapshots" json in
  let* restores = opt_int_field "restores" json in
  Ok { Dedup.hits; misses; entries; edges; spilled; snapshots; restores }

let choices_to_json cs = J.List (List.map choice_to_json cs)

let choices_of_json name json =
  list_field name choice_of_json json

let crashed_run_to_json (c : Exhaustive.crashed_run) =
  J.Obj
    [
      ("choices", choices_to_json c.choices);
      ("error", step_error_to_json c.error);
    ]

let crashed_run_of_json json =
  let* choices = choices_of_json "choices" json in
  let* error = field "error" Option.some json in
  let* error = step_error_of_json error in
  Ok { Exhaustive.choices; error }

let shard_failure_to_json (f : Exhaustive.shard_failure) =
  J.Obj
    [
      ("shard", J.Int f.shard);
      ("context", J.String f.context);
      ("message", J.String f.message);
    ]

let shard_failure_of_json json =
  let* shard = int_field "shard" json in
  let* context = string_field "context" json in
  let* message = string_field "message" json in
  Ok { Exhaustive.shard; context; message }

let violation_entry_to_json (choices, vs) =
  J.Obj
    [
      ("choices", choices_to_json choices);
      ("violations", J.List (List.map violation_to_json vs));
    ]

let violation_entry_of_json json =
  let* choices = choices_of_json "choices" json in
  let* vs = list_field "violations" violation_of_json json in
  Ok (choices, vs)

let result_to_json (r : Exhaustive.result) =
  J.Obj
    [
      ("runs", J.Int r.runs);
      ("distinct_runs", J.Int r.distinct_runs);
      ("max_decision", J.Int r.max_decision);
      ( "min_decision",
        if r.min_decision = max_int then J.Null else J.Int r.min_decision );
      ( "max_witness",
        match r.max_witness with
        | None -> J.Null
        | Some cs -> choices_to_json cs );
      ("violations", J.List (List.map violation_entry_to_json r.violations));
      ("undecided_runs", J.Int r.undecided_runs);
      ("crashed", J.List (List.map crashed_run_to_json r.crashed));
      ( "shard_failures",
        J.List (List.map shard_failure_to_json r.shard_failures) );
      ("expired", J.Bool r.expired);
    ]

let result_of_json json =
  let* runs = int_field "runs" json in
  let* distinct_runs = int_field "distinct_runs" json in
  let* max_decision = int_field "max_decision" json in
  let* min_decision =
    match J.member "min_decision" json with
    | Some J.Null -> Ok max_int
    | Some j -> (
        match J.to_int_opt j with
        | Some i -> Ok i
        | None -> Error "bad or missing field \"min_decision\"")
    | None -> Error "bad or missing field \"min_decision\""
  in
  let* max_witness =
    match J.member "max_witness" json with
    | Some J.Null -> Ok None
    | Some (J.List _ as j) ->
        let* cs = choices_of_json "max_witness" (J.Obj [ ("max_witness", j) ]) in
        Ok (Some cs)
    | _ -> Error "bad or missing field \"max_witness\""
  in
  let* violations = list_field "violations" violation_entry_of_json json in
  let* undecided_runs = int_field "undecided_runs" json in
  let* crashed = list_field "crashed" crashed_run_of_json json in
  let* shard_failures = list_field "shard_failures" shard_failure_of_json json in
  let* expired = bool_field "expired" json in
  Ok
    {
      Exhaustive.runs;
      distinct_runs;
      max_decision;
      min_decision;
      max_witness;
      violations;
      undecided_runs;
      crashed;
      shard_failures;
      expired;
    }

let result_equal a b =
  String.equal (J.to_string (result_to_json a)) (J.to_string (result_to_json b))
