open Kernel

type relation = { description : string; holds : bool }

type outcome = {
  config : Config.t;
  p : Pid.t;
  q : Pid.t;
  k' : int;
  s1 : Sim.Schedule.t;
  s0 : Sim.Schedule.t;
  a2 : Sim.Schedule.t;
  a1 : Sim.Schedule.t;
  a0 : Sim.Schedule.t;
  q_decision_s1 : Value.t option;
  q_decision_s0 : Value.t option;
  q_decision_a1 : Value.t option;
  q_decision_a0 : Value.t option;
  relations : relation list;
  agreement_violated : bool;
}

let all_hold outcome =
  List.for_all (fun r -> r.holds) outcome.relations
  && outcome.agreement_violated

let pp_outcome ppf o =
  Format.fprintf ppf
    "@[<v>Fig. 1 construction at %a (P = %a, Q = %a, k' = %d):@," Config.pp
    o.config Pid.pp o.p Pid.pp o.q o.k';
  let pp_dec ppf = function
    | Some v -> Value.pp ppf v
    | None -> Format.pp_print_string ppf "-"
  in
  Format.fprintf ppf
    "Q decides: s1 -> %a, s0 -> %a, a1 -> %a, a0 -> %a@," pp_dec
    o.q_decision_s1 pp_dec o.q_decision_s0 pp_dec o.q_decision_a1 pp_dec
    o.q_decision_a0;
  List.iter
    (fun r ->
      Format.fprintf ppf "  [%s] %s@," (if r.holds then "ok" else "FAIL")
        r.description)
    o.relations;
  Format.fprintf ppf "uniform agreement violated in a1 or a0: %b@]"
    o.agreement_violated

(* ------------------------------------------------------------------ *)
(* The five schedules                                                  *)

let chain_plans config =
  let n = Config.n config in
  List.map
    (fun r ->
      let victim = Pid.of_int r in
      let keep = Pid.of_int (r + 1) in
      {
        Sim.Schedule.crashes = [ victim ];
        lost =
          List.filter_map
            (fun dst ->
              if Pid.equal dst keep then None else Some (victim, dst))
            (Pid.others ~n victim);
        delayed = [];
      })
    (Listx.range 1 (Config.t config - 1))

let crash_silent ~n victim =
  {
    Sim.Schedule.crashes = [ victim ];
    lost = List.map (fun dst -> (victim, dst)) (Pid.others ~n victim);
    delayed = [];
  }

let crash_heard_only_by ~n victim ~keep =
  {
    Sim.Schedule.crashes = [ victim ];
    lost =
      List.filter_map
        (fun dst -> if Pid.equal dst keep then None else Some (victim, dst))
        (Pid.others ~n victim);
    delayed = [];
  }

let delay_all_from ~n src ~until ~except =
  {
    Sim.Schedule.crashes = [];
    lost = [];
    delayed =
      List.filter_map
        (fun dst ->
          if List.exists (Pid.equal dst) except then None
          else Some (src, dst, Round.of_int until))
        (Pid.others ~n src);
  }

let schedules config ~k' =
  let n = Config.n config and t = Config.t config in
  let p = Pid.of_int t and q = Pid.of_int n in
  let prefix = chain_plans config in
  let sync plans = Sim.Schedule.make ~model:Sim.Model.Es ~gst:Round.first plans in
  let async plans =
    Sim.Schedule.make ~model:Sim.Model.Es ~gst:(Round.of_int (t + 2)) plans
  in
  let s1 = sync (prefix @ [ crash_silent ~n p ]) in
  let s0 = sync (prefix @ [ crash_heard_only_by ~n p ~keep:q ]) in
  (* Round t of the asynchronous runs: P is alive but falsely suspected —
     its messages are delayed to round t+2. In a0, Q still hears P, exactly
     as in s0. *)
  let p_slandered ~except = delay_all_from ~n p ~until:(t + 2) ~except in
  let a2 =
    async (prefix @ [ p_slandered ~except: []; crash_silent ~n q ])
  in
  (* Round t+1 of a1/a0: everyone falsely suspects Q (its messages arrive at
     k'+1) and Q falsely suspects P; Q crashes silently at t+2. *)
  let q_slandered =
    let base = delay_all_from ~n q ~until:(k' + 1) ~except:[] in
    {
      base with
      Sim.Schedule.delayed =
        (p, q, Round.of_int (t + 2)) :: base.Sim.Schedule.delayed;
    }
  in
  let a1 =
    async (prefix @ [ p_slandered ~except: []; q_slandered; crash_silent ~n q ])
  in
  let a0 =
    async
      (prefix @ [ p_slandered ~except: [ q ]; q_slandered; crash_silent ~n q ])
  in
  (p, q, s1, s0, a2, a1, a0)

(* ------------------------------------------------------------------ *)
(* Execution and state comparison                                      *)

module Make (A : Sim.Algorithm.S) = struct
  module E = Sim.Engine.Make (A)

  (* System snapshots after each round 1..rounds. *)
  let snapshots config proposals schedule ~rounds =
    let rec go sys k acc =
      if k > rounds then List.rev acc
      else
        let sys = E.step sys (Sim.Schedule.plan_at schedule (Round.of_int k)) in
        go sys (k + 1) (sys :: acc)
    in
    go (E.start config ~proposals) 1 []

  let state_at snaps round pid =
    E.state_of (List.nth snaps (round - 1)) pid

  let decision_of_trace (trace : Sim.Trace.t) pid =
    Option.map
      (fun (d : Sim.Trace.decision) -> d.value)
      (Sim.Trace.decision_of trace pid)

  let run config =
    Config.validate_indulgent config;
    let t = Config.t config in
    let proposals = Attack.witness_proposals config in
    let packed = (module A : Sim.Algorithm.S with type state = A.state and type msg = A.msg) in
    let trace_of schedule =
      let module _ = (val packed) in
      E.run config ~proposals schedule
    in
    (* First pass: build a2 with a provisional k' to learn the real k'. *)
    let _, _, _, _, a2_prov, _, _ = schedules config ~k':(t + 1) in
    let k' =
      match Sim.Trace.global_decision_round (trace_of a2_prov) with
      | Some r -> Round.to_int r
      | None -> t + 1
    in
    let p, q, s1, s0, a2, a1, a0 = schedules config ~k' in
    let horizon = k' + 3 in
    let snap schedule = snapshots config proposals schedule ~rounds:horizon in
    let sn_s1 = snap s1
    and sn_s0 = snap s0
    and sn_a2 = snap a2
    and sn_a1 = snap a1
    and sn_a0 = snap a0 in
    let tr_s1 = trace_of s1
    and tr_s0 = trace_of s0
    and tr_a2 = trace_of a2
    and tr_a1 = trace_of a1
    and tr_a0 = trace_of a0 in
    let q_dec tr = decision_of_trace tr q in
    let others =
      List.filter
        (fun r -> not (Pid.equal r q))
        (Config.processes config)
    in
    let same_state snaps_a snaps_b round pid =
      Stdlib.compare (state_at snaps_a round pid) (state_at snaps_b round pid)
      = 0
    in
    let relations =
      [
        {
          description = "s1 is synchronous and Q decides 1 at t+1";
          holds =
            Sim.Schedule.synchronous s1
            && q_dec tr_s1 = Some Value.one
            && Sim.Props.decided_by tr_s1 (Round.of_int (t + 1));
        };
        {
          description = "s0 is synchronous and Q decides 0 at t+1";
          holds =
            Sim.Schedule.synchronous s0
            && q_dec tr_s0 = Some Value.zero
            && Sim.Props.decided_by tr_s0 (Round.of_int (t + 1));
        };
        {
          description =
            "a2/a1/a0 are legal ES schedules (validated) and asynchronous";
          holds =
            List.for_all
              (fun s ->
                Sim.Schedule.validate config s = Ok ()
                && not (Sim.Schedule.synchronous s))
              [ a2; a1; a0 ];
        };
        {
          description =
            "Q cannot distinguish a1 from s1 at the end of round t+1";
          holds = same_state sn_a1 sn_s1 (t + 1) q;
        };
        {
          description =
            "Q cannot distinguish a0 from s0 at the end of round t+1";
          holds = same_state sn_a0 sn_s0 (t + 1) q;
        };
        {
          description =
            "processes other than Q cannot distinguish a2, a1, a0 through \
             round k'";
          holds =
            List.for_all
              (fun round ->
                List.for_all
                  (fun r ->
                    same_state sn_a2 sn_a1 round r
                    && same_state sn_a1 sn_a0 round r)
                  others)
              (Listx.range 1 k');
        };
        {
          description = "Q decides 1 in a1 and 0 in a0";
          holds =
            q_dec tr_a1 = Some Value.one && q_dec tr_a0 = Some Value.zero;
        };
        {
          description =
            "every process other than Q decides the same value in a2, a1, a0";
          holds =
            List.for_all
              (fun r ->
                let d2 = decision_of_trace tr_a2 r
                and d1 = decision_of_trace tr_a1 r
                and d0 = decision_of_trace tr_a0 r in
                d2 = d1 && d1 = d0)
              others;
        };
      ]
    in
    let violated trace =
      List.exists
        (function Sim.Props.Agreement _ -> true | _ -> false)
        (Sim.Props.check_agreement trace)
    in
    {
      config;
      p;
      q;
      k';
      s1;
      s0;
      a2;
      a1;
      a0;
      q_decision_s1 = q_dec tr_s1;
      q_decision_s0 = q_dec tr_s0;
      q_decision_a1 = q_dec tr_a1;
      q_decision_a0 = q_dec tr_a0;
      relations;
      agreement_violated = violated tr_a1 || violated tr_a0;
    }
end

module Against_ws = Make (Baselines.Floodset_ws)

let against_floodset_ws = Against_ws.run
