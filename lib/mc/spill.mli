(** Disk overflow for the {!Dedup} transposition table.

    A capped sweep keeps its hottest entries in the in-memory table and
    appends the overflow here: an append-only data file plus an in-memory
    digest index. Each record stores the {e full} marshalled key next to
    its payload, and a lookup whose digest matches still compares the
    stored key bytes — so the reduction stays exact (a digest collision
    costs a disk read, never a wrong answer), while the resident cost per
    spilled entry drops to a 16-byte digest and three integers.

    Keys and payloads are opaque byte strings; {!Dedup} produces them with
    [Marshal] ([No_sharing], pure data only), under which equal keys have
    equal bytes — marshalled bytes are a function of the structure, and
    structural equality is exactly the table's equality.

    A store belongs to one shard of one sweep: single-threaded access, no
    cross-process sharing, deleted on {!close}. *)

type t

val create : dir:string -> t
(** Open a fresh backing file inside [dir] (which must exist). The file
    name carries the pid and a per-process counter, so concurrent sweeps
    and shards never collide. *)

val add : t -> key:string -> data:string -> unit
(** Append one record. The caller only adds keys it failed to {!find} —
    duplicates are not detected. *)

val find : t -> key:string -> string option
(** The payload stored for [key], comparing full key bytes on digest
    match. *)

val entries : t -> int
(** Records appended so far. *)

val bytes_on_disk : t -> int
(** Current size of the backing file. *)

val close : t -> unit
(** Close and delete the backing file. Idempotent; {!add}/{!find} after
    [close] raise [Invalid_argument]. *)
