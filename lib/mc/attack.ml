open Kernel

type report = {
  algorithm : string;
  config : Config.t;
  proposals : Value.t Pid.Map.t;
  schedule : Sim.Schedule.t;
  trace : Sim.Trace.t;
  violations : Sim.Props.violation list;
}

let pp_report ppf r =
  Format.fprintf ppf "@[<v>attack on %s %a:@,%a@,%a%a@]" r.algorithm Config.pp
    r.config Sim.Schedule.pp r.schedule Sim.Trace.pp_summary r.trace
    (fun ppf () ->
      List.iter
        (fun v -> Format.fprintf ppf "@,VIOLATION: %a" Sim.Props.pp_violation v)
        r.violations)
    ()

let witness_schedule config =
  Config.validate_indulgent config;
  let n = Config.n config and t = Config.t config in
  let chain_round r =
    (* p_r crashes carrying the 0-chain to p_{r+1} only. *)
    let victim = Pid.of_int r in
    let keep = Pid.of_int (r + 1) in
    {
      Sim.Schedule.crashes = [ victim ];
      lost =
        List.filter_map
          (fun dst -> if Pid.equal dst keep then None else Some (victim, dst))
          (Pid.others ~n victim);
      delayed = [];
    }
  in
  let false_suspicion_round =
    (* p_t is falsely suspected: its round-t message reaches only p_{t+1}
       in-round; every other copy arrives at round t+2. *)
    let src = Pid.of_int t in
    let spare = Pid.of_int (t + 1) in
    {
      Sim.Schedule.crashes = [];
      lost = [];
      delayed =
        List.filter_map
          (fun dst ->
            if Pid.equal dst spare then None
            else Some (src, dst, Round.of_int (t + 2)))
          (Pid.others ~n src);
    }
  in
  let final_crash_round =
    (* p_{t+1} crashes, heard only by p_t. *)
    let victim = Pid.of_int (t + 1) in
    let keep = Pid.of_int t in
    {
      Sim.Schedule.crashes = [ victim ];
      lost =
        List.filter_map
          (fun dst -> if Pid.equal dst keep then None else Some (victim, dst))
          (Pid.others ~n victim);
      delayed = [];
    }
  in
  Sim.Schedule.make ~model:Sim.Model.Es
    ~gst:(Round.of_int (t + 1))
    (List.map chain_round (Listx.range 1 (t - 1))
    @ [ false_suspicion_round; final_crash_round ])

let witness_proposals config =
  Sim.Runner.binary_proposals config
    ~ones:(Pid.Set.of_ints (Listx.range 2 (Config.n config)))

let run_witness algo config =
  let schedule = witness_schedule config in
  let proposals = witness_proposals config in
  let trace = Sim.Runner.run ~record:true algo config ~proposals schedule in
  {
    algorithm = Sim.Algorithm.name algo;
    config;
    proposals;
    schedule;
    trace;
    violations = Sim.Props.check_agreement trace;
  }

let solo_split_schedule ?rounds config =
  Config.validate_indulgent config;
  let n = Config.n config and t = Config.t config in
  let rounds = Option.value rounds ~default:(t + 1) in
  let p1 = Pid.of_int 1 in
  let plan =
    {
      Sim.Schedule.crashes = [];
      lost = [];
      delayed =
        List.map
          (fun dst -> (p1, dst, Round.of_int (rounds + 1)))
          (Pid.others ~n p1);
    }
  in
  Sim.Schedule.make ~model:Sim.Model.Es
    ~gst:(Round.of_int (rounds + 1))
    (List.map (fun _ -> plan) (Listx.range 1 rounds))

(* Section 1.4: in the DLS basic round model the same attack needs no
   delayed messages at all — the isolating copies are simply lost, which
   that model permits for any sender before stabilisation. *)
let solo_split_dls config =
  Config.validate_indulgent config;
  let n = Config.n config and t = Config.t config in
  let p1 = Pid.of_int 1 in
  let plan =
    {
      Sim.Schedule.crashes = [];
      lost = List.map (fun dst -> (p1, dst)) (Pid.others ~n p1);
      delayed = [];
    }
  in
  Sim.Schedule.make ~model:Sim.Model.Dls_basic
    ~gst:(Round.of_int (t + 2))
    (List.map (fun _ -> plan) (Listx.range 1 (t + 1)))

let run_solo_split_dls algo config =
  let schedule = solo_split_dls config in
  let proposals = witness_proposals config in
  let trace = Sim.Runner.run ~record:true algo config ~proposals schedule in
  {
    algorithm = Sim.Algorithm.name algo;
    config;
    proposals;
    schedule;
    trace;
    violations = Sim.Props.check_agreement trace;
  }

let run_solo_split algo config =
  let schedule = solo_split_schedule config in
  let proposals = witness_proposals config in
  let trace = Sim.Runner.run ~record:true algo config ~proposals schedule in
  {
    algorithm = Sim.Algorithm.name algo;
    config;
    proposals;
    schedule;
    trace;
    violations = Sim.Props.check_agreement trace;
  }

let floodset_ws_witness config =
  run_witness (Sim.Algorithm.Packed (module Baselines.Floodset_ws)) config

let search ?(samples = 500) ?(gst = 4) ?(directed = true) ~seed ~algo ~config
    ~proposals () =
  let rng = Rng.create ~seed in
  let try_one schedule =
    let trace = Sim.Runner.run algo config ~proposals schedule in
    match Sim.Props.check_agreement trace with
    | [] -> None
    | violations ->
        Some
          {
            algorithm = Sim.Algorithm.name algo;
            config;
            proposals;
            schedule;
            trace;
            violations;
          }
  in
  let directed_schedules =
    if directed then [ solo_split_schedule config; witness_schedule config ]
    else []
  in
  match List.find_map try_one directed_schedules with
  | Some report -> Some report
  | None ->
      let rec go remaining =
        if remaining = 0 then None
        else
          let schedule =
            Workload.Random_runs.eventually_synchronous rng config ~gst ()
          in
          match try_one schedule with
          | Some report -> Some report
          | None -> go (remaining - 1)
      in
      go samples
