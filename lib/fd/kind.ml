type t = P | Diamond_p | Diamond_s

let equal a b =
  match (a, b) with
  | P, P | Diamond_p, Diamond_p | Diamond_s, Diamond_s -> true
  | _ -> false

let to_string = function
  | P -> "P"
  | Diamond_p -> "<>P"
  | Diamond_s -> "<>S"

let pp ppf k = Format.pp_print_string ppf (to_string k)
