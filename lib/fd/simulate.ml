open Kernel

let completes schedule p round =
  match Sim.Schedule.crash_round schedule p with
  | Some r -> Round.(r > round)
  | None -> true

let output config schedule ~receiver ~round =
  if not (completes schedule receiver round) then
    invalid_arg
      (Format.asprintf "Fd.Simulate.output: %a does not complete round %d"
         Pid.pp receiver (Round.to_int round));
  let n = Config.n config in
  let arrives_in_round src =
    if Pid.equal src receiver then true
    else
      match Sim.Schedule.crash_round schedule src with
      | Some r when Round.(r < round) -> false (* sent nothing *)
      | _ -> Sim.Schedule.fate schedule ~src ~dst:receiver ~round = Sim.Schedule.Same_round
  in
  List.fold_left
    (fun acc src ->
      if arrives_in_round src then acc else Pid.Set.add src acc)
    Pid.Set.empty (Pid.all ~n)

let history ?(sink = Obs.Sink.noop) config schedule ~rounds =
  let observing = Obs.Sink.enabled sink in
  let acc = ref [] in
  List.iter
    (fun receiver ->
      for k = 1 to rounds do
        let round = Round.of_int k in
        if completes schedule receiver round then begin
          let suspected = output config schedule ~receiver ~round in
          if observing then
            Obs.Sink.emit sink
              (Obs.Event.Fd_output
                 {
                   pid = receiver;
                   round;
                   suspected = Pid.Set.elements suspected;
                 });
          acc := (receiver, round, suspected) :: !acc
        end
      done)
    (Config.processes config);
  List.rev !acc

let stabilisation_round config schedule =
  let crashed_by round =
    Pid.Set.filter
      (fun p ->
        match Sim.Schedule.crash_round schedule p with
        | Some r -> Round.(r < round)
        | None -> false)
      (Pid.Set.universe ~n:(Config.n config))
  in
  let exact_at round =
    List.for_all
      (fun receiver ->
        (not (completes schedule receiver round))
        || Pid.Set.equal
             (output config schedule ~receiver ~round)
             (Pid.Set.remove receiver (crashed_by round)))
      (Config.processes config)
  in
  (* Past the horizon and past every crash the output is exact, so scanning a
     finite window suffices. *)
  let last_crash =
    Pid.Set.fold
      (fun p acc ->
        match Sim.Schedule.crash_round schedule p with
        | Some r -> max acc (Round.to_int r)
        | None -> acc)
      (Sim.Schedule.faulty schedule) 0
  in
  let window = max (Sim.Schedule.horizon schedule) last_crash + 1 in
  let rec scan_back k stable =
    if k < 1 then stable
    else if exact_at (Round.of_int k) then scan_back (k - 1) k
    else stable
  in
  Round.of_int (scan_back window (window + 1))
