open Kernel

type report = {
  holds : bool;
  witness_round : Round.t option;
  counterexample : (Pid.t * Pid.t * Round.t) option;
}

let window config schedule =
  ignore config;
  let last_crash =
    Pid.Set.fold
      (fun p acc ->
        match Sim.Schedule.crash_round schedule p with
        | Some r -> max acc (Round.to_int r)
        | None -> acc)
      (Sim.Schedule.faulty schedule) 0
  in
  max (Sim.Schedule.horizon schedule) last_crash + 1

let correct_processes config schedule =
  List.filter
    (fun p -> Sim.Schedule.crash_round schedule p = None)
    (Config.processes config)

(* The first round [R <= window] such that [prop] holds at every round in
   [R .. window]. Rounds past the window behave identically to the window
   round (fully synchronous, all crashes done), so holding at the window
   round means holding forever after. *)
let first_stable_round config schedule prop =
  let w = window config schedule in
  let rec scan_back k stable =
    if k < 1 then stable
    else if prop (Round.of_int k) then scan_back (k - 1) k
    else stable
  in
  let stable = scan_back w (w + 1) in
  if stable <= w then Some (Round.of_int stable) else None

let strong_completeness config schedule =
  let faulty = Sim.Schedule.faulty schedule in
  let correct = correct_processes config schedule in
  let holds_at round =
    List.for_all
      (fun receiver ->
        let out = Simulate.output config schedule ~receiver ~round in
        Pid.Set.for_all
          (fun suspect ->
            (* Only required once the suspect has actually crashed. *)
            match Sim.Schedule.crash_round schedule suspect with
            | Some r when Round.(r < round) -> Pid.Set.mem suspect out
            | _ -> true)
          faulty)
      correct
  in
  match first_stable_round config schedule holds_at with
  | Some r -> { holds = true; witness_round = Some r; counterexample = None }
  | None -> { holds = false; witness_round = None; counterexample = None }

let eventual_strong_accuracy config schedule =
  let correct = correct_processes config schedule in
  let correct_set = Pid.Set.of_list (List.map Fun.id correct) in
  let holds_at round =
    List.for_all
      (fun receiver ->
        let out = Simulate.output config schedule ~receiver ~round in
        Pid.Set.is_empty (Pid.Set.inter out correct_set))
      correct
  in
  match first_stable_round config schedule holds_at with
  | Some r -> { holds = true; witness_round = Some r; counterexample = None }
  | None -> { holds = false; witness_round = None; counterexample = None }

let eventual_weak_accuracy config schedule =
  let correct = correct_processes config schedule in
  let never_suspected_from candidate round0 =
    let w = window config schedule in
    let ok = ref true in
    for k = Round.to_int round0 to w do
      let round = Round.of_int k in
      List.iter
        (fun receiver ->
          if
            Simulate.completes schedule receiver round
            && Pid.Set.mem candidate
                 (Simulate.output config schedule ~receiver ~round)
          then ok := false)
        correct
    done;
    !ok
  in
  let best =
    List.find_map
      (fun candidate ->
        let holds_at round =
          List.for_all
            (fun receiver ->
              not
                (Pid.Set.mem candidate
                   (Simulate.output config schedule ~receiver ~round)))
            correct
        in
        match first_stable_round config schedule holds_at with
        | Some r when never_suspected_from candidate r -> Some (candidate, r)
        | _ -> None)
      correct
  in
  match best with
  | Some (candidate, r) ->
      ( { holds = true; witness_round = Some r; counterexample = None },
        Some candidate )
  | None ->
      ({ holds = false; witness_round = None; counterexample = None }, None)

let false_suspicions config schedule =
  let w = window config schedule in
  let acc = ref [] in
  for k = 1 to w do
    let round = Round.of_int k in
    List.iter
      (fun receiver ->
        if Simulate.completes schedule receiver round then
          Pid.Set.iter
            (fun suspect ->
              let crashed_by_now =
                match Sim.Schedule.crash_round schedule suspect with
                | Some r -> Round.(r <= round)
                | None -> false
              in
              if not crashed_by_now then
                acc := (receiver, suspect, round) :: !acc)
            (Simulate.output config schedule ~receiver ~round))
      (Config.processes config)
  done;
  List.rev !acc

let perfect_accuracy config schedule =
  match false_suspicions config schedule with
  | [] -> { holds = true; witness_round = Some Round.first; counterexample = None }
  | first :: _ ->
      { holds = false; witness_round = None; counterexample = Some first }
