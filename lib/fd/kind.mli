(** The failure-detector classes the paper works with (Section 4).

    All output a set of suspected processes at each process and satisfy
    {e strong completeness} (eventually every crashed process is permanently
    suspected by every correct process). They differ in accuracy:

    - [P] (perfect): no process is suspected before it crashes;
    - [Diamond_p] (eventually perfect): eventual strong accuracy — there is a
      time after which correct processes are not suspected by any correct
      process;
    - [Diamond_s] (eventually strong): eventual weak accuracy — there is a
      time after which {e some} correct process is never suspected by any
      correct process. *)

type t = P | Diamond_p | Diamond_s

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
