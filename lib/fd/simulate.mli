(** The failure-detector simulation of Section 4.

    To simulate a round-based model enriched with [<>P] or [<>S] from ES, the
    paper sets the simulated output at a process, upon receiving the messages
    of round [k], to the set of processes from which no round-[k] message was
    received in round [k] — i.e. exactly the round's suspicions.

    Given a schedule, this module computes that output {e without} running
    any algorithm: whether the round-[k] message from [p_j] reaches [p_i] in
    round [k] is fully determined by the schedule. Rounds past the schedule's
    horizon behave synchronously, so the output there is exactly the set of
    crashed processes. *)

open Kernel

val output :
  Config.t -> Sim.Schedule.t -> receiver:Pid.t -> round:Round.t -> Pid.Set.t
(** The simulated failure-detector output at [receiver] for the given round:
    processes whose round message does not arrive in-round (because they
    crashed earlier, crashed while sending, or their message is delayed or
    lost). A process never suspects itself. Raises [Invalid_argument] if
    [receiver] does not complete that round (crashed before or during). *)

val completes : Sim.Schedule.t -> Pid.t -> Round.t -> bool
(** Whether the process completes the round under this schedule. *)

val history :
  ?sink:Obs.Sink.t ->
  Config.t ->
  Sim.Schedule.t ->
  rounds:int ->
  (Pid.t * Round.t * Pid.Set.t) list
(** [(receiver, round, suspected)] for every process and round [1..rounds]
    the process completes. [sink] (default {!Obs.Sink.noop}) receives one
    {!Obs.Event.Fd_output} per entry, so a traced run can include the
    simulated failure-detector view. *)

val stabilisation_round : Config.t -> Sim.Schedule.t -> Round.t
(** The first round from which the simulated output is exact at every
    correct process (suspected = crashed) and stays so forever: an upper
    bound witness for both completeness and accuracy. *)
