(** Checkers for the failure-detector axioms over a simulated history.

    Every checker evaluates the Section-4 simulation on a finite window that
    provably covers the interesting prefix (past the schedule's horizon and
    past every crash the output is exactly the crashed set, so all eventual
    properties have stabilised by then). *)

open Kernel

type report = {
  holds : bool;
  witness_round : Round.t option;
      (** for eventual properties: the first round from which the property
          holds forever *)
  counterexample : (Pid.t * Pid.t * Round.t) option;
      (** for perpetual properties: [(receiver, suspect, round)] of the
          first violation *)
}

val strong_completeness : Config.t -> Sim.Schedule.t -> report
(** Eventually every faulty process is permanently suspected by every
    correct process. Always holds for the Section-4 simulation; the report's
    [witness_round] measures {e when} it stabilises. *)

val eventual_strong_accuracy : Config.t -> Sim.Schedule.t -> report
(** <>P accuracy: a round from which no correct process is suspected by any
    correct process. *)

val eventual_weak_accuracy :
  Config.t -> Sim.Schedule.t -> (report * Pid.t option)
(** <>S accuracy: some correct process eventually never suspected by correct
    processes; also returns that process. *)

val perfect_accuracy : Config.t -> Sim.Schedule.t -> report
(** P accuracy: no process is suspected before the round in which it
    crashes. Holds in synchronous runs; asynchronous runs give a
    counterexample — the false suspicion at the heart of the paper. *)

val false_suspicions : Config.t -> Sim.Schedule.t -> (Pid.t * Pid.t * Round.t) list
(** Every [(receiver, suspect, round)] where [receiver] suspects a process
    that has not crashed in that round or earlier: the run's false
    suspicions (Section 1.2). Empty iff the run is synchronous, up to
    crash-round delays. *)
