open Kernel

type 'm t = 'm Envelope.t list

let current inbox ~round =
  List.sort Envelope.compare_src
    (List.filter (fun e -> Envelope.is_current e ~round) inbox)

let late inbox ~round =
  List.sort Envelope.compare_src
    (List.filter (fun e -> not (Envelope.is_current e ~round)) inbox)

(* One pass over the raw list, no sort, no tree rebalancing: sender sets
   are what every failure-detector-ish step computes per round, so they
   ride on {!Kernel.Bitset}. *)
let senders_bits inbox ~round =
  List.fold_left
    (fun acc (e : _ Envelope.t) ->
      if Envelope.is_current e ~round then Bitset.add (Pid.to_int e.src) acc
      else acc)
    Bitset.empty inbox

let suspected_bits ~n inbox ~round =
  Bitset.diff (Bitset.full ~n) (senders_bits inbox ~round)

(* Array-backed variants for n beyond [Bitset.max_pid]; same one-pass
   shape, accumulating into a Big set instead. *)
let senders_bigbits inbox ~round =
  List.fold_left
    (fun acc (e : _ Envelope.t) ->
      if Envelope.is_current e ~round then
        Bitset.Big.add (Pid.to_int e.src) acc
      else acc)
    Bitset.Big.empty inbox

let suspected_bigbits ~n inbox ~round =
  Bitset.Big.diff (Bitset.Big.full ~n) (senders_bigbits inbox ~round)

let senders inbox ~round = Bitset.to_pid_set (senders_bits inbox ~round)

let suspected ~n inbox ~round =
  Bitset.to_pid_set (suspected_bits ~n inbox ~round)

let payloads inbox = List.map (fun (e : _ Envelope.t) -> e.payload) inbox
let current_payloads inbox ~round = payloads (current inbox ~round)

let from inbox ~src ~round =
  List.find_map
    (fun (e : _ Envelope.t) ->
      if Pid.equal e.src src && Envelope.is_current e ~round then
        Some e.payload
      else None)
    inbox

let count_current inbox ~round =
  Listx.count (fun e -> Envelope.is_current e ~round) inbox
