open Kernel

type 'm t = 'm Envelope.t list

let current inbox ~round =
  List.sort Envelope.compare_src
    (List.filter (fun e -> Envelope.is_current e ~round) inbox)

let late inbox ~round =
  List.sort Envelope.compare_src
    (List.filter (fun e -> not (Envelope.is_current e ~round)) inbox)

let senders inbox ~round =
  List.fold_left
    (fun acc (e : _ Envelope.t) -> Pid.Set.add e.src acc)
    Pid.Set.empty (current inbox ~round)

let suspected ~n inbox ~round =
  Pid.Set.diff (Pid.Set.universe ~n) (senders inbox ~round)

let payloads inbox = List.map (fun (e : _ Envelope.t) -> e.payload) inbox
let current_payloads inbox ~round = payloads (current inbox ~round)

let from inbox ~src ~round =
  List.find_map
    (fun (e : _ Envelope.t) ->
      if Pid.equal e.src src && Envelope.is_current e ~round then
        Some e.payload
      else None)
    inbox

let count_current inbox ~round = List.length (current inbox ~round)
