(** Consensus correctness properties, checked over a completed trace
    (Section 1.3):

    - {e validity}: if a process decides [v] then some process proposed [v];
    - {e uniform agreement}: no two processes decide differently;
    - {e termination}: every correct process eventually decides — checkable
      only on traces that ran to quiescence, so it is reported as violated
      when a correct process is still undecided once every process halted,
      and as {!Unsettled} when the run hit its round bound first. *)

open Kernel

type violation =
  | Validity of { pid : Pid.t; value : Value.t }
      (** decided a value nobody proposed *)
  | Agreement of { pid_a : Pid.t; value_a : Value.t; pid_b : Pid.t; value_b : Value.t }
  | Termination of { undecided : Pid.t list }
      (** correct processes that never decide *)
  | Unsettled of { undecided : Pid.t list }
      (** the run hit its round bound with correct processes undecided:
          not a proof of non-termination, but reported so no test silently
          passes on a truncated run *)

val pp_violation : Format.formatter -> violation -> unit

val check : Trace.t -> violation list
(** All violations, most severe first. Empty = the trace satisfies uniform
    consensus as far as observable. *)

val check_agreement : Trace.t -> violation list
(** Safety only (validity + uniform agreement): appropriate for runs whose
    schedules deliberately break the algorithm's liveness assumptions. *)

val assert_ok : Trace.t -> unit
(** Raises [Failure] with a readable report when {!check} is non-empty. *)

val decided_by : Trace.t -> Round.t -> bool
(** Every correct process decided, and every decision happened at or before
    the given round — the shape of the paper's fast-decision claims. *)
