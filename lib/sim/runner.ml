open Kernel

let run ?record ?sink ?max_rounds ?prof (Algorithm.Packed (module A)) config
    ~proposals schedule =
  let module E = Engine.Make (A) in
  E.run ?record ?sink ?max_rounds ?prof config ~proposals schedule

let proposals_of_list values =
  List.fold_left
    (fun (i, acc) v -> (i + 1, Pid.Map.add (Pid.of_int i) v acc))
    (1, Pid.Map.empty) values
  |> snd

let distinct_proposals config =
  List.fold_left
    (fun acc p -> Pid.Map.add p (Value.of_int (Pid.to_int p)) acc)
    Pid.Map.empty (Config.processes config)

let binary_proposals config ~ones =
  List.fold_left
    (fun acc p ->
      let v = if Pid.Set.mem p ones then Value.one else Value.zero in
      Pid.Map.add p v acc)
    Pid.Map.empty (Config.processes config)

let uniform_proposals config v =
  List.fold_left
    (fun acc p -> Pid.Map.add p v acc)
    Pid.Map.empty (Config.processes config)
