open Kernel

type 'm t = { src : Pid.t; mutable sent : Round.t; mutable payload : 'm }

let make ~src ~sent payload = { src; sent; payload }
let is_current e ~round = Round.equal e.sent round

let compare_src a b =
  match Pid.compare a.src b.src with
  | 0 -> Round.compare a.sent b.sent
  | c -> c

let pp pp_payload ppf e =
  Format.fprintf ppf "@[<h>%a@@%a:%a@]" Pid.pp e.src Round.pp e.sent pp_payload
    e.payload
