(** A line-oriented text format for schedules, so that interesting
    adversaries (counterexamples found by the search, worst-case witnesses)
    can be saved, shared and replayed exactly.

    Format:
    {[
      schedule ES gst=3
      round 1: delay p1->p3@4 p1->p4@4
      round 2: crash p2 | lose p2->p3 p2->p4
    ]}

    The header names the model ([ES] or [SCS]) and the gst round, followed
    by optional tokens in any order: [omit=p2:send,p4:recv] declaring the
    run's omission-faulty processes and [budget=<t_crash>+<t_omit>] the
    explicit adversary budget (e.g. [schedule ES gst=1 omit=p2:send
    budget=1+1]). Headers without the optional tokens — every pre-omission
    artifact — parse unchanged. Each
    [round k:] line lists that round's plan as [|]-separated groups:
    [crash p...], [lose src->dst ...], [delay src->dst@round ...]. Rounds
    not listed have empty plans; the horizon is the largest round listed
    (trailing empty rounds are not representable, and are semantically
    irrelevant). Whitespace between tokens is free; lines starting with [#]
    are comments. *)

val encode : Schedule.t -> string

val decode : string -> (Schedule.t, string) result
(** Parses the format above. The result is structurally well-formed but not
    validated against any configuration — run {!Schedule.validate} with
    your [Config.t] afterwards. *)

val decode_exn : string -> Schedule.t
