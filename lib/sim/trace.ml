open Kernel

type decision = { pid : Pid.t; round : Round.t; value : Value.t }

type round_record = {
  round : Round.t;
  senders : Pid.t list;
  crashed_now : Pid.t list;
  delivered : (Pid.t * Pid.t * Round.t) list;
  bytes_sent : int;
  new_decisions : decision list;
}

type t = {
  algorithm : string;
  config : Config.t;
  proposals : Value.t Pid.Map.t;
  schedule : Schedule.t;
  decisions : decision list;
  crashes : (Pid.t * Round.t) list;
  rounds_executed : int;
  all_halted : bool;
  records : round_record list;
}

let decision_of trace pid =
  List.find_opt (fun d -> Pid.equal d.pid pid) trace.decisions

let decided_values trace = List.map (fun d -> d.value) trace.decisions

let global_decision_round trace =
  List.fold_left
    (fun acc (d : decision) ->
      match acc with
      | None -> Some d.round
      | Some r -> Some (Round.max r d.round))
    None trace.decisions

let first_decision_round trace =
  List.fold_left
    (fun acc (d : decision) ->
      match acc with
      | None -> Some d.round
      | Some r -> if Round.(d.round < r) then Some d.round else Some r)
    None trace.decisions

let correct trace =
  let faulty = List.map fst trace.crashes in
  let omitting = Schedule.omitter_set trace.schedule in
  List.filter
    (fun p ->
      (not (List.exists (Pid.equal p) faulty))
      && not (Pid.Set.mem p omitting))
    (Config.processes trace.config)

let pp_summary ppf trace =
  let pp_decision ppf (d : decision) =
    Format.fprintf ppf "%a:%a@@r%d" Pid.pp d.pid Value.pp d.value
      (Round.to_int d.round)
  in
  Format.fprintf ppf
    "@[<v>%s on %a, %s run: %d round(s) executed, %d crash(es)@,\
     decisions: [%a]%a@]"
    trace.algorithm Config.pp trace.config
    (if Schedule.synchronous trace.schedule then "synchronous"
     else "asynchronous")
    trace.rounds_executed
    (List.length trace.crashes)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       pp_decision)
    trace.decisions
    (fun ppf () ->
      match global_decision_round trace with
      | Some r -> Format.fprintf ppf "@,global decision at round %d" (Round.to_int r)
      | None -> Format.fprintf ppf "@,no decision")
    ()

(* One row per process, one cell per executed round. Cell contents:
   "X" crash this round, "D=v" decision this round, "*" sent and received
   normally, "." already crashed, "h" halted. A trailing legend lists the
   off-schedule deliveries (delayed / lost messages). *)
let pp_diagram ppf trace =
  let n = Config.n trace.config in
  let rounds = trace.rounds_executed in
  (* Without per-round records we cannot tell a quietly-participating
     process from one that already halted, so the [*]/[h] distinction (and
     [*] itself) would be a guess; render those cells as [?] and say why. *)
  let have_records = trace.records <> [] || rounds = 0 in
  let crash_round p =
    List.assoc_opt p (List.map (fun (q, r) -> (q, r)) trace.crashes)
  in
  let decision_at p k =
    List.find_opt
      (fun d -> Pid.equal d.pid p && Round.to_int d.round = k)
      trace.decisions
  in
  let record_at k =
    List.find_opt (fun r -> Round.to_int r.round = k) trace.records
  in
  let cell p k =
    match crash_round p with
    | Some r when Round.to_int r < k -> "."
    | Some r when Round.to_int r = k -> "X"
    | _ -> (
        match decision_at p k with
        | Some d -> Format.asprintf "D=%a" Value.pp d.value
        | None when not have_records -> "?"
        | None -> (
            match record_at k with
            | Some rec_ when not (List.exists (Pid.equal p) rec_.senders) ->
                "h"
            | _ -> "*"))
  in
  let width = 5 in
  let pad s =
    let len = String.length s in
    if len >= width then s else s ^ String.make (width - len) ' '
  in
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "     ";
  for k = 1 to rounds do
    Format.fprintf ppf "%s" (pad (Printf.sprintf "r%d" k))
  done;
  Format.fprintf ppf "@,";
  List.iter
    (fun p ->
      Format.fprintf ppf "%-4s " (Pid.to_string p);
      for k = 1 to rounds do
        Format.fprintf ppf "%s" (pad (cell p k))
      done;
      Format.fprintf ppf "@,")
    (Pid.all ~n);
  if not have_records then
    Format.fprintf ppf
      "  (trace carries no per-round records — run with ~record:true; [?] = \
       sent/halted unknown)@,";
  (* Off-schedule message fates, from the schedule itself. Losses caused
     by a declared omitter are labelled with their culprit so a diagram of
     an omission counterexample reads as faults, not as network losses. *)
  let sched = trace.schedule in
  (match Schedule.omitters sched with
  | [] -> ()
  | os ->
      Format.fprintf ppf "  omitters: %a@,"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf (p, cls) ->
             Format.fprintf ppf "%a (%a-omission)" Pid.pp p Model.pp_omission
               cls))
        os);
  let horizon = min rounds (Schedule.horizon sched) in
  for k = 1 to horizon do
    let plan = Schedule.plan_at sched (Round.of_int k) in
    List.iter
      (fun (src, dst) ->
        match
          (Schedule.omitter_class sched src, Schedule.omitter_class sched dst)
        with
        | Some Model.Send_omit, _ ->
            Format.fprintf ppf "  r%d: %a -> %a omitted (send-omission by %a)@,"
              k Pid.pp src Pid.pp dst Pid.pp src
        | _, Some Model.Recv_omit ->
            Format.fprintf ppf
              "  r%d: %a -> %a omitted (receive-omission by %a)@," k Pid.pp src
              Pid.pp dst Pid.pp dst
        | _ ->
            Format.fprintf ppf "  r%d: %a -> %a lost@," k Pid.pp src Pid.pp dst)
      plan.Schedule.lost;
    List.iter
      (fun (src, dst, until) ->
        Format.fprintf ppf "  r%d: %a -> %a delayed until r%d@," k Pid.pp src
          Pid.pp dst (Round.to_int until))
      plan.Schedule.delayed
  done;
  Format.fprintf ppf "@]"
