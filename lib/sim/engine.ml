open Kernel
module Int_map = Map.Make (Int)

type step_error = {
  algorithm : string;
  pid : Pid.t;
  round : Round.t;
  reason : string;
}

exception Step_error of step_error

let pp_step_error ppf e =
  Format.fprintf ppf "%s: %a failed in round %d: %s" e.algorithm Pid.pp e.pid
    (Round.to_int e.round) e.reason

let () =
  Printexc.register_printer (function
    | Step_error e -> Some (Format.asprintf "Engine.Step_error (%a)" pp_step_error e)
    | _ -> None)

(* Generous: room for the schedule itself, the asynchronous prefix, and a
   full rotation of coordinator phases after gst for the slowest algorithm
   (4 rounds per phase, up to n phases), plus the t+3 framing of A_{t+2}. *)
let round_bound config ~horizon ~gst =
  horizon + gst + (5 * (Config.n config + 2)) + Config.t config + 10

let default_max_rounds config schedule =
  round_bound config ~horizon:(Schedule.horizon schedule)
    ~gst:(Round.to_int (Schedule.gst schedule))

module Make (A : Algorithm.S) = struct
  let fail ~pid ~round reason =
    raise (Step_error { algorithm = A.name; pid; round; reason })

  (* The containment boundary: any exception the algorithm's step callbacks
     raise is rewrapped with process and round context so sweeps and fuzz
     campaigns can record it as a per-run outcome. Resource exhaustion and
     already-structured errors pass through untouched. *)
  let send_guarded st ~pid round =
    try A.on_send st round with
    | (Step_error _ | Stack_overflow | Out_of_memory) as e -> raise e
    | exn -> fail ~pid ~round ("on_send raised " ^ Printexc.to_string exn)

  let receive_guarded st ~pid round inbox =
    try A.on_receive st round inbox with
    | (Step_error _ | Stack_overflow | Out_of_memory) as e -> raise e
    | exn -> fail ~pid ~round ("on_receive raised " ^ Printexc.to_string exn)

  type proc =
    | Running of A.state
    | Done of Round.t * A.state  (* halted (returned) in the given round *)
    | Crashed of Round.t

  type sys = {
    config : Config.t;
    next_round : Round.t;
    procs : proc Pid.Map.t;
    pending : A.msg Envelope.t list Pid.Map.t Int_map.t;
        (* delivery round -> receiver -> envelopes *)
    rev_decisions : Trace.decision list;
    rev_records : Trace.round_record list;
    recording : bool;
    sink : Obs.Sink.t;
  }

  let start ?(sink = Obs.Sink.noop) config ~proposals =
    let n = Config.n config in
    let procs =
      List.fold_left
        (fun acc p ->
          match Pid.Map.find_opt p proposals with
          | Some v -> Pid.Map.add p (Running (A.init config p v)) acc
          | None ->
              invalid_arg
                (Format.asprintf "Engine.start: no proposal for %a" Pid.pp p))
        Pid.Map.empty (Pid.all ~n)
    in
    {
      config;
      next_round = Round.first;
      procs;
      pending = Int_map.empty;
      rev_decisions = [];
      rev_records = [];
      recording = false;
      sink;
    }

  let next_round sys = sys.next_round
  let decisions sys = List.rev sys.rev_decisions

  let state_of sys p =
    match Pid.Map.find_opt p sys.procs with
    | Some (Running st) | Some (Done (_, st)) -> Some st
    | Some (Crashed _) | None -> None

  let alive sys =
    Pid.Map.fold
      (fun p proc acc -> match proc with Running _ -> p :: acc | _ -> acc)
      sys.procs []
    |> List.rev

  let crashed sys =
    Pid.Map.fold
      (fun p proc acc ->
        match proc with Crashed r -> (p, r) :: acc | _ -> acc)
      sys.procs []
    |> List.rev

  let all_halted sys =
    Pid.Map.for_all
      (fun _ proc -> match proc with Running _ -> false | _ -> true)
      sys.procs

  let enqueue pending ~deliver_round ~dst env =
    let k = Round.to_int deliver_round in
    let per_dst =
      Option.value (Int_map.find_opt k pending) ~default:Pid.Map.empty
    in
    let queue = Option.value (Pid.Map.find_opt dst per_dst) ~default:[] in
    Int_map.add k (Pid.Map.add dst (env :: queue) per_dst) pending

  let step sys (plan : Schedule.plan) =
    let config = sys.config in
    let n = Config.n config in
    (* One O(n^2) compile replaces the per-copy [List.exists]/[find_opt]
       scans over [plan.lost]/[plan.delayed]; quiet plans compile for
       free. *)
    let cplan = Schedule.compile_plan ~n plan in
    let round = sys.next_round in
    let sink = sys.sink in
    (* [observing] guards every event construction: with the no-op sink the
       hot path performs one boolean test per site and allocates nothing. *)
    let observing = Obs.Sink.enabled sink in
    if observing then Obs.Sink.emit sink (Obs.Event.Round_start { round });
    (* Send phase: every running process broadcasts. *)
    let senders =
      Pid.Map.fold
        (fun p proc acc ->
          match proc with Running st -> (p, st) :: acc | _ -> acc)
        sys.procs []
      |> List.rev
    in
    let bytes_sent = ref 0 in
    let pending =
      List.fold_left
        (fun pending (src, st) ->
          let payload = send_guarded st ~pid:src round in
          if sys.recording || observing then begin
            let bytes = n * (Algorithm.header_bytes + A.wire_size payload) in
            bytes_sent := !bytes_sent + bytes;
            if observing then
              Obs.Sink.emit sink
                (Obs.Event.Send { src; round; copies = n; bytes })
          end;
          let env = Envelope.make ~src ~sent:round payload in
          List.fold_left
            (fun pending dst ->
              if Pid.equal src dst then
                enqueue pending ~deliver_round:round ~dst env
              else
                match Schedule.compiled_fate cplan ~src ~dst with
                | Schedule.Same_round ->
                    enqueue pending ~deliver_round:round ~dst env
                | Schedule.Delayed_until until ->
                    if observing then
                      Obs.Sink.emit sink
                        (Obs.Event.Delay { src; dst; round; until });
                    enqueue pending ~deliver_round:until ~dst env
                | Schedule.Lost ->
                    if observing then
                      Obs.Sink.emit sink (Obs.Event.Drop { src; dst; round });
                    pending)
            pending (Pid.all ~n))
        sys.pending senders
    in
    (* Crashes take effect before the receive phase: a process crashing in
       round k does not complete round k. *)
    let procs =
      List.fold_left
        (fun procs victim ->
          match Pid.Map.find_opt victim procs with
          | Some (Running _) ->
              if observing then
                Obs.Sink.emit sink (Obs.Event.Crash { pid = victim; round });
              Pid.Map.add victim (Crashed round) procs
          | Some (Done _) | Some (Crashed _) | None -> procs)
        sys.procs plan.Schedule.crashes
    in
    (* Receive phase. *)
    let due =
      Option.value
        (Int_map.find_opt (Round.to_int round) pending)
        ~default:Pid.Map.empty
    in
    let pending = Int_map.remove (Round.to_int round) pending in
    let deliveries = ref [] in
    let new_decisions = ref [] in
    let procs =
      Pid.Map.mapi
        (fun p proc ->
          match proc with
          | Crashed _ | Done _ -> proc
          | Running st ->
              let inbox =
                Option.value (Pid.Map.find_opt p due) ~default:[]
                |> List.sort Envelope.compare_src
              in
              if sys.recording then
                List.iter
                  (fun (e : _ Envelope.t) ->
                    deliveries := (e.src, p, e.sent) :: !deliveries)
                  inbox;
              if observing then
                List.iter
                  (fun (e : _ Envelope.t) ->
                    Obs.Sink.emit sink
                      (Obs.Event.Deliver
                         { src = e.src; dst = p; sent = e.sent; round }))
                  inbox;
              let before = A.decision st in
              let st' = receive_guarded st ~pid:p round inbox in
              let after = A.decision st' in
              (match (before, after) with
              | Some v, Some w when not (Value.equal v w) ->
                  fail ~pid:p ~round
                    (Format.asprintf "changed its decision from %a to %a"
                       Value.pp v Value.pp w)
              | Some _, None -> fail ~pid:p ~round "retracted its decision"
              | None, Some v ->
                  if observing then
                    Obs.Sink.emit sink
                      (Obs.Event.Decide { pid = p; round; value = v });
                  new_decisions :=
                    { Trace.pid = p; round; value = v } :: !new_decisions
              | None, None | Some _, Some _ -> ());
              if A.halted st' then begin
                if observing then
                  Obs.Sink.emit sink (Obs.Event.Halt { pid = p; round });
                Done (round, st')
              end
              else Running st')
        procs
    in
    let new_decisions =
      List.sort
        (fun (a : Trace.decision) b -> Pid.compare a.pid b.pid)
        !new_decisions
    in
    let record =
      if sys.recording then
        [
          {
            Trace.round;
            senders = List.map fst senders;
            crashed_now = plan.Schedule.crashes;
            delivered = List.rev !deliveries;
            bytes_sent = !bytes_sent;
            new_decisions;
          };
        ]
      else []
    in
    {
      sys with
      next_round = Round.succ round;
      procs;
      pending;
      rev_decisions = List.rev_append new_decisions sys.rev_decisions;
      rev_records = record @ sys.rev_records;
    }

  (* ---------------------------------------------------------------- *)
  (* The resumable checker core.

     Same round semantics as [step]/[run] above, on a representation tuned
     for the model checker's DFS: processes live in a flat array (copied
     per step — n words — instead of rebalancing [Pid.Map]s), current-round
     inboxes are built directly in sender order (no [Int_map] enqueue per
     copy, no per-inbox sort), and a quiet round with no pending delayed
     messages shares one physically-identical envelope list between all n
     receivers. Each [step] returns a fresh immutable value, so a DFS forks
     the state at every choice point and re-simulates nothing: the shared
     prefix of two schedules is executed once.

     This core does not record round records and does not emit events —
     observability belongs to [run]. *)

  module Incremental = struct
    type t = {
      i_config : Config.t;
      i_proposals : Value.t Pid.Map.t;
      i_next : int;  (* next round to execute *)
      i_procs : proc array;  (* process [p] at index [p - 1] *)
      i_live : int;  (* number of [Running] entries *)
      i_late : A.msg Envelope.t list Pid.Map.t Int_map.t;
          (* delayed deliveries: round -> receiver -> envelopes *)
      i_rev_decisions : Trace.decision list;
    }

    let start config ~proposals =
      let n = Config.n config in
      let procs =
        Array.init n (fun i ->
            let p = Pid.of_int (i + 1) in
            match Pid.Map.find_opt p proposals with
            | Some v -> Running (A.init config p v)
            | None ->
                invalid_arg
                  (Format.asprintf "Engine.Incremental.start: no proposal \
                                    for %a"
                     Pid.pp p))
      in
      {
        i_config = config;
        i_proposals = proposals;
        i_next = 1;
        i_procs = procs;
        i_live = n;
        i_late = Int_map.empty;
        i_rev_decisions = [];
      }

    let next_round t = Round.of_int t.i_next
    let all_halted t = t.i_live = 0
    let decisions t = List.rev t.i_rev_decisions

    let crashed t =
      let acc = ref [] in
      for i = Array.length t.i_procs - 1 downto 0 do
        match t.i_procs.(i) with
        | Crashed r -> acc := (Pid.of_int (i + 1), r) :: !acc
        | Running _ | Done _ -> ()
      done;
      !acc

    (* ---------------------------------------------------------------- *)
    (* Canonical snapshots.

       Two states with equal fingerprints produce identical sweep verdicts
       for every suffix of adversary choices: the aggregates a sweep
       extracts from a finished trace ([Props.check] and
       [Trace.global_decision_round]) read only the decisions list (values,
       pids and rounds), the crashed pid set, the proposals (fixed per
       sweep) and the all-halted flag, while the {e future} evolution is a
       deterministic function of the running states, the in-flight delayed
       messages and the round number (part of the caller's key). So the
       fingerprint keeps [Running] states structurally but collapses [Done]
       and [Crashed] to bare tags: a halted process has no future behaviour
       and its halting round is not observable in any verdict, and a
       crashed process contributes only its pid (via its slot) — crash
       rounds are dropped by [Trace.correct] and [Props].

       Everything inside is plain immutable data (see {!Algorithm.S} on
       purity), so polymorphic structural equality and [Hashtbl.hash] are
       meaningful on it — that is the contract {!Mc.Dedup} relies on.
       [i_late] is re-keyed to canonical int/bindings form; queue order
       inside a delivery slot is preserved (it affects inbox order, hence
       the future), so two states differing only there conservatively miss
       rather than alias. *)

    type proc_fp = Fp_running of A.state | Fp_done | Fp_crashed

    type fingerprint = {
      fp_procs : proc_fp array;
      fp_late : (int * (int * A.msg Envelope.t list) list) list;
      fp_decisions : Trace.decision list;
    }

    let fingerprint t =
      {
        fp_procs =
          Array.map
            (function
              | Running st -> Fp_running st
              | Done _ -> Fp_done
              | Crashed _ -> Fp_crashed)
            t.i_procs;
        fp_late =
          Int_map.fold
            (fun k per acc ->
              ( k,
                List.map
                  (fun (p, q) -> (Pid.to_int p, q))
                  (Pid.Map.bindings per) )
              :: acc)
            t.i_late [];
        fp_decisions = t.i_rev_decisions;
      }

    let step t cplan =
      let n = Config.n t.i_config in
      let round = Round.of_int t.i_next in
      let plan = Schedule.compiled_source cplan in
      let late_due = Int_map.find_opt t.i_next t.i_late in
      let late =
        if late_due = None then ref t.i_late
        else ref (Int_map.remove t.i_next t.i_late)
      in
      (* Send phase, from the pre-crash process states. Iterating senders
         from [n] down to 1 and consing builds every inbox already sorted
         by sender id, which is the order [run] delivers in. *)
      let inboxes =
        if Schedule.compiled_quiet cplan && late_due = None then begin
          let all = ref [] in
          for src = n downto 1 do
            match t.i_procs.(src - 1) with
            | Running st ->
                let srcp = Pid.of_int src in
                all :=
                  Envelope.make ~src:srcp ~sent:round
                    (send_guarded st ~pid:srcp round)
                  :: !all
            | Done _ | Crashed _ -> ()
          done;
          Array.make n !all
        end
        else begin
          match
            if late_due = None then Schedule.compiled_single_lost cplan
            else None
          with
          | Some (victim, lost_dsts) ->
              (* The serial-adversary shape: only [victim]'s messages are
                 lost, to exactly [lost_dsts]. Build two shared inboxes —
                 everyone's envelopes, and everyone's except the victim's —
                 and point each receiver at one of them: ~2n conses per
                 round instead of n^2, and no per-copy fate query. *)
              let all = ref [] and reduced = ref [] in
              for src = n downto 1 do
                match t.i_procs.(src - 1) with
                | Running st ->
                    let srcp = Pid.of_int src in
                    let env =
                      Envelope.make ~src:srcp ~sent:round
                        (send_guarded st ~pid:srcp round)
                    in
                    all := env :: !all;
                    if not (Pid.equal srcp victim) then
                      reduced := env :: !reduced
                | Done _ | Crashed _ -> ()
              done;
              let all = !all and reduced = !reduced in
              Array.init n (fun i ->
                  if Bitset.Big.mem (i + 1) lost_dsts then reduced else all)
          | None ->
          let ib = Array.make n [] in
          for src = n downto 1 do
            match t.i_procs.(src - 1) with
            | Done _ | Crashed _ -> ()
            | Running st ->
                let srcp = Pid.of_int src in
                let env =
                  Envelope.make ~src:srcp ~sent:round
                    (send_guarded st ~pid:srcp round)
                in
                for dst = 1 to n do
                  if dst = src then ib.(dst - 1) <- env :: ib.(dst - 1)
                  else
                    match
                      Schedule.compiled_fate cplan ~src:srcp
                        ~dst:(Pid.of_int dst)
                    with
                    | Schedule.Same_round ->
                        ib.(dst - 1) <- env :: ib.(dst - 1)
                    | Schedule.Lost -> ()
                    | Schedule.Delayed_until until ->
                        let k = Round.to_int until in
                        let dstp = Pid.of_int dst in
                        let per =
                          Option.value
                            (Int_map.find_opt k !late)
                            ~default:Pid.Map.empty
                        in
                        let q =
                          Option.value
                            (Pid.Map.find_opt dstp per)
                            ~default:[]
                        in
                        late :=
                          Int_map.add k
                            (Pid.Map.add dstp (env :: q) per)
                            !late
                done
          done;
          (match late_due with
          | None -> ()
          | Some per ->
              (* Late arrivals break the by-construction sender order:
                 merge and re-sort exactly like the batch engine. *)
              Pid.Map.iter
                (fun dst q ->
                  let i = Pid.to_int dst - 1 in
                  ib.(i) <-
                    List.sort Envelope.compare_src (List.rev_append q ib.(i)))
                per);
          ib
        end
      in
      (* Crashes take effect before the receive phase. *)
      let procs = Array.copy t.i_procs in
      let live = ref t.i_live in
      List.iter
        (fun victim ->
          let i = Pid.to_int victim - 1 in
          match procs.(i) with
          | Running _ ->
              procs.(i) <- Crashed round;
              decr live
          | Done _ | Crashed _ -> ())
        plan.Schedule.crashes;
      (* Receive phase. *)
      let rev_new = ref [] in
      for i = 0 to n - 1 do
        match procs.(i) with
        | Done _ | Crashed _ -> ()
        | Running st ->
            let p = Pid.of_int (i + 1) in
            let before = A.decision st in
            let st' = receive_guarded st ~pid:p round inboxes.(i) in
            let after = A.decision st' in
            (match (before, after) with
            | Some v, Some w when not (Value.equal v w) ->
                fail ~pid:p ~round
                  (Format.asprintf "changed its decision from %a to %a"
                     Value.pp v Value.pp w)
            | Some _, None -> fail ~pid:p ~round "retracted its decision"
            | None, Some v ->
                rev_new := { Trace.pid = p; round; value = v } :: !rev_new
            | None, None | Some _, Some _ -> ());
            if A.halted st' then begin
              procs.(i) <- Done (round, st');
              decr live
            end
            else procs.(i) <- Running st'
      done;
      {
        t with
        i_next = t.i_next + 1;
        i_procs = procs;
        i_live = !live;
        i_late = !late;
        (* [rev_new] is descending by pid, so prepending keeps the same
           shape [step] produces: per-round decisions sorted by pid once
           the whole list is reversed. *)
        i_rev_decisions = !rev_new @ t.i_rev_decisions;
      }

    (* ---------------------------------------------------------------- *)
    (* The flat tail.

       Past the schedule horizon every plan is empty: no crashes, no
       losses, no new delays — only quiet rounds plus whatever delayed
       deliveries are already queued in [i_late]. Nothing forks there (the
       DFS branches only on in-horizon choices), so immutability buys
       nothing and [finish] switches to struct-of-arrays state mutated in
       place: a status byte and an [A.state] slot per process, and one
       shared inbox "spine" — a single envelope per running sender, whose
       mutable [sent]/[payload] cells are refreshed each round instead of
       reallocated (see the loan contract in {!Envelope}). With an
       algorithm whose steady state is allocation-free, a steady quiet
       round allocates nothing at all; the spine is rebuilt (the only
       allocating event) exactly when the running set changes. *)

    let flat_tail ?prof ~max_rounds ~schedule t =
      let n = Config.n t.i_config in
      let status = Bytes.make n '\001' (* '\000' running, '\001' stopped *) in
      let filler =
        let rec first i =
          match t.i_procs.(i) with
          | Running st -> st
          | Done _ | Crashed _ -> first (i + 1)
        in
        first 0 (* flat_tail is only entered with [i_live > 0] *)
      in
      let states = Array.make n filler in
      for i = 0 to n - 1 do
        match t.i_procs.(i) with
        | Running st ->
            Bytes.set status i '\000';
            states.(i) <- st
        | Done _ | Crashed _ -> ()
      done;
      let live = ref t.i_live in
      let late = ref t.i_late in
      let next = ref t.i_next in
      let rev_decisions = ref t.i_rev_decisions in
      let spine = ref [] in
      let spine_valid = ref false in
      (* Same [n] downto 1 iteration as the immutable quiet path, so the
         spine is ascending by sender and [on_send] call order matches. *)
      let rebuild round =
        let all = ref [] in
        for src = n downto 1 do
          if Bytes.get status (src - 1) = '\000' then begin
            let srcp = Pid.of_int src in
            all :=
              Envelope.make ~src:srcp ~sent:round
                (send_guarded states.(src - 1) ~pid:srcp round)
              :: !all
          end
        done;
        spine := !all;
        spine_valid := true
      in
      (* Recursive loop, not [List.iter f]: an inner closure over [round]
         would cost an allocation per round. *)
      let rec refresh round = function
        | [] -> ()
        | (e : A.msg Envelope.t) :: rest ->
            e.Envelope.sent <- round;
            e.Envelope.payload <-
              send_guarded
                states.(Pid.to_int e.Envelope.src - 1)
                ~pid:e.Envelope.src round;
            refresh round rest
      in
      let step_flat () =
        let round = Round.of_int !next in
        (* Send phase: refresh the spine cells in place, or rebuild the
           list if the sender set changed since last round. *)
        if !spine_valid then refresh round !spine else rebuild round;
        let due =
          if Int_map.is_empty !late then None
          else
            match Int_map.find_opt !next !late with
            | None -> None
            | Some per ->
                late := Int_map.remove !next !late;
                Some per
        in
        (* Receive phase, ascending pid. Merged inboxes for late-delivery
           rounds contain the loaned spine cells — they are read within
           this round only, before the next refresh, so sharing is safe.
           The late envelopes themselves are never mutated: fingerprints
           taken before the tail may still reference them. *)
        let any_stopped = ref false in
        for i = 0 to n - 1 do
          if Bytes.get status i = '\000' then begin
            let p = Pid.of_int (i + 1) in
            let inbox =
              match due with
              | None -> !spine
              | Some per -> (
                  match Pid.Map.find_opt p per with
                  | None -> !spine
                  | Some q ->
                      List.sort Envelope.compare_src
                        (List.rev_append q !spine))
            in
            let st = states.(i) in
            let before = A.decision st in
            let st' = receive_guarded st ~pid:p round inbox in
            let after = A.decision st' in
            (match (before, after) with
            | Some v, Some w when not (Value.equal v w) ->
                fail ~pid:p ~round
                  (Format.asprintf "changed its decision from %a to %a"
                     Value.pp v Value.pp w)
            | Some _, None -> fail ~pid:p ~round "retracted its decision"
            | None, Some v ->
                (* Consing in ascending-pid order leaves this round's
                   decisions descending by pid at the front — the same
                   shape [step]'s [!rev_new @ _] prepend produces. *)
                rev_decisions :=
                  { Trace.pid = p; round; value = v } :: !rev_decisions
            | None, None | Some _, Some _ -> ());
            if A.halted st' then begin
              Bytes.set status i '\001';
              decr live;
              any_stopped := true
            end
            else states.(i) <- st'
          end
        done;
        if !any_stopped then spine_valid := false;
        incr next
      in
      (match prof with
      | None ->
          while !live > 0 && !next <= max_rounds do
            step_flat ()
          done
      | Some a ->
          (* One preallocated thunk: [measure] per round must not cost a
             closure per round. *)
          while !live > 0 && !next <= max_rounds do
            Obs.Prof.measure a step_flat
          done);
      {
        Trace.algorithm = A.name;
        config = t.i_config;
        proposals = t.i_proposals;
        schedule;
        decisions = List.rev !rev_decisions;
        crashes = crashed t (* no crashes occur past the horizon *);
        rounds_executed = !next - 1;
        all_halted = !live = 0;
        records = [];
      }

    let finish ?max_rounds ?prof ~schedule t =
      let max_rounds =
        Option.value max_rounds
          ~default:(default_max_rounds t.i_config schedule)
      in
      let n = Config.n t.i_config in
      let horizon = Schedule.horizon schedule in
      let rec loop t =
        if t.i_live = 0 || t.i_next > max_rounds then
          {
            Trace.algorithm = A.name;
            config = t.i_config;
            proposals = t.i_proposals;
            schedule;
            decisions = decisions t;
            crashes = crashed t;
            rounds_executed = t.i_next - 1;
            all_halted = t.i_live = 0;
            records = [];
          }
        else if t.i_next > horizon then flat_tail ?prof ~max_rounds ~schedule t
        else
          let cplan =
            Schedule.compile_plan ~n
              (Schedule.plan_at schedule (Round.of_int t.i_next))
          in
          let t' =
            match prof with
            | None -> step t cplan
            | Some a -> Obs.Prof.measure a (fun () -> step t cplan)
          in
          loop t'
      in
      loop t
  end

  (* ---------------------------------------------------------------- *)
  (* The mutable arena.

     [Incremental.step] is immutable so the DFS can fork — at the cost of
     a fresh system value (procs array, decision list node, envelopes) per
     round, ≈140 minor words. The arena takes the opposite trade: it is
     the flat-tail representation (status slab, state array, reusable
     envelope spine, see [Incremental.flat_tail]) promoted to a first-class
     value with explicit branch-point snapshots, so the DFS mutates one
     arena in place and rewinds it on backtrack instead of forking.

     Snapshots are copy-on-branch, not an undo log: a snapshot is two
     blits (n status bytes, n state words) plus four scalar stores into a
     preallocated slot, independent of how much the subtree below mutates,
     while an undo log costs a heap cell per mutation on the hot path —
     exactly the allocation this module exists to remove (measurements in
     DESIGN §16). Slots live in a stack grown once to the DFS depth and
     reused for the rest of the sweep.

     Round semantics are bit-identical to [Incremental.step]: same
     [on_send] call order (n downto 1), same ascending-pid receive phase,
     same decision-stability errors, same decision-list shape. The spine
     cells are loaned to receivers within a round only (the {!Envelope}
     loan contract); delayed envelopes are always fresh and never mutated,
     so fingerprints may reference them across rounds. *)

  module Arena = struct
    let st_running = '\000'
    let st_done = '\001'
    let st_crashed = '\002'

    (* A reusable branch-point slot. [sn_status]/[sn_states] are owned
       buffers (blitted both ways); the decision list and late map are
       immutable values captured by pointer. Crash rounds are {e not}
       snapshotted: the status byte is authoritative, a crash-round slot is
       written exactly when [st_running -> st_crashed] fires, and a stale
       value under a restored-to-running status is never read. *)
    type snap = {
      sn_status : Bytes.t;
      sn_states : A.state array;
      mutable sn_live : int;
      mutable sn_next : int;
      mutable sn_decisions : Trace.decision list;
      mutable sn_late : A.msg Envelope.t list Pid.Map.t Int_map.t;
    }

    type fingerprint = {
      fp_status : Bytes.t;  (* running / done / crashed per slot *)
      fp_states : A.state array;  (* non-running slots hold the filler *)
      mutable fp_late : (int * (int * A.msg Envelope.t list) list) list;
      mutable fp_decisions : Trace.decision list;
    }

    type t = {
      a_config : Config.t;
      a_proposals : Value.t Pid.Map.t;
      a_n : int;
      a_status : Bytes.t;  (* process [p] at byte [p - 1] *)
      a_states : A.state array;
      a_crash_round : int array;  (* meaningful only under [st_crashed] *)
      mutable a_live : int;
      mutable a_next : int;  (* next round to execute *)
      mutable a_decisions : Trace.decision list;  (* newest first *)
      mutable a_late : A.msg Envelope.t list Pid.Map.t Int_map.t;
      (* Spine: one reusable envelope cell per process, created at first
         use and refreshed in place each fast round; [a_spine] is the
         ascending list of the running cells, relinked only when the
         running set drifts from [a_spine_status]. *)
      a_cells : A.msg Envelope.t option array;
      mutable a_spine : A.msg Envelope.t list;
      a_spine_status : Bytes.t;
      (* DFS branches revisit the same (status, fault) pairs constantly, so
         spines and reduced inboxes are interned by status byte-string:
         after the first visit a faulty round performs two hash lookups
         ([Hashtbl.find] with a constant-constructor [Not_found] on miss —
         no [option] box) and allocates nothing. Sound because the cached
         lists are alternative cons-chains over the {e same} reusable
         cells, which are only ever refreshed in place, never replaced. *)
      a_spines : (Bytes.t, A.msg Envelope.t list) Hashtbl.t;
      a_lost : (Bytes.t, A.msg Envelope.t list) Hashtbl.t array;
          (* indexed by [sl_src - 1] *)
      a_dst_srcs : (Bitset.Big.t, (Bytes.t, A.msg Envelope.t list) Hashtbl.t) Hashtbl.t;
      mutable a_stack : snap array;
      mutable a_depth : int;
      mutable a_snapshots : int;
      mutable a_restores : int;
      a_filler : A.state;
      a_fp : fingerprint;  (* reusable probe buffers *)
    }

    let create config ~proposals =
      let n = Config.n config in
      let states =
        Array.init n (fun i ->
            let p = Pid.of_int (i + 1) in
            match Pid.Map.find_opt p proposals with
            | Some v -> A.init config p v
            | None ->
                invalid_arg
                  (Format.asprintf "Engine.Arena.create: no proposal for %a"
                     Pid.pp p))
      in
      let filler = states.(0) in
      {
        a_config = config;
        a_proposals = proposals;
        a_n = n;
        a_status = Bytes.make n st_running;
        a_states = states;
        a_crash_round = Array.make n 0;
        a_live = n;
        a_next = 1;
        a_decisions = [];
        a_late = Int_map.empty;
        a_cells = Array.make n None;
        a_spine = [];
        a_spine_status = Bytes.make n '\255' (* never a valid status *);
        a_spines = Hashtbl.create 64;
        a_lost = Array.init n (fun _ -> Hashtbl.create 16);
        a_dst_srcs = Hashtbl.create 8;
        a_stack = [||];
        a_depth = 0;
        a_snapshots = 0;
        a_restores = 0;
        a_filler = filler;
        a_fp =
          {
            fp_status = Bytes.make n st_running;
            fp_states = Array.make n filler;
            fp_late = [];
            fp_decisions = [];
          };
      }

    let next_round t = Round.of_int t.a_next
    let all_halted t = t.a_live = 0
    let decisions t = List.rev t.a_decisions
    let snapshots t = t.a_snapshots
    let restores t = t.a_restores

    let crashed t =
      let acc = ref [] in
      for i = t.a_n - 1 downto 0 do
        if Bytes.get t.a_status i = st_crashed then
          acc :=
            (Pid.of_int (i + 1), Round.of_int t.a_crash_round.(i)) :: !acc
      done;
      !acc

    (* ---------------------------------------------------------------- *)
    (* Snapshots *)

    let save t =
      let n = t.a_n in
      if t.a_depth = Array.length t.a_stack then begin
        let depth = t.a_depth in
        let grown =
          Array.init
            (max 8 (2 * depth))
            (fun i ->
              if i < depth then t.a_stack.(i)
              else
                {
                  sn_status = Bytes.make n st_done;
                  sn_states = Array.make n t.a_filler;
                  sn_live = 0;
                  sn_next = 0;
                  sn_decisions = [];
                  sn_late = Int_map.empty;
                })
        in
        t.a_stack <- grown
      end;
      let s = t.a_stack.(t.a_depth) in
      Bytes.blit t.a_status 0 s.sn_status 0 n;
      Array.blit t.a_states 0 s.sn_states 0 n;
      s.sn_live <- t.a_live;
      s.sn_next <- t.a_next;
      s.sn_decisions <- t.a_decisions;
      s.sn_late <- t.a_late;
      t.a_depth <- t.a_depth + 1;
      t.a_snapshots <- t.a_snapshots + 1

    let restore t =
      if t.a_depth = 0 then invalid_arg "Engine.Arena.restore: no snapshot";
      let n = t.a_n in
      let s = t.a_stack.(t.a_depth - 1) in
      Bytes.blit s.sn_status 0 t.a_status 0 n;
      Array.blit s.sn_states 0 t.a_states 0 n;
      t.a_live <- s.sn_live;
      t.a_next <- s.sn_next;
      t.a_decisions <- s.sn_decisions;
      t.a_late <- s.sn_late;
      t.a_restores <- t.a_restores + 1

    let drop t =
      if t.a_depth = 0 then invalid_arg "Engine.Arena.drop: no snapshot";
      t.a_depth <- t.a_depth - 1

    (* ---------------------------------------------------------------- *)
    (* Fingerprints *)

    let canon_late late =
      Int_map.fold
        (fun k per acc ->
          ( k,
            List.map (fun (p, q) -> (Pid.to_int p, q)) (Pid.Map.bindings per)
          )
          :: acc)
        late []

    (* Same equivalence classes as [Incremental.fingerprint]: the status
       byte plays the [Fp_running]/[Fp_done]/[Fp_crashed] tag and
       non-running state slots are pinned to one filler, so two arena
       fingerprints are structurally equal exactly when the corresponding
       incremental fingerprints are — Dedup's hit/miss sequence is
       unchanged. *)
    let probe_fingerprint t =
      let fp = t.a_fp in
      Bytes.blit t.a_status 0 fp.fp_status 0 t.a_n;
      for i = 0 to t.a_n - 1 do
        fp.fp_states.(i) <-
          (if Bytes.get t.a_status i = st_running then t.a_states.(i)
           else t.a_filler)
      done;
      fp.fp_late <-
        (if Int_map.is_empty t.a_late then [] else canon_late t.a_late);
      fp.fp_decisions <- t.a_decisions;
      fp

    let copy_fingerprint fp =
      {
        fp_status = Bytes.copy fp.fp_status;
        fp_states = Array.copy fp.fp_states;
        fp_late = fp.fp_late;
        fp_decisions = fp.fp_decisions;
      }

    let fingerprint t = copy_fingerprint (probe_fingerprint t)

    (* ---------------------------------------------------------------- *)
    (* Round execution *)

    let rec apply_crashes t round = function
      | [] -> ()
      | victim :: rest ->
          let i = Pid.to_int victim - 1 in
          if Bytes.get t.a_status i = st_running then begin
            Bytes.set t.a_status i st_crashed;
            t.a_crash_round.(i) <- Round.to_int round;
            t.a_live <- t.a_live - 1
          end;
          apply_crashes t round rest

    (* Refresh every running sender's cell in place — [n] downto 1, the
       same [on_send] call order as [Incremental.step], so a raising
       callback is attributed to the same process. Cells are created at
       first use (a process not running at one branch's first fast round
       may be running after a restore in another). *)
    let refresh_cells t round =
      for src = t.a_n downto 1 do
        if Bytes.get t.a_status (src - 1) = st_running then begin
          let srcp = Pid.of_int src in
          match t.a_cells.(src - 1) with
          | Some e ->
              e.Envelope.sent <- round;
              e.Envelope.payload <-
                send_guarded t.a_states.(src - 1) ~pid:srcp round
          | None ->
              t.a_cells.(src - 1) <-
                Some
                  (Envelope.make ~src:srcp ~sent:round
                     (send_guarded t.a_states.(src - 1) ~pid:srcp round))
        end
      done

    let cell t src =
      match t.a_cells.(src - 1) with Some e -> e | None -> assert false

    let spine_for t =
      match Hashtbl.find t.a_spines t.a_status with
      | spine -> spine
      | exception Not_found ->
          let all = ref [] in
          for src = t.a_n downto 1 do
            if Bytes.get t.a_status (src - 1) = st_running then
              all := cell t src :: !all
          done;
          Hashtbl.add t.a_spines (Bytes.copy t.a_status) !all;
          !all

    let relink_spine t =
      if not (Bytes.equal t.a_status t.a_spine_status) then begin
        t.a_spine <- spine_for t;
        Bytes.blit t.a_status 0 t.a_spine_status 0 t.a_n
      end

    (* Reduced inboxes ([sl_src]'s or [sd_srcs]'s messages removed) keyed
       the same way; [Single_lost] nests by source in an array,
       [Single_dst] by the canonical omitter bitset. *)
    let reduced_lost t sl_src =
      let tbl = t.a_lost.(sl_src - 1) in
      match Hashtbl.find tbl t.a_status with
      | l -> l
      | exception Not_found ->
          let acc = ref [] in
          for src = t.a_n downto 1 do
            if src <> sl_src && Bytes.get t.a_status (src - 1) = st_running
            then acc := cell t src :: !acc
          done;
          Hashtbl.add tbl (Bytes.copy t.a_status) !acc;
          !acc

    let reduced_dst t sd_srcs =
      let tbl =
        match Hashtbl.find t.a_dst_srcs sd_srcs with
        | tbl -> tbl
        | exception Not_found ->
            let tbl = Hashtbl.create 16 in
            Hashtbl.add t.a_dst_srcs sd_srcs tbl;
            tbl
      in
      match Hashtbl.find tbl t.a_status with
      | l -> l
      | exception Not_found ->
          let acc = ref [] in
          for src = t.a_n downto 1 do
            if
              Bytes.get t.a_status (src - 1) = st_running
              && not (Bitset.Big.mem src sd_srcs)
            then acc := cell t src :: !acc
          done;
          Hashtbl.add tbl (Bytes.copy t.a_status) !acc;
          !acc

    let receive_one t p round inbox =
      let i = Pid.to_int p - 1 in
      let st = t.a_states.(i) in
      let before = A.decision st in
      let st' = receive_guarded st ~pid:p round inbox in
      let after = A.decision st' in
      (match (before, after) with
      | Some v, Some w when not (Value.equal v w) ->
          fail ~pid:p ~round
            (Format.asprintf "changed its decision from %a to %a" Value.pp v
               Value.pp w)
      | Some _, None -> fail ~pid:p ~round "retracted its decision"
      | None, Some v ->
          (* Consing in ascending-pid order leaves this round's decisions
             descending by pid at the front — the same shape
             [Incremental.step] produces. *)
          t.a_decisions <-
            { Trace.pid = p; round; value = v } :: t.a_decisions
      | None, None | Some _, Some _ -> ());
      if A.halted st' then begin
        Bytes.set t.a_status i st_done;
        t.a_live <- t.a_live - 1
      end
      else t.a_states.(i) <- st'

    (* A raising step leaves the arena mid-round (dirty); the DFS contract
       is that the caller rewinds to a snapshot before touching it again. *)
    let step t cplan =
      let n = t.a_n in
      let round = Round.of_int t.a_next in
      let plan = Schedule.compiled_source cplan in
      let fates = Schedule.compiled_fates cplan in
      let late_due =
        if Int_map.is_empty t.a_late then None
        else Int_map.find_opt t.a_next t.a_late
      in
      match fates with
      | (Schedule.Quiet | Schedule.Single_lost _ | Schedule.Single_dst _)
        when late_due = None ->
          (* Fast path: refresh the spine in place; at most one reduced
             inbox (the victim's messages removed, or the starved
             receiver's view) is built per round — ~n conses on faulty
             rounds, nothing at all on steady quiet rounds. *)
          refresh_cells t round;
          relink_spine t;
          let m_dsts =
            match fates with
            | Schedule.Single_lost { sl_dsts; _ } -> sl_dsts
            | _ -> Bitset.Big.empty
          in
          let m_dst =
            match fates with
            | Schedule.Single_dst { sd_dst; _ } -> sd_dst
            | _ -> 0
          in
          let reduced =
            match fates with
            | Schedule.Quiet | Schedule.Table _ -> []
            | Schedule.Single_lost { sl_src; _ } -> reduced_lost t sl_src
            | Schedule.Single_dst { sd_srcs; _ } -> reduced_dst t sd_srcs
          in
          let quiet =
            match fates with Schedule.Quiet -> true | _ -> false
          in
          apply_crashes t round plan.Schedule.crashes;
          for i = 0 to n - 1 do
            if Bytes.get t.a_status i = st_running then begin
              let inbox =
                if quiet then t.a_spine
                else if m_dst > 0 then
                  if i + 1 = m_dst then reduced else t.a_spine
                else if Bitset.Big.mem (i + 1) m_dsts then reduced
                else t.a_spine
              in
              receive_one t (Pid.of_int (i + 1)) round inbox
            end
          done;
          t.a_next <- t.a_next + 1
      | _ ->
          (* General path (fate tables, delayed messages, late deliveries
             due this round): fresh envelopes per sender — late envelopes
             outlive the round and must never alias the mutable spine
             cells. Mirrors [Incremental.step]'s general branch. *)
          if late_due <> None then
            t.a_late <- Int_map.remove t.a_next t.a_late;
          let ib = Array.make n [] in
          for src = n downto 1 do
            if Bytes.get t.a_status (src - 1) = st_running then begin
              let srcp = Pid.of_int src in
              let env =
                Envelope.make ~src:srcp ~sent:round
                  (send_guarded t.a_states.(src - 1) ~pid:srcp round)
              in
              for dst = 1 to n do
                if dst = src then ib.(dst - 1) <- env :: ib.(dst - 1)
                else
                  match
                    Schedule.compiled_fate cplan ~src:srcp
                      ~dst:(Pid.of_int dst)
                  with
                  | Schedule.Same_round ->
                      ib.(dst - 1) <- env :: ib.(dst - 1)
                  | Schedule.Lost -> ()
                  | Schedule.Delayed_until until ->
                      let k = Round.to_int until in
                      let dstp = Pid.of_int dst in
                      let per =
                        Option.value
                          (Int_map.find_opt k t.a_late)
                          ~default:Pid.Map.empty
                      in
                      let q =
                        Option.value (Pid.Map.find_opt dstp per) ~default:[]
                      in
                      t.a_late <-
                        Int_map.add k (Pid.Map.add dstp (env :: q) per)
                          t.a_late
              done
            end
          done;
          (match late_due with
          | None -> ()
          | Some per ->
              (* Late arrivals break the by-construction sender order:
                 merge and re-sort exactly like the batch engine. *)
              Pid.Map.iter
                (fun dst q ->
                  let i = Pid.to_int dst - 1 in
                  ib.(i) <-
                    List.sort Envelope.compare_src
                      (List.rev_append q ib.(i)))
                per);
          apply_crashes t round plan.Schedule.crashes;
          for i = 0 to n - 1 do
            if Bytes.get t.a_status i = st_running then
              receive_one t (Pid.of_int (i + 1)) round ib.(i)
          done;
          t.a_next <- t.a_next + 1

    let trace ~schedule t =
      {
        Trace.algorithm = A.name;
        config = t.a_config;
        proposals = t.a_proposals;
        schedule;
        decisions = List.rev t.a_decisions;
        crashes = crashed t;
        rounds_executed = t.a_next - 1;
        all_halted = t.a_live = 0;
        records = [];
      }

    let finish ?max_rounds ?prof ~schedule t =
      let max_rounds =
        Option.value max_rounds
          ~default:(default_max_rounds t.a_config schedule)
      in
      let n = t.a_n in
      let horizon = Schedule.horizon schedule in
      (* One preallocated thunk: [measure] per round must not cost a
         closure per round. *)
      let step_once () =
        if t.a_next <= horizon then
          step t
            (Schedule.compile_plan ~n
               (Schedule.plan_at schedule (Round.of_int t.a_next)))
        else step t Schedule.compiled_empty_plan
      in
      (match prof with
      | None ->
          while t.a_live > 0 && t.a_next <= max_rounds do
            step_once ()
          done
      | Some a ->
          while t.a_live > 0 && t.a_next <= max_rounds do
            Obs.Prof.measure a step_once
          done);
      trace ~schedule t
  end

  let run ?(record = false) ?(sink = Obs.Sink.noop) ?max_rounds ?prof config
      ~proposals schedule =
    if (not record) && not (Obs.Sink.enabled sink) then
      (* Nobody is watching: take the incremental core end to end — flat
         array state, shared inboxes, and the in-place zero-allocation
         tail past the horizon — instead of the map-based recording
         engine. Produces the same trace (same decisions, crashes, round
         count and halt flag; both paths build [records = []]). *)
      Incremental.finish ?max_rounds ?prof ~schedule
        (Incremental.start config ~proposals)
    else begin
    let max_rounds =
      Option.value max_rounds ~default:(default_max_rounds config schedule)
    in
    if Obs.Sink.enabled sink then
      Obs.Sink.emit sink
        (Obs.Event.Run_start
           {
             algorithm = A.name;
             n = Config.n config;
             t = Config.t config;
             proposals = Pid.Map.bindings proposals;
           });
    let rec loop sys =
      if all_halted sys || Round.to_int sys.next_round > max_rounds then sys
      else
        let plan = Schedule.plan_at schedule sys.next_round in
        let sys' =
          match prof with
          | None -> step sys plan
          | Some a -> Obs.Prof.measure a (fun () -> step sys plan)
        in
        loop sys'
    in
    let sys =
      loop { (start ~sink config ~proposals) with recording = record }
    in
    let trace =
      {
        Trace.algorithm = A.name;
        config;
        proposals;
        schedule;
        decisions = decisions sys;
        crashes = crashed sys;
        rounds_executed = Round.to_int sys.next_round - 1;
        all_halted = all_halted sys;
        records = List.rev sys.rev_records;
      }
    in
    if Obs.Sink.enabled sink then
      Obs.Sink.emit sink
        (Obs.Event.Run_end
           {
             rounds = trace.Trace.rounds_executed;
             decided = List.length trace.Trace.decisions;
             all_halted = trace.Trace.all_halted;
           });
    trace
    end
end
