open Kernel
module Int_map = Map.Make (Int)

(* Generous: room for the schedule itself, the asynchronous prefix, and a
   full rotation of coordinator phases after gst for the slowest algorithm
   (4 rounds per phase, up to n phases), plus the t+3 framing of A_{t+2}. *)
let default_max_rounds config schedule =
  Schedule.horizon schedule
  + Round.to_int (Schedule.gst schedule)
  + (5 * (Config.n config + 2))
  + Config.t config + 10

module Make (A : Algorithm.S) = struct
  type proc =
    | Running of A.state
    | Done of Round.t * A.state  (* halted (returned) in the given round *)
    | Crashed of Round.t

  type sys = {
    config : Config.t;
    next_round : Round.t;
    procs : proc Pid.Map.t;
    pending : A.msg Envelope.t list Pid.Map.t Int_map.t;
        (* delivery round -> receiver -> envelopes *)
    rev_decisions : Trace.decision list;
    rev_records : Trace.round_record list;
    recording : bool;
    sink : Obs.Sink.t;
  }

  let start ?(sink = Obs.Sink.noop) config ~proposals =
    let n = Config.n config in
    let procs =
      List.fold_left
        (fun acc p ->
          match Pid.Map.find_opt p proposals with
          | Some v -> Pid.Map.add p (Running (A.init config p v)) acc
          | None ->
              invalid_arg
                (Format.asprintf "Engine.start: no proposal for %a" Pid.pp p))
        Pid.Map.empty (Pid.all ~n)
    in
    {
      config;
      next_round = Round.first;
      procs;
      pending = Int_map.empty;
      rev_decisions = [];
      rev_records = [];
      recording = false;
      sink;
    }

  let next_round sys = sys.next_round
  let decisions sys = List.rev sys.rev_decisions

  let state_of sys p =
    match Pid.Map.find_opt p sys.procs with
    | Some (Running st) | Some (Done (_, st)) -> Some st
    | Some (Crashed _) | None -> None

  let alive sys =
    Pid.Map.fold
      (fun p proc acc -> match proc with Running _ -> p :: acc | _ -> acc)
      sys.procs []
    |> List.rev

  let crashed sys =
    Pid.Map.fold
      (fun p proc acc ->
        match proc with Crashed r -> (p, r) :: acc | _ -> acc)
      sys.procs []
    |> List.rev

  let all_halted sys =
    Pid.Map.for_all
      (fun _ proc -> match proc with Running _ -> false | _ -> true)
      sys.procs

  let enqueue pending ~deliver_round ~dst env =
    let k = Round.to_int deliver_round in
    let per_dst =
      Option.value (Int_map.find_opt k pending) ~default:Pid.Map.empty
    in
    let queue = Option.value (Pid.Map.find_opt dst per_dst) ~default:[] in
    Int_map.add k (Pid.Map.add dst (env :: queue) per_dst) pending

  let fate_in (plan : Schedule.plan) ~src ~dst =
    if
      List.exists
        (fun (i, j) -> Pid.equal i src && Pid.equal j dst)
        plan.Schedule.lost
    then Schedule.Lost
    else
      match
        List.find_opt
          (fun (i, j, _) -> Pid.equal i src && Pid.equal j dst)
          plan.Schedule.delayed
      with
      | Some (_, _, until) -> Schedule.Delayed_until until
      | None -> Schedule.Same_round

  let step sys (plan : Schedule.plan) =
    let config = sys.config in
    let n = Config.n config in
    let round = sys.next_round in
    let sink = sys.sink in
    (* [observing] guards every event construction: with the no-op sink the
       hot path performs one boolean test per site and allocates nothing. *)
    let observing = Obs.Sink.enabled sink in
    if observing then Obs.Sink.emit sink (Obs.Event.Round_start { round });
    (* Send phase: every running process broadcasts. *)
    let senders =
      Pid.Map.fold
        (fun p proc acc ->
          match proc with Running st -> (p, st) :: acc | _ -> acc)
        sys.procs []
      |> List.rev
    in
    let bytes_sent = ref 0 in
    let pending =
      List.fold_left
        (fun pending (src, st) ->
          let payload = A.on_send st round in
          if sys.recording || observing then begin
            let bytes = n * (Algorithm.header_bytes + A.wire_size payload) in
            bytes_sent := !bytes_sent + bytes;
            if observing then
              Obs.Sink.emit sink
                (Obs.Event.Send { src; round; copies = n; bytes })
          end;
          let env = Envelope.make ~src ~sent:round payload in
          List.fold_left
            (fun pending dst ->
              if Pid.equal src dst then
                enqueue pending ~deliver_round:round ~dst env
              else
                match fate_in plan ~src ~dst with
                | Schedule.Same_round ->
                    enqueue pending ~deliver_round:round ~dst env
                | Schedule.Delayed_until until ->
                    if observing then
                      Obs.Sink.emit sink
                        (Obs.Event.Delay { src; dst; round; until });
                    enqueue pending ~deliver_round:until ~dst env
                | Schedule.Lost ->
                    if observing then
                      Obs.Sink.emit sink (Obs.Event.Drop { src; dst; round });
                    pending)
            pending (Pid.all ~n))
        sys.pending senders
    in
    (* Crashes take effect before the receive phase: a process crashing in
       round k does not complete round k. *)
    let procs =
      List.fold_left
        (fun procs victim ->
          match Pid.Map.find_opt victim procs with
          | Some (Running _) ->
              if observing then
                Obs.Sink.emit sink (Obs.Event.Crash { pid = victim; round });
              Pid.Map.add victim (Crashed round) procs
          | Some (Done _) | Some (Crashed _) | None -> procs)
        sys.procs plan.Schedule.crashes
    in
    (* Receive phase. *)
    let due =
      Option.value
        (Int_map.find_opt (Round.to_int round) pending)
        ~default:Pid.Map.empty
    in
    let pending = Int_map.remove (Round.to_int round) pending in
    let deliveries = ref [] in
    let new_decisions = ref [] in
    let procs =
      Pid.Map.mapi
        (fun p proc ->
          match proc with
          | Crashed _ | Done _ -> proc
          | Running st ->
              let inbox =
                Option.value (Pid.Map.find_opt p due) ~default:[]
                |> List.sort Envelope.compare_src
              in
              if sys.recording then
                List.iter
                  (fun (e : _ Envelope.t) ->
                    deliveries := (e.src, p, e.sent) :: !deliveries)
                  inbox;
              if observing then
                List.iter
                  (fun (e : _ Envelope.t) ->
                    Obs.Sink.emit sink
                      (Obs.Event.Deliver
                         { src = e.src; dst = p; sent = e.sent; round }))
                  inbox;
              let before = A.decision st in
              let st' = A.on_receive st round inbox in
              let after = A.decision st' in
              (match (before, after) with
              | Some v, Some w when not (Value.equal v w) ->
                  failwith
                    (Format.asprintf
                       "%s: %a changed its decision from %a to %a in round %d"
                       A.name Pid.pp p Value.pp v Value.pp w
                       (Round.to_int round))
              | Some _, None ->
                  failwith
                    (Format.asprintf "%s: %a retracted its decision" A.name
                       Pid.pp p)
              | None, Some v ->
                  if observing then
                    Obs.Sink.emit sink
                      (Obs.Event.Decide { pid = p; round; value = v });
                  new_decisions :=
                    { Trace.pid = p; round; value = v } :: !new_decisions
              | None, None | Some _, Some _ -> ());
              if A.halted st' then begin
                if observing then
                  Obs.Sink.emit sink (Obs.Event.Halt { pid = p; round });
                Done (round, st')
              end
              else Running st')
        procs
    in
    let new_decisions =
      List.sort
        (fun (a : Trace.decision) b -> Pid.compare a.pid b.pid)
        !new_decisions
    in
    let record =
      if sys.recording then
        [
          {
            Trace.round;
            senders = List.map fst senders;
            crashed_now = plan.Schedule.crashes;
            delivered = List.rev !deliveries;
            bytes_sent = !bytes_sent;
            new_decisions;
          };
        ]
      else []
    in
    {
      sys with
      next_round = Round.succ round;
      procs;
      pending;
      rev_decisions = List.rev_append new_decisions sys.rev_decisions;
      rev_records = record @ sys.rev_records;
    }

  let run ?(record = false) ?(sink = Obs.Sink.noop) ?max_rounds config
      ~proposals schedule =
    let max_rounds =
      Option.value max_rounds ~default:(default_max_rounds config schedule)
    in
    if Obs.Sink.enabled sink then
      Obs.Sink.emit sink
        (Obs.Event.Run_start
           {
             algorithm = A.name;
             n = Config.n config;
             t = Config.t config;
             proposals = Pid.Map.bindings proposals;
           });
    let rec loop sys =
      if all_halted sys || Round.to_int sys.next_round > max_rounds then sys
      else loop (step sys (Schedule.plan_at schedule sys.next_round))
    in
    let sys =
      loop { (start ~sink config ~proposals) with recording = record }
    in
    let trace =
      {
        Trace.algorithm = A.name;
        config;
        proposals;
        schedule;
        decisions = decisions sys;
        crashes = crashed sys;
        rounds_executed = Round.to_int sys.next_round - 1;
        all_halted = all_halted sys;
        records = List.rev sys.rev_records;
      }
    in
    if Obs.Sink.enabled sink then
      Obs.Sink.emit sink
        (Obs.Event.Run_end
           {
             rounds = trace.Trace.rounds_executed;
             decided = List.length trace.Trace.decisions;
             all_halted = trace.Trace.all_halted;
           });
    trace
end
