(** A message in transit or delivered: the payload together with its sender
    and the round in which it was sent.

    In ES a message can be received in a round strictly higher than [sent];
    algorithms distinguish "current-round" messages (which define suspicion)
    from late ones by comparing [sent] with the receive round. *)

open Kernel

type 'm t = { src : Pid.t; sent : Round.t; payload : 'm }

val make : src:Pid.t -> sent:Round.t -> 'm -> 'm t
val is_current : 'm t -> round:Round.t -> bool

val compare_src : 'm t -> 'm t -> int
(** Order by sender id (inboxes are sorted with this for determinism). *)

val pp : (Format.formatter -> 'm -> unit) -> Format.formatter -> 'm t -> unit
