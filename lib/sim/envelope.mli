(** A message in transit or delivered: the payload together with its sender
    and the round in which it was sent.

    In ES a message can be received in a round strictly higher than [sent];
    algorithms distinguish "current-round" messages (which define suspicion)
    from late ones by comparing [sent] with the receive round.

    {b Loan contract.} [sent] and [payload] are mutable so the engine's
    zero-allocation tail loop can recycle one envelope per sender across
    quiet rounds instead of allocating [n] fresh ones per round. An inbox's
    envelopes are therefore {e loaned} to {!Algorithm.S.on_receive} for the
    duration of that call only: an algorithm may read them freely and may
    keep the {e payload} value (payloads are never mutated in place — each
    round installs a new one), but must not store the envelope records
    themselves in its state. Every algorithm in this repository extracts
    [src]/[sent]/[payload] or builds its own envelopes ({!make}), which is
    the intended style. *)

open Kernel

type 'm t = { src : Pid.t; mutable sent : Round.t; mutable payload : 'm }

val make : src:Pid.t -> sent:Round.t -> 'm -> 'm t
val is_current : 'm t -> round:Round.t -> bool

val compare_src : 'm t -> 'm t -> int
(** Order by sender id (inboxes are sorted with this for determinism). *)

val pp : (Format.formatter -> 'm -> unit) -> Format.formatter -> 'm t -> unit
