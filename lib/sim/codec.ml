open Kernel

let encode schedule =
  let buf = Buffer.create 256 in
  let omit_token =
    match Schedule.omitters schedule with
    | [] -> ""
    | os ->
        " omit="
        ^ String.concat ","
            (List.map
               (fun (p, cls) ->
                 Printf.sprintf "%s:%s" (Pid.to_string p)
                   (Model.omission_to_string cls))
               os)
  in
  let budget_token =
    match Schedule.budget schedule with
    | None -> ""
    | Some { Model.t_crash; t_omit } ->
        Printf.sprintf " budget=%d+%d" t_crash t_omit
  in
  Buffer.add_string buf
    (Printf.sprintf "schedule %s gst=%d%s%s\n"
       (Model.to_string (Schedule.model schedule))
       (Round.to_int (Schedule.gst schedule))
       omit_token budget_token);
  List.iteri
    (fun idx (plan : Schedule.plan) ->
      let groups = ref [] in
      if plan.delayed <> [] then
        groups :=
          ("delay "
          ^ String.concat " "
              (List.map
                 (fun (src, dst, until) ->
                   Printf.sprintf "%s->%s@%d" (Pid.to_string src)
                     (Pid.to_string dst) (Round.to_int until))
                 plan.delayed))
          :: !groups;
      if plan.lost <> [] then
        groups :=
          ("lose "
          ^ String.concat " "
              (List.map
                 (fun (src, dst) ->
                   Printf.sprintf "%s->%s" (Pid.to_string src)
                     (Pid.to_string dst))
                 plan.lost))
          :: !groups;
      if plan.crashes <> [] then
        groups :=
          ("crash "
          ^ String.concat " " (List.map Pid.to_string plan.crashes))
          :: !groups;
      if !groups <> [] then
        Buffer.add_string buf
          (Printf.sprintf "round %d: %s\n" (idx + 1)
             (String.concat " | " !groups)))
    (Schedule.plans schedule);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Parse of string

let parse_error fmt = Printf.ksprintf (fun m -> raise (Parse m)) fmt

let parse_pid token =
  match
    if String.length token > 1 && token.[0] = 'p' then
      int_of_string_opt (String.sub token 1 (String.length token - 1))
    else None
  with
  | Some i when i >= 1 -> Pid.of_int i
  | _ -> parse_error "expected a process id like p3, got %S" token

let parse_edge token =
  match String.index_opt token '-' with
  | Some i
    when i + 1 < String.length token
         && token.[i + 1] = '>' ->
      let src = String.sub token 0 i in
      let dst = String.sub token (i + 2) (String.length token - i - 2) in
      (parse_pid src, dst)
  | _ -> parse_error "expected src->dst, got %S" token

let parse_lost token =
  let src, dst = parse_edge token in
  (src, parse_pid dst)

let parse_delayed token =
  let src, rest = parse_edge token in
  match String.index_opt rest '@' with
  | Some i ->
      let dst = String.sub rest 0 i in
      let round = String.sub rest (i + 1) (String.length rest - i - 1) in
      let until =
        match int_of_string_opt round with
        | Some r when r >= 1 -> Round.of_int r
        | _ -> parse_error "bad delivery round in %S" token
      in
      (src, parse_pid dst, until)
  | None -> parse_error "expected src->dst@round, got %S" token

let words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let parse_group group (plan : Schedule.plan) =
  match words group with
  | "crash" :: pids ->
      { plan with Schedule.crashes = plan.crashes @ List.map parse_pid pids }
  | "lose" :: edges ->
      { plan with Schedule.lost = plan.lost @ List.map parse_lost edges }
  | "delay" :: edges ->
      { plan with Schedule.delayed = plan.delayed @ List.map parse_delayed edges }
  | kw :: _ -> parse_error "unknown group %S (crash | lose | delay)" kw
  | [] -> plan

let parse_round_line line plans =
  match String.index_opt line ':' with
  | None -> parse_error "round line needs a colon: %S" line
  | Some i ->
      let head = String.sub line 0 i in
      let body = String.sub line (i + 1) (String.length line - i - 1) in
      let round =
        match words head with
        | [ "round"; k ] -> (
            match int_of_string_opt k with
            | Some k when k >= 1 -> k
            | _ -> parse_error "bad round number in %S" head)
        | _ -> parse_error "expected 'round <k>:', got %S" head
      in
      let plan =
        List.fold_left
          (fun plan group -> parse_group group plan)
          Schedule.empty_plan
          (String.split_on_char '|' body)
      in
      (round, plan) :: plans

let decode text =
  try
    let lines =
      String.split_on_char '\n' text
      |> List.map String.trim
      |> List.filter (fun l -> l <> "" && l.[0] <> '#')
    in
    match lines with
    | [] -> Error "empty schedule text"
    | header :: rest ->
        let model, gst, omitters, budget =
          match words header with
          | "schedule" :: model :: gst :: extras ->
              let model =
                match String.uppercase_ascii model with
                | "ES" -> Model.Es
                | "SCS" -> Model.Scs
                | "DLS" -> Model.Dls_basic
                | other -> parse_error "unknown model %S" other
              in
              let gst =
                match String.split_on_char '=' gst with
                | [ "gst"; v ] -> (
                    match int_of_string_opt v with
                    | Some g when g >= 1 -> Round.of_int g
                    | _ -> parse_error "bad gst in %S" gst)
                | _ -> parse_error "expected gst=<round>, got %S" gst
              in
              (* Optional header tokens, any order:
                 [omit=p2:send,p4:recv] and [budget=<t_crash>+<t_omit>].
                 Headers without them (every pre-omission artifact) parse
                 unchanged. *)
              let omitters, budget =
                List.fold_left
                  (fun (omitters, budget) extra ->
                    match String.split_on_char '=' extra with
                    | [ "omit"; decls ] ->
                        let parse_decl d =
                          match String.split_on_char ':' d with
                          | [ pid; cls ] -> (
                              match Model.omission_of_string cls with
                              | Some cls -> (parse_pid pid, cls)
                              | None ->
                                  parse_error
                                    "bad omission class in %S (send | recv)" d)
                          | _ ->
                              parse_error "expected pid:class, got %S in %S" d
                                extra
                        in
                        ( omitters
                          @ List.map parse_decl
                              (String.split_on_char ',' decls),
                          budget )
                    | [ "budget"; spec ] -> (
                        match String.split_on_char '+' spec with
                        | [ c; o ] -> (
                            match (int_of_string_opt c, int_of_string_opt o)
                            with
                            | Some c, Some o when c >= 0 && o >= 0 ->
                                (omitters, Some (Model.budget ~t_crash:c ~t_omit:o))
                            | _ ->
                                parse_error "bad budget in %S (want c+o)" extra)
                        | _ -> parse_error "bad budget in %S (want c+o)" extra)
                    | _ ->
                        parse_error
                          "unknown header token %S (omit=... | budget=...)"
                          extra)
                  ([], None) extras
              in
              (model, gst, omitters, budget)
          | _ ->
              parse_error "expected header 'schedule <ES|SCS> gst=<k>', got %S"
                header
        in
        let indexed =
          List.fold_left (fun plans line -> parse_round_line line plans) [] rest
        in
        let horizon =
          List.fold_left (fun acc (k, _) -> max acc k) 0 indexed
        in
        let plans =
          List.map
            (fun k ->
              match List.assoc_opt k indexed with
              | Some plan -> plan
              | None -> Schedule.empty_plan)
            (Listx.range 1 horizon)
        in
        Ok (Schedule.make ~omitters ?budget ~model ~gst plans)
  with Parse msg -> Error msg

let decode_exn text =
  match decode text with
  | Ok s -> s
  | Error msg -> invalid_arg ("Codec.decode: " ^ msg)
