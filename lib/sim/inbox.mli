(** Helpers over the list of envelopes delivered to a process in one round.

    The receive phase of round [k] hands an algorithm every message arriving
    in round [k]: the round-[k] messages delivered on time plus any delayed
    messages whose delivery round is [k]. Suspicion (Section 1.2) is defined
    from the current-round subset: [p_i] {e suspects} [p_j] in round [k] iff
    no round-[k] message from [p_j] arrives in round [k]. *)

open Kernel

type 'm t = 'm Envelope.t list

val current : 'm t -> round:Round.t -> 'm Envelope.t list
(** Envelopes sent in the current round, sorted by sender. *)

val late : 'm t -> round:Round.t -> 'm Envelope.t list
(** Envelopes sent in earlier rounds (delayed deliveries), sorted by sender
    then sent round. *)

val senders : 'm t -> round:Round.t -> Pid.Set.t
(** Senders of current-round envelopes. *)

val suspected : n:int -> 'm t -> round:Round.t -> Pid.Set.t
(** Complement of {!senders} in the whole process set: exactly the processes
    the receiver suspects in this round, and also the round-[k] output of the
    failure-detector simulation of Section 4. Requires
    [n <= Kernel.Bitset.max_pid]. *)

val senders_bits : 'm t -> round:Round.t -> Kernel.Bitset.t
(** {!senders} as an unboxed bitset: one pass over the inbox, no sort, no
    allocation beyond the result. {!senders}/{!suspected} are views over
    these. *)

val suspected_bits : n:int -> 'm t -> round:Round.t -> Kernel.Bitset.t

val senders_bigbits : 'm t -> round:Round.t -> Kernel.Bitset.Big.t
(** {!senders_bits} on the array-backed {!Kernel.Bitset.Big}: for systems
    with [n > Kernel.Bitset.max_pid], where the unboxed variant cannot
    represent every pid. *)

val suspected_bigbits : n:int -> 'm t -> round:Round.t -> Kernel.Bitset.Big.t

val payloads : 'm t -> 'm list
val current_payloads : 'm t -> round:Round.t -> 'm list

val from : 'm t -> src:Pid.t -> round:Round.t -> 'm option
(** The payload of the current-round message from [src], if delivered. *)

val count_current : 'm t -> round:Round.t -> int
