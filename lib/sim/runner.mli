(** Convenience entry points for running algorithms packed as first-class
    modules (the form the registry, experiments and benchmarks use). *)

open Kernel

val run :
  ?record:bool ->
  ?sink:Obs.Sink.t ->
  ?max_rounds:int ->
  ?prof:Obs.Prof.acc ->
  Algorithm.packed ->
  Config.t ->
  proposals:Value.t Pid.Map.t ->
  Schedule.t ->
  Trace.t
(** See {!Engine.Make.run}; [sink] streams the run's {!Obs.Event.t}s,
    [prof] accumulates per-round GC deltas. *)

val proposals_of_list : Value.t list -> Value.t Pid.Map.t
(** [proposals_of_list [v1; ...; vn]] assigns [vi] to [p_i]. *)

val distinct_proposals : Config.t -> Value.t Pid.Map.t
(** [p_i] proposes value [i] — the canonical totally-ordered, all-distinct
    input. *)

val binary_proposals : Config.t -> ones:Pid.Set.t -> Value.t Pid.Map.t
(** Binary consensus input: processes in [ones] propose 1, the rest 0. *)

val uniform_proposals : Config.t -> Value.t -> Value.t Pid.Map.t
