(** The interface every round-based consensus algorithm implements.

    An algorithm is a deterministic automaton per process (Section 1.2): in
    the send phase of round [k] it produces one message, broadcast to all
    processes (the engine routes a copy to everyone, including the sender);
    in the receive phase it consumes the envelopes arriving in round [k] and
    updates its state. Decisions are observed through {!S.decision}; a
    process that has returned from [propose] reports {!S.halted} and stops
    sending.

    {2 Purity and determinism}

    The callbacks must be {e pure functions of their arguments} and the
    state must be {e plain immutable data}:

    - [init], [on_send] and [on_receive] may not read clocks, randomness or
      any ambient mutable state, and may not mutate their inputs — given
      equal arguments they must return structurally equal results. The
      whole simulation stack assumes this: the engine forks states at DFS
      choice points without copying, fuzz campaigns replay runs from seeds,
      and parallel sweeps re-run the same subtree on any domain expecting
      bit-identical results.
    - [state] and [msg] must contain no functions, no mutable fields and no
      abstract values with non-structural identity (no closures, refs,
      arrays that are later mutated, hash tables, ...). The model checker's
      transposition table ({!Mc.Dedup}) keys on
      {!Engine.Make.Incremental.fingerprint}, which embeds algorithm states
      and message payloads and compares them with polymorphic [(=)] /
      [Hashtbl.hash]; a state violating this is not {e unsound} (a missed
      structural equality only loses cache hits) but a state whose
      structural equality is {e coarser} than its behaviour — e.g. a
      memoisation field that does not affect future steps — would be, so
      keep states canonical: equal behaviour iff equal structure.

    These are the same rules every algorithm in this repository already
    follows; they are spelled out here because the reduction layer now
    depends on them. *)

open Kernel

module type S = sig
  type state
  (** Local state of one process — immutable, function-free data (see the
      purity contract above). *)

  type msg
  (** Round messages. Algorithms that conceptually send nothing in a round
      send an explicit dummy constructor, since receiving {e any} round-[k]
      message is what prevents suspicion. *)

  val name : string

  val model : Model.t
  (** The model the algorithm is designed for. Running an SCS algorithm on
      ES schedules is permitted by the engine — that mismatch is exactly
      what experiment E9 demonstrates — but the properties it guarantees
      only hold on schedules of its own model. *)

  val symmetric : bool
  (** Whether the automaton commutes with process-id permutations: for
      every permutation [pi] of [p1..pn], relabelling the pids in the
      proposals, the schedule and every pid-valued message/state field
      yields exactly the relabelled run. Equivalently: no step breaks ties
      or selects inputs {e by id}. Tracking pid {e sets}, counting
      messages, and taking minima over {e values} are all symmetric;
      "the [n - t] estimates with the lowest sender ids", rotating
      coordinators and leader-based phases are not.

      {!Mc.Symmetry} consults this flag before sweeping one representative
      per orbit of binary proposal assignments. The default answer is
      [false]: a wrong [true] silently unsounds symmetry-reduced sweeps
      (they would scale one orbit member's verdicts to the whole orbit),
      while a wrong [false] merely forgoes the reduction. Functor-built
      algorithms should inherit the flag of their weakest component —
      [A_{t+2}] over a coordinator-based fallback declares [false] even
      though its flooding phase is symmetric. *)

  val init : Config.t -> Pid.t -> Value.t -> state
  (** [init config pi v] is the state of process [pi] after [propose(v)]
      and before round 1. *)

  val on_send : state -> Round.t -> msg
  (** The message broadcast in the send phase of the given round. *)

  val on_receive : state -> Round.t -> msg Envelope.t list -> state
  (** The receive phase: every envelope delivered in this round (current
      and delayed), sorted by sender id. *)

  val decision : state -> Value.t option
  (** The value decided so far, if any. Once [Some v], it must stay
      [Some v] forever (the checker enforces this). *)

  val halted : state -> bool
  (** The process has returned from [propose]: it will not send or receive
      any further message. *)

  val wire_size : msg -> int
  (** Estimated payload size in bytes if the message were serialized (tags,
      fixed-width ints, length-prefixed collections). Used by the cost
      experiment (E10) to compare bytes-on-wire across algorithms; it does
      not affect execution. Headers (sender, round) are accounted by the
      engine. *)

  val pp_msg : Format.formatter -> msg -> unit
  val pp_state : Format.formatter -> state -> unit
end

val header_bytes : int
(** Per-copy header the engine charges on top of {!S.wire_size}: sender id
    (2 bytes), round number (4) and a message tag (1). *)

type packed = Packed : (module S with type state = 's and type msg = 'm) -> packed
(** An algorithm with its state and message types sealed — what sweeps,
    campaigns and the CLI pass around. *)

val name : packed -> string
val model : packed -> Model.t
val symmetric : packed -> bool
