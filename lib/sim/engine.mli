(** The round-based execution engine.

    [Make (A)] interprets algorithm [A] under a schedule: each round, alive
    non-halted processes produce their round message ({!S.on_send}); the
    engine routes every copy according to the schedule's fate for that
    [(src, dst, round)] triple; crashes take effect (a process crashing in
    round [k] sends — subject to the schedule — but does not receive in round
    [k] and disappears afterwards); then surviving processes consume the
    envelopes arriving this round ({!S.on_receive}).

    The engine is purely functional: {!Make.step} returns a new system state,
    so the model checker can branch over adversary choices while sharing the
    common prefix. *)

open Kernel

type step_error = {
  algorithm : string;
  pid : Pid.t;
  round : Round.t;
  reason : string;
}
(** Everything a sweep or fuzz campaign needs to record a poisoned run:
    which algorithm, which process, in which round, and why. *)

exception Step_error of step_error
(** The {e only} exception the engine raises from inside a round, for two
    families of faults:

    - protocol violations the engine itself detects (an algorithm changing
      or retracting a decided value — decision stability);
    - any exception the algorithm's [on_send]/[on_receive] callbacks raise,
      rewrapped with the faulting process and round ([Stack_overflow] and
      [Out_of_memory] pass through untouched).

    Callers that run many schedules ({!Mc.Exhaustive}, fuzz campaigns)
    catch it and record a structured per-run outcome instead of letting one
    poisoned schedule kill the whole sweep. [Invalid_argument] remains
    reserved for caller misuse at API entry ({!Make.start} with missing
    proposals). *)

val pp_step_error : Format.formatter -> step_error -> unit

module Make (A : Algorithm.S) : sig
  type sys
  (** Immutable global state between rounds. *)

  val start :
    ?sink:Obs.Sink.t -> Config.t -> proposals:Value.t Pid.Map.t -> sys
  (** Initial state: every process has proposed. [proposals] must bind
      exactly [p1..pn]. [sink] (default {!Obs.Sink.noop}) receives the
      structured {!Obs.Event.t}s of every subsequent {!step}; with the
      no-op sink the engine constructs no events at all. *)

  val next_round : sys -> Round.t
  (** The round the next {!step} will execute (round 1 initially). *)

  val step : sys -> Schedule.plan -> sys
  (** Execute one full round under the given per-round plan. Raises
      {!Step_error} if the algorithm violates decision stability (changes
      or retracts a decided value) or if one of its step callbacks raises. *)

  val decisions : sys -> Trace.decision list
  (** Chronological. *)

  val state_of : sys -> Pid.t -> A.state option
  (** The local state of a process, unless it crashed. *)

  val alive : sys -> Pid.t list
  (** Processes still running (not crashed, not halted). *)

  val crashed : sys -> (Pid.t * Round.t) list
  val all_halted : sys -> bool

  (** A resumable execution core for the model checker.

      Semantically identical to stepping [sys] round by round, but on a
      representation tuned for the checker's DFS over adversary choices:
      flat process arrays, pre-sorted inboxes, a shared envelope list for
      quiet rounds and precompiled plans ({!Schedule.compiled_plan}). Each
      {!Incremental.step} returns a fresh immutable value, so the DFS forks
      the state at every choice point and the shared prefix of two
      schedules is executed exactly once.

      Unlike {!run}, the incremental core records no round records and
      emits no events — it exists to make exhaustive sweeps fast. *)
  module Incremental : sig
    type t
    (** Immutable system state between rounds. *)

    val start : Config.t -> proposals:Value.t Pid.Map.t -> t
    (** Initial state; [proposals] must bind exactly [p1..pn]. *)

    val step : t -> Schedule.compiled_plan -> t
    (** Execute one full round. Raises {!Step_error} on a decision-stability
        violation or a raising callback, with the same error as the batch
        engine. *)

    val next_round : t -> Round.t
    val all_halted : t -> bool
    val decisions : t -> Trace.decision list
    val crashed : t -> (Pid.t * Round.t) list

    type fingerprint
    (** A canonical structural snapshot of the global state: per-process
        algorithm states (halted and crashed processes collapse to bare
        tags — their rounds are observable in no sweep verdict), the
        in-flight delayed messages in canonical key order, and the
        decisions recorded so far. Two states of the same sweep (same
        config and proposals) with structurally equal fingerprints at the
        same round are {e verdict-equivalent}: every suffix of adversary
        choices leads to traces with identical [Props.check] outcomes and
        identical global decision rounds. The payload is plain immutable
        data (the {!Algorithm.S} purity contract), so polymorphic [(=)]
        and [Hashtbl.hash] are the intended equality and hash — this is
        what [Mc.Dedup] keys its transposition table on. *)

    val fingerprint : t -> fingerprint
    (** O(state) to build; allocates a small canonical copy, shares the
        per-process states. *)

    val finish :
      ?max_rounds:int -> ?prof:Obs.Prof.acc -> schedule:Schedule.t -> t -> Trace.t
    (** Step with [schedule]'s remaining plans (empty past the horizon)
        until all processes halt or [max_rounds] rounds have executed
        (default {!default_max_rounds}), then package the trace. The
        resulting trace equals what {!run} produces for the same config,
        proposals and schedule, except [records] is always empty.
        [prof], when given, records one {!Obs.Prof} interval per executed
        round (the DFS callers measure the rounds they step themselves).

        When the state was advanced manually via {!step}, pass the
        schedule those plans came from (or an explicit [max_rounds]
        consistent with it) so the bound and [Trace.t.schedule] are
        right. *)
  end

  (** The mutable checker arena.

      The flat struct-of-arrays round representation (status slab, state
      array, reusable envelope spine — the same machinery as the
      record-free run path's post-horizon tail) promoted to a first-class
      value with explicit branch-point snapshots, so a DFS over adversary
      choices mutates {e one} arena in place and rewinds it on backtrack
      instead of forking an immutable value per round. Round semantics are
      bit-identical to {!Incremental.step}: same [on_send]/[on_receive]
      call orders, same decision-stability errors, same decision-list and
      crash-list shapes.

      Ownership: an arena (and everything loaned out of it — the probe
      fingerprint, inbox spines) belongs to one DFS on one domain. Sharded
      sweeps create one arena per shard. *)
  module Arena : sig
    type t
    (** Mutable system state. Steps advance it in place; {!save} /
        {!restore} rewind it. *)

    val create : Config.t -> proposals:Value.t Pid.Map.t -> t
    (** Fresh arena at round 1; [proposals] must bind exactly [p1..pn]. *)

    val step : t -> Schedule.compiled_plan -> unit
    (** Execute one full round in place. Raises {!Step_error} exactly like
        {!Incremental.step}; a raising step leaves the arena mid-round, and
        the caller must {!restore} a snapshot before using it again.
        Allocation-free on quiet rounds once the spine is built; ~n list
        cells on single-sender-loss / single-receiver-loss rounds (the
        serial-adversary fault shapes). *)

    val save : t -> unit
    (** Push a branch-point snapshot: two blits (status bytes, state
        words) plus four scalar stores into a preallocated, reused slot —
        cost independent of the subtree explored below it. *)

    val restore : t -> unit
    (** Rewind to the top snapshot, keeping it on the stack (one snapshot
        serves every sibling branch). Raises [Invalid_argument] if no
        snapshot is live. *)

    val drop : t -> unit
    (** Pop the top snapshot without rewinding (the arena is left wherever
        the last branch put it — the parent's own snapshot covers the
        residue). Raises [Invalid_argument] if no snapshot is live. *)

    val snapshots : t -> int
    (** Total {!save} calls over the arena's lifetime. *)

    val restores : t -> int
    (** Total {!restore} calls over the arena's lifetime. *)

    val next_round : t -> Round.t
    val all_halted : t -> bool
    val decisions : t -> Trace.decision list
    val crashed : t -> (Pid.t * Round.t) list

    type fingerprint
    (** Same verdict-equivalence contract and the same equality classes as
        {!Incremental.fingerprint} — a sweep keyed on arena fingerprints
        reproduces the incremental engine's dedup hit/miss sequence
        exactly — built directly from the flat arrays (status slab copy,
        state array with halted/crashed slots pinned to one filler) with
        no intermediate maps. Polymorphic [(=)] and [Hashtbl.hash] are the
        intended equality and hash, and a {!probe_fingerprint} compares
        equal to the {!fingerprint} copy of the same state. *)

    val probe_fingerprint : t -> fingerprint
    (** The arena's reusable probe fingerprint, refreshed in place —
        allocation-free when no delayed messages are in flight. Valid only
        until the next arena mutation or [probe_fingerprint] call; use it
        for table lookups, never for storage. *)

    val fingerprint : t -> fingerprint
    (** An owned copy, safe to store in a table. *)

    val copy_fingerprint : fingerprint -> fingerprint
    (** Deep-copies the buffers a probe loans out (status bytes, state
        array); the late-message and decision lists are immutable and
        shared. *)

    val finish :
      ?max_rounds:int -> ?prof:Obs.Prof.acc -> schedule:Schedule.t -> t -> Trace.t
    (** Step with [schedule]'s remaining plans (empty past the horizon)
        until all processes halt or [max_rounds] rounds have executed
        (default {!default_max_rounds}), then package the trace — the same
        trace {!Incremental.finish} produces from the same state. Leaves
        the arena at the end of the run; the caller rewinds via
        {!restore}. [prof], when given, records one {!Obs.Prof} interval
        per executed round. *)
  end

  val run :
    ?record:bool ->
    ?sink:Obs.Sink.t ->
    ?max_rounds:int ->
    ?prof:Obs.Prof.acc ->
    Config.t ->
    proposals:Value.t Pid.Map.t ->
    Schedule.t ->
    Trace.t
  (** Run to completion: steps through the schedule (empty plans past its
      horizon) until every non-crashed process has halted or [max_rounds]
      rounds have executed. The default bound is generous enough for every
      algorithm in this repository to terminate after the schedule's gst.
      [record] (default [false]) fills {!Trace.t.records} for diagrams.
      [sink] (default {!Obs.Sink.noop}) receives the run's structured event
      stream — [Run_start], then per round [Round_start], [Send] (with
      per-copy [Drop]/[Delay] fates), [Crash], [Deliver], [Decide] and
      [Halt], and finally [Run_end]. Event order is deterministic for a
      fixed config, proposals and schedule. [prof] records one
      {!Obs.Prof} interval per executed round; omitted, the loop is
      untouched. *)
end

val default_max_rounds : Config.t -> Schedule.t -> int
(** The bound [run] uses when [max_rounds] is omitted. *)

val round_bound : Config.t -> horizon:int -> gst:int -> int
(** The same bound computed from a horizon and gst directly, for callers
    (the incremental checker) that build plans round by round and have no
    {!Schedule.t} in hand: [default_max_rounds config s] equals
    [round_bound config ~horizon:(Schedule.horizon s)
    ~gst:(Round.to_int (Schedule.gst s))]. *)
