(** The round-based execution engine.

    [Make (A)] interprets algorithm [A] under a schedule: each round, alive
    non-halted processes produce their round message ({!S.on_send}); the
    engine routes every copy according to the schedule's fate for that
    [(src, dst, round)] triple; crashes take effect (a process crashing in
    round [k] sends — subject to the schedule — but does not receive in round
    [k] and disappears afterwards); then surviving processes consume the
    envelopes arriving this round ({!S.on_receive}).

    The engine is purely functional: {!Make.step} returns a new system state,
    so the model checker can branch over adversary choices while sharing the
    common prefix. *)

open Kernel

module Make (A : Algorithm.S) : sig
  type sys
  (** Immutable global state between rounds. *)

  val start :
    ?sink:Obs.Sink.t -> Config.t -> proposals:Value.t Pid.Map.t -> sys
  (** Initial state: every process has proposed. [proposals] must bind
      exactly [p1..pn]. [sink] (default {!Obs.Sink.noop}) receives the
      structured {!Obs.Event.t}s of every subsequent {!step}; with the
      no-op sink the engine constructs no events at all. *)

  val next_round : sys -> Round.t
  (** The round the next {!step} will execute (round 1 initially). *)

  val step : sys -> Schedule.plan -> sys
  (** Execute one full round under the given per-round plan. Raises
      [Failure] if the algorithm violates decision stability (changes a
      decided value). *)

  val decisions : sys -> Trace.decision list
  (** Chronological. *)

  val state_of : sys -> Pid.t -> A.state option
  (** The local state of a process, unless it crashed. *)

  val alive : sys -> Pid.t list
  (** Processes still running (not crashed, not halted). *)

  val crashed : sys -> (Pid.t * Round.t) list
  val all_halted : sys -> bool

  val run :
    ?record:bool ->
    ?sink:Obs.Sink.t ->
    ?max_rounds:int ->
    Config.t ->
    proposals:Value.t Pid.Map.t ->
    Schedule.t ->
    Trace.t
  (** Run to completion: steps through the schedule (empty plans past its
      horizon) until every non-crashed process has halted or [max_rounds]
      rounds have executed. The default bound is generous enough for every
      algorithm in this repository to terminate after the schedule's gst.
      [record] (default [false]) fills {!Trace.t.records} for diagrams.
      [sink] (default {!Obs.Sink.noop}) receives the run's structured event
      stream — [Run_start], then per round [Round_start], [Send] (with
      per-copy [Drop]/[Delay] fates), [Crash], [Deliver], [Decide] and
      [Halt], and finally [Run_end]. Event order is deterministic for a
      fixed config, proposals and schedule. *)
end

val default_max_rounds : Config.t -> Schedule.t -> int
(** The bound [run] uses when [max_rounds] is omitted. *)
