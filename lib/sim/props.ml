open Kernel

type violation =
  | Validity of { pid : Pid.t; value : Value.t }
  | Agreement of {
      pid_a : Pid.t;
      value_a : Value.t;
      pid_b : Pid.t;
      value_b : Value.t;
    }
  | Termination of { undecided : Pid.t list }
  | Unsettled of { undecided : Pid.t list }

let pp_violation ppf = function
  | Validity { pid; value } ->
      Format.fprintf ppf "validity: %a decided %a, which nobody proposed"
        Pid.pp pid Value.pp value
  | Agreement { pid_a; value_a; pid_b; value_b } ->
      Format.fprintf ppf "uniform agreement: %a decided %a but %a decided %a"
        Pid.pp pid_a Value.pp value_a Pid.pp pid_b Value.pp value_b
  | Termination { undecided } ->
      Format.fprintf ppf "termination: correct process(es) %a never decide"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           Pid.pp)
        undecided
  | Unsettled { undecided } ->
      Format.fprintf ppf
        "round bound hit with correct process(es) %a undecided"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           Pid.pp)
        undecided

let validity_violations (trace : Trace.t) =
  let proposed =
    Pid.Map.fold
      (fun _ v acc -> Value.Set.add v acc)
      trace.proposals Value.Set.empty
  in
  List.filter_map
    (fun (d : Trace.decision) ->
      if Value.Set.mem d.value proposed then None
      else Some (Validity { pid = d.pid; value = d.value }))
    trace.decisions

(* Agreement is judged among non-omitter deciders only: a send-omitter may
   decide on information nobody else received (and a receive-omitter on
   strictly less than a quorum), so uniform agreement over omitters is
   unattainable by any algorithm — the soundness rule of DESIGN §13.
   Validity above still covers every decider, omitters included. *)
let agreement_violations (trace : Trace.t) =
  let omitting = Schedule.omitter_set trace.schedule in
  let judged =
    if Pid.Set.is_empty omitting then trace.decisions
    else
      List.filter
        (fun (d : Trace.decision) -> not (Pid.Set.mem d.pid omitting))
        trace.decisions
  in
  match judged with
  | [] -> []
  | first :: rest ->
      List.filter_map
        (fun (d : Trace.decision) ->
          if Value.equal d.value first.value then None
          else
            Some
              (Agreement
                 {
                   pid_a = first.pid;
                   value_a = first.value;
                   pid_b = d.pid;
                   value_b = d.value;
                 }))
        rest

let undecided_correct (trace : Trace.t) =
  List.filter
    (fun p -> Trace.decision_of trace p = None)
    (Trace.correct trace)

let termination_violations (trace : Trace.t) =
  match undecided_correct trace with
  | [] -> []
  | undecided ->
      if trace.all_halted then [ Termination { undecided } ]
      else [ Unsettled { undecided } ]

let check_agreement trace = agreement_violations trace @ validity_violations trace
let check trace = check_agreement trace @ termination_violations trace

let assert_ok trace =
  match check trace with
  | [] -> ()
  | violations ->
      failwith
        (Format.asprintf "@[<v>%a:@,%a@,%a@]" Format.pp_print_string
           trace.algorithm
           (Format.pp_print_list pp_violation)
           violations Trace.pp_summary trace)

let decided_by trace round =
  undecided_correct trace = []
  && List.for_all
       (fun (d : Trace.decision) -> Round.(d.round <= round))
       trace.decisions
