open Kernel

type fate = Same_round | Delayed_until of Round.t | Lost

type plan = {
  crashes : Pid.t list;
  lost : (Pid.t * Pid.t) list;
  delayed : (Pid.t * Pid.t * Round.t) list;
}

let empty_plan = { crashes = []; lost = []; delayed = [] }

type t = {
  model : Model.t;
  gst : Round.t;
  plans : plan array;
  crash_rounds : Round.t Pid.Map.t; (* derived index *)
  omitters : Model.omission Pid.Map.t;
  budget : Model.budget option;
}

let derive_crash_rounds plans =
  let add_round acc round plan =
    List.fold_left
      (fun acc victim ->
        if Pid.Map.mem victim acc then acc
        else Pid.Map.add victim round acc)
      acc plan.crashes
  in
  let _, map =
    Array.fold_left
      (fun (k, acc) plan -> (k + 1, add_round acc (Round.of_int k) plan))
      (1, Pid.Map.empty) plans
  in
  map

let make ?(omitters = []) ?budget ~model ~gst plans =
  let plans = Array.of_list plans in
  let omitters =
    List.fold_left
      (fun acc (p, cls) -> Pid.Map.add p cls acc)
      Pid.Map.empty omitters
  in
  { model; gst; plans; crash_rounds = derive_crash_rounds plans; omitters;
    budget }

let model s = s.model
let gst s = s.gst
let horizon s = Array.length s.plans

let plan_at s round =
  let k = Round.to_int round in
  if k <= Array.length s.plans then s.plans.(k - 1) else empty_plan

let plans s = Array.to_list s.plans
let crash_round s p = Pid.Map.find_opt p s.crash_rounds

let faulty s =
  Pid.Map.fold (fun p _ acc -> Pid.Set.add p acc) s.crash_rounds Pid.Set.empty

let crash_count s = Pid.Map.cardinal s.crash_rounds
let omitters s = Pid.Map.bindings s.omitters
let omitter_class s p = Pid.Map.find_opt p s.omitters
let omit_count s = Pid.Map.cardinal s.omitters
let budget s = s.budget

let omitter_set s =
  Pid.Map.fold (fun p _ acc -> Pid.Set.add p acc) s.omitters Pid.Set.empty

let omitters_of_class cls s =
  Pid.Map.fold
    (fun p c acc ->
      if Model.equal_omission c cls then Pid.Set.add p acc else acc)
    s.omitters Pid.Set.empty

let send_omitters = omitters_of_class Model.Send_omit
let recv_omitters = omitters_of_class Model.Recv_omit

(* A lost entry is justified by a declared omission fault when it sits on
   the faulty side of an omitter: outgoing for a send-omitter, incoming
   for a receive-omitter. Such losses are the omitter's steady-state
   behaviour, not asynchrony, so they are legal in any round of any model
   and do not push {!effective_gst}. *)
let omission_justified s ~src ~dst =
  (match Pid.Map.find_opt src s.omitters with
  | Some Model.Send_omit -> true
  | Some Model.Recv_omit | None -> false)
  ||
  match Pid.Map.find_opt dst s.omitters with
  | Some Model.Recv_omit -> true
  | Some Model.Send_omit | None -> false

let crashes_after s round =
  Pid.Map.fold
    (fun _ r acc -> if Round.(r > round) then acc + 1 else acc)
    s.crash_rounds 0

let fate s ~src ~dst ~round =
  let plan = plan_at s round in
  if List.exists (fun (i, j) -> Pid.equal i src && Pid.equal j dst) plan.lost
  then Lost
  else
    match
      List.find_opt
        (fun (i, j, _) -> Pid.equal i src && Pid.equal j dst)
        plan.delayed
    with
    | Some (_, _, until) -> Delayed_until until
    | None -> Same_round

(* ------------------------------------------------------------------ *)
(* Compiled plans                                                      *)

type compiled_fates =
  | Quiet  (* no losses or delays: every fate is [Same_round] *)
  | Single_lost of { sl_src : int; sl_dsts : Bitset.Big.t }
      (* one sender's messages lost to a destination set, nothing delayed —
         the shape of every serial-adversary crash plan. [Bitset.Big], so
         the fast path holds at any n. *)
  | Single_dst of { sd_dst : int; sd_srcs : Bitset.Big.t }
      (* one receiver loses messages from a source set, nothing delayed —
         the shape of every serial-adversary receive-omission plan. *)
  | Table of fate array  (* [(src-1) * c_n + (dst-1)] *)

type compiled_plan = { source : plan; c_n : int; cfates : compiled_fates }

let single_lost_src plan =
  match (plan.lost, plan.delayed) with
  | (src0, _) :: rest, [] ->
      if List.for_all (fun (src, _) -> Pid.equal src src0) rest then Some src0
      else None
  | _ -> None

let single_lost_dst plan =
  match (plan.lost, plan.delayed) with
  | (_, dst0) :: rest, [] ->
      if List.for_all (fun (_, dst) -> Pid.equal dst dst0) rest then Some dst0
      else None
  | _ -> None

let compile_plan ~n plan =
  if plan.lost = [] && plan.delayed = [] then
    { source = plan; c_n = n; cfates = Quiet }
  else
    match single_lost_src plan with
    | Some src ->
        let dsts =
          List.fold_left
            (fun acc (_, dst) -> Bitset.Big.add (Pid.to_int dst) acc)
            Bitset.Big.empty plan.lost
        in
        {
          source = plan;
          c_n = n;
          cfates = Single_lost { sl_src = Pid.to_int src; sl_dsts = dsts };
        }
    | None -> (
        match single_lost_dst plan with
        | Some dst ->
            let srcs =
              List.fold_left
                (fun acc (src, _) -> Bitset.Big.add (Pid.to_int src) acc)
                Bitset.Big.empty plan.lost
            in
            {
              source = plan;
              c_n = n;
              cfates = Single_dst { sd_dst = Pid.to_int dst; sd_srcs = srcs };
            }
        | None ->
            let fates = Array.make (n * n) Same_round in
            let slot src dst =
              ((Pid.to_int src - 1) * n) + (Pid.to_int dst - 1)
            in
            List.iter
              (fun (src, dst) -> fates.(slot src dst) <- Lost)
              plan.lost;
            List.iter
              (fun (src, dst, until) ->
                fates.(slot src dst) <- Delayed_until until)
              plan.delayed;
            { source = plan; c_n = n; cfates = Table fates })

let compiled_empty_plan = { source = empty_plan; c_n = 0; cfates = Quiet }
let compiled_source c = c.source
let compiled_fates c = c.cfates
let compiled_quiet c = c.cfates = Quiet

let compiled_single_lost c =
  match c.cfates with
  | Single_lost { sl_src; sl_dsts } -> Some (Pid.of_int sl_src, sl_dsts)
  | Quiet | Single_dst _ | Table _ -> None

let compiled_fate c ~src ~dst =
  match c.cfates with
  | Quiet -> Same_round
  | Single_lost { sl_src; sl_dsts } ->
      if Pid.to_int src = sl_src && Bitset.Big.mem (Pid.to_int dst) sl_dsts
      then Lost
      else Same_round
  | Single_dst { sd_dst; sd_srcs } ->
      if Pid.to_int dst = sd_dst && Bitset.Big.mem (Pid.to_int src) sd_srcs
      then Lost
      else Same_round
  | Table fates -> fates.(((Pid.to_int src - 1) * c.c_n) + (Pid.to_int dst - 1))

(* The minimal round from which every later round satisfies the synchrony
   clauses: no loss or delay except for messages sent in their sender's crash
   round. *)
let effective_gst s =
  let violates k plan =
    let crashing src = crash_round s src = Some (Round.of_int k) in
    List.exists
      (fun (src, dst) ->
        not (crashing src || omission_justified s ~src ~dst))
      plan.lost
    || List.exists (fun (src, _, _) -> not (crashing src)) plan.delayed
  in
  let last_violation = ref 0 in
  Array.iteri
    (fun i plan -> if violates (i + 1) plan then last_violation := i + 1)
    s.plans;
  Round.of_int (!last_violation + 1)

let synchronous s = Round.equal (effective_gst s) Round.first

let synchronous_after s round =
  Round.to_int (effective_gst s) <= Round.to_int round + 1

let failure_free_synchronous s =
  synchronous s && crash_count s = 0 && omit_count s = 0

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)

exception Bad of string

let bad fmt = Format.kasprintf (fun msg -> raise (Bad msg)) fmt

(* Every out-of-range-pid message names the round the offending entry sits
   in ([round 0] for round-independent declarations such as omitters), so a
   rejected generated schedule is diagnosable without dumping it. *)
let check_pid config ~round:k what p =
  let i = Pid.to_int p in
  if i < 1 || i > Config.n config then
    bad "round %d: %s references %a, outside p1..p%d" k what Pid.pp p
      (Config.n config)

let validate_omitters config s =
  Pid.Map.iter
    (fun p cls ->
      let i = Pid.to_int p in
      if i < 1 || i > Config.n config then
        bad "%s-omitter declaration references %a, outside p1..p%d"
          (Model.omission_to_string cls)
          Pid.pp p (Config.n config))
    s.omitters;
  match s.budget with
  | None ->
      (* Soundness without an explicit budget: the distinct faulty set —
         crash victims and omitters together — must fit the algorithm's
         design threshold t. *)
      let faulty_or_omitting =
        Pid.Map.fold
          (fun p _ acc -> Pid.Set.add p acc)
          s.crash_rounds (omitter_set s)
      in
      let f = Pid.Set.cardinal faulty_or_omitting in
      if f > Config.t config then
        bad "%d distinct faulty processes (crashed or omitting) but t = %d" f
          (Config.t config)
  | Some { Model.t_crash; t_omit } ->
      if t_crash + t_omit > Config.t config then
        bad "budget %d+%d exceeds t = %d (soundness: t_crash + t_omit <= t)"
          t_crash t_omit (Config.t config);
      if crash_count s > t_crash then
        bad "%d crashes but the budget allows t_crash = %d" (crash_count s)
          t_crash;
      if omit_count s > t_omit then
        bad "%d omitters but the budget allows t_omit = %d" (omit_count s)
          t_omit

let validate_structure config s =
  let n = Config.n config in
  let seen_crash = Pid.Tbl.create n in
  Array.iteri
    (fun idx plan ->
      let k = idx + 1 in
      let round = Round.of_int k in
      let crashed_before p =
        match crash_round s p with
        | Some r -> Round.(r < round)
        | None -> false
      in
      List.iter
        (fun victim ->
          check_pid config ~round:k "crash" victim;
          if Pid.Tbl.mem seen_crash victim then
            bad "%a crashes twice (second time in round %d)" Pid.pp victim k;
          Pid.Tbl.add seen_crash victim round)
        plan.crashes;
      let check_entry what src dst =
        check_pid config ~round:k what src;
        check_pid config ~round:k what dst;
        if Pid.equal src dst then
          bad "round %d: %s entry for %a's own message (a process always \
               receives its own message)"
            k what Pid.pp src;
        if crashed_before src then
          bad "round %d: %s entry for %a which crashed earlier" k what Pid.pp
            src
        (* Entries towards an already-crashed receiver are moot — the
           receiver can never receive anything — and are tolerated because
           natural generators emit them. *)
      in
      List.iter (fun (src, dst) -> check_entry "lost" src dst) plan.lost;
      List.iter
        (fun (src, dst, until) ->
          check_entry "delayed" src dst;
          if Round.(until <= round) then
            bad "round %d: delayed message to %a scheduled for round %d, not \
                 strictly later"
              k Pid.pp dst (Round.to_int until))
        plan.delayed;
      (* No duplicate (src, dst) verdicts within a round. *)
      let pairs =
        List.map (fun (s', d) -> (s', d)) plan.lost
        @ List.map (fun (s', d, _) -> (s', d)) plan.delayed
      in
      let sorted =
        List.sort
          (fun (a, b) (c, d) ->
            match Pid.compare a c with 0 -> Pid.compare b d | cmp -> cmp)
          pairs
      in
      let rec check_dups = function
        | (a, b) :: ((c, d) :: _ as rest) ->
            if Pid.equal a c && Pid.equal b d then
              bad "round %d: two fates for the message %a -> %a" k Pid.pp a
                Pid.pp b;
            check_dups rest
        | _ -> ()
      in
      check_dups sorted)
    s.plans;
  if Pid.Tbl.length seen_crash > Config.t config then
    bad "%d crashes but t = %d" (Pid.Tbl.length seen_crash) (Config.t config)

let validate_fates s =
  Array.iteri
    (fun idx plan ->
      let k = idx + 1 in
      let round = Round.of_int k in
      let crashing src = crash_round s src = Some round in
      let before_gst = Round.(round < s.gst) in
      List.iter
        (fun (src, dst) ->
          (* Declared omission faults justify a loss in every model: the
             message is dropped at the faulty process's doorstep, not by
             the network. *)
          if not (omission_justified s ~src ~dst) then
            match s.model with
            | Model.Scs ->
                if not (crashing src) then
                  bad
                    "round %d: SCS loses the message %a -> %a, but %a does \
                     not crash in that round and neither end is a declared \
                     omitter"
                    k Pid.pp src Pid.pp dst Pid.pp src
            | Model.Es ->
                let src_faulty = crash_round s src <> None in
                if not (crashing src || (before_gst && src_faulty)) then
                  bad
                    "round %d: ES loses the message %a -> %a, but %a is %s, \
                     the round is %s gst, and neither end is a declared \
                     omitter"
                    k Pid.pp src Pid.pp dst Pid.pp src
                    (if src_faulty then "faulty" else "correct")
                    (if before_gst then "before" else "at/after")
            | Model.Dls_basic ->
                (* No reliable channels before the stabilisation round: any
                   message may be lost. *)
                if not (before_gst || crashing src) then
                  bad
                    "round %d: DLS loses the message %a -> %a after the \
                     stabilisation round outside %a's crash round"
                    k Pid.pp src Pid.pp dst Pid.pp src)
        plan.lost;
      List.iter
        (fun (src, _, _) ->
          match s.model with
          | Model.Scs -> bad "round %d: SCS never delays messages" k
          | Model.Dls_basic ->
              bad
                "round %d: the DLS basic round model loses delayed messages \
                 instead of delivering them late"
                k
          | Model.Es ->
              if not (before_gst || crashing src) then
                bad
                  "round %d: ES delays a message from %a after gst outside \
                   its crash round"
                  k Pid.pp src)
        plan.delayed)
    s.plans

let validate_resilience config s =
  match s.model with
  | Model.Scs | Model.Dls_basic -> () (* t-resilience is an ES axiom only *)
  | Model.Es ->
      let n = Config.n config in
      let quorum = Config.quorum config in
      let all = Pid.all ~n in
      Array.iteri
        (fun idx plan ->
          let k = idx + 1 in
          let round = Round.of_int k in
          let alive_at_start p =
            match crash_round s p with
            | Some r -> Round.(r >= round)
            | None -> true
          in
          let completes p =
            match crash_round s p with
            | Some r -> Round.(r > round)
            | None -> true
          in
          let senders = List.filter alive_at_start all in
          List.iter
            (fun dst ->
              (* t-resilience is a promise made to correct processes; a
                 declared omitter (receive-omitters especially) may be
                 starved below the quorum without leaving the model. *)
              if completes dst && not (Pid.Map.mem dst s.omitters) then begin
                let received =
                  Listx.count
                    (fun src ->
                      Pid.equal src dst
                      || fate s ~src ~dst ~round = Same_round)
                    senders
                in
                if received < quorum then
                  bad
                    "round %d: %a receives only %d current-round messages, \
                     t-resilience requires %d"
                    k Pid.pp dst received quorum
              end)
            all;
          ignore plan)
        s.plans

let validate config s =
  try
    if Round.to_int s.gst < 1 then bad "gst must be >= 1";
    (match s.model with
    | Model.Scs ->
        if not (Round.equal s.gst Round.first) then
          bad "SCS schedules must have gst = 1"
    | Model.Es | Model.Dls_basic -> ());
    validate_omitters config s;
    validate_structure config s;
    validate_fates s;
    validate_resilience config s;
    Ok ()
  with Bad msg -> Error msg

let validate_exn config s =
  match validate config s with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Schedule.validate: " ^ msg)

let pp_plan ppf (k, plan) =
  let pp_pair ppf (a, b) = Format.fprintf ppf "%a->%a" Pid.pp a Pid.pp b in
  let pp_delay ppf (a, b, r) =
    Format.fprintf ppf "%a->%a@@%d" Pid.pp a Pid.pp b (Round.to_int r)
  in
  Format.fprintf ppf "@[<h>r%d:" k;
  if plan.crashes <> [] then
    Format.fprintf ppf " crash=%a"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         Pid.pp)
      plan.crashes;
  if plan.lost <> [] then
    Format.fprintf ppf " lost=[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         pp_pair)
      plan.lost;
  if plan.delayed <> [] then
    Format.fprintf ppf " delayed=[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         pp_delay)
      plan.delayed;
  if plan.crashes = [] && plan.lost = [] && plan.delayed = [] then
    Format.fprintf ppf " quiet";
  Format.fprintf ppf "@]"

let pp_omitter ppf (p, cls) =
  Format.fprintf ppf "%a:%a" Pid.pp p Model.pp_omission cls

let pp ppf s =
  Format.fprintf ppf "@[<v>%a schedule, gst=%d%a%a, %d planned round(s)%a@]"
    Model.pp s.model (Round.to_int s.gst)
    (fun ppf () ->
      match omitters s with
      | [] -> ()
      | os ->
          Format.fprintf ppf ", omit=[%a]"
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
               pp_omitter)
            os)
    ()
    (fun ppf () ->
      match s.budget with
      | None -> ()
      | Some b -> Format.fprintf ppf ", budget=%a" Model.pp_budget b)
    ()
    (horizon s)
    (fun ppf () ->
      Array.iteri
        (fun i plan -> Format.fprintf ppf "@,  %a" pp_plan (i + 1, plan))
        s.plans)
    ()
