type t = Scs | Es | Dls_basic

let equal a b =
  match (a, b) with
  | Scs, Scs | Es, Es | Dls_basic, Dls_basic -> true
  | _ -> false

let to_string = function Scs -> "SCS" | Es -> "ES" | Dls_basic -> "DLS"
let pp ppf m = Format.pp_print_string ppf (to_string m)
