type t = Scs | Es | Dls_basic

let equal a b =
  match (a, b) with
  | Scs, Scs | Es, Es | Dls_basic, Dls_basic -> true
  | _ -> false

let to_string = function Scs -> "SCS" | Es -> "ES" | Dls_basic -> "DLS"
let pp ppf m = Format.pp_print_string ppf (to_string m)

type omission = Send_omit | Recv_omit

let equal_omission a b =
  match (a, b) with
  | Send_omit, Send_omit | Recv_omit, Recv_omit -> true
  | _ -> false

let omission_to_string = function
  | Send_omit -> "send"
  | Recv_omit -> "recv"

let omission_of_string = function
  | "send" -> Some Send_omit
  | "recv" -> Some Recv_omit
  | _ -> None

let pp_omission ppf o = Format.pp_print_string ppf (omission_to_string o)

type budget = { t_crash : int; t_omit : int }

let budget ~t_crash ~t_omit =
  if t_crash < 0 || t_omit < 0 then
    invalid_arg "Model.budget: negative component";
  { t_crash; t_omit }

let pp_budget ppf b = Format.fprintf ppf "%d+%d" b.t_crash b.t_omit

type faults = Crash_only | Send_omit_only | Recv_omit_only | Mixed

let faults_to_string = function
  | Crash_only -> "crash"
  | Send_omit_only -> "send-omit"
  | Recv_omit_only -> "recv-omit"
  | Mixed -> "mixed"

let faults_of_string = function
  | "crash" -> Some Crash_only
  | "send-omit" -> Some Send_omit_only
  | "recv-omit" -> Some Recv_omit_only
  | "mixed" -> Some Mixed
  | _ -> None

let pp_faults ppf f = Format.pp_print_string ppf (faults_to_string f)
let all_faults = [ Crash_only; Send_omit_only; Recv_omit_only; Mixed ]
