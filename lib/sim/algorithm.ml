(** The interface every round-based consensus algorithm implements.

    An algorithm is a deterministic automaton per process (Section 1.2): in
    the send phase of round [k] it produces one message, broadcast to all
    processes (the engine routes a copy to everyone, including the sender —
    real implementations would send point-to-point, but the paper assumes
    without loss of generality that a round message is a single array sent to
    all). In the receive phase it consumes the envelopes arriving in round
    [k] and updates its state.

    Decisions are observed through {!S.decision}; a process that has returned
    from [propose] reports {!S.halted} and stops sending. *)

open Kernel

module type S = sig
  type state
  (** Local state of one process. *)

  type msg
  (** Round messages. Algorithms that conceptually send nothing in a round
      send an explicit dummy constructor, since receiving {e any} round-[k]
      message is what prevents suspicion. *)

  val name : string

  val model : Model.t
  (** The model the algorithm is designed for. Running an SCS algorithm on
      ES schedules is permitted by the engine — that mismatch is exactly what
      experiment E9 demonstrates — but the properties it guarantees only hold
      on schedules of its own model. *)

  val symmetric : bool
  (** Whether the automaton commutes with process-id permutations: for every
      permutation [pi] of [p1..pn], relabelling pids in the proposals, the
      schedule and every message/state field yields the relabelled run.
      Equivalently, no step of the algorithm breaks ties or selects inputs
      {e by id} (sets of pids, counts and value minima are all fine;
      "lowest [n - t] sender ids" or a rotating coordinator are not).
      [Mc.Symmetry] relies on this to sweep one representative per orbit of
      proposal assignments; declare [false] unless the argument is clear —
      a wrong [true] silently unsounds symmetry-reduced sweeps, while
      [false] merely forgoes the reduction. *)

  val init : Config.t -> Pid.t -> Value.t -> state
  (** [init config pi v] is the state of process [pi] after [propose(v)] and
      before round 1. *)

  val on_send : state -> Round.t -> msg
  (** The message broadcast in the send phase of the given round. *)

  val on_receive : state -> Round.t -> msg Envelope.t list -> state
  (** The receive phase: every envelope delivered in this round (current and
      delayed), sorted by sender id. *)

  val decision : state -> Value.t option
  (** The value decided so far, if any. Once [Some v], it must stay [Some v]
      forever (the checker enforces this). *)

  val halted : state -> bool
  (** The process has returned from [propose]: it will not send or receive
      any further message. *)

  val wire_size : msg -> int
  (** Estimated payload size in bytes if the message were serialized (tags,
      fixed-width ints, length-prefixed collections). Used by the cost
      experiment (E10) to compare bytes-on-wire across algorithms; it does
      not affect execution. Headers (sender, round) are accounted by the
      engine. *)

  val pp_msg : Format.formatter -> msg -> unit
  val pp_state : Format.formatter -> state -> unit
end

(* Per-copy header the engine charges on top of [wire_size]: sender id
   (2 bytes), round number (4) and a message tag (1). *)
let header_bytes = 7

type packed = Packed : (module S with type state = 's and type msg = 'm) -> packed

let name (Packed (module A)) = A.name
let model (Packed (module A)) = A.model
let symmetric (Packed (module A)) = A.symmetric
